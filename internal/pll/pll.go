// Package pll implements Pruned Landmark Labeling (Akiba, Iwata,
// Yoshida — the paper's reference [1]) for exact shortest-path distance
// queries on unweighted graphs.
//
// Every vertex stores a label: a sorted list of (landmark, distance)
// pairs. A query d(u, v) is the minimum of du + dv over landmarks
// common to both labels — exact because the construction processes
// landmarks in a fixed order and prunes a BFS at any vertex whose
// distance is already covered by previously-built labels (the classic
// canonical-labeling argument). Hub-first ordering keeps labels small
// on power-law graphs, the same skew the skyline exploits.
package pll

import (
	"sort"

	"neisky/internal/graph"
)

// Unreached is returned for vertex pairs in different components.
const Unreached = int32(-1)

type labelEntry struct {
	landmark int32 // rank of the landmark in the build order
	dist     int32
}

// Index answers exact distance queries.
type Index struct {
	labels [][]labelEntry
	// rankOf maps vertex -> its landmark rank; order is its inverse.
	rankOf []int32
	order  []int32
}

// Build constructs the index, processing vertices in descending-degree
// order (ties by ID).
func Build(g *graph.Graph) *Index {
	n := int32(g.N())
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	ix := &Index{
		labels: make([][]labelEntry, n),
		rankOf: make([]int32, n),
		order:  order,
	}
	for rank, v := range order {
		ix.rankOf[v] = int32(rank)
	}

	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Unreached
	}
	queue := make([]int32, 0, n)
	touched := make([]int32, 0, n)

	// tempLabel mirrors the landmark's own label for O(|label|) query
	// during the pruned BFS.
	tempDist := make([]int32, n+1)
	for i := range tempDist {
		tempDist[i] = Unreached
	}

	for rank := int32(0); rank < n; rank++ {
		root := order[rank]
		// Load the root's current label into tempDist (indexed by
		// landmark rank) for fast prune queries.
		for _, e := range ix.labels[root] {
			tempDist[e.landmark] = e.dist
		}
		queue = append(queue[:0], root)
		dist[root] = 0
		touched = append(touched[:0], root)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			d := dist[u]
			// Prune if some earlier landmark already certifies a path
			// of length ≤ d between root and u.
			if u != root {
				pruned := false
				for _, e := range ix.labels[u] {
					if t := tempDist[e.landmark]; t != Unreached && t+e.dist <= d {
						pruned = true
						break
					}
				}
				if pruned {
					continue
				}
				ix.labels[u] = append(ix.labels[u], labelEntry{landmark: rank, dist: d})
			} else {
				ix.labels[u] = append(ix.labels[u], labelEntry{landmark: rank, dist: 0})
			}
			for _, w := range g.Neighbors(u) {
				if dist[w] == Unreached {
					dist[w] = d + 1
					queue = append(queue, w)
					touched = append(touched, w)
				}
			}
		}
		for _, e := range ix.labels[root] {
			tempDist[e.landmark] = Unreached
		}
		for _, v := range touched {
			dist[v] = Unreached
		}
	}
	return ix
}

// Query returns the exact shortest-path distance between u and v, or
// Unreached when they are disconnected.
func (ix *Index) Query(u, v int32) int32 {
	if u == v {
		return 0
	}
	lu, lv := ix.labels[u], ix.labels[v]
	best := Unreached
	i, j := 0, 0
	for i < len(lu) && j < len(lv) {
		switch {
		case lu[i].landmark < lv[j].landmark:
			i++
		case lu[i].landmark > lv[j].landmark:
			j++
		default:
			if d := lu[i].dist + lv[j].dist; best == Unreached || d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// LabelSize returns the total number of label entries, the index's
// space measure.
func (ix *Index) LabelSize() int {
	total := 0
	for _, l := range ix.labels {
		total += len(l)
	}
	return total
}

// AvgLabel returns the mean label length.
func (ix *Index) AvgLabel() float64 {
	if len(ix.labels) == 0 {
		return 0
	}
	return float64(ix.LabelSize()) / float64(len(ix.labels))
}

// Bytes approximates the index memory footprint.
func (ix *Index) Bytes() int { return 8 * ix.LabelSize() }
