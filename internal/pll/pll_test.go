package pll

import (
	"testing"
	"testing/quick"

	"neisky/internal/bfs"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// checkAllPairs compares every query against BFS ground truth.
func checkAllPairs(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	ix := Build(g)
	trav := bfs.New(g)
	for u := int32(0); u < int32(g.N()); u++ {
		dist := trav.From(u)
		for v := int32(0); v < int32(g.N()); v++ {
			want := dist[v]
			got := ix.Query(u, v)
			if got != want {
				t.Fatalf("%s: d(%d,%d) = %d, want %d (edges %v)",
					label, u, v, got, want, g.EdgeList())
			}
		}
	}
}

func TestExactOnRandomGraphs(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 2+r.Intn(30), 0.05+0.3*r.Float64())
		checkAllPairs(t, g, "random")
	}
}

func TestExactOnSpecialGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Path(20), gen.Cycle(15), gen.Clique(10), gen.Star(12),
		gen.CompleteBinaryTree(15), graph.NewBuilder(5).Build(),
	} {
		checkAllPairs(t, g, "special")
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	ix := Build(g)
	if ix.Query(0, 3) != Unreached || ix.Query(5, 0) != Unreached {
		t.Fatal("cross-component queries must be Unreached")
	}
	if ix.Query(0, 2) != 2 || ix.Query(3, 4) != 1 || ix.Query(5, 5) != 0 {
		t.Fatal("within-component distances wrong")
	}
}

func TestPowerLawExactSampled(t *testing.T) {
	g := gen.PowerLaw(800, 2400, 2.3, 7)
	ix := Build(g)
	trav := bfs.New(g)
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		u := int32(r.Intn(g.N()))
		dist := trav.From(u)
		for probe := 0; probe < 20; probe++ {
			v := int32(r.Intn(g.N()))
			if got := ix.Query(u, v); got != dist[v] {
				t.Fatalf("d(%d,%d) = %d, want %d", u, v, got, dist[v])
			}
		}
	}
	// Hub-first ordering keeps labels compact on skewed graphs.
	if ix.AvgLabel() > 40 {
		t.Fatalf("labels suspiciously large: avg %.1f", ix.AvgLabel())
	}
}

func TestLabelAccounting(t *testing.T) {
	g := gen.Clique(6)
	ix := Build(g)
	// Cliques are PLL's worst case: going through an earlier landmark
	// costs 2 while the true distance is 1, so nothing prunes and rank
	// k contributes n−k entries: Σ = n(n+1)/2 = 21 for K6.
	if ix.LabelSize() != 21 {
		t.Fatalf("clique label size %d, want 21", ix.LabelSize())
	}
	if ix.Bytes() != 8*ix.LabelSize() {
		t.Fatal("Bytes accounting")
	}
}

func TestQuickPLLOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 2
		r := rng.New(seed)
		g := randomGraph(r, n, 0.25)
		ix := Build(g)
		trav := bfs.New(g)
		for u := int32(0); u < int32(n); u++ {
			dist := trav.From(u)
			for v := int32(0); v < int32(n); v++ {
				if ix.Query(u, v) != dist[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
