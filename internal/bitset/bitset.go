// Package bitset implements fixed-width dense bitsets over int32 vertex
// IDs. It is the word-parallel kernel underneath the graph hub-bitmap
// index and the clique solver's branch-and-bound state: a Set of n bits
// occupies ceil(n/64) machine words, membership tests are one shift and
// mask, and set algebra (And, AndNot, SubsetOf) runs as straight-line
// word loops the compiler vectorizes.
//
// All operations are allocation-free except New, Clone and the arena
// helpers. Sets compared or combined must have equal word counts; this
// is the caller's responsibility (the package deliberately avoids
// per-call length checks on the hot paths).
package bitset

import "math/bits"

// Set is a fixed-capacity bitmap. The zero value (nil) is a valid empty
// set for Test/Empty/Count-style reads but cannot store bits.
type Set []uint64

// WordsFor returns the number of 64-bit words needed for nbits bits.
func WordsFor(nbits int) int { return (nbits + 63) / 64 }

// New returns a zeroed Set with capacity for nbits bits.
func New(nbits int) Set { return make(Set, WordsFor(nbits)) }

// Arena carves equally-sized Sets out of one contiguous allocation, so
// indexes holding thousands of bitsets cost two allocations total.
type Arena struct {
	words int
	data  []uint64
}

// NewArena returns an arena able to hand out count Sets of nbits bits.
func NewArena(count, nbits int) *Arena {
	w := WordsFor(nbits)
	return &Arena{words: w, data: make([]uint64, count*w)}
}

// At returns the i-th Set of the arena (zeroed until written).
func (a *Arena) At(i int) Set { return Set(a.data[i*a.words : (i+1)*a.words]) }

// Bytes reports the arena's backing-store size.
func (a *Arena) Bytes() int { return 8 * len(a.data) }

// Words returns the word count of the set.
func (s Set) Words() int { return len(s) }

// Bytes reports the set's memory footprint.
func (s Set) Bytes() int { return 8 * len(s) }

// Set sets bit i.
func (s Set) Set(i int32) { s[i>>6] |= 1 << (uint32(i) & 63) }

// Clear clears bit i.
func (s Set) Clear(i int32) { s[i>>6] &^= 1 << (uint32(i) & 63) }

// Test reports whether bit i is set. Safe on a nil Set only for i < 0
// capacity checks done by the caller; out-of-range panics like a slice.
func (s Set) Test(i int32) bool { return s[i>>6]&(1<<(uint32(i)&63)) != 0 }

// Empty reports whether no bit is set.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits (population count).
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// First returns the lowest set bit, or -1 when empty.
func (s Set) First() int32 {
	for i, w := range s {
		if w != 0 {
			return int32(i<<6 + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// NextSet returns the lowest set bit ≥ from, or -1 when none remains.
func (s Set) NextSet(from int32) int32 {
	if from < 0 {
		from = 0
	}
	wi := int(from >> 6)
	if wi >= len(s) {
		return -1
	}
	w := s[wi] >> (uint32(from) & 63)
	if w != 0 {
		return from + int32(bits.TrailingZeros64(w))
	}
	for wi++; wi < len(s); wi++ {
		if s[wi] != 0 {
			return int32(wi<<6 + bits.TrailingZeros64(s[wi]))
		}
	}
	return -1
}

// ForEach calls fn for every set bit in increasing order.
func (s Set) ForEach(fn func(i int32)) {
	for wi, w := range s {
		base := int32(wi << 6)
		for ; w != 0; w &= w - 1 {
			fn(base + int32(bits.TrailingZeros64(w)))
		}
	}
}

// And stores x ∩ y into s (all three must share a word count).
func (s Set) And(x, y Set) {
	for i := range s {
		s[i] = x[i] & y[i]
	}
}

// AndNot removes y's bits from s.
func (s Set) AndNot(y Set) {
	for i := range s {
		s[i] &^= y[i]
	}
}

// Or adds y's bits to s.
func (s Set) Or(y Set) {
	for i := range s {
		s[i] |= y[i]
	}
}

// SubsetOf reports whether every bit of s is also set in y, as a
// branch-early word loop: one AndNot per word, exiting on the first
// witness word.
func (s Set) SubsetOf(y Set) bool {
	for i, w := range s {
		if w&^y[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOfExcept reports whether s \ {allow} ⊆ y: the containment test
// the skyline kernels need, where N(u) ⊆ N[w] must tolerate the one
// element w that is present in N(u) but never in the open-neighborhood
// bitmap of w itself.
func (s Set) SubsetOfExcept(y Set, allow int32) bool {
	aw := int(allow >> 6)
	ab := uint64(1) << (uint32(allow) & 63)
	for i, w := range s {
		d := w &^ y[i]
		if d != 0 && (i != aw || d&^ab != 0) {
			return false
		}
	}
	return true
}

// IntersectionCount returns |s ∩ y| without materializing it.
func (s Set) IntersectionCount(y Set) int {
	n := 0
	for i, w := range s {
		n += bits.OnesCount64(w & y[i])
	}
	return n
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with y (equal word counts).
func (s Set) CopyFrom(y Set) { copy(s, y) }

// OrChanged adds y's bits to s and reports whether s gained any bit.
// This is the multi-word frontier-merge kernel of the MS-BFS engine:
// merging a frontier word-row into a vertex's pending row must also say
// whether the vertex just became pending.
func (s Set) OrChanged(y Set) bool {
	changed := false
	for i, w := range y {
		if w&^s[i] != 0 {
			changed = true
			s[i] |= w
		}
	}
	return changed
}

// AndNotOf stores x &^ y into s and reports whether the result is
// non-empty: the "newly discovered lanes" kernel (pending minus seen) of
// the MS-BFS settle phase.
func (s Set) AndNotOf(x, y Set) bool {
	any := uint64(0)
	for i := range s {
		w := x[i] &^ y[i]
		s[i] = w
		any |= w
	}
	return any != 0
}

// Reset clears every bit, keeping the allocation.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}
