package bitset

import (
	"math/rand"
	"testing"
)

// oracle-checked: LaneCounter must agree with per-bit counting across
// random word streams, including streams long enough to force spills.
func TestLaneCounterMatchesScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		var c LaneCounter
		var want [64]int64
		n := 100 + r.Intn(200_000) // crosses the 65535-add spill boundary
		for i := 0; i < n; i++ {
			m := r.Uint64() & r.Uint64() // sparser masks
			c.Add(m)
			for x := m; x != 0; x &= x - 1 {
				want[trailing(x)]++
			}
		}
		var got [64]int64
		c.Drain(&got)
		if got != want {
			t.Fatalf("trial %d: lane counts diverge:\ngot  %v\nwant %v", trial, got, want)
		}
		// Drained counter must be empty.
		var again [64]int64
		c.Drain(&again)
		if again != [64]int64{} {
			t.Fatal("Drain did not reset the counter")
		}
	}
}

func trailing(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func TestLaneCounterDrainAccumulates(t *testing.T) {
	var c LaneCounter
	c.Add(0b101)
	var out [64]int64
	c.Drain(&out)
	c.Add(0b001)
	c.Drain(&out) // adds into out, not overwrite
	if out[0] != 2 || out[2] != 1 {
		t.Fatalf("Drain accumulation wrong: %v", out[:4])
	}
}

func TestLaneCounterReset(t *testing.T) {
	var c LaneCounter
	for i := 0; i < 1000; i++ {
		c.Add(^uint64(0))
	}
	c.Reset()
	var out [64]int64
	c.Drain(&out)
	if out != [64]int64{} {
		t.Fatal("Reset left residue")
	}
}

func TestOrChanged(t *testing.T) {
	s, y := New(200), New(200)
	y.Set(5)
	y.Set(150)
	if !s.OrChanged(y) {
		t.Fatal("OrChanged must report gained bits")
	}
	if !s.Test(5) || !s.Test(150) {
		t.Fatal("OrChanged did not merge")
	}
	if s.OrChanged(y) {
		t.Fatal("no new bits, must report false")
	}
}

func TestAndNotOf(t *testing.T) {
	x, y, d := New(200), New(200), New(200)
	x.Set(3)
	x.Set(100)
	y.Set(100)
	if !d.AndNotOf(x, y) {
		t.Fatal("x \\ y is non-empty")
	}
	if !d.Test(3) || d.Test(100) || d.Count() != 1 {
		t.Fatalf("AndNotOf wrong result: count=%d", d.Count())
	}
	y.Set(3)
	if d.AndNotOf(x, y) {
		t.Fatal("x \\ y is empty now")
	}
	if !d.Empty() {
		t.Fatal("AndNotOf must zero the destination even when empty")
	}
}

func BenchmarkLaneCounterAdd(b *testing.B) {
	var c LaneCounter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i) * 0x9e3779b97f4a7c15)
	}
}
