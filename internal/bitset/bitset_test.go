package bitset

import (
	"testing"

	"neisky/internal/rng"
)

// reference is a map-backed model of a Set.
type reference map[int32]bool

func (r reference) subsetOf(o reference) bool {
	for x := range r {
		if !o[x] {
			return false
		}
	}
	return true
}

func TestBasicOps(t *testing.T) {
	s := New(200)
	if got := s.Words(); got != 4 {
		t.Fatalf("Words() = %d, want 4", got)
	}
	for _, i := range []int32{0, 63, 64, 127, 199} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	if s.First() != 0 {
		t.Fatalf("First = %d", s.First())
	}
	s.Clear(0)
	if s.Test(0) || s.First() != 63 {
		t.Fatalf("Clear/First wrong: first=%d", s.First())
	}
	if s.Empty() {
		t.Fatal("Empty on non-empty set")
	}
	s.Reset()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestNextSetAndForEach(t *testing.T) {
	s := New(300)
	want := []int32{3, 64, 65, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int32
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("NextSet walk = %v, want %v", got, want)
		}
	}
	got = got[:0]
	s.ForEach(func(i int32) { got = append(got, i) })
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach walk = %v, want %v", got, want)
		}
	}
	if s.NextSet(300) != -1 {
		t.Fatal("NextSet past capacity should be -1")
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	r := rng.New(42)
	const nbits = 500
	for trial := 0; trial < 50; trial++ {
		a, b := New(nbits), New(nbits)
		ra, rb := reference{}, reference{}
		for k := 0; k < 120; k++ {
			i := int32(r.Intn(nbits))
			if r.Float64() < 0.5 {
				a.Set(i)
				ra[i] = true
			} else {
				b.Set(i)
				rb[i] = true
			}
		}
		for i := int32(0); i < nbits; i++ {
			if a.Test(i) != ra[i] || b.Test(i) != rb[i] {
				t.Fatalf("trial %d: Test(%d) disagrees with reference", trial, i)
			}
		}
		if a.SubsetOf(b) != ra.subsetOf(rb) {
			t.Fatalf("trial %d: SubsetOf disagrees", trial)
		}
		// SubsetOfExcept: removing one offending element must flip the
		// verdict exactly when it was the only witness.
		for _, allow := range []int32{0, 63, 64, int32(r.Intn(nbits))} {
			want := true
			for x := range ra {
				if x != allow && !rb[x] {
					want = false
					break
				}
			}
			if a.SubsetOfExcept(b, allow) != want {
				t.Fatalf("trial %d: SubsetOfExcept(%d) = %v, want %v",
					trial, allow, !want, want)
			}
		}
		// Intersection count.
		wantIC := 0
		for x := range ra {
			if rb[x] {
				wantIC++
			}
		}
		if a.IntersectionCount(b) != wantIC {
			t.Fatalf("trial %d: IntersectionCount = %d, want %d",
				trial, a.IntersectionCount(b), wantIC)
		}
		// And / AndNot / Or against the model.
		and, or := New(nbits), a.Clone()
		and.And(a, b)
		or.Or(b)
		diff := a.Clone()
		diff.AndNot(b)
		for i := int32(0); i < nbits; i++ {
			if and.Test(i) != (ra[i] && rb[i]) {
				t.Fatalf("And wrong at %d", i)
			}
			if or.Test(i) != (ra[i] || rb[i]) {
				t.Fatalf("Or wrong at %d", i)
			}
			if diff.Test(i) != (ra[i] && !rb[i]) {
				t.Fatalf("AndNot wrong at %d", i)
			}
		}
	}
}

func TestArena(t *testing.T) {
	a := NewArena(10, 130)
	for i := 0; i < 10; i++ {
		s := a.At(i)
		if s.Words() != 3 {
			t.Fatalf("arena slot words = %d", s.Words())
		}
		s.Set(int32(i))
	}
	for i := 0; i < 10; i++ {
		s := a.At(i)
		if s.Count() != 1 || !s.Test(int32(i)) {
			t.Fatalf("arena slot %d polluted: count=%d", i, s.Count())
		}
	}
	if a.Bytes() != 10*3*8 {
		t.Fatalf("arena bytes = %d", a.Bytes())
	}
}

func BenchmarkSubsetOf(b *testing.B) {
	x, y := New(16384), New(16384)
	for i := int32(0); i < 16384; i += 3 {
		y.Set(i)
		if i%9 == 0 {
			x.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.SubsetOf(y)
	}
}
