package bitset

import "math/bits"

// LaneCounter is a bit-sliced ("vertical") popcount accumulator: it
// counts, independently for each of the 64 bit lanes, how many of the
// words passed to Add had that lane set. This is the popcount-weighted
// accumulator underneath the multi-source BFS engine: each BFS level
// feeds every newly-discovered vertex's source mask into the counter,
// and the per-lane totals say how many vertices each source discovered
// at that level — without ever iterating individual bits on the hot
// path.
//
// Add is a ripple-carry increment across the slices: bit j of lane b's
// count lives in bit b of slices[j]. A carry out of slice j propagates
// to slice j+1, so the amortized cost of Add is O(1) word operations
// (lane-count bit j flips once every 2^j adds). When the slice capacity
// (2^16−1 adds) is reached, the counter spills into the 64-entry total
// array and the slices restart; Drain folds both parts together.
//
// The zero value is ready to use. A LaneCounter is owned by a single
// goroutine.
type LaneCounter struct {
	slices [16]uint64
	adds   int
	total  [64]int64
}

// laneCap is the number of Adds the slices can absorb before spilling.
const laneCap = 1<<16 - 1

// Add accumulates one word: every set lane of m is incremented.
func (c *LaneCounter) Add(m uint64) {
	if c.adds == laneCap {
		c.spill()
	}
	c.adds++
	for j := 0; m != 0 && j < len(c.slices); j++ {
		carry := c.slices[j] & m
		c.slices[j] ^= m
		m = carry
	}
}

// spill folds the slice counters into the int64 totals and clears them.
func (c *LaneCounter) spill() {
	for j, s := range c.slices {
		w := int64(1) << uint(j)
		for ; s != 0; s &= s - 1 {
			c.total[bits.TrailingZeros64(s)] += w
		}
		c.slices[j] = 0
	}
	c.adds = 0
}

// Drain adds each lane's accumulated count into out[lane] and resets the
// counter. The sparse per-slice extraction makes Drain cheap for the
// common case where only a few lanes were touched since the last Drain.
func (c *LaneCounter) Drain(out *[64]int64) {
	c.spill()
	for b := range c.total {
		if c.total[b] != 0 {
			out[b] += c.total[b]
			c.total[b] = 0
		}
	}
}

// Reset discards all accumulated counts.
func (c *LaneCounter) Reset() {
	c.slices = [16]uint64{}
	c.adds = 0
	c.total = [64]int64{}
}
