// Package obs is the repo's zero-dependency observability layer:
// monotonic stage timers, atomic work counters, and a process-global
// registry with an expvar-style snapshot/export API.
//
// Design constraints (see DESIGN.md §6):
//
//   - Disabled by default. The global registry starts nil; every method
//     on a nil *Recorder, nil *Counter, nil *Timer, or zero Span is a
//     cheap no-op, so instrumented hot paths pay one atomic pointer load
//     plus a handful of predictable branches — and zero allocations —
//     when recording is off. The Fig3 overhead benchmark
//     (BenchmarkObsOverheadFig3) pins this below 2%.
//
//   - Aggregation, not tracing. A Timer accumulates count/total/max
//     across runs; hot loops keep plain local counters and fold them
//     into the registry once per run, so the inner loops never touch an
//     atomic.
//
//   - Span-style scopes nest by name: `defer r.Start("core.refine").End()`
//     inside a `core.skyline` span yields separate accumulators whose
//     dotted names encode the hierarchy (filter → refine → bloom probes;
//     BFS run → round → frontier).
//
// Typical use:
//
//	r := obs.Enable()                    // or obs.Get() in library code
//	defer r.Start("core.filter").End()   // stage timer (nil-safe)
//	r.Counter("core.filter.tests").Add(n)
//	fmt.Println(obs.Get().Snapshot())
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic work counter. A nil
// *Counter ignores all writes, so callers can hold handles
// unconditionally.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Timer accumulates the durations of a named stage: number of runs,
// total nanoseconds, and the slowest single run. A nil *Timer ignores
// all observations.
type Timer struct {
	count atomic.Int64
	total atomic.Int64 // ns
	max   atomic.Int64 // ns
}

// Start opens a span on the timer. On a nil receiver it returns the zero
// Span without reading the clock.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Observe folds one externally measured duration into the timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	ns := d.Nanoseconds()
	t.count.Add(1)
	t.total.Add(ns)
	for {
		old := t.max.Load()
		if ns <= old || t.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Stat returns the timer's accumulated statistics.
func (t *Timer) Stat() TimerStat {
	if t == nil {
		return TimerStat{}
	}
	return TimerStat{Count: t.count.Load(), TotalNs: t.total.Load(), MaxNs: t.max.Load()}
}

// Span is one open stage scope. It is a plain value — starting and
// ending a span allocates nothing — and the zero Span (from a disabled
// recorder) is inert.
type Span struct {
	t     *Timer
	start time.Time
}

// End closes the span, folding its duration into the owning timer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(time.Since(s.start))
}

// TimerStat is the exported snapshot of one Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// Recorder is a registry of named counters and timers. All methods are
// safe for concurrent use and safe on a nil receiver (returning nil
// handles / zero snapshots), which is the disabled fast path.
type Recorder struct {
	counters sync.Map // string -> *Counter
	timers   sync.Map // string -> *Timer
}

// New returns an empty enabled Recorder (not installed globally; see
// Enable/Swap for the process registry).
func New() *Recorder { return &Recorder{} }

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil receiver.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := r.counters.LoadOrStore(name, new(Counter))
	return c.(*Counter)
}

// Timer returns the named timer, creating it on first use. Returns nil
// on a nil receiver.
func (r *Recorder) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	if t, ok := r.timers.Load(name); ok {
		return t.(*Timer)
	}
	t, _ := r.timers.LoadOrStore(name, new(Timer))
	return t.(*Timer)
}

// Start opens a span on the named timer; `defer r.Start(name).End()` is
// the stage-scope idiom. On a nil receiver it returns the zero Span
// without touching the clock or allocating.
func (r *Recorder) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.Timer(name).Start()
}

// Add increments the named counter by n (no-op when nil).
func (r *Recorder) Add(name string, n int64) { r.Counter(name).Add(n) }

// Snapshot is a point-in-time export of a Recorder.
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Timers   map[string]TimerStat `json:"timers"`
}

// Snapshot returns the recorder's current counters and timers. A nil
// receiver yields empty (non-nil) maps so callers can range freely.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Timers: map[string]TimerStat{}}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.timers.Range(func(k, v any) bool {
		s.Timers[k.(string)] = v.(*Timer).Stat()
		return true
	})
	return s
}

// Metrics flattens the recorder into a single sorted-key map, the shape
// nsbench folds into its -json rows: counters keep their names, each
// timer contributes "<name>.ns" (total) and "<name>.count".
func (r *Recorder) Metrics() map[string]int64 {
	s := r.Snapshot()
	m := make(map[string]int64, len(s.Counters)+2*len(s.Timers))
	for k, v := range s.Counters {
		m[k] = v
	}
	for k, t := range s.Timers {
		m[k+".ns"] = t.TotalNs
		m[k+".count"] = t.Count
	}
	return m
}

// Reset zeroes every registered counter and timer, keeping the handles
// valid (hot paths may hold them across resets).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.counters.Range(func(_, v any) bool {
		v.(*Counter).v.Store(0)
		return true
	})
	r.timers.Range(func(_, v any) bool {
		t := v.(*Timer)
		t.count.Store(0)
		t.total.Store(0)
		t.max.Store(0)
		return true
	})
}

// String renders the snapshot as a stable, human-readable table.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Timers))
	for k := range s.Timers {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		t := s.Timers[k]
		fmt.Fprintf(&b, "%-40s %8d runs  total=%-12s max=%s\n",
			k, t.Count, time.Duration(t.TotalNs), time.Duration(t.MaxNs))
	}
	names = names[:0]
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %d\n", k, s.Counters[k])
	}
	return b.String()
}

// global is the process registry. nil means recording is disabled — the
// default — and obs.Get() callers see every operation degrade to the
// no-op fast path.
var global atomic.Pointer[Recorder]

// Get returns the process recorder, or nil when recording is disabled.
// Library hot paths call this once per run, not per loop iteration.
func Get() *Recorder { return global.Load() }

// Enable installs (and returns) a process recorder, keeping the current
// one if recording is already on.
func Enable() *Recorder {
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := New()
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable turns recording off; instrumented code reverts to the no-op
// fast path.
func Disable() { global.Store(nil) }

// Swap installs r (which may be nil) as the process recorder and
// returns the previous one. Benchmark harnesses use it to capture one
// run's metrics in isolation and restore the prior state after.
func Swap(r *Recorder) *Recorder { return global.Swap(r) }
