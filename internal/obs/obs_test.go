package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndTimer(t *testing.T) {
	r := New()
	c := r.Counter("work")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("work") != c {
		t.Fatal("Counter did not return the same handle for the same name")
	}

	sp := r.Start("stage")
	time.Sleep(time.Millisecond)
	sp.End()
	st := r.Timer("stage").Stat()
	if st.Count != 1 || st.TotalNs <= 0 || st.MaxNs <= 0 || st.MaxNs > st.TotalNs {
		t.Fatalf("timer stat %+v inconsistent", st)
	}

	snap := r.Snapshot()
	if snap.Counters["work"] != 4 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if snap.Timers["stage"].Count != 1 {
		t.Fatalf("snapshot timers = %v", snap.Timers)
	}
	m := r.Metrics()
	if m["work"] != 4 || m["stage.count"] != 1 || m["stage.ns"] != st.TotalNs {
		t.Fatalf("metrics = %v", m)
	}
	if s := snap.String(); !strings.Contains(s, "work") || !strings.Contains(s, "stage") {
		t.Fatalf("snapshot string missing entries:\n%s", s)
	}

	r.Reset()
	if c.Value() != 0 || r.Timer("stage").Stat().Count != 0 {
		t.Fatal("Reset did not zero accumulators")
	}
	if r.Counter("work") != c {
		t.Fatal("Reset invalidated handles")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Counter("x") != nil || r.Timer("x") != nil {
		t.Fatal("nil recorder must hand out nil handles")
	}
	r.Add("x", 1)
	r.Start("x").End()
	r.Reset()
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter recorded a value")
	}
	var tm *Timer
	tm.Start().End()
	tm.Observe(time.Second)
	if tm.Stat() != (TimerStat{}) {
		t.Fatal("nil timer recorded a value")
	}
	snap := r.Snapshot()
	if snap.Counters == nil || snap.Timers == nil || len(snap.Counters)+len(snap.Timers) != 0 {
		t.Fatalf("nil recorder snapshot %+v", snap)
	}
	if len(r.Metrics()) != 0 {
		t.Fatal("nil recorder metrics non-empty")
	}
}

// TestDisabledNoAllocs is the acceptance gate for the no-op fast path:
// with recording disabled, a full stage enter/exit plus counter traffic
// performs no allocations.
func TestDisabledNoAllocs(t *testing.T) {
	old := Swap(nil)
	defer Swap(old)
	allocs := testing.AllocsPerRun(1000, func() {
		r := Get()
		sp := r.Start("core.filter")
		r.Counter("core.filter.tests").Add(17)
		r.Add("core.refine.pairs", 3)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f objects per stage scope, want 0", allocs)
	}
}

func TestGlobalEnableDisableSwap(t *testing.T) {
	old := Swap(nil)
	defer Swap(old)
	if Get() != nil {
		t.Fatal("expected disabled global after Swap(nil)")
	}
	r := Enable()
	if r == nil || Get() != r {
		t.Fatal("Enable did not install a recorder")
	}
	if Enable() != r {
		t.Fatal("second Enable replaced the live recorder")
	}
	fresh := New()
	if prev := Swap(fresh); prev != r {
		t.Fatalf("Swap returned %p, want %p", prev, r)
	}
	Disable()
	if Get() != nil {
		t.Fatal("Disable left the recorder installed")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Counter("shared").Inc()
				r.Start("span").End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*per {
		t.Fatalf("shared counter = %d, want %d", got, workers*per)
	}
	if got := r.Timer("span").Stat().Count; got != workers*per {
		t.Fatalf("span count = %d, want %d", got, workers*per)
	}
}

// BenchmarkObsSpanDisabled measures the disabled-path cost of one stage
// scope plus a counter add (expected: a few ns, 0 allocs).
func BenchmarkObsSpanDisabled(b *testing.B) {
	old := Swap(nil)
	defer Swap(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Get()
		sp := r.Start("bench.stage")
		r.Counter("bench.work").Add(1)
		sp.End()
	}
}

// BenchmarkObsSpanEnabled measures the same scope with recording on.
func BenchmarkObsSpanEnabled(b *testing.B) {
	old := Swap(New())
	defer Swap(old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Get()
		sp := r.Start("bench.stage")
		r.Counter("bench.work").Add(1)
		sp.End()
	}
}
