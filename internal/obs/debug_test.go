package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	old := Swap(nil)
	defer Swap(old)

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	if Get() == nil {
		t.Fatal("StartDebugServer must enable the process recorder")
	}
	Get().Counter("debug.test.hits").Add(7)
	Get().Start("debug.test.stage").End()

	base := "http://" + addr

	code, body := get(t, base+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v\n%s", err, body)
	}
	if m["debug.test.hits"] != 7 || m["debug.test.stage.count"] != 1 {
		t.Fatalf("/debug/metrics missing instrumented values: %v", m)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "\"neisky\"") {
		t.Fatalf("/debug/vars status %d, body lacks neisky var:\n%.200s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d, unexpected body:\n%.200s", code, body)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestAttachDebugIdempotentPerMux is the regression test for the
// double-registration panic: a process that mounts the debug surface on
// its serving mux through two wiring paths (the server constructor and
// a CLI flag, as nsserve can) used to hit http.ServeMux's duplicate-
// pattern panic. AttachDebug must register once per mux and the routes
// must still work.
func TestAttachDebugIdempotentPerMux(t *testing.T) {
	old := Swap(New())
	defer Swap(old)
	Get().Counter("debug.attach.twice").Add(3)

	mux := http.NewServeMux()
	AttachDebug(mux)
	AttachDebug(mux) // second attach on the same mux: must not panic

	ts := httptest.NewServer(mux)
	defer ts.Close()
	code, body := get(t, ts.URL+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d after double attach", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v\n%s", err, body)
	}
	if m["debug.attach.twice"] != 3 {
		t.Fatalf("/debug/metrics missing counter after double attach: %v", m)
	}

	// A separate mux gets its own registration — and both serve.
	mux2 := http.NewServeMux()
	AttachDebug(mux2)
	ts2 := httptest.NewServer(mux2)
	defer ts2.Close()
	for _, base := range []string{ts.URL, ts2.URL} {
		if code, _ := get(t, base+"/debug/vars"); code != http.StatusOK {
			t.Fatalf("/debug/vars status %d on %s", code, base)
		}
	}
}

// TestServingMuxCoexistsWithDebugServer mirrors nsserve -debug -pprof:
// the serving mux carries the debug surface while StartDebugServer runs
// its own. Both /debug/metrics scrapes must succeed.
func TestServingMuxCoexistsWithDebugServer(t *testing.T) {
	old := Swap(New())
	defer Swap(old)

	serving := http.NewServeMux()
	AttachDebug(serving)
	ts := httptest.NewServer(serving)
	defer ts.Close()

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	for _, base := range []string{ts.URL, "http://" + addr} {
		code, body := get(t, base+"/debug/metrics")
		if code != http.StatusOK {
			t.Fatalf("%s/debug/metrics status %d", base, code)
		}
		var m map[string]int64
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("%s/debug/metrics not JSON: %v", base, err)
		}
	}
}
