package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerEndpoints(t *testing.T) {
	old := Swap(nil)
	defer Swap(old)

	addr, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	if Get() == nil {
		t.Fatal("StartDebugServer must enable the process recorder")
	}
	Get().Counter("debug.test.hits").Add(7)
	Get().Start("debug.test.stage").End()

	base := "http://" + addr

	code, body := get(t, base+"/debug/metrics")
	if code != http.StatusOK {
		t.Fatalf("/debug/metrics status %d", code)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/debug/metrics not JSON: %v\n%s", err, body)
	}
	if m["debug.test.hits"] != 7 || m["debug.test.stage.count"] != 1 {
		t.Fatalf("/debug/metrics missing instrumented values: %v", m)
	}

	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "\"neisky\"") {
		t.Fatalf("/debug/vars status %d, body lacks neisky var:\n%.200s", code, body)
	}

	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d, unexpected body:\n%.200s", code, body)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}
