// Debug endpoint wiring for the long-running commands: net/http/pprof
// profiles, stdlib /debug/vars (expvar), and the recorder snapshot at
// /debug/metrics, all on a private mux so importing this package never
// mutates http.DefaultServeMux.
package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration (expvar.Publish panics on
// duplicate names).
var publishOnce sync.Once

// PublishExpvar exposes the process recorder's snapshot as the expvar
// variable "neisky", next to the stdlib's memstats/cmdline on
// /debug/vars. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("neisky", expvar.Func(func() any {
			return Get().Snapshot()
		}))
	})
}

// MetricsHandler serves the process recorder's flattened metrics as
// JSON (sorted keys courtesy of encoding/json's map ordering); 0 keys
// when recording is disabled.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Get().Metrics())
	})
}

// DebugMux returns a mux carrying the full debug surface:
//
//	/debug/pprof/...   CPU, heap, goroutine, block, mutex profiles
//	/debug/vars        expvar (memstats + the "neisky" snapshot)
//	/debug/metrics     flattened recorder metrics as JSON
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/metrics", MetricsHandler())
	return mux
}

// StartDebugServer enables the process recorder and serves DebugMux on
// addr in a background goroutine, returning the bound address (useful
// with ":0"). The server lives for the remainder of the process; the
// commands that call this hold it until exit.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	Enable()
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
