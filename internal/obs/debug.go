// Debug endpoint wiring for the long-running commands: net/http/pprof
// profiles, stdlib /debug/vars (expvar), and the recorder snapshot at
// /debug/metrics, all on a private mux so importing this package never
// mutates http.DefaultServeMux.
package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration (expvar.Publish panics on
// duplicate names).
var publishOnce sync.Once

// PublishExpvar exposes the process recorder's snapshot as the expvar
// variable "neisky", next to the stdlib's memstats/cmdline on
// /debug/vars. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("neisky", expvar.Func(func() any {
			return Get().Snapshot()
		}))
	})
}

// MetricsHandler serves the process recorder's flattened metrics as
// JSON (sorted keys courtesy of encoding/json's map ordering); 0 keys
// when recording is disabled.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(Get().Metrics())
	})
}

// attached tracks which muxes already carry the debug routes.
// http.ServeMux panics on a duplicate pattern, so a process that both
// mounts the debug surface on its serving mux (nsserve) and starts the
// -pprof debug server — or reaches AttachDebug twice for the same mux
// through two wiring paths — must be guarded here, not at the callers.
var (
	attachMu sync.Mutex
	attached = map[*http.ServeMux]struct{}{}
)

// AttachDebug registers the debug surface on mux:
//
//	/debug/pprof/...   CPU, heap, goroutine, block, mutex profiles
//	/debug/vars        expvar (memstats + the "neisky" snapshot)
//	/debug/metrics     flattened recorder metrics as JSON
//
// It is idempotent per mux: attaching twice (e.g. a serving mux wired
// by both the server constructor and a CLI flag) registers the handlers
// once instead of panicking in http.ServeMux.
func AttachDebug(mux *http.ServeMux) {
	PublishExpvar()
	attachMu.Lock()
	defer attachMu.Unlock()
	if _, ok := attached[mux]; ok {
		return
	}
	attached[mux] = struct{}{}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/metrics", MetricsHandler())
}

// DebugMux returns a fresh private mux carrying the full debug surface
// (see AttachDebug).
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	AttachDebug(mux)
	return mux
}

// StartDebugServer enables the process recorder and serves DebugMux on
// addr in a background goroutine, returning the bound address (useful
// with ":0"). The server lives for the remainder of the process; the
// commands that call this hold it until exit.
func StartDebugServer(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	Enable()
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
