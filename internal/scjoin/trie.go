package scjoin

import (
	"sort"

	"neisky/internal/core"
	"neisky/internal/graph"
)

// Trie-based set containment join in the style of the TT-Join family
// (the paper's references [28], [29]): the query sets N(u) are loaded
// into a prefix tree over a global infrequent-element-first order, and
// each record N[w] probes the tree — every root path fully contained in
// the record identifies queries q ⊆ record. The paper's point about
// this family (the prefix tree over n queries costs real memory when
// |Q| ≈ |S|) is directly observable via TrieBytes.

// trieNode is one prefix-tree node; children are keyed by element and
// kept sorted for deterministic traversal.
type trieNode struct {
	elem     int32
	children []*trieNode
	// terminals lists query IDs whose element set ends at this node.
	terminals []int32
}

func (t *trieNode) child(elem int32) *trieNode {
	i := sort.Search(len(t.children), func(i int) bool { return t.children[i].elem >= elem })
	if i < len(t.children) && t.children[i].elem == elem {
		return t.children[i]
	}
	return nil
}

func (t *trieNode) ensureChild(elem int32) *trieNode {
	i := sort.Search(len(t.children), func(i int) bool { return t.children[i].elem >= elem })
	if i < len(t.children) && t.children[i].elem == elem {
		return t.children[i]
	}
	n := &trieNode{elem: elem}
	t.children = append(t.children, nil)
	copy(t.children[i+1:], t.children[i:])
	t.children[i] = n
	return n
}

// Trie is the query-side prefix tree plus the element order used to
// canonicalize sets.
type Trie struct {
	root  trieNode
	rank  []int32 // element -> position in the global order
	nodes int
}

// BuildTrie loads every vertex's open neighborhood N(u) as a query,
// canonicalized rare-element-first (ascending degree, ties by ID).
// Degree-0 vertices are skipped; their domination is definitional.
func BuildTrie(g *graph.Graph) *Trie {
	n := int32(g.N())
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	tr := &Trie{rank: make([]int32, n), nodes: 1}
	for r, v := range order {
		tr.rank[v] = int32(r)
	}
	buf := make([]int32, 0, 64)
	for u := int32(0); u < n; u++ {
		if g.Degree(u) == 0 {
			continue
		}
		buf = append(buf[:0], g.Neighbors(u)...)
		sort.Slice(buf, func(i, j int) bool { return tr.rank[buf[i]] < tr.rank[buf[j]] })
		node := &tr.root
		for _, x := range buf {
			next := node.child(x)
			if next == nil {
				next = node.ensureChild(x)
				tr.nodes++
			}
			node = next
		}
		node.terminals = append(node.terminals, u)
	}
	return tr
}

// Nodes returns the prefix-tree node count.
func (tr *Trie) Nodes() int { return tr.nodes }

// TrieBytes estimates the tree's memory footprint (per-node overhead of
// an element, a slice header and the child pointers).
func (tr *Trie) TrieBytes() int { return tr.nodes * 56 }

// ContainedQueries reports every query u with N(u) ⊆ record, where
// record is given as a membership test. visit receives each matching
// query ID.
func (tr *Trie) ContainedQueries(inRecord func(int32) bool, visit func(u int32)) {
	var dfs func(node *trieNode)
	dfs = func(node *trieNode) {
		for _, u := range node.terminals {
			visit(u)
		}
		for _, c := range node.children {
			if inRecord(c.elem) {
				dfs(c)
			}
		}
	}
	dfs(&tr.root)
}

// TrieSkyline computes the neighborhood skyline via the prefix-tree
// join: every record N[w] probes the trie; contained queries u ≠ w are
// neighborhood-included by w and the usual degree/ID rules resolve
// domination. Results are identical to the other skyline algorithms.
func TrieSkyline(g *graph.Graph, opts core.Options) *core.Result {
	tr := BuildTrie(g)
	return TrieSkylineWithIndex(g, tr, opts)
}

// TrieSkylineWithIndex is TrieSkyline with a pre-built prefix tree.
func TrieSkylineWithIndex(g *graph.Graph, tr *Trie, opts core.Options) *core.Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	res := &core.Result{}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	// Record membership bitmap reused across probes.
	member := make([]bool, n)
	for w := int32(0); w < n; w++ {
		if g.Degree(w) == 0 {
			continue
		}
		// Load N[w].
		member[w] = true
		for _, x := range g.Neighbors(w) {
			member[x] = true
		}
		tr.ContainedQueries(func(e int32) bool { return member[e] }, func(u int32) {
			if u == w {
				return
			}
			res.Stats.PairsExamined++
			du, dw := g.Degree(u), g.Degree(w)
			if du == dw {
				// Mutual inclusion; smaller ID dominates.
				if u > w {
					if o[u] == u {
						o[u] = w
					}
				} else if o[w] == w {
					o[w] = u
				}
				return
			}
			// du < dw always here (N(u) ⊆ N[w] forces du ≤ dw).
			if o[u] == u {
				o[u] = w
			}
		})
		member[w] = false
		for _, x := range g.Neighbors(w) {
			member[x] = false
		}
	}
	res.Dominator = o
	for u := int32(0); u < n; u++ {
		if o[u] == u {
			res.Skyline = append(res.Skyline, u)
		}
	}
	return res
}
