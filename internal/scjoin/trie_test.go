package scjoin

import (
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func TestTrieContainedQueries(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(12), 0.35)
		tr := BuildTrie(g)
		n := int32(g.N())
		member := make([]bool, n)
		for w := int32(0); w < n; w++ {
			member[w] = true
			for _, x := range g.Neighbors(w) {
				member[x] = true
			}
			got := map[int32]bool{}
			tr.ContainedQueries(func(e int32) bool { return member[e] }, func(u int32) {
				got[u] = true
			})
			for u := int32(0); u < n; u++ {
				want := g.Degree(u) > 0 && g.SubsetOpenInClosed(u, w)
				// The trie also reports u == w (its own neighborhood is
				// trivially contained); callers filter it.
				if u == w {
					want = g.Degree(u) > 0
				}
				if got[u] != want {
					t.Fatalf("record %d query %d: got %v want %v (edges %v)",
						w, u, got[u], want, g.EdgeList())
				}
			}
			member[w] = false
			for _, x := range g.Neighbors(w) {
				member[x] = false
			}
		}
	}
}

func TestTrieSkylineMatchesOracle(t *testing.T) {
	r := rng.New(16)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(20), 0.1+0.6*r.Float64())
		got := TrieSkyline(g, core.Options{})
		want := core.BruteForce(g)
		if !core.EqualSkylines(got.Skyline, want.Skyline) {
			t.Fatalf("trie skyline %v != oracle %v (edges %v)",
				got.Skyline, want.Skyline, g.EdgeList())
		}
	}
}

func TestTrieSkylineSpecialGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Clique(7), gen.Path(9), gen.Cycle(8), gen.Star(6),
		gen.CompleteBinaryTree(15), graph.NewBuilder(4).Build(),
	} {
		got := TrieSkyline(g, core.Options{})
		want := core.BruteForce(g)
		if !core.EqualSkylines(got.Skyline, want.Skyline) {
			t.Fatalf("trie disagrees with oracle (edges %v)", g.EdgeList())
		}
	}
}

func TestTriePrefixSharing(t *testing.T) {
	// A star's leaves all have the identical query {center}, so the
	// trie shares one path: root + 1 node.
	tr := BuildTrie(gen.Star(6))
	// Queries: 5 leaves share node {0}; center's query {1..5} adds 5
	// more nodes. Total = 1 root + 1 + 5.
	if tr.Nodes() != 7 {
		t.Fatalf("star trie nodes = %d, want 7", tr.Nodes())
	}
	if tr.TrieBytes() <= 0 {
		t.Fatal("TrieBytes must be positive")
	}
}

func TestTrieSkylinePowerLaw(t *testing.T) {
	g := gen.PowerLaw(400, 1200, 2.2, 9)
	a := TrieSkyline(g, core.Options{})
	b := core.FilterRefineSky(g, core.Options{})
	if !core.EqualSkylines(a.Skyline, b.Skyline) {
		t.Fatal("trie skyline disagrees on power-law graph")
	}
}

func TestQuickTrieOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 2
		r := rng.New(seed)
		g := randomGraph(r, n, 0.3)
		return core.EqualSkylines(
			TrieSkyline(g, core.Options{}).Skyline,
			core.BruteForce(g).Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
