// Package scjoin solves the neighborhood-skyline problem by reduction to
// a set containment join, the way the paper frames its LC-Join comparator
// (Exp-1/Exp-2).
//
// The join instance is: data set S = { N[w] : w ∈ V }, query set
// Q = { N(u) : u ∈ V }; u is neighborhood-included by w iff the record
// N[w] contains the query N(u). Following the list-crosscutting family of
// algorithms, we materialize an inverted index mapping every element x to
// the sorted list of records containing x (here L[x] = N(x) ∪ {x}) and
// answer each query by progressively intersecting the lists of its
// elements, rarest first. The explicit index is the point of the
// baseline: it reproduces the memory profile that makes LC-Join run out
// of memory on high-degree graphs in the paper.
package scjoin

import (
	"sort"

	"neisky/internal/core"
	"neisky/internal/graph"
)

// Index is the materialized inverted index over the record set S.
type Index struct {
	// lists[x] enumerates, in increasing ID order, the records (vertices
	// w) whose closed neighborhood contains x.
	lists [][]int32
}

// BuildIndex materializes the inverted index for graph g. It allocates
// Θ(n + 2m) int32s in fresh storage (deliberately not aliasing the CSR
// arrays — the join baseline pays for its own index).
func BuildIndex(g *graph.Graph) *Index {
	n := int32(g.N())
	lists := make([][]int32, n)
	for x := int32(0); x < n; x++ {
		nbrs := g.Neighbors(x)
		lst := make([]int32, 0, len(nbrs)+1)
		// Merge {x} into the sorted neighbor list.
		inserted := false
		for _, w := range nbrs {
			if !inserted && x < w {
				lst = append(lst, x)
				inserted = true
			}
			lst = append(lst, w)
		}
		if !inserted {
			lst = append(lst, x)
		}
		lists[x] = lst
	}
	return &Index{lists: lists}
}

// Bytes reports the index's approximate memory footprint.
func (ix *Index) Bytes() int {
	total := 0
	for _, l := range ix.lists {
		total += 4 * len(l)
	}
	return total
}

// Containers returns all records w ≠ u whose closed neighborhood contains
// the query N(u), i.e. all w with N(u) ⊆ N[w], by intersecting the
// inverted lists of u's neighbors (rarest list first). For a degree-0
// query it returns nil: every record contains the empty set, and the
// caller handles that case definitionally.
func (ix *Index) Containers(g *graph.Graph, u int32) []int32 {
	nbrs := g.Neighbors(u)
	if len(nbrs) == 0 {
		return nil
	}
	// Order query elements by ascending list length.
	order := make([]int32, len(nbrs))
	copy(order, nbrs)
	sort.Slice(order, func(i, j int) bool {
		return len(ix.lists[order[i]]) < len(ix.lists[order[j]])
	})
	// Seed with the rarest list, minus u itself.
	cur := make([]int32, 0, len(ix.lists[order[0]]))
	for _, w := range ix.lists[order[0]] {
		if w != u {
			cur = append(cur, w)
		}
	}
	buf := make([]int32, 0, len(cur))
	for _, x := range order[1:] {
		if len(cur) == 0 {
			return nil
		}
		lst := ix.lists[x]
		buf = buf[:0]
		i, j := 0, 0
		for i < len(cur) && j < len(lst) {
			switch {
			case cur[i] < lst[j]:
				i++
			case cur[i] > lst[j]:
				j++
			default:
				buf = append(buf, cur[i])
				i++
				j++
			}
		}
		cur, buf = append(cur[:0], buf...), cur
	}
	return cur
}

// Skyline computes the neighborhood skyline via the containment join.
// Semantics match core.BruteForce / core.BaseSky exactly (isolated
// vertices follow the definition unless opts.KeepIsolated).
func Skyline(g *graph.Graph, opts core.Options) *core.Result {
	ix := BuildIndex(g)
	return SkylineWithIndex(g, ix, opts)
}

// SkylineWithIndex is Skyline with a pre-built index, letting benchmarks
// separate index construction from join time.
func SkylineWithIndex(g *graph.Graph, ix *Index, opts core.Options) *core.Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	res := &core.Result{}
	if !opts.KeepIsolated {
		// Same definitional pre-pass as the core algorithms.
		markIsolated(g, o)
	}
	for u := int32(0); u < n; u++ {
		if o[u] != u || g.Degree(u) == 0 {
			continue
		}
		du := g.Degree(u)
		for _, w := range ix.Containers(g, u) {
			res.Stats.PairsExamined++
			dw := g.Degree(w)
			if dw == du {
				// Mutual inclusion (deg equality + inclusion, see core).
				if u > w {
					if o[u] == u {
						o[u] = w
					}
				} else if o[w] == w {
					o[w] = u
				}
				continue
			}
			if o[u] == u {
				o[u] = w
			}
			break
		}
	}
	res.Dominator = o
	for u := int32(0); u < n; u++ {
		if o[u] == u {
			res.Skyline = append(res.Skyline, u)
		}
	}
	return res
}

// markIsolated mirrors core's definitional handling of degree-0 vertices.
func markIsolated(g *graph.Graph, o []int32) {
	n := int32(g.N())
	dominator := int32(-1)
	for u := int32(0); u < n; u++ {
		if g.Degree(u) > 0 {
			dominator = u
			break
		}
	}
	if dominator == -1 {
		for u := int32(1); u < n; u++ {
			o[u] = 0
		}
		return
	}
	for u := int32(0); u < n; u++ {
		if g.Degree(u) == 0 {
			o[u] = dominator
		}
	}
}
