package scjoin

import (
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

func TestContainersMatchesDefinition(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 3+r.Intn(14), 0.35)
		ix := BuildIndex(g)
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			got := map[int32]bool{}
			for _, w := range ix.Containers(g, u) {
				got[w] = true
			}
			for w := int32(0); w < n; w++ {
				if w == u {
					continue
				}
				want := g.Degree(u) > 0 && g.SubsetOpenInClosed(u, w)
				if got[w] != want {
					t.Fatalf("Containers(%d) membership of %d = %v, want %v (edges %v)",
						u, w, got[w], want, g.EdgeList())
				}
			}
		}
	}
}

func TestSkylineMatchesOracle(t *testing.T) {
	r := rng.New(14)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(22), 0.1+0.6*r.Float64())
		got := Skyline(g, core.Options{})
		want := core.BruteForce(g)
		if !core.EqualSkylines(got.Skyline, want.Skyline) {
			t.Fatalf("scjoin skyline %v != oracle %v (edges %v)",
				got.Skyline, want.Skyline, g.EdgeList())
		}
	}
}

func TestSkylinePowerLaw(t *testing.T) {
	g := gen.PowerLaw(300, 900, 2.2, 5)
	got := Skyline(g, core.Options{})
	want := core.FilterRefineSky(g, core.Options{})
	if !core.EqualSkylines(got.Skyline, want.Skyline) {
		t.Fatal("scjoin disagrees with FilterRefineSky on power-law graph")
	}
}

func TestSkylineSpecialGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Clique(7), gen.Path(9), gen.Cycle(8), gen.CompleteBinaryTree(15),
		gen.Star(6), graph.NewBuilder(4).Build(),
	} {
		got := Skyline(g, core.Options{})
		want := core.BruteForce(g)
		if !core.EqualSkylines(got.Skyline, want.Skyline) {
			t.Fatalf("scjoin %v != oracle %v (edges %v)", got.Skyline, want.Skyline, g.EdgeList())
		}
	}
}

func TestIndexBytes(t *testing.T) {
	g := gen.Clique(5)
	ix := BuildIndex(g)
	// Each of the 5 lists has 5 entries (4 neighbors + self).
	if ix.Bytes() != 4*25 {
		t.Fatalf("index bytes = %d, want 100", ix.Bytes())
	}
}

func TestIndexListsSorted(t *testing.T) {
	g := gen.PowerLaw(100, 250, 2.4, 8)
	ix := BuildIndex(g)
	for x, lst := range ix.lists {
		for i := 1; i < len(lst); i++ {
			if lst[i-1] >= lst[i] {
				t.Fatalf("list %d not strictly sorted: %v", x, lst)
			}
		}
		// Self must be present.
		found := false
		for _, w := range lst {
			if w == int32(x) {
				found = true
			}
		}
		if !found {
			t.Fatalf("list %d missing self", x)
		}
	}
}

func TestQuickSkylineAgreement(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		r := rng.New(seed)
		g := randomGraph(r, n, 0.3)
		return core.EqualSkylines(
			Skyline(g, core.Options{}).Skyline,
			core.BruteForce(g).Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
