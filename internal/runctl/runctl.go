// Package runctl is the hardened execution layer shared by every engine
// in this repository: checkpoint-polled cancellation tokens, deadline
// propagation from context.Context, per-run work budgets, and
// panic-isolated worker groups.
//
// # Design
//
// The engines' hot loops cannot afford a context check per iteration, so
// cancellation is polled at checkpoints: a Checkpoint is a local
// countdown that pays one branch per loop iteration and one atomic load
// (plus budget/fault-injection bookkeeping) every `every` iterations.
// Cancellation is therefore honored within a bounded number of
// checkpoints — at most one full interval per goroutine after the cancel
// becomes visible — which the fault-injection tests assert exactly.
//
// A nil *Run is the disabled state: every method is nil-safe and the
// Checkpoint fast path degenerates to a single pointer comparison, so
// engines thread control through unconditionally and callers that pass
// context.Background() pay nothing measurable (see
// BenchmarkRunctlOverheadFig3).
//
// On cancellation the engines do not return garbage: each one returns a
// typed best-effort result carrying a Truncated marker and the
// cancellation cause — the filter phase's sound candidate superset, the
// branch-and-bound's best-so-far clique, the greedy's group built so
// far. See DESIGN.md §7 for the per-engine anytime contracts.
package runctl

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"neisky/internal/runctl/faultinject"
)

// ErrBudget is the cancellation cause recorded when a run exhausts its
// work budget (see WithBudget).
var ErrBudget = errors.New("runctl: work budget exhausted")

// Run is the shared control block of one cancellable computation. The
// zero value is a live, never-cancelled run; nil is the disabled state
// (every method is nil-safe).
type Run struct {
	stop      atomic.Bool
	cause     atomic.Pointer[error]
	seq       atomic.Int64 // checkpoint polls across all goroutines
	budgeted  bool
	budget    atomic.Int64 // remaining work units when budgeted
	stopWatch func() bool  // context.AfterFunc deregistration
}

// budgetKey carries a WithBudget value through a context.
type budgetKey struct{}

// WithBudget returns a context whose runctl runs are limited to
// approximately `units` checkpoint ticks of work (one tick ≈ one vertex
// or search node, depending on the engine). Exhaustion cancels the run
// with ErrBudget; engines then return their usual truncated result.
func WithBudget(ctx context.Context, units int64) context.Context {
	return context.WithValue(ctx, budgetKey{}, units)
}

// FromContext derives a Run from ctx. It returns nil — the zero-cost
// disabled state — when ctx carries no cancellation signal, no deadline,
// and no budget, and no fault-injection hook is installed. Callers own
// the returned run and should `defer run.Release()` to deregister the
// context watcher promptly (Release is nil-safe).
func FromContext(ctx context.Context) *Run {
	if ctx == nil {
		return nil
	}
	budget, hasBudget := ctx.Value(budgetKey{}).(int64)
	if ctx.Done() == nil && !hasBudget && !faultinject.Enabled() {
		return nil
	}
	r := &Run{}
	if hasBudget {
		r.budgeted = true
		r.budget.Store(budget)
	}
	if ctx.Done() != nil {
		if err := context.Cause(ctx); err != nil {
			r.Cancel(err)
			return r
		}
		r.stopWatch = context.AfterFunc(ctx, func() {
			r.Cancel(context.Cause(ctx))
		})
	}
	return r
}

// CauseString maps a cancellation cause to the stable short strings the
// CLIs and the serving API report: "timeout" for a missed deadline,
// "canceled" for an explicit cancel (or a dropped client connection),
// "budget" for ErrBudget, "panic" for an isolated worker panic, the
// error text otherwise, and "" for nil (a complete run).
func CauseString(err error) string {
	if err == nil {
		return ""
	}
	var pe *PanicError
	switch {
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return err.Error()
}

// Ensure returns r, or a fresh live Run when r is nil. Parallel engines
// call it so worker panics always have a run to cancel — siblings then
// drain at their next checkpoint instead of running to completion.
func Ensure(r *Run) *Run {
	if r == nil {
		return &Run{}
	}
	return r
}

// Release deregisters the context watcher installed by FromContext.
// Safe on nil runs and runs without a watcher.
func (r *Run) Release() {
	if r != nil && r.stopWatch != nil {
		r.stopWatch()
	}
}

// Cancel requests cooperative cancellation with the given cause. The
// first cause wins; later calls are no-ops. Safe on nil runs and from
// any goroutine.
func (r *Run) Cancel(err error) {
	if r == nil {
		return
	}
	if err == nil {
		err = context.Canceled
	}
	r.cause.CompareAndSwap(nil, &err)
	r.stop.Store(true)
}

// Stopped reports whether the run has been cancelled (by context,
// deadline, budget exhaustion, worker panic, or fault injection).
func (r *Run) Stopped() bool {
	return r != nil && r.stop.Load()
}

// Err returns the cancellation cause, or nil while the run is live.
func (r *Run) Err() error {
	if r == nil || !r.stop.Load() {
		return nil
	}
	if p := r.cause.Load(); p != nil {
		return *p
	}
	return context.Canceled
}

// Checkpoints returns the total number of slow-path checkpoint polls
// executed so far across all goroutines of the run. The fault-injection
// tests use it to prove cancellation latency is bounded.
func (r *Run) Checkpoints() int64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// poll is the slow path of Checkpoint.Tick: bump the checkpoint
// sequence, consult the fault-injection hook, charge the work budget,
// and read the stop flag.
func (r *Run) poll(units int64) bool {
	seq := r.seq.Add(1)
	if h := faultinject.Current(); h != nil {
		switch h(seq) {
		case faultinject.ActionCancel:
			r.Cancel(faultinject.ErrInjected)
		case faultinject.ActionPanic:
			panic(&faultinject.InjectedPanic{Seq: seq})
		}
	}
	if r.budgeted && r.budget.Add(-units) < 0 {
		r.Cancel(ErrBudget)
	}
	return r.stop.Load()
}

// Checkpoint is a per-goroutine cancellation probe for hot loops: Tick
// costs one branch per call and consults the shared run state once per
// `every` calls. A Checkpoint belongs to a single goroutine; take one
// per worker.
type Checkpoint struct {
	run   *Run
	every int32
	n     int32
}

// Checkpoint returns a probe polling the run every `every` ticks
// (values < 1 are clamped to 1). On a nil run the probe's Tick is a
// single pointer comparison and never fires.
func (r *Run) Checkpoint(every int) Checkpoint {
	if r == nil {
		return Checkpoint{}
	}
	if every < 1 {
		every = 1
	}
	return Checkpoint{run: r, every: int32(every)}
}

// Tick records one unit of work and reports whether the run should
// stop. Hot-loop safe: the slow path runs once per `every` ticks.
func (c *Checkpoint) Tick() bool {
	if c.run == nil {
		return false
	}
	c.n++
	if c.n < c.every {
		return false
	}
	c.n = 0
	return c.run.poll(int64(c.every))
}

// Stop reports the run's stop flag directly, without advancing the
// countdown — for coarse once-per-round checks outside hot loops.
func (c *Checkpoint) Stop() bool {
	return c.run != nil && c.run.stop.Load()
}

// PanicError is a worker panic captured by a Group: the recovered value
// plus the goroutine stack at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runctl: worker panic: %v\n%s", e.Value, e.Stack)
}

// Group runs worker goroutines with panic isolation: a panicking worker
// is recovered into a *PanicError instead of killing the process, the
// group's run is cancelled so sibling workers drain at their next
// checkpoint, and Wait surfaces the first failure once. The zero Group
// is unusable; construct with NewGroup.
type Group struct {
	run *Run
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// NewGroup returns a worker group bound to run (which may be nil:
// panics are still isolated, but siblings run to completion since there
// is no run to cancel — prefer Ensure(run) for prompt draining).
func NewGroup(run *Run) *Group {
	return &Group{run: run}
}

// Go launches fn on a new goroutine with panic isolation.
func (g *Group) Go(fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if v := recover(); v != nil {
				pe := &PanicError{Value: v, Stack: debug.Stack()}
				g.mu.Lock()
				if g.err == nil {
					g.err = pe
				}
				g.mu.Unlock()
				g.run.Cancel(pe)
			}
		}()
		fn()
	}()
}

// Wait blocks until every launched worker has returned and reports the
// first captured panic, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
