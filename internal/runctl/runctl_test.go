package runctl

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"neisky/internal/runctl/faultinject"
	"neisky/internal/testleak"
)

func TestFromContextDisabled(t *testing.T) {
	if run := FromContext(context.Background()); run != nil {
		t.Fatalf("background context must yield the nil (disabled) run, got %v", run)
	}
	if run := FromContext(nil); run != nil {
		t.Fatal("nil context must yield the nil run")
	}
	// Every method must be nil-safe.
	var run *Run
	run.Release()
	run.Cancel(errors.New("x"))
	if run.Stopped() || run.Err() != nil || run.Checkpoints() != 0 {
		t.Fatal("nil run must report live/empty state")
	}
	cp := run.Checkpoint(8)
	for i := 0; i < 100; i++ {
		if cp.Tick() {
			t.Fatal("nil-run checkpoint must never fire")
		}
	}
	if cp.Stop() {
		t.Fatal("nil-run checkpoint Stop must be false")
	}
}

func TestFromContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := FromContext(ctx)
	defer run.Release()
	if run == nil || !run.Stopped() {
		t.Fatal("pre-cancelled context must yield an already-stopped run")
	}
	if !errors.Is(run.Err(), context.Canceled) {
		t.Fatalf("cause = %v, want context.Canceled", run.Err())
	}
}

func TestDeadlinePropagation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	run := FromContext(ctx)
	defer run.Release()
	if run == nil {
		t.Fatal("deadline context must yield a live run")
	}
	cp := run.Checkpoint(1)
	deadline := time.Now().Add(5 * time.Second)
	for !cp.Tick() {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never observed the deadline")
		}
	}
	if !errors.Is(run.Err(), context.DeadlineExceeded) {
		t.Fatalf("cause = %v, want context.DeadlineExceeded", run.Err())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	const budget = 100
	run := FromContext(WithBudget(context.Background(), budget))
	defer run.Release()
	if run == nil {
		t.Fatal("budgeted context must yield a live run")
	}
	cp := run.Checkpoint(10)
	ticks := 0
	for !cp.Tick() {
		ticks++
		if ticks > 10*budget {
			t.Fatal("budget never fired")
		}
	}
	// The budget is charged in `every`-sized units, so exhaustion lands
	// within one interval of the nominal budget.
	if ticks < budget-10 || ticks > budget+10 {
		t.Fatalf("budget fired after %d ticks, want ≈%d", ticks, budget)
	}
	if !errors.Is(run.Err(), ErrBudget) {
		t.Fatalf("cause = %v, want ErrBudget", run.Err())
	}
}

func TestReleaseDeregistersWatcher(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run := FromContext(ctx)
	run.Release()
	cancel()
	// The watcher was deregistered before the cancel, so the run must
	// stay live (poll a few times to give a stray AfterFunc a chance to
	// misfire).
	time.Sleep(5 * time.Millisecond)
	if run.Stopped() {
		t.Fatal("released run must not observe a later context cancel")
	}
}

func TestCancelFirstCauseWins(t *testing.T) {
	run := &Run{}
	first := errors.New("first")
	run.Cancel(first)
	run.Cancel(errors.New("second"))
	if !errors.Is(run.Err(), first) {
		t.Fatalf("cause = %v, want the first cancel's error", run.Err())
	}
}

// TestCancellationBoundSerial proves the core latency contract: once a
// cancellation fires at checkpoint sequence K, a serial loop ticking a
// Checkpoint(every) observes it within one full interval — at most
// K·every + every ticks from the start.
func TestCancellationBoundSerial(t *testing.T) {
	const K, every = 7, 64
	restore := faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= K {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
	defer restore()

	run := FromContext(context.Background())
	defer run.Release()
	if run == nil {
		t.Fatal("an installed fault hook must force a live run")
	}
	cp := run.Checkpoint(every)
	ticks := 0
	for !cp.Tick() {
		ticks++
		if ticks > 2*K*every {
			t.Fatal("cancellation never observed")
		}
	}
	ticks++ // the firing tick
	if ticks != K*every {
		t.Fatalf("observed at tick %d, want exactly K·every = %d (serial loop)", ticks, K*every)
	}
	if run.Checkpoints() != K {
		t.Fatalf("run executed %d polls, want exactly K = %d", run.Checkpoints(), K)
	}
	if !errors.Is(run.Err(), faultinject.ErrInjected) {
		t.Fatalf("cause = %v, want ErrInjected", run.Err())
	}
}

// TestCancellationBoundParallel proves the multi-goroutine bound: after
// the hook cancels at sequence K, each of W workers may complete at most
// the poll already in flight plus one more interval before observing the
// stop flag, so the total poll count is bounded by K + 2·W.
func TestCancellationBoundParallel(t *testing.T) {
	defer testleak.Check(t)()
	const K, workers = 50, 8
	restore := faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= K {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
	defer restore()

	run := FromContext(context.Background())
	defer run.Release()
	group := NewGroup(run)
	for w := 0; w < workers; w++ {
		group.Go(func() {
			cp := run.Checkpoint(1)
			for !cp.Tick() {
			}
		})
	}
	if err := group.Wait(); err != nil {
		t.Fatalf("unexpected worker error: %v", err)
	}
	if polls := run.Checkpoints(); polls > K+2*workers {
		t.Fatalf("%d polls after cancellation at seq %d with %d workers; bound is K+2W = %d",
			polls, K, workers, K+2*workers)
	}
}

// TestGroupPanicIsolation asserts the three panic-isolation guarantees:
// the panic is recovered (not a process kill), siblings drain via the
// cancelled run instead of running forever, and Wait surfaces the panic
// exactly once as a *PanicError.
func TestGroupPanicIsolation(t *testing.T) {
	defer testleak.Check(t)()
	run := Ensure(nil)
	group := NewGroup(run)
	boom := errors.New("boom")
	group.Go(func() { panic(boom) })
	var drained atomic.Int32
	for w := 0; w < 4; w++ {
		group.Go(func() {
			cp := run.Checkpoint(1)
			for !cp.Tick() {
			}
			drained.Add(1)
		})
	}
	err := group.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	if pe.Value != boom {
		t.Fatalf("recovered value = %v, want the panic payload", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError must capture the goroutine stack")
	}
	if drained.Load() != 4 {
		t.Fatalf("%d siblings drained, want all 4", drained.Load())
	}
	if !run.Stopped() || !errors.As(run.Err(), &pe) {
		t.Fatal("a worker panic must cancel the shared run with the PanicError cause")
	}
}

// TestInjectedPanicThroughGroup exercises the fault-injection panic path
// end to end: an ActionPanic at an exact sequence number surfaces as a
// *PanicError wrapping *InjectedPanic, with no goroutine leaked.
func TestInjectedPanicThroughGroup(t *testing.T) {
	defer testleak.Check(t)()
	const K = 5
	restore := faultinject.Set(func(seq int64) faultinject.Action {
		if seq == K {
			return faultinject.ActionPanic
		}
		return faultinject.ActionNone
	})
	defer restore()

	run := FromContext(context.Background())
	defer run.Release()
	group := NewGroup(run)
	for w := 0; w < 4; w++ {
		group.Go(func() {
			cp := run.Checkpoint(1)
			for !cp.Tick() {
			}
		})
	}
	err := group.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait = %v, want *PanicError", err)
	}
	ip, ok := pe.Value.(*faultinject.InjectedPanic)
	if !ok {
		t.Fatalf("panic value = %v, want *InjectedPanic", pe.Value)
	}
	if ip.Seq != K {
		t.Fatalf("panic fired at seq %d, want %d", ip.Seq, K)
	}
}

// TestConcurrentCancelAndPoll runs cancels, polls and reads together so
// `go test -race` can vet the Run state machine.
func TestConcurrentCancelAndPoll(t *testing.T) {
	defer testleak.Check(t)()
	run := &Run{}
	group := NewGroup(run)
	for w := 0; w < 4; w++ {
		group.Go(func() {
			cp := run.Checkpoint(4)
			for !cp.Tick() {
				_ = run.Stopped()
				_ = run.Err()
			}
		})
	}
	group.Go(func() { run.Cancel(context.Canceled) })
	if err := group.Wait(); err != nil {
		t.Fatal(err)
	}
	if !run.Stopped() {
		t.Fatal("run must be stopped")
	}
}

func TestFaultinjectSetRestore(t *testing.T) {
	if faultinject.Enabled() {
		t.Fatal("no hook expected at test start")
	}
	restore := faultinject.Set(func(int64) faultinject.Action { return faultinject.ActionNone })
	if !faultinject.Enabled() || faultinject.Current() == nil {
		t.Fatal("hook must be installed")
	}
	restore()
	if faultinject.Enabled() || faultinject.Current() != nil {
		t.Fatal("restore must reinstate the empty state")
	}
}

// BenchmarkCheckpointTick pins the per-iteration cost of the probe in
// its three states: nil run (engines called without a context), live
// run between polls, and the slow-path poll itself.
func BenchmarkCheckpointTick(b *testing.B) {
	b.Run("nil-run", func(b *testing.B) {
		var run *Run
		cp := run.Checkpoint(1024)
		for i := 0; i < b.N; i++ {
			if cp.Tick() {
				b.Fatal("fired")
			}
		}
	})
	b.Run("live-run-1024", func(b *testing.B) {
		run := &Run{}
		cp := run.Checkpoint(1024)
		for i := 0; i < b.N; i++ {
			if cp.Tick() {
				b.Fatal("fired")
			}
		}
	})
	b.Run("poll-every-tick", func(b *testing.B) {
		run := &Run{}
		cp := run.Checkpoint(1)
		for i := 0; i < b.N; i++ {
			if cp.Tick() {
				b.Fatal("fired")
			}
		}
	})
}
