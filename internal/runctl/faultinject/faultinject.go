// Package faultinject provides deterministic fault injection for the
// runctl execution layer. Tests install a Hook that runctl consults at
// every slow-path checkpoint poll, keyed by the process-wide checkpoint
// sequence number; the hook can request cancellation or a simulated
// worker panic at an exact, reproducible point in the computation.
//
// When no hook is installed the cost to production code is one atomic
// pointer load per checkpoint poll (i.e. one per ~N loop iterations),
// which the runctl overhead benchmarks pin in the noise.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Action is a hook's verdict for one checkpoint poll.
type Action int

const (
	// ActionNone lets the poll proceed normally.
	ActionNone Action = iota
	// ActionCancel cancels the polling run with ErrInjected.
	ActionCancel
	// ActionPanic panics in the polling goroutine with an
	// *InjectedPanic value, simulating a crashing worker.
	ActionPanic
)

// Hook inspects one checkpoint poll. seq is the run's checkpoint
// sequence number (1-based, incremented once per slow-path poll across
// all goroutines of the run). Hooks must be safe for concurrent use:
// parallel engines poll from many workers.
type Hook func(seq int64) Action

// ErrInjected is the cancellation cause recorded when a hook returns
// ActionCancel.
var ErrInjected = errors.New("faultinject: injected cancellation")

// ErrKilled is the error instrumented durability paths return when a
// point hook simulates a process death (ActionKill): the operation
// aborts immediately, leaving its on-disk state exactly as it was at
// the kill-point, and the owning object wedges itself so every later
// call fails the same way — the in-process analogue of kill -9.
var ErrKilled = errors.New("faultinject: killed at injection point")

// InjectedPanic is the value panicked with for ActionPanic, so tests
// can assert that a surfaced worker panic is the injected one.
type InjectedPanic struct {
	Seq int64 // checkpoint sequence number the panic fired at
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at checkpoint %d", p.Seq)
}

var hook atomic.Pointer[Hook]

// Set installs h as the process-wide hook and returns a restore
// function that reinstates the previous hook. Intended for tests:
//
//	defer faultinject.Set(func(seq int64) faultinject.Action { ... })()
func Set(h Hook) (restore func()) {
	var p *Hook
	if h != nil {
		p = &h
	}
	old := hook.Swap(p)
	return func() { hook.Store(old) }
}

// Enabled reports whether a hook is currently installed. runctl uses it
// to force checkpoint plumbing on even for background contexts, so
// fault-injection tests exercise the exact production polling path.
func Enabled() bool { return hook.Load() != nil }

// Current returns the installed hook, or nil.
func Current() Hook {
	if p := hook.Load(); p != nil {
		return *p
	}
	return nil
}

// Named structural kill-points. Unlike the checkpoint hook above —
// which is keyed by a global poll sequence and suits loop-shaped
// computations — durability code (internal/wal) declares crash sites by
// name at exact structural positions: after a partial record write,
// between a checkpoint rename and the segment truncation, and so on. A
// PointHook sees each site's name plus how many times THAT site has
// fired, so a test can deterministically kill "the 3rd rotation" and
// then assert what a restart recovers.
//
// ActionKill is the only meaningful verdict for a point hook (the
// instrumented paths are not runctl polling loops); ActionNone lets the
// operation proceed.

// PointHook inspects one named kill-point. hits is 1-based and counted
// per point name since the hook was installed. Hooks must be safe for
// concurrent use.
type PointHook func(point string, hits int64) Action

// ActionKill aborts the instrumented operation with ErrKilled, leaving
// partial on-disk state behind — a simulated process death.
const ActionKill Action = 3

type pointState struct {
	h    PointHook
	mu   sync.Mutex
	hits map[string]int64
}

var points atomic.Pointer[pointState]

// SetPoints installs h as the process-wide kill-point hook (nil
// uninstalls) and returns a restore function reinstating the previous
// hook. Hit counts start fresh at every install.
func SetPoints(h PointHook) (restore func()) {
	var p *pointState
	if h != nil {
		p = &pointState{h: h, hits: make(map[string]int64)}
	}
	old := points.Swap(p)
	return func() { points.Store(old) }
}

// At consults the kill-point hook for the named site. With no hook
// installed it is one atomic pointer load — cheap enough to leave in
// production append paths.
func At(point string) Action {
	p := points.Load()
	if p == nil {
		return ActionNone
	}
	p.mu.Lock()
	p.hits[point]++
	n := p.hits[point]
	p.mu.Unlock()
	return p.h(point, n)
}
