// Package faultinject provides deterministic fault injection for the
// runctl execution layer. Tests install a Hook that runctl consults at
// every slow-path checkpoint poll, keyed by the process-wide checkpoint
// sequence number; the hook can request cancellation or a simulated
// worker panic at an exact, reproducible point in the computation.
//
// When no hook is installed the cost to production code is one atomic
// pointer load per checkpoint poll (i.e. one per ~N loop iterations),
// which the runctl overhead benchmarks pin in the noise.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Action is a hook's verdict for one checkpoint poll.
type Action int

const (
	// ActionNone lets the poll proceed normally.
	ActionNone Action = iota
	// ActionCancel cancels the polling run with ErrInjected.
	ActionCancel
	// ActionPanic panics in the polling goroutine with an
	// *InjectedPanic value, simulating a crashing worker.
	ActionPanic
)

// Hook inspects one checkpoint poll. seq is the run's checkpoint
// sequence number (1-based, incremented once per slow-path poll across
// all goroutines of the run). Hooks must be safe for concurrent use:
// parallel engines poll from many workers.
type Hook func(seq int64) Action

// ErrInjected is the cancellation cause recorded when a hook returns
// ActionCancel.
var ErrInjected = errors.New("faultinject: injected cancellation")

// InjectedPanic is the value panicked with for ActionPanic, so tests
// can assert that a surfaced worker panic is the injected one.
type InjectedPanic struct {
	Seq int64 // checkpoint sequence number the panic fired at
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at checkpoint %d", p.Seq)
}

var hook atomic.Pointer[Hook]

// Set installs h as the process-wide hook and returns a restore
// function that reinstates the previous hook. Intended for tests:
//
//	defer faultinject.Set(func(seq int64) faultinject.Action { ... })()
func Set(h Hook) (restore func()) {
	var p *Hook
	if h != nil {
		p = &h
	}
	old := hook.Swap(p)
	return func() { hook.Store(old) }
}

// Enabled reports whether a hook is currently installed. runctl uses it
// to force checkpoint plumbing on even for background contexts, so
// fault-injection tests exercise the exact production polling path.
func Enabled() bool { return hook.Load() != nil }

// Current returns the installed hook, or nil.
func Current() Hook {
	if p := hook.Load(); p != nil {
		return *p
	}
	return nil
}
