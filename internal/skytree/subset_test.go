package skytree

import (
	"context"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// bruteSubset computes the skyline of G[Q] by full pairwise scans.
func bruteSubset(g *graph.Graph, sub []int32) []int32 {
	in := make([]bool, g.N())
	for _, v := range sub {
		in[v] = true
	}
	var out []int32
	for v := int32(0); v < int32(g.N()); v++ {
		if !in[v] {
			continue
		}
		dominated := false
		if bruteDeg(g, in, v) > 0 {
			for w := int32(0); w < int32(g.N()) && !dominated; w++ {
				if in[w] && bruteDominates(g, in, w, v) {
					dominated = true
				}
			}
		}
		if !dominated {
			out = append(out, v)
		}
	}
	return out
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSubsetMatchesOracle(t *testing.T) {
	r := rng.New(31)
	for name, g := range testFamilies(r) {
		tr := Build(g, BuildOptions{})
		for trial := 0; trial < 20; trial++ {
			var sub []int32
			for v := int32(0); v < int32(g.N()); v++ {
				if r.Float64() < 0.4 {
					sub = append(sub, v)
				}
			}
			want := bruteSubset(g, sub)
			withTree := SubsetSkyline(g, tr, sub)
			noTree := SubsetSkyline(g, nil, sub)
			if !sameIDs(withTree.Skyline, want) {
				t.Fatalf("%s: tree-assisted %v != oracle %v (Q=%v)", name, withTree.Skyline, want, sub)
			}
			if !sameIDs(noTree.Skyline, want) {
				t.Fatalf("%s: unassisted %v != oracle %v (Q=%v)", name, noTree.Skyline, want, sub)
			}
		}
	}
}

func TestSubsetFullSetIsLayerZero(t *testing.T) {
	// Q = V reduces to the level-0 skyline, modulo the isolated-vertex
	// convention both sides share.
	r := rng.New(33)
	g := gen.ER(50, 0.12, r.Uint64())
	tr := Build(g, BuildOptions{})
	all := make([]int32, g.N())
	for v := range all {
		all[v] = int32(v)
	}
	got := SubsetSkyline(g, tr, all)
	if !sameIDs(got.Skyline, tr.LayerVertices(0)) {
		t.Fatalf("subset(V) %v != layer 0 %v", got.Skyline, tr.LayerVertices(0))
	}
}

func TestSubsetInputHygiene(t *testing.T) {
	g := gen.Path(6)
	tr := Build(g, BuildOptions{})
	// Duplicates, out-of-range and unsorted input are all tolerated.
	got := SubsetSkyline(g, tr, []int32{5, 2, 2, -1, 99, 0})
	want := bruteSubset(g, []int32{0, 2, 5})
	if !sameIDs(got.Skyline, want) {
		t.Fatalf("hygiene: %v != %v", got.Skyline, want)
	}
	if empty := SubsetSkyline(g, tr, nil); len(empty.Skyline) != 0 || empty.Truncated {
		t.Fatalf("empty subset: %+v", empty)
	}
}

func TestSubsetCancelledIsSuperset(t *testing.T) {
	r := rng.New(35)
	g := gen.ER(300, 0.03, r.Uint64())
	tr := Build(g, BuildOptions{})
	all := make([]int32, g.N())
	for v := range all {
		all[v] = int32(v)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := SubsetSkylineCtx(ctx, g, tr, all)
	if !got.Truncated || got.Err == nil {
		t.Fatalf("cancelled subset: Truncated=%v Err=%v", got.Truncated, got.Err)
	}
	exact := map[int32]bool{}
	for _, v := range bruteSubset(g, all) {
		exact[v] = true
	}
	in := map[int32]bool{}
	for _, v := range got.Skyline {
		in[v] = true
	}
	for v := range exact {
		if !in[v] {
			t.Fatalf("truncated result dropped skyline vertex %d", v)
		}
	}
}

func TestSubsetWitnessCountersMove(t *testing.T) {
	r := rng.New(37)
	g := gen.BA(200, 4, r.Uint64())
	tr := Build(g, BuildOptions{})
	all := make([]int32, g.N())
	for v := range all {
		all[v] = int32(v)
	}
	res := SubsetSkyline(g, tr, all)
	if res.PairsExamined == 0 {
		t.Fatal("no pairs examined on a dense query")
	}
	if res.WitnessHits == 0 {
		t.Fatal("parent witness never hit on Q=V (it must: parents dominate at their level, and Q=V contains every witness)")
	}
}
