package skytree

import (
	"context"
	"fmt"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// Maintainer keeps a layered dominance index exact under edge
// insertions and deletions, unifying with internal/dynsky: the dynsky
// maintainer owns the mutable adjacency (and its own level-0 skyline),
// and the tree maintainer layers every vertex on top of it.
//
// Locality. An update to edge (u, v) can flip a level-k domination
// pair (w, x) only when the edge is incident to x or w, which confines
// the directly-affected vertices to the 2-hop neighborhoods of the
// endpoints (dynsky's argument, level by level). Layer REASSIGNMENTS
// can then cascade: x's level-k status reads the S_k membership of x's
// neighbors, of its candidate dominators (2 hops), and — through the
// mutual-inclusion tie check — of the candidates' neighbors (3 hops).
// The maintainer therefore re-peels a dirty region seeded with the
// union of the endpoints' 2-hop neighborhoods before and after the
// update, and extends it with the 3-hop neighborhood of every vertex
// whose layer actually changed, iterating to a fixpoint. The peel's
// layering is the unique assignment that is locally consistent at
// every vertex, so when the cascade stops growing the incremental
// result equals a from-scratch rebuild — the oracle property the test
// battery checks on random update streams.
//
// Typical updates touch a handful of vertices; a pathological update
// (one that re-layers a hub's whole neighborhood) degrades gracefully
// toward a full re-peel.
type Maintainer struct {
	dyn    *dynsky.Maintainer
	layer  []int32
	parent []int32
	counts []int // per-layer vertex counts (termination bound + stats)

	scratch struct {
		dirty    []int32
		inDirty  []bool
		baseline []int32 // layer value when the vertex entered dirty
	}
}

// NewMaintainer builds a maintainer for g, constructing the initial
// tree from scratch (see Build).
func NewMaintainer(g *graph.Graph, opts BuildOptions) *Maintainer {
	return NewMaintainerFromTree(g, Build(g, opts))
}

// NewMaintainerFromTree seeds a maintainer from an existing complete
// tree of g, skipping the from-scratch peel — the path the serving
// daemon uses to carry the index across an edge-batch snapshot swap.
// Truncated trees are rejected (their unassigned layers would poison
// every locality argument).
func NewMaintainerFromTree(g *graph.Graph, t *Tree) *Maintainer {
	if t.Truncated {
		panic("skytree: NewMaintainerFromTree needs a complete tree")
	}
	if t.N() != g.N() {
		panic(fmt.Sprintf("skytree: tree has %d vertices, graph %d", t.N(), g.N()))
	}
	m := &Maintainer{
		dyn:    dynsky.New(g),
		layer:  append([]int32(nil), t.layer...),
		parent: append([]int32(nil), t.parent...),
	}
	m.counts = make([]int, t.NumLayers())
	for _, l := range m.layer {
		m.counts[l]++
	}
	m.scratch.inDirty = make([]bool, g.N())
	m.scratch.baseline = make([]int32, g.N())
	return m
}

// N returns the vertex count.
func (m *Maintainer) N() int { return m.dyn.N() }

// M returns the current edge count.
func (m *Maintainer) M() int { return m.dyn.M() }

// Dyn exposes the underlying dynsky maintainer (level-0 skyline,
// adjacency queries).
func (m *Maintainer) Dyn() *dynsky.Maintainer { return m.dyn }

// Layer returns v's current dominance layer.
func (m *Maintainer) Layer(v int32) int32 { return m.layer[v] }

// Parent returns v's current parent witness (-1 for layer 0).
func (m *Maintainer) Parent(v int32) int32 { return m.parent[v] }

// NumLayers returns the current number of layers.
func (m *Maintainer) NumLayers() int { return len(m.counts) }

// Tree snapshots the current index as an immutable Tree.
func (m *Maintainer) Tree() *Tree {
	t := &Tree{
		layer:  append([]int32(nil), m.layer...),
		parent: append([]int32(nil), m.parent...),
	}
	t.buildLayerLists()
	return t
}

// Graph snapshots the current adjacency as an immutable CSR graph.
func (m *Maintainer) Graph() *graph.Graph { return m.dyn.Graph() }

// AddEdge inserts the undirected edge (u, v), updates the level-0
// skyline (dynsky) and re-layers the affected region. Reports whether
// the edge was new.
func (m *Maintainer) AddEdge(u, v int32) bool {
	if u == v || m.dyn.Has(u, v) {
		return false
	}
	seed := m.dyn.Affected2Hop(u, v)
	m.dyn.AddEdge(u, v)
	m.update(seed, m.dyn.Affected2Hop(u, v))
	return true
}

// RemoveEdge deletes the undirected edge (u, v) and re-layers the
// affected region. Reports whether the edge existed.
func (m *Maintainer) RemoveEdge(u, v int32) bool {
	if u == v || !m.dyn.Has(u, v) {
		return false
	}
	seed := m.dyn.Affected2Hop(u, v)
	m.dyn.RemoveEdge(u, v)
	m.update(seed, m.dyn.Affected2Hop(u, v))
	return true
}

// Apply executes a batch of updates, returning how many changed the
// graph.
func (m *Maintainer) Apply(ops []dynsky.Op) int {
	_, applied, _ := m.applyRun(nil, ops)
	return applied
}

// ApplyCtx is Apply under a context. Updates are atomic — the index is
// exact for the prefix applied so far — so cancellation lands between
// ops, returning the applied count and the cause.
func (m *Maintainer) ApplyCtx(ctx context.Context, ops []dynsky.Op) (applied int, err error) {
	_, applied, err = m.ApplyPrefixCtx(ctx, ops)
	return applied, err
}

// ApplyPrefixCtx is ApplyCtx, additionally reporting the processed
// prefix length (processed ≥ applied; no-op updates are processed but
// not applied) — the prefix the serving daemon's write-ahead log
// persists so a replay reproduces this exact state.
func (m *Maintainer) ApplyPrefixCtx(ctx context.Context, ops []dynsky.Op) (processed, applied int, err error) {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return m.applyRun(run, ops)
}

func (m *Maintainer) applyRun(run *runctl.Run, ops []dynsky.Op) (processed, applied int, err error) {
	cp := run.Checkpoint(1) // each op is already a multi-hop re-peel
	for _, op := range ops {
		if cp.Tick() {
			return processed, applied, run.Err()
		}
		if op.Add {
			if m.AddEdge(op.U, op.V) {
				applied++
			}
		} else if m.RemoveEdge(op.U, op.V) {
			applied++
		}
		processed++
	}
	return processed, applied, nil
}

// view returns the level-predicate view over the live adjacency.
func (m *Maintainer) view() levelView {
	return levelView{av: dynView{m: m.dyn}, layer: m.layer}
}

// enter adds v to the dirty set, recording its current layer as the
// baseline outside observers last saw.
func (m *Maintainer) enter(v int32) {
	if m.scratch.inDirty[v] {
		return
	}
	m.scratch.inDirty[v] = true
	m.scratch.baseline[v] = m.layer[v]
	m.scratch.dirty = append(m.scratch.dirty, v)
}

// update re-layers the region an edge update can affect: the union of
// the endpoints' 2-hop neighborhoods before and after the update, then
// the cascade closure described on Maintainer.
func (m *Maintainer) update(before, after []int32) {
	r := obs.Get()
	defer r.Start("skytree.update").End()

	m.scratch.dirty = m.scratch.dirty[:0]
	for _, v := range before {
		m.enter(v)
	}
	for _, v := range after {
		m.enter(v)
	}

	for {
		m.peelLocal(m.scratch.dirty)
		// Extend with the 3-hop neighborhoods of vertices whose layer
		// moved off its baseline; those layers are what the predicates
		// of not-yet-dirty vertices read.
		grew := false
		for _, v := range m.scratch.dirty {
			if m.layer[v] != m.scratch.baseline[v] {
				m.absorb3Hop(v, &grew)
			}
		}
		if !grew {
			break
		}
	}
	r.Add("skytree.update.dirty", int64(len(m.scratch.dirty)))

	// Parents: every dirty vertex gets its canonical witness
	// recomputed; vertices outside the closure kept their layer and
	// their 3-hop layers, so their witnesses are unchanged.
	lv := m.view()
	for _, v := range m.scratch.dirty {
		if m.layer[v] == 0 {
			m.parent[v] = -1
		} else {
			m.parent[v] = lv.parentAt(v, m.layer[v])
		}
		m.scratch.inDirty[v] = false
	}
}

// absorb3Hop marks the 3-hop neighborhood of v dirty; grew is set when
// any vertex was new.
func (m *Maintainer) absorb3Hop(v int32, grew *bool) {
	pre := len(m.scratch.dirty)
	m.enter(v)
	m.dyn.ForEachNeighbor(v, func(a int32) bool {
		m.enter(a)
		m.dyn.ForEachNeighbor(a, func(b int32) bool {
			m.enter(b)
			m.dyn.ForEachNeighbor(b, func(c int32) bool {
				m.enter(c)
				return true
			})
			return true
		})
		return true
	})
	if len(m.scratch.dirty) > pre {
		*grew = true
	}
}

// maxStableLayer returns the deepest layer of any vertex, from the
// maintained histogram (an upper bound for the peel's termination
// guard).
func (m *Maintainer) maxStableLayer() int32 {
	for k := len(m.counts) - 1; k >= 0; k-- {
		if m.counts[k] > 0 {
			return int32(k)
		}
	}
	return -1
}

// setLayer moves v to layer l (or to the unassigned state, l == -1),
// maintaining the histogram.
func (m *Maintainer) setLayer(v, l int32) {
	if old := m.layer[v]; old >= 0 {
		m.counts[old]--
	}
	m.layer[v] = l
	if l >= 0 {
		for int(l) >= len(m.counts) {
			m.counts = append(m.counts, 0)
		}
		m.counts[l]++
	}
	for len(m.counts) > 0 && m.counts[len(m.counts)-1] == 0 {
		m.counts = m.counts[:len(m.counts)-1]
	}
}

// peelLocal recomputes the layers of the dirty vertices with a
// level-by-level peel, treating every other vertex's layer as fixed.
// Unassigned dirty vertices count as members of every remaining set
// until the round that assigns them — exactly the global peel's view.
func (m *Maintainer) peelLocal(dirty []int32) {
	lv := m.view()
	for _, v := range dirty {
		m.setLayer(v, -1) // histogram tolerates -1 via the old>=0 guard
	}
	// Bound: once k exceeds every stable layer, only undecided dirty
	// vertices remain in S_k, and dominance among them is a strict
	// partial order, so each further round assigns at least one.
	bound := m.maxStableLayer() + int32(len(dirty)) + 2
	undecided := append([]int32(nil), dirty...)
	for k := int32(0); len(undecided) > 0; k++ {
		if k > bound {
			panic("skytree: local peel failed to converge (invariant violation)")
		}
		still := undecided[:0]
		for _, v := range undecided {
			if lv.dominatedAt(v, k) {
				still = append(still, v)
			} else {
				m.setLayer(v, k)
			}
		}
		undecided = still
	}
}

// dynView adapts the dynsky maintainer's live adjacency.
type dynView struct{ m *dynsky.Maintainer }

func (dv dynView) n() int32        { return int32(dv.m.N()) }
func (dv dynView) deg(v int32) int { return dv.m.Degree(v) }
func (dv dynView) has(u, v int32) bool {
	return dv.m.Has(u, v)
}
func (dv dynView) forEach(v int32, fn func(x int32) bool) {
	dv.m.ForEachNeighbor(v, fn)
}
