package skytree

import (
	"context"
	"testing"

	"neisky/internal/dynsky"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// checkAgainstRebuild asserts the incremental index equals a
// from-scratch rebuild of the maintainer's current graph — the oracle
// property of the whole package.
func checkAgainstRebuild(t *testing.T, m *Maintainer, label string) {
	t.Helper()
	got := m.Tree()
	want := Build(m.Graph(), BuildOptions{})
	if !got.Equal(want) {
		g := m.Graph()
		for v := int32(0); v < int32(g.N()); v++ {
			if got.Layer(v) != want.Layer(v) || got.Parent(v) != want.Parent(v) {
				t.Fatalf("%s: vertex %d incremental (layer %d, parent %d) != rebuild (layer %d, parent %d); edges %v",
					label, v, got.Layer(v), got.Parent(v), want.Layer(v), want.Parent(v), g.EdgeList())
			}
		}
		t.Fatalf("%s: trees differ", label)
	}
}

// stream runs ops random updates on g, checking the oracle after every
// single update.
func stream(t *testing.T, g *graph.Graph, seed uint64, ops int, label string) {
	t.Helper()
	r := rng.New(seed)
	m := NewMaintainer(g, BuildOptions{})
	n := m.N()
	checkAgainstRebuild(t, m, label+"/initial")
	for i := 0; i < ops; i++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		// Bias toward inserts early, deletes late, so the stream both
		// grows and shreds structure.
		if m.dyn.Has(u, v) {
			m.RemoveEdge(u, v)
		} else {
			m.AddEdge(u, v)
		}
		checkAgainstRebuild(t, m, label)
	}
}

// Stream lengths: every family gets a long stream with the per-op
// oracle. Short mode keeps CI fast; `go test -run Stream ./internal/skytree`
// runs the full 1k-op battery.
func streamLen(t *testing.T) int {
	if testing.Short() {
		return 120
	}
	return 1000
}

func TestStreamER(t *testing.T) {
	stream(t, gen.ER(48, 0.08, 101), 1, streamLen(t), "er")
}

func TestStreamBA(t *testing.T) {
	stream(t, gen.BA(48, 3, 202), 2, streamLen(t), "ba")
}

func TestStreamPowerLaw(t *testing.T) {
	stream(t, gen.PowerLaw(48, 100, 2.3, 303), 3, streamLen(t), "plaw")
}

func TestStreamFromEmpty(t *testing.T) {
	stream(t, graph.NewBuilder(32).Build(), 4, streamLen(t), "empty")
}

func TestStreamStar(t *testing.T) {
	// Star hubs make every update touch the whole graph — the worst
	// case for the locality argument.
	stream(t, gen.Star(24), 5, streamLen(t)/2, "star")
}

func TestMaintainerAfterRelabel(t *testing.T) {
	// The oracle must hold on a degree-relabeled snapshot exactly as on
	// the original — the serving pipeline feeds relabeled CSRs in.
	g := gen.ER(40, 0.12, 77)
	rg, _, _ := g.RelabelByDegree()
	stream(t, rg, 6, streamLen(t)/2, "relabeled")
}

func TestAddRemoveReportChanges(t *testing.T) {
	m := NewMaintainer(gen.Path(6), BuildOptions{})
	if m.AddEdge(0, 1) {
		t.Fatal("re-adding existing edge reported as new")
	}
	if !m.AddEdge(0, 5) {
		t.Fatal("new edge not reported")
	}
	if m.AddEdge(3, 3) {
		t.Fatal("self-loop accepted")
	}
	if m.RemoveEdge(0, 4) {
		t.Fatal("removing absent edge reported")
	}
	if !m.RemoveEdge(0, 5) {
		t.Fatal("removing existing edge not reported")
	}
	checkAgainstRebuild(t, m, "report")
}

func TestApplyBatch(t *testing.T) {
	m := NewMaintainer(gen.Cycle(12), BuildOptions{})
	ops := []dynsky.Op{
		{Add: true, U: 0, V: 6},
		{Add: true, U: 0, V: 6}, // duplicate: no-op
		{Add: false, U: 0, V: 1},
		{Add: true, U: 2, V: 9},
	}
	if applied := m.Apply(ops); applied != 3 {
		t.Fatalf("applied %d, want 3", applied)
	}
	checkAgainstRebuild(t, m, "batch")
}

func TestApplyCtxCancels(t *testing.T) {
	m := NewMaintainer(gen.Cycle(16), BuildOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	applied, err := m.ApplyCtx(ctx, []dynsky.Op{{Add: true, U: 0, V: 8}})
	if applied != 0 || err == nil {
		t.Fatalf("cancelled batch: applied=%d err=%v", applied, err)
	}
	// The prefix contract: index still exact for what was applied.
	checkAgainstRebuild(t, m, "cancelled")
}

func TestNewMaintainerFromTreeRejects(t *testing.T) {
	g := gen.Path(8)
	tr := Build(g, BuildOptions{})
	tr.Truncated = true
	mustPanic(t, func() { NewMaintainerFromTree(g, tr) })
	other := Build(gen.Path(9), BuildOptions{})
	mustPanic(t, func() { NewMaintainerFromTree(g, other) })
}

func TestMaintainerFromTreeCarryOver(t *testing.T) {
	// The swap path: seed from a prior tree, mutate, oracle must hold.
	g := gen.ER(36, 0.1, 55)
	m := NewMaintainerFromTree(g, Build(g, BuildOptions{}))
	r := rng.New(9)
	for i := 0; i < 100; i++ {
		u, v := int32(r.Intn(36)), int32(r.Intn(36))
		if u == v {
			continue
		}
		if m.dyn.Has(u, v) {
			m.RemoveEdge(u, v)
		} else {
			m.AddEdge(u, v)
		}
	}
	checkAgainstRebuild(t, m, "carry-over")
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
