package skytree

import (
	"context"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// --- independent oracle -------------------------------------------------
//
// The brute oracle re-derives the layering from Definition 2 with full
// pairwise scans on each remaining set — no pivots, no views, none of
// the package's own predicate code.

// bruteIncluded reports N_S(a) ⊆ N_S[b] on the subgraph induced by in.
func bruteIncluded(g *graph.Graph, in []bool, a, b int32) bool {
	for _, x := range g.Neighbors(a) {
		if x != b && in[x] && !g.Has(b, x) {
			return false
		}
	}
	return true
}

// bruteDominates reports w ≤ v on the subgraph induced by in, with the
// ID tie-break on mutual inclusion.
func bruteDominates(g *graph.Graph, in []bool, w, v int32) bool {
	if w == v || !bruteIncluded(g, in, v, w) {
		return false
	}
	if !bruteIncluded(g, in, w, v) {
		return true
	}
	return w < v
}

// bruteDeg counts v's neighbors inside in.
func bruteDeg(g *graph.Graph, in []bool, v int32) int {
	d := 0
	for _, x := range g.Neighbors(v) {
		if in[x] {
			d++
		}
	}
	return d
}

// bruteLayers peels the layering from scratch: at each level, a
// remaining vertex stays iff some remaining vertex dominates it;
// vertices isolated in the remainder are maximal (KeepIsolated).
func bruteLayers(g *graph.Graph) []int32 {
	n := int32(g.N())
	layer := make([]int32, n)
	in := make([]bool, n)
	remaining := int(n)
	for v := range layer {
		layer[v] = -1
		in[v] = true
	}
	for k := int32(0); remaining > 0; k++ {
		var take []int32
		for v := int32(0); v < n; v++ {
			if !in[v] {
				continue
			}
			dominated := false
			if bruteDeg(g, in, v) > 0 {
				for w := int32(0); w < n && !dominated; w++ {
					if in[w] && bruteDominates(g, in, w, v) {
						dominated = true
					}
				}
			}
			if !dominated {
				take = append(take, v)
			}
		}
		if len(take) == 0 {
			panic("brute oracle: empty level")
		}
		for _, v := range take {
			layer[v] = k
			in[v] = false
		}
		remaining -= len(take)
	}
	return layer
}

// bruteParent returns the minimum-ID vertex of layer k-1 dominating v
// on the level-(k-1) induced subgraph.
func bruteParent(g *graph.Graph, layer []int32, v int32) int32 {
	k := layer[v]
	if k <= 0 {
		return -1
	}
	n := int32(g.N())
	in := make([]bool, n)
	for w := int32(0); w < n; w++ {
		in[w] = layer[w] >= k-1
	}
	for w := int32(0); w < n; w++ {
		if layer[w] == k-1 && bruteDominates(g, in, w, v) {
			return w
		}
	}
	return -1
}

func checkTree(t *testing.T, g *graph.Graph, tr *Tree, label string) {
	t.Helper()
	if tr.Truncated {
		t.Fatalf("%s: unexpected truncation: %v", label, tr.Err)
	}
	want := bruteLayers(g)
	for v := int32(0); v < int32(g.N()); v++ {
		if tr.Layer(v) != want[v] {
			t.Fatalf("%s: layer[%d] = %d, oracle %d (edges %v)",
				label, v, tr.Layer(v), want[v], g.EdgeList())
		}
		if wp := bruteParent(g, want, v); tr.Parent(v) != wp {
			t.Fatalf("%s: parent[%d] = %d, oracle %d (layer %d, edges %v)",
				label, v, tr.Parent(v), wp, want[v], g.EdgeList())
		}
	}
}

// --- tests --------------------------------------------------------------

func testFamilies(r *rng.RNG) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"star":     gen.Star(9),
		"path":     gen.Path(11),
		"cycle":    gen.Cycle(12),
		"clique":   gen.Clique(7),
		"er-mid":   gen.ER(40, 0.15, r.Uint64()),
		"er-dense": gen.ER(24, 0.5, r.Uint64()),
		"ba":       gen.BA(40, 3, r.Uint64()),
		"plaw":     gen.PowerLaw(40, 90, 2.4, r.Uint64()),
		"empty":    graph.NewBuilder(6).Build(),
	}
}

func TestBuildMatchesOracle(t *testing.T) {
	r := rng.New(7)
	for name, g := range testFamilies(r) {
		checkTree(t, g, Build(g, BuildOptions{}), name)
	}
}

func TestBuildRandomSweep(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(24)
		density := r.Float64() * 0.6
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < density {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
		g := b.Build()
		checkTree(t, g, Build(g, BuildOptions{Shards: 1 + r.Intn(4), Workers: 1 + r.Intn(3)}), "sweep")
	}
}

func TestStarIsTwoLayers(t *testing.T) {
	// The KeepIsolated convention is what keeps a star at two layers:
	// hub+one leaf at layer 0 (mutual tie goes to the smaller ID), the
	// remaining leaves all isolated — hence maximal — at layer 1.
	g := gen.Star(10)
	tr := Build(g, BuildOptions{})
	if tr.NumLayers() != 2 {
		t.Fatalf("star layers = %d (sizes %v), want 2", tr.NumLayers(), tr.LayerSizes())
	}
}

func TestExplainChains(t *testing.T) {
	r := rng.New(11)
	g := gen.ER(60, 0.12, r.Uint64())
	tr := Build(g, BuildOptions{})
	for v := int32(0); v < int32(g.N()); v++ {
		chain := tr.Explain(v)
		if int32(len(chain)) != tr.Layer(v)+1 {
			t.Fatalf("explain(%d): %d hops for layer %d", v, len(chain), tr.Layer(v))
		}
		if chain[0] != v || tr.Layer(chain[len(chain)-1]) != 0 {
			t.Fatalf("explain(%d) = %v: bad endpoints", v, chain)
		}
		for i := 1; i < len(chain); i++ {
			if tr.Layer(chain[i]) != tr.Layer(chain[i-1])-1 {
				t.Fatalf("explain(%d) = %v: hop %d does not ascend one layer", v, chain, i)
			}
		}
	}
}

func TestLayerAccessors(t *testing.T) {
	r := rng.New(23)
	g := gen.ER(50, 0.1, r.Uint64())
	tr := Build(g, BuildOptions{})
	total := 0
	for k := 0; k < tr.NumLayers(); k++ {
		l := tr.LayerVertices(k)
		total += len(l)
		for i := range l {
			if tr.Layer(l[i]) != int32(k) {
				t.Fatalf("layer list %d holds %d of layer %d", k, l[i], tr.Layer(l[i]))
			}
			if i > 0 && l[i-1] >= l[i] {
				t.Fatalf("layer list %d not ascending: %v", k, l)
			}
		}
	}
	if total != g.N() {
		t.Fatalf("layer lists cover %d of %d vertices", total, g.N())
	}
	if got := tr.TopK(2); len(got) > 2 {
		t.Fatalf("TopK(2) returned %d layers", len(got))
	}
	if got := tr.TopK(tr.NumLayers() + 5); len(got) != tr.NumLayers() {
		t.Fatalf("TopK over-asks: %d layers", len(got))
	}
	if tr.LayerVertices(-1) != nil || tr.LayerVertices(tr.NumLayers()) != nil {
		t.Fatal("out-of-range LayerVertices not nil")
	}
	// Children is the exact inverse of Parent.
	seen := 0
	for v := int32(0); v < int32(g.N()); v++ {
		for _, c := range tr.Children(v) {
			seen++
			if tr.Parent(c) != v {
				t.Fatalf("children(%d) holds %d with parent %d", v, c, tr.Parent(c))
			}
		}
	}
	nonRoot := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if tr.Parent(v) >= 0 {
			nonRoot++
		}
	}
	if seen != nonRoot {
		t.Fatalf("children cover %d vertices, want %d", seen, nonRoot)
	}
}

func TestBuildCancelled(t *testing.T) {
	r := rng.New(5)
	g := gen.ER(400, 0.05, r.Uint64())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := BuildCtx(ctx, g, BuildOptions{})
	if !tr.Truncated || tr.Err == nil {
		t.Fatalf("cancelled build: Truncated=%v Err=%v", tr.Truncated, tr.Err)
	}
	// Assigned prefix must still be internally consistent: parents of
	// assigned non-skyline vertices either assigned or unset.
	for v := int32(0); v < int32(g.N()); v++ {
		if tr.Layer(v) == 0 && tr.Parent(v) != -1 {
			t.Fatalf("skyline vertex %d has parent %d", v, tr.Parent(v))
		}
	}
}

func TestRelabelInvariance(t *testing.T) {
	// Layer sizes are an isomorphism invariant: dominance modulo the ID
	// tie-break is equivariant, and ties only reorder vertices inside a
	// mutual-inclusion class (whose members are interchangeable by an
	// automorphism of the level). Degree relabeling — the snapshot
	// pipeline's canonical permutation — must therefore preserve every
	// per-layer count.
	r := rng.New(17)
	for name, g := range testFamilies(r) {
		rg, _, _ := g.RelabelByDegree()
		a, b := Build(g, BuildOptions{}), Build(rg, BuildOptions{})
		as, bs := a.LayerSizes(), b.LayerSizes()
		if len(as) != len(bs) {
			t.Fatalf("%s: %d layers vs %d after relabel", name, len(as), len(bs))
		}
		for k := range as {
			if as[k] != bs[k] {
				t.Fatalf("%s: layer %d size %d vs %d after relabel", name, k, as[k], bs[k])
			}
		}
	}
}
