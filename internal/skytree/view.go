package skytree

// adjView abstracts the adjacency access the level-filtered dominance
// predicates need, so the same code evaluates them on an immutable CSR
// graph (construction, subset queries) and on the mutable hash-map
// adjacency of an incremental maintainer (dynsky unification).
type adjView interface {
	// n returns the vertex count.
	n() int32
	// deg returns the current degree of v.
	deg(v int32) int
	// forEach calls fn for every neighbor of v until fn returns false.
	forEach(v int32, fn func(x int32) bool)
	// has reports whether the edge (u, v) exists.
	has(u, v int32) bool
}

// levelView pairs an adjView with a layer assignment and evaluates the
// dominance predicates of the peel at a given level k, where the
// remaining set is S_k = {w : layer[w] ≥ k or layer[w] == unassigned}.
//
// The convention at every level is the paper's ALGORITHMIC treatment of
// isolated vertices (core.Options.KeepIsolated): a vertex with no
// remaining neighbor is maximal in its level and never dominates
// anyone. This is what makes the peel local — the definitional
// treatment ("an isolated vertex is dominated by any non-isolated
// one") is a global property that would couple every level to the
// whole remaining vertex set, and it degenerates the layering (a star
// graph would peel one isolated leaf per level for n levels instead of
// finishing in two).
type levelView struct {
	av    adjView
	layer []int32 // unassigned (< 0) counts as "still in every S_k"
}

// inS reports w ∈ S_k.
func (lv levelView) inS(w, k int32) bool {
	return lv.layer[w] < 0 || lv.layer[w] >= k
}

// includedAt reports N_{S_k}(a) ⊆ N_{S_k}[b] on the level-k induced
// subgraph.
func (lv levelView) includedAt(a, b, k int32) bool {
	ok := true
	lv.av.forEach(a, func(x int32) bool {
		if x != b && lv.inS(x, k) && !lv.av.has(b, x) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// dominatesAt reports w ≤-dominates v in the level-k induced subgraph
// (Definition 2 with the ID tie-break on mutual inclusion).
func (lv levelView) dominatesAt(w, v, k int32) bool {
	if w == v || !lv.includedAt(v, w, k) {
		return false
	}
	if !lv.includedAt(w, v, k) {
		return true
	}
	return w < v
}

// pivotAt returns a neighbor of v inside S_k with minimum (full-graph)
// degree, or -1 when v is isolated in S_k. Any S_k-neighbor is a sound
// pivot — every dominator of v at level k is adjacent to all of v's
// S_k-neighbors, hence lies in N_{S_k}[pivot] — so the raw degree is
// only a heuristic to keep the scan range small.
func (lv levelView) pivotAt(v, k int32) int32 {
	pivot, pd := int32(-1), 0
	lv.av.forEach(v, func(x int32) bool {
		if !lv.inS(x, k) {
			return true
		}
		if d := lv.av.deg(x); pivot < 0 || d < pd || (d == pd && x < pivot) {
			pivot, pd = x, d
		}
		return true
	})
	return pivot
}

// dominatedAt reports whether v is dominated by any vertex of S_k in
// the level-k induced subgraph. A vertex isolated at level k is maximal
// (KeepIsolated semantics).
func (lv levelView) dominatedAt(v, k int32) bool {
	pivot := lv.pivotAt(v, k)
	if pivot < 0 {
		return false
	}
	if lv.inS(pivot, k) && lv.dominatesAt(pivot, v, k) {
		return true
	}
	dominated := false
	lv.av.forEach(pivot, func(w int32) bool {
		if w != v && lv.inS(w, k) && lv.dominatesAt(w, v, k) {
			dominated = true
			return false
		}
		return true
	})
	return dominated
}

// parentAt returns the canonical parent witness of a vertex v at layer
// k ≥ 1: the minimum-ID vertex w with layer[w] == k-1 that dominates v
// in the level-(k-1) induced subgraph. Such a witness always exists —
// dominance at a fixed level is a finite strict partial order, so above
// any dominated vertex sits a maximal element of that level, and the
// maximal elements of level k-1 are exactly layer k-1. Restricting the
// witness to the PREVIOUS layer (rather than any dominator, whose own
// layer the induced peel does not order) is what makes parent chains
// ascend exactly one layer per hop and terminate at layer 0.
func (lv levelView) parentAt(v, k int32) int32 {
	prev := k - 1
	pivot := lv.pivotAt(v, prev)
	if pivot < 0 {
		return -1
	}
	best := int32(-1)
	consider := func(w int32) {
		if w == v || (best >= 0 && w >= best) {
			return
		}
		if lv.layer[w] == prev && lv.dominatesAt(w, v, prev) {
			best = w
		}
	}
	consider(pivot)
	lv.av.forEach(pivot, func(w int32) bool {
		consider(w)
		return true
	})
	return best
}

// csrView adapts an immutable CSR graph.
type csrView struct{ g graphAdj }

// graphAdj is the subset of *graph.Graph the CSR view needs (named so
// tests can substitute fixtures).
type graphAdj interface {
	N() int
	Degree(u int32) int
	Neighbors(u int32) []int32
	Has(u, v int32) bool
}

func (cv csrView) n() int32            { return int32(cv.g.N()) }
func (cv csrView) deg(v int32) int     { return cv.g.Degree(v) }
func (cv csrView) has(u, v int32) bool { return cv.g.Has(u, v) }
func (cv csrView) forEach(v int32, fn func(x int32) bool) {
	for _, x := range cv.g.Neighbors(v) {
		if !fn(x) {
			return
		}
	}
}
