package skytree

import (
	"context"
	"slices"

	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// Subset skyline: the neighborhood skyline of the subgraph induced by
// an arbitrary vertex subset Q, answered directly against the full
// snapshot's CSR — no induced CSR is materialized and no per-query
// index (sketches, hub bitmaps) is built, which is what lets the
// layered index beat a per-query engine recompute (BENCH_6).
//
// Exactness. Dominance inside G[Q] is evaluated from first principles
// with the pivot argument restricted to Q: every dominator of q in
// G[Q] is adjacent to all of q's Q-neighbors, so scanning the closed
// neighborhood of one Q-neighbor (minimum degree, as a heuristic) is
// complete. A vertex with no neighbor in Q is maximal (the same
// KeepIsolated convention the tree uses at every level).
//
// Index assist. The tree contributes the probe order, not the answer:
// q's parent witness — its canonical dominator from the layered peel —
// is tested first (dominators in G frequently remain dominators in the
// induced subgraph), and pivot-range candidates are probed
// shallow-layer-first, since shallow vertices dominate more. Every
// probe is verified exactly, so the result is identical with t == nil;
// the assist only moves the early exit forward.

// SubsetResult is the output of a subset-skyline query.
type SubsetResult struct {
	// Skyline lists the skyline of G[Q] in ascending ID order. When
	// Truncated is set it is a sound superset: vertices not yet proven
	// dominated remain listed.
	Skyline []int32
	// PairsExamined counts exact dominance scans; WitnessHits counts
	// queries settled by the parent-witness probe alone.
	PairsExamined int
	WitnessHits   int
	Truncated     bool
	Err           error
}

// SubsetSkyline computes the neighborhood skyline of the subgraph of g
// induced by sub (vertex IDs of g, any order, duplicates ignored).
// t may be nil: the index only accelerates the scan.
func SubsetSkyline(g *graph.Graph, t *Tree, sub []int32) *SubsetResult {
	return SubsetSkylineCtx(context.Background(), g, t, sub)
}

// SubsetSkylineCtx is SubsetSkyline under a context, with the anytime
// truncated-superset contract on cancellation.
func SubsetSkylineCtx(ctx context.Context, g *graph.Graph, t *Tree, sub []int32) *SubsetResult {
	run := runctl.FromContext(ctx)
	defer run.Release()
	r := obs.Get()
	defer r.Start("skytree.subset").End()

	n := int32(g.N())
	inQ := make([]bool, n)
	q := make([]int32, 0, len(sub))
	for _, v := range sub {
		if v >= 0 && v < n && !inQ[v] {
			inQ[v] = true
			q = append(q, v)
		}
	}
	// Ascending processing keeps the output sorted without a final
	// sort, whatever order the caller posted.
	slices.Sort(q)

	res := &SubsetResult{}
	out := make([]int32, 0, len(q))
	cp := run.Checkpoint(checkEvery)
	for i, v := range q {
		if cp.Tick() {
			res.Truncated = true
			res.Err = run.Err()
			// Superset contract: everything not yet scanned stays in.
			out = append(out, q[i:]...)
			break
		}
		if !subsetDominated(g, t, inQ, v, res) {
			out = append(out, v)
		}
	}
	res.Skyline = out
	r.Add("skytree.subset.queries", 1)
	return res
}

// subsetDominated reports whether v is dominated inside G[Q].
func subsetDominated(g *graph.Graph, t *Tree, inQ []bool, v int32, res *SubsetResult) bool {
	// Pivot: v's minimum-degree neighbor inside Q. Isolated-in-Q
	// vertices are maximal, and deciding that BEFORE any dominance
	// probe matters: inclusion is vacuously true for a vertex with no
	// Q-neighbors, so a probe would "dominate" it against the
	// KeepIsolated convention.
	pivot := int32(-1)
	pd := 0
	for _, x := range g.Neighbors(v) {
		if !inQ[x] {
			continue
		}
		if d := g.Degree(x); pivot < 0 || d < pd || (d == pd && x < pivot) {
			pivot, pd = x, d
		}
	}
	if pivot < 0 {
		return false
	}
	// Witness-first probe: the layered peel already certified
	// parent(v) as a dominator of v in one induced remainder; inside
	// Q it is the best single guess.
	if t != nil {
		if p := t.Parent(v); p >= 0 && p != pivot && inQ[p] {
			res.PairsExamined++
			if dominatesInQ(g, inQ, p, v) {
				res.WitnessHits++
				return true
			}
		}
	}
	res.PairsExamined++
	if dominatesInQ(g, inQ, pivot, v) {
		return true
	}
	nbrs := g.Neighbors(pivot)
	if t != nil {
		// Shallow-layer-first: probe candidates at layers ≤ layer(v)
		// before the rest — dominance flows from shallow to deep far
		// more often than the reverse, so the early exit usually lands
		// in the first pass.
		lv := t.Layer(v)
		for _, w := range nbrs {
			if w != v && inQ[w] && t.Layer(w) <= lv {
				res.PairsExamined++
				if dominatesInQ(g, inQ, w, v) {
					return true
				}
			}
		}
		for _, w := range nbrs {
			if w != v && inQ[w] && t.Layer(w) > lv {
				res.PairsExamined++
				if dominatesInQ(g, inQ, w, v) {
					return true
				}
			}
		}
		return false
	}
	for _, w := range nbrs {
		if w != v && inQ[w] {
			res.PairsExamined++
			if dominatesInQ(g, inQ, w, v) {
				return true
			}
		}
	}
	return false
}

// dominatesInQ reports w ≤-dominates v inside G[Q] (Definition 2 on
// the induced subgraph, ID tie-break on mutual inclusion). When w < v
// the mutual check is skipped: the tie would go to w anyway.
func dominatesInQ(g *graph.Graph, inQ []bool, w, v int32) bool {
	if w == v || !includedInQ(g, inQ, v, w) {
		return false
	}
	if w < v {
		return true
	}
	return !includedInQ(g, inQ, w, v)
}

// includedInQ reports N_Q(a) ⊆ N_Q[b].
func includedInQ(g *graph.Graph, inQ []bool, a, b int32) bool {
	for _, x := range g.Neighbors(a) {
		if x != b && inQ[x] && !g.Has(b, x) {
			return false
		}
	}
	return true
}
