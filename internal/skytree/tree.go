// Package skytree builds and maintains the layered dominance index of
// a graph's neighborhood-skyline order — the "skyline tree" of the DEG
// line of work, adapted to the paper's neighborhood-inclusion order.
//
// Peeling the skyline repeatedly stratifies the vertex set: layer 0 is
// the neighborhood skyline of G, and layer k is the skyline of the
// subgraph induced by the vertices left after removing layers < k.
// Every level uses the paper's algorithmic treatment of isolated
// vertices (core.Options.KeepIsolated): a vertex isolated in the
// remainder is maximal in its level. That choice keeps every level's
// status a 2-hop-local property — the foundation of both the index's
// incremental maintenance (Maintainer) and its locality-based query
// shapes — and bounds the number of levels by the peeling depth
// instead of degenerating to one level per vertex on star-like tails.
//
// Alongside its layer, every dominated vertex carries a parent link:
// the canonical "who dominates me" witness, defined as the minimum-ID
// vertex of layer k-1 that dominates it in the level-(k-1) induced
// subgraph. Parent chains therefore ascend exactly one layer per hop
// and end at a layer-0 vertex — the dominator chain /v1/skyline/explain
// serves. Children links are the inverse relation, materialized on
// demand.
//
// Construction reuses the sharded fused filter/refine engine
// (core.ShardedFilterRefineSky, register-sketch pre-filter included)
// once per level on the materialized remainder, then assigns parents
// with one local pivot scan per dominated vertex against the full CSR.
package skytree

import (
	"context"
	"sync"

	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// checkEvery is the cancellation-poll granularity of the parent pass
// and the subset scans (each unit is a pivot-range dominance scan, the
// same cost class as the refine phase's).
const checkEvery = 64

// Tree is the immutable layered dominance index of one graph snapshot.
// Construct with Build (or Maintainer.Tree) and share freely: all
// methods are safe for concurrent use.
type Tree struct {
	layer  []int32   // layer[v] ≥ 0; -1 only in truncated builds
	parent []int32   // parent[v] = -1 for layer-0 (and unassigned) vertices
	layers [][]int32 // layers[k] = vertices of layer k, ascending IDs

	childOnce sync.Once
	children  [][]int32

	// Truncated marks a cancelled build: vertices with layer -1 were
	// never assigned (their true layer is ≥ the deepest completed
	// level), and Err carries the cause. Complete trees have it false.
	Truncated bool
	Err       error
}

// BuildOptions tune construction.
type BuildOptions struct {
	// Shards and Workers configure the per-level sharded engine; zero
	// values take the engine defaults (4×GOMAXPROCS shards).
	Shards  int
	Workers int
}

// Build constructs the layered dominance index of g.
func Build(g *graph.Graph, opts BuildOptions) *Tree {
	return BuildCtx(context.Background(), g, opts)
}

// BuildCtx is Build under a context. A cancelled build returns a
// truncated tree: every assigned (layer ≥ 0) vertex is final, deeper
// vertices are unassigned (see Tree.Truncated). Cancellation and
// deadlines are honored across the whole build; a runctl work budget
// applies per stage (each level's peel and the parent pass derive
// their own run from ctx).
func BuildCtx(ctx context.Context, g *graph.Graph, opts BuildOptions) *Tree {
	r := obs.Get()
	defer r.Start("skytree.build").End()

	n := int32(g.N())
	t := &Tree{layer: make([]int32, n), parent: make([]int32, n)}
	for v := int32(0); v < n; v++ {
		t.layer[v] = -1
		t.parent[v] = -1
	}

	so := core.ShardOptions{Shards: opts.Shards, Workers: opts.Workers}
	copts := core.Options{KeepIsolated: true}

	// Peel: level k's skyline is computed on the materialized remainder
	// (the sharded engine's sketches and hub bitmaps are per-snapshot
	// caches, so each level's subgraph carries its own). orig maps the
	// current remainder's dense IDs back to g's.
	cur := g
	orig := []int32(nil) // nil = identity (level 0 runs on g itself)
	remaining := int(n)
	for k := int32(0); remaining > 0; k++ {
		res := core.ShardedFilterRefineSkyCtx(ctx, cur, copts, so)
		if res.Truncated {
			t.Truncated = true
			t.Err = res.Err
			break
		}
		r.Add("skytree.build.levels", 1)
		for _, s := range res.Skyline {
			if orig != nil {
				s = orig[s]
			}
			t.layer[s] = k
		}
		remaining -= len(res.Skyline)
		if remaining == 0 {
			break
		}
		// Materialize the next remainder: everything not yet layered.
		keep := make([]int32, 0, remaining)
		if orig == nil {
			for v := int32(0); v < n; v++ {
				if t.layer[v] < 0 {
					keep = append(keep, v)
				}
			}
		} else {
			for _, v := range orig {
				if t.layer[v] < 0 {
					keep = append(keep, v)
				}
			}
		}
		// keep is ascending in original IDs, so the dense relabeling is
		// order-preserving and every level's ID tie-breaks agree with
		// the original graph's.
		local := keep
		if orig != nil {
			local = make([]int32, len(keep))
			idx := make(map[int32]int32, len(orig))
			for i, ov := range orig {
				idx[ov] = int32(i)
			}
			for i, ov := range keep {
				local[i] = idx[ov]
			}
		}
		cur, _ = cur.InducedSubgraph(local)
		orig = keep
	}

	run := runctl.FromContext(ctx)
	defer run.Release()
	t.assignParents(run, csrView{g: g})
	t.buildLayerLists()
	return t
}

// assignParents fills parent[v] for every assigned vertex of layer ≥ 1
// with the canonical previous-layer witness (levelView.parentAt).
func (t *Tree) assignParents(run *runctl.Run, av adjView) {
	lv := levelView{av: av, layer: t.layer}
	cp := run.Checkpoint(checkEvery)
	for v := int32(0); v < av.n(); v++ {
		if t.layer[v] <= 0 {
			continue
		}
		if cp.Tick() {
			t.Truncated = true
			if t.Err == nil {
				t.Err = run.Err()
			}
			return
		}
		t.parent[v] = lv.parentAt(v, t.layer[v])
	}
}

// buildLayerLists materializes the per-layer vertex lists (ascending —
// the scan order guarantees it).
func (t *Tree) buildLayerLists() {
	max := int32(-1)
	for _, l := range t.layer {
		if l > max {
			max = l
		}
	}
	t.layers = make([][]int32, max+1)
	counts := make([]int, max+1)
	for _, l := range t.layer {
		if l >= 0 {
			counts[l]++
		}
	}
	for k := range t.layers {
		t.layers[k] = make([]int32, 0, counts[k])
	}
	for v := int32(0); v < int32(len(t.layer)); v++ {
		if l := t.layer[v]; l >= 0 {
			t.layers[l] = append(t.layers[l], v)
		}
	}
}

// N returns the vertex count.
func (t *Tree) N() int { return len(t.layer) }

// NumLayers returns the number of dominance layers.
func (t *Tree) NumLayers() int { return len(t.layers) }

// Layer returns v's dominance layer (0 = skyline; -1 only when the
// build was truncated before reaching v's level).
func (t *Tree) Layer(v int32) int32 { return t.layer[v] }

// Parent returns v's canonical dominator witness in layer Layer(v)-1,
// or -1 for layer-0 and unassigned vertices.
func (t *Tree) Parent(v int32) int32 { return t.parent[v] }

// LayerVertices returns the vertices of layer k in ascending ID order.
// The slice is shared — callers must not mutate it.
func (t *Tree) LayerVertices(k int) []int32 {
	if k < 0 || k >= len(t.layers) {
		return nil
	}
	return t.layers[k]
}

// LayerSizes returns the per-layer vertex counts.
func (t *Tree) LayerSizes() []int {
	sizes := make([]int, len(t.layers))
	for k, l := range t.layers {
		sizes[k] = len(l)
	}
	return sizes
}

// TopK returns layers 0..k-1 (fewer when the tree is shallower). The
// inner slices are shared — callers must not mutate them.
func (t *Tree) TopK(k int) [][]int32 {
	if k > len(t.layers) {
		k = len(t.layers)
	}
	if k < 0 {
		k = 0
	}
	return t.layers[:k:k]
}

// Explain returns the dominator chain from v to the skyline: v itself,
// then parent(v), parent(parent(v)), ..., ending at a layer-0 vertex.
// Each hop ascends exactly one layer, so the chain has Layer(v)+1
// entries. Unassigned vertices (truncated builds) get a 1-chain.
func (t *Tree) Explain(v int32) []int32 {
	chain := []int32{v}
	for t.parent[v] >= 0 {
		v = t.parent[v]
		chain = append(chain, v)
	}
	return chain
}

// Children returns the vertices whose parent witness is v (ascending).
// The inverse index is materialized once, on first use.
func (t *Tree) Children(v int32) []int32 {
	t.childOnce.Do(func() {
		t.children = make([][]int32, len(t.layer))
		for u := int32(0); u < int32(len(t.parent)); u++ {
			if p := t.parent[u]; p >= 0 {
				t.children[p] = append(t.children[p], u)
			}
		}
	})
	return t.children[v]
}

// Equal reports whether two trees assign identical layers and parents
// (the incremental-maintenance oracle's equality).
func (t *Tree) Equal(o *Tree) bool {
	if len(t.layer) != len(o.layer) {
		return false
	}
	for v := range t.layer {
		if t.layer[v] != o.layer[v] || t.parent[v] != o.parent[v] {
			return false
		}
	}
	return true
}

// clone deep-copies the assignment arrays (layer lists and children are
// rebuilt lazily/by the caller).
func (t *Tree) clone() *Tree {
	nt := &Tree{
		layer:  append([]int32(nil), t.layer...),
		parent: append([]int32(nil), t.parent...),
	}
	return nt
}
