package mis

import (
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// bruteMIS enumerates all subsets (n ≤ 20).
func bruteMIS(g *graph.Graph) int {
	n := g.N()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var verts []int32
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				verts = append(verts, int32(i))
			}
		}
		if len(verts) > best && IsIndependent(g, verts) {
			best = len(verts)
		}
	}
	return best
}

func TestMaxExactSmall(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 3+r.Intn(11), 0.15+0.6*r.Float64())
		res := Max(g)
		if !IsIndependent(g, res.Set) {
			t.Fatalf("Max returned dependent set %v (edges %v)", res.Set, g.EdgeList())
		}
		want := bruteMIS(g)
		if len(res.Set) != want {
			t.Fatalf("Max size %d != brute %d (edges %v)", len(res.Set), want, g.EdgeList())
		}
	}
}

func TestMaxSpecialGraphs(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{gen.Clique(6), 1},
		{gen.Star(6), 5},
		{gen.Path(7), 4},
		{gen.Cycle(6), 3},
		{gen.Cycle(7), 3},
		{gen.CompleteBinaryTree(7), 5},
		{graph.NewBuilder(5).Build(), 5},
		{graph.NewBuilder(0).Build(), 0},
	}
	for i, c := range cases {
		res := Max(c.g)
		if len(res.Set) != c.want {
			t.Fatalf("case %d: MIS size %d, want %d", i, len(res.Set), c.want)
		}
		if !IsIndependent(c.g, res.Set) {
			t.Fatalf("case %d: not independent", i)
		}
	}
}

func TestReducePreservesOptimum(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 4+r.Intn(12), 0.3)
		forced, kernel, _ := Reduce(g)
		if !IsIndependent(g, forced) {
			t.Fatalf("forced set not independent: %v", forced)
		}
		// Solve the kernel by brute force over the induced subgraph.
		sub, orig := g.InducedSubgraph(kernel)
		kernelOpt := bruteMIS(sub)
		_ = orig
		if len(forced)+kernelOpt != bruteMIS(g) {
			t.Fatalf("reduction broke optimum: forced %d + kernel %d != %d (edges %v)",
				len(forced), kernelOpt, bruteMIS(g), g.EdgeList())
		}
	}
}

func TestReduceSolvesTreesCompletely(t *testing.T) {
	// Degree-1 + inclusion rules alone dismantle any tree.
	for _, g := range []*graph.Graph{gen.Path(15), gen.CompleteBinaryTree(15), gen.Star(10)} {
		forced, kernel, _ := Reduce(g)
		if len(kernel) != 0 {
			t.Fatalf("tree kernel not empty: %v", kernel)
		}
		if !IsIndependent(g, forced) {
			t.Fatal("forced set not independent")
		}
		if len(forced) != len(Max(g).Set) {
			t.Fatalf("tree reduction suboptimal: %d vs %d", len(forced), len(Max(g).Set))
		}
	}
}

func TestInclusionRuleFiresOnClique(t *testing.T) {
	// In a clique every vertex dominates its neighbors; reduction alone
	// solves it.
	forced, kernel, removed := Reduce(gen.Clique(8))
	if len(kernel) != 0 || len(forced) != 1 {
		t.Fatalf("clique: forced=%v kernel=%v", forced, kernel)
	}
	if removed == 0 {
		t.Fatal("inclusion rule should have fired")
	}
}

func TestGreedyValidAndDecent(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 5+r.Intn(13), 0.3)
		res := Greedy(g)
		if !IsIndependent(g, res.Set) {
			t.Fatalf("greedy set dependent (edges %v)", g.EdgeList())
		}
		opt := bruteMIS(g)
		if len(res.Set) < (opt+1)/2 {
			t.Fatalf("greedy %d far below optimum %d", len(res.Set), opt)
		}
	}
}

func TestGreedyOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(2000, 5000, 2.2, 13)
	res := Greedy(g)
	if !IsIndependent(g, res.Set) {
		t.Fatal("greedy set dependent")
	}
	// Sparse power-law graphs have large independent sets.
	if len(res.Set) < g.N()/3 {
		t.Fatalf("independent set suspiciously small: %d of %d", len(res.Set), g.N())
	}
	_, kernel, _ := Reduce(g)
	if len(kernel) >= g.N() {
		t.Fatal("reductions should shrink power-law graphs")
	}
}

func TestIsIndependent(t *testing.T) {
	g := gen.Path(4)
	if !IsIndependent(g, []int32{0, 2}) || IsIndependent(g, []int32{0, 1}) {
		t.Fatal("IsIndependent wrong")
	}
	if IsIndependent(g, []int32{2, 2}) {
		t.Fatal("duplicates must fail")
	}
	if !IsIndependent(g, nil) {
		t.Fatal("empty set is independent")
	}
}

func TestQuickMaxOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		r := rng.New(seed)
		g := randomGraph(r, n, 0.35)
		return len(Max(g).Set) == bruteMIS(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
