package mis

import (
	"context"
	"errors"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/runctl/faultinject"
)

func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// TestGreedyCtxCancelSetStaysIndependent cancels the reduction-driven
// greedy mid-run: whatever was committed must still be independent.
func TestGreedyCtxCancelSetStaysIndependent(t *testing.T) {
	g := gen.PowerLaw(4000, 16000, 2.3, 51)
	defer cancelAtSeq(2)()
	res := GreedyCtx(context.Background(), g)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if !errors.Is(res.Err, faultinject.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", res.Err)
	}
	if !IsIndependent(g, res.Set) {
		t.Fatalf("truncated greedy set of %d vertices is not independent", len(res.Set))
	}
}

// TestMaxCtxCancelIncumbentIsIndependent cancels the exact
// branch-and-bound mid-search: the incumbent must be a genuine
// independent set no larger than the optimum.
func TestMaxCtxCancelIncumbentIsIndependent(t *testing.T) {
	g := gen.PowerLaw(300, 1200, 2.3, 52)
	truth := Max(g)

	defer cancelAtSeq(2)()
	res := MaxCtx(context.Background(), g)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if !IsIndependent(g, res.Set) {
		t.Fatalf("truncated incumbent of %d vertices is not independent", len(res.Set))
	}
	if len(res.Set) > len(truth.Set) {
		t.Fatalf("incumbent larger than the true maximum: %d > %d", len(res.Set), len(truth.Set))
	}
}

// TestMISCtxMatchesPlainOnLiveContext pins zero drift when the context
// never fires.
func TestMISCtxMatchesPlainOnLiveContext(t *testing.T) {
	g := gen.PowerLaw(500, 2000, 2.3, 53)
	wantG := Greedy(g)
	gotG := GreedyCtx(context.Background(), g)
	if gotG.Truncated || gotG.Err != nil {
		t.Fatalf("greedy: spurious truncation: %v", gotG.Err)
	}
	if len(gotG.Set) != len(wantG.Set) {
		t.Fatalf("greedy drift: %d vs %d", len(gotG.Set), len(wantG.Set))
	}

	small := gen.PowerLaw(120, 480, 2.3, 54)
	wantM := Max(small)
	gotM := MaxCtx(context.Background(), small)
	if gotM.Truncated || gotM.Err != nil {
		t.Fatalf("max: spurious truncation: %v", gotM.Err)
	}
	if len(gotM.Set) != len(wantM.Set) {
		t.Fatalf("max drift: %d vs %d", len(gotM.Set), len(wantM.Set))
	}
}
