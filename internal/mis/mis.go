// Package mis implements maximum independent set search with the
// neighborhood-inclusion reduction rule that motivates the paper's
// introduction: if a vertex v has a neighbor u with N[u] ⊆ N[v], then v
// can be excluded from consideration — any independent set using v can
// swap to u — so v is removed and the instance shrinks. This is exactly
// edge-constrained neighborhood inclusion (Definition 4) with the roles
// flipped: MIS removes the *dominators*, whose closed neighborhoods
// engulf a neighbor's.
//
// The package provides the iterated reduction (kernelization), a
// min-degree greedy heuristic, and an exact branch-and-bound solver for
// moderate graphs that applies the reductions at every node.
package mis

import (
	"context"
	"sort"

	"neisky/internal/graph"
	"neisky/internal/runctl"
)

// checkEvery is the checkpoint granularity of the MIS loops: one run
// poll per checkEvery reduction passes / search nodes (each pass is
// already map-heavy, so a small interval keeps latency tight without
// measurable cost).
const checkEvery = 16

// Result reports an independent-set computation.
type Result struct {
	Set   []int32 // the independent set, ascending IDs
	Nodes int64   // branch-and-bound nodes (exact solver)
	// Reduced counts vertices removed by the neighborhood-inclusion
	// rule across the whole search (top level for Reduce/Greedy).
	Reduced int
	// Truncated marks a best-effort partial result: the run was
	// cancelled mid-search. Set is still a genuine independent set —
	// the greedy's picks so far, or the exact solver's incumbent — but
	// may not be maximal/maximum. Err carries the cause.
	Truncated bool
	Err       error
}

// ctl is the shared cancellation probe of one MIS computation; state
// clones share it, so a stop anywhere unwinds the whole search.
type ctl struct {
	run     *runctl.Run
	cp      runctl.Checkpoint
	stopped bool
}

func newCtl(run *runctl.Run) *ctl {
	return &ctl{run: run, cp: run.Checkpoint(checkEvery)}
}

// tick advances the probe; once it fires, every later call reports
// stopped immediately. Nil-safe (nil = cancellation disabled).
func (c *ctl) tick() bool {
	if c == nil {
		return false
	}
	if c.stopped || c.cp.Tick() {
		c.stopped = true
	}
	return c.stopped
}

// mark stamps the truncation markers onto res.
func (c *ctl) mark(res *Result) {
	if c != nil && c.stopped {
		res.Truncated = true
		res.Err = c.run.Err()
	}
}

// state is a mutable adjacency-set view of the alive subgraph.
type state struct {
	adj   []map[int32]struct{}
	alive map[int32]struct{}
	nodes int64
	ctl   *ctl // shared across clones; nil disables cancellation
}

func newState(g *graph.Graph) *state {
	n := int32(g.N())
	s := &state{
		adj:   make([]map[int32]struct{}, n),
		alive: make(map[int32]struct{}, n),
	}
	for u := int32(0); u < n; u++ {
		s.alive[u] = struct{}{}
		s.adj[u] = make(map[int32]struct{}, g.Degree(u))
		for _, v := range g.Neighbors(u) {
			s.adj[u][v] = struct{}{}
		}
	}
	return s
}

// removeVertex deletes v from the alive subgraph.
func (s *state) removeVertex(v int32) {
	delete(s.alive, v)
	for u := range s.adj[v] {
		delete(s.adj[u], v)
	}
	s.adj[v] = nil
}

// takeVertex includes v in the independent set: v and all its neighbors
// leave the subgraph.
func (s *state) takeVertex(v int32) {
	nbrs := make([]int32, 0, len(s.adj[v]))
	for u := range s.adj[v] {
		nbrs = append(nbrs, u)
	}
	s.removeVertex(v)
	for _, u := range nbrs {
		s.removeVertex(u)
	}
}

// dominatesForMIS reports whether alive vertex v is removable because
// neighbor u satisfies N[u] ⊆ N[v] in the alive subgraph.
func (s *state) dominatesForMIS(v int32) bool {
	for u := range s.adj[v] {
		if len(s.adj[u]) > len(s.adj[v]) {
			continue
		}
		ok := true
		for w := range s.adj[u] {
			if w == v {
				continue
			}
			if _, adj := s.adj[v][w]; !adj {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// reduce applies the degree-0, degree-1 and neighborhood-inclusion
// rules to fixpoint, appending forced vertices to set. It returns the
// number of vertices removed by the inclusion rule.
func (s *state) reduce(set *[]int32) int {
	removedByInclusion := 0
	changed := true
	for changed {
		if s.ctl.tick() {
			return removedByInclusion
		}
		changed = false
		// Degree 0: always take. Degree 1: taking the pendant is safe.
		for v := range s.alive {
			switch len(s.adj[v]) {
			case 0:
				*set = append(*set, v)
				s.removeVertex(v)
				changed = true
			case 1:
				*set = append(*set, v)
				s.takeVertex(v)
				changed = true
			}
			if changed {
				break // the maps changed under us; restart the scan
			}
		}
		if changed {
			continue
		}
		// Neighborhood inclusion: drop a dominator.
		for v := range s.alive {
			if s.dominatesForMIS(v) {
				s.removeVertex(v)
				removedByInclusion++
				changed = true
				break
			}
		}
	}
	return removedByInclusion
}

// Reduce kernelizes g: it applies the reductions to fixpoint and
// returns the forced-in vertices, the kernel (alive vertices), and the
// inclusion-rule removal count. |MIS(g)| = len(forced) + |MIS(kernel)|.
func Reduce(g *graph.Graph) (forced []int32, kernel []int32, inclusionRemoved int) {
	s := newState(g)
	inclusionRemoved = s.reduce(&forced)
	kernel = make([]int32, 0, len(s.alive))
	for v := range s.alive {
		kernel = append(kernel, v)
	}
	sort.Slice(kernel, func(i, j int) bool { return kernel[i] < kernel[j] })
	sort.Slice(forced, func(i, j int) bool { return forced[i] < forced[j] })
	return forced, kernel, inclusionRemoved
}

// Greedy computes an independent set with the min-degree heuristic on
// the reduced graph.
func Greedy(g *graph.Graph) *Result {
	return greedyRun(nil, g)
}

// GreedyCtx is Greedy under a context. On cancellation the returned Set
// is the forced vertices plus picks made so far — still a genuine
// independent set, possibly not maximal — with Truncated/Err set.
func GreedyCtx(ctx context.Context, g *graph.Graph) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return greedyRun(run, g)
}

func greedyRun(run *runctl.Run, g *graph.Graph) *Result {
	s := newState(g)
	c := newCtl(run)
	s.ctl = c
	res := &Result{}
	res.Reduced = s.reduce(&res.Set)
	for len(s.alive) > 0 && !c.stopped {
		var best int32 = -1
		for v := range s.alive {
			if best == -1 || len(s.adj[v]) < len(s.adj[best]) ||
				(len(s.adj[v]) == len(s.adj[best]) && v < best) {
				best = v
			}
		}
		res.Set = append(res.Set, best)
		s.takeVertex(best)
		res.Reduced += s.reduce(&res.Set)
	}
	sort.Slice(res.Set, func(i, j int) bool { return res.Set[i] < res.Set[j] })
	c.mark(res)
	return res
}

// Max computes a maximum independent set exactly by branch-and-bound
// with the reductions applied at every node. Intended for graphs up to
// a few hundred vertices.
func Max(g *graph.Graph) *Result {
	return maxRun(nil, g)
}

// MaxCtx is Max under a context. On cancellation the returned Set is
// the incumbent — the largest independent set found so far (genuine but
// possibly not maximum) — with Truncated/Err set.
func MaxCtx(ctx context.Context, g *graph.Graph) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return maxRun(run, g)
}

func maxRun(run *runctl.Run, g *graph.Graph) *Result {
	s := newState(g)
	c := newCtl(run)
	s.ctl = c
	res := &Result{}
	var cur []int32
	reduced := s.reduce(&cur)
	best := append([]int32(nil), cur...)
	bb(s, cur, &best, &res.Nodes)
	res.Reduced = reduced
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	res.Set = best
	c.mark(res)
	return res
}

// bb branches on a maximum-degree vertex: either exclude it or take it.
func bb(s *state, cur []int32, best *[]int32, nodes *int64) {
	*nodes++
	if s.ctl.tick() {
		// Abandon the search; the incumbent in *best stays a genuine
		// independent set (candidates are only installed complete).
		return
	}
	if len(cur)+len(s.alive) <= len(*best) {
		return // even taking everything alive cannot win
	}
	if len(s.alive) == 0 {
		if len(cur) > len(*best) {
			*best = append((*best)[:0], cur...)
		}
		return
	}
	var v int32 = -1
	for u := range s.alive {
		if v == -1 || len(s.adj[u]) > len(s.adj[v]) ||
			(len(s.adj[u]) == len(s.adj[v]) && u < v) {
			v = u
		}
	}
	// Branch 1: take v.
	t := s.clone()
	curTake := append(append([]int32(nil), cur...), v)
	t.takeVertex(v)
	t.reduce(&curTake)
	bb(t, curTake, best, nodes)
	// Branch 2: exclude v (only useful if some neighbor is taken; the
	// reduction rules will exploit the shrunken neighborhood).
	e := s.clone()
	curExcl := append([]int32(nil), cur...)
	e.removeVertex(v)
	e.reduce(&curExcl)
	bb(e, curExcl, best, nodes)
}

// clone deep-copies the alive subgraph.
func (s *state) clone() *state {
	c := &state{
		adj:   make([]map[int32]struct{}, len(s.adj)),
		alive: make(map[int32]struct{}, len(s.alive)),
		ctl:   s.ctl, // shared: a stop anywhere unwinds every branch
	}
	for v := range s.alive {
		c.alive[v] = struct{}{}
		m := make(map[int32]struct{}, len(s.adj[v]))
		for u := range s.adj[v] {
			m[u] = struct{}{}
		}
		c.adj[v] = m
	}
	return c
}

// IsIndependent verifies that set is pairwise non-adjacent in g.
func IsIndependent(g *graph.Graph, set []int32) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if set[i] == set[j] || g.Has(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}
