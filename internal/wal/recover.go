package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
)

// Recovered is the durable state reassembled from a log directory: the
// latest loadable checkpoint snapshot plus the intact record tail after
// it. Applying Ops (in order) to Graph through internal/dynsky yields
// the state of the last acknowledged-and-durable record — the recovery
// invariant the crash battery proves.
type Recovered struct {
	// Graph is the latest checkpoint snapshot, nil when the directory
	// has no checkpoint yet (a log that was never initialized).
	Graph *graph.Graph
	// CheckpointSeq is the record sequence the checkpoint covers.
	CheckpointSeq uint64
	// Ops is the flattened op tail: every record with seq >
	// CheckpointSeq, in append order.
	Ops []dynsky.Op
	// Records counts the tail records behind Ops.
	Records int
	// LastSeq is the sequence of the last intact record (==
	// CheckpointSeq when the tail is empty).
	LastSeq uint64
	// TornTail reports that the final segment ended in a torn record
	// (or a headerless segment), which recovery truncated away — the
	// expected signature of a crash mid-append, never an error.
	TornTail bool
	// SkippedCheckpoints counts checkpoint files that failed to load
	// (corrupt snapshot, bad CRC) and were passed over for an older one.
	SkippedCheckpoints int
}

// Recover reads the durable state from dir without modifying it. The
// torn tail, if any, is reported but not truncated — Open does the
// truncation when the daemon reopens the log for appending.
func Recover(dir string) (*Recovered, error) {
	ls, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Recovered{}
	// Latest loadable checkpoint wins; a corrupt one (e.g. a crash
	// during an unsynced write that still got renamed, or bit rot
	// caught by the v2 CRC) falls back to its predecessor, whose
	// covering segments are only removed after the successor durably
	// exists.
	for i := len(ls.ckpts) - 1; i >= 0; i-- {
		g, err := graph.LoadBinaryFile(filepath.Join(dir, ckptName(ls.ckpts[i])))
		if err != nil {
			r.SkippedCheckpoints++
			continue
		}
		r.Graph = g
		r.CheckpointSeq = ls.ckpts[i]
		break
	}
	if r.Graph == nil && len(ls.ckpts) > 0 {
		return nil, fmt.Errorf("wal: all %d checkpoints in %s are unreadable", len(ls.ckpts), dir)
	}
	r.LastSeq = r.CheckpointSeq

	for i, s := range ls.segs {
		last := i == len(ls.segs)-1
		if !last && ls.segs[i+1].firstSeq <= r.CheckpointSeq+1 {
			continue // wholly covered by the checkpoint
		}
		expect := s.firstSeq
		tail, err := scanSegment(filepath.Join(dir, s.name), s.firstSeq, func(seq uint64, ops []dynsky.Op) {
			if seq > r.CheckpointSeq {
				r.Ops = append(r.Ops, ops...)
				r.Records++
				r.LastSeq = seq
			}
		})
		if err != nil {
			return nil, err
		}
		if tail.headerTorn {
			if !last {
				return nil, fmt.Errorf("wal: segment %s has a corrupt header mid-log", s.name)
			}
			// A crash between segment creation and header write: the
			// file holds nothing acknowledged.
			r.TornTail = true
			break
		}
		if tail.torn {
			if !last {
				return nil, fmt.Errorf("wal: segment %s has a torn record mid-log", s.name)
			}
			r.TornTail = true
		}
		endSeq := expect - 1 + uint64(tail.records)
		if !last && ls.segs[i+1].firstSeq != endSeq+1 {
			return nil, fmt.Errorf("wal: sequence gap between %s (ends %d) and %s",
				s.name, endSeq, ls.segs[i+1].name)
		}
	}
	// The tail must connect to the checkpoint: a hole means acknowledged
	// records were lost in the middle, which no replay may paper over.
	if r.Records > 0 && r.LastSeq != r.CheckpointSeq+uint64(r.Records) {
		return nil, fmt.Errorf("wal: recovered %d tail records but sequences span %d..%d after checkpoint %d",
			r.Records, r.CheckpointSeq+1, r.LastSeq, r.CheckpointSeq)
	}
	return r, nil
}

// Replay rebuilds a dynsky maintainer from the recovered state —
// checkpoint graph plus tail ops — which is oracle-equal to applying
// the same acknowledged batches through internal/dynsky live.
func (r *Recovered) Replay() *dynsky.Maintainer {
	m := dynsky.New(r.Graph)
	m.Apply(r.Ops)
	return m
}

// tailInfo is one segment's scan verdict.
type tailInfo struct {
	records    int   // intact records in this segment
	goodBytes  int64 // bytes up to and including the last intact record
	torn       bool  // a trailing partial/corrupt record frame was found
	headerTorn bool  // the segment header itself is short or invalid
}

// scanSegment walks one segment's records, invoking fn (when non-nil)
// per intact record, and classifies the tail. Framing anomalies are
// reported via tailInfo, not errors — the caller decides whether a torn
// tail is legal (final segment) or corruption (mid-log).
func scanSegment(path string, wantFirst uint64, fn func(seq uint64, ops []dynsky.Op)) (tailInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return tailInfo{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return tailInfo{}, err
	}
	return scanSegmentBytes(data, wantFirst, fn), nil
}

// scanSegmentBytes is scanSegment over an in-memory image (shared with
// FuzzWALReplay, which fuzzes exactly this parser).
func scanSegmentBytes(data []byte, wantFirst uint64, fn func(seq uint64, ops []dynsky.Op)) tailInfo {
	le := binary.LittleEndian
	if len(data) < segHeaderSize ||
		le.Uint32(data[0:4]) != segMagic ||
		le.Uint32(data[4:8]) != segVersion ||
		le.Uint64(data[8:16]) != wantFirst {
		return tailInfo{headerTorn: true}
	}
	t := tailInfo{goodBytes: segHeaderSize}
	at := int64(segHeaderSize)
	expect := wantFirst
	for {
		rest := data[at:]
		if len(rest) == 0 {
			return t // clean end
		}
		if len(rest) < recHeaderSize {
			t.torn = true
			return t
		}
		length := int64(le.Uint32(rest[0:4]))
		crc := le.Uint32(rest[4:8])
		if length < recPayloadFixed || length > maxRecordBytes ||
			int64(len(rest)) < recHeaderSize+length {
			t.torn = true
			return t
		}
		payload := rest[recHeaderSize : recHeaderSize+length]
		if crc32.Checksum(payload, castagnoli) != crc {
			t.torn = true
			return t
		}
		seq := le.Uint64(payload[0:8])
		kind := payload[8]
		count := int64(le.Uint32(payload[9:13]))
		if seq != expect || kind != recordKindOps ||
			count > maxRecordOps || recPayloadFixed+count*opBytes != length {
			// A CRC-valid frame that contradicts its position: treat as
			// the tail boundary rather than guessing.
			t.torn = true
			return t
		}
		if fn != nil {
			ops := make([]dynsky.Op, count)
			p := payload[recPayloadFixed:]
			for i := range ops {
				ops[i] = dynsky.Op{
					Add: p[0] == 1,
					U:   int32(le.Uint32(p[1:5])),
					V:   int32(le.Uint32(p[5:9])),
				}
				p = p[opBytes:]
			}
			fn(seq, ops)
		}
		expect++
		t.records++
		at += recHeaderSize + length
		t.goodBytes = at
	}
}

// errNotDir distinguishes "no log here" for callers probing a path.
var errNotDir = errors.New("wal: not a directory")

// Exists reports whether dir looks like an initialized log directory
// (has at least one checkpoint or segment).
func Exists(dir string) (bool, error) {
	st, err := os.Stat(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if !st.IsDir() {
		return false, fmt.Errorf("%w: %s", errNotDir, dir)
	}
	ls, err := scanDir(dir)
	if err != nil {
		return false, err
	}
	return len(ls.segs) > 0 || ls.hasCkpt, nil
}
