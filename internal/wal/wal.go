// Package wal is the serving daemon's crash-safe durability layer: a
// CRC32C-framed, length-prefixed write-ahead log for dynsky edge-update
// batches, with segment rotation, configurable fsync policy, checkpoint
// compaction into v2 binary snapshots, and torn-tail-truncating
// recovery.
//
// # On-disk layout
//
// A log directory holds three kinds of files:
//
//	seg-<firstseq>.wal    record segments, named by the sequence number
//	                      of their first record (20-digit decimal)
//	ckpt-<seq>.nsb2       checkpoint snapshots: the graph state after
//	                      applying every record with seq ≤ <seq>
//	.tmp-*                in-flight temp files, ignored (and removed)
//	                      by recovery
//
// Each segment starts with a 16-byte header (magic, version, firstSeq)
// and is followed by records framed as
//
//	length uint32 | crc uint32 | payload
//
// where crc is the CRC32C (Castagnoli) of the payload and the payload
// is
//
//	seq uint64 | kind uint8 | count uint32 | count × (flag uint8, u int32, v int32)
//
// Sequence numbers are assigned per record (one record = one
// acknowledged batch) and are strictly consecutive across segments.
//
// # Durability contract
//
// Append returns only after the record bytes have reached the file,
// fsync'd according to the policy: SyncAlways fsyncs before every
// acknowledgement, SyncInterval fsyncs when the configured interval has
// elapsed since the last sync, SyncNone leaves flushing to the OS.
// Under SyncAlways, every acknowledged record survives a machine crash;
// under the weaker policies an acknowledged suffix may be lost but
// recovery still yields an exact prefix of the acknowledged sequence —
// never a reordering, never a misparse. A torn final record (a crash
// mid-write) is detected by the length/CRC framing and truncated.
//
// The crash-recovery property battery (crash_test.go) drives every
// kill-point in the append/rotate/checkpoint paths via
// internal/runctl/faultinject and asserts exactly that contract against
// a dynsky replay oracle.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl/faultinject"
)

// SyncPolicy picks when Append fsyncs the active segment.
type SyncPolicy int

const (
	// SyncAlways fsyncs before acknowledging every record: an acked
	// batch survives a machine crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs when SyncEvery has elapsed since the last
	// sync; a crash can lose at most the records acked since then.
	SyncInterval
	// SyncNone never fsyncs on the append path (Close and Checkpoint
	// still do); durability rides on the OS page cache.
	SyncNone
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy parses the -wal-sync flag values.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always|interval|none)", s)
}

// Options tunes a Log. The zero value is SyncAlways with 64 MiB
// segments.
type Options struct {
	// Sync is the fsync policy for Append.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB). The threshold is checked before each append, so
	// records never span segments.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

const (
	segMagic   = 0x4e53_574c // "NSWL"
	segVersion = 1
	// segHeaderSize is the fixed segment header: magic, version, firstSeq.
	segHeaderSize = 16
	// recHeaderSize is the per-record frame: length, crc.
	recHeaderSize = 8
	// recordKindOps is the only payload kind today; the byte exists so
	// the format can grow (e.g. epoch markers) without a version bump.
	recordKindOps = 1
	// recPayloadFixed is the fixed part of a record payload: seq, kind,
	// count.
	recPayloadFixed = 13
	// opBytes is the wire size of one op: flag, u, v.
	opBytes = 9

	// maxRecordBytes caps a record frame a reader will honor: a hostile
	// or corrupted length prefix must not trigger a huge allocation.
	// 1 MiB of ops comfortably exceeds the daemon's swap-batch cap.
	maxRecordBytes = 1 << 24
	// maxRecordOps is the matching op-count cap.
	maxRecordOps = (maxRecordBytes - recPayloadFixed) / opBytes
)

// castagnoli is the CRC32C table shared by the framing and the v2
// snapshot footer (graph.FlagChecksum uses the same polynomial).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// ErrWedged is returned once a Log has failed an append, rotate or
// checkpoint mid-write: the on-disk tail is in an unknown state, so the
// only safe continuation is recovery. (A faultinject kill wedges the
// log the same way a real I/O error does.)
var ErrWedged = errors.New("wal: log wedged after a failed write; reopen to recover")

func segName(firstSeq uint64) string { return fmt.Sprintf("seg-%020d.wal", firstSeq) }
func ckptName(seq uint64) string     { return fmt.Sprintf("ckpt-%020d.nsb2", seq) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	n, err := strconv.ParseUint(mid, 10, 64)
	return n, err == nil
}

// Log is an append-only write-ahead log rooted in one directory. All
// methods are safe for concurrent use; appends are serialized
// internally (the daemon additionally serializes them under its swap
// lock, so the mutex is uncontended in practice).
type Log struct {
	dir string
	o   Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	lastSeq  uint64   // last acknowledged record
	ckptSeq  uint64   // latest durable checkpoint
	segs     int      // live segment count (incl. active)
	lastSync time.Time
	closed   bool
	wedged   error // sticky first failure

	buf []byte // record scratch, reused across appends
}

// Open opens (creating if necessary) the log directory and positions
// for append after the last intact record: the final segment's torn
// tail, if any, is truncated here so the next record lands on a clean
// frame boundary. Open does NOT replay state — use Recover for that —
// but it does establish lastSeq from the segment scan.
func Open(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, o: o, lastSync: time.Now()}
	ls, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l.ckptSeq = ls.ckptSeq
	l.segs = len(ls.segs)
	// A headerless final segment (crash between segment creation and its
	// header write) holds nothing acknowledged: remove it and fall back
	// to its — necessarily sealed and intact — predecessor.
	for len(ls.segs) > 0 {
		last := ls.segs[len(ls.segs)-1]
		tail, err := scanSegment(filepath.Join(dir, last.name), last.firstSeq, nil)
		if err != nil {
			return nil, err
		}
		if tail.headerTorn {
			if err := os.Remove(filepath.Join(dir, last.name)); err != nil {
				return nil, err
			}
			ls.segs = ls.segs[:len(ls.segs)-1]
			l.segs--
			continue
		}
		// Establish lastSeq: every earlier segment ends where its
		// successor starts, so only the last one needs a scan.
		l.lastSeq = last.firstSeq - 1 + uint64(tail.records)
		f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		if tail.torn {
			if err := f.Truncate(tail.goodBytes); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.name, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, err
			}
		}
		if _, err := f.Seek(tail.goodBytes, 0); err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.size = f, tail.goodBytes
		return l, nil
	}
	// Checkpoint-only directory (or fresh): appends resume right after
	// the checkpoint; the first Append rotates a segment into existence.
	l.lastSeq = l.ckptSeq
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence number of the last acknowledged record
// (0 when none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// CheckpointSeq returns the sequence covered by the latest checkpoint.
func (l *Log) CheckpointSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptSeq
}

// Segments returns the live segment count (including the active one).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs
}

// wedge records the first failure and makes it sticky.
func (l *Log) wedge(err error) error {
	if l.wedged == nil {
		l.wedged = err
	}
	return err
}

func (l *Log) guard() error {
	if l.closed {
		return ErrClosed
	}
	if l.wedged != nil {
		return ErrWedged
	}
	return nil
}

// kill consults the named faultinject point; on ActionKill it wedges
// the log and reports true. The caller returns ErrKilled with the
// on-disk state exactly as it stands.
func (l *Log) kill(point string) bool {
	if faultinject.At(point) == faultinject.ActionKill {
		l.wedged = faultinject.ErrKilled
		return true
	}
	return false
}

// encodeRecord appends the framed record for (seq, ops) to buf.
func encodeRecord(buf []byte, seq uint64, ops []dynsky.Op) []byte {
	payload := recPayloadFixed + opBytes*len(ops)
	need := recHeaderSize + payload
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(payload))
	p := buf[recHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:8], seq)
	p[8] = recordKindOps
	binary.LittleEndian.PutUint32(p[9:13], uint32(len(ops)))
	at := recPayloadFixed
	for _, op := range ops {
		var flag byte
		if op.Add {
			flag = 1
		}
		p[at] = flag
		binary.LittleEndian.PutUint32(p[at+1:at+5], uint32(op.U))
		binary.LittleEndian.PutUint32(p[at+5:at+9], uint32(op.V))
		at += opBytes
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(p, castagnoli))
	return buf
}

// Append durably logs one batch as the next record and returns its
// sequence number. The batch is the acknowledgement unit: when Append
// returns nil the record is on disk (fsync'd per the policy) and a
// restart replays it in order. An empty batch is rejected — it would
// acknowledge nothing.
func (l *Log) Append(ops []dynsky.Op) (uint64, error) {
	if len(ops) == 0 {
		return 0, errors.New("wal: empty batch")
	}
	if len(ops) > maxRecordOps {
		return 0, fmt.Errorf("wal: batch of %d ops exceeds the %d record cap", len(ops), maxRecordOps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guard(); err != nil {
		return 0, err
	}
	if l.kill("wal.append.enter") {
		return 0, faultinject.ErrKilled
	}
	if l.f == nil || l.size >= l.o.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.lastSeq + 1
	l.buf = encodeRecord(l.buf, seq, ops)

	// The torn-write kill-point: persist only a partial frame, exactly
	// what a crash mid-write leaves behind.
	if faultinject.At("wal.append.torn") == faultinject.ActionKill {
		half := len(l.buf)/2 + 1 // past the length prefix, inside the payload
		if _, err := l.f.Write(l.buf[:half]); err != nil {
			return 0, l.wedge(err)
		}
		_ = l.f.Sync() // a torn record can be durable — still torn
		l.wedged = faultinject.ErrKilled
		return 0, faultinject.ErrKilled
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, l.wedge(err)
	}
	l.size += int64(len(l.buf))
	if l.kill("wal.append.presync") {
		return 0, faultinject.ErrKilled
	}
	if err := l.maybeSyncLocked(); err != nil {
		return 0, err
	}
	l.lastSeq = seq
	if rec := obs.Get(); rec != nil {
		rec.Add("wal.append.records", 1)
		rec.Add("wal.append.ops", int64(len(ops)))
		rec.Add("wal.append.bytes", int64(len(l.buf)))
	}
	return seq, nil
}

func (l *Log) maybeSyncLocked() error {
	switch l.o.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.o.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.wedge(err)
	}
	l.lastSync = time.Now()
	if rec := obs.Get(); rec != nil {
		rec.Add("wal.fsync", 1)
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guard(); err != nil {
		return err
	}
	return l.syncLocked()
}

// rotateLocked seals the active segment and opens the next one, named
// by the sequence its first record will carry.
func (l *Log) rotateLocked() error {
	if l.kill("wal.rotate.enter") {
		return faultinject.ErrKilled
	}
	if l.f != nil {
		// Seal: the old segment's contents must be durable before the
		// new one exists, or recovery could see the successor while the
		// predecessor's tail is still in the page cache.
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return l.wedge(err)
		}
		l.f = nil
	}
	first := l.lastSeq + 1
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return l.wedge(err)
	}
	if l.kill("wal.rotate.header") {
		f.Close() // headerless segment left behind: recovery treats it as an empty tail
		return faultinject.ErrKilled
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return l.wedge(err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return l.wedge(err)
	}
	l.f, l.size = f, segHeaderSize
	l.segs++
	if rec := obs.Get(); rec != nil {
		rec.Add("wal.rotate", 1)
	}
	return nil
}

// Checkpoint writes g — which must be the state after applying every
// record through LastSeq — as a durable v2 snapshot, then compacts:
// segments and checkpoints wholly covered by the new checkpoint are
// deleted and the log rotates to a fresh segment. After a successful
// checkpoint, recovery loads the snapshot and replays nothing.
//
// The caller must ensure no Append lands between capturing g and the
// call (the daemon holds its swap lock across both).
func (l *Log) Checkpoint(g *graph.Graph) (seq uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.guard(); err != nil {
		return 0, err
	}
	seq = l.lastSeq
	if l.kill("wal.checkpoint.enter") {
		return 0, faultinject.ErrKilled
	}
	// Everything the checkpoint covers must be durable before the
	// checkpoint can claim it.
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(l.dir, ".tmp-ckpt-*")
	if err != nil {
		return 0, l.wedge(err)
	}
	tmpName := tmp.Name()
	werr := g.WriteBinary2(tmp, 0)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmpName)
		return 0, l.wedge(werr)
	}
	if l.kill("wal.checkpoint.rename") {
		// Crash before rename: the temp file is ignored (and cleaned)
		// by the next recovery; the previous checkpoint still rules.
		return 0, faultinject.ErrKilled
	}
	if err := os.Rename(tmpName, filepath.Join(l.dir, ckptName(seq))); err != nil {
		os.Remove(tmpName)
		return 0, l.wedge(err)
	}
	if err := syncDir(l.dir); err != nil {
		return 0, l.wedge(err)
	}
	l.ckptSeq = seq
	if rec := obs.Get(); rec != nil {
		rec.Add("wal.checkpoint", 1)
	}
	if l.kill("wal.checkpoint.truncate") {
		// Crash between rename and compaction: old segments linger but
		// recovery replays only seq > checkpoint, so they are inert.
		return 0, faultinject.ErrKilled
	}
	// Compact: rotate so the active segment starts past the checkpoint,
	// then delete every older segment and checkpoint.
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	if err := l.removeCoveredLocked(seq); err != nil {
		return 0, err
	}
	return seq, nil
}

// removeCoveredLocked deletes segments whose entire record range is ≤
// seq (those with a successor starting at or before seq+1) and
// checkpoints older than seq.
func (l *Log) removeCoveredLocked(seq uint64) error {
	ls, err := scanDir(l.dir)
	if err != nil {
		return l.wedge(err)
	}
	for i, s := range ls.segs {
		if i+1 < len(ls.segs) && ls.segs[i+1].firstSeq <= seq+1 {
			if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
				return l.wedge(err)
			}
			l.segs--
		}
	}
	for _, c := range ls.ckpts {
		if c < seq {
			if err := os.Remove(filepath.Join(l.dir, ckptName(c))); err != nil {
				return l.wedge(err)
			}
		}
	}
	return syncDir(l.dir)
}

// Close fsyncs and closes the active segment. A wedged log closes
// without touching the file again.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	if l.wedged != nil {
		f.Close()
		return nil
	}
	err := f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort on platforms where directories reject fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// dirListing is the classified content of a log directory.
type dirListing struct {
	segs    []segInfo
	ckpts   []uint64 // ascending
	ckptSeq uint64   // latest, 0 when none
	hasCkpt bool
}

type segInfo struct {
	name     string
	firstSeq uint64
}

// scanDir classifies the directory's files, sorted by sequence. Temp
// files are removed (they are debris from an interrupted checkpoint).
func scanDir(dir string) (dirListing, error) {
	var ls dirListing
	ents, err := os.ReadDir(dir)
	if err != nil {
		return ls, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "seg-"):
			if seq, ok := parseSeq(name, "seg-", ".wal"); ok {
				ls.segs = append(ls.segs, segInfo{name: name, firstSeq: seq})
			} else {
				return ls, fmt.Errorf("wal: unrecognized segment file %q", name)
			}
		case strings.HasPrefix(name, "ckpt-"):
			if seq, ok := parseSeq(name, "ckpt-", ".nsb2"); ok {
				ls.ckpts = append(ls.ckpts, seq)
			} else {
				return ls, fmt.Errorf("wal: unrecognized checkpoint file %q", name)
			}
		}
	}
	sort.Slice(ls.segs, func(i, j int) bool { return ls.segs[i].firstSeq < ls.segs[j].firstSeq })
	sort.Slice(ls.ckpts, func(i, j int) bool { return ls.ckpts[i] < ls.ckpts[j] })
	if len(ls.ckpts) > 0 {
		ls.ckptSeq = ls.ckpts[len(ls.ckpts)-1]
		ls.hasCkpt = true
	}
	return ls, nil
}
