package wal

import (
	"encoding/binary"
	"testing"

	"neisky/internal/dynsky"
)

// segImage builds a valid segment image holding the given batches
// starting at firstSeq.
func segImage(firstSeq uint64, batches [][]dynsky.Op) []byte {
	var out []byte
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], firstSeq)
	out = append(out, hdr[:]...)
	for i, b := range batches {
		out = append(out, encodeRecord(nil, firstSeq+uint64(i), b)...)
	}
	return out
}

// FuzzWALReplay fuzzes the segment parser that recovery trusts with
// arbitrary (hostile or crash-mangled) bytes. The parser must never
// panic, must hand out only self-consistent records, and its verdict
// must be internally coherent: goodBytes covers exactly the records it
// reported, records parse in strictly consecutive sequence order, and a
// clean (untorn, unheaderTorn) scan consumed the whole image.
func FuzzWALReplay(f *testing.F) {
	ops := []dynsky.Op{{Add: true, U: 1, V: 2}, {Add: false, U: 2, V: 3}, {Add: true, U: 0, V: 4}}
	valid := segImage(1, [][]dynsky.Op{ops[:1], ops[1:], ops})
	f.Add(valid, uint64(1))
	f.Add(valid[:len(valid)-5], uint64(1)) // torn final frame
	f.Add(valid[:segHeaderSize], uint64(1))
	f.Add(valid[:segHeaderSize-3], uint64(1)) // torn header
	f.Add(valid, uint64(7))                   // firstSeq mismatch
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-2] ^= 0xa5 // payload bit flip: CRC must catch
	f.Add(corrupt, uint64(1))
	big := append([]byte(nil), valid[:segHeaderSize]...)
	big = append(big, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // absurd length prefix
	f.Add(big, uint64(1))
	f.Add([]byte{}, uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, wantFirst uint64) {
		var (
			count   int
			lastSeq uint64
		)
		ti := scanSegmentBytes(data, wantFirst, func(seq uint64, ops []dynsky.Op) {
			if seq != wantFirst+uint64(count) {
				t.Fatalf("record %d carries seq %d, want consecutive %d", count, seq, wantFirst+uint64(count))
			}
			if len(ops) > maxRecordOps {
				t.Fatalf("record %d decodes %d ops past the cap", count, len(ops))
			}
			count++
			lastSeq = seq
		})
		if ti.records != count {
			t.Fatalf("verdict reports %d records, callback saw %d", ti.records, count)
		}
		if ti.headerTorn {
			if ti.records != 0 || ti.torn || ti.goodBytes != 0 {
				t.Fatalf("headerTorn verdict not clean: %+v", ti)
			}
			return
		}
		if ti.goodBytes < segHeaderSize || ti.goodBytes > int64(len(data)) {
			t.Fatalf("goodBytes %d out of range (len %d)", ti.goodBytes, len(data))
		}
		if !ti.torn && ti.goodBytes != int64(len(data)) {
			t.Fatalf("clean scan left %d bytes unaccounted", int64(len(data))-ti.goodBytes)
		}
		// Re-scanning exactly the good prefix must reproduce the same
		// records with no torn tail — this is what Open's truncation
		// leaves behind.
		if ti.torn {
			re := scanSegmentBytes(data[:ti.goodBytes], wantFirst, nil)
			if re.torn || re.headerTorn || re.records != ti.records {
				t.Fatalf("truncated prefix rescans to %+v, want %d clean records", re, ti.records)
			}
		}
		_ = lastSeq
	})
}
