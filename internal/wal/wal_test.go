package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// randBatches builds count batches of mixed add/remove ops on n
// vertices. Removes target edges likely to exist (previously added),
// so batches exercise both effective and no-op updates.
func randBatches(n, count, batchLen int, seed uint64) [][]dynsky.Op {
	r := rng.New(seed)
	var added [][2]int32
	out := make([][]dynsky.Op, count)
	for i := range out {
		batch := make([]dynsky.Op, batchLen)
		for j := range batch {
			if len(added) > 0 && r.Intn(4) == 0 {
				e := added[r.Intn(len(added))]
				batch[j] = dynsky.Op{Add: false, U: e[0], V: e[1]}
				continue
			}
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			for v == u {
				v = int32(r.Intn(n))
			}
			batch[j] = dynsky.Op{Add: true, U: u, V: v}
			added = append(added, [2]int32{u, v})
		}
		out[i] = batch
	}
	return out
}

// oracle replays batches through a fresh dynsky maintainer on base.
func oracle(base *graph.Graph, batches [][]dynsky.Op) *dynsky.Maintainer {
	m := dynsky.New(base)
	for _, b := range batches {
		m.Apply(b)
	}
	return m
}

// sameState asserts two maintainers agree on graph shape and skyline.
func sameState(t *testing.T, got, want *dynsky.Maintainer, label string) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: n/m = %d/%d, want %d/%d", label, got.N(), got.M(), want.N(), want.M())
	}
	a, b := got.Skyline(), want.Skyline()
	if len(a) != len(b) {
		t.Fatalf("%s: skyline size %d, want %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: skyline[%d] = %d, want %d", label, i, a[i], b[i])
		}
	}
}

// initLog opens a log in a fresh temp dir and checkpoints base as its
// initial durable state (the daemon's first-boot path).
func initLog(t *testing.T, base *graph.Graph, o Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Checkpoint(base); err != nil {
		t.Fatalf("initial Checkpoint: %v", err)
	}
	return l, dir
}

func TestAppendRecoverOracleEqual(t *testing.T) {
	const n = 120
	base := graph.NewBuilder(n).Build()
	l, dir := initLog(t, base, Options{Sync: SyncNone})
	batches := randBatches(n, 40, 6, 7)
	for i, b := range batches {
		seq, err := l.Append(b)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Append %d: seq = %d, want %d", i, seq, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if r.TornTail {
		t.Fatal("TornTail on a clean log")
	}
	if r.Records != len(batches) || r.LastSeq != uint64(len(batches)) {
		t.Fatalf("recovered %d records to seq %d, want %d", r.Records, r.LastSeq, len(batches))
	}
	sameState(t, r.Replay(), oracle(base, batches), "recovered state")
}

func TestReopenResume(t *testing.T) {
	const n = 60
	base := graph.NewBuilder(n).Build()
	l, dir := initLog(t, base, Options{Sync: SyncAlways})
	batches := randBatches(n, 20, 4, 11)
	for _, b := range batches[:12] {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.LastSeq() != 12 {
		t.Fatalf("reopened LastSeq = %d, want 12", l2.LastSeq())
	}
	for _, b := range batches[12:] {
		if _, err := l2.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records != 20 {
		t.Fatalf("recovered %d records, want 20", r.Records)
	}
	sameState(t, r.Replay(), oracle(base, batches), "resumed log")
}

func TestSegmentRotation(t *testing.T) {
	const n = 80
	base := graph.NewBuilder(n).Build()
	// Tiny segments: every few records rotates.
	l, dir := initLog(t, base, Options{Sync: SyncNone, SegmentBytes: 256})
	batches := randBatches(n, 30, 5, 13)
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 3 {
		t.Fatalf("Segments = %d with 256-byte segments, want several", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records != len(batches) {
		t.Fatalf("recovered %d records across segments, want %d", r.Records, len(batches))
	}
	sameState(t, r.Replay(), oracle(base, batches), "multi-segment recovery")
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	const n = 50
	base := graph.NewBuilder(n).Build()
	l, dir := initLog(t, base, Options{Sync: SyncAlways})
	batches := randBatches(n, 8, 4, 17)
	for _, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail of the
	// last segment.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	last := segs[len(segs)-1]
	torn := encodeRecord(nil, uint64(len(batches)+1), batches[0])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2+3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Recover(dir)
	if err != nil {
		t.Fatalf("Recover over torn tail: %v", err)
	}
	if !r.TornTail {
		t.Fatal("TornTail not reported")
	}
	if r.Records != len(batches) {
		t.Fatalf("recovered %d records, want the %d intact ones", r.Records, len(batches))
	}
	sameState(t, r.Replay(), oracle(base, batches), "torn-tail recovery")

	// Reopen truncates the torn frame; the next append reuses the seq.
	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if l2.LastSeq() != uint64(len(batches)) {
		t.Fatalf("LastSeq = %d after truncation, want %d", l2.LastSeq(), len(batches))
	}
	seq, err := l2.Append(batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(batches)+1) {
		t.Fatalf("post-truncation seq = %d, want %d", seq, len(batches)+1)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TornTail || r2.Records != len(batches)+1 {
		t.Fatalf("after truncate+append: torn=%v records=%d, want clean %d",
			r2.TornTail, r2.Records, len(batches)+1)
	}
}

func TestCheckpointCompaction(t *testing.T) {
	const n = 90
	base := graph.NewBuilder(n).Build()
	l, dir := initLog(t, base, Options{Sync: SyncNone, SegmentBytes: 512})
	batches := randBatches(n, 24, 5, 19)
	m := dynsky.New(base)
	for i, b := range batches {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		m.Apply(b)
		if i == 15 {
			seq, err := l.Checkpoint(m.Graph())
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			if seq != 16 {
				t.Fatalf("Checkpoint seq = %d, want 16", seq)
			}
		}
	}
	// Compaction: exactly one checkpoint file, and no segment that
	// starts at or before the checkpoint except the active lineage.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.nsb2"))
	if len(ckpts) != 1 || !strings.HasSuffix(ckpts[0], ckptName(16)) {
		t.Fatalf("checkpoints on disk = %v, want exactly %s", ckpts, ckptName(16))
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	for _, s := range segs {
		if filepath.Base(s) < segName(17) {
			t.Fatalf("segment %s survived compaction past checkpoint 16", s)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.CheckpointSeq != 16 || r.Records != len(batches)-16 {
		t.Fatalf("recovered ckpt=%d tail=%d, want 16 and %d", r.CheckpointSeq, r.Records, len(batches)-16)
	}
	sameState(t, r.Replay(), oracle(base, batches), "checkpoint+tail recovery")
}

func TestSyncPolicies(t *testing.T) {
	const n = 40
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			base := graph.NewBuilder(n).Build()
			l, dir := initLog(t, base, Options{Sync: p, SyncEvery: 1})
			batches := randBatches(n, 10, 3, 23)
			for _, b := range batches {
				if _, err := l.Append(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if r.Records != len(batches) {
				t.Fatalf("recovered %d records under %s, want %d", r.Records, p, len(batches))
			}
			sameState(t, r.Replay(), oracle(base, batches), p.String())
		})
	}
}

func TestCorruptMidLogFails(t *testing.T) {
	const n = 40
	base := graph.NewBuilder(n).Build()
	l, dir := initLog(t, base, Options{Sync: SyncNone, SegmentBytes: 200})
	for _, b := range randBatches(n, 12, 4, 29) {
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: that is corruption in
	// acknowledged history, not a torn tail, and must fail loudly.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir); err == nil {
		t.Fatal("Recover accepted mid-log corruption")
	}
}

func TestAppendValidation(t *testing.T) {
	base := graph.NewBuilder(10).Build()
	l, _ := initLog(t, base, Options{Sync: SyncNone})
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := l.Append(make([]dynsky.Op, maxRecordOps+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := l.Append([]dynsky.Op{{Add: true, U: 0, V: 1}}); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestClosedAndWedged(t *testing.T) {
	base := graph.NewBuilder(10).Build()
	l, dir := initLog(t, base, Options{Sync: SyncNone})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]dynsky.Op{{Add: true, U: 0, V: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	_ = dir
}

func TestExists(t *testing.T) {
	dir := t.TempDir()
	if ok, err := Exists(dir); err != nil || ok {
		t.Fatalf("empty dir: Exists = %v, %v", ok, err)
	}
	if ok, err := Exists(filepath.Join(dir, "missing")); err != nil || ok {
		t.Fatalf("missing dir: Exists = %v, %v", ok, err)
	}
	base := graph.NewBuilder(5).Build()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(base); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if ok, err := Exists(dir); err != nil || !ok {
		t.Fatalf("initialized dir: Exists = %v, %v", ok, err)
	}
}
