package wal

import (
	"errors"
	"testing"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/runctl/faultinject"
)

// killPoints enumerates every structural crash site in the append,
// rotate and checkpoint paths. The battery below proves the recovery
// contract at each one: a restart recovers exactly a prefix of the
// submitted batches that includes every acknowledged one, oracle-equal
// to a fresh dynsky replay.
var killPoints = []string{
	"wal.append.enter",
	"wal.append.torn",
	"wal.append.presync",
	"wal.rotate.enter",
	"wal.rotate.header",
	"wal.checkpoint.enter",
	"wal.checkpoint.rename",
	"wal.checkpoint.truncate",
}

// tornKill reports whether a kill at point leaves a torn tail on disk
// (a partial record frame, or a headerless segment).
func tornKill(point string) bool {
	return point == "wal.append.torn" || point == "wal.rotate.header"
}

func TestCrashRecoveryAtEveryKillPoint(t *testing.T) {
	for _, point := range killPoints {
		t.Run(point, func(t *testing.T) {
			// The point hook is process-global, so cases run sequentially.
			for hit := int64(1); hit <= 3; hit++ {
				runCrashCase(t, point, hit)
			}
		})
	}
}

// runCrashCase drives a checkpointing append workload into a simulated
// process death at the hit-th firing of the named kill-point, then
// verifies the full recovery contract and that a restarted log can
// continue appending and checkpointing.
func runCrashCase(t *testing.T, point string, killHit int64) {
	t.Helper()
	const n = 60
	base := graph.NewBuilder(n).Build()

	// Initialize the log (first checkpoint = base state) BEFORE arming
	// the kill-point: the battery targets the steady-state paths, and the
	// daemon's first boot checkpoints before serving writes.
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 300})
	if err != nil {
		t.Fatalf("%s/%d: Open: %v", point, killHit, err)
	}
	if _, err := l.Checkpoint(base); err != nil {
		t.Fatalf("%s/%d: initial Checkpoint: %v", point, killHit, err)
	}

	restore := faultinject.SetPoints(func(p string, hits int64) faultinject.Action {
		if p == point && hits == killHit {
			return faultinject.ActionKill
		}
		return faultinject.ActionNone
	})
	defer restore()

	batches := randBatches(n, 40, 4, 31+uint64(killHit))
	m := dynsky.New(base) // mirror of the acknowledged state
	acked := 0
	killed := false
	killedInAppend := false
	for i, b := range batches {
		if i%7 == 6 {
			if _, err := l.Checkpoint(m.Graph()); err != nil {
				if !errors.Is(err, faultinject.ErrKilled) {
					t.Fatalf("%s/%d: Checkpoint: %v", point, killHit, err)
				}
				killed = true
				break
			}
		}
		if _, err := l.Append(b); err != nil {
			if !errors.Is(err, faultinject.ErrKilled) {
				t.Fatalf("%s/%d: Append: %v", point, killHit, err)
			}
			killed = true
			killedInAppend = true
			break
		}
		acked++
		m.Apply(b)
	}
	if !killed {
		t.Fatalf("%s/%d: workload finished without hitting the kill-point", point, killHit)
	}

	// A killed log is wedged: no later call may touch the tail.
	if _, err := l.Append(batches[0]); !errors.Is(err, ErrWedged) {
		t.Fatalf("%s/%d: append after kill: %v, want ErrWedged", point, killHit, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("%s/%d: Close after kill: %v", point, killHit, err)
	}
	restore() // the "restart" runs with no faults armed

	// Recovery contract. Every record seq counts batches from the start
	// of the workload (the init checkpoint holds seq 0), so LastSeq IS
	// the number of recovered batches.
	r, err := Recover(dir)
	if err != nil {
		t.Fatalf("%s/%d: Recover: %v", point, killHit, err)
	}
	rec := int(r.LastSeq)
	if rec < acked {
		t.Fatalf("%s/%d: recovered %d batches, lost acknowledged ones (acked %d)", point, killHit, rec, acked)
	}
	maxRec := acked
	if killedInAppend {
		// The batch in flight at the kill may or may not have reached the
		// disk intact; either way it was never acknowledged.
		maxRec = acked + 1
	}
	if rec > maxRec {
		t.Fatalf("%s/%d: recovered %d batches, more than the %d submitted", point, killHit, rec, maxRec)
	}
	if want := tornKill(point); r.TornTail != want {
		t.Fatalf("%s/%d: TornTail = %v, want %v", point, killHit, r.TornTail, want)
	}
	sameState(t, r.Replay(), oracle(base, batches[:rec]), point)

	// Restart-and-continue: reopen (truncating any torn tail), append a
	// further suffix, checkpoint, and recover once more.
	l2, err := Open(dir, Options{Sync: SyncAlways, SegmentBytes: 300})
	if err != nil {
		t.Fatalf("%s/%d: reopen: %v", point, killHit, err)
	}
	if l2.LastSeq() != uint64(rec) {
		t.Fatalf("%s/%d: reopened LastSeq = %d, want %d", point, killHit, l2.LastSeq(), rec)
	}
	m2 := r.Replay()
	for _, b := range randBatches(n, 6, 4, 97) {
		if _, err := l2.Append(b); err != nil {
			t.Fatalf("%s/%d: post-recovery Append: %v", point, killHit, err)
		}
		m2.Apply(b)
	}
	if _, err := l2.Checkpoint(m2.Graph()); err != nil {
		t.Fatalf("%s/%d: post-recovery Checkpoint: %v", point, killHit, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("%s/%d: post-recovery Close: %v", point, killHit, err)
	}
	r2, err := Recover(dir)
	if err != nil {
		t.Fatalf("%s/%d: final Recover: %v", point, killHit, err)
	}
	if r2.TornTail {
		t.Fatalf("%s/%d: torn tail after clean close", point, killHit)
	}
	sameState(t, r2.Replay(), m2, point+" (post-recovery)")
}
