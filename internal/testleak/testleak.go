// Package testleak provides a goroutine-leak check shared by the
// cancellation tests: engines that shard work across goroutines must
// leave none behind, even when cancelled or panicked mid-run.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and returns a function to defer;
// the deferred check polls with a settle loop (scheduler and timer
// goroutines need a moment to unwind) and fails the test if the count
// never returns to the baseline.
//
//	defer testleak.Check(t)()
func Check(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after settle\n%s", before, after, buf[:n])
	}
}
