package core

import (
	"testing"

	"neisky/internal/graph"
	"neisky/internal/obs"
)

// obsGraph is a small random-ish graph with enough structure that both
// phases do real work (dominated vertices, bloom probes).
func obsGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(64)
	for u := 0; u < 63; u++ {
		b.AddEdge(int32(u), int32(u+1))
		b.AddEdge(int32(u), int32((u*7+3)%64))
		if u%3 == 0 {
			b.AddEdge(int32(u), int32((u*5+11)%64))
		}
	}
	return b.Build()
}

// TestFilterRefinePublishesObs pins the observability contract of the
// skyline hot path: with a recorder installed, one FilterRefineSky run
// yields per-phase stage timers and work counters that agree with the
// returned Stats; with recording disabled nothing is published.
func TestFilterRefinePublishesObs(t *testing.T) {
	g := obsGraph(t)
	old := obs.Swap(obs.New())
	defer obs.Swap(old)
	r := obs.Get()

	res := FilterRefineSky(g, Options{})
	snap := r.Snapshot()

	for _, timer := range []string{"core.filter", "core.refine"} {
		st := snap.Timers[timer]
		if st.Count != 1 || st.TotalNs <= 0 {
			t.Fatalf("timer %s = %+v, want one timed run", timer, st)
		}
	}
	wantCounters := map[string]int64{
		"core.filter.inclusion_tests": 0, // value checked below, key presence here
		"core.refine.pairs_examined":  0,
		"core.refine.bloom.probes":    0,
	}
	for name := range wantCounters {
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("counter %s missing from snapshot: %v", name, snap.Counters)
		}
	}
	if got := snap.Counters["core.filter.candidates"]; got != int64(res.Stats.CandidateCount) {
		t.Fatalf("core.filter.candidates = %d, want %d", got, res.Stats.CandidateCount)
	}
	if got := snap.Counters["core.refine.pairs_examined"]; got != int64(res.Stats.PairsExamined) {
		t.Fatalf("core.refine.pairs_examined = %d, want %d", got, res.Stats.PairsExamined)
	}
	total := snap.Counters["core.filter.inclusion_tests"] + snap.Counters["core.refine.inclusion_tests"]
	if total != int64(res.Stats.InclusionTests) {
		t.Fatalf("inclusion tests filter+refine = %d, want Stats total %d", total, res.Stats.InclusionTests)
	}
	if got := snap.Counters["core.refine.bloom.probes"]; got != int64(res.Stats.BloomProbes) {
		t.Fatalf("bloom probes = %d, want %d", got, res.Stats.BloomProbes)
	}

	// Parallel path publishes under the same names.
	r.Reset()
	par := ParallelFilterRefineSky(g, Options{NoParallelCutoff: true}, 4)
	snap = r.Snapshot()
	if snap.Timers["core.filter"].Count != 1 || snap.Timers["core.refine"].Count != 1 {
		t.Fatalf("parallel run timers = %v", snap.Timers)
	}
	if got := snap.Counters["core.refine.pairs_examined"]; got != int64(par.Stats.PairsExamined) {
		t.Fatalf("parallel pairs_examined = %d, want %d", got, par.Stats.PairsExamined)
	}

	// Disabled: the same run must leave a fresh recorder untouched.
	obs.Swap(nil)
	FilterRefineSky(g, Options{})
	probe := obs.New()
	obs.Swap(probe)
	FilterRefineSky(g, Options{DisableHubIndex: true}) // any run publishes again
	if len(probe.Snapshot().Counters) == 0 {
		t.Fatal("re-enabled recorder saw no counters")
	}
}

// TestStatsBloomProbesCounted checks the new probe counter feeds the
// hit/miss arithmetic: probes ≥ bit rejects + false positives.
func TestStatsBloomProbesCounted(t *testing.T) {
	g := obsGraph(t)
	res := FilterRefineSky(g, Options{DisableHubIndex: true})
	s := res.Stats
	if s.BloomProbes == 0 {
		t.Fatal("expected bloom probes on the no-hub path")
	}
	if s.BloomProbes < s.BloomBitRejects+s.BloomFalsePos {
		t.Fatalf("probes %d < bit rejects %d + false pos %d",
			s.BloomProbes, s.BloomBitRejects, s.BloomFalsePos)
	}
	off := FilterRefineSky(g, Options{DisableBloom: true})
	if off.Stats.BloomProbes != 0 {
		t.Fatalf("DisableBloom still probed %d times", off.Stats.BloomProbes)
	}
}
