package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"neisky/internal/bloom"
	"neisky/internal/graph"
)

// ParallelFilterRefineSky is FilterRefineSky with the refine phase
// sharded across worker goroutines. The filter phase stays sequential
// (it is already near-linear); each refine worker scans a disjoint slice
// of the candidate set using the min-degree pivot strategy.
//
// Concurrency argument: the only shared mutable state is the dominator
// array O, accessed with atomics. A worker writes O[u] only for its own
// candidates and reads O[w] for arbitrary w. A stale read can only be
// pessimistic — O[w] transitions exactly once, from w to a dominator —
// so a worker may waste an exact check on a freshly-dominated w, or skip
// it; skipping is sound because domination chains end at skyline
// vertices, whose O entry never changes, and the chain top is always
// reachable within two hops (see the sequential proof in skyline.go).
// The resulting skyline set is therefore identical to the sequential
// one; only which dominator gets recorded for a dominated vertex may
// differ.
func ParallelFilterRefineSky(g *graph.Graph, opts Options, workers int) *Result {
	if workers <= 1 {
		return FilterRefineSky(g, opts)
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	candidates, o, fstats := FilterPhase(g, opts)
	res := &Result{Candidates: candidates, Stats: fstats}
	n := int32(g.N())

	var filters []*bloom.Filter
	words := opts.BloomWords
	if words <= 0 {
		words = defaultBloomWords(g)
	}
	if !opts.DisableBloom {
		filters = make([]*bloom.Filter, n)
		// Filter construction parallelizes trivially: each worker owns
		// a contiguous slice of candidates.
		var wg sync.WaitGroup
		chunk := (len(candidates) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(candidates) {
				hi = len(candidates)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []int32) {
				defer wg.Done()
				for _, u := range part {
					f := bloom.New(words)
					for _, v := range g.Neighbors(u) {
						f.Add(v)
					}
					filters[u] = f
				}
			}(candidates[lo:hi])
		}
		wg.Wait()
	}

	load := func(v int32) int32 { return atomic.LoadInt32(&o[v]) }
	store := func(v, x int32) { atomic.StoreInt32(&o[v], x) }

	// tryDominate mirrors the sequential per-pair check with atomic O
	// accesses; see skyline.go for the check-by-check rationale.
	tryDominate := func(u, w, covered int32, du int) bool {
		dw := g.Degree(w)
		if dw < du || load(w) != w {
			return false
		}
		if filters != nil && filters[w] != nil && filters[u] != nil && !g.Has(u, w) {
			if !filters[u].SubsetOf(filters[w]) {
				return false
			}
		}
		for _, x := range g.Neighbors(u) {
			if x == covered || x == w {
				continue
			}
			if filters != nil && filters[w] != nil && !filters[w].MayContain(x) {
				return false
			}
			if !g.Has(w, x) {
				return false
			}
		}
		if dw == du {
			if u > w {
				store(u, w)
				return true
			}
			return false
		}
		store(u, w)
		return true
	}

	var wg sync.WaitGroup
	var next int64 = -1
	const batch = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, batch)) - batch + 1
				if start >= len(candidates) {
					return
				}
				end := start + batch
				if end > len(candidates) {
					end = len(candidates)
				}
				for _, u := range candidates[start:end] {
					if load(u) != u {
						continue
					}
					du := g.Degree(u)
					if du == 0 {
						continue
					}
					pivot := g.Neighbors(u)[0]
					for _, v := range g.Neighbors(u) {
						if g.Degree(v) < g.Degree(pivot) {
							pivot = v
						}
					}
					if tryDominate(u, pivot, -1, du) {
						continue
					}
					for _, x := range g.Neighbors(pivot) {
						if x == u {
							continue
						}
						if tryDominate(u, x, pivot, du) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	res.Dominator = o
	res.Skyline = collect(o)
	return res
}
