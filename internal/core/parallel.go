package core

import (
	"context"
	"sync/atomic"

	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// ParallelFilterPhase is Algorithm 2 with the vertex scan sharded across
// worker goroutines, each grabbing fixed-size batches off a shared
// cursor.
//
// Concurrency argument: the phase is read-only over the CSR except for
// the single-transition O array, accessed with atomics. A vertex's final
// candidate status is determined solely by its own edge scan — whether u
// has some neighbor v with N[u] ⊆ N[v] (strictly, or mutually with
// vid < uid) does not depend on scan order — so the candidate set (and
// hence the skyline downstream) is deterministic; only which dominator
// gets recorded for a pruned vertex, and the exact work counters, may
// vary across runs. Cross-shard writes occur only in the mutual
// equal-neighborhood case, where the scan of the smaller-ID vertex also
// marks the larger; the larger vertex's own scan discovers the same
// fact, so a stale read merely costs a redundant (still correct) store.
//
// Each worker accumulates a private Stats, summed deterministically
// after the join. Workers run panic-isolated: a panicking worker is
// recovered into the returned error (a *runctl.PanicError) instead of
// killing the process, and its siblings drain at their next checkpoint;
// the partial candidate set is still a sound skyline superset.
func ParallelFilterPhase(g *graph.Graph, opts Options, workers int) (candidates []int32, o []int32, stats Stats, err error) {
	candidates, o, stats, _, err = parallelFilterPhaseRun(nil, g, opts, workers)
	return candidates, o, stats, err
}

// ParallelFilterPhaseCtx is ParallelFilterPhase under a context, with
// the filter phase's anytime contract (candidates ⊇ skyline on
// truncation).
func ParallelFilterPhaseCtx(ctx context.Context, g *graph.Graph, opts Options, workers int) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	c, o, stats, trunc, err := parallelFilterPhaseRun(run, g, opts, workers)
	res := &Result{Candidates: c, Dominator: o, Skyline: c, Stats: stats}
	if trunc || err != nil {
		res.Truncated = true
		res.Err = run.Err()
		if err != nil {
			res.Err = err
		}
	}
	return res
}

// parallelCutoff is the CSR work size (n + 2m array entries) below
// which the parallel entry points run the serial engine instead. On
// graphs this small the whole filter scan costs a few hundred
// microseconds — the same order as spawning the worker group and
// bouncing the shared batch cursor and O-array cache lines between
// cores — so sharding buys nothing and has been measured losing
// (BENCH_1: youtube-sim, n+2m ≈ 31.5k, 8 workers barely matched
// serial). 2^16 entries ≈ 256 KiB of CSR keeps every Table-I small sim
// serial while livejournal/orkut-scale graphs still shard.
// BenchmarkParallelCutoff pins the tradeoff; Options.NoParallelCutoff
// is the ablation escape hatch.
const parallelCutoff = 1 << 16

// underParallelCutoff reports whether g is too small for the sharded
// path to pay for itself.
func underParallelCutoff(g *graph.Graph, opts Options) bool {
	return !opts.NoParallelCutoff && g.N()+2*g.M() < parallelCutoff
}

// parallelFilterPhaseRun shards the filter scan across workers under a
// run. Each worker polls the run once per grabbed batch (batchFilter
// vertices), so cancellation is honored within one batch per worker.
func parallelFilterPhaseRun(run *runctl.Run, g *graph.Graph, opts Options, workers int) (candidates []int32, o []int32, stats Stats, truncated bool, err error) {
	if workers <= 1 || underParallelCutoff(g, opts) {
		candidates, o, stats, truncated = filterPhaseRun(run, g, opts)
		return candidates, o, stats, truncated, nil
	}
	r := obs.Get()
	defer r.Start("core.filter").End()
	n := int32(g.N())
	o = make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	h := hubFor(g, opts)

	// A live run even for background callers: a worker panic cancels it
	// so siblings drain promptly instead of running to completion.
	run = runctl.Ensure(run)
	perStats := make([]Stats, workers)
	group := runctl.NewGroup(run)
	var next int64 = -1
	const batch = 256
	for wi := 0; wi < workers; wi++ {
		st := &perStats[wi]
		group.Go(func() {
			cp := run.Checkpoint(1)
			for {
				if cp.Tick() {
					return
				}
				start := int32(atomic.AddInt64(&next, batch)) - batch + 1
				if start >= n {
					return
				}
				end := start + batch
				if end > n {
					end = n
				}
				for u := start; u < end; u++ {
					if atomic.LoadInt32(&o[u]) != u {
						continue
					}
					du := g.Degree(u)
					if du == 0 {
						continue
					}
					for _, v := range g.Neighbors(u) {
						dv := g.Degree(v)
						if dv < du {
							continue // N[u] ⊆ N[v] needs deg(v) ≥ deg(u)
						}
						if opts.PendantFilter {
							if du != 1 {
								continue
							}
						} else {
							st.InclusionTests++
							if !inclTest(g, h, st, u, v) {
								continue
							}
						}
						if dv == du {
							// Mutual inclusion: smaller ID dominates.
							if u > v {
								if atomic.LoadInt32(&o[u]) == u {
									atomic.StoreInt32(&o[u], v)
								}
							} else if atomic.LoadInt32(&o[v]) == v {
								atomic.StoreInt32(&o[v], u)
							}
						} else if atomic.LoadInt32(&o[u]) == u {
							atomic.StoreInt32(&o[u], v)
							break
						}
					}
				}
			}
		})
	}
	err = group.Wait()
	truncated = run.Stopped()
	for i := range perStats {
		stats.add(perStats[i])
	}
	candidates = collect(o)
	stats.CandidateCount = len(candidates)
	publishPhaseStats(r, "core.filter", stats)
	return candidates, o, stats, truncated, err
}

// ParallelFilterRefineSky is FilterRefineSky with both phases sharded
// across worker goroutines: ParallelFilterPhase for the candidate scan,
// then refine workers over disjoint candidate batches using the
// min-degree pivot strategy. workers is taken at face value — callers
// pick it; extra goroutines beyond GOMAXPROCS simply interleave.
// Graphs below parallelCutoff run the serial engine regardless of
// workers (identical results, none of the sharding overhead); see the
// cutoff comment above.
//
// Concurrency argument for the refine phase: the only shared mutable
// state is the dominator array O, accessed with atomics. A worker writes
// O[u] only for its own candidates and reads O[w] for arbitrary w. A
// stale read can only be pessimistic — O[w] transitions exactly once,
// from w to a dominator — so a worker may waste an exact check on a
// freshly-dominated w, or skip it; skipping is sound because domination
// chains end at skyline vertices, whose O entry never changes, and the
// chain top is always reachable within two hops (see the sequential
// proof in skyline.go). The resulting skyline set is therefore identical
// to the sequential one; only which dominator gets recorded for a
// dominated vertex may differ.
//
// Work counters are kept per worker and summed into Result.Stats after
// the join. Workers run panic-isolated: a recovered worker panic
// surfaces once in Result.Err (with Truncated set; the partial skyline
// stays a sound superset) instead of killing the process.
func ParallelFilterRefineSky(g *graph.Graph, opts Options, workers int) *Result {
	return parallelFilterRefineSkyRun(nil, g, opts, workers)
}

// ParallelFilterRefineSkyCtx is ParallelFilterRefineSky under a
// context, with the same anytime contract as FilterRefineSkyCtx.
func ParallelFilterRefineSkyCtx(ctx context.Context, g *graph.Graph, opts Options, workers int) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return parallelFilterRefineSkyRun(run, g, opts, workers)
}

func parallelFilterRefineSkyRun(run *runctl.Run, g *graph.Graph, opts Options, workers int) *Result {
	if workers <= 1 || underParallelCutoff(g, opts) {
		return filterRefineSkyRun(run, g, opts)
	}
	run = runctl.Ensure(run)
	candidates, o, fstats, ftrunc, ferr := parallelFilterPhaseRun(run, g, opts, workers)
	res := &Result{Candidates: candidates, Stats: fstats}
	if ftrunc || ferr != nil {
		res.Dominator = o
		res.Skyline = candidates
		res.Truncated = true
		res.Err = run.Err()
		if ferr != nil {
			res.Err = ferr
		}
		return res
	}
	r := obs.Get()
	refineSpan := r.Start("core.refine")
	h := hubFor(g, opts)
	filters := buildFilters(g, h, opts, candidates)

	load := func(v int32) int32 { return atomic.LoadInt32(&o[v]) }
	store := func(v, x int32) { atomic.StoreInt32(&o[v], x) }

	// tryDominate mirrors the sequential per-pair check with atomic O
	// accesses; the containment verification is the shared
	// refineIncluded kernel.
	tryDominate := func(st *Stats, u, w, covered int32, du int) bool {
		dw := g.Degree(w)
		if dw < du || load(w) != w {
			return false
		}
		st.PairsExamined++
		if !refineIncluded(g, h, filters, st, u, w, covered) {
			return false
		}
		if dw == du {
			if u > w {
				store(u, w)
				return true
			}
			return false
		}
		store(u, w)
		return true
	}

	perStats := make([]Stats, workers)
	group := runctl.NewGroup(run)
	var next int64 = -1
	const batch = 64
	for wi := 0; wi < workers; wi++ {
		st := &perStats[wi]
		group.Go(func() {
			cp := run.Checkpoint(1)
			for {
				if cp.Tick() {
					return
				}
				start := int(atomic.AddInt64(&next, batch)) - batch + 1
				if start >= len(candidates) {
					return
				}
				end := start + batch
				if end > len(candidates) {
					end = len(candidates)
				}
				for _, u := range candidates[start:end] {
					if load(u) != u {
						continue
					}
					du := g.Degree(u)
					if du == 0 {
						continue
					}
					pivot := g.Neighbors(u)[0]
					for _, v := range g.Neighbors(u) {
						if g.Degree(v) < g.Degree(pivot) {
							pivot = v
						}
					}
					if tryDominate(st, u, pivot, -1, du) {
						continue
					}
					for _, x := range g.Neighbors(pivot) {
						if x == u {
							continue
						}
						if tryDominate(st, u, x, pivot, du) {
							break
						}
					}
				}
			}
		})
	}
	err := group.Wait()
	for i := range perStats {
		res.Stats.add(perStats[i])
	}
	// CandidateCount is a set size, not a counter; keep the filter
	// phase's value rather than the per-worker sum.
	res.Stats.CandidateCount = fstats.CandidateCount
	res.Dominator = o
	res.Skyline = collect(o)
	if run.Stopped() || err != nil {
		res.Truncated = true
		res.Err = run.Err()
		if err != nil {
			res.Err = err
		}
	}
	refineSpan.End()
	publishPhaseStats(r, "core.refine", res.Stats.sub(fstats))
	return res
}
