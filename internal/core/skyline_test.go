package core

import (
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// randomGraph builds a random simple graph with n vertices and roughly
// density*n*(n-1)/2 edges.
func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// allAlgorithms runs every skyline algorithm on g and fails the test if
// any disagrees with the brute-force oracle.
func allAlgorithmsAgree(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	oracle := BruteForce(g)
	type algo struct {
		name string
		run  func() *Result
	}
	algos := []algo{
		{"BaseSky", func() *Result { return BaseSky(g, Options{}) }},
		{"FilterRefineSky", func() *Result { return FilterRefineSky(g, Options{}) }},
		{"FilterRefineSky/noBloom", func() *Result { return FilterRefineSky(g, Options{DisableBloom: true}) }},
		{"FilterRefineSky/pendant", func() *Result { return FilterRefineSky(g, Options{PendantFilter: true}) }},
		{"FilterRefineSky/fullScan", func() *Result { return FilterRefineSky(g, Options{FullTwoHopScan: true}) }},
		{"FilterRefineSky/fullScanNoDedup", func() *Result {
			return FilterRefineSky(g, Options{FullTwoHopScan: true, NoTwoHopDedup: true})
		}},
		{"FilterRefineSky/pendantFull", func() *Result {
			return FilterRefineSky(g, Options{PendantFilter: true, FullTwoHopScan: true})
		}},
		{"Base2Hop", func() *Result { return Base2Hop(g, Options{}) }},
		{"BaseCSet", func() *Result { return BaseCSet(g, Options{}) }},
	}
	for _, a := range algos {
		got := a.run()
		if !EqualSkylines(got.Skyline, oracle.Skyline) {
			t.Fatalf("%s: %s skyline %v != oracle %v (edges %v)",
				label, a.name, got.Skyline, oracle.Skyline, g.EdgeList())
		}
	}
}

func TestFig1Example(t *testing.T) {
	// The reconstructed running example must reproduce the paper's
	// skyline {v0, v1, v4, v5, v6, v7, v8, v9} and v13 ≤ v8.
	g := fig1(t)
	res := FilterRefineSky(g, Options{})
	want := []int32{0, 1, 4, 5, 6, 7, 8, 9}
	if !EqualSkylines(res.Skyline, want) {
		t.Fatalf("fig1 skyline = %v, want %v", res.Skyline, want)
	}
	if !Dominates(g, 8, 13) {
		t.Fatal("v8 must dominate v13")
	}
	allAlgorithmsAgree(t, g, "fig1")
}

// fig1 mirrors dataset.Fig1 without importing it (avoids a cycle in test
// dependencies and keeps core self-contained).
func fig1(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.FromEdges(15, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3},
		{0, 4}, {1, 5},
		{4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 4},
		{4, 10}, {5, 11}, {6, 12}, {8, 13}, {9, 14},
	})
}

func TestFig2SpecialGraphs(t *testing.T) {
	// Fig 2(a): clique — |R| = |C| = 1.
	k := gen.Clique(8)
	res := FilterRefineSky(k, Options{})
	if len(res.Skyline) != 1 || res.Skyline[0] != 0 {
		t.Fatalf("clique skyline = %v, want [0]", res.Skyline)
	}
	if len(res.Candidates) != 1 {
		t.Fatalf("clique candidates = %v, want 1 vertex", res.Candidates)
	}

	// Fig 2(b): complete binary tree — R and C are the non-leaf vertices.
	// Use 3 full levels: vertices 0..6, leaves 3..6.
	tree := gen.CompleteBinaryTree(7)
	resT := FilterRefineSky(tree, Options{})
	wantT := []int32{0, 1, 2}
	if !EqualSkylines(resT.Skyline, wantT) {
		t.Fatalf("tree skyline = %v, want %v", resT.Skyline, wantT)
	}
	if !EqualSkylines(resT.Candidates, wantT) {
		t.Fatalf("tree candidates = %v, want %v", resT.Candidates, wantT)
	}

	// Fig 2(c): circle — everything is in the skyline.
	cyc := gen.Cycle(9)
	resC := FilterRefineSky(cyc, Options{})
	if len(resC.Skyline) != 9 || len(resC.Candidates) != 9 {
		t.Fatalf("cycle: |R|=%d |C|=%d, want 9 and 9", len(resC.Skyline), len(resC.Candidates))
	}

	// Fig 2(d): path — all but the two endpoints.
	p := gen.Path(9)
	resP := FilterRefineSky(p, Options{})
	if len(resP.Skyline) != 7 || len(resP.Candidates) != 7 {
		t.Fatalf("path: |R|=%d |C|=%d, want 7 and 7", len(resP.Skyline), len(resP.Candidates))
	}
	for _, end := range []int32{0, 8} {
		for _, v := range resP.Skyline {
			if v == end {
				t.Fatalf("path endpoint %d must not be in skyline %v", end, resP.Skyline)
			}
		}
	}

	for _, g := range []*graph.Graph{k, tree, cyc, p} {
		allAlgorithmsAgree(t, g, "fig2")
	}
}

func TestDominatesDefinition(t *testing.T) {
	// Star: center dominates every leaf; leaves are mutually included so
	// the smallest leaf dominates the others.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	if !Dominates(g, 0, 1) || !Dominates(g, 0, 2) {
		t.Fatal("center must dominate leaves")
	}
	if Dominates(g, 1, 0) {
		t.Fatal("leaf must not dominate center")
	}
	if !Dominates(g, 1, 2) || Dominates(g, 2, 1) {
		t.Fatal("mutual leaves: smaller ID dominates")
	}
	if Dominates(g, 1, 1) {
		t.Fatal("no self domination")
	}
}

func TestDominationStrictPartialOrder(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 3+r.Intn(10), 0.4)
		n := int32(g.N())
		// Antisymmetry: never both u dom v and v dom u.
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if u != v && Dominates(g, u, v) && Dominates(g, v, u) {
					t.Fatalf("antisymmetry violated for %d,%d in %v", u, v, g.EdgeList())
				}
			}
		}
		// Transitivity: u dom v, v dom w ⇒ u dom w.
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				for w := int32(0); w < n; w++ {
					if u == v || v == w || u == w {
						continue
					}
					if Dominates(g, u, v) && Dominates(g, v, w) && !Dominates(g, u, w) {
						t.Fatalf("transitivity violated: %d dom %d dom %d in %v", u, v, w, g.EdgeList())
					}
				}
			}
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	// One isolated vertex next to an edge: the isolated vertex is
	// dominated by definition.
	g := graph.FromEdges(3, [][2]int32{{0, 1}})
	res := BaseSky(g, Options{})
	want := BruteForce(g)
	if !EqualSkylines(res.Skyline, want.Skyline) {
		t.Fatalf("isolated: %v vs oracle %v", res.Skyline, want.Skyline)
	}
	for _, v := range res.Skyline {
		if v == 2 {
			t.Fatal("isolated vertex 2 must be dominated")
		}
	}

	// KeepIsolated restores the paper-algorithm behaviour.
	resKeep := BaseSky(g, Options{KeepIsolated: true})
	found := false
	for _, v := range resKeep.Skyline {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("KeepIsolated should leave vertex 2 in the skyline")
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	res := BaseSky(g, Options{})
	// All vertices mutually dominate; minimum ID survives.
	if len(res.Skyline) != 1 || res.Skyline[0] != 0 {
		t.Fatalf("edgeless skyline = %v, want [0]", res.Skyline)
	}
	if !EqualSkylines(res.Skyline, BruteForce(g).Skyline) {
		t.Fatal("edgeless oracle mismatch")
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := graph.NewBuilder(n).Build()
		allAlgorithmsAgree(t, g, "tiny-empty")
	}
	g := graph.FromEdges(2, [][2]int32{{0, 1}})
	allAlgorithmsAgree(t, g, "single-edge")
}

func TestLemma1CandidatesContainSkyline(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(25), 0.15+0.5*r.Float64())
		res := FilterRefineSky(g, Options{})
		inC := make(map[int32]bool, len(res.Candidates))
		for _, c := range res.Candidates {
			inC[c] = true
		}
		for _, u := range res.Skyline {
			if !inC[u] {
				t.Fatalf("skyline vertex %d missing from candidates %v (edges %v)",
					u, res.Candidates, g.EdgeList())
			}
		}
		if len(res.Candidates) > g.N() {
			t.Fatal("candidates exceed vertex count")
		}
	}
}

func TestPendantFilterWeakerButSound(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 2+r.Intn(20), 0.25)
		exactC, _, _ := FilterPhase(g, Options{})
		pendC, _, _ := FilterPhase(g, Options{PendantFilter: true})
		// The pendant filter prunes a subset of what the exact filter
		// prunes, so its candidate set is a superset.
		inPend := make(map[int32]bool, len(pendC))
		for _, c := range pendC {
			inPend[c] = true
		}
		for _, c := range exactC {
			if !inPend[c] {
				t.Fatalf("exact candidate %d missing from pendant candidates", c)
			}
		}
	}
}

func TestAllAlgorithmsAgreeRandom(t *testing.T) {
	r := rng.New(1234)
	densities := []float64{0.05, 0.15, 0.3, 0.6, 0.9}
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(28)
		d := densities[trial%len(densities)]
		g := randomGraph(r, n, d)
		allAlgorithmsAgree(t, g, "random")
	}
}

func TestAllAlgorithmsAgreePowerLaw(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.PowerLaw(120, 300, 2.3, seed)
		allAlgorithmsAgree(t, g, "powerlaw")
	}
}

func TestAllAlgorithmsAgreeER(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g := gen.ER(80, 0.06, seed)
		allAlgorithmsAgree(t, g, "er")
	}
}

func TestQuickSkylineMatchesOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%24) + 2
		density := 0.05 + float64(dRaw%90)/100
		r := rng.New(seed)
		g := randomGraph(r, n, density)
		oracle := BruteForce(g)
		frs := FilterRefineSky(g, Options{})
		base := BaseSky(g, Options{})
		return EqualSkylines(frs.Skyline, oracle.Skyline) &&
			EqualSkylines(base.Skyline, oracle.Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorArrayIsValid(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 3+r.Intn(15), 0.35)
		for _, res := range []*Result{
			BaseSky(g, Options{}),
			FilterRefineSky(g, Options{}),
			Base2Hop(g, Options{}),
			BaseCSet(g, Options{}),
		} {
			for v := int32(0); v < int32(g.N()); v++ {
				d := res.Dominator[v]
				if d == v {
					continue
				}
				if !Dominates(g, d, v) {
					t.Fatalf("recorded dominator %d does not dominate %d (edges %v)",
						d, v, g.EdgeList())
				}
			}
		}
	}
}

func TestDominatedBy(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	res := BaseSky(g, Options{})
	children := DominatedBy(res.Dominator)
	total := 0
	for _, lst := range children {
		total += len(lst)
	}
	if total != 3 {
		t.Fatalf("star should have 3 dominated vertices, got %d (map %v)", total, children)
	}
}

func TestStatsCounters(t *testing.T) {
	g := gen.PowerLaw(200, 600, 2.3, 42)
	res := FilterRefineSky(g, Options{})
	if res.Stats.CandidateCount != len(res.Candidates) {
		t.Fatalf("CandidateCount %d != |Candidates| %d", res.Stats.CandidateCount, len(res.Candidates))
	}
	noBloom := FilterRefineSky(g, Options{DisableBloom: true})
	if noBloom.Stats.BloomRejects != 0 || noBloom.Stats.BloomBitRejects != 0 {
		t.Fatal("bloom counters must be zero when bloom disabled")
	}
	if res.Stats.PairsExamined == 0 {
		t.Fatal("expected some pairs examined")
	}
}

func TestSkylineSet(t *testing.T) {
	g := gen.Path(5)
	res := BaseSky(g, Options{})
	set := SkylineSet(res, g.N())
	count := 0
	for _, in := range set {
		if in {
			count++
		}
	}
	if count != len(res.Skyline) {
		t.Fatal("SkylineSet cardinality mismatch")
	}
}

func TestMutualTwinsNonAdjacent(t *testing.T) {
	// 0 and 1 share neighbors {2,3} and are not adjacent: mutual
	// inclusion, smaller ID wins.
	g := graph.FromEdges(4, [][2]int32{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	allAlgorithmsAgree(t, g, "twins-nonadj")
	res := BaseSky(g, Options{})
	for _, v := range res.Skyline {
		if v == 1 {
			t.Fatalf("vertex 1 must be dominated by its twin 0: %v", res.Skyline)
		}
	}
}

func TestMutualTwinsAdjacent(t *testing.T) {
	// 0-1 adjacent with identical closed neighborhoods.
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}})
	allAlgorithmsAgree(t, g, "twins-adj")
}

// TestThresholdGraphSkylineIsSingleton: in a threshold graph the
// vicinal preorder is total (Brandes et al., the paper's reference
// [7]), so exactly one vertex — the minimum-ID member of the top
// equivalence class — survives in the skyline.
func TestThresholdGraphSkylineIsSingleton(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		n := 1 + int(seed%25)
		g := gen.RandomThreshold(n, 0.4, seed)
		res := FilterRefineSky(g, Options{})
		if len(res.Skyline) != 1 {
			t.Fatalf("threshold graph skyline = %v, want singleton (edges %v)",
				res.Skyline, g.EdgeList())
		}
		if !EqualSkylines(res.Skyline, BruteForce(g).Skyline) {
			t.Fatal("threshold skyline disagrees with oracle")
		}
		// Totality of the preorder itself.
		for u := int32(0); u < int32(g.N()); u++ {
			for v := u + 1; v < int32(g.N()); v++ {
				if !g.SubsetOpenInClosed(u, v) && !g.SubsetOpenInClosed(v, u) {
					t.Fatalf("vicinal preorder not total at (%d,%d) in threshold graph", u, v)
				}
			}
		}
	}
}

// TestDisjointUnionSkyline: with no isolated vertices, the skyline of a
// disjoint union is the union of the per-component skylines (domination
// never crosses components).
func TestDisjointUnionSkyline(t *testing.T) {
	r := rng.New(314)
	for trial := 0; trial < 10; trial++ {
		g1 := gen.Cycle(3 + r.Intn(5))
		g2 := gen.PowerLaw(30, 60, 2.3, uint64(trial)).DropIsolated()
		if g2.N() == 0 {
			continue
		}
		b := graph.NewBuilder(g1.N() + g2.N())
		g1.Edges(func(u, v int32) { b.AddEdge(u, v) })
		off := int32(g1.N())
		g2.Edges(func(u, v int32) { b.AddEdge(u+off, v+off) })
		g := b.Build()

		union := FilterRefineSky(g, Options{})
		r1 := FilterRefineSky(g1, Options{})
		r2 := FilterRefineSky(g2, Options{})
		want := append([]int32{}, r1.Skyline...)
		for _, v := range r2.Skyline {
			want = append(want, v+off)
		}
		if !EqualSkylines(union.Skyline, want) {
			t.Fatalf("union skyline %v != component union %v", union.Skyline, want)
		}
	}
}

func TestBloomWordsOverride(t *testing.T) {
	g := gen.PowerLaw(100, 250, 2.5, 9)
	small := FilterRefineSky(g, Options{BloomWords: 1})
	big := FilterRefineSky(g, Options{BloomWords: 64})
	oracle := BruteForce(g)
	if !EqualSkylines(small.Skyline, oracle.Skyline) || !EqualSkylines(big.Skyline, oracle.Skyline) {
		t.Fatal("bloom size must not change results")
	}
	// A tiny filter has more false positives than a large one.
	if small.Stats.BloomFalsePos < big.Stats.BloomFalsePos {
		t.Fatalf("expected more false positives with 1 word (%d) than 64 (%d)",
			small.Stats.BloomFalsePos, big.Stats.BloomFalsePos)
	}
}
