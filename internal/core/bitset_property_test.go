package core

import (
	"fmt"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
)

// Property test for the hub-bitmap fast path: on ER and Chung–Lu graphs
// dense enough to materialize hub bitmaps, every bitset-kernel algorithm
// must produce the same skyline as (a) the brute-force oracle, which
// deliberately never touches the hub index, and (b) its own legacy
// merge-path run under DisableHubIndex — across option combinations and
// parallel worker counts.

func propertyGraphs() []struct {
	name string
	g    *graph.Graph
} {
	var out []struct {
		name string
		g    *graph.Graph
	}
	add := func(name string, g *graph.Graph) {
		out = append(out, struct {
			name string
			g    *graph.Graph
		}{name, g})
	}
	// ER at densities that straddle the hub threshold (θ ≥ 9): sparse
	// graphs exercise the no-hub fallback inside the hub index, dense
	// ones the word-AND kernels.
	add("er-sparse", gen.ER(150, 0.03, 1))
	add("er-mid", gen.ER(120, 0.12, 2))
	add("er-dense", gen.ER(80, 0.35, 3))
	add("er-deltap", gen.ERDeltaP(100, 1.5, 4))
	// Chung–Lu / power-law: heavy-tailed degrees mean a few big hubs
	// and many low-degree vertices probing against them.
	add("chunglu-2.2", gen.PowerLaw(400, 1600, 2.2, 5))
	add("chunglu-2.8", gen.PowerLaw(300, 900, 2.8, 6))
	// Structured extremes.
	add("star", gen.Star(64))
	add("clique", gen.Clique(24))
	return out
}

func TestBitsetKernelsMatchOracle(t *testing.T) {
	type algo struct {
		name string
		run  func(*graph.Graph, Options) *Result
	}
	algos := []algo{
		{"FilterRefineSky", FilterRefineSky},
		{"Base2Hop", Base2Hop},
		{"BaseCSet", BaseCSet},
		{"Parallel1", func(g *graph.Graph, o Options) *Result { return ParallelFilterRefineSky(g, o, 1) }},
		{"Parallel2", func(g *graph.Graph, o Options) *Result {
			o.NoParallelCutoff = true
			return ParallelFilterRefineSky(g, o, 2)
		}},
		{"Parallel8", func(g *graph.Graph, o Options) *Result {
			o.NoParallelCutoff = true
			return ParallelFilterRefineSky(g, o, 8)
		}},
	}
	optsCombos := []Options{
		{},
		{KeepIsolated: true},
		{PendantFilter: true},
		{KeepIsolated: true, PendantFilter: true},
		{DisableBloom: true},
	}
	for _, tc := range propertyGraphs() {
		oracle := BruteForce(tc.g)
		for _, opts := range optsCombos {
			label := fmt.Sprintf("%s/%+v", tc.name, opts)
			for _, a := range algos {
				hub := a.run(tc.g, opts)
				// Legacy merge path: identical options plus
				// DisableHubIndex must agree bit for bit.
				legacyOpts := opts
				legacyOpts.DisableHubIndex = true
				legacy := a.run(tc.g, legacyOpts)
				if !EqualSkylines(hub.Skyline, legacy.Skyline) {
					t.Fatalf("%s %s: hub path %d vertices != legacy path %d",
						label, a.name, len(hub.Skyline), len(legacy.Skyline))
				}
				// BruteForce implements the bare definition, which
				// drops isolated vertices like the default options do;
				// it is only a valid oracle without KeepIsolated.
				if !opts.KeepIsolated {
					if !EqualSkylines(hub.Skyline, oracle.Skyline) {
						t.Fatalf("%s %s: skyline %d vertices != oracle %d",
							label, a.name, len(hub.Skyline), len(oracle.Skyline))
					}
				}
			}
		}
	}
}

// TestHubIndexActuallyEngaged guards the test above against silently
// degenerating: at least one property graph must materialize hub
// bitmaps, or the fast path is never exercised.
func TestHubIndexActuallyEngaged(t *testing.T) {
	engaged := 0
	for _, tc := range propertyGraphs() {
		if tc.g.Hub().Hubs() > 0 {
			engaged++
		}
	}
	if engaged < 3 {
		t.Fatalf("only %d property graphs have hub bitmaps; fast path under-tested", engaged)
	}
}
