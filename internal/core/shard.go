package core

import (
	"context"
	"runtime"
	"sync/atomic"

	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
	"neisky/internal/sketch"
)

// Sharded filter/refine engine.
//
// ShardedFilterRefineSky recomputes Algorithm 3 over S contiguous,
// work-balanced vertex shards (graph.PartitionShards). Three structural
// differences from ParallelFilterRefineSky:
//
//  1. The phases are FUSED and refine-first: each shard makes a single
//     pass over its vertices, running the min-degree-pivot dominator
//     scan directly while the vertex's adjacency rows are hot in cache.
//     This is sound without a prior filter pass because the pivot range
//     N(v*) ∪ {v*} provably contains EVERY dominator of u — including
//     the edge-adjacent ones Algorithm 2 looks for: if v ∈ N(u)
//     dominates u then v* ∈ N(u) ⊆ N[v], so v ∈ N[v*]. The
//     edge-constrained candidate classification (the filter phase's
//     output) then only needs to run for the small minority of vertices
//     that were proven dominated; survivors are in R ⊆ C for free. On
//     BENCH_3-style graphs where the filter prunes <10% of vertices,
//     this deletes more than half of all containment pre-checks.
//  2. Both the dominator scan and the candidate classification are
//     fronted by per-vertex register sketches (internal/sketch): a
//     32-byte thermometer-coded HLL summary of N(u) whose subset test
//     has no false negatives, so a sketch rejection discards a pair
//     without an exact adjacency merge and without touching the
//     dominator array. The sketches are a per-snapshot index, built
//     lazily and cached on the graph (graph.Sketches) exactly like the
//     hub bitmaps; hub-covered dominators skip the sketch probe (their
//     registers are saturated) and go straight to the exact bitmap.
//  3. On degree-relabeled snapshots (graph.DegreeSorted) adjacency
//     lists are non-increasing in degree, so the min-degree pivot is
//     the LAST neighbor (O(1) instead of an O(deg) scan) and every
//     "deg(w) ≥ deg(u)" filter becomes a prefix walk with early break.
//
// Concurrency argument. The scan writes o[u] ONLY from the shard that
// owns u — the serial filter's mutual equal-neighborhood cross-write
// (u < v marks o[v]) is unnecessary here because v's own pivot scan
// rediscovers the mutual inclusion from its side (u lies in v's pivot
// range, see point 1), so candidate and skyline membership stay
// deterministic. Cross-shard reads (the liveness skip o[w] == w) use
// atomic loads; a stale read is pessimistic only, and skipping a
// freshly-dominated w is sound because domination chains end at skyline
// vertices whose o entry never changes and whose chain top stays within
// the 2-hop pivot range (the ParallelFilterRefineSky proof, which does
// not depend on any filter phase having completed elsewhere). With
// Workers == 1 the engine is fully deterministic for any shard count.
//
// Anytime contract: a truncated run leaves o[u] == u for every
// unscanned vertex, so Skyline = collect(o) remains a sound superset of
// R; Candidates is reset to that superset since partially-assembled
// per-shard candidate lists are not one.
//
// Options interplay: KeepIsolated, DisableHubIndex and NoParallelCutoff
// are honored. The Bloom machinery is never built (the sketches replace
// it: DisableBloom is implied), and the filter/refine ablation knobs
// (PendantFilter, FullTwoHopScan, NoTwoHopDedup, BloomWords) do not
// apply — the engine always runs the full filter predicate and the
// pivot refine strategy, which compute the same skyline.

// ShardOptions tune the sharded engine.
type ShardOptions struct {
	// Shards is the number of contiguous vertex shards S. Zero picks
	// 4 × Workers; the partitioner may return fewer on tiny graphs.
	Shards int

	// Workers is the worker-pool size; shards are the unit of work, so
	// effective parallelism is min(Workers, Shards). Zero picks
	// GOMAXPROCS.
	Workers int

	// DisableSketch skips the register-sketch pre-filter and runs every
	// containment test exactly (ablation).
	DisableSketch bool

	// Advise, when set, is called with a shard's vertex range as a
	// worker starts scanning it — the mmap snapshot path points it at
	// graph.(*Mapped).AdviseRange so the kernel pages the shard's
	// adjacency span in ahead of the scan. Must be safe for concurrent
	// calls.
	Advise func(lo, hi int32)
}

// fill resolves the zero defaults.
func (so ShardOptions) fill() ShardOptions {
	if so.Workers <= 0 {
		so.Workers = runtime.GOMAXPROCS(0)
	}
	if so.Shards <= 0 {
		so.Shards = 4 * so.Workers
	}
	return so
}

// ShardedFilterRefineSky computes the neighborhood skyline with the
// sharded fused engine described above.
func ShardedFilterRefineSky(g *graph.Graph, opts Options, so ShardOptions) *Result {
	return shardedSkyRun(nil, g, opts, so)
}

// ShardedFilterRefineSkyCtx is ShardedFilterRefineSky under a context,
// with the anytime superset contract on cancellation.
func ShardedFilterRefineSkyCtx(ctx context.Context, g *graph.Graph, opts Options, so ShardOptions) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return shardedSkyRun(run, g, opts, so)
}

// runShards drives a worker pool over shard indices [0, nshards) via an
// atomic cursor; each shard is processed entirely by one worker. fn
// returns true to report truncation (the worker drains). Workers are
// panic-isolated through the group.
func runShards(run *runctl.Run, workers, nshards, checkEvery int, fn func(si int, cp *runctl.Checkpoint) bool) (truncated bool, err error) {
	if workers > nshards {
		workers = nshards
	}
	group := runctl.NewGroup(run)
	var next int64 = -1
	for wi := 0; wi < workers; wi++ {
		group.Go(func() {
			cp := run.Checkpoint(checkEvery)
			for {
				if cp.Tick() {
					return
				}
				si := int(atomic.AddInt64(&next, 1))
				if si >= nshards {
					return
				}
				if fn(si, &cp) {
					return
				}
			}
		})
	}
	err = group.Wait()
	return run.Stopped(), err
}

// shardedSkyRun is the run-threaded body of the sharded engine.
func shardedSkyRun(run *runctl.Run, g *graph.Graph, opts Options, so ShardOptions) *Result {
	if underParallelCutoff(g, opts) {
		return filterRefineSkyRun(run, g, opts)
	}
	so = so.fill()
	r := obs.Get()
	defer r.Start("core.shard").End()

	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	h := hubFor(g, opts)
	var sk *sketch.Sketches
	if !so.DisableSketch {
		sk = g.Sketches() // cached per-snapshot index, like the hub bitmaps
	}
	degSorted := g.DegreeSorted()
	shards := g.PartitionShards(so.Shards)
	r.Add("core.shard.shards", int64(len(shards)))

	// A live run even for background callers, so a worker panic cancels
	// siblings promptly (same rationale as parallelFilterPhaseRun).
	run = runctl.Ensure(run)

	load := func(v int32) int32 { return atomic.LoadInt32(&o[v]) }

	// degB caps each degree to a byte: min(deg, 255). The scan's degree
	// prunes compare against this 1-byte/vertex table — L2-resident even
	// at multi-million scale — instead of the 4-byte CSR offsets array,
	// whose random per-neighbor loads dominated the profile. Exact
	// degrees are reloaded only for the rare pair that survives the
	// sketch probe (or sits in the ≥255 band, where the byte prune is
	// inexact and rechecked).
	degB := make([]uint8, n)
	for u := int32(0); u < n; u++ {
		if d := g.Degree(u); d < 255 {
			degB[u] = uint8(d)
		} else {
			degB[u] = 255
		}
	}

	// Sketch probes only pay off below the saturation threshold: hubs
	// (degree ≥ theta) have the exact bitmap as their cheap path, and a
	// row of degree ≥ 255 has effectively saturated registers — probing
	// it would miss a cache line just to accept. Hub membership is
	// degree-monotone (degree ≥ theta), so one byte compare covers both
	// with no h.bits[w] pointer load.
	satB := uint8(255)
	if h != nil && h.Theta() < 255 {
		satB = uint8(h.Theta())
	}

	// exactDominate is the post-sketch half of the dominator check:
	// liveness skip, exact degree recheck (the byte-capped prune is
	// inexact in the ≥255 band), then the exact containment kernel —
	// hub bitmap, adaptive merge, or gallop via inclTest, which exploits
	// that both adjacency lists are sorted (refineIncluded's per-element
	// binary probes don't); no Bloom filters.
	exactDominate := func(st *Stats, u, w int32, du int) bool {
		if load(w) != w {
			return false
		}
		dw := g.Degree(w)
		if dw < du {
			return false
		}
		st.InclusionTests++
		if !inclTest(g, h, st, u, w) {
			return false
		}
		if dw == du {
			// Mutual inclusion: smaller ID dominates; for u < w the
			// record is w's own scan's job (own-shard writes only).
			if u > w {
				atomic.StoreInt32(&o[u], w)
				return true
			}
			return false
		}
		atomic.StoreInt32(&o[u], w)
		return true
	}

	// tryDominate is the scalar per-pair check — sketch probe (skipped
	// at and above the saturation threshold), then exactDominate — used
	// for the pivot and for the sketch-disabled walk. db is w's
	// byte-capped degree, already loaded by the caller, which has pruned
	// db < min(du, 255).
	tryDominate := func(st *Stats, u, w int32, du int, db uint8) bool {
		st.PairsExamined++
		if sk != nil && db < satB {
			st.SketchProbes++
			if !sk.IncludedClosed(u, w) {
				st.SketchSkips++
				return false
			}
		}
		return exactDominate(st, u, w, du)
	}

	// inCandidates is Algorithm 2's edge-constrained predicate, run only
	// for vertices already proven dominated: u ∈ C iff no neighbor v
	// with deg(v) ≥ deg(u) neighborhood-includes u (strictly, or
	// mutually with vid < uid). Static per-vertex — no o reads or
	// writes — so sharded candidate sets match the serial filter's
	// exactly.
	inCandidates := func(st *Stats, u int32, du int) bool {
		duB := uint8(255)
		if du < 255 {
			duB = uint8(du)
		}
		for _, v := range g.Neighbors(u) {
			db := degB[v]
			if db < duB {
				if degSorted {
					break // neighbors are degree-non-increasing
				}
				continue
			}
			if sk != nil && db < satB {
				st.SketchProbes++
				if !sk.IncludedClosed(u, v) {
					st.SketchSkips++
					continue
				}
			}
			dv := g.Degree(v)
			if dv < du {
				continue // byte-capped prune, inexact in the ≥255 band
			}
			st.InclusionTests++
			if !inclTest(g, h, st, u, v) {
				continue
			}
			if dv == du && u < v {
				continue // mutual with the tie going to u
			}
			return false
		}
		return true
	}

	// The fused per-shard scan. perStats and perCand are indexed by
	// shard — a shard is processed entirely by one worker, so both are
	// contention-free.
	perStats := make([]Stats, len(shards))
	perCand := make([][]int32, len(shards))
	trunc, err := runShards(run, so.Workers, len(shards), refineCheckEvery, func(si int, cp *runctl.Checkpoint) bool {
		sh := shards[si]
		if so.Advise != nil {
			so.Advise(sh.Lo, sh.Hi)
			if next := si + 1; next < len(shards) {
				// Hint the following shard too, so its pages stream in
				// while this one is scanned (double advising under
				// multiple workers is harmless).
				so.Advise(shards[next].Lo, shards[next].Hi)
			}
		}
		st := &perStats[si]
		// Most vertices of a skyline-heavy graph end up candidates:
		// reserve the whole range up front instead of growing through
		// repeated copies.
		cands := make([]int32, 0, sh.Hi-sh.Lo)
		var acc []int32 // mini-probe survivors, reused across vertices
		truncated := false
		for u := sh.Lo; u < sh.Hi; u++ {
			if cp.Tick() {
				truncated = true
				break
			}
			if load(u) != u {
				continue // isolated-vertex marking; o[u] has no other writer yet
			}
			du := g.Degree(u)
			if du == 0 {
				// KeepIsolated (or the edgeless-graph minimum): trivial
				// skyline member, counted as a candidate like the
				// serial engine's collect does.
				cands = append(cands, u)
				continue
			}
			duB := uint8(255)
			if du < 255 {
				duB = uint8(du)
			}
			// Dominator scan over the min-degree pivot's closed
			// neighborhood, which contains every dominator of u.
			nu := g.Neighbors(u)
			pivot := nu[len(nu)-1] // min degree when degree-sorted
			if !degSorted {
				pivot = nu[0]
				for _, v := range nu {
					if g.Degree(v) < g.Degree(pivot) {
						pivot = v
					}
				}
			}
			dominated, domW := false, int32(-1)
			if db := degB[pivot]; db >= duB {
				if tryDominate(st, u, pivot, du, db) {
					dominated, domW = true, pivot
				}
			}
			if !dominated && sk != nil {
				// Fused prune+probe walk over the pivot's closed
				// neighborhood: one pass does the byte-degree prune and
				// the 8-byte mini-code rejection — both against
				// L2-resident arrays — and only mini survivors (a few
				// percent) are staged for the full-row sketch probe and
				// exact kernel, in prefix order, so the recorded
				// dominator is the same one the scalar walk would find.
				mo := sk.OpenMini(u)
				pairs, probes := 0, 0
				acc = acc[:0]
				for _, w := range g.Neighbors(pivot) {
					if w == u {
						continue
					}
					if db := degB[w]; db < duB {
						if degSorted {
							break // pivot's neighbors are degree-non-increasing
						}
						continue
					}
					pairs++
					if mo&^sk.ClosedMini(w) != 0 {
						continue // mini rejection is sound on its own
					}
					probes++
					acc = append(acc, w)
				}
				st.PairsExamined += pairs
				st.SketchProbes += pairs
				st.SketchSkips += pairs - probes
				for _, w := range acc {
					if !sk.IncludedClosed(u, w) {
						st.SketchSkips++
						continue
					}
					if exactDominate(st, u, w, du) {
						dominated, domW = true, w
						break
					}
				}
			} else if !dominated {
				for _, w := range g.Neighbors(pivot) {
					if w == u {
						continue
					}
					db := degB[w]
					if db < duB {
						if degSorted {
							break // pivot's neighbors are degree-non-increasing
						}
						continue
					}
					if tryDominate(st, u, w, du, db) {
						dominated, domW = true, w
						break
					}
				}
			}
			switch {
			case !dominated:
				cands = append(cands, u)
			case domW == pivot || g.Has(u, domW):
				// The recorded dominator is itself a neighbor of u, and
				// tryDominate's tie-break (equal degree ⇒ domW < u) is
				// exactly Algorithm 2's edge constraint: u is pruned from
				// C without rescanning its neighborhood.
			case inCandidates(st, u, du):
				cands = append(cands, u)
			}
		}
		perCand[si] = cands
		st.CandidateCount = len(cands)
		return truncated
	})

	res := &Result{}
	for i := range perStats {
		res.Stats.add(perStats[i])
	}
	res.ShardStats = perStats
	total := 0
	for _, c := range perCand {
		total += len(c)
	}
	cands := make([]int32, 0, total)
	for _, c := range perCand {
		cands = append(cands, c...) // shards are contiguous ⇒ ascending IDs
	}
	res.Candidates = cands
	res.Dominator = o
	res.Skyline = collect(o)
	if trunc || err != nil {
		res.Truncated = true
		res.Err = run.Err()
		if err != nil {
			res.Err = err
		}
		res.Candidates = res.Skyline
	}
	publishPhaseStats(r, "core.shard", res.Stats)
	return res
}
