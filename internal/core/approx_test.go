package core

import (
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func TestApproxZeroEqualsExact(t *testing.T) {
	r := rng.New(808)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(25), 0.1+0.6*r.Float64())
		exact := FilterRefineSky(g, Options{})
		approx := ApproxSkyline(g, 0, Options{})
		if !EqualSkylines(approx.Skyline, exact.Skyline) {
			t.Fatalf("ε=0 skyline %v != exact %v (edges %v)",
				approx.Skyline, exact.Skyline, g.EdgeList())
		}
	}
}

func TestApproxMatchesOracle(t *testing.T) {
	r := rng.New(809)
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(r, 2+r.Intn(18), 0.1+0.5*r.Float64())
		eps := []float64{0, 0.15, 0.3, 0.5}[trial%4]
		got := ApproxSkyline(g, eps, Options{})
		want := BruteForceApprox(g, eps)
		if !EqualSkylines(got.Skyline, want.Skyline) {
			t.Fatalf("ε=%.2f: %v != oracle %v (edges %v)",
				eps, got.Skyline, want.Skyline, g.EdgeList())
		}
	}
}

func TestApproxShrinksOnPowerLaw(t *testing.T) {
	// On skewed graphs, a bigger miss budget lets hubs absorb more
	// vertices, so the ε-skyline should shrink substantially vs exact.
	g := gen.PowerLaw(1000, 3000, 2.2, 77)
	exact := len(ApproxSkyline(g, 0, Options{}).Skyline)
	loose := len(ApproxSkyline(g, 0.5, Options{}).Skyline)
	if loose >= exact {
		t.Fatalf("ε=0.5 skyline (%d) should be smaller than exact (%d)", loose, exact)
	}
}

func TestEpsIncludedDefinition(t *testing.T) {
	// Star plus one stray edge: center 0 covers 4 of leaf-ish vertex
	// 5's neighbors... construct concretely:
	// N(5) = {0, 6}; N[0] ⊇ {0}: covers 0 itself and not 6.
	g := graph.FromEdges(7, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {5, 6}})
	// v=5 has neighbors {0, 6}; u=0 covers 0 (itself) but not 6:
	// 1 miss of 2 neighbors → needs ε ≥ 0.5.
	if EpsIncluded(g, 5, 0, 0.49) {
		t.Fatal("ε=0.49 must not allow 1/2 misses")
	}
	if !EpsIncluded(g, 5, 0, 0.5) {
		t.Fatal("ε=0.5 must allow 1/2 misses")
	}
	// Exact inclusion unaffected for true subsets.
	if !EpsIncluded(g, 1, 0, 0) {
		t.Fatal("leaf must be 0-included by center")
	}
}

func TestEpsDominatesTieBreak(t *testing.T) {
	// Two leaves of a star are mutually ε-included for every ε.
	g := gen.Star(4)
	if !EpsDominates(g, 1, 2, 0.2) || EpsDominates(g, 2, 1, 0.2) {
		t.Fatal("mutual ε-inclusion must break ties by ID")
	}
	if EpsDominates(g, 1, 1, 0.2) {
		t.Fatal("self ε-domination")
	}
}

func TestApproxNegativeEpsClamped(t *testing.T) {
	g := gen.Path(5)
	a := ApproxSkyline(g, -1, Options{})
	b := ApproxSkyline(g, 0, Options{})
	if !EqualSkylines(a.Skyline, b.Skyline) {
		t.Fatal("negative ε must clamp to 0")
	}
}

func TestApproxSpecialGraphs(t *testing.T) {
	// Clique: every vertex mutually includes every other at any ε;
	// vertex 0 survives alone.
	k := gen.Clique(6)
	res := ApproxSkyline(k, 0.3, Options{})
	if len(res.Skyline) != 1 || res.Skyline[0] != 0 {
		t.Fatalf("clique ε-skyline = %v", res.Skyline)
	}
	// Edgeless graph.
	e := ApproxSkyline(gen.Path(1), 0.3, Options{})
	if len(e.Skyline) != 1 {
		t.Fatal("single vertex must survive")
	}
}

func TestQuickApproxOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8, epsRaw uint8) bool {
		n := int(nRaw%16) + 2
		eps := float64(epsRaw%80) / 100
		r := rng.New(seed)
		g := randomGraph(r, n, 0.3)
		return EqualSkylines(
			ApproxSkyline(g, eps, Options{}).Skyline,
			BruteForceApprox(g, eps).Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
