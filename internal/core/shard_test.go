package core

import (
	"context"
	"path/filepath"
	"sort"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
)

// shardFixtures is the battery every sharded-oracle test sweeps: shapes
// with hubs, ties, pendant chains and mutual-inclusion pairs.
func shardFixtures() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"powerlaw": gen.PowerLaw(400, 1600, 2.5, 7),
		"er":       gen.ER(300, 0.04, 11),
		"ba":       gen.BA(350, 3, 5),
		"clique":   gen.Clique(40),
		"cycle":    gen.Cycle(128),
		"path":     gen.Path(97),
	}
}

// TestShardedMatchesSerialOracle is the core equivalence: for every
// fixture and shard count, the sharded engine's skyline, candidate set
// and dominator array match the serial filter/refine engine's exactly.
func TestShardedMatchesSerialOracle(t *testing.T) {
	for name, g := range shardFixtures() {
		want := FilterRefineSky(g, Options{})
		for _, s := range []int{1, 2, 7, 64} {
			res := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true},
				ShardOptions{Shards: s, Workers: 2})
			if !EqualSkylines(res.Skyline, want.Skyline) {
				t.Errorf("%s shards=%d: skyline %v, want %v", name, s, res.Skyline, want.Skyline)
			}
			if !EqualSkylines(res.Candidates, want.Candidates) {
				t.Errorf("%s shards=%d: candidates %v, want %v", name, s, res.Candidates, want.Candidates)
			}
			for u := range res.Dominator {
				if (res.Dominator[u] == int32(u)) != (want.Dominator[u] == int32(u)) {
					t.Errorf("%s shards=%d: dominator liveness differs at %d: got %d, want %d",
						name, s, u, res.Dominator[u], want.Dominator[u])
				}
			}
			if res.Truncated {
				t.Errorf("%s shards=%d: unexpected truncation", name, s)
			}
		}
	}
}

// TestShardedDisableSketchOracle pins the ablation path: with the
// sketch pre-filter off, every containment check runs exactly and the
// answer is unchanged.
func TestShardedDisableSketchOracle(t *testing.T) {
	g := gen.PowerLaw(400, 1600, 2.5, 7)
	want := FilterRefineSky(g, Options{})
	res := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true},
		ShardOptions{Shards: 7, Workers: 2, DisableSketch: true})
	if !EqualSkylines(res.Skyline, want.Skyline) {
		t.Fatalf("skyline %v, want %v", res.Skyline, want.Skyline)
	}
	if !EqualSkylines(res.Candidates, want.Candidates) {
		t.Fatalf("candidates %v, want %v", res.Candidates, want.Candidates)
	}
	if res.Stats.SketchProbes != 0 || res.Stats.SketchSkips != 0 {
		t.Fatalf("sketch counters nonzero with DisableSketch: %+v", res.Stats)
	}
}

// TestShardedMmapMatchesHeap round-trips a fixture through the v2
// snapshot format and mmap, then checks the sharded engine (with the
// paging-hint callback wired) agrees with the heap-backed run.
func TestShardedMmapMatchesHeap(t *testing.T) {
	g := gen.PowerLaw(500, 2000, 2.5, 9)
	path := filepath.Join(t.TempDir(), "g.nsb2")
	if err := g.WriteBinaryFile(path, 0); err != nil {
		t.Fatalf("WriteBinaryFile: %v", err)
	}
	mg, err := graph.OpenMmap(path)
	if err != nil {
		t.Fatalf("OpenMmap: %v", err)
	}
	defer mg.Close()

	want := FilterRefineSky(g, Options{})
	for _, s := range []int{1, 2, 7, 64} {
		res := ShardedFilterRefineSky(mg.Graph, Options{NoParallelCutoff: true},
			ShardOptions{Shards: s, Workers: 2, Advise: mg.AdviseRange})
		if !EqualSkylines(res.Skyline, want.Skyline) {
			t.Errorf("shards=%d: mmap skyline %v, want %v", s, res.Skyline, want.Skyline)
		}
		if !EqualSkylines(res.Candidates, want.Candidates) {
			t.Errorf("shards=%d: mmap candidates differ", s)
		}
	}
}

// TestShardedIsomorphismInvariance relabels a fixture by a nontrivial
// permutation (degree-descending, the ConvertOptions.Relabel order) and
// checks the sharded skyline of the relabeled graph is exactly the
// image of the original skyline — the engine must depend on structure
// only, whichever fast path (degree-sorted pivots, prefix breaks) the
// labeling enables.
func TestShardedIsomorphismInvariance(t *testing.T) {
	g := gen.PowerLaw(400, 1600, 2.5, 21)
	n := g.N()

	// perm[old] = new id, ordered by descending degree (ties by old id,
	// keeping the permutation deterministic).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Degree(order[a]) > g.Degree(order[b])
	})
	perm := make([]int32, n)
	for newID, old := range order {
		perm[old] = int32(newID)
	}

	b := graph.NewBuilder(n)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				b.AddEdge(perm[u], perm[v])
			}
		}
	}
	rg := b.Build()
	if !rg.DegreeSorted() {
		t.Fatalf("relabeled graph is not degree-sorted; permutation is broken")
	}

	want := FilterRefineSky(g, Options{})
	wantImage := make([]int32, 0, len(want.Skyline))
	for _, u := range want.Skyline {
		wantImage = append(wantImage, perm[u])
	}
	sort.Slice(wantImage, func(a, b int) bool { return wantImage[a] < wantImage[b] })

	for _, s := range []int{1, 7} {
		res := ShardedFilterRefineSky(rg, Options{NoParallelCutoff: true},
			ShardOptions{Shards: s, Workers: 2})
		if !EqualSkylines(res.Skyline, wantImage) {
			t.Errorf("shards=%d: relabeled skyline %v, want image %v", s, res.Skyline, wantImage)
		}
	}
}

// TestShardedStatsSumAcrossShards is the per-shard stats merge
// regression: Result.Stats must equal the fieldwise sum of
// Result.ShardStats, and the hub/sketch counters must actually be
// counted (not dropped in the merge, the bug this pins).
func TestShardedStatsSumAcrossShards(t *testing.T) {
	g := gen.PowerLaw(600, 3000, 2.5, 3)
	res := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true},
		ShardOptions{Shards: 8, Workers: 2})
	if res.ShardStats == nil {
		t.Fatalf("ShardStats nil on a sharded run")
	}
	var sum Stats
	for _, st := range res.ShardStats {
		sum.add(st)
	}
	if sum != res.Stats {
		t.Fatalf("Stats %+v != sum of ShardStats %+v", res.Stats, sum)
	}
	if res.Stats.SketchProbes == 0 || res.Stats.SketchSkips == 0 {
		t.Fatalf("sketch counters not aggregated: %+v", res.Stats)
	}
	if res.Stats.InclusionTests == 0 {
		t.Fatalf("inclusion tests not aggregated: %+v", res.Stats)
	}
	if res.Stats.CandidateCount != len(res.Candidates) {
		t.Fatalf("CandidateCount %d != |Candidates| %d", res.Stats.CandidateCount, len(res.Candidates))
	}
}

// TestParallelFilterStatsCountHubHits is the companion regression for
// the shared counters: the parallel filter phase must aggregate
// per-worker HubHits (previously dropped — inclTest did not thread the
// Stats pointer) and agree with the serial filter phase's totals.
func TestParallelFilterStatsCountHubHits(t *testing.T) {
	g := gen.PowerLaw(600, 3000, 2.5, 3)
	_, _, serial := FilterPhase(g, Options{})
	for _, w := range []int{1, 4} {
		_, _, par, err := ParallelFilterPhase(g, Options{NoParallelCutoff: true}, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.HubHits != serial.HubHits {
			t.Errorf("workers=%d: HubHits %d, serial %d", w, par.HubHits, serial.HubHits)
		}
		if par.InclusionTests != serial.InclusionTests {
			t.Errorf("workers=%d: InclusionTests %d, serial %d", w, par.InclusionTests, serial.InclusionTests)
		}
	}
	if serial.HubHits == 0 {
		t.Skip("fixture produced no hub hits; counters compared but vacuously")
	}
}

// TestShardedDeterministicWithOneWorker pins the determinism claim in
// the engine doc: Workers == 1 gives identical Stats (not just results)
// run over run, for any shard count.
func TestShardedDeterministicWithOneWorker(t *testing.T) {
	g := gen.PowerLaw(400, 1600, 2.5, 17)
	for _, s := range []int{1, 2, 7, 64} {
		a := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true}, ShardOptions{Shards: s, Workers: 1})
		b := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true}, ShardOptions{Shards: s, Workers: 1})
		if a.Stats != b.Stats {
			t.Errorf("shards=%d: stats differ across identical runs:\n%+v\n%+v", s, a.Stats, b.Stats)
		}
		if !EqualSkylines(a.Skyline, b.Skyline) || !EqualSkylines(a.Candidates, b.Candidates) {
			t.Errorf("shards=%d: results differ across identical runs", s)
		}
	}
}

// TestShardedCancellationSuperset cancels mid-run and checks the
// anytime contract: the truncated Skyline and Candidates are supersets
// of the true skyline, and Candidates == Skyline (the partial per-shard
// candidate lists must not leak out).
func TestShardedCancellationSuperset(t *testing.T) {
	g := gen.PowerLaw(3000, 12000, 2.5, 11)
	want := FilterRefineSky(g, Options{})
	inSky := make(map[int32]bool, len(want.Skyline))
	for _, u := range want.Skyline {
		inSky[u] = true
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first checkpoint tick truncates
	res := ShardedFilterRefineSkyCtx(ctx, g, Options{NoParallelCutoff: true},
		ShardOptions{Shards: 16, Workers: 4})
	if !res.Truncated {
		t.Fatalf("cancelled run not marked truncated")
	}
	if res.Err == nil {
		t.Fatalf("truncated run carries no cause")
	}
	if !EqualSkylines(res.Candidates, res.Skyline) {
		t.Fatalf("truncated Candidates != Skyline")
	}
	got := make(map[int32]bool, len(res.Skyline))
	for _, u := range res.Skyline {
		got[u] = true
	}
	for u := range inSky {
		if !got[u] {
			t.Fatalf("truncated skyline dropped true member %d", u)
		}
	}
}

// TestShardedCutoffFallsBackToSerial pins that tiny graphs take the
// serial path (no ShardStats) unless NoParallelCutoff forces sharding.
func TestShardedCutoffFallsBackToSerial(t *testing.T) {
	g := gen.PowerLaw(60, 150, 2.5, 7)
	res := ShardedFilterRefineSky(g, Options{}, ShardOptions{Shards: 4})
	if res.ShardStats != nil {
		t.Fatalf("small graph did not fall back to the serial engine")
	}
	forced := ShardedFilterRefineSky(g, Options{NoParallelCutoff: true}, ShardOptions{Shards: 4})
	if forced.ShardStats == nil {
		t.Fatalf("NoParallelCutoff did not force the sharded engine")
	}
	if !EqualSkylines(res.Skyline, forced.Skyline) {
		t.Fatalf("fallback and forced runs disagree")
	}
}
