// Package core implements the paper's neighborhood-skyline algorithms:
//
//   - BaseSky        — Algorithm 1, the Brandes-style 2-hop counting baseline
//   - FilterPhase    — Algorithm 2, the edge-constrained candidate filter
//   - FilterRefineSky — Algorithm 3, the filter–refine framework with
//     single-hash Bloom filters
//   - Base2Hop       — materialize-all-2-hop-neighborhoods baseline (Exp-1)
//   - BaseCSet       — FilterPhase + BaseSky restricted to candidates (Exp-1)
//   - BruteForce     — O(n²·d) definitional oracle used by tests
//
// Definitions (paper §II): u neighborhood-includes v iff N(v) ⊆ N[u];
// v ≤ u (u dominates v) iff the inclusion is one-sided, or mutual with
// uid < vid. The skyline R is the set of vertices dominated by no one.
package core

import (
	"context"
	"sort"

	"neisky/internal/bloom"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// Checkpoint granularity of the serial engines: the filter and baseline
// scans poll the run once per filterCheckEvery vertices, the refine
// phase once per refineCheckEvery candidates (refine pairs are an order
// of magnitude more expensive than filter edges). See DESIGN.md §7.
const (
	filterCheckEvery = 256
	refineCheckEvery = 64
)

// Options tune the skyline algorithms. The zero value reproduces the
// paper's defaults.
type Options struct {
	// KeepIsolated reproduces the paper's algorithmic behaviour of leaving
	// degree-0 vertices in the skyline. The definition says they are
	// dominated by any non-isolated vertex; the default (false) follows
	// the definition (see DESIGN.md §3.3).
	KeepIsolated bool

	// DisableBloom turns off the Bloom-filter pre-checks in the refine
	// phase (ablation; the exact adjacency checks still run).
	DisableBloom bool

	// PendantFilter uses the literal reading of the published Algorithm 2,
	// which only prunes degree-1 vertices, instead of the full
	// edge-constrained domination filter (ablation; see DESIGN.md §3.2).
	PendantFilter bool

	// BloomWords overrides the per-vertex Bloom filter size in 32-bit
	// words. Zero selects bloom.WordsFor(dmax).
	BloomWords int

	// FullTwoHopScan makes the refine phase enumerate 2-hop dominator
	// candidates exactly as the published pseudo-code does — through
	// every neighbor's full adjacency list. The default uses the
	// min-degree pivot instead: a dominator of u must be adjacent to
	// every neighbor of u, so scanning N(v*) ∪ {v*} for u's
	// minimum-degree neighbor v* is complete and far cheaper (ablation).
	FullTwoHopScan bool

	// NoTwoHopDedup disables the visited-stamp that prevents the
	// full scan from re-examining the same 2-hop vertex reached through
	// multiple shared neighbors. Only meaningful with FullTwoHopScan.
	NoTwoHopDedup bool

	// DisableHubIndex turns off the hub-bitmap containment kernels
	// (graph.HubIndex) and restores the legacy merge / binary-search
	// path everywhere (ablation; see DESIGN.md).
	DisableHubIndex bool

	// NoParallelCutoff disables the small-graph serial fallback of the
	// parallel skyline entry points, forcing the sharded path even
	// below parallelCutoff (ablation; the cutoff benchmark uses it to
	// measure the counterfactual).
	NoParallelCutoff bool
}

// hubFor returns the graph's hub-bitmap index, or nil when the options
// disable it (the legacy-path ablation).
func hubFor(g *graph.Graph, opts Options) *graph.HubIndex {
	if opts.DisableHubIndex {
		return nil
	}
	return g.Hub()
}

// inclTest dispatches Definition 1's N(u) ⊆ N[v] test through the hub
// kernels when enabled, else the legacy merge, counting hub-bitmap
// dispatches into st.
func inclTest(g *graph.Graph, h *graph.HubIndex, st *Stats, u, v int32) bool {
	if h != nil {
		if h.IsHub(v) {
			st.HubHits++
		}
		return h.SubsetOpenInClosed(u, v)
	}
	return g.SubsetOpenInClosed(u, v)
}

// Stats records work counters for the ablation benchmarks.
type Stats struct {
	PairsExamined   int // (u, candidate dominator) pairs evaluated
	InclusionTests  int // exact adjacency subset verifications started
	BloomProbes     int // per-element BFcheck probes issued
	BloomRejects    int // pairs discarded by the whole-filter subset test
	BloomBitRejects int // per-element rejections by BFcheck
	BloomFalsePos   int // BFcheck passed but NBRcheck failed
	HubHits         int // containment tests answered by a hub bitmap
	SketchProbes    int // register-sketch subset pre-checks issued
	SketchSkips     int // pairs discarded by the sketch pre-check
	CandidateCount  int // |C| after the filter phase (filter algorithms)
}

// add accumulates t's counters into s (per-worker stats merging).
func (s *Stats) add(t Stats) {
	s.PairsExamined += t.PairsExamined
	s.InclusionTests += t.InclusionTests
	s.BloomProbes += t.BloomProbes
	s.BloomRejects += t.BloomRejects
	s.BloomBitRejects += t.BloomBitRejects
	s.BloomFalsePos += t.BloomFalsePos
	s.HubHits += t.HubHits
	s.SketchProbes += t.SketchProbes
	s.SketchSkips += t.SketchSkips
	s.CandidateCount += t.CandidateCount
}

// sub returns the fieldwise difference s − t, used to split a combined
// filter+refine Stats back into per-phase observability counters.
func (s Stats) sub(t Stats) Stats {
	return Stats{
		PairsExamined:   s.PairsExamined - t.PairsExamined,
		InclusionTests:  s.InclusionTests - t.InclusionTests,
		BloomProbes:     s.BloomProbes - t.BloomProbes,
		BloomRejects:    s.BloomRejects - t.BloomRejects,
		BloomBitRejects: s.BloomBitRejects - t.BloomBitRejects,
		BloomFalsePos:   s.BloomFalsePos - t.BloomFalsePos,
		HubHits:         s.HubHits - t.HubHits,
		SketchProbes:    s.SketchProbes - t.SketchProbes,
		SketchSkips:     s.SketchSkips - t.SketchSkips,
		CandidateCount:  s.CandidateCount - t.CandidateCount,
	}
}

// Result is the output of a skyline computation.
type Result struct {
	// Skyline lists the vertices of R in increasing ID order. When
	// Truncated is set it is instead a sound SUPERSET of R: the scan
	// only ever removes vertices it has proven dominated, so the
	// not-yet-pruned set always contains the true skyline.
	Skyline []int32
	// Dominator is the paper's O array: Dominator[u] == u iff u ∈ R,
	// otherwise it names one vertex that dominates u.
	Dominator []int32
	// Candidates lists C (increasing IDs) for the filter-based
	// algorithms, nil for BaseSky/Base2Hop/BruteForce.
	Candidates []int32
	// Stats holds work counters.
	Stats Stats
	// ShardStats holds per-shard work counters for the sharded engine
	// (ShardedFilterRefineSky), in shard order; its fieldwise sum equals
	// Stats. Nil for every other algorithm and for sharded runs that
	// fell back to the serial engine below the parallel cutoff.
	ShardStats []Stats
	// Truncated marks a best-effort partial result: the run was
	// cancelled (context, deadline, work budget, or worker failure)
	// before the scan finished. Err carries the cause.
	Truncated bool
	// Err is the cancellation cause (context error, runctl.ErrBudget,
	// or a *runctl.PanicError from an isolated worker); nil for a
	// complete result.
	Err error
}

// markTruncated stamps the anytime markers onto a partial result.
func (r *Result) markTruncated(run *runctl.Run) {
	r.Truncated = true
	r.Err = run.Err()
}

// collect extracts the skyline from an O array.
func collect(o []int32) []int32 {
	var r []int32
	for u := int32(0); u < int32(len(o)); u++ {
		if o[u] == u {
			r = append(r, u)
		}
	}
	return r
}

// markIsolated applies the definitional handling of degree-0 vertices:
// they are dominated by any non-isolated vertex, or — if the whole graph
// is edgeless — all but the minimum-ID vertex are dominated by it.
func markIsolated(g *graph.Graph, o []int32) {
	n := int32(g.N())
	dominator := int32(-1)
	for u := int32(0); u < n; u++ {
		if g.Degree(u) > 0 {
			dominator = u
			break
		}
	}
	if dominator == -1 {
		// Edgeless graph: mutual domination everywhere, min ID survives.
		for u := int32(1); u < n; u++ {
			o[u] = 0
		}
		return
	}
	for u := int32(0); u < n; u++ {
		if g.Degree(u) == 0 {
			o[u] = dominator
		}
	}
}

// defaultBloomWords sizes the shared per-vertex Bloom filters. The
// whole-filter subset test costs one word-op per word per examined pair,
// so sizing by dmax (as a literal reading of the paper suggests) makes
// the test itself the bottleneck on skewed graphs. Sizing by the average
// degree keeps the test a handful of word-ops while staying selective
// for the low-degree vertices that make up almost all dominated pairs;
// high-degree false positives only cost an exact re-check.
func defaultBloomWords(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 1
	}
	avg := 2 * g.M() / n
	w := bloom.WordsFor(4 * avg)
	if w > 16 {
		w = 16
	}
	return w
}

// NeighborhoodIncluded reports Definition 1: N(v) ⊆ N[u].
func NeighborhoodIncluded(g *graph.Graph, v, u int32) bool {
	return g.SubsetOpenInClosed(v, u)
}

// Dominates reports Definition 2: v ≤ u, i.e. u dominates v.
func Dominates(g *graph.Graph, u, v int32) bool {
	if u == v {
		return false
	}
	vInU := g.SubsetOpenInClosed(v, u)
	if !vInU {
		return false
	}
	uInV := g.SubsetOpenInClosed(u, v)
	if !uInV {
		return true
	}
	return u < v
}

// BruteForce computes the skyline straight from Definition 3 by testing
// every ordered vertex pair. Quadratic; intended for tests and tiny
// graphs only.
func BruteForce(g *graph.Graph) *Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	for v := int32(0); v < n; v++ {
		for u := int32(0); u < n; u++ {
			if u != v && Dominates(g, u, v) {
				o[v] = u
				break
			}
		}
	}
	return &Result{Skyline: collect(o), Dominator: o}
}

// BaseSky is Algorithm 1: for each not-yet-dominated vertex u, count
// |N(u) ∩ N[w]| for every 2-hop-reachable w using a shared counter array;
// w dominates u exactly when the count reaches deg(u) (with the
// equal-degree mutual case broken by ID). O(m·dmax) time, O(m+n) space.
func BaseSky(g *graph.Graph, opts Options) *Result {
	return baseSkyRun(nil, g, opts)
}

// BaseSkyCtx is BaseSky under a context; on cancellation the returned
// Skyline is the not-yet-dominated superset, with Truncated/Err set.
func BaseSkyCtx(ctx context.Context, g *graph.Graph, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return baseSkyRun(run, g, opts)
}

func baseSkyRun(run *runctl.Run, g *graph.Graph, opts Options) *Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	res := &Result{}
	t := make([]int32, n)
	touched := make([]int32, 0, 256)

	cp := run.Checkpoint(filterCheckEvery)
	for u := int32(0); u < n; u++ {
		if cp.Tick() {
			res.markTruncated(run)
			break
		}
		if o[u] != u || g.Degree(u) == 0 {
			continue
		}
		du := int32(g.Degree(u))
	scan:
		for _, v := range g.Neighbors(u) {
			// w ranges over N[v] \ {u} = N(v) ∪ {v} minus u.
			for k := -1; k < g.Degree(v); k++ {
				var w int32
				if k < 0 {
					w = v
				} else {
					w = g.Neighbors(v)[k]
				}
				if w == u {
					continue
				}
				if t[w] == 0 {
					touched = append(touched, w)
				}
				t[w]++
				if t[w] == du {
					res.Stats.PairsExamined++
					if int32(g.Degree(w)) == du {
						// Mutual inclusion: smaller ID dominates.
						if u > w {
							if o[u] == u {
								o[u] = w
							}
						} else if o[w] == w {
							o[w] = u
						}
					} else if o[u] == u {
						o[u] = w
						break scan
					}
				}
			}
		}
		for _, w := range touched {
			t[w] = 0
		}
		touched = touched[:0]
	}
	res.Dominator = o
	res.Skyline = collect(o)
	return res
}

// FilterPhase is Algorithm 2: it computes the neighborhood candidate set
// C under the edge-constrained domination order (Definition 5), i.e. it
// removes every vertex u that has a neighbor v with N[u] ⊆ N[v] (strictly,
// or mutually with vid < uid). Lemma 1 guarantees R ⊆ C.
//
// The published pseudo-code degenerates to pruning only degree-1 vertices
// (see DESIGN.md §3.2); pass Options.PendantFilter for that variant. The
// default performs the full per-edge subset test with an early-exit merge
// over sorted adjacency lists.
func FilterPhase(g *graph.Graph, opts Options) (candidates []int32, o []int32, stats Stats) {
	candidates, o, stats, _ = filterPhaseRun(nil, g, opts)
	return candidates, o, stats
}

// FilterPhaseCtx is FilterPhase under a context: on cancellation it
// returns the candidates proven so far — still a superset of the true
// skyline, since the scan only removes vertices it has verified
// dominated — with Truncated/Err set.
func FilterPhaseCtx(ctx context.Context, g *graph.Graph, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	c, o, stats, trunc := filterPhaseRun(run, g, opts)
	res := &Result{Candidates: c, Dominator: o, Skyline: c, Stats: stats}
	if trunc {
		res.markTruncated(run)
	}
	return res
}

// filterPhaseRun is the run-threaded body of Algorithm 2, polling the
// run once per filterCheckEvery vertices.
func filterPhaseRun(run *runctl.Run, g *graph.Graph, opts Options) (candidates []int32, o []int32, stats Stats, truncated bool) {
	r := obs.Get()
	defer r.Start("core.filter").End()
	n := int32(g.N())
	o = make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	h := hubFor(g, opts)
	cp := run.Checkpoint(filterCheckEvery)
	for u := int32(0); u < n; u++ {
		if cp.Tick() {
			truncated = true
			break
		}
		if o[u] != u {
			continue
		}
		du := g.Degree(u)
		if du == 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			dv := g.Degree(v)
			if dv < du {
				continue // N[u] ⊆ N[v] needs deg(v) ≥ deg(u)
			}
			if opts.PendantFilter {
				// Literal Algorithm 2: T(v) is incremented once per
				// neighbor, so T(v) = deg(u) only fires when deg(u)=1.
				if du != 1 {
					continue
				}
				// N[u] = {u, v} ⊆ N[v] always holds here.
			} else {
				stats.InclusionTests++
				if !inclTest(g, h, &stats, u, v) {
					continue // adjacent, so N[u] ⊆ N[v] ⇔ N(u) ⊆ N[v]
				}
			}
			// Edge-constrained inclusion holds: u ⊑ v.
			if dv == du {
				// N[u] = N[v]: smaller ID dominates.
				if u > v {
					if o[u] == u {
						o[u] = v
					}
				} else if o[v] == v {
					o[v] = u
				}
			} else if o[u] == u {
				o[u] = v
				break
			}
		}
	}
	candidates = collect(o)
	stats.CandidateCount = len(candidates)
	publishPhaseStats(r, "core.filter", stats)
	return candidates, o, stats, truncated
}

// FilterCandidates runs only the filter phase and returns C.
func FilterCandidates(g *graph.Graph, opts Options) []int32 {
	c, _, _ := FilterPhase(g, opts)
	return c
}

// buildFilters materializes the per-vertex Bloom filters for vs, all
// carved from one arena allocation so the refine loop is allocation-free
// after setup. Vertices covered by the hub index get no filter: their
// containment checks run against the exact bitmap, and (θ being
// degree-monotone) a hub's own filter could only ever be consulted
// against a lower-degree dominator, which the degree prune removes
// first. Returns nil when Bloom pre-checks are disabled.
func buildFilters(g *graph.Graph, h *graph.HubIndex, opts Options, vs []int32) []bloom.Filter {
	if opts.DisableBloom {
		return nil
	}
	words := opts.BloomWords
	if words <= 0 {
		words = defaultBloomWords(g)
	}
	filters := make([]bloom.Filter, g.N())
	backing := make([]uint32, words*len(vs))
	for i, u := range vs {
		if h != nil && h.IsHub(u) {
			continue
		}
		f := bloom.Wrap(backing[i*words : (i+1)*words])
		for _, v := range g.Neighbors(u) {
			f.Add(v)
		}
		filters[u] = f
	}
	return filters
}

// refineIncluded verifies N(u) ⊆ N[w] for one refine-phase pair. When w
// is a hub the check is one exact bitmap probe per element of N(u); the
// Bloom machinery is bypassed entirely. Otherwise it is the paper's
// pipeline: whole-filter subset pre-check (only sound for non-adjacent
// pairs — for adjacent ones the element w ∈ N(u) has no counterpart bit
// in BF(w)), then element-wise BFcheck/NBRcheck. covered is a neighbor
// of u already known to lie in N(w), or -1.
func refineIncluded(g *graph.Graph, h *graph.HubIndex, filters []bloom.Filter, st *Stats, u, w, covered int32) bool {
	if h != nil {
		if bw := h.Bits(w); bw != nil {
			st.HubHits++
			st.InclusionTests++
			for _, x := range g.Neighbors(u) {
				if x == covered || x == w {
					continue
				}
				if !bw.Test(x) {
					return false
				}
			}
			return true
		}
	}
	useBloom := filters != nil && !filters[w].IsZero()
	if useBloom && !filters[u].IsZero() && !g.Has(u, w) {
		if !filters[u].SubsetOf(&filters[w]) {
			st.BloomRejects++
			return false
		}
	}
	st.InclusionTests++
	probes := 0 // folded into st once, off the probe loop's store path
	for _, x := range g.Neighbors(u) {
		if x == covered || x == w {
			continue
		}
		if useBloom {
			probes++
			if !filters[w].MayContain(x) {
				st.BloomBitRejects++
				st.BloomProbes += probes
				return false
			}
		}
		if !g.Has(w, x) {
			if useBloom {
				st.BloomFalsePos++
			}
			st.BloomProbes += probes
			return false
		}
	}
	st.BloomProbes += probes
	return true
}

// FilterRefineSky is Algorithm 3: FilterPhase produces candidates C and
// the O array; the refine phase checks every remaining candidate against
// its 2-hop neighbors using hub bitmaps (exact, word-packed) or
// per-candidate Bloom filters to discard non-dominators cheaply, falling
// back to exact adjacency tests (NBRcheck) to kill false positives.
func FilterRefineSky(g *graph.Graph, opts Options) *Result {
	return filterRefineSkyRun(nil, g, opts)
}

// FilterRefineSkyCtx is FilterRefineSky under a context. The anytime
// contract: on cancellation the returned Skyline is the set of vertices
// not yet proven dominated — a sound superset of the true skyline
// (during the filter phase it is exactly the partial candidate set) —
// with Truncated/Err set.
func FilterRefineSkyCtx(ctx context.Context, g *graph.Graph, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return filterRefineSkyRun(run, g, opts)
}

// filterRefineSkyRun is the run-threaded body of Algorithm 3.
func filterRefineSkyRun(run *runctl.Run, g *graph.Graph, opts Options) *Result {
	candidates, o, fstats, ftrunc := filterPhaseRun(run, g, opts)
	res := &Result{Candidates: candidates, Stats: fstats}
	if ftrunc {
		res.Dominator = o
		res.Skyline = candidates
		res.markTruncated(run)
		return res
	}
	r := obs.Get()
	refineSpan := r.Start("core.refine")
	h := hubFor(g, opts)
	filters := buildFilters(g, h, opts, candidates)

	// tryDominate runs the per-pair check of Algorithm 3's inner loop:
	// degree and liveness pruning, then the hub-bitmap or
	// Bloom/NBRcheck verification of N(u) ⊆ N[w] (refineIncluded).
	// covered is a neighbor of u already known to lie in N(w) (the
	// connecting vertex), or -1. It returns true when u got dominated.
	tryDominate := func(u, w, covered int32, du int) bool {
		dw := g.Degree(w)
		if dw < du || o[w] != w {
			return false
		}
		res.Stats.PairsExamined++
		if !refineIncluded(g, h, filters, &res.Stats, u, w, covered) {
			return false
		}
		// w neighborhood-includes u.
		if dw == du {
			// Degree equality plus N(u) ⊆ N[w] implies mutual
			// inclusion (see DESIGN.md); the smaller ID dominates. For
			// u < w nothing is recorded here — w discovers its own
			// domination when it scans.
			if u > w {
				o[u] = w
				return true
			}
			return false
		}
		o[u] = w
		return true
	}

	// visited stamps deduplicate 2-hop vertices reached through several
	// shared neighbors within one candidate's full scan.
	var visited []int32
	if opts.FullTwoHopScan && !opts.NoTwoHopDedup {
		visited = make([]int32, g.N())
		for i := range visited {
			visited[i] = -1
		}
	}

	cp := run.Checkpoint(refineCheckEvery)
	for _, u := range candidates {
		if cp.Tick() {
			res.markTruncated(run)
			break
		}
		if o[u] != u {
			continue // dominated earlier in this refine pass
		}
		du := g.Degree(u)
		if du == 0 {
			continue
		}
		if opts.FullTwoHopScan {
			// Paper-literal enumeration: w ranges over N(v) for every
			// v ∈ N(u).
		refine:
			for _, v := range g.Neighbors(u) {
				for _, w := range g.Neighbors(v) {
					if w == u {
						continue
					}
					if visited != nil {
						if visited[w] == u {
							continue
						}
						visited[w] = u
					}
					if tryDominate(u, w, v, du) {
						break refine
					}
				}
			}
			continue
		}
		// Min-degree pivot: every dominator of u is adjacent to all of
		// u's neighbors (or is one of them), so it lies in
		// N(v*) ∪ {v*} for u's minimum-degree neighbor v*.
		pivot := g.Neighbors(u)[0]
		for _, v := range g.Neighbors(u) {
			if g.Degree(v) < g.Degree(pivot) {
				pivot = v
			}
		}
		if tryDominate(u, pivot, -1, du) {
			continue
		}
		for _, w := range g.Neighbors(pivot) {
			if w == u {
				continue
			}
			if tryDominate(u, w, pivot, du) {
				break
			}
		}
	}
	res.Dominator = o
	res.Skyline = collect(o)
	refineSpan.End()
	publishPhaseStats(r, "core.refine", res.Stats.sub(fstats))
	return res
}

// Base2Hop materializes every vertex's full 2-hop neighbor list up front
// and then applies the same pruning and Bloom-filter machinery as the
// refine phase over all vertices (no filter phase). This is the paper's
// memory-hungry Exp-1/Exp-2 baseline: it keeps O(Σ|N2(u)|) lists plus a
// Bloom filter per vertex alive simultaneously.
func Base2Hop(g *graph.Graph, opts Options) *Result {
	return base2HopRun(nil, g, opts)
}

// Base2HopCtx is Base2Hop under a context. Cancellation during the
// 2-hop materialization aborts before any domination is recorded, so
// the partial Skyline remains a sound superset.
func Base2HopCtx(ctx context.Context, g *graph.Graph, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return base2HopRun(run, g, opts)
}

func base2HopRun(run *runctl.Run, g *graph.Graph, opts Options) *Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	res := &Result{}
	cp := run.Checkpoint(filterCheckEvery)

	// Materialize N2(u) for all u (the point of this baseline).
	two := make([][]int32, n)
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for u := int32(0); u < n; u++ {
		if cp.Tick() {
			res.markTruncated(run)
			break
		}
		var lst []int32
		for _, v := range g.Neighbors(u) {
			for k := -1; k < g.Degree(v); k++ {
				var w int32
				if k < 0 {
					w = v
				} else {
					w = g.Neighbors(v)[k]
				}
				if w == u || seen[w] == u {
					continue
				}
				seen[w] = u
				lst = append(lst, w)
			}
		}
		two[u] = lst
	}
	if res.Truncated {
		res.Dominator = o
		res.Skyline = collect(o)
		return res
	}

	all := make([]int32, n)
	for u := int32(0); u < n; u++ {
		all[u] = u
	}
	h := hubFor(g, opts)
	filters := buildFilters(g, h, opts, all)

	for u := int32(0); u < n; u++ {
		if cp.Tick() {
			res.markTruncated(run)
			break
		}
		if o[u] != u || g.Degree(u) == 0 {
			continue
		}
		du := g.Degree(u)
		for _, w := range two[u] {
			dw := g.Degree(w)
			if dw < du {
				continue
			}
			res.Stats.PairsExamined++
			if !refineIncluded(g, h, filters, &res.Stats, u, w, -1) {
				continue
			}
			if dw == du {
				// Mutual: smaller ID dominates.
				if u > w {
					if o[u] == u {
						o[u] = w
					}
				} else if o[w] == w {
					o[w] = u
				}
				continue
			}
			o[u] = w
			break
		}
	}
	res.Dominator = o
	res.Skyline = collect(o)
	return res
}

// BaseCSet runs FilterPhase to obtain C, then the BaseSky counting scan
// restricted to candidates (no Bloom filters). Time
// O(dmax · Σ_{u∈C} deg(u)).
func BaseCSet(g *graph.Graph, opts Options) *Result {
	return baseCSetRun(nil, g, opts)
}

// BaseCSetCtx is BaseCSet under a context, with the same anytime
// contract as FilterRefineSkyCtx.
func BaseCSetCtx(ctx context.Context, g *graph.Graph, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return baseCSetRun(run, g, opts)
}

func baseCSetRun(run *runctl.Run, g *graph.Graph, opts Options) *Result {
	candidates, o, fstats, ftrunc := filterPhaseRun(run, g, opts)
	res := &Result{Candidates: candidates, Stats: fstats}
	if ftrunc {
		res.Dominator = o
		res.Skyline = candidates
		res.markTruncated(run)
		return res
	}
	n := int32(g.N())
	t := make([]int32, n)
	touched := make([]int32, 0, 256)

	cp := run.Checkpoint(filterCheckEvery)
	for _, u := range candidates {
		if cp.Tick() {
			res.markTruncated(run)
			break
		}
		if o[u] != u || g.Degree(u) == 0 {
			continue
		}
		du := int32(g.Degree(u))
	scan:
		for _, v := range g.Neighbors(u) {
			for k := -1; k < g.Degree(v); k++ {
				var w int32
				if k < 0 {
					w = v
				} else {
					w = g.Neighbors(v)[k]
				}
				if w == u {
					continue
				}
				if t[w] == 0 {
					touched = append(touched, w)
				}
				t[w]++
				if t[w] == du && o[w] == w {
					res.Stats.PairsExamined++
					if int32(g.Degree(w)) == du {
						if u > w {
							if o[u] == u {
								o[u] = w
							}
						} else if o[w] == w {
							o[w] = u
						}
					} else if o[u] == u {
						o[u] = w
						break scan
					}
				}
			}
		}
		for _, w := range touched {
			t[w] = 0
		}
		touched = touched[:0]
	}
	res.Dominator = o
	res.Skyline = collect(o)
	return res
}

// SkylineSet returns the skyline as a membership bitmap, handy for the
// application packages.
func SkylineSet(res *Result, n int) []bool {
	in := make([]bool, n)
	for _, u := range res.Skyline {
		in[u] = true
	}
	return in
}

// EqualSkylines reports whether two skyline vertex lists are identical.
func EqualSkylines(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DominatedBy inverts a Dominator array: result[u] lists the vertices v
// whose recorded dominator is u (v's full dominator set may be larger).
// Used by NeiSkyTopkMCC's candidate-release rule.
func DominatedBy(o []int32) map[int32][]int32 {
	m := make(map[int32][]int32)
	for v := int32(0); v < int32(len(o)); v++ {
		if o[v] != v {
			m[o[v]] = append(m[o[v]], v)
		}
	}
	for _, lst := range m {
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
	}
	return m
}
