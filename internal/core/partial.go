package core

import (
	"context"
	"sort"

	"neisky/internal/graph"
	"neisky/internal/runctl"
)

// Full positional-dominance computation in the style of Brandes et al.
// (the paper's reference [7]): instead of just the skyline (the maximal
// elements), enumerate every domination pair. The paper stresses that
// its problem is easier than this one; having both lets the tests and
// benches quantify exactly how much work the skyline formulation saves,
// and the full order enables derived analyses such as domination-depth
// layers.

// PartialOrder holds all domination relationships of a graph.
type PartialOrder struct {
	// Dominators[v] lists every u that dominates v (v ≤ u), ascending.
	Dominators [][]int32
	// Pairs counts the total number of domination pairs.
	Pairs int
	// Truncated marks a cancelled run: the pairs recorded so far are all
	// real dominations (each was individually proven), but vertices not
	// yet scanned may be missing dominators, so Skyline() is a superset
	// of the true skyline. Err carries the cancellation cause.
	Truncated bool
	Err       error
}

// AllDominations computes the complete domination order with the
// counting scan of BaseSky, extended to record every hit instead of
// stopping at the first. O(m·dmax + pairs) time.
func AllDominations(g *graph.Graph, opts Options) *PartialOrder {
	return allDominationsRun(nil, g, opts)
}

// AllDominationsCtx is AllDominations under a context; see
// PartialOrder.Truncated for the anytime contract.
func AllDominationsCtx(ctx context.Context, g *graph.Graph, opts Options) *PartialOrder {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return allDominationsRun(run, g, opts)
}

func allDominationsRun(run *runctl.Run, g *graph.Graph, opts Options) *PartialOrder {
	n := int32(g.N())
	po := &PartialOrder{Dominators: make([][]int32, n)}
	t := make([]int32, n)
	touched := make([]int32, 0, 256)

	// Isolated vertices: dominated by every non-isolated vertex (or by
	// smaller-ID isolated ones); mirror the definitional handling.
	if !opts.KeepIsolated {
		var isolated, connected []int32
		for u := int32(0); u < n; u++ {
			if g.Degree(u) == 0 {
				isolated = append(isolated, u)
			} else {
				connected = append(connected, u)
			}
		}
		for _, u := range isolated {
			doms := make([]int32, 0, len(connected))
			doms = append(doms, connected...)
			// Mutual inclusion among isolated vertices: smaller IDs
			// dominate.
			for _, v := range isolated {
				if v < u {
					doms = append(doms, v)
				}
			}
			sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
			po.Dominators[u] = doms
			po.Pairs += len(doms)
		}
	}

	cp := run.Checkpoint(filterCheckEvery)
	for u := int32(0); u < n; u++ {
		if cp.Tick() {
			po.Truncated = true
			po.Err = run.Err()
			break
		}
		du := int32(g.Degree(u))
		if du == 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			for k := -1; k < g.Degree(v); k++ {
				var w int32
				if k < 0 {
					w = v
				} else {
					w = g.Neighbors(v)[k]
				}
				if w == u {
					continue
				}
				if t[w] == 0 {
					touched = append(touched, w)
				}
				t[w]++
			}
		}
		for _, w := range touched {
			if t[w] != du {
				continue
			}
			// N(u) ⊆ N[w]: w dominates u unless mutual with w > u.
			if g.Degree(w) == int(du) {
				if w < u {
					po.Dominators[u] = append(po.Dominators[u], w)
					po.Pairs++
				}
			} else {
				po.Dominators[u] = append(po.Dominators[u], w)
				po.Pairs++
			}
		}
		for _, w := range touched {
			t[w] = 0
		}
		touched = touched[:0]
	}
	for u := int32(0); u < n; u++ {
		d := po.Dominators[u]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	}
	return po
}

// Skyline extracts the maximal elements (vertices with no dominators),
// which must equal the skyline algorithms' output.
func (po *PartialOrder) Skyline() []int32 {
	var out []int32
	for v := int32(0); v < int32(len(po.Dominators)); v++ {
		if len(po.Dominators[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Layers assigns every vertex its domination depth: skyline vertices
// are layer 0, and every dominated vertex sits one layer below its
// deepest dominator. Returns the per-vertex layer and the layer count.
// The domination order is a DAG (antisymmetric with the ID tie-break),
// so a longest-path labeling over a topological order is well-defined.
func (po *PartialOrder) Layers() (layer []int32, count int) {
	n := int32(len(po.Dominators))
	layer = make([]int32, n)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	var visit func(v int32) int32
	visit = func(v int32) int32 {
		switch state[v] {
		case 2:
			return layer[v]
		case 1:
			// A cycle would mean the tie-break failed; defensive.
			panic("core: domination order contains a cycle")
		}
		state[v] = 1
		best := int32(0)
		for _, d := range po.Dominators[v] {
			if l := visit(d) + 1; l > best {
				best = l
			}
		}
		layer[v] = best
		state[v] = 2
		return best
	}
	max := int32(-1)
	for v := int32(0); v < n; v++ {
		if l := visit(v); l > max {
			max = l
		}
	}
	return layer, int(max + 1)
}
