package core

import (
	"math"

	"neisky/internal/graph"
)

// The paper's closing remark flags "approximate neighborhood skyline"
// based on approximate domination as an open direction. This file
// implements one natural formalization:
//
//	v is ε-neighborhood-included by u  ⇔  |N(v) \ N[u]| ≤ ε·|N(v)|
//
// i.e. u may miss up to an ε fraction of v's neighbors. ε = 0 recovers
// Definition 1 exactly. The ε-domination order mirrors Definition 2
// (one-sided ε-inclusion, or mutual with the smaller ID winning), and
// the ε-skyline is the set of vertices ε-dominated by nobody.
//
// Unlike exact domination, ε-domination is not transitive, so the
// chain-top arguments behind the skip rules of FilterRefineSky do not
// carry over; the computation below therefore uses the counting scan of
// BaseSky (every 2-hop pair is still sufficient: for ε < 1 an
// ε-dominator covers at least one neighbor of its dominee, hence sits
// within two hops).

// allowedMisses returns the maximum number of neighbors of a
// degree-deg vertex that an ε-dominator may miss.
func allowedMisses(deg int, eps float64) int {
	if deg == 0 {
		return 0
	}
	return int(math.Floor(eps*float64(deg) + 1e-9))
}

// EpsIncluded reports whether v is ε-neighborhood-included by u.
func EpsIncluded(g *graph.Graph, v, u int32, eps float64) bool {
	if u == v {
		return false
	}
	misses := 0
	budget := allowedMisses(g.Degree(v), eps)
	for _, x := range g.Neighbors(v) {
		if x == u || g.Has(u, x) {
			continue
		}
		misses++
		if misses > budget {
			return false
		}
	}
	return true
}

// EpsDominates reports whether u ε-dominates v: one-sided ε-inclusion,
// or mutual ε-inclusion with uid < vid.
func EpsDominates(g *graph.Graph, u, v int32, eps float64) bool {
	if u == v || !EpsIncluded(g, v, u, eps) {
		return false
	}
	if !EpsIncluded(g, u, v, eps) {
		return true
	}
	return u < v
}

// BruteForceApprox computes the ε-skyline from the definition in
// O(n²·d); the oracle for tests.
func BruteForceApprox(g *graph.Graph, eps float64) *Result {
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	for v := int32(0); v < n; v++ {
		for u := int32(0); u < n; u++ {
			if u != v && EpsDominates(g, u, v, eps) {
				o[v] = u
				break
			}
		}
	}
	return &Result{Skyline: collect(o), Dominator: o}
}

// ApproxSkyline computes the ε-skyline with a counting scan over 2-hop
// neighborhoods: T(w) = |N(u) ∩ N[w]| as in BaseSky, with the threshold
// relaxed from deg(u) to deg(u) − allowedMisses. O(m·dmax) worst case,
// O(m+n) space. ε = 0 returns the exact skyline.
func ApproxSkyline(g *graph.Graph, eps float64, opts Options) *Result {
	if eps < 0 {
		eps = 0
	}
	n := int32(g.N())
	o := make([]int32, n)
	for u := int32(0); u < n; u++ {
		o[u] = u
	}
	if !opts.KeepIsolated {
		markIsolated(g, o)
	}
	res := &Result{}
	t := make([]int32, n)
	touched := make([]int32, 0, 256)

	for u := int32(0); u < n; u++ {
		if o[u] != u || g.Degree(u) == 0 {
			continue
		}
		du := g.Degree(u)
		need := int32(du - allowedMisses(du, eps))
		if need < 1 {
			need = 1 // an ε-dominator still must be within 2 hops
		}
		for _, v := range g.Neighbors(u) {
			for k := -1; k < g.Degree(v); k++ {
				var w int32
				if k < 0 {
					w = v
				} else {
					w = g.Neighbors(v)[k]
				}
				if w == u {
					continue
				}
				if t[w] == 0 {
					touched = append(touched, w)
				}
				t[w]++
			}
		}
		// Evaluate all threshold crossers after the count completes.
		// ε-domination is not transitive, so a dominated w must NOT be
		// skipped here — its domination of u stands on its own.
		for _, w := range touched {
			if o[u] != u {
				break
			}
			if t[w] < need {
				continue
			}
			res.Stats.PairsExamined++
			// u is ε-included by w. Decide strict vs mutual.
			if EpsIncluded(g, w, u, eps) {
				if u > w {
					o[u] = w
				}
				continue
			}
			o[u] = w
		}
		for _, w := range touched {
			t[w] = 0
		}
		touched = touched[:0]
	}
	res.Dominator = o
	res.Skyline = collect(o)
	return res
}
