package core

import (
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func TestAllDominationsMatchesDefinition(t *testing.T) {
	r := rng.New(808)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(16), 0.1+0.6*r.Float64())
		po := AllDominations(g, Options{})
		n := int32(g.N())
		pairs := 0
		for v := int32(0); v < n; v++ {
			want := map[int32]bool{}
			for u := int32(0); u < n; u++ {
				if u != v && Dominates(g, u, v) {
					want[u] = true
					pairs++
				}
			}
			if len(po.Dominators[v]) != len(want) {
				t.Fatalf("vertex %d: %d dominators, want %d (edges %v)",
					v, len(po.Dominators[v]), len(want), g.EdgeList())
			}
			for _, u := range po.Dominators[v] {
				if !want[u] {
					t.Fatalf("vertex %d: spurious dominator %d", v, u)
				}
			}
		}
		if po.Pairs != pairs {
			t.Fatalf("pair count %d != %d", po.Pairs, pairs)
		}
	}
}

func TestPartialOrderSkylineMatches(t *testing.T) {
	r := rng.New(809)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 2+r.Intn(20), 0.3)
		po := AllDominations(g, Options{})
		want := FilterRefineSky(g, Options{})
		if !EqualSkylines(po.Skyline(), want.Skyline) {
			t.Fatalf("partial-order skyline %v != %v (edges %v)",
				po.Skyline(), want.Skyline, g.EdgeList())
		}
	}
}

func TestLayersOnStar(t *testing.T) {
	// Star: center layer 0; smallest leaf dominated only by center
	// (layer 1); larger leaves dominated by center and smaller leaves.
	g := gen.Star(4)
	po := AllDominations(g, Options{})
	layer, count := po.Layers()
	if layer[0] != 0 {
		t.Fatalf("center layer = %d", layer[0])
	}
	if layer[1] != 1 {
		t.Fatalf("first leaf layer = %d, want 1", layer[1])
	}
	// Leaf 2 is dominated by leaf 1 (mutual, smaller ID) at layer 1.
	if layer[2] != 2 || layer[3] != 3 {
		t.Fatalf("leaf layers = %d, %d; want 2, 3", layer[2], layer[3])
	}
	if count != 4 {
		t.Fatalf("layer count = %d, want 4", count)
	}
}

func TestLayersProperties(t *testing.T) {
	r := rng.New(810)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(15), 0.3)
		po := AllDominations(g, Options{})
		layer, count := po.Layers()
		maxSeen := int32(-1)
		for v := int32(0); v < int32(g.N()); v++ {
			// Every dominator sits strictly above.
			for _, d := range po.Dominators[v] {
				if layer[d] >= layer[v] {
					t.Fatalf("dominator %d (layer %d) not above %d (layer %d)",
						d, layer[d], v, layer[v])
				}
			}
			// Layer 0 ⇔ skyline membership.
			if (layer[v] == 0) != (len(po.Dominators[v]) == 0) {
				t.Fatalf("layer-0/skyline mismatch at %d", v)
			}
			if layer[v] > maxSeen {
				maxSeen = layer[v]
			}
		}
		if g.N() > 0 && int(maxSeen+1) != count {
			t.Fatalf("count %d != max layer %d + 1", count, maxSeen)
		}
	}
}

func TestAllDominationsCliqueChain(t *testing.T) {
	// In K_n everyone is mutual; vertex i is dominated by 0..i-1.
	g := gen.Clique(5)
	po := AllDominations(g, Options{})
	for v := int32(0); v < 5; v++ {
		if len(po.Dominators[v]) != int(v) {
			t.Fatalf("K5 vertex %d has %d dominators, want %d",
				v, len(po.Dominators[v]), v)
		}
	}
	layer, count := po.Layers()
	if count != 5 || layer[4] != 4 {
		t.Fatalf("K5 layers wrong: %v", layer)
	}
}

func TestAllDominationsIsolated(t *testing.T) {
	// Edge {0,1} + isolated vertex 2: vertex 2 dominated by both
	// endpoints (and mutual pair 0,1 gives 1 ≤ 0).
	g := graph.FromEdges(3, [][2]int32{{0, 1}})
	po := AllDominations(g, Options{})
	if len(po.Dominators[2]) != 2 {
		t.Fatalf("isolated vertex dominators = %v", po.Dominators[2])
	}
	if len(po.Dominators[1]) != 1 || po.Dominators[1][0] != 0 {
		t.Fatalf("mutual pair dominators = %v", po.Dominators[1])
	}
}

func TestQuickAllDominations(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%14) + 2
		r := rng.New(seed)
		g := randomGraph(r, n, 0.3)
		po := AllDominations(g, Options{})
		for v := int32(0); v < int32(n); v++ {
			for _, u := range po.Dominators[v] {
				if !Dominates(g, u, v) {
					return false
				}
			}
		}
		return EqualSkylines(po.Skyline(), BruteForce(g).Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
