package core

import (
	"testing"

	"neisky/internal/gen"
)

// TestParallelCutoffFallsBackToSerial pins the cutoff decision itself:
// Table-I-small graphs route to the serial engine, the ablation flag
// and genuinely large graphs do not.
func TestParallelCutoffFallsBackToSerial(t *testing.T) {
	small := gen.PowerLaw(4500, 13000, 2.3, 7)
	if small.N()+2*small.M() >= parallelCutoff {
		t.Fatalf("test graph grew past the cutoff: n+2m = %d", small.N()+2*small.M())
	}
	if !underParallelCutoff(small, Options{}) {
		t.Errorf("small graph (n+2m = %d) should fall back to serial", small.N()+2*small.M())
	}
	if underParallelCutoff(small, Options{NoParallelCutoff: true}) {
		t.Error("NoParallelCutoff must force the sharded path")
	}
	big := gen.PowerLaw(20000, 60000, 2.3, 7)
	if big.N()+2*big.M() < parallelCutoff {
		t.Fatalf("big test graph under the cutoff: n+2m = %d", big.N()+2*big.M())
	}
	if underParallelCutoff(big, Options{}) {
		t.Error("large graph must keep the sharded path")
	}

	// The fallback must be invisible in results: same skyline, same
	// candidate count, no error, for both entry points.
	seq := FilterRefineSky(small, Options{})
	par := ParallelFilterRefineSky(small, Options{}, 8)
	if par.Err != nil || par.Truncated {
		t.Fatalf("fallback run failed: %v", par.Err)
	}
	if !EqualSkylines(par.Skyline, seq.Skyline) {
		t.Fatalf("fallback skyline differs from serial")
	}
	cand, _, _, err := ParallelFilterPhase(small, Options{}, 8)
	if err != nil {
		t.Fatalf("fallback filter phase: %v", err)
	}
	seqCand, _, _ := FilterPhase(small, Options{})
	if len(cand) != len(seqCand) {
		t.Fatalf("fallback candidates %d != serial %d", len(cand), len(seqCand))
	}
}

// BenchmarkParallelCutoff measures the tradeoff the cutoff encodes, on
// a youtube-sim-sized graph (below the cutoff):
//
//	Auto    — ParallelFilterRefineSky with the cutoff active (serial fallback)
//	Forced  — the sharded path via the NoParallelCutoff ablation
//	Serial  — the serial engine called directly, the floor Auto should hit
//
// Auto regressing toward Forced (goroutine spawn + shared-cursor cache
// bouncing on ~300µs of real work) is the regression this benchmark
// exists to catch.
func BenchmarkParallelCutoff(b *testing.B) {
	g := gen.PowerLaw(4500, 13000, 2.3, 7)
	if g.N()+2*g.M() >= parallelCutoff {
		b.Fatalf("benchmark graph grew past the cutoff: n+2m = %d", g.N()+2*g.M())
	}
	g.Hub() // amortize the lazy index like the JSON benchmark does
	b.Run("Auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelFilterRefineSky(g, Options{}, 8)
		}
	})
	b.Run("Forced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ParallelFilterRefineSky(g, Options{NoParallelCutoff: true}, 8)
		}
	})
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FilterRefineSky(g, Options{})
		}
	})
}
