package core

import (
	"testing"

	"neisky/internal/graph"
)

// FuzzSkylineOracle decodes arbitrary bytes into a small graph and
// checks that every algorithm agrees with the brute-force oracle.
func FuzzSkylineOracle(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2})
	f.Add([]byte{8, 0, 1, 0, 2, 0, 3, 1, 2, 4, 5})
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0]%16) + 1
		b := graph.NewBuilder(n)
		for i := 1; i+1 < len(data) && i < 64; i += 2 {
			b.AddEdge(int32(data[i])%int32(n), int32(data[i+1])%int32(n))
		}
		g := b.Build()
		oracle := BruteForce(g)
		for _, res := range []*Result{
			BaseSky(g, Options{}),
			FilterRefineSky(g, Options{}),
			FilterRefineSky(g, Options{FullTwoHopScan: true}),
			Base2Hop(g, Options{}),
			BaseCSet(g, Options{}),
			ParallelFilterRefineSky(g, Options{}, 2),
		} {
			if !EqualSkylines(res.Skyline, oracle.Skyline) {
				t.Fatalf("skyline mismatch on fuzzed graph %v: %v vs %v",
					g.EdgeList(), res.Skyline, oracle.Skyline)
			}
		}
	})
}
