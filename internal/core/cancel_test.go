package core

import (
	"context"
	"errors"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/runctl"
	"neisky/internal/runctl/faultinject"
	"neisky/internal/testleak"
)

// cancelAtSeq installs a fault hook that cancels every checkpoint poll
// from sequence k on; the returned restore must be deferred.
func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// assertSuperset fails unless every vertex of want appears in got.
func assertSuperset(t *testing.T, got, want []int32, label string) {
	t.Helper()
	in := make(map[int32]bool, len(got))
	for _, v := range got {
		in[v] = true
	}
	for _, v := range want {
		if !in[v] {
			t.Fatalf("%s: vertex %d of the true skyline missing from the partial result", label, v)
		}
	}
}

// TestFilterRefineSkyCtxCancelMidRun cancels the serial pipeline at an
// early checkpoint and asserts the anytime contract: the run is marked
// truncated with the injected cause, and both the candidate set and the
// partial skyline are supersets of the true skyline (domination marks
// are only ever proven, never guessed).
func TestFilterRefineSkyCtxCancelMidRun(t *testing.T) {
	g := gen.PowerLaw(2000, 8000, 2.3, 11)
	truth := FilterRefineSky(g, Options{})

	defer cancelAtSeq(3)()
	res := FilterRefineSkyCtx(context.Background(), g, Options{})
	if !res.Truncated {
		t.Fatal("expected Truncated after injected cancellation")
	}
	if !errors.Is(res.Err, faultinject.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", res.Err)
	}
	assertSuperset(t, res.Skyline, truth.Skyline, "skyline")
	if len(res.Skyline) < len(truth.Skyline) {
		t.Fatalf("partial skyline smaller than the truth: %d < %d",
			len(res.Skyline), len(truth.Skyline))
	}
}

// TestParallelFilterPhaseCancelMidRun cancels the sharded filter phase
// mid-flight under the race detector's eye and asserts: no goroutine
// leaks, and the surviving candidate set is still a sound superset of
// the true skyline.
func TestParallelFilterPhaseCancelMidRun(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(3000, 12000, 2.3, 12)
	truth := FilterRefineSky(g, Options{})

	defer cancelAtSeq(2)()
	res := ParallelFilterPhaseCtx(context.Background(), g, Options{NoParallelCutoff: true}, 4)
	if !res.Truncated {
		t.Fatal("expected Truncated after injected cancellation")
	}
	assertSuperset(t, res.Candidates, truth.Skyline, "candidates")
}

// TestParallelFilterRefineSkyCancelMidRun drives the full parallel
// pipeline with a mid-run cancel: no leaks, sound partial skyline.
func TestParallelFilterRefineSkyCancelMidRun(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(3000, 12000, 2.3, 13)
	truth := FilterRefineSky(g, Options{})

	defer cancelAtSeq(5)()
	res := ParallelFilterRefineSkyCtx(context.Background(), g, Options{NoParallelCutoff: true}, 4)
	if !res.Truncated {
		t.Fatal("expected Truncated after injected cancellation")
	}
	assertSuperset(t, res.Skyline, truth.Skyline, "skyline")
}

// TestParallelFilterPhasePanicIsolated injects a worker panic into the
// sharded filter phase: the process must survive, the panic must
// surface once as Result.Err wrapping *PanicError, siblings must drain,
// and no goroutine may leak.
func TestParallelFilterPhasePanicIsolated(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(3000, 12000, 2.3, 14)

	defer faultinject.Set(func(seq int64) faultinject.Action {
		if seq == 2 {
			return faultinject.ActionPanic
		}
		return faultinject.ActionNone
	})()
	res := ParallelFilterRefineSkyCtx(context.Background(), g, Options{NoParallelCutoff: true}, 4)
	if !res.Truncated {
		t.Fatal("a worker panic must truncate the result")
	}
	var pe *runctl.PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("Err = %v, want *runctl.PanicError", res.Err)
	}
	if _, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
		t.Fatalf("panic value = %v, want the injected panic", pe.Value)
	}
}

// TestParallelFilterPhasePanicPlainAPI pins the satellite fix for the
// old process-kill bug: the non-context ParallelFilterPhase entry point
// also recovers worker panics into an error instead of crashing.
func TestParallelFilterPhasePanicPlainAPI(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(2000, 8000, 2.3, 15)

	defer faultinject.Set(func(seq int64) faultinject.Action {
		if seq == 1 {
			return faultinject.ActionPanic
		}
		return faultinject.ActionNone
	})()
	_, _, _, err := ParallelFilterPhase(g, Options{NoParallelCutoff: true}, 4)
	var pe *runctl.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *runctl.PanicError", err)
	}
}

// TestBudgetTruncatesSkyline bounds a skyline run by a work budget and
// checks the partial result is sound.
func TestBudgetTruncatesSkyline(t *testing.T) {
	g := gen.PowerLaw(4000, 16000, 2.3, 16)
	truth := FilterRefineSky(g, Options{})

	ctx := runctl.WithBudget(context.Background(), 1)
	res := FilterRefineSkyCtx(ctx, g, Options{})
	if !res.Truncated {
		t.Fatal("a 1-unit budget must truncate the run")
	}
	if !errors.Is(res.Err, runctl.ErrBudget) {
		t.Fatalf("Err = %v, want ErrBudget", res.Err)
	}
	assertSuperset(t, res.Skyline, truth.Skyline, "skyline")
}

// TestCtxVariantsMatchPlainOnLiveContext asserts the Ctx entry points
// are identical to the plain ones when the context never fires.
func TestCtxVariantsMatchPlainOnLiveContext(t *testing.T) {
	g := gen.PowerLaw(1500, 6000, 2.3, 17)
	want := FilterRefineSky(g, Options{})
	for _, tc := range []struct {
		name string
		run  func() *Result
	}{
		{"FilterRefineSkyCtx", func() *Result { return FilterRefineSkyCtx(context.Background(), g, Options{}) }},
		{"BaseSkyCtx", func() *Result { return BaseSkyCtx(context.Background(), g, Options{}) }},
		{"Base2HopCtx", func() *Result { return Base2HopCtx(context.Background(), g, Options{}) }},
		{"BaseCSetCtx", func() *Result { return BaseCSetCtx(context.Background(), g, Options{}) }},
		{"ParallelFilterRefineSkyCtx", func() *Result {
			return ParallelFilterRefineSkyCtx(context.Background(), g, Options{}, 4)
		}},
	} {
		got := tc.run()
		if got.Truncated || got.Err != nil {
			t.Fatalf("%s: spurious truncation: %v", tc.name, got.Err)
		}
		if !equalIDs(got.Skyline, want.Skyline) {
			t.Fatalf("%s: skyline mismatch", tc.name)
		}
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAllDominationsCtxCancelled checks the partial-order scan's
// anytime contract: recorded pairs are all real dominations.
func TestAllDominationsCtxCancelled(t *testing.T) {
	g := gen.PowerLaw(800, 3200, 2.3, 18)
	defer cancelAtSeq(2)()
	po := AllDominationsCtx(context.Background(), g, Options{})
	if !po.Truncated {
		t.Fatal("expected truncated partial order")
	}
	checkRecordedDominations(t, g, po)
}

func checkRecordedDominations(t *testing.T, g *graph.Graph, po *PartialOrder) {
	t.Helper()
	n := int32(g.N())
	count := 0
	for v := int32(0); v < n; v++ {
		if g.Degree(v) == 0 {
			continue // isolated vertices use definitional tie-breaking
		}
		for _, u := range po.Dominators[v] {
			if !Dominates(g, u, v) {
				t.Fatalf("recorded pair %d ≤ %d is not a real domination", v, u)
			}
			count++
			if count >= 200 {
				return // spot check is enough
			}
		}
	}
}
