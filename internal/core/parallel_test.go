package core

import (
	"testing"

	"neisky/internal/gen"
	"neisky/internal/rng"
)

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(404)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(40), 0.1+0.5*r.Float64())
		seq := FilterRefineSky(g, Options{})
		for _, workers := range []int{2, 4, 8} {
			par := ParallelFilterRefineSky(g, Options{}, workers)
			if !EqualSkylines(par.Skyline, seq.Skyline) {
				t.Fatalf("workers=%d: parallel %v != sequential %v (edges %v)",
					workers, par.Skyline, seq.Skyline, g.EdgeList())
			}
		}
	}
}

func TestParallelOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(3000, 9000, 2.2, 17)
	seq := FilterRefineSky(g, Options{})
	par := ParallelFilterRefineSky(g, Options{}, 4)
	if !EqualSkylines(par.Skyline, seq.Skyline) {
		t.Fatalf("parallel disagrees on power-law graph: %d vs %d vertices",
			len(par.Skyline), len(seq.Skyline))
	}
	// Dominators recorded by the parallel run must still be valid.
	for v := int32(0); v < int32(g.N()); v++ {
		if d := par.Dominator[v]; d != v && !Dominates(g, d, v) {
			t.Fatalf("parallel recorded invalid dominator %d for %d", d, v)
		}
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	g := gen.Clique(6)
	res := ParallelFilterRefineSky(g, Options{}, 1)
	if len(res.Skyline) != 1 {
		t.Fatalf("fallback wrong: %v", res.Skyline)
	}
}

func TestParallelOptionsRespected(t *testing.T) {
	g := gen.PowerLaw(500, 1500, 2.3, 3)
	for _, opts := range []Options{
		{DisableBloom: true},
		{PendantFilter: true},
		{KeepIsolated: true},
	} {
		seq := FilterRefineSky(g, opts)
		par := ParallelFilterRefineSky(g, opts, 4)
		if !EqualSkylines(par.Skyline, seq.Skyline) {
			t.Fatalf("opts %+v: parallel disagrees", opts)
		}
	}
}

func TestParallelEmptyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := gen.Path(n)
		seq := FilterRefineSky(g, Options{})
		par := ParallelFilterRefineSky(g, Options{}, 4)
		if !EqualSkylines(par.Skyline, seq.Skyline) {
			t.Fatalf("n=%d: parallel disagrees", n)
		}
	}
}
