package core

import (
	"testing"

	"neisky/internal/gen"
	"neisky/internal/rng"
)

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(404)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(40), 0.1+0.5*r.Float64())
		seq := FilterRefineSky(g, Options{})
		for _, workers := range []int{2, 4, 8} {
			par := ParallelFilterRefineSky(g, Options{NoParallelCutoff: true}, workers)
			if !EqualSkylines(par.Skyline, seq.Skyline) {
				t.Fatalf("workers=%d: parallel %v != sequential %v (edges %v)",
					workers, par.Skyline, seq.Skyline, g.EdgeList())
			}
		}
	}
}

// TestParallelStatsMerged guards against the refine-phase counters being
// dropped on the floor when per-worker Stats are merged after the join:
// a parallel run over a graph with real domination work must report
// non-zero PairsExamined (and filter-phase InclusionTests), matching the
// sequential totals in spirit even if scheduling perturbs exact counts.
func TestParallelStatsMerged(t *testing.T) {
	g := gen.PowerLaw(2000, 8000, 2.2, 99)
	seq := FilterRefineSky(g, Options{})
	if seq.Stats.PairsExamined == 0 {
		t.Fatalf("test graph too easy: sequential PairsExamined == 0")
	}
	for _, workers := range []int{2, 8} {
		par := ParallelFilterRefineSky(g, Options{NoParallelCutoff: true}, workers)
		if par.Stats.PairsExamined == 0 {
			t.Fatalf("workers=%d: refine-phase PairsExamined lost in merge", workers)
		}
		if par.Stats.InclusionTests == 0 {
			t.Fatalf("workers=%d: filter-phase InclusionTests lost in merge", workers)
		}
		if par.Stats.CandidateCount != seq.Stats.CandidateCount {
			t.Fatalf("workers=%d: candidate count %d != sequential %d",
				workers, par.Stats.CandidateCount, seq.Stats.CandidateCount)
		}
	}
}

// TestParallelFilterPhaseMatches checks the sharded filter phase yields
// exactly the sequential candidate set at several worker counts.
func TestParallelFilterPhaseMatches(t *testing.T) {
	r := rng.New(808)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 5+r.Intn(60), 0.05+0.4*r.Float64())
		seqCand, _, seqStats := FilterPhase(g, Options{})
		for _, workers := range []int{1, 2, 8} {
			cand, _, stats, err := ParallelFilterPhase(g, Options{NoParallelCutoff: true}, workers)
			if err != nil {
				t.Fatalf("workers=%d: unexpected error: %v", workers, err)
			}
			if !EqualSkylines(cand, seqCand) {
				t.Fatalf("workers=%d: candidates %v != %v", workers, cand, seqCand)
			}
			if stats.CandidateCount != seqStats.CandidateCount {
				t.Fatalf("workers=%d: candidate count mismatch", workers)
			}
		}
	}
}

func TestParallelOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(3000, 9000, 2.2, 17)
	seq := FilterRefineSky(g, Options{})
	par := ParallelFilterRefineSky(g, Options{}, 4)
	if !EqualSkylines(par.Skyline, seq.Skyline) {
		t.Fatalf("parallel disagrees on power-law graph: %d vs %d vertices",
			len(par.Skyline), len(seq.Skyline))
	}
	// Dominators recorded by the parallel run must still be valid.
	for v := int32(0); v < int32(g.N()); v++ {
		if d := par.Dominator[v]; d != v && !Dominates(g, d, v) {
			t.Fatalf("parallel recorded invalid dominator %d for %d", d, v)
		}
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	g := gen.Clique(6)
	res := ParallelFilterRefineSky(g, Options{}, 1)
	if len(res.Skyline) != 1 {
		t.Fatalf("fallback wrong: %v", res.Skyline)
	}
}

func TestParallelOptionsRespected(t *testing.T) {
	g := gen.PowerLaw(500, 1500, 2.3, 3)
	for _, opts := range []Options{
		{DisableBloom: true},
		{PendantFilter: true},
		{KeepIsolated: true},
	} {
		seq := FilterRefineSky(g, opts)
		par := ParallelFilterRefineSky(g, opts, 4)
		if !EqualSkylines(par.Skyline, seq.Skyline) {
			t.Fatalf("opts %+v: parallel disagrees", opts)
		}
	}
}

func TestParallelEmptyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 5} {
		g := gen.Path(n)
		seq := FilterRefineSky(g, Options{})
		par := ParallelFilterRefineSky(g, Options{}, 4)
		if !EqualSkylines(par.Skyline, seq.Skyline) {
			t.Fatalf("n=%d: parallel disagrees", n)
		}
	}
}
