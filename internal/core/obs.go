package core

import "neisky/internal/obs"

// Observability: the skyline hot path reports per-phase stage timers
// ("core.filter", "core.refine") and folds each run's Stats into the
// process registry (internal/obs) under per-phase counter names. The
// Bloom pipeline's effectiveness is readable directly from the refine
// counters: bit_rejects are probe hits (the filter killed the pair),
// false_pos are probe misses that cost an exact NBRcheck.
//
// All publishing happens once per phase, outside the inner loops — the
// loops keep accumulating the plain Stats struct — so the disabled path
// (obs.Get() == nil) costs one atomic load per phase.

// publishPhaseStats folds one phase's work counters into r under the
// given phase prefix. No-op when recording is disabled (r == nil).
func publishPhaseStats(r *obs.Recorder, phase string, s Stats) {
	if r == nil {
		return
	}
	r.Add(phase+".pairs_examined", int64(s.PairsExamined))
	r.Add(phase+".inclusion_tests", int64(s.InclusionTests))
	r.Add(phase+".bloom.probes", int64(s.BloomProbes))
	r.Add(phase+".bloom.whole_rejects", int64(s.BloomRejects))
	r.Add(phase+".bloom.bit_rejects", int64(s.BloomBitRejects))
	r.Add(phase+".bloom.false_pos", int64(s.BloomFalsePos))
	r.Add(phase+".hub_hits", int64(s.HubHits))
	r.Add(phase+".sketch.probes", int64(s.SketchProbes))
	r.Add(phase+".sketch.skips", int64(s.SketchSkips))
	if s.CandidateCount > 0 {
		r.Add(phase+".candidates", int64(s.CandidateCount))
	}
}
