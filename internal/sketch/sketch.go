// Package sketch implements per-vertex neighborhood-cardinality
// register sketches, the cheap cross-shard dominance pre-filter of the
// sharded skyline engine (DESIGN.md §10).
//
// The design follows DegreeSketch's framing (PAPERS.md): when exact
// N(v) subset tests get expensive at scale, keep a small per-vertex
// summary that travels across partition boundaries instead of the
// adjacency list itself. Each vertex gets 32 HyperLogLog-style
// registers, but a register is stored as an 8-bit *thermometer* (unary)
// code of its rank rather than a binary integer: register value r is
// the byte (1<<r)-1. Thermometer codes make the max-merge of HLL a
// plain bitwise OR, so
//
//	sketch(X) = OR_{x∈X} pat(x)
//
// and, because OR only ever adds bits, the sketch is monotone:
//
//	A ⊆ B  ⇒  sketch(A) bits ⊆ sketch(B) bits.
//
// The contrapositive is the load-bearing property: if some bit of
// sketch(A) is missing from sketch(B), then A ⊄ B — with NO false
// negatives, exactly like the refine phase's single-hash Bloom filter
// (internal/bloom) but rank-weighted, so a low-degree vertex's few
// high-rank bits are far more selective than degree-many bits in a
// 1-word Bloom filter. A subset test is four 64-bit AndNot words per
// pair, independent of degree.
//
// The registers double as an HLL cardinality estimate (Estimate), used
// for diagnostics; only the no-false-negative subset order is relied on
// for correctness.
package sketch

import (
	"math"
	"math/bits"
)

const (
	// buckets is the HLL register count m; the low 5 hash bits pick one.
	// 32 buckets × 8-bit registers = a 32-byte row, two vertices per
	// cache line: a probe costs one memory access, and the hot
	// high-degree band of a relabeled snapshot stays small enough to
	// live in L2 (a 64-bucket variant measured slower for that reason).
	buckets = 32
	// height is the thermometer width: ranks saturate at height, which
	// keeps a register in one byte and stays sound (capping is monotone).
	height = 8
	// Words is the per-vertex footprint in uint64 words (32 bytes).
	Words = buckets * height / 64
)

// Sketches is a dense arena of per-vertex register sketches, indexed by
// vertex id. Rows are independent: concurrent writers are safe as long
// as each vertex's row has a single writer (the sharded engine builds
// disjoint contiguous ranges per worker).
//
// Alongside the full 32-byte rows the arena keeps two 8-byte "mini"
// codes per vertex: a 2-bit saturating thermometer (rank ≥ 1, rank ≥ 2)
// for each of the 32 buckets, one code for the open row and one with
// the vertex's own pattern folded in (the closed side). A mini code is
// a pure truncation of the row, so mini(a) ⊄ mini(b) implies row(a) ⊄
// row(b): probing minis first never changes a verdict, it only answers
// most rejections from an array small enough to stay L2-resident where
// the full rows would miss.
type Sketches struct {
	regs  []uint64
	miniO []uint64 // open-neighborhood mini codes
	miniC []uint64 // closed-side mini codes (own pattern folded in)
}

// New returns an all-empty arena for n vertices.
func New(n int) *Sketches {
	s := &Sketches{
		regs:  make([]uint64, n*Words),
		miniO: make([]uint64, n),
		miniC: make([]uint64, n),
	}
	// A closed-side mini includes the vertex's own pattern even before
	// anything is added, matching IncludedClosed's on-the-fly fold-in.
	for u := int32(0); u < int32(n); u++ {
		b, r := patParts(u)
		if r > 2 {
			r = 2
		}
		s.miniC[u] = (uint64(1)<<r - 1) << (b * 2)
	}
	return s
}

// Bytes reports the arena footprint.
func (s *Sketches) Bytes() int {
	return 8 * (len(s.regs) + len(s.miniO) + len(s.miniC))
}

// hash mixes a vertex ID into 64 well-distributed bits (the splitmix64
// finalizer, the same mixer as internal/bloom).
func hash(x int32) uint64 {
	z := uint64(uint32(x)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// patParts hashes x to its (bucket, rank) pair: bucket h&31 holds rank
// 1+TrailingZeros(h>>5), capped at height.
func patParts(x int32) (b, r uint) {
	h := hash(x)
	return uint(h) & (buckets - 1), uint(bits.TrailingZeros64(h>>5|1<<(height-1))) + 1
}

// pat returns x's thermometer pattern as (word index, OR-mask): the
// low-rank-ones byte at the bucket's lane.
func pat(x int32) (int, uint64) {
	b, r := patParts(x)
	return int(b >> 3), (uint64(1)<<r - 1) << ((b & 7) * height)
}

// miniOf truncates a full row to its 64-bit mini code: the low 2 bits
// of every register byte (rank ≥ 1, rank ≥ 2), packed 2 bits per
// bucket. Thermometer codes make the truncation monotone: a ⊆ b on
// rows implies miniOf(a) ⊆ miniOf(b) bitwise.
func miniOf(row []uint64) uint64 {
	var m uint64
	for wi := 0; wi < Words; wi++ {
		wv := row[wi]
		if wv == 0 {
			continue
		}
		for lane := 0; lane < 8; lane++ {
			m |= (wv >> (lane * height) & 3) << ((wi*8 + lane) * 2)
		}
	}
	return m
}

// refreshMini recomputes u's mini codes from its current row.
func (s *Sketches) refreshMini(u int32, row []uint64) {
	m := miniOf(row)
	s.miniO[u] = m
	b, r := patParts(u)
	if r > 2 {
		r = 2
	}
	s.miniC[u] = m | (uint64(1)<<r-1)<<(b*2)
}

// Add folds element x into u's sketch.
func (s *Sketches) Add(u, x int32) {
	wi, p := pat(x)
	s.regs[int(u)*Words+wi] |= p
	s.refreshMini(u, s.regs[int(u)*Words:int(u)*Words+Words])
}

// AddAll folds a whole neighbor list into u's sketch.
func (s *Sketches) AddAll(u int32, xs []int32) {
	row := s.regs[int(u)*Words : int(u)*Words+Words]
	for _, x := range xs {
		wi, p := pat(x)
		row[wi] |= p
	}
	s.refreshMini(u, row)
}

// IncludedClosed is the dominance pre-filter: it reports whether the
// set sketched at u may be a subset of the set sketched at w PLUS w
// itself — i.e. it tests open-neighborhood sketch N(u) against the
// closed side N[w], folding pat(w) in on the fly (the engine stores
// only open-neighborhood sketches). A false result proves N(u) ⊄ N[w];
// a true result may be a false positive and needs the exact check.
func (s *Sketches) IncludedClosed(u, w int32) bool {
	if s.miniO[u]&^s.miniC[w] != 0 {
		return false // mini rejection implies full-row rejection
	}
	a := s.regs[int(u)*Words : int(u)*Words+Words]
	b := s.regs[int(w)*Words : int(w)*Words+Words]
	miss := a[0]&^b[0] | a[1]&^b[1] | a[2]&^b[2] | a[3]&^b[3]
	if miss == 0 {
		return true // clean inclusion; w's own pattern not even needed
	}
	// Some bit of sketch(u) is outside sketch(N(w)). That is still a
	// sound inclusion iff every such bit sits in w's own word and is
	// covered by the fold-in pattern of the element w itself.
	wi, wp := pat(w)
	return miss == a[wi]&^b[wi] && a[wi]&^(b[wi]|wp) == 0
}

// OpenMini returns u's open-neighborhood mini code; ClosedMini returns
// w's closed-side code (own pattern folded in). A scan loop hoists
// OpenMini(u) once and rejects a pair when OpenMini(u) &^ ClosedMini(w)
// != 0 — one 8-byte load per pair from an array small enough to stay
// L2-resident, and mini rejection is sound on its own (the codes are
// monotone truncations of the rows). Both calls inline.
func (s *Sketches) OpenMini(u int32) uint64   { return s.miniO[u] }
func (s *Sketches) ClosedMini(w int32) uint64 { return s.miniC[w] }

// Estimate returns the HLL cardinality estimate of u's sketch (m = 32
// registers, α₃₂ ≈ 0.697, linear counting in the small range). The
// thermometer height cap saturates the estimate around 2^height·m, so
// treat large values as order-of-magnitude; the subset pre-filter never
// depends on this number.
func (s *Sketches) Estimate(u int32) float64 {
	row := s.regs[int(u)*Words : int(u)*Words+Words]
	var sum float64
	zeros := 0
	for _, w := range row {
		for lane := 0; lane < 8; lane++ {
			r := bits.OnesCount8(uint8(w >> (lane * height)))
			sum += 1 / float64(uint64(1)<<r)
			if r == 0 {
				zeros++
			}
		}
	}
	const alpha = 0.697
	est := alpha * buckets * buckets / sum
	if est <= 2.5*buckets && zeros > 0 {
		est = buckets * math.Log(float64(buckets)/float64(zeros))
	}
	return est
}
