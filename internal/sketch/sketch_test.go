package sketch

import (
	"math"
	"math/bits"
	"testing"

	"neisky/internal/rng"
)

// TestPatShape pins the pattern invariants every soundness argument
// rests on: one word index in range, a non-empty thermometer (a
// contiguous run of ones starting at the bucket lane's bit 0), and
// determinism.
func TestPatShape(t *testing.T) {
	for x := int32(0); x < 10000; x++ {
		wi, p := pat(x)
		if wi < 0 || wi >= Words {
			t.Fatalf("pat(%d): word index %d out of range", x, wi)
		}
		if p == 0 {
			t.Fatalf("pat(%d): empty pattern", x)
		}
		// Exactly one 8-bit lane is populated, with a low-aligned run.
		lane := bits.TrailingZeros64(p) / height
		b := uint8(p >> (lane * height))
		if uint64(b)<<(lane*height) != p {
			t.Fatalf("pat(%d): pattern %x spans lanes", x, p)
		}
		if b&(b+1) != 0 {
			t.Fatalf("pat(%d): lane byte %08b is not a thermometer code", x, b)
		}
		wi2, p2 := pat(x)
		if wi != wi2 || p != p2 {
			t.Fatalf("pat(%d): not deterministic", x)
		}
	}
}

// TestNoFalseNegatives is the load-bearing property: whenever
// A ⊆ B ∪ {w} — where w is the superset ROW's vertex ID, mirroring the
// engine's closed-neighborhood test N(u) ⊆ N(w) ∪ {w} — IncludedClosed
// must hold. Random nested sets over a shared universe.
func TestNoFalseNegatives(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(400)
		s := New(n)
		w := int32(r.Intn(n))
		u := (w + 1) % int32(n)
		// B = random set sketched at row w; A = random subset of B ∪ {w}
		// sketched at row u (w itself is the fold-in closed element).
		var b []int32
		for x := int32(0); x < int32(n); x++ {
			if r.Float64() < 0.3 {
				b = append(b, x)
			}
		}
		s.AddAll(w, b)
		for _, x := range append(append([]int32{}, b...), w) {
			if x != u && r.Float64() < 0.5 {
				s.Add(u, x)
			}
		}
		if !s.IncludedClosed(u, w) {
			t.Fatalf("trial %d: false negative on a genuine subset (|B|=%d)", trial, len(b))
		}
	}
}

// TestRejectsDisjointSets checks the pre-filter actually filters: sets
// with several elements outside the closed superset are rejected most
// of the time (the exact rate is probabilistic; require a solid
// majority over many trials).
func TestRejectsDisjointSets(t *testing.T) {
	r := rng.New(99)
	trials, rejected := 0, 0
	for trial := 0; trial < 500; trial++ {
		s := New(2)
		// u's set: 8 elements from one range; w's set: 8 from another.
		for i := 0; i < 8; i++ {
			s.Add(0, int32(1000+r.Intn(5000)))
			s.Add(1, int32(100000+r.Intn(5000)))
		}
		trials++
		if !s.IncludedClosed(0, 1) {
			rejected++
		}
	}
	if rejected < trials*3/4 {
		t.Fatalf("rejected only %d/%d disjoint pairs; the pre-filter is not selective", rejected, trials)
	}
}

// TestMonotoneUnderInsert: adding elements to the superset side never
// flips an accept into a reject (OR-only updates).
func TestMonotoneUnderInsert(t *testing.T) {
	r := rng.New(5)
	s := New(2)
	for i := 0; i < 10; i++ {
		s.Add(0, int32(r.Intn(1000)))
		s.Add(1, int32(r.Intn(1000)))
	}
	before := s.IncludedClosed(0, 1)
	for i := 0; i < 200; i++ {
		s.Add(1, int32(r.Intn(100000)))
		if before && !s.IncludedClosed(0, 1) {
			t.Fatalf("insert into the superset side flipped accept to reject")
		}
		before = before || s.IncludedClosed(0, 1)
	}
}

// TestMiniCodesAreSoundTruncations cross-checks the fast tiers against
// a from-scratch row-level closed-inclusion test: IncludedClosed must
// equal the exact register comparison (its mini shortcut and word-wise
// fold-in are optimizations, not approximations), and a mini-code
// rejection must never contradict a row-level inclusion.
func TestMiniCodesAreSoundTruncations(t *testing.T) {
	r := rng.New(11)
	const n = 64
	s := New(n)
	for i := 0; i < 2000; i++ {
		s.Add(int32(r.Intn(n)), int32(r.Intn(100000)))
	}
	for u := int32(0); u < n; u++ {
		for w := int32(0); w < n; w++ {
			if u == w {
				continue
			}
			a := s.regs[int(u)*Words : int(u)*Words+Words]
			b := s.regs[int(w)*Words : int(w)*Words+Words]
			wi, wp := pat(w)
			want := true
			for k := 0; k < Words; k++ {
				miss := a[k] &^ b[k]
				if k == wi {
					miss &^= wp
				}
				if miss != 0 {
					want = false
					break
				}
			}
			if got := s.IncludedClosed(u, w); got != want {
				t.Fatalf("IncludedClosed(%d, %d) = %v, exact row test %v", u, w, got, want)
			}
			if s.OpenMini(u)&^s.ClosedMini(w) != 0 && want {
				t.Fatalf("mini code rejected (%d, %d) but the rows include", u, w)
			}
		}
	}
}

// TestEstimateTracksCardinality sanity-checks the HLL readout: the
// estimate grows with the true cardinality and lands within a loose
// factor for mid-size sets (m=32 gives ~18% standard error; assert a
// generous 2.5x band over averaged trials).
func TestEstimateTracksCardinality(t *testing.T) {
	for _, card := range []int{4, 32, 256} {
		var sum float64
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			s := New(1)
			base := int32(trial * 1000000)
			for i := int32(0); i < int32(card); i++ {
				s.Add(0, base+i*7919)
			}
			sum += s.Estimate(0)
		}
		avg := sum / trials
		if avg < float64(card)/2.5 || avg > float64(card)*2.5 {
			t.Fatalf("card=%d: averaged estimate %.1f is off by more than 2.5x", card, avg)
		}
	}
}

// TestEmptySketch: the empty set is included in everything, estimates
// zero, and nothing non-empty is included in it.
func TestEmptySketch(t *testing.T) {
	s := New(3)
	s.Add(1, 42)
	if !s.IncludedClosed(0, 1) || !s.IncludedClosed(0, 2) {
		t.Fatal("empty sketch must be included everywhere")
	}
	if e := s.Estimate(0); e != 0 && !(e < 1) {
		t.Fatalf("empty estimate %v", e)
	}
	if math.IsNaN(s.Estimate(1)) {
		t.Fatal("estimate NaN")
	}
}
