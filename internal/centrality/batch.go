// Bit-parallel candidate sweeps: the greedy engine's batched gain
// evaluator and the batched vertex-centrality sweeps, built on the
// MS-BFS engine in internal/bfs.
//
// A sweep partitions the candidate list into batches of 64 (one frontier
// word each) and traverses each batch with one bit-parallel BFS instead
// of 64 scalar ones. Batches are sharded across Workers goroutines, each
// holding its own bfs.Batch scratch from a bfs.BatchPool (a Batch, like
// a Traversal, is single-goroutine). Gains land in a position-indexed
// slice, so results — and therefore greedy picks — are deterministic and
// independent of worker scheduling.
//
// Exactness: closeness gains are integer-valued (distance deltas and
// n-penalties) and accumulated in int64, so batched closeness gains are
// bit-identical to the scalar evaluator's. Harmonic gains are float
// sums accumulated in a different order than the scalar sweep, so they
// agree to rounding error (the oracle tests pin them to 1e-9).
package centrality

import (
	"runtime"
	"sync/atomic"

	"neisky/internal/bfs"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// resolveWorkers maps an Options.Workers value to a concrete worker
// count: 0 means GOMAXPROCS.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// batchPool lazily creates the engine's shared BatchPool.
func (e *engine) batchPool() *bfs.BatchPool {
	if e.pool == nil {
		e.pool = bfs.NewBatchPool(e.g, 1)
	}
	return e.pool
}

// batchGains evaluates the marginal gain of every vertex in srcs against
// the current group, writing gains[i] for srcs[i]. It is the batched
// counterpart of gainFull/gainPruned: one MS-BFS per 64 candidates,
// sharded across workers. Sources must not be group members.
func (e *engine) batchGains(srcs []int32, gains []float64, workers int) {
	r := obs.Get()
	defer r.Start("centrality.sweep").End()
	pool := e.batchPool()
	workers = resolveWorkers(workers)
	chunks := (len(srcs) + bfs.WordLanes - 1) / bfs.WordLanes
	if workers > chunks {
		workers = chunks
	}
	if r != nil {
		r.Add("centrality.sweep.candidates", int64(len(srcs)))
		r.Add("centrality.sweep.chunks", int64(chunks))
	}
	uniform := e.sSize == 0
	if workers <= 1 {
		b := pool.Get()
		defer pool.Put(b)
		b.SetRun(e.run)
		for c := 0; c < chunks; c++ {
			if e.run.Stopped() {
				return
			}
			e.gainsChunk(b, srcs, gains, c, uniform)
		}
		return
	}
	// Workers run panic-isolated under a live run: a panicking worker is
	// recovered into e.failed (surfaced once as Result.Err) and cancels
	// the run so its siblings drain at their next chunk boundary or BFS
	// checkpoint, instead of the panic killing the whole process.
	run := runctl.Ensure(e.run)
	group := runctl.NewGroup(run)
	var cursor int64 = -1
	for w := 0; w < workers; w++ {
		group.Go(func() {
			b := pool.Get()
			defer pool.Put(b)
			b.SetRun(run)
			for {
				if run.Stopped() {
					return
				}
				c := int(atomic.AddInt64(&cursor, 1))
				if c >= chunks {
					return
				}
				e.gainsChunk(b, srcs, gains, c, uniform)
			}
		})
	}
	if err := group.Wait(); err != nil {
		e.fail(err)
	}
}

// gainsChunk evaluates one 64-source batch. For the empty group
// (uniform), gains reduce to the per-source Σd / Σ1/d aggregates; with a
// non-empty group the incumbent distances dS both prune the traversal
// (the same rule as Traversal.Pruned, applied to all lanes at once) and
// weight each newly-reached vertex by its per-vertex improvement.
func (e *engine) gainsChunk(b *bfs.Batch, srcs []int32, gains []float64, c int, uniform bool) {
	lo := c * bfs.WordLanes
	hi := lo + bfs.WordLanes
	if hi > len(srcs) {
		hi = len(srcs)
	}
	chunk := srcs[lo:hi]
	out := gains[lo:hi]
	n64 := int64(e.n)
	if uniform {
		// S = ∅: every incumbent distance is Unreached, so the closeness
		// gain is Σ_v (n − d(u,v)) = n·reached − Σd (its n·(n−reached)
		// unreachable terms cancel), and the harmonic gain is Σ 1/d.
		sumD, sumInv, reached := b.Sums(chunk)
		for i := range chunk {
			if e.measure == CLOSENESS {
				out[i] = float64(n64*int64(reached[i]) - sumD[i])
			} else {
				out[i] = sumInv[i]
			}
		}
		return
	}
	var accC [bfs.WordLanes]int64
	var accH [bfs.WordLanes]float64
	dS := e.dS
	if e.measure == CLOSENESS {
		b.Visit(chunk, dS, func(v int32, level int32, mask []uint64) {
			if level == 0 {
				return // the candidate itself is the base term below
			}
			old := dS[v]
			w := int64(old) - int64(level)
			if old == bfs.Unreached {
				w = n64 - int64(level)
			}
			bfs.ForEachLane(mask[0], 0, func(lane int) { accC[lane] += w })
		})
		for i, u := range chunk {
			base := int64(dS[u])
			if dS[u] == bfs.Unreached {
				base = n64
			}
			out[i] = float64(accC[i] + base)
		}
		return
	}
	b.Visit(chunk, dS, func(v int32, level int32, mask []uint64) {
		if level == 0 {
			return
		}
		w := 1 / float64(level)
		if old := dS[v]; old != bfs.Unreached {
			w -= 1 / float64(old)
		}
		bfs.ForEachLane(mask[0], 0, func(lane int) { accH[lane] += w })
	})
	for i, u := range chunk {
		out[i] = accH[i] - effHarm(dS[u])
	}
}

// sweepSums runs a batched Sums sweep over every vertex of g, sharded
// across workers, calling fold(v, sumDist, sumInv, reached) for each
// vertex. fold writes only its own vertex's slot, so no synchronization
// is needed beyond the join. A recovered worker panic is re-raised on
// the caller's goroutine (catchable, full stack attached) rather than
// killing the process from a worker.
func sweepSums(g *graph.Graph, workers int, fold func(v int32, sumD int64, sumInv float64, reached int32)) {
	if err := sweepSumsRun(nil, g, workers, fold); err != nil {
		panic(err)
	}
}

// sweepSumsRun is sweepSums under a run: workers are panic-isolated, a
// stopped run drains them at the next chunk boundary or BFS checkpoint
// (vertices not yet folded keep their zero values), and the first
// worker panic is returned as a *runctl.PanicError.
func sweepSumsRun(run *runctl.Run, g *graph.Graph, workers int, fold func(v int32, sumD int64, sumInv float64, reached int32)) error {
	defer obs.Get().Start("centrality.vertex_sweep").End()
	n := int32(g.N())
	pool := bfs.NewBatchPool(g, 1)
	chunks := int((n + bfs.WordLanes - 1) / bfs.WordLanes)
	workers = resolveWorkers(workers)
	if workers > chunks {
		workers = chunks
	}
	run = runctl.Ensure(run)
	group := runctl.NewGroup(run)
	var cursor int64 = -1
	for w := 0; w < workers; w++ {
		group.Go(func() {
			b := pool.Get()
			defer pool.Put(b)
			b.SetRun(run)
			srcs := make([]int32, 0, bfs.WordLanes)
			for {
				if run.Stopped() {
					return
				}
				c := int32(atomic.AddInt64(&cursor, 1))
				if c >= int32(chunks) {
					return
				}
				lo := c * bfs.WordLanes
				hi := lo + bfs.WordLanes
				if hi > n {
					hi = n
				}
				srcs = srcs[:0]
				for v := lo; v < hi; v++ {
					srcs = append(srcs, v)
				}
				sumD, sumInv, reached := b.Sums(srcs)
				if b.Truncated() {
					return // partial lane aggregates; don't fold garbage
				}
				for i, v := range srcs {
					fold(v, sumD[i], sumInv[i], reached[i])
				}
			}
		})
	}
	return group.Wait()
}
