package centrality

import (
	"math"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// batchZoo is the oracle-pinning graph set: ER, Chung–Lu power law and
// BA, including disconnected graphs with isolated vertices (exercising
// the d = n and 1/∞ = 0 conventions).
func batchZoo() []*graph.Graph {
	return []*graph.Graph{
		gen.ER(70, 0.06, 101),
		gen.ER(140, 0.008, 102), // disconnected
		gen.PowerLaw(160, 400, 2.1, 103),
		gen.BA(130, 2, 104),
		graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}}), // isolated v5
	}
}

// TestBatchedGainsMatchScalar pins the batched gain evaluator to the
// scalar gainFull oracle at several greedy prefixes. Closeness gains are
// integer-valued and must match exactly; harmonic gains to 1e-9.
func TestBatchedGainsMatchScalar(t *testing.T) {
	r := rng.New(7)
	for gi, g := range batchZoo() {
		n := int32(g.N())
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			e := newEngine(g, m, false)
			for round := 0; round < 4; round++ {
				var srcs []int32
				for u := int32(0); u < n; u++ {
					if !e.inS[u] {
						srcs = append(srcs, u)
					}
				}
				gains := make([]float64, len(srcs))
				for _, workers := range []int{1, 3} {
					e.batchGains(srcs, gains, workers)
					for i, u := range srcs {
						want := e.gainFull(u)
						if m == CLOSENESS {
							if gains[i] != want {
								t.Fatalf("graph %d %v round %d u=%d workers=%d: batch %v != scalar %v (exact)",
									gi, m, round, u, workers, gains[i], want)
							}
						} else if math.Abs(gains[i]-want) > 1e-9 {
							t.Fatalf("graph %d %v round %d u=%d workers=%d: batch %v != scalar %v",
								gi, m, round, u, workers, gains[i], want)
						}
					}
				}
				// Grow the group with a random unpicked vertex.
				e.add(srcs[r.Intn(len(srcs))])
			}
		}
	}
}

// TestBatchedGreedyMatchesScalar pins batched greedy picks to scalar
// greedy picks across the Lazy/PrunedBFS/Workers grid. Closeness groups
// must be identical (gains are bit-exact); harmonic runs must agree on
// the achieved group value.
func TestBatchedGreedyMatchesScalar(t *testing.T) {
	for gi, g := range batchZoo() {
		k := 4
		for _, lazy := range []bool{false, true} {
			for _, pruned := range []bool{false, true} {
				for _, m := range []Measure{CLOSENESS, HARMONIC} {
					scalar := Greedy(g, k, m, Options{Lazy: lazy, PrunedBFS: pruned, DisableBatchBFS: true})
					for _, workers := range []int{1, 4} {
						batched := Greedy(g, k, m, Options{Lazy: lazy, PrunedBFS: pruned, Workers: workers})
						if batched.GainCalls != scalar.GainCalls {
							t.Fatalf("graph %d %v lazy=%v pruned=%v workers=%d: gain calls %d != scalar %d",
								gi, m, lazy, pruned, workers, batched.GainCalls, scalar.GainCalls)
						}
						if m == CLOSENESS {
							if len(batched.Group) != len(scalar.Group) {
								t.Fatalf("graph %d lazy=%v pruned=%v: group sizes differ", gi, lazy, pruned)
							}
							for i := range batched.Group {
								if batched.Group[i] != scalar.Group[i] {
									t.Fatalf("graph %d lazy=%v pruned=%v workers=%d: picks %v != scalar %v",
										gi, lazy, pruned, workers, batched.Group, scalar.Group)
								}
							}
						}
						if math.Abs(batched.Value-scalar.Value) > 1e-9 {
							t.Fatalf("graph %d %v lazy=%v pruned=%v workers=%d: value %v != scalar %v",
								gi, m, lazy, pruned, workers, batched.Value, scalar.Value)
						}
					}
				}
			}
		}
	}
}

// TestBatchedVertexCentralitiesMatchScalar pins the MS-BFS whole-graph
// sweeps to the scalar oracles, disconnected graphs included.
func TestBatchedVertexCentralitiesMatchScalar(t *testing.T) {
	for gi, g := range batchZoo() {
		for _, workers := range []int{1, 4} {
			c, cw := VertexClosenessScalar(g), VertexClosenessWorkers(g, workers)
			h, hw := VertexHarmonicScalar(g), VertexHarmonicWorkers(g, workers)
			for v := range c {
				if math.Abs(c[v]-cw[v]) > 1e-12 {
					t.Fatalf("graph %d v%d workers=%d: closeness %v != scalar %v", gi, v, workers, cw[v], c[v])
				}
				if math.Abs(h[v]-hw[v]) > 1e-9 {
					t.Fatalf("graph %d v%d workers=%d: harmonic %v != scalar %v", gi, v, workers, hw[v], h[v])
				}
			}
		}
	}
}

// TestValueTraceIncremental: the trace values derived incrementally from
// the committed dS must equal a from-scratch GroupValue of each prefix.
func TestValueTraceIncremental(t *testing.T) {
	for _, g := range batchZoo() {
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			for _, disable := range []bool{false, true} {
				res := Greedy(g, 5, m, Options{Lazy: true, PrunedBFS: true, DisableBatchBFS: disable})
				for i := range res.ValueTrace {
					want := GroupValue(g, res.Group[:i+1], m)
					if math.Abs(res.ValueTrace[i]-want) > 1e-12 {
						t.Fatalf("%v trace[%d] = %v, GroupValue = %v", m, i, res.ValueTrace[i], want)
					}
				}
				if len(res.ValueTrace) > 0 && res.Value != res.ValueTrace[len(res.ValueTrace)-1] {
					t.Fatal("Value must be the last trace entry")
				}
			}
		}
	}
}

// TestParallelBatchedGainRace runs the batched gain evaluation with
// several workers on a generated graph; under `go test -race` this is
// the concurrency gate for the engine + pool plumbing.
func TestParallelBatchedGainRace(t *testing.T) {
	g := gen.PowerLaw(1500, 5000, 2.1, 105)
	for _, m := range []Measure{CLOSENESS, HARMONIC} {
		seq := Greedy(g, 3, m, Options{Workers: 1})
		par := Greedy(g, 3, m, Options{Workers: 4})
		if math.Abs(seq.Value-par.Value) > 1e-9 {
			t.Fatalf("%v: parallel value %v != sequential %v", m, par.Value, seq.Value)
		}
		if m == CLOSENESS {
			for i := range seq.Group {
				if seq.Group[i] != par.Group[i] {
					t.Fatalf("parallel picks %v != sequential %v", par.Group, seq.Group)
				}
			}
		}
	}
	// Lazy + pruned with a parallel cold start, too.
	seq := Greedy(g, 5, CLOSENESS, Options{Lazy: true, PrunedBFS: true, Workers: 1})
	par := Greedy(g, 5, CLOSENESS, Options{Lazy: true, PrunedBFS: true, Workers: 4})
	for i := range seq.Group {
		if seq.Group[i] != par.Group[i] {
			t.Fatalf("lazy parallel picks %v != sequential %v", par.Group, seq.Group)
		}
	}
}

// TestBatchedFirstRoundEqualsVertexCentrality: with S = ∅ the gain of u
// is n·reached − Σd for closeness and Σ1/d for harmonic — i.e. the k=1
// greedy pick is the vertex-centrality argmax. Cross-check the two
// batched code paths (Sums fast path vs the sweep) against each other.
func TestBatchedFirstRoundEqualsVertexCentrality(t *testing.T) {
	g := gen.PowerLaw(300, 900, 2.1, 106)
	res := Greedy(g, 1, HARMONIC, Options{})
	h := VertexHarmonic(g)
	best := 0
	for v := range h {
		if h[v] > h[best] {
			best = v
		}
	}
	if res.Group[0] != int32(best) {
		// Allow FP ties: values must match even if the argmax ID differs.
		if math.Abs(h[res.Group[0]]-h[best]) > 1e-9 {
			t.Fatalf("k=1 harmonic pick %d (%v) != argmax %d (%v)",
				res.Group[0], h[res.Group[0]], best, h[best])
		}
	}
}

// BenchmarkFirstRoundSweep compares the scalar and batched first-round
// gain sweeps (the acceptance kernel) on a mid-size power-law graph.
func BenchmarkFirstRoundSweep(b *testing.B) {
	g := gen.PowerLaw(4000, 15000, 2.1, 107)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := newEngine(g, CLOSENESS, false)
			for u := int32(0); u < int32(g.N()); u++ {
				e.gainFull(u)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := newEngine(g, CLOSENESS, false)
			srcs := make([]int32, g.N())
			for u := range srcs {
				srcs[u] = int32(u)
			}
			gains := make([]float64, len(srcs))
			e.batchGains(srcs, gains, 1)
		}
	})
}
