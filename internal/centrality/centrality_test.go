package centrality

import (
	"math"
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/pll"
	"neisky/internal/rng"
)

func randomConnected(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	// Spanning path guarantees connectivity, then random extras.
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

func TestVertexClosenessPath(t *testing.T) {
	// Path 0-1-2: distances from 1 sum to 2, from 0 sum to 3. C = n/sum.
	g := gen.Path(3)
	c := VertexCloseness(g)
	if math.Abs(c[1]-3.0/2) > 1e-12 || math.Abs(c[0]-1.0) > 1e-12 {
		t.Fatalf("closeness wrong: %v", c)
	}
	if c[1] <= c[0] {
		t.Fatal("center must beat endpoint")
	}
}

func TestVertexHarmonicStar(t *testing.T) {
	g := gen.Star(5)
	h := VertexHarmonic(g)
	if math.Abs(h[0]-4) > 1e-12 {
		t.Fatalf("center harmonic = %v, want 4", h[0])
	}
	// Leaf: one neighbor at 1, three leaves at 2.
	if math.Abs(h[1]-(1+3*0.5)) > 1e-12 {
		t.Fatalf("leaf harmonic = %v, want 2.5", h[1])
	}
}

func TestGroupValueDefinitions(t *testing.T) {
	g := gen.Path(5)
	// S = {2}: distances 2,1,0,1,2; excluded v=2; sum = 6; GC = 5/6.
	gc := GroupValue(g, []int32{2}, CLOSENESS)
	if math.Abs(gc-5.0/6) > 1e-12 {
		t.Fatalf("GC({2}) = %v, want 5/6", gc)
	}
	gh := GroupValue(g, []int32{2}, HARMONIC)
	want := 1.0 + 1.0 + 0.5 + 0.5
	if math.Abs(gh-want) > 1e-12 {
		t.Fatalf("GH({2}) = %v, want %v", gh, want)
	}
	if GroupValue(g, nil, CLOSENESS) != 0 {
		t.Fatal("empty group value must be 0")
	}
}

func TestGroupValueDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	// S = {0}: v1 at 1, v2,v3 unreachable → n = 4 each for closeness.
	gc := GroupValue(g, []int32{0}, CLOSENESS)
	if math.Abs(gc-4.0/9) > 1e-12 {
		t.Fatalf("GC = %v, want 4/9", gc)
	}
	gh := GroupValue(g, []int32{0}, HARMONIC)
	if math.Abs(gh-1) > 1e-12 {
		t.Fatalf("GH = %v, want 1 (unreachable contributes 0)", gh)
	}
}

// TestLazyMatchesPlain: lazy greedy and plain greedy must select
// identical groups (gains are exactly diminishing for both measures).
func TestLazyMatchesPlain(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 12; trial++ {
		g := randomConnected(r, 12+r.Intn(20), 0.12)
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			plain := Greedy(g, 4, m, Options{})
			lazy := Greedy(g, 4, m, Options{Lazy: true, PrunedBFS: true})
			if len(plain.Group) != len(lazy.Group) {
				t.Fatalf("%v: group sizes differ", m)
			}
			if math.Abs(plain.Value-lazy.Value) > 1e-9 {
				t.Fatalf("%v: plain %v lazy %v (groups %v vs %v)",
					m, plain.Value, lazy.Value, plain.Group, lazy.Group)
			}
			if lazy.GainCalls > plain.GainCalls {
				t.Fatalf("%v: lazy used more gain calls (%d > %d)",
					m, lazy.GainCalls, plain.GainCalls)
			}
		}
	}
}

// TestPrunedGainMatchesFull: both gain evaluators agree on every vertex
// at every prefix of a greedy run.
func TestPrunedGainMatchesFull(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(r, 10+r.Intn(15), 0.15)
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			full := newEngine(g, m, false)
			pruned := newEngine(g, m, true)
			var group []int32
			for round := 0; round < 3; round++ {
				for u := int32(0); u < int32(g.N()); u++ {
					if full.inS[u] {
						continue
					}
					a := full.gainFull(u)
					b := pruned.gainPruned(u)
					if math.Abs(a-b) > 1e-9 {
						t.Fatalf("%v: gain mismatch at u=%d round=%d: full %v pruned %v (group %v, edges %v)",
							m, u, round, a, b, group, g.EdgeList())
					}
				}
				pick := int32(round * 2 % g.N())
				if full.inS[pick] {
					pick = (pick + 1) % int32(g.N())
				}
				full.add(pick)
				pruned.add(pick)
				group = append(group, pick)
			}
		}
	}
}

// TestGainCallCounts reproduces the paper's Example 2 accounting on the
// Fig 1 graph: BaseGC performs k(2n−k+1)/2 = 42 gain evaluations for
// n = 15, k = 3, while the skyline-restricted greedy performs
// k(2r−k+1)/2 = 21 with r = 8.
func TestGainCallCounts(t *testing.T) {
	g := fig1()
	base := Greedy(g, 3, CLOSENESS, Options{})
	if base.GainCalls != 42 {
		t.Fatalf("BaseGC gain calls = %d, want 42", base.GainCalls)
	}
	sky := core.FilterRefineSky(g, core.Options{})
	if len(sky.Skyline) != 8 {
		t.Fatalf("fig1 skyline size = %d, want 8", len(sky.Skyline))
	}
	neisky := Greedy(g, 3, CLOSENESS, Options{Candidates: sky.Skyline})
	if neisky.GainCalls != 21 {
		t.Fatalf("NeiSkyGC (plain) gain calls = %d, want 21", neisky.GainCalls)
	}
}

func fig1() *graph.Graph {
	return graph.FromEdges(15, [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3},
		{0, 4}, {1, 5},
		{4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 4},
		{4, 10}, {5, 11}, {6, 12}, {8, 13}, {9, 14},
	})
}

// TestLemma3Counterexample pins down the counterexample this repository
// found to the paper's Lemma 3/4: for 2-hop (non-adjacent) domination,
// the dominated vertex can have the strictly larger marginal gain. Here
// 2 dominates 0 (they share neighbor 1), yet with S = {3,7} adding 0
// beats adding 2 for both measures, because the proof's claimed equality
// d(v, S∪{u}) = d(u, S∪{v}) fails: 2 sits next to S while 0 is remote.
func TestLemma3Counterexample(t *testing.T) {
	g := graph.FromEdges(9, [][2]int32{
		{0, 1}, {1, 2}, {1, 8}, {2, 3}, {2, 6}, {3, 4},
		{3, 7}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
	})
	if !core.Dominates(g, 2, 0) {
		t.Fatal("precondition: 2 must dominate 0")
	}
	if g.Has(0, 2) {
		t.Fatal("precondition: the counterexample needs non-adjacent domination")
	}
	s := []int32{3, 7}
	gcDominator := GroupValue(g, append(append([]int32{}, s...), 2), CLOSENESS)
	gcDominated := GroupValue(g, append(append([]int32{}, s...), 0), CLOSENESS)
	if gcDominated <= gcDominator {
		t.Fatalf("counterexample vanished: GC with dominated %v vs dominator %v",
			gcDominated, gcDominator)
	}
	ghDominator := GroupValue(g, append(append([]int32{}, s...), 2), HARMONIC)
	ghDominated := GroupValue(g, append(append([]int32{}, s...), 0), HARMONIC)
	if ghDominated <= ghDominator {
		t.Fatalf("harmonic counterexample vanished: %v vs %v", ghDominated, ghDominator)
	}
}

// TestLemma3EdgeConstrained: the lemma's valid form. When the dominator
// is adjacent (edge-constrained domination N[v] ⊆ N[u]), the swap term
// d(v,S∪{u}) − d(u,S∪{v}) is ≤ 1−1 = 0 and the gain inequality holds.
func TestLemma3EdgeConstrained(t *testing.T) {
	r := rng.New(53)
	checked := 0
	for trial := 0; trial < 60 && checked < 80; trial++ {
		g := randomConnected(r, 8+r.Intn(12), 0.2)
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if u == v || !g.Has(u, v) || !g.SubsetClosedInClosed(v, u) {
					continue
				}
				var s []int32
				for w := int32(0); w < n; w++ {
					if w != u && w != v && r.Float64() < 0.2 {
						s = append(s, w)
					}
				}
				gcU := MarginalGain(g, s, u, CLOSENESS)
				gcV := MarginalGain(g, s, v, CLOSENESS)
				if gcU+1e-9 < gcV {
					t.Fatalf("edge-constrained Lemma 3 violated: v=%d u=%d gains %v < %v (S=%v, edges %v)",
						v, u, gcU, gcV, s, g.EdgeList())
				}
				ghU := MarginalGain(g, s, u, HARMONIC)
				ghV := MarginalGain(g, s, v, HARMONIC)
				if ghU+1e-9 < ghV {
					t.Fatalf("edge-constrained Lemma 4 violated: v=%d u=%d gains %v < %v (S=%v, edges %v)",
						v, u, ghU, ghV, s, g.EdgeList())
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no edge-constrained domination pairs found; test vacuous")
	}
}

// TestLemmaSwapComponent: the part of the paper's proof that is valid
// for every domination pair — for w outside {u, v} ∪ S,
// d(w, S∪{u}) ≤ d(w, S∪{v}) whenever v ≤ u.
func TestLemmaSwapComponent(t *testing.T) {
	r := rng.New(59)
	checked := 0
	for trial := 0; trial < 40 && checked < 60; trial++ {
		g := randomConnected(r, 8+r.Intn(10), 0.2)
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if u == v || !core.Dominates(g, u, v) {
					continue
				}
				var s []int32
				for w := int32(0); w < n; w++ {
					if w != u && w != v && r.Float64() < 0.2 {
						s = append(s, w)
					}
				}
				distU := groupDistances(g, append(append([]int32{}, s...), u))
				distV := groupDistances(g, append(append([]int32{}, s...), v))
				for w := int32(0); w < n; w++ {
					if w == u || w == v {
						continue
					}
					du, dv := distU[w], distV[w]
					if dv == -1 {
						continue
					}
					if du == -1 || du > dv {
						t.Fatalf("swap component violated at w=%d: d(w,S∪{u})=%d > d(w,S∪{v})=%d (u=%d v=%d S=%v edges %v)",
							w, du, dv, u, v, s, g.EdgeList())
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("vacuous")
	}
}

func groupDistances(g *graph.Graph, s []int32) []int32 {
	e := newEngine(g, CLOSENESS, false)
	for _, v := range s {
		e.add(v)
	}
	out := make([]int32, g.N())
	copy(out, e.dS)
	return out
}

// TestNeiSkyQualityCloseToBase: restricting greedy to the skyline is a
// heuristic (Lemma 3 fails for 2-hop domination), but on connected
// graphs it should almost always match the unrestricted greedy, and
// never fall far behind. The edge-constrained candidate variant must
// also stay competitive.
func TestNeiSkyQualityCloseToBase(t *testing.T) {
	r := rng.New(67)
	const trials = 12
	equal := 0
	for trial := 0; trial < trials; trial++ {
		g := randomConnected(r, 15+r.Intn(20), 0.12)
		k := 3
		baseC := BaseGC(g, k)
		skyC := NeiSkyGC(g, k)
		if skyC.Value < baseC.Value*0.90 {
			t.Fatalf("NeiSkyGC value %v far below BaseGC %v (groups %v vs %v)",
				skyC.Value, baseC.Value, skyC.Group, baseC.Group)
		}
		if math.Abs(skyC.Value-baseC.Value) < 1e-9 {
			equal++
		}
		baseH := BaseGH(g, k)
		skyH := NeiSkyGH(g, k)
		if skyH.Value < baseH.Value*0.90 {
			t.Fatalf("NeiSkyGH value %v far below BaseGH %v", skyH.Value, baseH.Value)
		}
		candC := CandGC(g, k)
		if candC.Value < baseC.Value*0.95 {
			t.Fatalf("CandGC value %v below BaseGC %v", candC.Value, baseC.Value)
		}
		candH := CandGH(g, k)
		if candH.Value < baseH.Value*0.95 {
			t.Fatalf("CandGH value %v below BaseGH %v", candH.Value, baseH.Value)
		}
	}
	if equal < trials/2 {
		t.Fatalf("NeiSkyGC matched BaseGC in only %d/%d trials", equal, trials)
	}
}

func TestGreedyAgainstExhaustiveSmall(t *testing.T) {
	// Greedy group closeness is (1−1/e)-ish in practice; on tiny graphs
	// verify the greedy choice of k=1 is the exact argmax.
	r := rng.New(71)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(r, 6+r.Intn(8), 0.25)
		res := BaseGC(g, 1)
		best := math.Inf(-1)
		for u := int32(0); u < int32(g.N()); u++ {
			if v := GroupValue(g, []int32{u}, CLOSENESS); v > best {
				best = v
			}
		}
		if math.Abs(res.Value-best) > 1e-9 {
			t.Fatalf("k=1 greedy %v != exhaustive %v", res.Value, best)
		}
	}
}

func TestGreedyKLargerThanCandidates(t *testing.T) {
	g := gen.Path(4)
	res := Greedy(g, 10, CLOSENESS, Options{})
	if len(res.Group) != 4 {
		t.Fatalf("group size = %d, want clamped to 4", len(res.Group))
	}
}

func TestValueTraceMonotoneForCloseness(t *testing.T) {
	// Group closeness strictly improves as the group grows (the distance
	// sum shrinks and n is fixed).
	g := randomConnected(rng.New(83), 20, 0.15)
	res := GreedyPP(g, 5)
	for i := 1; i < len(res.ValueTrace); i++ {
		if res.ValueTrace[i] < res.ValueTrace[i-1]-1e-12 {
			t.Fatalf("closeness trace decreased: %v", res.ValueTrace)
		}
	}
}

func TestNamedWrappers(t *testing.T) {
	g := randomConnected(rng.New(91), 18, 0.2)
	k := 3
	for _, res := range []*Result{
		BaseGC(g, k), GreedyPP(g, k), NeiSkyGC(g, k),
		BaseGH(g, k), GreedyH(g, k), NeiSkyGH(g, k),
	} {
		if len(res.Group) != k {
			t.Fatalf("wrapper returned %d vertices, want %d", len(res.Group), k)
		}
		seen := map[int32]bool{}
		for _, v := range res.Group {
			if seen[v] {
				t.Fatal("duplicate vertex in group")
			}
			seen[v] = true
		}
	}
}

func TestWithSkylineVariants(t *testing.T) {
	g := randomConnected(rng.New(97), 16, 0.2)
	sky := core.FilterRefineSky(g, core.Options{})
	a := NeiSkyGC(g, 3)
	b := NeiSkyGCWithSkyline(g, 3, sky.Skyline)
	if math.Abs(a.Value-b.Value) > 1e-12 {
		t.Fatal("precomputed-skyline variant differs")
	}
	c := NeiSkyGH(g, 3)
	d := NeiSkyGHWithSkyline(g, 3, sky.Skyline)
	if math.Abs(c.Value-d.Value) > 1e-12 {
		t.Fatal("precomputed-skyline GH variant differs")
	}
}

func TestQuickGainsDiminish(t *testing.T) {
	// The lazy-greedy precondition: for a fixed u, gain(u | S) never
	// increases as S grows.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := randomConnected(r, 8+r.Intn(10), 0.2)
		n := int32(g.N())
		u := int32(r.Intn(int(n)))
		var s []int32
		for w := int32(0); w < n; w++ {
			if w != u && r.Float64() < 0.25 {
				s = append(s, w)
			}
		}
		if len(s) == 0 {
			return true
		}
		grow := int32(-1)
		for w := int32(0); w < n; w++ {
			inS := false
			for _, x := range s {
				if x == w {
					inS = true
				}
			}
			if !inS && w != u {
				grow = w
				break
			}
		}
		if grow == -1 {
			return true
		}
		bigger := append(append([]int32{}, s...), grow)
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			small := marginalDelta(g, s, u, m)
			large := marginalDelta(g, bigger, u, m)
			if large > small+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupValueWithOracle: the oracle-based evaluator must agree with
// the BFS evaluator for both measures on random graphs, using PLL as
// the oracle.
func TestGroupValueWithOracle(t *testing.T) {
	r := rng.New(131)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(r, 10+r.Intn(15), 0.15)
		ix := pll.Build(g)
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			for _, s := range [][]int32{{0}, {1, 3}, {0, 2, 5}} {
				bfsVal := GroupValue(g, s, m)
				oracleVal := GroupValueWithOracle(g, ix, s, m)
				if math.Abs(bfsVal-oracleVal) > 1e-9 {
					t.Fatalf("%v S=%v: BFS %v != oracle %v", m, s, bfsVal, oracleVal)
				}
			}
		}
	}
}

func TestGroupValueWithOracleDisconnected(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	ix := pll.Build(g)
	want := GroupValue(g, []int32{0}, CLOSENESS)
	got := GroupValueWithOracle(g, ix, []int32{0}, CLOSENESS)
	if math.Abs(want-got) > 1e-12 {
		t.Fatalf("disconnected: %v vs %v", want, got)
	}
	if GroupValueWithOracle(g, ix, nil, CLOSENESS) != 0 {
		t.Fatal("empty group must be 0")
	}
}

// marginalDelta measures the internal gain quantity (distance-sum
// decrease for closeness, harmonic-sum increase for harmonic) via the
// engine to match what greedy compares.
func marginalDelta(g *graph.Graph, s []int32, u int32, m Measure) float64 {
	e := newEngine(g, m, false)
	for _, v := range s {
		e.add(v)
		e.inS[v] = true
	}
	return e.gainFull(u)
}
