package centrality

import (
	"testing"

	"neisky/internal/dataset"
	"neisky/internal/obs"
)

// TestGreedyPublishesObs pins the greedy engine's observability: stage
// timers for the whole greedy and its batched sweeps, and counters that
// agree with the result's own accounting.
func TestGreedyPublishesObs(t *testing.T) {
	g, err := dataset.Load("karate", 1)
	if err != nil {
		t.Fatal(err)
	}
	old := obs.Swap(obs.New())
	defer obs.Swap(old)
	r := obs.Get()

	res := Greedy(g, 3, CLOSENESS, Options{Lazy: true, PrunedBFS: true, Workers: 1})
	snap := r.Snapshot()

	if snap.Timers["centrality.greedy"].Count != 1 {
		t.Fatalf("centrality.greedy timer = %+v", snap.Timers["centrality.greedy"])
	}
	if snap.Timers["centrality.sweep"].Count == 0 {
		t.Fatal("lazy cold-start sweep left no centrality.sweep span")
	}
	if got := snap.Counters["centrality.gain_calls"]; got != int64(res.GainCalls) {
		t.Fatalf("centrality.gain_calls = %d, want %d", got, res.GainCalls)
	}
	if got := snap.Counters["centrality.rounds"]; got != int64(len(res.Group)) {
		t.Fatalf("centrality.rounds = %d, want %d", got, len(res.Group))
	}
	// The cold first round is batched; rounds ≥ 1 re-evaluate lazily
	// through the pruned scalar engine, which reports to bfs.pruned.*.
	reevals := snap.Counters["centrality.lazy.reevals"]
	if reevals <= 0 {
		t.Fatalf("centrality.lazy.reevals = %d, want > 0 on karate k=3", reevals)
	}
	if snap.Counters["bfs.pruned.runs"] < reevals {
		t.Fatalf("bfs.pruned.runs = %d < reevals %d", snap.Counters["bfs.pruned.runs"], reevals)
	}
	if snap.Counters["bfs.batch.runs"] == 0 {
		t.Fatal("batched sweep reported no bfs.batch.runs")
	}

	// Scalar plain greedy: no batch traffic, full-BFS gain calls.
	r.Reset()
	res = Greedy(g, 2, HARMONIC, Options{DisableBatchBFS: true})
	snap = r.Snapshot()
	if snap.Counters["bfs.batch.runs"] != 0 {
		t.Fatalf("scalar path used the batch engine %d times", snap.Counters["bfs.batch.runs"])
	}
	if got := snap.Counters["bfs.runs"]; got != int64(res.GainCalls) {
		t.Fatalf("bfs.runs = %d, want one full BFS per gain call (%d)", got, res.GainCalls)
	}
}
