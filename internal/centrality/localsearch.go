package centrality

import (
	"neisky/internal/graph"
)

// Local search post-optimization for group centrality, after Angriman
// et al.'s local-search approach to group closeness (the paper's
// reference [39]): starting from a feasible group (typically the greedy
// solution), repeatedly apply the best improving swap (remove one
// member, add one outsider) until no swap improves the objective or the
// iteration budget runs out.

// LocalSearchOptions tunes LocalSearchImprove.
type LocalSearchOptions struct {
	// Candidates restricts which outside vertices may be swapped in
	// (nil = all). Pairing this with the neighborhood skyline carries
	// the paper's pruning idea over to local search.
	Candidates []int32
	// MaxIters caps the number of accepted swaps (0 = n).
	MaxIters int
	// FirstImprovement accepts the first improving swap instead of the
	// best one (faster, usually similar quality).
	FirstImprovement bool
}

// LocalSearchResult reports the outcome.
type LocalSearchResult struct {
	Group []int32
	Value float64
	Swaps int
	Evals int // group-value evaluations performed
}

// LocalSearchImprove refines a group in place. The objective is the
// exact group centrality (multi-source BFS per evaluation), so this is
// intended as a polish step for moderate k and n.
func LocalSearchImprove(g *graph.Graph, group []int32, m Measure, opts LocalSearchOptions) *LocalSearchResult {
	res := &LocalSearchResult{Group: append([]int32{}, group...)}
	if len(group) == 0 {
		return res
	}
	n := g.N()
	inS := make([]bool, n)
	for _, v := range res.Group {
		inS[v] = true
	}
	cands := opts.Candidates
	if cands == nil {
		cands = make([]int32, n)
		for i := range cands {
			cands[i] = int32(i)
		}
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = n
	}

	value := GroupValue(g, res.Group, m)
	res.Evals++
	for iter := 0; iter < maxIters; iter++ {
		bestVal := value
		bestOut, bestIn := -1, int32(-1)
		trial := make([]int32, len(res.Group))
	search:
		for oi := range res.Group {
			for _, in := range cands {
				if inS[in] {
					continue
				}
				copy(trial, res.Group)
				trial[oi] = in
				v := GroupValue(g, trial, m)
				res.Evals++
				if v > bestVal+1e-12 {
					bestVal, bestOut, bestIn = v, oi, in
					if opts.FirstImprovement {
						break search
					}
				}
			}
		}
		if bestOut == -1 {
			break // local optimum
		}
		inS[res.Group[bestOut]] = false
		inS[bestIn] = true
		res.Group[bestOut] = bestIn
		value = bestVal
		res.Swaps++
	}
	res.Value = value
	return res
}
