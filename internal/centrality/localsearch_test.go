package centrality

import (
	"math"
	"testing"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/rng"
)

func TestLocalSearchNeverWorsens(t *testing.T) {
	r := rng.New(171)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(r, 14+r.Intn(12), 0.15)
		for _, m := range []Measure{CLOSENESS, HARMONIC} {
			greedy := Greedy(g, 3, m, Options{Lazy: true, PrunedBFS: true})
			ls := LocalSearchImprove(g, greedy.Group, m, LocalSearchOptions{})
			if ls.Value+1e-9 < greedy.Value {
				t.Fatalf("%v: local search worsened %v -> %v", m, greedy.Value, ls.Value)
			}
			if len(ls.Group) != len(greedy.Group) {
				t.Fatal("group size changed")
			}
			seen := map[int32]bool{}
			for _, v := range ls.Group {
				if seen[v] {
					t.Fatal("duplicate after swap")
				}
				seen[v] = true
			}
		}
	}
}

func TestLocalSearchFixesBadStart(t *testing.T) {
	// Star: the optimal 1-group is the center; start from a leaf.
	g := gen.Star(8)
	ls := LocalSearchImprove(g, []int32{3}, CLOSENESS, LocalSearchOptions{})
	if len(ls.Group) != 1 || ls.Group[0] != 0 {
		t.Fatalf("local search should find the center: %v", ls.Group)
	}
	if ls.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", ls.Swaps)
	}
}

func TestLocalSearchCandidateRestriction(t *testing.T) {
	g := randomConnected(rng.New(31), 20, 0.2)
	sky := core.FilterRefineSky(g, core.Options{})
	start := Greedy(g, 3, CLOSENESS, Options{Candidates: sky.Skyline, Lazy: true, PrunedBFS: true})
	ls := LocalSearchImprove(g, start.Group, CLOSENESS,
		LocalSearchOptions{Candidates: sky.Skyline})
	inSky := core.SkylineSet(core.FilterRefineSky(g, core.Options{}), g.N())
	for _, v := range ls.Group {
		if !inSky[v] {
			t.Fatalf("restricted search escaped the skyline: %d", v)
		}
	}
	if ls.Value+1e-9 < start.Value {
		t.Fatal("restricted local search worsened the start")
	}
}

func TestLocalSearchFirstImprovement(t *testing.T) {
	g := randomConnected(rng.New(41), 18, 0.2)
	start := []int32{0, 1}
	best := LocalSearchImprove(g, start, HARMONIC, LocalSearchOptions{})
	first := LocalSearchImprove(g, start, HARMONIC, LocalSearchOptions{FirstImprovement: true})
	// Both must be local optima at least as good as the start.
	base := GroupValue(g, start, HARMONIC)
	if best.Value < base-1e-9 || first.Value < base-1e-9 {
		t.Fatal("local search below start value")
	}
	if first.Evals > best.Evals {
		// First-improvement does at most the evals of best-improvement
		// per accepted swap; over a whole run it can differ, but it
		// should not be wildly larger on these sizes.
		if float64(first.Evals) > 3*float64(best.Evals) {
			t.Fatalf("first-improvement evals exploded: %d vs %d", first.Evals, best.Evals)
		}
	}
}

func TestLocalSearchEmptyGroup(t *testing.T) {
	g := gen.Path(5)
	ls := LocalSearchImprove(g, nil, CLOSENESS, LocalSearchOptions{})
	if len(ls.Group) != 0 || ls.Swaps != 0 {
		t.Fatal("empty group must be a no-op")
	}
}

func TestLocalSearchReachesOptimumSmall(t *testing.T) {
	// k=1 on a small graph: local search from any start must reach the
	// global optimum (single-swap neighborhood covers all singletons).
	r := rng.New(51)
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(r, 8+r.Intn(8), 0.25)
		best := math.Inf(-1)
		for u := int32(0); u < int32(g.N()); u++ {
			if v := GroupValue(g, []int32{u}, CLOSENESS); v > best {
				best = v
			}
		}
		ls := LocalSearchImprove(g, []int32{0}, CLOSENESS, LocalSearchOptions{})
		if math.Abs(ls.Value-best) > 1e-9 {
			t.Fatalf("k=1 local search %v != optimum %v", ls.Value, best)
		}
	}
}
