package centrality

import (
	"context"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/runctl/faultinject"
	"neisky/internal/testleak"
)

func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// TestGreedyCtxCancelIsTrueArgmaxPrefix cancels the greedy mid-sweep
// and asserts the anytime contract: the committed group is an exact
// prefix of the uncancelled greedy's group (rounds interrupted mid-
// sweep are abandoned, never committed on partial information).
func TestGreedyCtxCancelIsTrueArgmaxPrefix(t *testing.T) {
	g := gen.PowerLaw(1200, 4800, 2.3, 41)
	const k = 8
	full := Greedy(g, k, CLOSENESS, Options{})

	defer cancelAtSeq(40)()
	res := GreedyCtx(context.Background(), g, k, CLOSENESS, Options{})
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if len(res.Group) >= k {
		t.Fatal("truncated run committed a full group")
	}
	for i, v := range res.Group {
		if full.Group[i] != v {
			t.Fatalf("member %d = %d, want the full greedy's pick %d (not a true-argmax prefix)",
				i, v, full.Group[i])
		}
	}
}

// TestGreedyCtxCancelParallelNoLeak cancels the batched parallel engine
// mid-run under -race and checks worker hygiene.
func TestGreedyCtxCancelParallelNoLeak(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(2000, 8000, 2.3, 42)

	defer cancelAtSeq(3)()
	res := GreedyCtx(context.Background(), g, 5, CLOSENESS,
		Options{Lazy: true, PrunedBFS: true, Workers: 4})
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
}

// TestVertexClosenessCtxCancelled asserts the whole-graph sweeps report
// cancellation as an error instead of returning silently-wrong scores.
func TestVertexClosenessCtxCancelled(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(3000, 12000, 2.3, 43)
	defer cancelAtSeq(1)()
	if _, err := VertexClosenessCtx(context.Background(), g, 4); err == nil {
		t.Fatal("expected a cancellation error")
	}
	if _, err := VertexHarmonicCtx(context.Background(), g, 4); err == nil {
		t.Fatal("expected a cancellation error")
	}
}

// TestGreedyCtxMatchesPlainOnLiveContext pins zero drift on the full
// engineered configuration when the context never fires.
func TestGreedyCtxMatchesPlainOnLiveContext(t *testing.T) {
	g := gen.PowerLaw(1000, 4000, 2.3, 44)
	opts := Options{Lazy: true, PrunedBFS: true, Workers: 2}
	want := Greedy(g, 5, HARMONIC, opts)
	got := GreedyCtx(context.Background(), g, 5, HARMONIC, opts)
	if got.Truncated || got.Err != nil {
		t.Fatalf("spurious truncation: %v", got.Err)
	}
	if len(got.Group) != len(want.Group) || got.Value != want.Value {
		t.Fatalf("drift: got %v/%v want %v/%v", got.Group, got.Value, want.Group, want.Value)
	}
}
