// Package centrality implements the paper's two group-centrality
// applications: group closeness maximization (GCM, §IV-A) and group
// harmonic maximization (GHM, §IV-B).
//
// A single greedy engine powers four paper algorithms:
//
//   - BaseGC / BaseGH — plain greedy: every round re-evaluates the
//     marginal gain of every remaining candidate with a full BFS.
//   - GreedyPP / GreedyH — the engineered greedy in the spirit of
//     Greedy++ (Bergamini et al.) and Greedy-H (Angriman et al.): lazy
//     evaluation via a max-heap of stale upper bounds plus pruned
//     incremental BFS for each gain evaluation.
//   - NeiSkyGC / NeiSkyGH — Algorithm 4: the same engineered greedy with
//     the candidate pool restricted to the neighborhood skyline
//     (Lemmas 3–4 guarantee a dominating vertex always offers at least
//     the dominated vertex's gain).
//
// Distances follow the paper's definitions; unreachable pairs use the
// standard conventions d = n for closeness (finite penalty) and 1/∞ = 0
// for harmonic.
//
// Gain sweeps that evaluate many candidates at once — the plain greedy's
// per-round full sweep, the lazy greedy's cold first round, and the
// whole-graph vertex centralities — run on the bit-parallel multi-source
// BFS engine (internal/bfs.Batch): 64 candidates per traversal, sharded
// across Options.Workers goroutines (batch.go). Options.DisableBatchBFS
// restores the scalar one-BFS-per-candidate path for ablation; both
// paths select identical groups.
package centrality

import (
	"container/heap"
	"context"
	"math"

	"neisky/internal/bfs"
	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// Measure selects the group centrality being maximized.
type Measure int

const (
	// CLOSENESS is GC(S) = n / Σ_{v∉S} d(v, S)   (Definition 7).
	CLOSENESS Measure = iota
	// HARMONIC is GH(S) = Σ_{v∉S} 1 / d(v, S)    (Definition 9).
	HARMONIC
)

func (m Measure) String() string {
	if m == CLOSENESS {
		return "closeness"
	}
	return "harmonic"
}

// Options configures the greedy engine.
type Options struct {
	// Candidates restricts the pool of vertices eligible for selection;
	// nil means all vertices.
	Candidates []int32
	// Lazy enables lazy (priority-queue) gain evaluation.
	Lazy bool
	// PrunedBFS evaluates gains with bound-pruned BFS instead of full
	// BFS.
	PrunedBFS bool
	// Workers is the goroutine count for the batched (BatchBFS) gain
	// sweeps; 0 means GOMAXPROCS. Results are deterministic regardless
	// of the worker count.
	Workers int
	// DisableBatchBFS is the ablation flag for the bit-parallel MS-BFS
	// sweeps: by default the plain greedy's full sweeps and the lazy
	// greedy's cold first round evaluate candidates in batches of 64
	// sources per traversal; setting this keeps the scalar
	// one-BFS-per-candidate path everywhere.
	DisableBatchBFS bool
}

// Result reports the selected group and bookkeeping counters.
type Result struct {
	Group []int32 // selected vertices, in pick order
	Value float64 // final group centrality of Group
	// GainCalls counts marginal-gain evaluations, the quantity the
	// paper's Example 2 compares (42 vs 21 on the Fig 1 graph, k=3).
	GainCalls int
	// ValueTrace[i] is the group value after i+1 picks.
	ValueTrace []float64
	// Truncated marks a best-effort partial result: the run was
	// cancelled mid-greedy and Group is the prefix built so far. Every
	// committed member was a true argmax pick at its round, so the
	// prefix is exactly what the uncancelled greedy would have chosen
	// first; only the tail is missing. Err carries the cause.
	Truncated bool
	// Err is the cancellation cause, or a *runctl.PanicError when a
	// sweep worker panicked; nil for a complete result.
	Err error
}

// VertexCloseness computes C(u) = n / Σ_{v≠u} d(v,u) for every vertex
// (Definition 6), with the d = n convention for unreachable pairs.
// Runs as a bit-parallel MS-BFS sweep (64 sources per traversal) across
// GOMAXPROCS workers; use VertexClosenessWorkers to pin the parallelism
// or VertexClosenessScalar for the one-BFS-per-vertex ablation.
func VertexCloseness(g *graph.Graph) []float64 { return VertexClosenessWorkers(g, 0) }

// VertexClosenessWorkers is VertexCloseness with an explicit worker
// count (0 = GOMAXPROCS).
func VertexClosenessWorkers(g *graph.Graph, workers int) []float64 {
	n := g.N()
	out := make([]float64, n)
	sweepSums(g, workers, func(v int32, sumD int64, _ float64, reached int32) {
		// reached includes v itself (at distance 0); the n − reached
		// unreachable vertices pay the d = n penalty.
		sum := sumD + int64(n)*int64(n-int(reached))
		if sum > 0 {
			out[v] = float64(n) / float64(sum)
		}
	})
	return out
}

// VertexClosenessCtx is VertexClosenessWorkers under a context. On
// cancellation it returns the scores folded so far (unswept vertices
// read 0) together with the cancellation cause; a recovered sweep-worker
// panic is returned as a *runctl.PanicError instead of re-raised.
func VertexClosenessCtx(ctx context.Context, g *graph.Graph, workers int) ([]float64, error) {
	run := runctl.FromContext(ctx)
	defer run.Release()
	n := g.N()
	out := make([]float64, n)
	err := sweepSumsRun(run, g, workers, func(v int32, sumD int64, _ float64, reached int32) {
		sum := sumD + int64(n)*int64(n-int(reached))
		if sum > 0 {
			out[v] = float64(n) / float64(sum)
		}
	})
	if err == nil {
		err = run.Err()
	}
	return out, err
}

// VertexClosenessScalar is the scalar oracle: one full BFS per vertex.
func VertexClosenessScalar(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	trav := bfs.New(g)
	for u := 0; u < n; u++ {
		dist := trav.From(int32(u))
		sum := 0.0
		for v, d := range dist {
			if v == u {
				continue
			}
			if d == bfs.Unreached {
				sum += float64(n)
			} else {
				sum += float64(d)
			}
		}
		if sum > 0 {
			out[u] = float64(n) / sum
		}
	}
	return out
}

// VertexHarmonic computes H(u) = Σ_{v≠u} 1/d(v,u) (Definition 8) with
// the same batched sweep as VertexCloseness.
func VertexHarmonic(g *graph.Graph) []float64 { return VertexHarmonicWorkers(g, 0) }

// VertexHarmonicWorkers is VertexHarmonic with an explicit worker count
// (0 = GOMAXPROCS).
func VertexHarmonicWorkers(g *graph.Graph, workers int) []float64 {
	out := make([]float64, g.N())
	sweepSums(g, workers, func(v int32, _ int64, sumInv float64, _ int32) {
		out[v] = sumInv
	})
	return out
}

// VertexHarmonicCtx is VertexHarmonicWorkers under a context, with the
// same partial-result semantics as VertexClosenessCtx.
func VertexHarmonicCtx(ctx context.Context, g *graph.Graph, workers int) ([]float64, error) {
	run := runctl.FromContext(ctx)
	defer run.Release()
	out := make([]float64, g.N())
	err := sweepSumsRun(run, g, workers, func(v int32, _ int64, sumInv float64, _ int32) {
		out[v] = sumInv
	})
	if err == nil {
		err = run.Err()
	}
	return out, err
}

// VertexHarmonicScalar is the scalar oracle: one full BFS per vertex.
func VertexHarmonicScalar(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	trav := bfs.New(g)
	for u := 0; u < n; u++ {
		dist := trav.From(int32(u))
		sum := 0.0
		for v, d := range dist {
			if v == u || d == bfs.Unreached {
				continue
			}
			sum += 1 / float64(d)
		}
		out[u] = sum
	}
	return out
}

// GroupValue evaluates GC(S) or GH(S) exactly with one multi-source BFS.
// Group members are exactly the vertices at distance 0, so no membership
// array is materialized. (The greedy engine itself never calls this per
// round: it derives values incrementally from its committed distance
// vector, see engine.value.)
func GroupValue(g *graph.Graph, s []int32, m Measure) float64 {
	if len(s) == 0 {
		return 0
	}
	n := g.N()
	dist := bfs.New(g).FromSet(s)
	return valueFromDistances(n, dist, m)
}

// valueFromDistances folds a committed d(·, S) vector into GC/GH, with
// members excluded via their d = 0 entries.
func valueFromDistances(n int, dist []int32, m Measure) float64 {
	switch m {
	case CLOSENESS:
		sum := 0.0
		for _, d := range dist {
			if d == 0 {
				continue
			}
			if d == bfs.Unreached {
				sum += float64(n)
			} else {
				sum += float64(d)
			}
		}
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(n) / sum
	default:
		sum := 0.0
		for _, d := range dist {
			if d == 0 || d == bfs.Unreached {
				continue
			}
			sum += 1 / float64(d)
		}
		return sum
	}
}

// engine holds the incremental greedy state.
type engine struct {
	g       *graph.Graph
	trav    *bfs.Traversal
	pool    *bfs.BatchPool // lazily created; scratch for batched sweeps
	measure Measure
	dS      []int32 // d(v, S); Unreached for S = ∅ or off-component
	inS     []bool
	n       int
	sSize   int // |S|
	pruned  bool
	calls   int
	reevals int // lazy-queue stale-bound re-evaluations

	run    *runctl.Run // cancellation token; nil when disabled
	failed error       // first sweep-worker panic, surfaced in Result.Err
}

// stopped reports whether the greedy should abandon further rounds:
// cancelled run or a failed sweep.
func (e *engine) stopped() bool {
	return e.failed != nil || e.run.Stopped()
}

// fail records the first sweep failure (caller goroutine only).
func (e *engine) fail(err error) {
	if e.failed == nil {
		e.failed = err
	}
}

func newEngine(g *graph.Graph, m Measure, pruned bool) *engine {
	n := g.N()
	dS := make([]int32, n)
	for i := range dS {
		dS[i] = bfs.Unreached
	}
	return &engine{
		g:       g,
		trav:    bfs.New(g),
		measure: m,
		dS:      dS,
		inS:     make([]bool, n),
		n:       n,
		pruned:  pruned,
	}
}

// effClose maps a distance to its closeness contribution (n-penalty for
// unreachable).
func (e *engine) effClose(d int32) float64 {
	if d == bfs.Unreached {
		return float64(e.n)
	}
	return float64(d)
}

// effHarm maps a distance to its harmonic contribution.
func effHarm(d int32) float64 {
	if d == bfs.Unreached || d == 0 {
		return 0
	}
	return 1 / float64(d)
}

// gain evaluates the marginal gain of adding u to the current group:
// the decrease of Σ eff-distances for closeness, or the increase of
// Σ 1/d for harmonic. Larger is always better for both measures.
func (e *engine) gain(u int32) float64 {
	e.calls++
	if e.pruned {
		return e.gainPruned(u)
	}
	return e.gainFull(u)
}

func (e *engine) gainFull(u int32) float64 {
	dist := e.trav.From(u)
	total := 0.0
	for v := 0; v < e.n; v++ {
		if e.inS[v] {
			continue
		}
		old := e.dS[v]
		nu := dist[v]
		if nu == bfs.Unreached || (old != bfs.Unreached && old <= nu) {
			nu = old
		}
		if int32(v) == u {
			nu = 0
		}
		switch e.measure {
		case CLOSENESS:
			total += e.effClose(old) - e.effClose(nu)
		default:
			if int32(v) == u {
				total -= effHarm(old)
			} else {
				total += effHarm(nu) - effHarm(old)
			}
		}
	}
	return total
}

func (e *engine) gainPruned(u int32) float64 {
	total := 0.0
	e.trav.Pruned(u, e.dS, func(v int32, old, nu int32) {
		switch e.measure {
		case CLOSENESS:
			total += e.effClose(old) - float64(nu)
		default:
			if v == u {
				total -= effHarm(old)
			} else {
				total += effHarm(nu) - effHarm(old)
			}
		}
	})
	return total
}

// add commits u to the group, updating dS with a pruned BFS (the pruning
// argument shows every improved vertex is reached).
func (e *engine) add(u int32) {
	e.inS[u] = true
	e.sSize++
	e.trav.Pruned(u, e.dS, func(v int32, old, nu int32) {
		e.dS[v] = nu
	})
	e.dS[u] = 0
}

// value derives the current group value from the committed dS vector —
// no BFS. It matches GroupValue(g, S, measure) exactly: both fold the
// same distances in the same vertex order.
func (e *engine) value() float64 {
	if e.sSize == 0 {
		return 0
	}
	return valueFromDistances(e.n, e.dS, e.measure)
}

// item is a heap entry for lazy greedy: a cached gain upper bound.
type item struct {
	v     int32
	bound float64
	round int // round when bound was computed
}

type gainHeap []item

func (h gainHeap) Len() int      { return len(h) }
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h gainHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	return h[i].v < h[j].v
}
func (h *gainHeap) Push(x any) { *h = append(*h, x.(item)) }
func (h *gainHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Greedy runs the greedy group-centrality maximization for the given
// measure. It returns the best group of size min(k, |candidates|).
func Greedy(g *graph.Graph, k int, m Measure, opts Options) *Result {
	return greedyRun(nil, g, k, m, opts)
}

// GreedyCtx is Greedy under a context. On cancellation the returned
// Group is the greedy prefix committed so far (each member was a true
// argmax pick), with Truncated/Err set.
func GreedyCtx(ctx context.Context, g *graph.Graph, k int, m Measure, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return greedyRun(run, g, k, m, opts)
}

func greedyRun(run *runctl.Run, g *graph.Graph, k int, m Measure, opts Options) *Result {
	r := obs.Get()
	defer r.Start("centrality.greedy").End()
	e := newEngine(g, m, opts.PrunedBFS)
	e.run = run
	e.trav.SetRun(run)
	cands := opts.Candidates
	if cands == nil {
		cands = make([]int32, g.N())
		for i := range cands {
			cands[i] = int32(i)
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	res := &Result{}
	if opts.Lazy {
		greedyLazy(e, cands, k, res, opts)
	} else {
		greedyPlain(e, cands, k, res, opts)
	}
	res.GainCalls = e.calls
	if n := len(res.ValueTrace); n > 0 {
		res.Value = res.ValueTrace[n-1]
	}
	if e.stopped() && len(res.Group) < k {
		res.Truncated = true
		res.Err = run.Err()
		if e.failed != nil {
			res.Err = e.failed
		}
	}
	if r != nil {
		r.Add("centrality.rounds", int64(len(res.Group)))
		r.Add("centrality.gain_calls", int64(e.calls))
		r.Add("centrality.lazy.reevals", int64(e.reevals))
	}
	return res
}

// commit adds u to the group and extends the value trace from the
// engine's committed distances (no per-round BFS re-evaluation).
func commit(e *engine, res *Result, u int32) {
	e.add(u)
	res.Group = append(res.Group, u)
	res.ValueTrace = append(res.ValueTrace, e.value())
}

func greedyPlain(e *engine, cands []int32, k int, res *Result, opts Options) {
	picked := make([]bool, e.n)
	if !opts.DisableBatchBFS {
		greedyPlainBatch(e, cands, k, res, picked, opts.Workers)
		return
	}
	for round := 0; round < k; round++ {
		bestV := int32(-1)
		bestGain := math.Inf(-1)
		for _, u := range cands {
			if picked[u] {
				continue
			}
			gn := e.gain(u)
			if e.stopped() {
				// Partial sweep: committing its argmax would break the
				// greedy-prefix contract, so abandon the round.
				return
			}
			if gn > bestGain || (gn == bestGain && bestV != -1 && u < bestV) {
				bestGain = gn
				bestV = u
			}
		}
		if bestV == -1 {
			break
		}
		picked[bestV] = true
		commit(e, res, bestV)
	}
}

// greedyPlainBatch is the plain greedy with every round's full candidate
// sweep evaluated by the bit-parallel MS-BFS engine. Gain accounting and
// tie-breaking (max gain, then smallest ID in candidate order) match the
// scalar path exactly; closeness gains are even bit-identical.
func greedyPlainBatch(e *engine, cands []int32, k int, res *Result, picked []bool, workers int) {
	srcs := make([]int32, 0, len(cands))
	gains := make([]float64, len(cands))
	for round := 0; round < k; round++ {
		srcs = srcs[:0]
		for _, u := range cands {
			if !picked[u] {
				srcs = append(srcs, u)
			}
		}
		if len(srcs) == 0 {
			break
		}
		e.batchGains(srcs, gains[:len(srcs)], workers)
		e.calls += len(srcs)
		if e.stopped() {
			return // partial sweep; see greedyPlain
		}
		bestV := int32(-1)
		bestGain := math.Inf(-1)
		for i, u := range srcs {
			gn := gains[i]
			if gn > bestGain || (gn == bestGain && bestV != -1 && u < bestV) {
				bestGain = gn
				bestV = u
			}
		}
		picked[bestV] = true
		commit(e, res, bestV)
	}
}

func greedyLazy(e *engine, cands []int32, k int, res *Result, opts Options) {
	h := make(gainHeap, 0, len(cands))
	if !opts.DisableBatchBFS && len(cands) > 0 {
		// Cold first round: every candidate must be evaluated against
		// S = ∅ anyway (all cached bounds start at +∞), so compute the
		// whole round-0 sweep bit-parallel and seed the heap with fresh
		// bounds. Gain-call accounting matches the scalar path, which
		// also refreshes every entry once in round 0.
		gains := make([]float64, len(cands))
		e.batchGains(cands, gains, opts.Workers)
		e.calls += len(cands)
		if e.stopped() {
			return // cold sweep incomplete; no sound bounds to seed
		}
		for i, u := range cands {
			h = append(h, item{v: u, bound: gains[i], round: 0})
		}
	} else {
		for _, u := range cands {
			h = append(h, item{v: u, bound: math.Inf(1), round: -1})
		}
	}
	heap.Init(&h)
	picked := make([]bool, e.n)
	for round := 0; round < k && h.Len() > 0; round++ {
		for {
			if e.stopped() {
				return
			}
			top := h[0]
			if picked[top.v] {
				heap.Pop(&h)
				if h.Len() == 0 {
					return
				}
				continue
			}
			if top.round == round {
				// Fresh bound: gains only shrink as S grows, so the
				// top fresh entry is the true argmax.
				heap.Pop(&h)
				picked[top.v] = true
				commit(e, res, top.v)
				break
			}
			heap.Pop(&h)
			e.reevals++
			top.bound = e.gain(top.v)
			top.round = round
			heap.Push(&h, top)
		}
	}
}

// BaseGC is the paper's plain greedy for group closeness maximization:
// full-BFS gain evaluation for every remaining vertex every round
// (k(2n−k+1)/2 gain calls).
func BaseGC(g *graph.Graph, k int) *Result {
	return Greedy(g, k, CLOSENESS, Options{})
}

// GreedyPP is the engineered Greedy++-style solver: lazy evaluation and
// pruned incremental BFS over all vertices.
func GreedyPP(g *graph.Graph, k int) *Result {
	return Greedy(g, k, CLOSENESS, Options{Lazy: true, PrunedBFS: true})
}

// NeiSkyGC is Algorithm 4: the engineered greedy restricted to the
// neighborhood skyline.
func NeiSkyGC(g *graph.Graph, k int) *Result {
	sky := core.FilterRefineSky(g, core.Options{})
	return Greedy(g, k, CLOSENESS, Options{Candidates: sky.Skyline, Lazy: true, PrunedBFS: true})
}

// NeiSkyGCWithSkyline is NeiSkyGC with a precomputed skyline, so
// benchmarks can separate skyline time from greedy time.
func NeiSkyGCWithSkyline(g *graph.Graph, k int, skyline []int32) *Result {
	return Greedy(g, k, CLOSENESS, Options{Candidates: skyline, Lazy: true, PrunedBFS: true})
}

// BaseGH is the plain greedy for group harmonic maximization.
func BaseGH(g *graph.Graph, k int) *Result {
	return Greedy(g, k, HARMONIC, Options{})
}

// GreedyH is the engineered Greedy-H-style solver for group harmonic.
func GreedyH(g *graph.Graph, k int) *Result {
	return Greedy(g, k, HARMONIC, Options{Lazy: true, PrunedBFS: true})
}

// NeiSkyGH is the skyline-pruned group harmonic solver (§IV-B.2).
func NeiSkyGH(g *graph.Graph, k int) *Result {
	sky := core.FilterRefineSky(g, core.Options{})
	return Greedy(g, k, HARMONIC, Options{Candidates: sky.Skyline, Lazy: true, PrunedBFS: true})
}

// NeiSkyGHWithSkyline is NeiSkyGH with a precomputed skyline.
func NeiSkyGHWithSkyline(g *graph.Graph, k int, skyline []int32) *Result {
	return Greedy(g, k, HARMONIC, Options{Candidates: skyline, Lazy: true, PrunedBFS: true})
}

// CandGC restricts the greedy to the edge-constrained candidate set C
// instead of the skyline R. This is the provably safe variant: the
// paper's Lemma 3 is false for 2-hop domination (see the counterexample
// in the tests and DESIGN.md §3.7) but holds when the dominator is
// adjacent — exactly the relation the filter phase prunes by — so
// restricting to C never loses a greedy-optimal pick, while R may.
func CandGC(g *graph.Graph, k int) *Result {
	c := core.FilterCandidates(g, core.Options{})
	return Greedy(g, k, CLOSENESS, Options{Candidates: c, Lazy: true, PrunedBFS: true})
}

// CandGH is the edge-constrained-candidate variant for group harmonic.
func CandGH(g *graph.Graph, k int) *Result {
	c := core.FilterCandidates(g, core.Options{})
	return Greedy(g, k, HARMONIC, Options{Candidates: c, Lazy: true, PrunedBFS: true})
}

// DistanceOracle abstracts an exact distance index (e.g. pruned
// landmark labeling); Query must return -1 for disconnected pairs.
type DistanceOracle interface {
	Query(u, v int32) int32
}

// GroupValueWithOracle evaluates GC(S)/GH(S) through a distance oracle
// instead of a multi-source BFS: d(v,S) = min_{s∈S} Query(v,s). Useful
// when many different groups are evaluated against one prebuilt index.
func GroupValueWithOracle(g *graph.Graph, oracle DistanceOracle, s []int32, m Measure) float64 {
	if len(s) == 0 {
		return 0
	}
	n := g.N()
	inS := make([]bool, n)
	for _, v := range s {
		inS[v] = true
	}
	sum := 0.0
	for v := int32(0); v < int32(n); v++ {
		if inS[v] {
			continue
		}
		best := int32(-1)
		for _, src := range s {
			d := oracle.Query(v, src)
			if d >= 0 && (best == -1 || d < best) {
				best = d
			}
		}
		switch m {
		case CLOSENESS:
			if best == -1 {
				sum += float64(n)
			} else {
				sum += float64(best)
			}
		default:
			if best > 0 {
				sum += 1 / float64(best)
			}
		}
	}
	if m == CLOSENESS {
		if sum == 0 {
			return math.Inf(1)
		}
		return float64(n) / sum
	}
	return sum
}

// MarginalGain exposes one exact marginal-gain evaluation against an
// explicit group, used by the Lemma 3/4 property tests:
// value(S ∪ {u}) − value(S).
func MarginalGain(g *graph.Graph, s []int32, u int32, m Measure) float64 {
	withU := append(append([]int32{}, s...), u)
	return GroupValue(g, withU, m) - GroupValue(g, s, m)
}
