package twins

import (
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

func TestAreTwins(t *testing.T) {
	// Star: leaves are pairwise false twins; center is nobody's twin.
	g := gen.Star(5)
	if !AreTwins(g, 1, 2) || !AreTwins(g, 3, 4) {
		t.Fatal("star leaves must be twins")
	}
	if AreTwins(g, 0, 1) {
		t.Fatal("center is not a leaf's twin")
	}
	if AreTwins(g, 2, 2) {
		t.Fatal("no self twins")
	}
	// Clique: all true twins.
	k := gen.Clique(4)
	if !AreTwins(k, 0, 3) {
		t.Fatal("clique members must be true twins")
	}
	// Path endpoints of P3 are false twins (share the middle).
	p := gen.Path(3)
	if !AreTwins(p, 0, 2) || AreTwins(p, 0, 1) {
		t.Fatal("P3 twins wrong")
	}
}

func TestClassesStarAndClique(t *testing.T) {
	star := Classes(gen.Star(5))
	// Two classes: {0} and the 4 leaves.
	if len(star) != 2 || len(star[1]) != 4 {
		t.Fatalf("star classes = %v", star)
	}
	k := Classes(gen.Clique(6))
	if len(k) != 1 || len(k[0]) != 6 {
		t.Fatalf("clique classes = %v", k)
	}
	// A path P4 has no twins.
	p := Classes(gen.Path(4))
	if len(p) != 4 {
		t.Fatalf("P4 classes = %v", p)
	}
}

func TestClassesPairwiseValid(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 3+r.Intn(15), 0.3)
		for _, class := range Classes(g) {
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					if !AreTwins(g, class[i], class[j]) {
						t.Fatalf("class %v not pairwise twins at (%d,%d) (edges %v)",
							class, class[i], class[j], g.EdgeList())
					}
				}
			}
		}
	}
}

func TestClassesCoverEveryTwinPair(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 3+r.Intn(12), 0.35)
		classes := Classes(g)
		classOf := make(map[int32]int)
		for ci, members := range classes {
			for _, v := range members {
				classOf[v] = ci
			}
		}
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if AreTwins(g, u, v) && classOf[u] != classOf[v] {
					t.Fatalf("twins %d,%d in different classes (edges %v)",
						u, v, g.EdgeList())
				}
			}
		}
	}
}

// TestTwinsAreDominated: within a twin class only the minimum ID can be
// in the skyline (mutual inclusion, ID tie-break).
func TestTwinsAreDominated(t *testing.T) {
	r := rng.New(14)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 4+r.Intn(12), 0.35)
		sky := core.SkylineSet(core.FilterRefineSky(g, core.Options{}), g.N())
		for _, class := range Classes(g) {
			for _, v := range class[1:] {
				if sky[v] {
					t.Fatalf("non-minimal twin %d in skyline (class %v, edges %v)",
						v, class, g.EdgeList())
				}
			}
		}
	}
}

func TestQuotient(t *testing.T) {
	// Star collapses to a single edge.
	q, rep, classOf := Quotient(gen.Star(6))
	if q.N() != 2 || q.M() != 1 {
		t.Fatalf("star quotient: n=%d m=%d", q.N(), q.M())
	}
	if rep[0] != 0 || rep[1] != 1 {
		t.Fatalf("representatives = %v", rep)
	}
	if classOf[5] != classOf[1] {
		t.Fatal("leaves must share a class")
	}
	// Clique collapses to a single vertex.
	qk, _, _ := Quotient(gen.Clique(5))
	if qk.N() != 1 || qk.M() != 0 {
		t.Fatalf("clique quotient: n=%d m=%d", qk.N(), qk.M())
	}
}

func TestQuotientIterated(t *testing.T) {
	// A complete binary tree collapses leaves, then their parents
	// become twins, and so on: several rounds, ending with no twins.
	g := gen.CompleteBinaryTree(15)
	q, rounds := QuotientIterated(g)
	if rounds == 0 {
		t.Fatal("tree must collapse at least once")
	}
	if len(Classes(q)) != q.N() {
		t.Fatal("iterated quotient still has twins")
	}
}

func TestReductionOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(1000, 2000, 2.1, 3).DropIsolated()
	if Reduction(g) == 0 {
		t.Fatal("power-law graphs should have twins (shared-hub leaves)")
	}
}

func TestQuickClassesArePartition(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		r := rng.New(seed)
		g := randomGraph(r, n, 0.3)
		seen := make([]bool, n)
		total := 0
		for _, class := range Classes(g) {
			for _, v := range class {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
