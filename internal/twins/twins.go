// Package twins detects neighborhood-equivalent vertices and collapses
// them. Two vertices are twins when N(u)∖{v} = N(v)∖{u} — false twins
// share an open neighborhood (non-adjacent), true twins a closed one
// (adjacent). The paper's reference [6] uses exactly this equivalence
// to compress graphs before distance labeling, and twins are the
// mutual-inclusion classes of the domination order: within a class only
// the minimum ID can be in the neighborhood skyline.
package twins

import (
	"sort"

	"neisky/internal/graph"
)

// unionFind is a minimal DSU.
type unionFind struct{ parent []int32 }

func newUF(n int) *unionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra // smaller ID becomes the root
}

// neighborhoodKey serializes a sorted ID list into a map key.
func neighborhoodKey(ids []int32) string {
	buf := make([]byte, 0, 4*len(ids))
	for _, v := range ids {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Classes partitions the vertices into twin classes (the transitive
// closure of the twin relation via union-find over exact open- and
// closed-neighborhood groups). Classes are sorted by their minimum
// member; members ascend; singletons included.
func Classes(g *graph.Graph) [][]int32 {
	n := int32(g.N())
	uf := newUF(int(n))

	// False twins: identical open neighborhoods.
	open := make(map[string]int32)
	// True twins: identical closed neighborhoods.
	closed := make(map[string]int32)
	buf := make([]int32, 0, 64)
	for u := int32(0); u < n; u++ {
		nbrs := g.Neighbors(u)
		key := neighborhoodKey(nbrs)
		if first, ok := open[key]; ok {
			uf.union(first, u)
		} else {
			open[key] = u
		}
		// Closed neighborhood: merge u into the sorted list.
		buf = buf[:0]
		inserted := false
		for _, v := range nbrs {
			if !inserted && u < v {
				buf = append(buf, u)
				inserted = true
			}
			buf = append(buf, v)
		}
		if !inserted {
			buf = append(buf, u)
		}
		ckey := neighborhoodKey(buf)
		if first, ok := closed[ckey]; ok {
			uf.union(first, u)
		} else {
			closed[ckey] = u
		}
	}

	groups := make(map[int32][]int32)
	for v := int32(0); v < n; v++ {
		r := uf.find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([][]int32, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// AreTwins reports the pairwise relation N(u)∖{v} = N(v)∖{u}.
func AreTwins(g *graph.Graph, u, v int32) bool {
	if u == v {
		return false
	}
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(nu) || j < len(nv) {
		for i < len(nu) && nu[i] == v {
			i++
		}
		for j < len(nv) && nv[j] == u {
			j++
		}
		switch {
		case i == len(nu) && j == len(nv):
			return true
		case i == len(nu) || j == len(nv):
			return false
		case nu[i] != nv[j]:
			return false
		default:
			i++
			j++
		}
	}
	return true
}

// Quotient collapses each twin class to its minimum-ID representative
// and returns the quotient graph, the dense relabeling of the
// representatives (rep[i] = original ID of quotient vertex i) and the
// class index of every original vertex.
func Quotient(g *graph.Graph) (q *graph.Graph, rep []int32, classOf []int32) {
	classes := Classes(g)
	classOf = make([]int32, g.N())
	rep = make([]int32, 0, len(classes))
	for ci, members := range classes {
		rep = append(rep, members[0])
		for _, v := range members {
			classOf[v] = int32(ci)
		}
	}
	b := graph.NewBuilder(len(classes))
	g.Edges(func(u, v int32) {
		cu, cv := classOf[u], classOf[v]
		if cu != cv {
			b.AddEdge(cu, cv)
		}
	})
	b.SetN(len(classes))
	q = b.Build()
	return q, rep, classOf
}

// QuotientIterated collapses twins repeatedly until no class has more
// than one member (collapsing can create new twins). Returns the final
// quotient and the number of rounds.
func QuotientIterated(g *graph.Graph) (*graph.Graph, int) {
	rounds := 0
	cur := g
	for {
		classes := Classes(cur)
		if len(classes) == cur.N() {
			return cur, rounds
		}
		cur, _, _ = Quotient(cur)
		rounds++
	}
}

// Reduction reports how many vertices twin-collapsing removes.
func Reduction(g *graph.Graph) int {
	return g.N() - len(Classes(g))
}
