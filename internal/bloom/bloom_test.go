package bloom

import (
	"math"
	"testing"
	"testing/quick"

	"neisky/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8, wordsRaw uint8) bool {
		words := int(wordsRaw%16) + 1
		r := rng.New(seed)
		fl := New(words)
		n := int(sizeRaw % 100)
		members := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			x := int32(r.Intn(1 << 20))
			fl.Add(x)
			members = append(members, x)
		}
		for _, x := range members {
			if !fl.MayContain(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	fl := New(4)
	for x := int32(0); x < 1000; x++ {
		if fl.MayContain(x) {
			t.Fatalf("empty filter claims to contain %d", x)
		}
	}
}

func TestSubsetOfSoundness(t *testing.T) {
	// If SubsetOf returns false there must exist an element of A absent
	// from B's filter, hence A ⊄ B. Conversely A ⊆ B ⇒ SubsetOf true.
	f := func(seed uint64, aRaw, extraRaw uint8) bool {
		r := rng.New(seed)
		words := 4
		a, b := New(words), New(words)
		na := int(aRaw % 40)
		var elems []int32
		for i := 0; i < na; i++ {
			x := int32(r.Intn(1 << 16))
			a.Add(x)
			b.Add(x)
			elems = append(elems, x)
		}
		for i := 0; i < int(extraRaw%40); i++ {
			b.Add(int32(r.Intn(1 << 16)))
		}
		// A ⊆ B by construction.
		return a.SubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetOfRejectsWitness(t *testing.T) {
	// Build a case where an element of A is provably absent from B and
	// no hash collision hides it: use distinct single elements and check
	// both directions are consistent with MayContain.
	a, b := New(2), New(2)
	a.Add(12345)
	if b.MayContain(12345) {
		t.Skip("unlucky collision on empty filter (impossible)")
	}
	if a.SubsetOf(b) {
		t.Fatal("filter with a bit set cannot be subset of empty filter")
	}
	if !b.SubsetOf(a) {
		t.Fatal("empty filter is subset of everything")
	}
}

func TestSubsetOfSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	New(1).SubsetOf(New(2))
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 31: 1, 32: 1, 33: 2, 64: 2, 65: 3, 1000: 32}
	for dmax, want := range cases {
		if got := WordsFor(dmax); got != want {
			t.Fatalf("WordsFor(%d) = %d, want %d", dmax, got, want)
		}
	}
}

func TestResetAndCounts(t *testing.T) {
	fl := New(4)
	for x := int32(0); x < 50; x++ {
		fl.Add(x)
	}
	if fl.PopCount() == 0 {
		t.Fatal("expected bits set")
	}
	if fl.Bits() != 128 {
		t.Fatalf("Bits = %d, want 128", fl.Bits())
	}
	if fl.Bytes() != 16 {
		t.Fatalf("Bytes = %d, want 16", fl.Bytes())
	}
	fl.Reset()
	if fl.PopCount() != 0 {
		t.Fatal("reset filter must be empty")
	}
}

// TestLemma2FalsePositiveModel checks that the measured false-positive
// rate of the subset test N(u) ⊆ N(v) tracks the paper's Lemma 2 model
// (1 − (1 − 1/b)^{|B|})^{|A∖B|} within loose tolerance, where b is the
// filter's bit capacity.
func TestLemma2FalsePositiveModel(t *testing.T) {
	r := rng.New(2024)
	words := 2 // b = 64 bits
	b := float64(64)
	sizeB := 40
	diff := 3 // |A \ B|
	const trials = 4000
	falsePos := 0
	applicable := 0
	for trial := 0; trial < trials; trial++ {
		fb := New(words)
		seen := make(map[int32]bool)
		for len(seen) < sizeB {
			x := int32(r.Intn(1 << 20))
			if !seen[x] {
				seen[x] = true
				fb.Add(x)
			}
		}
		// A = diff fresh elements not in B (subset is definitely false).
		fa := New(words)
		added := 0
		for added < diff {
			x := int32(r.Intn(1<<20) + (1 << 21))
			if !seen[x] {
				fa.Add(x)
				added++
			}
		}
		applicable++
		if fa.SubsetOf(fb) {
			falsePos++
		}
	}
	got := float64(falsePos) / float64(applicable)
	want := math.Pow(1-math.Pow(1-1/b, float64(sizeB)), float64(diff))
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("false positive rate %.4f deviates from Lemma 2 model %.4f", got, want)
	}
}

func TestHashSpread(t *testing.T) {
	// Consecutive IDs should spread across words, not cluster.
	fl := New(8)
	for x := int32(0); x < 64; x++ {
		fl.Add(x)
	}
	if fl.PopCount() < 48 {
		t.Fatalf("64 distinct adds set only %d bits of 256 — hash clusters badly", fl.PopCount())
	}
}
