// Package bloom implements the single-hash, bitwise Bloom filter used by
// the FilterRefineSky refine phase (paper §III-B.2).
//
// Following the paper (and the reachability-labeling scheme it cites), the
// filter uses exactly one hash function and is laid out as an array of
// 32-bit words: for an element x, the word index is (h(x)>>5) mod words
// and the bit index is h(x)&31. With one hash function, the filter of a
// set X is simply { h(x) mod b : x ∈ X } materialized as bits, so
//
//	bits(A) ⊆ bits(B)  ⇐  A ⊆ B
//
// with no false negatives: if some bit of A is missing from B, then A
// certainly contains an element outside B. This is the property the
// refine phase exploits to discard non-dominating 2-hop pairs cheaply.
package bloom

// Filter is a fixed-size single-hash Bloom filter over vertex IDs.
type Filter struct {
	words []uint32
}

// hash mixes a vertex ID into 64 well-distributed bits (the splitmix64
// finalizer — cheap, bitwise, and high quality, in the spirit of the
// bitwise hash the paper borrows from its reference [2]).
func hash(x int32) uint64 {
	z := uint64(uint32(x)) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// WordsFor returns the number of 32-bit words to allocate per filter for
// a graph whose maximum degree is dmax: enough for roughly one bit per
// potential neighbor, rounded up to at least one word. This mirrors the
// paper's "BK is the number of bytes determined by dmax".
func WordsFor(dmax int) int {
	w := (dmax + 31) / 32
	if w < 1 {
		w = 1
	}
	return w
}

// New returns an empty filter with the given word count.
func New(words int) *Filter {
	if words < 1 {
		words = 1
	}
	return &Filter{words: make([]uint32, words)}
}

// Wrap returns a Filter backed by the caller's word storage, so a batch
// of equally-sized filters can share one arena allocation. The slice
// must be non-empty and zeroed.
func Wrap(words []uint32) Filter { return Filter{words: words} }

// IsZero reports whether the filter has no storage (an absent slot in a
// value slice of filters).
func (f *Filter) IsZero() bool { return len(f.words) == 0 }

// Words returns the filter's word count.
func (f *Filter) Words() int { return len(f.words) }

// Add inserts a vertex ID.
func (f *Filter) Add(x int32) {
	h := hash(x)
	word := (h >> 5) % uint64(len(f.words))
	f.words[word] |= 1 << (h & 31)
}

// MayContain reports whether x may be in the set. False means x is
// definitely absent.
func (f *Filter) MayContain(x int32) bool {
	h := hash(x)
	word := (h >> 5) % uint64(len(f.words))
	return f.words[word]&(1<<(h&31)) != 0
}

// SubsetOf reports whether every bit of f is also set in g, i.e. the
// paper's test BF(u) & BF(w) == BF(u). A false result proves the
// underlying set of f is not a subset of g's; a true result may be a
// false positive. The two filters must have equal word counts.
func (f *Filter) SubsetOf(g *Filter) bool {
	if len(f.words) != len(g.words) {
		panic("bloom: SubsetOf on filters of different sizes")
	}
	for i, w := range f.words {
		if w&^g.words[i] != 0 {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits, used in diagnostics and the
// Lemma 2 false-positive model test.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Bits returns the total bit capacity b of the filter.
func (f *Filter) Bits() int { return 32 * len(f.words) }

// Reset clears all bits so the filter can be reused without reallocating.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// Bytes reports the memory footprint of the filter's bit array.
func (f *Filter) Bytes() int { return 4 * len(f.words) }
