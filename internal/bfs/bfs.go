// Package bfs provides the unweighted shortest-path primitives used by
// the group-centrality applications: single-source BFS, multi-source BFS
// (distance to a vertex set), pruned BFS for incremental marginal-gain
// evaluation, connected components, and a bit-parallel multi-source
// batch engine (Batch, batch.go) that traverses up to 64·W sources per
// pass for the candidate-sweep workloads.
package bfs

import (
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// Unreached marks vertices not reachable from the source set.
const Unreached = int32(-1)

// checkEvery is the checkpoint granularity of the BFS head loops: one
// run poll per checkEvery dequeued vertices.
const checkEvery = 1024

// Traversal holds reusable scratch space for repeated BFS runs over the
// same graph, avoiding per-call allocation in the greedy loops.
//
// Ownership: a Traversal's dist and queue are shared across its calls,
// so a Traversal belongs to exactly one goroutine at a time and the
// slices its methods return are invalidated by the next call. Concurrent
// sweeps take one Traversal per worker from a Pool (pool.go); the same
// rule and remedy apply to the bit-parallel Batch engine (batch.go).
type Traversal struct {
	g     *graph.Graph
	queue []int32
	dist  []int32

	run       *runctl.Run
	truncated bool
}

// New returns a Traversal for g.
func New(g *graph.Graph) *Traversal {
	n := g.N()
	return &Traversal{
		g:     g,
		queue: make([]int32, 0, n),
		dist:  make([]int32, n),
	}
}

// Graph returns the traversal's graph.
func (t *Traversal) Graph() *graph.Graph { return t.g }

// SetRun binds a cancellation run to the traversal: subsequent BFS calls
// poll it once per checkEvery dequeued vertices and abandon the
// traversal when it stops. A nil run (the default) disables polling at
// the cost of one pointer compare per dequeue.
func (t *Traversal) SetRun(run *runctl.Run) { t.run = run }

// Truncated reports whether the most recent BFS call was abandoned by a
// stopped run; its distances are then valid only for vertices dequeued
// before the stop (the rest read Unreached).
func (t *Traversal) Truncated() bool { return t.truncated }

// From computes distances from a single source. The returned slice is
// owned by the Traversal and overwritten by the next call.
func (t *Traversal) From(src int32) []int32 {
	return t.FromSet([]int32{src})
}

// FromSet computes d(v, S) = min_{s∈S} d(v, s) for every vertex v with a
// multi-source BFS. Vertices unreachable from S get Unreached.
func (t *Traversal) FromSet(srcs []int32) []int32 {
	for i := range t.dist {
		t.dist[i] = Unreached
	}
	t.queue = t.queue[:0]
	t.truncated = false
	for _, s := range srcs {
		if t.dist[s] == Unreached {
			t.dist[s] = 0
			t.queue = append(t.queue, s)
		}
	}
	cp := t.run.Checkpoint(checkEvery)
	for head := 0; head < len(t.queue); head++ {
		if cp.Tick() {
			t.truncated = true
			break
		}
		u := t.queue[head]
		du := t.dist[u]
		for _, v := range t.g.Neighbors(u) {
			if t.dist[v] == Unreached {
				t.dist[v] = du + 1
				t.queue = append(t.queue, v)
			}
		}
	}
	if r := obs.Get(); r != nil {
		rounds := int64(0)
		if n := len(t.queue); n > 0 {
			rounds = int64(t.dist[t.queue[n-1]]) + 1
		}
		r.Add("bfs.runs", 1)
		r.Add("bfs.rounds", rounds)
		r.Add("bfs.visited", int64(len(t.queue)))
	}
	return t.dist
}

// Pruned runs a BFS from src that never expands a vertex v whose BFS
// distance has reached or passed bound[v]; such vertices cannot improve
// on the incumbent distances and (because BFS levels are monotone) none
// of their descendants through them can either be improved via a shorter
// path. For every improved vertex it calls visit(v, oldDist, newDist).
//
// This is the standard pruned-BFS trick for greedy group-closeness
// (Bergamini et al.): evaluating the marginal gain of adding src to a
// group with distance vector bound touches only the region src actually
// improves.
func (t *Traversal) Pruned(src int32, bound []int32, visit func(v int32, old, nu int32)) {
	for i := range t.dist {
		t.dist[i] = Unreached
	}
	t.queue = t.queue[:0]
	t.truncated = false
	if bound[src] != Unreached && bound[src] <= 0 {
		return
	}
	var skips int64
	t.dist[src] = 0
	t.queue = append(t.queue, src)
	visit(src, bound[src], 0)
	cp := t.run.Checkpoint(checkEvery)
	for head := 0; head < len(t.queue); head++ {
		if cp.Tick() {
			t.truncated = true
			break
		}
		u := t.queue[head]
		du := t.dist[u]
		for _, v := range t.g.Neighbors(u) {
			if t.dist[v] != Unreached {
				continue
			}
			d := du + 1
			// Prune at v when d ≥ bound[v]: v itself is not improved,
			// and for any x beyond v the incumbent already satisfies
			// bound[x] ≤ bound[v] + d(v,x) ≤ d + d(v,x), which is the
			// best this BFS could offer through v. Any x improvable via
			// a different branch is still reached through that branch.
			if bound[v] != Unreached && d >= bound[v] {
				skips++
				continue
			}
			t.dist[v] = d
			t.queue = append(t.queue, v)
			visit(v, bound[v], d)
		}
	}
	if r := obs.Get(); r != nil {
		r.Add("bfs.pruned.runs", 1)
		r.Add("bfs.pruned.improved", int64(len(t.queue)))
		r.Add("bfs.pruned.bound_skips", skips)
	}
}

// Components labels connected components; comp[v] is the component index
// of v and the second result is the number of components.
func Components(g *graph.Graph) (comp []int32, count int) {
	n := int32(g.N())
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, n)
	c := int32(0)
	for s := int32(0); s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = c
					queue = append(queue, v)
				}
			}
		}
		c++
	}
	return comp, int(c)
}

// LargestComponent returns the vertices of the largest connected
// component in increasing ID order.
func LargestComponent(g *graph.Graph) []int32 {
	comp, count := Components(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	var out []int32
	for v := int32(0); v < int32(g.N()); v++ {
		if comp[v] == int32(best) {
			out = append(out, v)
		}
	}
	return out
}

// Eccentricity returns the maximum finite distance from src, and the
// number of vertices reached.
func (t *Traversal) Eccentricity(src int32) (ecc int32, reached int) {
	dist := t.From(src)
	for _, d := range dist {
		if d == Unreached {
			continue
		}
		reached++
		if d > ecc {
			ecc = d
		}
	}
	return ecc, reached
}
