package bfs

import (
	"context"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/runctl"
	"neisky/internal/runctl/faultinject"
)

func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// TestTraversalCancelMidBFS cancels a scalar BFS mid-traversal and then
// re-runs the same traversal object without a run: the truncation flag
// must reset and the distances must match a fresh traversal (cancelled
// runs may not poison pooled scratch).
func TestTraversalCancelMidBFS(t *testing.T) {
	g := gen.PowerLaw(5000, 20000, 2.3, 21)
	tr := New(g)

	restore := cancelAtSeq(1)
	run := runctl.FromContext(context.Background())
	tr.SetRun(run)
	order := tr.FromSet([]int32{0})
	restore()
	run.Release()
	if !tr.Truncated() {
		t.Fatal("expected truncated traversal")
	}
	// Note len(order) may still approach n: the queue holds discovered
	// (not dequeued) vertices, and power-law frontiers grow fast. The
	// contract is only that the flag is set and reuse is clean.
	_ = order

	tr.SetRun(nil)
	want := New(g).FromSet([]int32{0})
	got := tr.FromSet([]int32{0})
	if tr.Truncated() {
		t.Fatal("truncation flag must reset on the next traversal")
	}
	if len(got) != len(want) {
		t.Fatalf("post-cancel reuse visited %d vertices, want %d", len(got), len(want))
	}
}

// TestBatchCancelMidVisit cancels a bit-parallel batch BFS mid-settle
// and verifies the batch recovers: the next Visit on the same object
// must produce exactly the levels of a fresh batch.
func TestBatchCancelMidVisit(t *testing.T) {
	g := gen.PowerLaw(5000, 20000, 2.3, 22)
	srcs := []int32{0, 1, 2, 3}

	b := NewBatch(g, 1)
	restore := cancelAtSeq(1)
	run := runctl.FromContext(context.Background())
	b.SetRun(run)
	b.Visit(srcs, nil, func(int32, int32, []uint64) {})
	restore()
	run.Release()
	if !b.Truncated() {
		t.Fatal("expected truncated batch visit")
	}

	b.SetRun(nil)
	type lv struct {
		v     int32
		level int32
	}
	var got, want []lv
	b.Visit(srcs, nil, func(v, level int32, _ []uint64) { got = append(got, lv{v, level}) })
	if b.Truncated() {
		t.Fatal("truncation flag must reset on the next visit")
	}
	NewBatch(g, 1).Visit(srcs, nil, func(v, level int32, _ []uint64) { want = append(want, lv{v, level}) })
	if len(got) != len(want) {
		t.Fatalf("post-cancel reuse settled %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %v want %v (stale scratch survived cancellation)", i, got[i], want[i])
		}
	}
}

// TestPoolDetachesRun pins the pool-hygiene fix: scratch returned to a
// pool must not keep polling the (possibly cancelled) run of its
// previous owner.
func TestPoolDetachesRun(t *testing.T) {
	g := gen.PowerLaw(3000, 12000, 2.3, 23)

	run := runctl.Ensure(nil)
	run.Cancel(context.Canceled)

	p := NewPool(g)
	tr := p.Get()
	tr.SetRun(run)
	p.Put(tr)
	tr = p.Get()
	order := tr.FromSet([]int32{0})
	if tr.Truncated() {
		t.Fatal("pooled traversal still attached to the previous owner's cancelled run")
	}
	if len(order) == 0 {
		t.Fatal("traversal produced nothing")
	}

	bp := NewBatchPool(g, 1)
	b := bp.Get()
	b.SetRun(run)
	bp.Put(b)
	b = bp.Get()
	rows := 0
	b.Visit([]int32{0}, nil, func(int32, int32, []uint64) { rows++ })
	if b.Truncated() {
		t.Fatal("pooled batch still attached to the previous owner's cancelled run")
	}
	if rows == 0 {
		t.Fatal("batch visit produced nothing")
	}
}
