package bfs

import (
	"sync"

	"neisky/internal/graph"
)

// Pool hands out Traversals for one graph to concurrent workers.
//
// A Traversal owns shared dist/queue scratch and is therefore owned by a
// single goroutine at a time; sharing one Traversal across goroutines is
// a data race. Workers Get a traversal, run any number of BFS calls, and
// Put it back; the pool reuses returned traversals so a steady-state
// worker set allocates scratch once per worker.
type Pool struct {
	g    *graph.Graph
	mu   sync.Mutex
	free []*Traversal
}

// NewPool returns a Traversal pool for g.
func NewPool(g *graph.Graph) *Pool { return &Pool{g: g} }

// Get returns a Traversal for exclusive use by the calling goroutine.
func (p *Pool) Get() *Traversal {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	return New(p.g)
}

// Put returns a Traversal obtained from Get to the pool. The bound run,
// if any, is detached so a later Get never polls a stale run.
func (p *Pool) Put(t *Traversal) {
	t.run = nil
	p.mu.Lock()
	p.free = append(p.free, t)
	p.mu.Unlock()
}

// BatchPool is the Pool analog for the bit-parallel Batch engine: every
// Batch it hands out carries the same word width.
type BatchPool struct {
	g     *graph.Graph
	words int
	mu    sync.Mutex
	free  []*Batch
}

// NewBatchPool returns a Batch pool for g with the given frontier width
// (words ≤ 0 means 1).
func NewBatchPool(g *graph.Graph, words int) *BatchPool {
	if words <= 0 {
		words = 1
	}
	return &BatchPool{g: g, words: words}
}

// Words returns the frontier width of the pool's batches.
func (p *BatchPool) Words() int { return p.words }

// Get returns a Batch for exclusive use by the calling goroutine.
func (p *BatchPool) Get() *Batch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return NewBatch(p.g, p.words)
}

// Put returns a Batch obtained from Get to the pool. The bound run, if
// any, is detached so a later Get never polls a stale run.
func (p *BatchPool) Put(b *Batch) {
	b.run = nil
	p.mu.Lock()
	p.free = append(p.free, b)
	p.mu.Unlock()
}
