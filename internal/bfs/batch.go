// Bit-parallel multi-source BFS (MS-BFS) in the style of Then et al.,
// "The More the Merrier: Efficient Multi-Source BFS": a batch of up to
// 64·W sources is traversed simultaneously, with each vertex carrying a
// W-word lane mask of the sources that have reached it. One pass over an
// edge advances all lanes at once, so a batch costs roughly one
// traversal of the reachable subgraph instead of |batch| traversals.
//
// The engine never materializes an n×|batch| distance matrix. Distances
// are consumed level by level: per-source aggregates (Σ d, Σ 1/d,
// reached counts — everything the closeness/harmonic centralities need)
// fall out of per-lane counts of newly-discovered vertices per level,
// accumulated word-parallel with bitset.LaneCounter; arbitrary
// per-vertex weighting (the greedy marginal-gain sweeps) goes through
// the Visit callback, which fires once per (vertex, level) with the
// newly-arrived lane mask.
package bfs

import (
	"math/bits"

	"neisky/internal/bitset"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// WordLanes is the number of BFS sources carried per frontier word.
const WordLanes = 64

// Batch holds the reusable scratch of a bit-parallel multi-source BFS
// over one graph. Like Traversal, a Batch is owned by a single
// goroutine; use a BatchPool to share across workers.
type Batch struct {
	g     *graph.Graph
	words int // W: frontier words per vertex

	// seen, cur and next are n rows of W words each: seen[v] is the
	// lanes that have reached v, cur[v] the lanes whose frontier
	// currently sits on v, next[v] the lanes arriving at v on the level
	// being expanded.
	seen, cur, next []uint64

	curList, nextList []int32
	inNext            bitset.Set // vertices already appended to nextList

	lanes []bitset.LaneCounter // one per word
	cnt   [64]int64

	// Per-run observability tallies, folded into the process registry
	// once per Visit (plain ints: a Batch is single-goroutine).
	statPruned int64 // vertices whose fresh lanes were bound-pruned

	// Sums scratch, reused across calls.
	sumDist []int64
	sumInv  []float64
	reached []int32

	run       *runctl.Run
	cp        runctl.Checkpoint
	truncated bool
}

// NewBatch returns a Batch for g able to carry words·64 sources per run
// (words ≤ 0 means 1). Memory is 3·words words per vertex plus two
// vertex lists.
func NewBatch(g *graph.Graph, words int) *Batch {
	if words <= 0 {
		words = 1
	}
	n := g.N()
	return &Batch{
		g:        g,
		words:    words,
		seen:     make([]uint64, n*words),
		cur:      make([]uint64, n*words),
		next:     make([]uint64, n*words),
		curList:  make([]int32, 0, n),
		nextList: make([]int32, 0, n),
		inNext:   bitset.New(n),
		lanes:    make([]bitset.LaneCounter, words),
	}
}

// Capacity returns the maximum number of sources per run.
func (b *Batch) Capacity() int { return b.words * WordLanes }

// SetRun binds a cancellation run; Visit polls it once per checkEvery
// settled frontier vertices and abandons the batch when it stops.
func (b *Batch) SetRun(run *runctl.Run) { b.run = run }

// Truncated reports whether the most recent Visit/Sums was abandoned by
// a stopped run; per-lane aggregates are then partial.
func (b *Batch) Truncated() bool { return b.truncated }

// Visit runs one batched BFS from srcs (len(srcs) ≤ Capacity; source i
// occupies lane i). For every vertex v and the level ℓ at which a set of
// lanes first reaches v, visit is called once with (v, ℓ, mask); mask is
// the W-word lane row, valid only for the duration of the call. Levels
// are visited in nondecreasing order, and each (vertex, lane) pair is
// reported at most once, at that lane's true BFS distance.
//
// bound, when non-nil, applies the same per-vertex pruning rule as
// Traversal.Pruned to every lane at once: a vertex v reached at level
// ℓ ≥ bound[v] (bound[v] ≠ Unreached) is neither reported nor expanded —
// sound for marginal-gain evaluation because bound[x] ≤ bound[v] +
// d(v,x) means no descendant through v can be improved either, and the
// rule does not depend on the lane. Sources must not have bound ≤ 0
// (i.e. must not be members of the incumbent group).
func (b *Batch) Visit(srcs []int32, bound []int32, visit func(v int32, level int32, mask []uint64)) {
	if len(srcs) > b.Capacity() {
		panic("bfs: batch over capacity")
	}
	W := b.words
	clear(b.seen)
	clear(b.cur)
	clear(b.next)
	b.inNext.Reset()
	b.curList = b.curList[:0]
	b.statPruned = 0
	b.truncated = false
	b.cp = b.run.Checkpoint(checkEvery)

	// Level 0: seed the lanes, merging duplicate source vertices.
	for i, s := range srcs {
		row := b.cur[int(s)*W : int(s)*W+W]
		if rowEmpty(row) {
			b.curList = append(b.curList, s)
		}
		row[i>>6] |= 1 << (uint(i) & 63)
	}
	keep := b.curList[:0]
	for _, v := range b.curList {
		if bound != nil && bound[v] != Unreached && bound[v] <= 0 {
			clearRow(b.cur[int(v)*W : int(v)*W+W])
			b.statPruned++
			continue
		}
		row := b.cur[int(v)*W : int(v)*W+W]
		copy(b.seen[int(v)*W:int(v)*W+W], row)
		visit(v, 0, row)
		keep = append(keep, v)
	}
	b.curList = keep

	rounds := int64(0)
	frontier := int64(len(b.curList))
	for level := int32(1); len(b.curList) > 0 && !b.truncated; level++ {
		if W == 1 {
			b.expandW1()
		} else {
			b.expand()
		}
		b.settle(level, bound, visit)
		rounds++
		frontier += int64(len(b.curList))
	}
	if r := obs.Get(); r != nil {
		r.Add("bfs.batch.runs", 1)
		r.Add("bfs.batch.sources", int64(len(srcs)))
		r.Add("bfs.batch.rounds", rounds)
		r.Add("bfs.batch.frontier", frontier)
		r.Add("bfs.batch.bound_pruned", b.statPruned)
	}
}

// expandW1 is the single-word hot path: frontier masks are plain uint64s
// and "row became pending" is a zero test, no bitset needed.
func (b *Batch) expandW1() {
	b.nextList = b.nextList[:0]
	for _, v := range b.curList {
		m := b.cur[v]
		for _, u := range b.g.Neighbors(v) {
			if b.next[u] == 0 {
				b.nextList = append(b.nextList, u)
			}
			b.next[u] |= m
		}
	}
}

// expand is the generic W-word frontier push.
func (b *Batch) expand() {
	W := b.words
	b.nextList = b.nextList[:0]
	for _, v := range b.curList {
		row := bitset.Set(b.cur[int(v)*W : int(v)*W+W])
		for _, u := range b.g.Neighbors(v) {
			dst := bitset.Set(b.next[int(u)*W : int(u)*W+W])
			if dst.OrChanged(row) && !b.inNext.Test(u) {
				b.inNext.Set(u)
				b.nextList = append(b.nextList, u)
			}
		}
	}
}

// settle turns pending rows into the new frontier: newly-seen lanes are
// extracted (pending &^ seen), pruned against bound, reported, and
// become cur for the next expansion.
func (b *Batch) settle(level int32, bound []int32, visit func(int32, int32, []uint64)) {
	W := b.words
	b.curList = b.curList[:0]
	for _, u := range b.nextList {
		if b.cp.Tick() {
			// Abandon the batch: the next Visit clears all scratch, so
			// the half-settled rows left behind are harmless.
			b.truncated = true
			return
		}
		pend := bitset.Set(b.next[int(u)*W : int(u)*W+W])
		seen := bitset.Set(b.seen[int(u)*W : int(u)*W+W])
		curRow := bitset.Set(b.cur[int(u)*W : int(u)*W+W])
		fresh := curRow.AndNotOf(pend, seen)
		clearRow(pend)
		if W > 1 {
			b.inNext.Clear(u)
		}
		if !fresh {
			clearRow(curRow)
			continue
		}
		// Lanes that arrive are marked seen even when pruned: any later
		// arrival is at a larger level and cannot be useful either.
		seen.Or(curRow)
		if bound != nil && bound[u] != Unreached && level >= bound[u] {
			clearRow(curRow)
			b.statPruned++
			continue
		}
		visit(u, level, curRow)
		b.curList = append(b.curList, u)
	}
}

func rowEmpty(row []uint64) bool {
	for _, w := range row {
		if w != 0 {
			return false
		}
	}
	return true
}

func clearRow(row []uint64) {
	for i := range row {
		row[i] = 0
	}
}

// Sums runs one batched BFS from srcs and returns, per source lane i:
// sumDist[i] = Σ_v d(srcs[i], v) over reached v, sumInv[i] = Σ_v 1/d
// over reached v at distance ≥ 1, and reached[i] = the number of reached
// vertices including the source itself. Unreachable vertices contribute
// nothing; callers apply their own conventions (d = n penalties, 1/∞ =
// 0) from reached counts. The returned slices are owned by the Batch and
// overwritten by the next call.
//
// The accumulation is popcount-weighted per level: every newly-seen lane
// mask feeds a bitset.LaneCounter, and the per-lane counts are folded
// into the aggregates once per (level, word) with weight ℓ and 1/ℓ —
// O(levels·64) scalar work on top of the word-parallel traversal.
func (b *Batch) Sums(srcs []int32) (sumDist []int64, sumInv []float64, reached []int32) {
	k := len(srcs)
	b.ensureSums(k)
	sumDist, sumInv, reached = b.sumDist[:k], b.sumInv[:k], b.reached[:k]
	for i := range sumDist {
		sumDist[i] = 0
		sumInv[i] = 0
		reached[i] = 0
	}
	W := b.words
	lastLevel := int32(-1)
	flush := func() {
		if lastLevel < 0 {
			return
		}
		ell := int64(lastLevel)
		inv := 0.0
		if lastLevel > 0 {
			inv = 1 / float64(lastLevel)
		}
		for wi := range b.lanes {
			b.cnt = [64]int64{}
			b.lanes[wi].Drain(&b.cnt)
			base := wi * WordLanes
			for lane, c := range b.cnt {
				if c == 0 {
					continue
				}
				i := base + lane
				if i >= k {
					break
				}
				reached[i] += int32(c)
				sumDist[i] += ell * c
				if lastLevel > 0 {
					sumInv[i] += float64(c) * inv
				}
			}
		}
	}
	b.Visit(srcs, nil, func(v int32, level int32, mask []uint64) {
		if level != lastLevel {
			flush()
			lastLevel = level
		}
		for wi := 0; wi < W; wi++ {
			if mask[wi] != 0 {
				b.lanes[wi].Add(mask[wi])
			}
		}
	})
	flush()
	return sumDist, sumInv, reached
}

func (b *Batch) ensureSums(k int) {
	if cap(b.sumDist) < k {
		b.sumDist = make([]int64, k)
		b.sumInv = make([]float64, k)
		b.reached = make([]int32, k)
	}
}

// ForEachLane calls fn(lane) for every set bit of mask, offsetting lanes
// by 64·word. Shared helper for consumers that fold per-vertex weights
// into per-source accumulators.
func ForEachLane(mask uint64, word int, fn func(lane int)) {
	base := word * WordLanes
	for ; mask != 0; mask &= mask - 1 {
		fn(base + bits.TrailingZeros64(mask))
	}
}
