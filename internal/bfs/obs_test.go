package bfs

import (
	"testing"

	"neisky/internal/graph"
	"neisky/internal/obs"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n-1; u++ {
		b.AddEdge(int32(u), int32(u+1))
	}
	return b.Build()
}

// TestTraversalPublishesObs pins the scalar engine's counters: a full
// BFS over a path reports its round count and visited total, and the
// pruned variant reports bound skips.
func TestTraversalPublishesObs(t *testing.T) {
	g := pathGraph(10)
	old := obs.Swap(obs.New())
	defer obs.Swap(old)
	r := obs.Get()

	trav := New(g)
	trav.From(0)
	snap := r.Snapshot()
	if snap.Counters["bfs.runs"] != 1 {
		t.Fatalf("bfs.runs = %d, want 1", snap.Counters["bfs.runs"])
	}
	if snap.Counters["bfs.visited"] != 10 {
		t.Fatalf("bfs.visited = %d, want 10", snap.Counters["bfs.visited"])
	}
	// A 10-vertex path from an endpoint has levels 0..9.
	if snap.Counters["bfs.rounds"] != 10 {
		t.Fatalf("bfs.rounds = %d, want 10", snap.Counters["bfs.rounds"])
	}

	// Pruned BFS against a tight bound: only the source improves, and
	// its one neighbor is skipped by the bound.
	bound := make([]int32, g.N())
	for i := range bound {
		bound[i] = 1
	}
	bound[0] = 5
	trav.Pruned(0, bound, func(int32, int32, int32) {})
	snap = r.Snapshot()
	if snap.Counters["bfs.pruned.runs"] != 1 {
		t.Fatalf("bfs.pruned.runs = %d, want 1", snap.Counters["bfs.pruned.runs"])
	}
	if snap.Counters["bfs.pruned.improved"] != 1 {
		t.Fatalf("bfs.pruned.improved = %d, want 1 (source only)", snap.Counters["bfs.pruned.improved"])
	}
	if snap.Counters["bfs.pruned.bound_skips"] != 1 {
		t.Fatalf("bfs.pruned.bound_skips = %d, want 1", snap.Counters["bfs.pruned.bound_skips"])
	}
}

// TestBatchPublishesObs pins the bit-parallel engine's counters against
// the scalar ones on the same traversal.
func TestBatchPublishesObs(t *testing.T) {
	g := pathGraph(10)
	old := obs.Swap(obs.New())
	defer obs.Swap(old)
	r := obs.Get()

	b := NewBatch(g, 1)
	b.Visit([]int32{0}, nil, func(int32, int32, []uint64) {})
	snap := r.Snapshot()
	if snap.Counters["bfs.batch.runs"] != 1 || snap.Counters["bfs.batch.sources"] != 1 {
		t.Fatalf("batch run counters = %v", snap.Counters)
	}
	// Rounds counts expansion passes: levels 1..9 settle fresh lanes,
	// plus the final pass that discovers the frontier is exhausted.
	if snap.Counters["bfs.batch.rounds"] != 10 {
		t.Fatalf("bfs.batch.rounds = %d, want 10", snap.Counters["bfs.batch.rounds"])
	}
	if snap.Counters["bfs.batch.frontier"] != 10 {
		t.Fatalf("bfs.batch.frontier = %d, want 10", snap.Counters["bfs.batch.frontier"])
	}

	// With every bound at 1, all non-source arrivals are pruned.
	bound := make([]int32, g.N())
	for i := range bound {
		bound[i] = 1
	}
	bound[0] = 5
	r.Reset()
	b.Visit([]int32{0}, bound, func(int32, int32, []uint64) {})
	snap = r.Snapshot()
	if snap.Counters["bfs.batch.bound_pruned"] != 1 {
		t.Fatalf("bfs.batch.bound_pruned = %d, want 1", snap.Counters["bfs.batch.bound_pruned"])
	}
}
