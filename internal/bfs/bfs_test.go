package bfs

import (
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

func TestFromOnPath(t *testing.T) {
	g := gen.Path(6)
	dist := New(g).From(0)
	for v := int32(0); v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
}

func TestFromUnreachable(t *testing.T) {
	g := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	dist := New(g).From(0)
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatal("other component must be Unreached")
	}
	if dist[0] != 0 || dist[1] != 1 {
		t.Fatal("own component distances wrong")
	}
}

func TestFromSet(t *testing.T) {
	g := gen.Path(7)
	dist := New(g).FromSet([]int32{0, 6})
	want := []int32{0, 1, 2, 3, 2, 1, 0}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestFromSetDuplicateSources(t *testing.T) {
	g := gen.Path(3)
	dist := New(g).FromSet([]int32{1, 1})
	if dist[0] != 1 || dist[1] != 0 || dist[2] != 1 {
		t.Fatalf("duplicate sources mishandled: %v", dist)
	}
}

// TestPrunedExactness: for random graphs and random incumbent vectors
// from a real group, the pruned BFS must report exactly the improvements
// a full BFS would.
func TestPrunedExactness(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 3
		r := rng.New(seed)
		g := randomGraph(r, n, 0.2)
		tr := New(g)
		// Incumbent = distance from a random nonempty set S.
		k := 1 + r.Intn(3)
		srcs := make([]int32, 0, k)
		for len(srcs) < k {
			srcs = append(srcs, int32(r.Intn(n)))
		}
		full := tr.FromSet(srcs)
		bound := make([]int32, n)
		copy(bound, full)

		u := int32(r.Intn(n))
		tr2 := New(g)
		fromU := append([]int32(nil), tr2.From(u)...)

		improved := map[int32][2]int32{}
		tr2.Pruned(u, bound, func(v int32, old, nu int32) {
			improved[v] = [2]int32{old, nu}
		})
		for v := int32(0); v < int32(n); v++ {
			du := fromU[v]
			wantImprove := du != Unreached && (bound[v] == Unreached || du < bound[v])
			got, ok := improved[v]
			if wantImprove != ok {
				return false
			}
			if ok && (got[0] != bound[v] || got[1] != du) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPrunedSourceAlreadyInGroup(t *testing.T) {
	g := gen.Path(4)
	tr := New(g)
	bound := []int32{0, 1, 2, 3} // src 0 already at distance 0
	called := false
	tr.Pruned(0, bound, func(v int32, old, nu int32) { called = true })
	if called {
		t.Fatal("no improvements expected when source already covered")
	}
}

func TestComponents(t *testing.T) {
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	comp, count := Components(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("component labels wrong")
	}
}

func TestLargestComponent(t *testing.T) {
	g := graph.FromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {4, 5}})
	lc := LargestComponent(g)
	if len(lc) != 4 || lc[0] != 0 || lc[3] != 3 {
		t.Fatalf("largest component = %v", lc)
	}
}

func TestEccentricity(t *testing.T) {
	g := gen.Path(5)
	ecc, reached := New(g).Eccentricity(0)
	if ecc != 4 || reached != 5 {
		t.Fatalf("ecc=%d reached=%d", ecc, reached)
	}
	mid, _ := New(g).Eccentricity(2)
	if mid != 2 {
		t.Fatalf("middle eccentricity = %d, want 2", mid)
	}
}

func TestTraversalReuse(t *testing.T) {
	g := gen.Cycle(8)
	tr := New(g)
	d1 := append([]int32(nil), tr.From(0)...)
	d2 := tr.From(4)
	if d2[4] != 0 || d2[0] != 4 {
		t.Fatal("second traversal wrong")
	}
	if d1[0] != 0 {
		t.Fatal("copied first result should be intact")
	}
}
