package bfs

import (
	"sync"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// oracleSums computes the Sums aggregates for one source with the scalar
// single-source BFS.
func oracleSums(t *Traversal, src int32) (sumD int64, sumInv float64, reached int32) {
	for _, d := range t.From(src) {
		if d == Unreached {
			continue
		}
		reached++
		sumD += int64(d)
		if d > 0 {
			sumInv += 1 / float64(d)
		}
	}
	return
}

// testGraphs is the property-test graph zoo: ER (including sparse
// disconnected ones with isolated vertices), Chung–Lu power law, and BA,
// per the oracle-pinning satellite.
func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		gen.ER(80, 0.05, 11),
		gen.ER(150, 0.008, 12), // disconnected, isolated vertices
		gen.PowerLaw(200, 500, 2.1, 13),
		gen.BA(120, 3, 14),
		gen.Path(5),
		gen.Star(9),
		graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}}), // two components
	}
}

func TestBatchSumsMatchesScalarOracle(t *testing.T) {
	for gi, g := range testGraphs() {
		n := int32(g.N())
		for _, words := range []int{1, 2} {
			b := NewBatch(g, words)
			trav := New(g)
			// Sweep all vertices in capacity-sized chunks, including a
			// ragged final chunk.
			for start := int32(0); start < n; start += int32(b.Capacity()) {
				end := start + int32(b.Capacity())
				if end > n {
					end = n
				}
				srcs := make([]int32, 0, end-start)
				for v := start; v < end; v++ {
					srcs = append(srcs, v)
				}
				sumD, sumInv, reached := b.Sums(srcs)
				for i, s := range srcs {
					wd, wi, wr := oracleSums(trav, s)
					if sumD[i] != wd || reached[i] != wr {
						t.Fatalf("graph %d words %d src %d: sums (%d,%d) want (%d,%d)",
							gi, words, s, sumD[i], reached[i], wd, wr)
					}
					if diff := sumInv[i] - wi; diff > 1e-9 || diff < -1e-9 {
						t.Fatalf("graph %d words %d src %d: sumInv %v want %v", gi, words, s, sumInv[i], wi)
					}
				}
			}
		}
	}
}

func TestBatchSumsDuplicateSources(t *testing.T) {
	g := gen.PowerLaw(100, 250, 2.1, 17)
	b := NewBatch(g, 1)
	trav := New(g)
	srcs := []int32{5, 9, 5, 30, 9} // duplicates share a vertex, own lanes
	sumD, _, reached := b.Sums(srcs)
	for i, s := range srcs {
		wd, _, wr := oracleSums(trav, s)
		if sumD[i] != wd || reached[i] != wr {
			t.Fatalf("duplicate src lane %d (v%d): (%d,%d) want (%d,%d)",
				i, s, sumD[i], reached[i], wd, wr)
		}
	}
}

// TestBatchVisitBoundMatchesPruned: with a bound vector, the improved
// (vertex, level) pairs a lane reports must match the scalar pruned BFS
// exactly.
func TestBatchVisitBoundMatchesPruned(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 8; trial++ {
		g := gen.PowerLaw(120+r.Intn(100), 400, 2.1, uint64(trial+40))
		n := int32(g.N())
		trav := New(g)
		// Build an incumbent distance vector from a random small group.
		group := []int32{int32(r.Intn(int(n))), int32(r.Intn(int(n)))}
		bound := make([]int32, n)
		copy(bound, trav.FromSet(group))
		for _, words := range []int{1, 2} {
			b := NewBatch(g, words)
			var srcs []int32
			for v := int32(0); v < n; v++ {
				if bound[v] != 0 && len(srcs) < b.Capacity() {
					srcs = append(srcs, v)
				}
			}
			lane := make(map[int32]int, len(srcs))
			for i, s := range srcs {
				lane[s] = i
			}
			// got[lane][v] = improved level
			got := make([]map[int32]int32, len(srcs))
			for i := range got {
				got[i] = map[int32]int32{}
			}
			b.Visit(srcs, bound, func(v int32, level int32, mask []uint64) {
				for wi, m := range mask {
					ForEachLane(m, wi, func(ln int) {
						got[ln][v] = level
					})
				}
			})
			for i, s := range srcs {
				want := map[int32]int32{}
				trav.Pruned(s, bound, func(v int32, old, nu int32) {
					want[v] = nu
				})
				if len(got[i]) != len(want) {
					t.Fatalf("words %d src %d: %d visits, scalar pruned has %d",
						words, s, len(got[i]), len(want))
				}
				for v, lv := range want {
					if got[i][v] != lv {
						t.Fatalf("words %d src %d v %d: level %d want %d",
							words, s, v, got[i][v], lv)
					}
				}
			}
		}
	}
}

func TestBatchOverCapacityPanics(t *testing.T) {
	g := gen.Path(10)
	b := NewBatch(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-capacity batch")
		}
	}()
	srcs := make([]int32, 65)
	b.Sums(srcs)
}

// TestPoolConcurrentSweep exercises Pool and BatchPool under the race
// detector: workers share pools, never traversals.
func TestPoolConcurrentSweep(t *testing.T) {
	g := gen.PowerLaw(300, 900, 2.1, 29)
	n := int32(g.N())
	tp, bp := NewPool(g), NewBatchPool(g, 1)
	wantD := make([]int64, n)
	oracle := New(g)
	for v := int32(0); v < n; v++ {
		wantD[v], _, _ = oracleSums(oracle, v)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trav := tp.Get()
			defer tp.Put(trav)
			b := bp.Get()
			defer bp.Put(b)
			for start := int32(w * 64); start < n; start += 4 * 64 {
				end := start + 64
				if end > n {
					end = n
				}
				srcs := make([]int32, 0, 64)
				for v := start; v < end; v++ {
					srcs = append(srcs, v)
				}
				sumD, _, _ := b.Sums(srcs)
				for i, s := range srcs {
					if sumD[i] != wantD[s] {
						errs <- "batch sum mismatch under concurrency"
						return
					}
					if d, _, _ := oracleSums(trav, s); d != wantD[s] {
						errs <- "traversal mismatch under concurrency"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// BenchmarkMSBFSSweep is the Makefile's MS-BFS smoke target: one batched
// full-vertex Sums sweep vs the equivalent scalar loop.
func BenchmarkMSBFSSweep(b *testing.B) {
	g := gen.PowerLaw(4000, 15000, 2.1, 31)
	n := int32(g.N())
	b.Run("batch64", func(b *testing.B) {
		bt := NewBatch(g, 1)
		srcs := make([]int32, 0, 64)
		for i := 0; i < b.N; i++ {
			for start := int32(0); start < n; start += 64 {
				end := start + 64
				if end > n {
					end = n
				}
				srcs = srcs[:0]
				for v := start; v < end; v++ {
					srcs = append(srcs, v)
				}
				bt.Sums(srcs)
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		trav := New(g)
		for i := 0; i < b.N; i++ {
			for v := int32(0); v < n; v++ {
				oracleSums(trav, v)
			}
		}
	})
}
