package bench

import (
	"fmt"
	"io"
	"time"

	"neisky/internal/centrality"
	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/rng"
	"neisky/internal/skytree"
)

// The gatebench workload: a small-n, deterministic row per engine
// family (serial skyline = the reference, sharded skyline, parallel
// skyline, layered index build + subset query, group centrality).
// Small enough for a CI job (seconds), large enough that each row's
// cost is dominated by its engine's hot loop rather than setup noise.
// scripts/bench_compare.go diffs these rows — ratio-normalized against
// GateRefAlgo — between a committed baseline and a fresh run.

// GateConfig parameterizes RunGateJSON.
type GateConfig struct {
	Seed uint64 // generator seed (default 1)
	// Rounds of best-of timing (default 5: gate rows are cheap, and
	// more rounds means less scheduler noise in the committed ratios).
	Rounds int
	Out    io.Writer // progress log; nil silences it
}

func (c *GateConfig) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
}

// RunGateJSON runs the gate workload and writes its rows to w.
func RunGateJSON(w io.Writer, cfg GateConfig) error {
	cfg.fill()
	// One mid-sized power-law graph for the skyline-family rows, a
	// smaller one for the BFS-heavy centrality row.
	g := gen.PowerLaw(20_000, 80_000, 2.5, cfg.Seed)
	cg := gen.PowerLaw(3_000, 12_000, 2.5, cfg.Seed)
	g.Hub()
	g.Sketches()
	g.DegreeSorted()
	cg.Hub()

	tree := skytree.Build(g, skytree.BuildOptions{Workers: 4})
	if tree.Truncated {
		return fmt.Errorf("bench: gate tree build truncated: %w", tree.Err)
	}
	r := rng.New(cfg.Seed + 7)
	sub := make([]int32, 0, g.N()/20)
	for v := int32(0); v < int32(g.N()); v++ {
		if r.Float64() < 0.05 {
			sub = append(sub, v)
		}
	}

	type contender struct {
		name    string
		dataset string
		n, m    int
		run     func()
	}
	contenders := []contender{
		{GateRefAlgo, "powerlaw-20k", g.N(), g.M(), func() {
			core.FilterRefineSky(g, core.Options{})
		}},
		{"ShardedFilterRefineSky-s8", "powerlaw-20k", g.N(), g.M(), func() {
			core.ShardedFilterRefineSky(g, core.Options{}, core.ShardOptions{Shards: 8, Workers: 4})
		}},
		{"ParallelFilterRefineSky-4", "powerlaw-20k", g.N(), g.M(), func() {
			core.ParallelFilterRefineSky(g, core.Options{}, 4)
		}},
		{"SkyTreeBuild", "powerlaw-20k", g.N(), g.M(), func() {
			skytree.Build(g, skytree.BuildOptions{Workers: 4})
		}},
		{"SubsetSkyline-tree", "powerlaw-20k", g.N(), g.M(), func() {
			skytree.SubsetSkyline(g, tree, sub)
		}},
		{"GreedyCloseness-k4", "powerlaw-3k", cg.N(), cg.M(), func() {
			sky := core.FilterRefineSky(cg, core.Options{})
			centrality.Greedy(cg, 4, centrality.CLOSENESS,
				centrality.Options{Candidates: sky.Skyline, Lazy: true, PrunedBFS: true})
		}},
	}

	best := make([]int64, len(contenders))
	for i := range best {
		best[i] = -1
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i := range contenders {
			c := &contenders[i]
			d := timed(c.run).Nanoseconds()
			if best[i] < 0 || d < best[i] {
				best[i] = d
			}
			if cfg.Out != nil {
				fmt.Fprintf(cfg.Out, "gate: round %d/%d %-28s %s\n", round+1, cfg.Rounds,
					c.name, time.Duration(d).Round(time.Microsecond))
			}
		}
	}

	rows := make([]BenchRow, len(contenders))
	for i, c := range contenders {
		rows[i] = BenchRow{Algo: c.name, Dataset: c.dataset, N: c.n, M: c.m, NsPerOp: best[i]}
	}
	return flushRows(w, rows, nil)
}
