package bench

import (
	"context"
	"encoding/json"
	"io"
	"runtime"

	"neisky/internal/centrality"
	"neisky/internal/core"
	"neisky/internal/dataset"
	"neisky/internal/graph"
	"neisky/internal/obs"
)

// BenchRow is one machine-readable measurement, the shape CI diffs
// between commits. The skyline rows fill the first six fields; the
// centrality rows additionally record the greedy parameters (k, gain
// calls) and the engine configuration (workers, batch on/off). With
// Config.Metrics set, every row also carries the per-stage
// timer/counter snapshot of one instrumented run (internal/obs
// flattened metrics: filter vs. refine time, bloom probe hit/miss, BFS
// rounds, ...), so perf PRs can cite stage-level evidence instead of
// wall-clock alone.
type BenchRow struct {
	Algo          string           `json:"algo"`
	Dataset       string           `json:"dataset"`
	N             int              `json:"n"`
	M             int              `json:"m"`
	NsPerOp       int64            `json:"ns_per_op"`
	BytesPerOp    uint64           `json:"bytes_per_op"`
	K             int              `json:"k,omitempty"`
	GainCalls     int              `json:"gain_calls,omitempty"`
	Workers       int              `json:"workers,omitempty"`
	Batch         string           `json:"batch,omitempty"`   // "on" / "off"
	Source        string           `json:"source,omitempty"`  // "heap" / "mmap" (snapshot rows)
	Relabel       string           `json:"relabel,omitempty"` // "on" / "off" (snapshot rows)
	ConvertNs     int64            `json:"convert_ns,omitempty"`
	Queries       int              `json:"queries,omitempty"` // serving rows (BENCH_4)
	Failed        int              `json:"failed,omitempty"`
	Rejected      int              `json:"rejected,omitempty"` // admission 429s after retries (BENCH_4/BENCH_7)
	Swaps         int              `json:"swaps,omitempty"`
	P50Ns         int64            `json:"p50_ns,omitempty"`
	P99Ns         int64            `json:"p99_ns,omitempty"`
	Fsync         string           `json:"fsync,omitempty"`          // WAL rows (BENCH_7): sync policy
	RecoverNs     int64            `json:"recover_ns,omitempty"`     // WAL rows: crash-recovery wall time
	Shards        int              `json:"shards,omitempty"`         // sharded-engine rows (BENCH_5)
	SketchProbes  int64            `json:"sketch_probes,omitempty"`  // register-sketch pre-checks issued
	SketchSkips   int64            `json:"sketch_skips,omitempty"`   // pairs discarded by the sketch
	Layers        int              `json:"layers,omitempty"`         // layered-index rows (BENCH_6)
	Ops           int              `json:"ops,omitempty"`            // maintenance rows: update batch size
	PairsExamined int64            `json:"pairs_examined,omitempty"` // subset rows: exact dominance scans
	WitnessHits   int64            `json:"witness_hits,omitempty"`   // subset rows: parent-witness early exits
	Metrics       map[string]int64 `json:"metrics,omitempty"`
}

// captureMetrics runs fn once under a fresh, isolated process recorder
// and returns its flattened metrics, restoring the previous recorder
// (usually nil: the timed runs above stay on the no-op fast path).
func captureMetrics(fn func()) map[string]int64 {
	old := obs.Swap(obs.New())
	fn()
	m := obs.Get().Metrics()
	obs.Swap(old)
	return m
}

// jsonAlgos are the contenders tracked in the JSON benchmark: the
// bitset-kernel hot path, the legacy merge path it replaced (the
// DisableHubIndex ablation, ≈ the pre-index baseline), and the sharded
// variant at 8 workers.
var jsonAlgos = []struct {
	name string
	run  func(context.Context, *graph.Graph) *core.Result
}{
	{"FilterRefineSky", func(ctx context.Context, g *graph.Graph) *core.Result {
		return core.FilterRefineSkyCtx(ctx, g, core.Options{})
	}},
	{"FilterRefineSky-nohub", func(ctx context.Context, g *graph.Graph) *core.Result {
		return core.FilterRefineSkyCtx(ctx, g, core.Options{DisableHubIndex: true})
	}},
	{"ParallelFilterRefineSky-8", func(ctx context.Context, g *graph.Graph) *core.Result {
		return core.ParallelFilterRefineSkyCtx(ctx, g, core.Options{}, 8)
	}},
}

// jsonDatasets covers the Table I stand-ins plus the two large graphs
// the acceptance speedup is measured on.
func jsonDatasets() []string {
	return append(dataset.Five(), "livejournal-sim", "orkut-sim")
}

// centralityVariants lists the greedy-engine contenders of the JSON
// benchmark: the first-round gain sweep (the paper's Exp-4/Exp-5 hot
// kernel — every candidate evaluated against S = ∅) scalar vs batched vs
// batched+parallel, and the full engineered greedy at k = 10 on both
// engines. workers is the resolved parallel worker count.
func centralityVariants(workers int) []struct {
	name    string
	k       int
	workers int
	batch   string
	opts    centrality.Options
} {
	return []struct {
		name    string
		k       int
		workers int
		batch   string
		opts    centrality.Options
	}{
		{"FirstRoundSweep-scalar", 1, 1, "off",
			centrality.Options{DisableBatchBFS: true}},
		{"FirstRoundSweep-batch", 1, 1, "on",
			centrality.Options{Workers: 1}},
		{"FirstRoundSweep-batch-par", 1, workers, "on",
			centrality.Options{Workers: workers}},
		{"GreedyPP-scalar", 10, 1, "off",
			centrality.Options{Lazy: true, PrunedBFS: true, DisableBatchBFS: true}},
		{"GreedyPP-batch-par", 10, workers, "on",
			centrality.Options{Lazy: true, PrunedBFS: true, Workers: workers}},
	}
}

// centralityDatasets are the graphs the scalar-vs-batched acceptance
// speedup is measured on.
func centralityDatasets() []string { return []string{"livejournal-sim", "orkut-sim"} }

// RunBenchJSON measures every (algo, dataset) pair and writes the rows
// as a JSON array to w. Per skyline pair: one untimed warm-up run (which
// also amortizes the lazy hub-index build, as any real pipeline would),
// then ns_per_op is the best of three timed runs and bytes_per_op a
// single allocation-counted run. The centrality rows skip the warm-up —
// the BFS engines build no lazy index — and use the same best-of-three
// rule.
//
// A cancellable cfg.Ctx bounds the run: the engines observe the
// cancellation mid-row (their checkpoints poll it), the contaminated
// in-flight measurement is discarded, and every complete row collected
// so far is still flushed to w before returning.
func RunBenchJSON(w io.Writer, cfg Config) error {
	cfg.fill()
	iters := 3
	if cfg.Quick {
		iters = 1
	}
	ctx := cfg.Ctx
	var rows []BenchRow
	for _, name := range jsonDatasets() {
		if cfg.stopped() {
			break
		}
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			return flushRows(w, rows, err)
		}
		for _, a := range jsonAlgos {
			a.run(ctx, g) // warm-up
			best := int64(-1)
			for i := 0; i < iters; i++ {
				d := timed(func() { a.run(ctx, g) }).Nanoseconds()
				if best < 0 || d < best {
					best = d
				}
			}
			bytes := allocated(func() { a.run(ctx, g) })
			if cfg.stopped() {
				break // the timings above raced the cancellation: discard
			}
			row := BenchRow{
				Algo:       a.name,
				Dataset:    name,
				N:          g.N(),
				M:          g.M(),
				NsPerOp:    best,
				BytesPerOp: bytes,
			}
			if cfg.Metrics {
				row.Metrics = captureMetrics(func() { a.run(ctx, g) })
			}
			rows = append(rows, row)
			runtime.GC()
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, name := range centralityDatasets() {
		if cfg.stopped() {
			break
		}
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			return flushRows(w, rows, err)
		}
		for _, v := range centralityVariants(workers) {
			var res *centrality.Result
			best := int64(-1)
			for i := 0; i < iters; i++ {
				d := timed(func() {
					res = centrality.GreedyCtx(ctx, g, v.k, centrality.CLOSENESS, v.opts)
				}).Nanoseconds()
				if best < 0 || d < best {
					best = d
				}
			}
			bytes := allocated(func() { centrality.GreedyCtx(ctx, g, v.k, centrality.CLOSENESS, v.opts) })
			if cfg.stopped() {
				break
			}
			row := BenchRow{
				Algo:       v.name,
				Dataset:    name,
				N:          g.N(),
				M:          g.M(),
				NsPerOp:    best,
				BytesPerOp: bytes,
				K:          v.k,
				GainCalls:  res.GainCalls,
				Workers:    v.workers,
				Batch:      v.batch,
			}
			if cfg.Metrics {
				row.Metrics = captureMetrics(func() {
					centrality.GreedyCtx(ctx, g, v.k, centrality.CLOSENESS, v.opts)
				})
			}
			rows = append(rows, row)
			runtime.GC()
		}
	}
	return flushRows(w, rows, nil)
}

// flushRows writes the collected rows even when the run ends early, so
// a timeout or ^C never loses completed measurements. A run error takes
// precedence over an encoding error in the return value.
func flushRows(w io.Writer, rows []BenchRow, runErr error) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil && runErr == nil {
		return err
	}
	return runErr
}
