package bench

import (
	"encoding/json"
	"io"
	"runtime"

	"neisky/internal/core"
	"neisky/internal/dataset"
	"neisky/internal/graph"
)

// BenchRow is one machine-readable measurement, the shape CI diffs
// between commits.
type BenchRow struct {
	Algo       string `json:"algo"`
	Dataset    string `json:"dataset"`
	N          int    `json:"n"`
	M          int    `json:"m"`
	NsPerOp    int64  `json:"ns_per_op"`
	BytesPerOp uint64 `json:"bytes_per_op"`
}

// jsonAlgos are the contenders tracked in the JSON benchmark: the
// bitset-kernel hot path, the legacy merge path it replaced (the
// DisableHubIndex ablation, ≈ the pre-index baseline), and the sharded
// variant at 8 workers.
var jsonAlgos = []struct {
	name string
	run  func(*graph.Graph) *core.Result
}{
	{"FilterRefineSky", func(g *graph.Graph) *core.Result {
		return core.FilterRefineSky(g, core.Options{})
	}},
	{"FilterRefineSky-nohub", func(g *graph.Graph) *core.Result {
		return core.FilterRefineSky(g, core.Options{DisableHubIndex: true})
	}},
	{"ParallelFilterRefineSky-8", func(g *graph.Graph) *core.Result {
		return core.ParallelFilterRefineSky(g, core.Options{}, 8)
	}},
}

// jsonDatasets covers the Table I stand-ins plus the two large graphs
// the acceptance speedup is measured on.
func jsonDatasets() []string {
	return append(dataset.Five(), "livejournal-sim", "orkut-sim")
}

// RunBenchJSON measures every (algo, dataset) pair and writes the rows
// as a JSON array to w. Per pair: one untimed warm-up run (which also
// amortizes the lazy hub-index build, as any real pipeline would), then
// ns_per_op is the best of three timed runs and bytes_per_op a single
// allocation-counted run.
func RunBenchJSON(w io.Writer, cfg Config) error {
	cfg.fill()
	var rows []BenchRow
	for _, name := range jsonDatasets() {
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			return err
		}
		for _, a := range jsonAlgos {
			a.run(g) // warm-up
			iters := 3
			if cfg.Quick {
				iters = 1
			}
			best := int64(-1)
			for i := 0; i < iters; i++ {
				d := timed(func() { a.run(g) }).Nanoseconds()
				if best < 0 || d < best {
					best = d
				}
			}
			bytes := allocated(func() { a.run(g) })
			rows = append(rows, BenchRow{
				Algo:       a.name,
				Dataset:    name,
				N:          g.N(),
				M:          g.M(),
				NsPerOp:    best,
				BytesPerOp: bytes,
			})
			runtime.GC()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
