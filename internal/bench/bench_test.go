package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// tinyCfg runs experiments at a small scale so the whole suite smokes
// in seconds.
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, Scale: 0.05, Quick: true}
}

// TestRunBenchJSONShape: the machine-readable benchmark must emit both
// the skyline rows and the centrality rows (with k / gain-calls /
// workers / batch metadata), and every scalar-vs-batched pair must
// report the same gain-call count.
func TestRunBenchJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := RunBenchJSON(&buf, Config{Out: &buf, Scale: 0.05, Quick: true, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	var rows []BenchRow
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("output is not a JSON row array: %v", err)
	}
	calls := map[string]int{} // dataset → first-round gain calls
	sawSkyline, sawBatch := false, false
	for _, r := range rows {
		if r.Algo == "FilterRefineSky" {
			sawSkyline = true
		}
		if strings.HasPrefix(r.Algo, "FirstRoundSweep") {
			if r.K != 1 || r.GainCalls <= 0 || r.Batch == "" || r.Workers <= 0 {
				t.Fatalf("centrality row missing metadata: %+v", r)
			}
			if r.Batch == "on" {
				sawBatch = true
			}
			if want, ok := calls[r.Dataset]; ok {
				if r.GainCalls != want {
					t.Fatalf("%s on %s: gain calls %d, other engine did %d",
						r.Algo, r.Dataset, r.GainCalls, want)
				}
			} else {
				calls[r.Dataset] = r.GainCalls
			}
		}
	}
	if !sawSkyline || !sawBatch {
		t.Fatalf("rows incomplete: skyline=%v batch=%v", sawSkyline, sawBatch)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyCfg(&buf)); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "table2", "fig13", "example2", "extensions", "ablation"}
	if len(Experiments) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(Experiments), len(want))
	}
	for i, id := range want {
		if Experiments[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, Experiments[i].ID, id)
		}
	}
}

func TestEachExperimentSmokes(t *testing.T) {
	headers := map[string]string{
		"table1":   "Table I",
		"fig3":     "Fig 3",
		"fig4":     "Fig 4",
		"fig5":     "Fig 5",
		"fig6":     "Fig 6",
		"fig9":     "Fig 9",
		"fig10":    "Fig 10",
		"table2":   "Table II",
		"fig13":    "Fig 13",
		"example2": "Example 2",
	}
	for id, header := range headers {
		var buf bytes.Buffer
		if err := Run(id, tinyCfg(&buf)); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), header) {
			t.Fatalf("%s output missing header %q:\n%s", id, header, buf.String())
		}
		if len(buf.String()) < 40 {
			t.Fatalf("%s output suspiciously short", id)
		}
	}
}

// The centrality sweeps are slower; smoke them at an even smaller scale.
func TestCentralityExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range []string{"fig7", "fig8", "fig11", "fig12"} {
		var buf bytes.Buffer
		cfg := Config{Out: &buf, Scale: 0.02, Quick: true}
		if err := Run(id, cfg); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), "speedup") {
			t.Fatalf("%s output missing speedup column", id)
		}
	}
}

func TestExample2Exact(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("example2", tinyCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "21") {
		t.Fatalf("Example 2 must report 42 and 21 gain calls:\n%s", out)
	}
}
