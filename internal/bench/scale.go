package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

// The million-scale pipeline benchmark: generate a shuffled Chung–Lu
// graph straight through the bounded-memory converter (the graph never
// exists in RAM), snapshot it twice — original ids and degree-descending
// relabeled — then measure skyline runs over the mmap'd snapshots. The
// relabel-on vs relabel-off rows isolate the locality win; a heap-loaded
// row pins mmap-vs-heap parity on identical work.

// ScaleConfig parameterizes RunScaleJSON.
type ScaleConfig struct {
	N    int     // vertices (default 2,000,000)
	M    int     // target edges (default 4×N, avg degree ≈ 8)
	Beta float64 // Chung–Lu exponent (default 2.5)
	Seed uint64  // generator + shuffle seed (default 1)

	// Dir holds the two snapshots (and the converter's spill runs). If
	// empty a temporary directory is used and removed afterwards.
	Dir string

	// Workers for the sharded skyline row (default 8, the JSON
	// benchmark's convention).
	Workers int

	// Iters timed runs per row, best-of (default 3).
	Iters int

	Out io.Writer // progress log; nil silences it
}

func (c *ScaleConfig) fill() {
	if c.N <= 0 {
		c.N = 2_000_000
	}
	if c.M <= 0 {
		c.M = 4 * c.N
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
}

func (c *ScaleConfig) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// RunScaleJSON runs the full scale pipeline and writes the measurement
// rows as a JSON array to w. Row set, all on the same generated graph:
//
//	Convert / Convert-relabel   — streaming conversion wall time (ConvertNs)
//	FilterRefineSky             — mmap, relabel off | on; heap, relabel off
//	ParallelFilterRefineSky-W   — mmap, relabel on
//
// The heap and mmap relabel-off skylines are verified identical, and
// the relabel-on skyline is verified to have the same size (its ids
// live in the permuted space).
func RunScaleJSON(w io.Writer, cfg ScaleConfig) error {
	cfg.fill()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "nsscale-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	dataset := fmt.Sprintf("chunglu-%d-%d", cfg.N, cfg.M)
	plain := filepath.Join(dir, "scale.nsb2")
	relabeled := filepath.Join(dir, "scale-rel.nsb2")

	// Stage 1: generate → convert, original (shuffled) ids. The shuffle
	// matters: Chung–Lu hands out ids in weight order, which is already
	// the relabeled layout — unshuffled input would hide the locality
	// win behind an accidental head start.
	src := func(emit func(u, v int32) error) error {
		return gen.StreamChungLu(cfg.N, cfg.M, cfg.Beta, cfg.Seed,
			gen.ShuffledLabels(cfg.N, cfg.Seed, emit))
	}
	cfg.printf("scale: generating %s (shuffled ids) -> %s\n", dataset, plain)
	start := time.Now()
	stats, err := graph.ConvertEdges(src, plain, graph.ConvertOptions{N: cfg.N})
	if err != nil {
		return err
	}
	convertNs := time.Since(start).Nanoseconds()
	cfg.printf("scale: converted n=%d m=%d in %s (%d spill runs, max %d pairs resident)\n",
		stats.N, stats.M, time.Duration(convertNs).Round(time.Millisecond), stats.Runs, stats.MaxBuffered)

	// Stage 2: re-encode with degree-descending relabeling (snapshot →
	// snapshot, still bounded memory via the mmap reader).
	start = time.Now()
	relStats, err := graph.ConvertBinaryFile(plain, relabeled, graph.ConvertOptions{Relabel: true})
	if err != nil {
		return err
	}
	relConvertNs := time.Since(start).Nanoseconds()
	cfg.printf("scale: relabeled snapshot in %s\n", time.Duration(relConvertNs).Round(time.Millisecond))

	rows := []BenchRow{
		{Algo: "Convert", Dataset: dataset, N: stats.N, M: stats.M, Relabel: "off", ConvertNs: convertNs},
		{Algo: "Convert-relabel", Dataset: dataset, N: relStats.N, M: relStats.M, Relabel: "on", ConvertNs: relConvertNs},
	}

	// Stage 3: skyline rows over the snapshots.
	var plainSky, relSky, heapSky int
	row, err := snapshotRow(cfg, dataset, plain, "mmap", "off", 1, &plainSky)
	if err != nil {
		return flushRows(w, rows, err)
	}
	rows = append(rows, row)
	row, err = snapshotRow(cfg, dataset, relabeled, "mmap", "on", 1, &relSky)
	if err != nil {
		return flushRows(w, rows, err)
	}
	rows = append(rows, row)
	row, err = snapshotRow(cfg, dataset, relabeled, "mmap", "on", cfg.Workers, nil)
	if err != nil {
		return flushRows(w, rows, err)
	}
	rows = append(rows, row)
	row, err = snapshotRow(cfg, dataset, plain, "heap", "off", 1, &heapSky)
	if err != nil {
		return flushRows(w, rows, err)
	}
	rows = append(rows, row)

	if plainSky != heapSky {
		return flushRows(w, rows, fmt.Errorf("bench: mmap skyline |R|=%d, heap |R|=%d on the same snapshot", plainSky, heapSky))
	}
	if plainSky != relSky {
		return flushRows(w, rows, fmt.Errorf("bench: relabeled skyline |R|=%d differs from original %d", relSky, plainSky))
	}
	cfg.printf("scale: |R|=%d consistent across heap/mmap/relabeled runs\n", plainSky)
	return flushRows(w, rows, nil)
}

// snapshotRow measures one skyline configuration against a snapshot
// file, reopening nothing between iterations (the open cost is its own
// row via ConvertNs; here we measure the compute).
func snapshotRow(cfg ScaleConfig, dataset, path, source, relabel string, workers int, skySize *int) (BenchRow, error) {
	g, closer, err := loadSnapshot(path, source == "mmap")
	if err != nil {
		return BenchRow{}, err
	}
	if closer != nil {
		defer closer.Close()
	}
	run := func() *core.Result {
		if workers > 1 {
			return core.ParallelFilterRefineSky(g, core.Options{}, workers)
		}
		return core.FilterRefineSky(g, core.Options{})
	}
	algo := "FilterRefineSky"
	if workers > 1 {
		algo = fmt.Sprintf("ParallelFilterRefineSky-%d", workers)
	}
	cfg.printf("scale: %s source=%s relabel=%s...\n", algo, source, relabel)
	res := run() // warm-up; also builds the lazy hub index once
	if skySize != nil {
		*skySize = len(res.Skyline)
	}
	best := int64(-1)
	for i := 0; i < cfg.Iters; i++ {
		d := timed(func() { run() }).Nanoseconds()
		if best < 0 || d < best {
			best = d
		}
	}
	bytes := allocated(func() { run() })
	runtime.GC()
	return BenchRow{
		Algo: algo, Dataset: dataset, N: g.N(), M: g.M(),
		NsPerOp: best, BytesPerOp: bytes,
		Source: source, Relabel: relabel,
	}, nil
}

func loadSnapshot(path string, useMmap bool) (*graph.Graph, *graph.Mapped, error) {
	if useMmap {
		mg, err := graph.OpenMmap(path)
		if err != nil {
			return nil, nil, err
		}
		return mg.Graph, mg, nil
	}
	g, err := graph.LoadBinaryFile(path)
	return g, nil, err
}

// RunFileBenchJSON benchmarks the skyline contenders against an
// existing snapshot or edge-list file (nsbench -input), writing rows in
// the same shape as RunBenchJSON.
func RunFileBenchJSON(w io.Writer, cfg Config, path string, useMmap bool) error {
	cfg.fill()
	iters := 3
	if cfg.Quick {
		iters = 1
	}
	var g *graph.Graph
	var closer *graph.Mapped
	var err error
	source := "heap"
	if graph.IsBinarySnapshot(path) {
		g, closer, err = loadSnapshot(path, useMmap)
		if useMmap {
			source = "mmap"
		}
	} else {
		var f *os.File
		if f, err = os.Open(path); err == nil {
			g, err = graph.ReadEdgeList(f)
			f.Close()
		}
	}
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	name := filepath.Base(path)
	var rows []BenchRow
	for _, a := range jsonAlgos {
		if cfg.stopped() {
			break
		}
		a.run(cfg.Ctx, g) // warm-up
		best := int64(-1)
		for i := 0; i < iters; i++ {
			d := timed(func() { a.run(cfg.Ctx, g) }).Nanoseconds()
			if best < 0 || d < best {
				best = d
			}
		}
		bytes := allocated(func() { a.run(cfg.Ctx, g) })
		if cfg.stopped() {
			break
		}
		rows = append(rows, BenchRow{
			Algo: a.name, Dataset: name, N: g.N(), M: g.M(),
			NsPerOp: best, BytesPerOp: bytes, Source: source,
		})
		runtime.GC()
	}
	return flushRows(w, rows, nil)
}
