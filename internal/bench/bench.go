// Package bench regenerates every table and figure of the paper's
// evaluation section (§V) on the stand-in datasets, printing rows in the
// same shape the paper reports: per-dataset runtimes (Fig 3), memory
// (Fig 4), skyline cardinalities (Fig 5–6), group-centrality sweeps
// (Fig 7–8, 11–12), top-k clique sweeps (Fig 9), scalability (Fig 10,
// Table II) and the case studies (Fig 13). EXPERIMENTS.md records a
// captured run next to the paper's numbers.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/core"
	"neisky/internal/dataset"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
	"neisky/internal/scjoin"
)

// Config controls an experiment run.
type Config struct {
	Out     io.Writer
	Scale   float64 // dataset scale multiplier (1.0 = catalog defaults)
	Quick   bool    // shrink parameter grids for smoke runs
	Seed    uint64  // base seed for sampling in scalability experiments
	Workers int     // parallelism for the sharded contenders (0 = GOMAXPROCS)
	Metrics bool    // fold per-stage obs metrics into the -json rows
	// Ctx, when non-nil, bounds the run: experiments stop at the next
	// boundary after cancellation and partial output (including JSON
	// rows collected so far) is still flushed.
	Ctx context.Context
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
}

// stopped reports whether the run's context has been cancelled.
func (c *Config) stopped() bool { return c.Ctx.Err() != nil }

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// timed runs fn and returns its wall-clock duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// allocated runs fn and returns the bytes allocated during the run
// (TotalAlloc delta after a GC), the proxy this harness uses for the
// paper's peak-memory comparison: algorithms that materialize big
// intermediate structures (2-hop lists, inverted indexes) allocate
// proportionally more.
func allocated(fn func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

// loadFive loads the Table I stand-ins at the configured scale.
func loadFive(cfg *Config) map[string]*graph.Graph {
	out := make(map[string]*graph.Graph, 5)
	for _, name := range dataset.Five() {
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			panic(err)
		}
		out[name] = g
	}
	return out
}

// RunTable1 prints the dataset statistics table (paper Table I).
func RunTable1(cfg Config) {
	cfg.fill()
	cfg.printf("== Table I: dataset statistics (stand-ins at scale %.2f) ==\n", cfg.Scale)
	cfg.printf("%-16s %10s %10s %8s   %s\n", "Dataset", "n", "m", "dmax", "paper n/m/dmax")
	graphs := loadFive(&cfg)
	for _, name := range dataset.Five() {
		g := graphs[name]
		spec, _ := dataset.Find(name)
		st := g.Stats()
		cfg.printf("%-16s %10d %10d %8d   %d/%d/%d\n",
			name, st.N, st.M, st.MaxDegree, spec.PaperN, spec.PaperM, spec.PaperDmax)
	}
}

// skylineAlgos lists the Exp-1/Exp-2 contenders in paper order.
var skylineAlgos = []struct {
	name string
	run  func(*graph.Graph) *core.Result
}{
	{"LC-Join", func(g *graph.Graph) *core.Result { return scjoin.Skyline(g, core.Options{}) }},
	{"TT-Join", func(g *graph.Graph) *core.Result { return scjoin.TrieSkyline(g, core.Options{}) }},
	{"BaseSky", func(g *graph.Graph) *core.Result { return core.BaseSky(g, core.Options{}) }},
	{"Base2Hop", func(g *graph.Graph) *core.Result { return core.Base2Hop(g, core.Options{}) }},
	{"BaseCSet", func(g *graph.Graph) *core.Result { return core.BaseCSet(g, core.Options{}) }},
	{"FilterRefineSky", func(g *graph.Graph) *core.Result { return core.FilterRefineSky(g, core.Options{}) }},
}

// RunFig3 reports skyline-computation runtimes (paper Fig 3 / Exp-1).
func RunFig3(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 3 (Exp-1): runtime of neighborhood skyline algorithms ==\n")
	cfg.printf("%-16s", "Dataset")
	for _, a := range skylineAlgos {
		cfg.printf(" %15s", a.name)
	}
	cfg.printf("   speedup vs BaseSky\n")
	graphs := loadFive(&cfg)
	for _, name := range dataset.Five() {
		g := graphs[name]
		cfg.printf("%-16s", name)
		var baseT, frsT time.Duration
		var skySize int
		for _, a := range skylineAlgos {
			var res *core.Result
			d := timed(func() { res = a.run(g) })
			cfg.printf(" %15s", d.Round(time.Microsecond))
			switch a.name {
			case "BaseSky":
				baseT = d
			case "FilterRefineSky":
				frsT = d
				skySize = len(res.Skyline)
			}
		}
		speed := float64(baseT) / float64(frsT)
		cfg.printf("   %.1fx (|R|=%d)\n", speed, skySize)
	}
}

// RunFig4 reports allocation footprints (paper Fig 4 / Exp-2).
func RunFig4(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 4 (Exp-2): memory (bytes allocated, MB) ==\n")
	cfg.printf("%-16s %12s", "Dataset", "graph(MB)")
	for _, a := range skylineAlgos {
		cfg.printf(" %15s", a.name)
	}
	cfg.printf("\n")
	graphs := loadFive(&cfg)
	for _, name := range dataset.Five() {
		g := graphs[name]
		cfg.printf("%-16s %12.2f", name, mb(uint64(g.Bytes())))
		for _, a := range skylineAlgos {
			alloc := allocated(func() { a.run(g) })
			cfg.printf(" %15.2f", mb(alloc))
		}
		cfg.printf("\n")
	}
}

// RunFig5 compares |R|, |C| and |V| on the five datasets (Fig 5/Exp-3).
func RunFig5(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 5 (Exp-3): skyline vs candidate vs vertex counts ==\n")
	cfg.printf("%-16s %10s %12s %10s %10s\n", "Dataset", "|R|", "|C|", "|V|", "|V|/|R|")
	graphs := loadFive(&cfg)
	for _, name := range dataset.Five() {
		g := graphs[name]
		res := core.FilterRefineSky(g, core.Options{})
		ratio := float64(g.N()) / float64(len(res.Skyline))
		cfg.printf("%-16s %10d %12d %10d %9.1fx\n",
			name, len(res.Skyline), len(res.Candidates), g.N(), ratio)
	}
}

// RunFig6 measures |R|, |C|, |V| on synthetic ER and power-law graphs
// (Fig 6 / Exp-3). ER varies Δp (p = Δp·ln n / n); PL varies β.
func RunFig6(cfg Config) {
	cfg.fill()
	n := 100000
	if cfg.Quick {
		n = 10000
	}
	n = int(float64(n) * cfg.Scale)
	cfg.printf("== Fig 6 (Exp-3): synthetic graphs, n=%d ==\n", n)
	cfg.printf("-- (a) ER, vary Δp --\n%8s %10s %12s %10s\n", "Δp", "|R|", "|C|", "|V|")
	for _, dp := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		g := gen.ERDeltaP(n, dp, 100+uint64(dp*10))
		res := core.FilterRefineSky(g, core.Options{})
		cfg.printf("%8.1f %10d %12d %10d\n", dp, len(res.Skyline), len(res.Candidates), g.N())
	}
	// Average degree 3 keeps substantial low-degree mass, the regime the
	// paper's Fig 6(b) shows (|R|, |C| well below |V| for every β).
	cfg.printf("-- (b) power law, vary β --\n%8s %10s %12s %10s\n", "β", "|R|", "|C|", "|V|")
	m := n * 3 / 2
	for _, beta := range []float64{2.6, 2.8, 3.0, 3.2, 3.4} {
		g := gen.PowerLaw(n, m, beta, 200+uint64(beta*10))
		res := core.FilterRefineSky(g, core.Options{})
		cfg.printf("%8.1f %10d %12d %10d\n", beta, len(res.Skyline), len(res.Candidates), g.N())
	}
}

// kGrid returns the group-size sweep (paper: 50..300 step 50).
func kGrid(cfg *Config) []int {
	if cfg.Quick {
		return []int{10, 20, 30}
	}
	return []int{50, 100, 150, 200, 250, 300}
}

// RunFig7 sweeps group closeness maximization (Fig 7 / Exp-4):
// Greedy++-style lazy greedy vs the skyline-pruned NeiSkyGC.
func RunFig7(cfg Config) {
	cfg.fill()
	runCentralitySweep(&cfg, "Fig 7 (Exp-4): group closeness maximization", centrality.CLOSENESS)
}

// RunFig8 sweeps group harmonic maximization (Fig 8 / Exp-5).
func RunFig8(cfg Config) {
	cfg.fill()
	runCentralitySweep(&cfg, "Fig 8 (Exp-5): group harmonic maximization", centrality.HARMONIC)
}

func runCentralitySweep(cfg *Config, title string, m centrality.Measure) {
	baseName, skyName := "Greedy++", "NeiSkyGC"
	if m == centrality.HARMONIC {
		baseName, skyName = "Greedy-H", "NeiSkyGH"
	}
	cfg.printf("== %s ==\n", title)
	cfg.printf("%-16s %5s %12s %12s %8s %10s %10s\n",
		"Dataset", "k", baseName, skyName, "speedup", "value(base)", "value(sky)")
	graphs := loadFive(cfg)
	for _, name := range dataset.Five() {
		g := graphs[name]
		sky := core.FilterRefineSky(g, core.Options{})
		for _, k := range kGrid(cfg) {
			var baseRes, skyRes *centrality.Result
			baseT := timed(func() {
				baseRes = centrality.Greedy(g, k, m, centrality.Options{Lazy: true, PrunedBFS: true})
			})
			skyT := timed(func() {
				// Skyline time is part of the cost, as in the paper.
				s := core.FilterRefineSky(g, core.Options{})
				skyRes = centrality.Greedy(g, k, m,
					centrality.Options{Candidates: s.Skyline, Lazy: true, PrunedBFS: true})
			})
			cfg.printf("%-16s %5d %12s %12s %7.2fx %10.4f %10.4f\n",
				name, k, baseT.Round(time.Millisecond), skyT.Round(time.Millisecond),
				float64(baseT)/float64(skyT), baseRes.Value, skyRes.Value)
		}
		_ = sky
	}
}

// RunFig9 sweeps top-k maximum cliques (Fig 9 / Exp-6) on the clique
// workloads.
func RunFig9(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 9 (Exp-6): top-k maximum cliques ==\n")
	cfg.printf("%-12s %3s %14s %16s %8s %10s %12s\n",
		"Dataset", "k", "BaseTopkMCC", "NeiSkyTopkMCC", "speedup", "MCcalls", "sizes")
	ks := []int{1, 3, 5, 7, 9}
	if cfg.Quick {
		ks = []int{1, 3, 5}
	}
	for _, name := range []string{"pokec-sim", "orkut-sim"} {
		g, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			panic(err)
		}
		for _, k := range ks {
			var baseRes, skyRes *clique.TopKResult
			baseT := timed(func() { baseRes = clique.BaseTopkMCC(g, k) })
			skyT := timed(func() { skyRes = clique.NeiSkyTopkMCC(g, k) })
			cfg.printf("%-12s %3d %14s %16s %7.2fx %4d/%4d %12v\n",
				name, k, baseT.Round(time.Millisecond), skyT.Round(time.Millisecond),
				float64(baseT)/float64(skyT), baseRes.MCCalls, skyRes.MCCalls,
				clique.Sizes(skyRes.Cliques))
		}
	}
}

// fractions is the 20%..100% grid of Exp-7.
var fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// scalabilityGraphs yields the vary-n (vertex-sampled) and vary-ρ
// (edge-sampled) subgraphs of the scalability dataset.
func scalabilityGraphs(cfg *Config) (byN, byRho map[float64]*graph.Graph) {
	g, err := dataset.Load("livejournal-sim", cfg.Scale)
	if err != nil {
		panic(err)
	}
	byN = make(map[float64]*graph.Graph)
	byRho = make(map[float64]*graph.Graph)
	for _, f := range fractions {
		if f == 1.0 {
			byN[f] = g
			byRho[f] = g
			continue
		}
		r1 := rng.New(cfg.Seed + uint64(f*100))
		byN[f] = g.SampleVertices(f, r1.Float64)
		r2 := rng.New(cfg.Seed + 1000 + uint64(f*100))
		byRho[f] = g.SampleEdges(f, r2.Float64)
	}
	return byN, byRho
}

// RunFig10 measures skyline-computation scalability (Fig 10 / Exp-7).
func RunFig10(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 10 (Exp-7): scalability of BaseSky vs FilterRefineSky (livejournal-sim) ==\n")
	byN, byRho := scalabilityGraphs(&cfg)
	for _, mode := range []struct {
		label  string
		graphs map[float64]*graph.Graph
	}{{"vary n", byN}, {"vary ρ", byRho}} {
		cfg.printf("-- %s --\n%6s %12s %18s %8s\n", mode.label, "%", "BaseSky", "FilterRefineSky", "speedup")
		for _, f := range fractions {
			g := mode.graphs[f]
			baseT := timed(func() { core.BaseSky(g, core.Options{}) })
			frsT := timed(func() { core.FilterRefineSky(g, core.Options{}) })
			cfg.printf("%5.0f%% %12s %18s %7.1fx\n",
				f*100, baseT.Round(time.Microsecond), frsT.Round(time.Microsecond),
				float64(baseT)/float64(frsT))
		}
	}
}

// RunFig11 measures group-closeness scalability (Fig 11 / Exp-7).
func RunFig11(cfg Config) {
	cfg.fill()
	runScalabilityCentrality(&cfg, "Fig 11 (Exp-7): scalability of Greedy++ vs NeiSkyGC", centrality.CLOSENESS)
}

// RunFig12 measures group-harmonic scalability (Fig 12 / Exp-7).
func RunFig12(cfg Config) {
	cfg.fill()
	runScalabilityCentrality(&cfg, "Fig 12 (Exp-7): scalability of Greedy-H vs NeiSkyGH", centrality.HARMONIC)
}

func runScalabilityCentrality(cfg *Config, title string, m centrality.Measure) {
	k := 50
	if cfg.Quick {
		k = 10
	}
	cfg.printf("== %s (k=%d) ==\n", title, k)
	byN, byRho := scalabilityGraphs(cfg)
	for _, mode := range []struct {
		label  string
		graphs map[float64]*graph.Graph
	}{{"vary n", byN}, {"vary ρ", byRho}} {
		cfg.printf("-- %s --\n%6s %12s %12s %8s\n", mode.label, "%", "base", "neisky", "speedup")
		for _, f := range fractions {
			g := mode.graphs[f]
			baseT := timed(func() {
				centrality.Greedy(g, k, m, centrality.Options{Lazy: true, PrunedBFS: true})
			})
			skyT := timed(func() {
				s := core.FilterRefineSky(g, core.Options{})
				centrality.Greedy(g, k, m,
					centrality.Options{Candidates: s.Skyline, Lazy: true, PrunedBFS: true})
			})
			cfg.printf("%5.0f%% %12s %12s %7.2fx\n",
				f*100, baseT.Round(time.Millisecond), skyT.Round(time.Millisecond),
				float64(baseT)/float64(skyT))
		}
	}
}

// RunTable2 measures maximum-clique scalability (Table II / Exp-7):
// MC-BRB-style BaseMCC vs NeiSkyMC.
func RunTable2(cfg Config) {
	cfg.fill()
	cfg.printf("== Table II (Exp-7): MC-BRB vs NeiSkyMC on livejournal-sim ==\n")
	byN, byRho := scalabilityGraphs(&cfg)
	for _, mode := range []struct {
		label  string
		graphs map[float64]*graph.Graph
	}{{"vary n", byN}, {"vary ρ", byRho}} {
		cfg.printf("-- %s --\n%6s %14s %14s %14s %14s %6s\n",
			mode.label, "%", "MC-BRB", "NeiSky total", "(skyline)", "(search)", "ω")
		for _, f := range fractions {
			g := mode.graphs[f]
			var base, sky *clique.Result
			var skyRes *core.Result
			baseT := timed(func() { base = clique.BaseMCC(g) })
			skylineT := timed(func() { skyRes = core.FilterRefineSky(g, core.Options{}) })
			searchT := timed(func() { sky = clique.NeiSkyMCWithSkyline(g, skyRes.Skyline) })
			if len(base.Clique) != len(sky.Clique) {
				panic(fmt.Sprintf("clique size mismatch at %v: %d vs %d",
					f, len(base.Clique), len(sky.Clique)))
			}
			cfg.printf("%5.0f%% %14s %14s %14s %14s %6d\n",
				f*100, baseT.Round(time.Microsecond),
				(skylineT + searchT).Round(time.Microsecond),
				skylineT.Round(time.Microsecond), searchT.Round(time.Microsecond),
				len(base.Clique))
		}
	}
	cfg.printf("note: at this reduced scale the skyline preprocessing is visible next to\n")
	cfg.printf("the search itself; the paper's LiveJournal searches run ~1000s, so there\n")
	cfg.printf("the same overhead is negligible and the search-time saving dominates.\n")
}

// RunFig13 runs the case studies (Fig 13): skyline sizes on Karate and
// the bombing-network stand-in.
func RunFig13(cfg Config) {
	cfg.fill()
	cfg.printf("== Fig 13 (case study): skylines of tiny networks ==\n")
	for _, name := range []string{"karate", "bombing-sim"} {
		g, err := dataset.Load(name, 1)
		if err != nil {
			panic(err)
		}
		res := core.FilterRefineSky(g, core.Options{})
		pct := 100 * float64(len(res.Skyline)) / float64(g.N())
		cfg.printf("%-12s n=%3d m=%4d |R|=%3d (%.0f%%)  skyline=%v\n",
			name, g.N(), g.M(), len(res.Skyline), pct, res.Skyline)
		// Low-degree vertices should dominate the dominated set.
		var avgSky, avgDom float64
		inSky := core.SkylineSet(res, g.N())
		nSky := 0
		for u := int32(0); u < int32(g.N()); u++ {
			if inSky[u] {
				avgSky += float64(g.Degree(u))
				nSky++
			} else {
				avgDom += float64(g.Degree(u))
			}
		}
		if nSky > 0 && g.N() > nSky {
			cfg.printf("             avg degree: skyline %.1f vs dominated %.1f\n",
				avgSky/float64(nSky), avgDom/float64(g.N()-nSky))
		}
	}
}

// RunExample2 reproduces the paper's Example 2 accounting: marginal-gain
// evaluations of the plain greedy vs the skyline-restricted greedy on
// the Fig 1 graph with k = 3 (42 vs 21).
func RunExample2(cfg Config) {
	cfg.fill()
	g := dataset.Fig1()
	base := centrality.Greedy(g, 3, centrality.CLOSENESS, centrality.Options{})
	sky := core.FilterRefineSky(g, core.Options{})
	pruned := centrality.Greedy(g, 3, centrality.CLOSENESS,
		centrality.Options{Candidates: sky.Skyline})
	cfg.printf("== Example 2: marginal-gain calls on the Fig 1 graph (k=3) ==\n")
	cfg.printf("BaseGC gain calls:    %d (paper: 42)\n", base.GainCalls)
	cfg.printf("NeiSkyGC gain calls:  %d (paper: 21; |R|=%d)\n", pruned.GainCalls, len(sky.Skyline))
}

// Experiments maps experiment IDs to runners in paper order.
var Experiments = []struct {
	ID   string
	Desc string
	Run  func(Config)
}{
	{"table1", "dataset statistics", RunTable1},
	{"fig3", "skyline runtimes (Exp-1)", RunFig3},
	{"fig4", "skyline memory (Exp-2)", RunFig4},
	{"fig5", "skyline sizes on datasets (Exp-3)", RunFig5},
	{"fig6", "skyline sizes on synthetic graphs (Exp-3)", RunFig6},
	{"fig7", "group closeness maximization (Exp-4)", RunFig7},
	{"fig8", "group harmonic maximization (Exp-5)", RunFig8},
	{"fig9", "top-k maximum cliques (Exp-6)", RunFig9},
	{"fig10", "skyline scalability (Exp-7)", RunFig10},
	{"fig11", "group closeness scalability (Exp-7)", RunFig11},
	{"fig12", "group harmonic scalability (Exp-7)", RunFig12},
	{"table2", "maximum clique scalability (Exp-7)", RunTable2},
	{"fig13", "case studies", RunFig13},
	{"example2", "marginal-gain call accounting", RunExample2},
	{"extensions", "beyond-the-paper features", RunExtensions},
	{"ablation", "design-choice ablations", RunAblation},
}

// Run executes the named experiment ("all" runs everything). With a
// cancellable cfg.Ctx, "all" stops at the next experiment boundary
// after cancellation; output produced so far has already been written.
func Run(id string, cfg Config) error {
	cfg.fill()
	if id == "all" {
		for _, e := range Experiments {
			if cfg.stopped() {
				cfg.printf("bench: cancelled before %s (%v); output above is complete per experiment\n",
					e.ID, context.Cause(cfg.Ctx))
				return nil
			}
			e.Run(cfg)
			cfg.printf("\n")
		}
		return nil
	}
	for _, e := range Experiments {
		if e.ID == id {
			e.Run(cfg)
			return nil
		}
	}
	ids := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return fmt.Errorf("bench: unknown experiment %q (have %v and \"all\")", id, ids)
}
