package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// The bench-regression gate compares a fresh small-n gatebench run
// against committed baseline rows. Raw wall-clock is useless across
// machines (CI runners differ by integer factors), so both runs are
// RATIO-NORMALIZED first: every row's ns_per_op is divided by the same
// run's reference row (GateRefAlgo). Machine speed cancels in the
// ratio; what remains is each engine's cost relative to the serial
// skyline engine on the same box — the quantity a code change actually
// moves. A row regresses when its ratio grew by more than the
// tolerance over the baseline's.

// GateRefAlgo names the normalizer row: the serial filter/refine
// engine, the most stable single-threaded workload in the suite.
const GateRefAlgo = "GateReference"

// DefaultGateTolerance is the relative ratio growth that fails the
// gate (0.25 = +25%, the CI policy).
const DefaultGateTolerance = 0.25

// GateResult is one row's comparison outcome.
type GateResult struct {
	Algo     string
	Baseline float64 // baseline ns ratio vs reference
	Current  float64 // current ns ratio vs reference
	Growth   float64 // Current/Baseline - 1
	Failed   bool
}

// ratios normalizes rows by the reference row's ns_per_op.
func ratios(rows []BenchRow) (map[string]float64, error) {
	var refNs int64
	for _, r := range rows {
		if r.Algo == GateRefAlgo {
			refNs = r.NsPerOp
		}
	}
	if refNs <= 0 {
		return nil, fmt.Errorf("bench: no %s row to normalize against", GateRefAlgo)
	}
	out := make(map[string]float64, len(rows))
	for _, r := range rows {
		if r.Algo == GateRefAlgo {
			continue
		}
		if _, dup := out[r.Algo]; dup {
			return nil, fmt.Errorf("bench: duplicate gate row %q", r.Algo)
		}
		if r.NsPerOp <= 0 {
			return nil, fmt.Errorf("bench: gate row %q has non-positive ns_per_op", r.Algo)
		}
		out[r.Algo] = float64(r.NsPerOp) / float64(refNs)
	}
	return out, nil
}

// CompareGate evaluates current against baseline with the given
// tolerance (<= 0 takes DefaultGateTolerance). Every baseline row must
// be present in current — a silently dropped row would un-gate the
// engine it measured. Rows new in current are reported but never fail.
func CompareGate(baseline, current []BenchRow, tolerance float64) ([]GateResult, error) {
	if tolerance <= 0 {
		tolerance = DefaultGateTolerance
	}
	base, err := ratios(baseline)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	cur, err := ratios(current)
	if err != nil {
		return nil, fmt.Errorf("current: %w", err)
	}
	algos := make([]string, 0, len(base))
	for a := range base {
		if _, ok := cur[a]; !ok {
			return nil, fmt.Errorf("bench: baseline row %q missing from current run", a)
		}
		algos = append(algos, a)
	}
	sort.Strings(algos)
	results := make([]GateResult, 0, len(algos))
	for _, a := range algos {
		g := cur[a]/base[a] - 1
		results = append(results, GateResult{
			Algo: a, Baseline: base[a], Current: cur[a],
			Growth: g, Failed: g > tolerance,
		})
	}
	return results, nil
}

// LoadRows reads a JSON array of BenchRow from path.
func LoadRows(path string) ([]BenchRow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []BenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}
