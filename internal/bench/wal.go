package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"neisky/internal/dynsky"
	"neisky/internal/gen"
	"neisky/internal/rng"
	"neisky/internal/serve"
	"neisky/internal/wal"
)

// BENCH_7: durability and overload. Three stages, all on one synthetic
// power-law graph:
//
//   - wal-append rows sweep the fsync policy (always / interval / none)
//     over the same batch stream, so the price of the ack-after-durable
//     guarantee is a column diff;
//   - wal-recover rows measure cold crash recovery (latest checkpoint +
//     replay of the acknowledged tail) for each policy's directory, and
//     wal-checkpoint the compaction that bounds it;
//   - the serve-overload row drives the mixed load generator against an
//     admission-capped durable server: with client retries on, the run
//     must end with zero failed (torn or erroneous) reads — rejections
//     and truncations are the overload surface, failures are bugs.

// WALConfig parameterizes RunWALJSON.
type WALConfig struct {
	N    int    // vertices of the synthetic base graph (default 20,000)
	M    int    // target edges (default 4×N)
	Seed uint64 // generator + batch seed (default 1)

	Batches  int // appended batches per fsync policy (default 2,000)
	BatchOps int // edge ops per batch (default 8)

	Queries     int // overload-stage read queries (default 400)
	MaxInFlight int // overload-stage admission cap (default 4)

	// Dir holds the per-policy WAL directories (empty = a removed temp
	// dir).
	Dir string

	Out io.Writer // progress log; nil silences it
}

func (c *WALConfig) fill() {
	if c.N <= 0 {
		c.N = 20_000
	}
	if c.M <= 0 {
		c.M = 4 * c.N
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Batches <= 0 {
		c.Batches = 2_000
	}
	if c.BatchOps <= 0 {
		c.BatchOps = 8
	}
	if c.Queries <= 0 {
		c.Queries = 400
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
}

func (c *WALConfig) logf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// walPolicies is the fsync sweep, hardest guarantee first.
var walPolicies = []struct {
	name string
	opts wal.Options
}{
	{"always", wal.Options{Sync: wal.SyncAlways}},
	{"interval", wal.Options{Sync: wal.SyncInterval}},
	{"none", wal.Options{Sync: wal.SyncNone}},
}

// RunWALJSON measures the durability stack and writes BENCH_7 rows.
func RunWALJSON(w io.Writer, c WALConfig) error {
	c.fill()
	dir := c.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "nswalbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	g := gen.PowerLaw(c.N, c.M, 2.5, c.Seed)
	dataset := fmt.Sprintf("powerlaw-%d", c.N)
	batches := make([][]dynsky.Op, c.Batches)
	r := rng.New(c.Seed)
	for i := range batches {
		b := make([]dynsky.Op, c.BatchOps)
		for j := range b {
			u := int32(r.Intn(c.N))
			v := int32(r.Intn(c.N))
			for v == u {
				v = int32(r.Intn(c.N))
			}
			b[j] = dynsky.Op{Add: r.Intn(3) > 0, U: u, V: v}
		}
		batches[i] = b
	}

	var rows []BenchRow
	for _, pol := range walPolicies {
		pdir := filepath.Join(dir, pol.name)
		l, err := wal.Open(pdir, pol.opts)
		if err != nil {
			return flushRows(w, rows, err)
		}
		if _, err := l.Checkpoint(g); err != nil {
			l.Close()
			return flushRows(w, rows, err)
		}
		t0 := time.Now()
		for _, b := range batches {
			if _, err := l.Append(b); err != nil {
				l.Close()
				return flushRows(w, rows, err)
			}
		}
		appendNs := time.Since(t0).Nanoseconds()
		if err := l.Close(); err != nil {
			return flushRows(w, rows, err)
		}
		rows = append(rows, BenchRow{
			Algo:    "wal-append",
			Dataset: dataset,
			N:       g.N(),
			M:       g.M(),
			Fsync:   pol.name,
			NsPerOp: appendNs / int64(c.Batches),
			Ops:     c.BatchOps,
			Queries: c.Batches,
		})
		c.logf("wal-append  fsync=%-8s %8.1f µs/batch (%d batches × %d ops)",
			pol.name, float64(appendNs)/float64(c.Batches)/1e3, c.Batches, c.BatchOps)

		// Cold recovery of that directory: latest checkpoint + full
		// replay of the acknowledged tail.
		t0 = time.Now()
		rec, err := wal.Recover(pdir)
		if err != nil {
			return flushRows(w, rows, err)
		}
		m := rec.Replay()
		recoverNs := time.Since(t0).Nanoseconds()
		rows = append(rows, BenchRow{
			Algo:      "wal-recover",
			Dataset:   dataset,
			N:         m.Graph().N(),
			M:         m.Graph().M(),
			Fsync:     pol.name,
			RecoverNs: recoverNs,
			Ops:       len(rec.Ops),
			Queries:   rec.Records,
		})
		c.logf("wal-recover fsync=%-8s %8.1f ms (%d records, %d ops)",
			pol.name, float64(recoverNs)/1e6, rec.Records, len(rec.Ops))

		// Checkpoint compaction: the knob that bounds recovery time.
		l, err = wal.Open(pdir, pol.opts)
		if err != nil {
			return flushRows(w, rows, err)
		}
		t0 = time.Now()
		if _, err := l.Checkpoint(m.Graph()); err != nil {
			l.Close()
			return flushRows(w, rows, err)
		}
		ckptNs := time.Since(t0).Nanoseconds()
		l.Close()
		rows = append(rows, BenchRow{
			Algo:    "wal-checkpoint",
			Dataset: dataset,
			N:       g.N(),
			M:       g.M(),
			Fsync:   pol.name,
			NsPerOp: ckptNs,
		})
	}

	// Overload stage: a durable, admission-capped server under the
	// mixed load generator with client retries. Rejections are expected;
	// failures (torn or erroneous reads) are not, and a non-zero failed
	// column fails the bench gate downstream.
	overDir := filepath.Join(dir, "overload")
	snap, l, _, err := serve.OpenDurable(overDir,
		&serve.Snapshot{Graph: g, Name: dataset}, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		return flushRows(w, rows, err)
	}
	srv := serve.New(snap, serve.Options{
		MaxInFlight: c.MaxInFlight,
		Shed:        true,
	})
	srv.AttachWAL(l, 0)
	ts := httptest.NewServer(srv.Handler())
	rep, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:      ts.URL,
		Client:       ts.Client(),
		Queries:      c.Queries,
		Workers:      4 * c.MaxInFlight,
		Swaps:        4,
		Seed:         c.Seed,
		RetryBackoff: time.Millisecond,
	})
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
	if err != nil {
		return flushRows(w, rows, err)
	}
	rows = append(rows, BenchRow{
		Algo:     "serve-overload",
		Dataset:  dataset,
		N:        rep.N,
		M:        rep.M,
		Fsync:    "always",
		NsPerOp:  rep.MeanNs,
		Workers:  rep.Workers,
		Queries:  rep.Queries,
		Failed:   rep.Failed,
		Rejected: rep.Rejected,
		Swaps:    rep.Swaps,
		P50Ns:    rep.P50Ns,
		P99Ns:    rep.P99Ns,
	})
	c.logf("serve-overload cap=%d: %d answered, %d rejected, %d retries, %d failed (p99 %.1f ms)",
		c.MaxInFlight, rep.Queries, rep.Rejected, rep.Retries, rep.Failed,
		float64(rep.P99Ns)/1e6)
	if rep.Failed > 0 {
		return flushRows(w, rows, fmt.Errorf("bench: %d failed reads under overload (first: %s)", rep.Failed, rep.FirstError))
	}
	return flushRows(w, rows, nil)
}
