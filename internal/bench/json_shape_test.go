package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden files from the current output")

// rowShape is the schema fingerprint of one -json row: which JSON keys
// the row carries and which per-stage metric names its metrics block
// exposes. Values are deliberately excluded — timings drift, schemas
// must not.
type rowShape struct {
	Algo    string   `json:"algo"`
	Keys    []string `json:"keys"`
	Metrics []string `json:"metrics"`
}

// TestBenchJSONRowShapeGolden runs the real RunBenchJSON producer (tiny
// scale, quick grid, metrics on) and compares the schema of its rows —
// one fingerprint per algo — to testdata/json_row_shape.golden.json.
// This is the CI gate against accidental drift in the BENCH_*.json row
// shape: adding, renaming or dropping a field (or a published stage
// metric) fails here until the golden is regenerated with
// `go test ./internal/bench -run RowShape -update-golden`.
func TestBenchJSONRowShapeGolden(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Out: &buf, Scale: 0.05, Quick: true, Metrics: true}
	if err := RunBenchJSON(&buf, cfg); err != nil {
		t.Fatalf("RunBenchJSON: %v", err)
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &rows); err != nil {
		t.Fatalf("output is not a JSON array of objects: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("RunBenchJSON produced no rows")
	}

	shapes := make(map[string]rowShape)
	order := []string{}
	for _, row := range rows {
		var algo string
		if err := json.Unmarshal(row["algo"], &algo); err != nil {
			t.Fatalf("row missing algo: %v", err)
		}
		if _, seen := shapes[algo]; seen {
			continue // datasets share a schema per algo; fingerprint once
		}
		s := rowShape{Algo: algo}
		for k := range row {
			s.Keys = append(s.Keys, k)
		}
		sort.Strings(s.Keys)
		var metrics map[string]int64
		if raw, ok := row["metrics"]; ok {
			if err := json.Unmarshal(raw, &metrics); err != nil {
				t.Fatalf("algo %s: metrics block not a string->int64 map: %v", algo, err)
			}
			for k := range metrics {
				s.Metrics = append(s.Metrics, k)
			}
			sort.Strings(s.Metrics)
		}
		shapes[algo] = s
		order = append(order, algo)
	}

	got := make([]rowShape, 0, len(order))
	for _, algo := range order {
		got = append(got, shapes[algo])
	}
	gotJSON, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')

	golden := filepath.Join("testdata", "json_row_shape.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	var wantShapes []rowShape
	if err := json.Unmarshal(want, &wantShapes); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	if !reflect.DeepEqual(got, wantShapes) {
		t.Fatalf("-json row schema drifted from golden.\ngot:\n%s\nwant:\n%s\n"+
			"If the change is intentional, regenerate with `go test ./internal/bench -run RowShape -update-golden`.",
			gotJSON, want)
	}

	// Acceptance spot-checks: the skyline rows must expose filter vs.
	// refine stage split and bloom accounting; the centrality rows must
	// expose BFS round counts.
	for _, s := range got {
		switch s.Algo {
		case "FilterRefineSky":
			requireMetrics(t, s, "core.filter.ns", "core.refine.ns",
				"core.refine.bloom.bit_rejects", "core.refine.bloom.false_pos")
		case "GreedyPP-batch-par":
			requireMetrics(t, s, "centrality.greedy.ns", "bfs.batch.rounds")
		case "GreedyPP-scalar":
			requireMetrics(t, s, "bfs.pruned.runs", "centrality.gain_calls")
		}
	}
}

func requireMetrics(t *testing.T, s rowShape, names ...string) {
	t.Helper()
	have := make(map[string]bool, len(s.Metrics))
	for _, m := range s.Metrics {
		have[m] = true
	}
	for _, name := range names {
		if !have[name] {
			t.Fatalf("algo %s: metrics block lacks %q (have %v)", s.Algo, name, s.Metrics)
		}
	}
}
