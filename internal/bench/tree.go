package bench

import (
	"fmt"
	"io"
	"time"

	"neisky/internal/core"
	"neisky/internal/dynsky"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
	"neisky/internal/skytree"
)

// BENCH_6: the layered dominance index (internal/skytree) against
// per-query sharded-engine recomputation, on a 100k+ power-law graph.
//
// Three query shapes, each as an index-assisted row and a recompute
// baseline row:
//
//   - top-k layers: reading TopK off the prebuilt index vs re-peeling k
//     levels with ShardedFilterRefineSky per query,
//   - subset skyline: the witness-first scan against the full CSR vs
//     materializing the induced subgraph and running the sharded engine
//     on it (which rebuilds its per-snapshot caches every query),
//   - maintenance: applying an edge-update batch incrementally vs the
//     per-op full rebuild a tree-less deployment would pay.
//
// The same interleaved best-of-rounds protocol as BENCH_5, and every
// index-assisted row is oracle-verified against its recompute twin
// before the rows flush.

// TreeConfig parameterizes RunTreeJSON.
type TreeConfig struct {
	N    int     // vertices (default 100,000)
	M    int     // target edges (default 4×N)
	Beta float64 // power-law exponent (default 2.5)
	Seed uint64  // generator + sampling seed (default 1)

	// TopK is the layer depth of the top-k rows (default 3).
	TopK int
	// Subsets and SubsetFrac shape the subset-query batch: Subsets
	// queries (default 16), each sampling SubsetFrac of the vertex set
	// (default 0.01).
	Subsets    int
	SubsetFrac float64
	// Ops is the size of the maintenance update batch (default 200).
	Ops int
	// Workers sizes the sharded engine of the build and the recompute
	// baselines (default 8, the JSON benchmark's convention).
	Workers int
	// Rounds of the interleaved protocol, best-of (default 3).
	Rounds int

	Out io.Writer // progress log; nil silences it
}

func (c *TreeConfig) fill() {
	if c.N <= 0 {
		c.N = 100_000
	}
	if c.M <= 0 {
		c.M = 4 * c.N
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.Subsets <= 0 {
		c.Subsets = 16
	}
	if c.SubsetFrac <= 0 {
		c.SubsetFrac = 0.01
	}
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
}

func (c *TreeConfig) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// peelTopK is the recompute baseline for a top-k layers query: k
// sharded peels with induced-subgraph materialization between levels —
// the work a server without the index would repeat per query.
func peelTopK(g *graph.Graph, k int, so core.ShardOptions) [][]int32 {
	layers := make([][]int32, 0, k)
	cur := g
	var orig []int32
	for level := 0; level < k && cur.N() > 0; level++ {
		res := core.ShardedFilterRefineSky(cur, core.Options{KeepIsolated: true}, so)
		sky := res.Skyline
		if orig != nil {
			sky = make([]int32, len(res.Skyline))
			for i, v := range res.Skyline {
				sky[i] = orig[v]
			}
		}
		layers = append(layers, sky)
		if level == k-1 {
			break
		}
		inSky := make(map[int32]bool, len(res.Skyline))
		for _, v := range res.Skyline {
			inSky[v] = true
		}
		keep := make([]int32, 0, cur.N()-len(res.Skyline))
		for v := int32(0); v < int32(cur.N()); v++ {
			if !inSky[v] {
				keep = append(keep, v)
			}
		}
		next, no := cur.InducedSubgraph(keep)
		if orig != nil {
			for i, v := range no {
				no[i] = orig[v]
			}
		}
		cur, orig = next, no
	}
	return layers
}

// sampleSubsets draws the query batch once, shared by both contenders.
func sampleSubsets(n int, cfg *TreeConfig) [][]int32 {
	r := rng.New(cfg.Seed + 7)
	subs := make([][]int32, cfg.Subsets)
	for q := range subs {
		var sub []int32
		for v := int32(0); v < int32(n); v++ {
			if r.Float64() < cfg.SubsetFrac {
				sub = append(sub, v)
			}
		}
		if len(sub) == 0 {
			sub = append(sub, int32(r.Intn(n)))
		}
		subs[q] = sub
	}
	return subs
}

// RunTreeJSON generates the graph, builds the index, runs the
// contender grid and writes the BENCH_6 rows to w.
func RunTreeJSON(w io.Writer, cfg TreeConfig) error {
	cfg.fill()
	dataset := fmt.Sprintf("powerlaw-%d-%d", cfg.N, cfg.M)
	cfg.printf("tree: generating %s...\n", dataset)
	g := gen.PowerLaw(cfg.N, cfg.M, cfg.Beta, cfg.Seed)
	so := core.ShardOptions{Workers: cfg.Workers}
	bopts := skytree.BuildOptions{Workers: cfg.Workers}

	// Warm the per-snapshot engine caches outside every timed region —
	// a serving deployment pays them once per epoch.
	g.Hub()
	g.Sketches()
	g.DegreeSorted()

	// The one-time build, timed separately: it is the cost the
	// index-assisted rows amortize across queries.
	var tree *skytree.Tree
	buildNs := int64(-1)
	for round := 0; round < cfg.Rounds; round++ {
		d := timed(func() { tree = skytree.Build(g, bopts) }).Nanoseconds()
		if buildNs < 0 || d < buildNs {
			buildNs = d
		}
	}
	if tree.Truncated {
		return fmt.Errorf("bench: tree build truncated: %w", tree.Err)
	}
	cfg.printf("tree: built %d layers in %s\n", tree.NumLayers(),
		time.Duration(buildNs).Round(time.Millisecond))

	subs := sampleSubsets(g.N(), &cfg)

	type contender struct {
		name    string
		queries int
		k       int
		run     func() any
	}
	var treeTopK, peelK [][]int32
	var treeSubs, engSubs [][]int32
	var pairs, hits int
	contenders := []contender{
		{name: fmt.Sprintf("TreeTopK-k%d", cfg.TopK), k: cfg.TopK, queries: 1, run: func() any {
			treeTopK = tree.TopK(cfg.TopK)
			return treeTopK
		}},
		{name: fmt.Sprintf("PeelTopK-k%d", cfg.TopK), k: cfg.TopK, queries: 1, run: func() any {
			peelK = peelTopK(g, cfg.TopK, so)
			return peelK
		}},
		{name: "SubsetSkyline-tree", queries: len(subs), run: func() any {
			pairs, hits = 0, 0
			treeSubs = treeSubs[:0]
			for _, sub := range subs {
				res := skytree.SubsetSkyline(g, tree, sub)
				treeSubs = append(treeSubs, res.Skyline)
				pairs += res.PairsExamined
				hits += res.WitnessHits
			}
			return treeSubs
		}},
		{name: "SubsetSkyline-recompute", queries: len(subs), run: func() any {
			engSubs = engSubs[:0]
			for _, sub := range subs {
				ig, orig := g.InducedSubgraph(sub)
				res := core.ShardedFilterRefineSky(ig, core.Options{KeepIsolated: true}, so)
				out := make([]int32, len(res.Skyline))
				for i, v := range res.Skyline {
					out[i] = orig[v]
				}
				engSubs = append(engSubs, out)
			}
			return engSubs
		}},
	}

	best := make([]int64, len(contenders))
	for i := range best {
		best[i] = -1
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i := range contenders {
			c := &contenders[i]
			d := timed(func() { c.run() }).Nanoseconds()
			if best[i] < 0 || d < best[i] {
				best[i] = d
			}
			cfg.printf("tree: round %d/%d %-26s %s\n", round+1, cfg.Rounds, c.name,
				time.Duration(d).Round(time.Microsecond))
		}
	}

	// Oracle: the index-assisted answers must equal the recompute ones.
	if len(treeTopK) != len(peelK) {
		return fmt.Errorf("bench: tree top-k has %d layers, peel %d", len(treeTopK), len(peelK))
	}
	for k := range treeTopK {
		if !core.EqualSkylines(treeTopK[k], peelK[k]) {
			return fmt.Errorf("bench: top-k layer %d differs between tree and peel", k)
		}
	}
	for q := range subs {
		if !core.EqualSkylines(treeSubs[q], engSubs[q]) {
			return fmt.Errorf("bench: subset query %d differs between tree and recompute", q)
		}
	}

	// Maintenance: incremental carry-over per op vs the full rebuild a
	// tree-less swap pays. The maintainer is oracle-checked afterwards.
	r := rng.New(cfg.Seed + 13)
	ops := make([]dynsky.Op, cfg.Ops)
	for i := range ops {
		ops[i] = dynsky.Op{Add: i%2 == 0, U: int32(r.Intn(g.N())), V: int32(r.Intn(g.N()))}
		if ops[i].U == ops[i].V {
			ops[i].V = (ops[i].V + 1) % int32(g.N())
		}
	}
	tm := skytree.NewMaintainerFromTree(g, tree)
	maintainNs := timed(func() { tm.Apply(ops) }).Nanoseconds()
	endTree := tm.Tree()
	endGraph := tm.Graph()
	rebuilt := skytree.Build(endGraph, bopts)
	if !endTree.Equal(rebuilt) {
		return fmt.Errorf("bench: incremental maintenance diverged from rebuild after %d ops", cfg.Ops)
	}
	cfg.printf("tree: %d ops maintained in %s (oracle ok)\n", cfg.Ops,
		time.Duration(maintainNs).Round(time.Millisecond))

	rows := []BenchRow{
		{Algo: "SkyTreeBuild", Dataset: dataset, N: g.N(), M: g.M(),
			NsPerOp: buildNs, Workers: cfg.Workers, Layers: tree.NumLayers()},
	}
	for i, c := range contenders {
		per := best[i]
		if c.queries > 1 {
			per /= int64(c.queries)
		}
		row := BenchRow{
			Algo: c.name, Dataset: dataset, N: g.N(), M: g.M(),
			NsPerOp: per, Workers: cfg.Workers, K: c.k, Queries: c.queries,
			Layers: tree.NumLayers(),
		}
		if c.name == "SubsetSkyline-tree" {
			row.PairsExamined = int64(pairs)
			row.WitnessHits = int64(hits)
		}
		rows = append(rows, row)
	}
	rows = append(rows,
		BenchRow{Algo: "TreeMaintain", Dataset: dataset, N: g.N(), M: g.M(),
			NsPerOp: maintainNs / int64(cfg.Ops), Ops: cfg.Ops, Layers: endTree.NumLayers()},
		BenchRow{Algo: "TreeRebuildPerOp", Dataset: dataset, N: g.N(), M: g.M(),
			NsPerOp: buildNs, Ops: cfg.Ops, Workers: cfg.Workers, Layers: rebuilt.NumLayers()},
	)
	return flushRows(w, rows, nil)
}
