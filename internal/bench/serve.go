package bench

import (
	"io"

	"neisky/internal/serve"
)

// ServeRows flattens a load-generator report into BENCH_4-style rows:
// one "serve-mixed" row with the whole-run percentiles (NsPerOp is the
// mean read latency), then one "serve-<endpoint>" row per endpoint in
// the mix, snapshot swaps included.
func ServeRows(rep *serve.LoadReport) []BenchRow {
	rows := []BenchRow{{
		Algo:     "serve-mixed",
		Dataset:  rep.Snapshot,
		N:        rep.N,
		M:        rep.M,
		NsPerOp:  rep.MeanNs,
		Workers:  rep.Workers,
		Queries:  rep.Queries,
		Failed:   rep.Failed,
		Rejected: rep.Rejected,
		Swaps:    rep.Swaps,
		P50Ns:    rep.P50Ns,
		P99Ns:    rep.P99Ns,
	}}
	for _, ep := range rep.Endpoints {
		rows = append(rows, BenchRow{
			Algo:     "serve-" + ep.Endpoint,
			Dataset:  rep.Snapshot,
			N:        rep.N,
			M:        rep.M,
			NsPerOp:  ep.P50Ns,
			Queries:  ep.Queries,
			Failed:   ep.Failed,
			Rejected: ep.Rejected,
			P50Ns:    ep.P50Ns,
			P99Ns:    ep.P99Ns,
		})
	}
	return rows
}

// WriteServeJSON writes the report's rows as a JSON array (the
// BENCH_4.json format).
func WriteServeJSON(w io.Writer, rep *serve.LoadReport) error {
	return flushRows(w, ServeRows(rep), nil)
}
