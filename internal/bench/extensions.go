package bench

import (
	"time"

	"neisky/internal/betweenness"
	"neisky/internal/core"
	"neisky/internal/dataset"
	"neisky/internal/dynsky"
	"neisky/internal/mis"
	"neisky/internal/rng"
)

// RunExtensions exercises the features built beyond the paper: the
// parallel refine phase, the ε-approximate skyline, dynamic
// maintenance, group betweenness with skyline pruning, and the
// independent-set reduction.
func RunExtensions(cfg Config) {
	cfg.fill()
	g, err := dataset.Load("livejournal-sim", cfg.Scale)
	if err != nil {
		panic(err)
	}
	cfg.printf("== Extensions (beyond the paper) on livejournal-sim (%s) ==\n", g.Stats())

	cfg.printf("-- parallel FilterRefineSky --\n")
	seqT := timed(func() { core.FilterRefineSky(g, core.Options{}) })
	cfg.printf("%8s %12s\n", "workers", "time")
	cfg.printf("%8d %12s\n", 1, seqT.Round(time.Microsecond))
	for _, w := range []int{2, 4, 8} {
		t := timed(func() { core.ParallelFilterRefineSky(g, core.Options{}, w) })
		cfg.printf("%8d %12s\n", w, t.Round(time.Microsecond))
	}

	cfg.printf("-- ε-approximate skyline --\n%8s %10s %12s\n", "ε", "|R_ε|", "time")
	for _, eps := range []float64{0, 0.1, 0.2, 0.4} {
		var res *core.Result
		t := timed(func() { res = core.ApproxSkyline(g, eps, core.Options{}) })
		cfg.printf("%8.1f %10d %12s\n", eps, len(res.Skyline), t.Round(time.Microsecond))
	}

	cfg.printf("-- dynamic maintenance (1000 mixed updates) --\n")
	m := dynsky.New(g)
	r := rng.New(cfg.Seed)
	updT := timed(func() {
		for i := 0; i < 1000; i++ {
			u, v := int32(r.Intn(m.N())), int32(r.Intn(m.N()))
			if u == v {
				continue
			}
			if m.Has(u, v) {
				m.RemoveEdge(u, v)
			} else {
				m.AddEdge(u, v)
			}
		}
	})
	recT := timed(func() { core.FilterRefineSky(m.Graph(), core.Options{}) })
	cfg.printf("per-update: %s   full recompute: %s   |R|=%d (verified %v)\n",
		(updT / 1000).Round(time.Microsecond), recT.Round(time.Microsecond),
		m.SkylineSize(),
		core.EqualSkylines(m.Skyline(), core.FilterRefineSky(m.Graph(), core.Options{}).Skyline))

	// Group betweenness on a smaller graph (quadratic evaluation).
	gb, err := dataset.Load("notredame-sim", cfg.Scale*0.3)
	if err != nil {
		panic(err)
	}
	cfg.printf("-- group betweenness maximization (k=2, 16 sampled sources, %s) --\n", gb.Stats())
	var baseRes, skyRes *betweenness.Result
	baseT := timed(func() { baseRes = betweenness.BaseGB(gb, 2, 16, 1) })
	skyT := timed(func() { skyRes = betweenness.NeiSkyGB(gb, 2, 16, 1) })
	cfg.printf("BaseGB:   %12s value=%.1f calls=%d\n", baseT.Round(time.Millisecond), baseRes.Value, baseRes.GainCalls)
	cfg.printf("NeiSkyGB: %12s value=%.1f calls=%d\n", skyT.Round(time.Millisecond), skyRes.Value, skyRes.GainCalls)

	cfg.printf("-- independent set via neighborhood-inclusion reduction --\n")
	forced, kernel, inclusionRemoved := mis.Reduce(g)
	greedy := mis.Greedy(g)
	cfg.printf("forced=%d kernel=%d inclusion-removed=%d greedy-IS=%d of n=%d\n",
		len(forced), len(kernel), inclusionRemoved, len(greedy.Set), g.N())
}
