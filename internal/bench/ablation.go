package bench

import (
	"time"

	"neisky/internal/centrality"
	"neisky/internal/core"
	"neisky/internal/dataset"
)

// RunAblation quantifies each design choice DESIGN.md calls out, on one
// representative dataset: filter variant, Bloom filters, the 2-hop scan
// strategy, Bloom sizing, and the greedy engineering toggles.
func RunAblation(cfg Config) {
	cfg.fill()
	g, err := dataset.Load("wikitalk-sim", cfg.Scale)
	if err != nil {
		panic(err)
	}
	cfg.printf("== Ablations on wikitalk-sim (%s) ==\n", g.Stats())

	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"default (exact filter, bloom, pivot scan)", core.Options{}},
		{"pendant-only filter (literal Alg 2)", core.Options{PendantFilter: true}},
		{"no bloom", core.Options{DisableBloom: true}},
		{"full 2-hop scan (literal Alg 3)", core.Options{FullTwoHopScan: true}},
		{"full scan, no dedup", core.Options{FullTwoHopScan: true, NoTwoHopDedup: true}},
		{"bloom 1 word", core.Options{BloomWords: 1}},
		{"bloom 32 words", core.Options{BloomWords: 32}},
	}
	cfg.printf("-- FilterRefineSky variants --\n")
	cfg.printf("%-42s %12s %10s %12s %12s\n", "variant", "time", "|C|", "incl.tests", "bloom rej.")
	for _, v := range variants {
		var res *core.Result
		d := timed(func() { res = core.FilterRefineSky(g, v.opts) })
		cfg.printf("%-42s %12s %10d %12d %12d\n",
			v.name, d.Round(time.Microsecond), len(res.Candidates),
			res.Stats.InclusionTests, res.Stats.BloomRejects)
	}

	cfg.printf("-- parallel workers --\n")
	for _, w := range []int{1, 2, 4, 8} {
		d := timed(func() { core.ParallelFilterRefineSky(g, core.Options{}, w) })
		cfg.printf("workers=%d: %s\n", w, d.Round(time.Microsecond))
	}

	cfg.printf("-- greedy engineering (group closeness, k=10) --\n")
	type gopt struct {
		name string
		o    centrality.Options
	}
	for _, v := range []gopt{
		{"plain greedy, full BFS", centrality.Options{DisableBatchBFS: true}},
		{"plain greedy, pruned BFS", centrality.Options{PrunedBFS: true, DisableBatchBFS: true}},
		{"plain greedy, batched sweep", centrality.Options{}},
		{"lazy greedy, full BFS", centrality.Options{Lazy: true, DisableBatchBFS: true}},
		{"lazy greedy, pruned BFS", centrality.Options{Lazy: true, PrunedBFS: true, DisableBatchBFS: true}},
		{"lazy greedy, pruned + batched cold start", centrality.Options{Lazy: true, PrunedBFS: true, Workers: cfg.Workers}},
	} {
		var res *centrality.Result
		// Plain greedy over all vertices is O(k·n·m); sample down the
		// graph to keep the plain variants tractable.
		sub, _ := dataset.Load("wikitalk-sim", cfg.Scale*0.25)
		d := timed(func() { res = centrality.Greedy(sub, 10, centrality.CLOSENESS, v.o) })
		cfg.printf("%-28s %12s gain-calls=%d value=%.5f\n",
			v.name, d.Round(time.Millisecond), res.GainCalls, res.Value)
	}
}
