package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func gateRows(refNs int64, rest map[string]int64) []BenchRow {
	rows := []BenchRow{{Algo: GateRefAlgo, NsPerOp: refNs}}
	// Deterministic order is irrelevant: ratios() keys by algo.
	for algo, ns := range rest {
		rows = append(rows, BenchRow{Algo: algo, NsPerOp: ns})
	}
	return rows
}

func TestCompareGatePasses(t *testing.T) {
	base := gateRows(1000, map[string]int64{"A": 500, "B": 2000})
	// Current run on a 3x faster machine, same ratios: must pass.
	cur := gateRows(300, map[string]int64{"A": 150, "B": 600})
	results, err := CompareGate(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Failed {
			t.Errorf("%s failed with growth %.3f on identical ratios", r.Algo, r.Growth)
		}
	}
}

func TestCompareGateFailsOnRegression(t *testing.T) {
	base := gateRows(1000, map[string]int64{"A": 500, "B": 2000})
	// A's ratio grew from 0.5 to 0.7 (+40%): over the 25% tolerance.
	cur := gateRows(1000, map[string]int64{"A": 700, "B": 2000})
	results, err := CompareGate(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	var failed []string
	for _, r := range results {
		if r.Failed {
			failed = append(failed, r.Algo)
		}
	}
	if len(failed) != 1 || failed[0] != "A" {
		t.Fatalf("failed rows = %v, want [A]", failed)
	}
}

func TestCompareGateToleranceBoundary(t *testing.T) {
	base := gateRows(1000, map[string]int64{"A": 1000})
	// Exactly +25% growth is NOT a failure (gate is strict-greater).
	cur := gateRows(1000, map[string]int64{"A": 1250})
	results, err := CompareGate(base, cur, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Failed {
		t.Errorf("growth %.3f at the tolerance boundary should pass", results[0].Growth)
	}
}

func TestCompareGateMissingRowErrors(t *testing.T) {
	base := gateRows(1000, map[string]int64{"A": 500, "B": 2000})
	cur := gateRows(1000, map[string]int64{"A": 500})
	if _, err := CompareGate(base, cur, 0); err == nil {
		t.Fatal("dropped baseline row must error, not silently un-gate")
	}
}

func TestCompareGateNewRowNeverFails(t *testing.T) {
	base := gateRows(1000, map[string]int64{"A": 500})
	cur := gateRows(1000, map[string]int64{"A": 500, "New": 9_000_000})
	results, err := CompareGate(base, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Algo == "New" {
			t.Fatal("rows new in current must not be compared")
		}
	}
}

func TestCompareGateNoReferenceErrors(t *testing.T) {
	noRef := []BenchRow{{Algo: "A", NsPerOp: 500}}
	base := gateRows(1000, map[string]int64{"A": 500})
	if _, err := CompareGate(noRef, base, 0); err == nil ||
		!strings.Contains(err.Error(), GateRefAlgo) {
		t.Fatalf("missing reference row must error naming %s, got %v", GateRefAlgo, err)
	}
	if _, err := CompareGate(base, noRef, 0); err == nil {
		t.Fatal("missing reference in current must error")
	}
}

func TestCompareGateDuplicateRowErrors(t *testing.T) {
	dup := []BenchRow{
		{Algo: GateRefAlgo, NsPerOp: 1000},
		{Algo: "A", NsPerOp: 500},
		{Algo: "A", NsPerOp: 600},
	}
	if _, err := CompareGate(dup, dup, 0); err == nil {
		t.Fatal("duplicate gate rows must error")
	}
}

func TestCompareGateNonPositiveNsErrors(t *testing.T) {
	bad := gateRows(1000, map[string]int64{"A": 0})
	good := gateRows(1000, map[string]int64{"A": 500})
	if _, err := CompareGate(bad, good, 0); err == nil {
		t.Fatal("non-positive ns_per_op must error")
	}
}

func TestLoadRowsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rows.json")
	if err := os.WriteFile(path, []byte(`[{"algo":"X","ns_per_op":42}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := LoadRows(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Algo != "X" || rows[0].NsPerOp != 42 {
		t.Fatalf("rows = %+v", rows)
	}
	if _, err := LoadRows(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file must error")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRows(path); err == nil {
		t.Fatal("malformed file must error")
	}
}
