package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

// BENCH_5: the sharded filter/refine engine against the parallel
// filter-phase bar on a million-scale, degree-relabeled mmap snapshot.
//
// Measurement protocol: contenders are INTERLEAVED — each round times
// every contender once, and a contender's row reports its best round.
// Back-to-back repeats of one engine flatter it with the cache and page
// residency its own previous run left behind; interleaving gives every
// contender the same (adversarial) starting state, which matters on a
// machine whose wall clock drifts by double-digit percentages.

// ShardConfig parameterizes RunShardJSON.
type ShardConfig struct {
	N    int     // vertices (default 2,000,000)
	M    int     // target edges (default 4×N)
	Beta float64 // Chung–Lu exponent (default 2.5)
	Seed uint64  // generator + shuffle seed (default 1)

	// Dir holds the generated snapshot. If it already contains one for
	// this (N, M, Seed) it is reused; if empty a temp dir is used and
	// removed afterwards.
	Dir string

	// Workers sizes the parallel bar contenders (default 8, the JSON
	// benchmark's convention).
	Workers int

	// ShardWorkers sizes the sharded rows' worker pool (default 1, so
	// the shard-count sweep isolates partitioning and sketch effects
	// from scheduling; set it to Workers for a combined row).
	ShardWorkers int

	// ShardCounts is the S sweep (default 1, 4, 16, 64).
	ShardCounts []int

	// Rounds of the interleaved protocol, best-of (default 3).
	Rounds int

	Out io.Writer // progress log; nil silences it
}

func (c *ShardConfig) fill() {
	if c.N <= 0 {
		c.N = 2_000_000
	}
	if c.M <= 0 {
		c.M = 4 * c.N
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ShardWorkers <= 0 {
		c.ShardWorkers = 1
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 4, 16, 64}
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
}

func (c *ShardConfig) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// shardContender is one timed engine configuration.
type shardContender struct {
	name    string
	workers int
	shards  int  // 0 for non-sharded rows
	oracle  bool // verify Skyline/Candidates against the serial reference
	run     func() *core.Result
}

// RunShardJSON generates (or reuses) a degree-relabeled Chung–Lu
// snapshot, mmaps it, and writes the BENCH_5 rows to w:
//
//	FilterRefineSky                — the serial engine (also the oracle)
//	ParallelFilterPhase-W          — the filter-phase bar
//	ParallelFilterRefineSky-W      — the phase-split parallel engine
//	ShardedFilterRefineSky-sS      — the fused sharded engine, S sweep
//	ShardedFilterRefineSky-sS-nosketch — ablation at the largest S
//
// Every sharded row is oracle-verified: its skyline and candidate set
// must equal the serial engine's exactly, or the run errors.
func RunShardJSON(w io.Writer, cfg ShardConfig) error {
	cfg.fill()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "nsshard-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataset := fmt.Sprintf("chunglu-%d-%d", cfg.N, cfg.M)
	snap := filepath.Join(dir, fmt.Sprintf("shard-%d-%d-%d-rel.nsb2", cfg.N, cfg.M, cfg.Seed))

	if _, err := os.Stat(snap); err != nil {
		// Shuffled generation, then one converter pass with relabeling:
		// the snapshot lands in degree-descending id order (the layout
		// the sharded engine's fast paths key on), same as BENCH_3.
		cfg.printf("shard: generating %s -> %s\n", dataset, snap)
		src := func(emit func(u, v int32) error) error {
			return gen.StreamChungLu(cfg.N, cfg.M, cfg.Beta, cfg.Seed,
				gen.ShuffledLabels(cfg.N, cfg.Seed, emit))
		}
		start := time.Now()
		stats, err := graph.ConvertEdges(src, snap, graph.ConvertOptions{N: cfg.N, Relabel: true})
		if err != nil {
			return err
		}
		cfg.printf("shard: converted n=%d m=%d (relabeled) in %s\n",
			stats.N, stats.M, time.Since(start).Round(time.Millisecond))
	} else {
		cfg.printf("shard: reusing snapshot %s\n", snap)
	}

	mg, err := graph.OpenMmap(snap)
	if err != nil {
		return err
	}
	defer mg.Close()
	g := mg.Graph

	// Warm the per-snapshot indexes outside the timed region — a serving
	// deployment pays them once per epoch, not per query.
	g.Hub()
	g.Sketches()
	g.DegreeSorted()

	cfg.printf("shard: serial reference run...\n")
	ref := core.FilterRefineSky(g, core.Options{})

	contenders := []shardContender{
		{name: "FilterRefineSky", run: func() *core.Result {
			return core.FilterRefineSky(g, core.Options{})
		}},
		{name: fmt.Sprintf("ParallelFilterPhase-%d", cfg.Workers), workers: cfg.Workers,
			run: func() *core.Result {
				c, o, st, _ := core.ParallelFilterPhase(g, core.Options{}, cfg.Workers)
				return &core.Result{Candidates: c, Dominator: o, Skyline: c, Stats: st}
			}},
		{name: fmt.Sprintf("ParallelFilterRefineSky-%d", cfg.Workers), workers: cfg.Workers,
			oracle: true, run: func() *core.Result {
				return core.ParallelFilterRefineSky(g, core.Options{}, cfg.Workers)
			}},
	}
	for _, s := range cfg.ShardCounts {
		s := s
		contenders = append(contenders, shardContender{
			name:    fmt.Sprintf("ShardedFilterRefineSky-s%d", s),
			workers: cfg.ShardWorkers, shards: s, oracle: true,
			run: func() *core.Result {
				return core.ShardedFilterRefineSky(g, core.Options{},
					core.ShardOptions{Shards: s, Workers: cfg.ShardWorkers, Advise: mg.AdviseRange})
			}})
	}
	ablS := cfg.ShardCounts[len(cfg.ShardCounts)-1]
	contenders = append(contenders, shardContender{
		name:    fmt.Sprintf("ShardedFilterRefineSky-s%d-nosketch", ablS),
		workers: cfg.ShardWorkers, shards: ablS, oracle: true,
		run: func() *core.Result {
			return core.ShardedFilterRefineSky(g, core.Options{},
				core.ShardOptions{Shards: ablS, Workers: cfg.ShardWorkers,
					DisableSketch: true, Advise: mg.AdviseRange})
		}})

	best := make([]int64, len(contenders))
	last := make([]*core.Result, len(contenders))
	for i := range best {
		best[i] = -1
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i := range contenders {
			c := &contenders[i]
			var res *core.Result
			d := timed(func() { res = c.run() }).Nanoseconds()
			if best[i] < 0 || d < best[i] {
				best[i] = d
			}
			last[i] = res
			cfg.printf("shard: round %d/%d %-34s %s\n", round+1, cfg.Rounds, c.name,
				time.Duration(d).Round(time.Millisecond))
		}
	}

	rows := make([]BenchRow, 0, len(contenders))
	for i, c := range contenders {
		res := last[i]
		if c.oracle {
			if !core.EqualSkylines(res.Skyline, ref.Skyline) {
				return flushRows(w, rows, fmt.Errorf("bench: %s skyline differs from serial reference", c.name))
			}
			if res.Candidates != nil && !core.EqualSkylines(res.Candidates, ref.Candidates) {
				return flushRows(w, rows, fmt.Errorf("bench: %s candidate set differs from serial reference", c.name))
			}
		}
		rows = append(rows, BenchRow{
			Algo: c.name, Dataset: dataset, N: g.N(), M: g.M(),
			NsPerOp: best[i], Workers: c.workers, Shards: c.shards,
			SketchProbes: int64(res.Stats.SketchProbes),
			SketchSkips:  int64(res.Stats.SketchSkips),
			Source:       "mmap", Relabel: "on",
		})
	}
	cfg.printf("shard: |R|=%d, all oracle rows verified against the serial engine\n", len(ref.Skyline))
	return flushRows(w, rows, nil)
}
