// Package cliutil holds the small shared pieces of the command-line
// binaries: deadline/signal context construction for graceful shutdown.
package cliutil

import (
	"context"
	"os"
	"os/signal"
	"time"
)

// Context builds the root context of a CLI run: cancelled on SIGINT
// (first ^C cancels; a second ^C kills the process via Go's default
// handler once stop restores it) and, when timeout > 0, on the
// deadline. The returned stop function releases both; defer it.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	cancelTimeout := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, timeout)
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	return ctx, func() {
		stop()
		cancelTimeout()
	}
}

// Cause reports the human-readable cancellation cause of ctx ("timeout"
// / "interrupt" / the cause error), or "" if ctx is still live.
func Cause(ctx context.Context) string {
	if ctx.Err() == nil {
		return ""
	}
	switch context.Cause(ctx) {
	case context.DeadlineExceeded:
		return "timeout"
	case context.Canceled:
		return "interrupt"
	default:
		return context.Cause(ctx).Error()
	}
}
