package betweenness

import (
	"math"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func TestVertexOnPath(t *testing.T) {
	// Path 0-1-2-3-4. Ordered-pair betweenness of the middle vertex 2:
	// pairs (0,3),(0,4),(1,3),(1,4) and reverses → 8... plus (0,4) etc.
	// Compute expected by enumeration: vertex 2 lies on the unique
	// shortest path of pairs {0,1}×{3,4} → 4 unordered → 8 ordered.
	g := gen.Path(5)
	bc := Vertex(g)
	if math.Abs(bc[2]-8) > 1e-9 {
		t.Fatalf("bc[2] = %v, want 8", bc[2])
	}
	if math.Abs(bc[0]) > 1e-9 || math.Abs(bc[4]) > 1e-9 {
		t.Fatalf("endpoints must have zero betweenness: %v", bc)
	}
	// Vertex 1: pairs (0,2),(0,3),(0,4) ordered both ways → 6.
	if math.Abs(bc[1]-6) > 1e-9 {
		t.Fatalf("bc[1] = %v, want 6", bc[1])
	}
}

func TestVertexStar(t *testing.T) {
	// Star center lies on all leaf-leaf pairs: 4 leaves → 4·3 = 12
	// ordered pairs.
	g := gen.Star(5)
	bc := Vertex(g)
	if math.Abs(bc[0]-12) > 1e-9 {
		t.Fatalf("center betweenness %v, want 12", bc[0])
	}
	for v := 1; v < 5; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d betweenness %v", v, bc[v])
		}
	}
}

func TestVertexCycleSymmetric(t *testing.T) {
	g := gen.Cycle(7)
	bc := Vertex(g)
	for v := 1; v < 7; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-9 {
			t.Fatalf("cycle betweenness not symmetric: %v", bc)
		}
	}
}

// TestGroupSingletonMatchesVertex: GB({v}) must equal Brandes'
// betweenness of v computed over pairs excluding v... which is exactly
// the vertex betweenness (endpoints never count their own pairs).
func TestGroupSingletonMatchesVertex(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(r, 8+r.Intn(10))
		bc := Vertex(g)
		for v := int32(0); v < int32(g.N()); v++ {
			gb := Group(g, []int32{v}, Options{})
			if math.Abs(gb-bc[v]) > 1e-6 {
				t.Fatalf("GB({%d}) = %v != betweenness %v (edges %v)",
					v, gb, bc[v], g.EdgeList())
			}
		}
	}
}

func randomConnected(r *rng.RNG, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if r.Float64() < 0.15 {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// TestGroupBounds: GB is not monotone (growing S removes its members as
// countable endpoints, exactly like group harmonic), but it is always
// within [0, n(n−1)] and never loses more than the removed endpoint's
// own pair mass when a vertex joins the group.
func TestGroupBounds(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(r, 10+r.Intn(8))
		n := float64(g.N())
		var s []int32
		prev := 0.0
		for _, v := range []int32{0, 3, 5} {
			s = append(s, v)
			cur := Group(g, s, Options{})
			if cur < -1e-9 || cur > n*(n-1) {
				t.Fatalf("GB out of bounds: %v (S=%v)", cur, s)
			}
			// Adding v can remove at most v's 2(n−1) endpoint pairs.
			if cur < prev-2*(n-1)-1e-9 {
				t.Fatalf("GB dropped more than endpoint mass: %v after %v", cur, prev)
			}
			prev = cur
		}
	}
}

func TestGroupFullSetCoversEverything(t *testing.T) {
	// With every vertex in S there are no valid (s,t) pairs: GB = 0 by
	// the definition's exclusion of endpoints in S.
	g := gen.Cycle(5)
	all := []int32{0, 1, 2, 3, 4}
	if v := Group(g, all, Options{}); v != 0 {
		t.Fatalf("GB(V) = %v, want 0", v)
	}
}

func TestGroupStarCenterVsLeaves(t *testing.T) {
	g := gen.Star(6)
	center := Group(g, []int32{0}, Options{})
	leaves := Group(g, []int32{1, 2}, Options{})
	if center <= leaves {
		t.Fatalf("center GB %v must beat leaf pair %v", center, leaves)
	}
}

func TestGreedyPicksStarCenter(t *testing.T) {
	g := gen.Star(8)
	res := BaseGB(g, 1, 0, 1)
	if len(res.Group) != 1 || res.Group[0] != 0 {
		t.Fatalf("greedy should pick the center: %v", res.Group)
	}
	if res.Value <= 0 {
		t.Fatal("value must be positive")
	}
}

func TestNeiSkyGBQuality(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 6; trial++ {
		g := randomConnected(r, 20+r.Intn(15))
		base := BaseGB(g, 3, 0, 1)
		sky := NeiSkyGB(g, 3, 0, 1)
		if sky.Value < base.Value*0.8 {
			t.Fatalf("NeiSkyGB value %v far below base %v", sky.Value, base.Value)
		}
		if sky.GainCalls > base.GainCalls {
			t.Fatalf("skyline pruning should not increase gain calls: %d > %d",
				sky.GainCalls, base.GainCalls)
		}
	}
}

func TestSampledEstimatorTracksExact(t *testing.T) {
	g := gen.PowerLaw(300, 900, 2.3, 5)
	s := []int32{1, 2, 3}
	exact := Group(g, s, Options{})
	est := Group(g, s, Options{Sources: 150, Seed: 42})
	if exact == 0 {
		t.Skip("degenerate graph")
	}
	ratio := est / exact
	if ratio < 0.6 || ratio > 1.5 {
		t.Fatalf("sampled estimate %v too far from exact %v", est, exact)
	}
}

func TestGreedyRespectsK(t *testing.T) {
	g := gen.Cycle(6)
	res := BaseGB(g, 10, 0, 1)
	if len(res.Group) > 6 {
		t.Fatalf("group larger than graph: %v", res.Group)
	}
	res2 := BaseGB(g, 2, 0, 1)
	if len(res2.Group) != 2 {
		t.Fatalf("group size %d, want 2", len(res2.Group))
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := graph.FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	// Vertex 1 and 4 are the middles: each covers its component's pairs.
	gb := Group(g, []int32{1, 4}, Options{})
	if gb != 4 { // (0,2),(2,0),(3,5),(5,3)
		t.Fatalf("GB = %v, want 4", gb)
	}
}

func TestVertexSampledTracksExact(t *testing.T) {
	g := gen.PowerLaw(400, 1200, 2.3, 9)
	exact := Vertex(g)
	est := VertexSampled(g, 100, 7)
	// Compare the total mass and the top vertex.
	var sumE, sumS float64
	argE, argS := 0, 0
	for v := range exact {
		sumE += exact[v]
		sumS += est[v]
		if exact[v] > exact[argE] {
			argE = v
		}
		if est[v] > est[argS] {
			argS = v
		}
	}
	if sumE == 0 {
		t.Skip("degenerate")
	}
	if ratio := sumS / sumE; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("sampled mass ratio %v out of range", ratio)
	}
	if argE != argS {
		// The top hub should be unambiguous on a power-law graph.
		if est[argE] < 0.5*est[argS] {
			t.Fatalf("sampled estimator misses the top vertex: exact %d, sampled %d", argE, argS)
		}
	}
}

func TestVertexSampledFullFallback(t *testing.T) {
	g := gen.Star(6)
	a := Vertex(g)
	b := VertexSampled(g, 0, 1)
	c := VertexSampled(g, 100, 1)
	for v := range a {
		if a[v] != b[v] || a[v] != c[v] {
			t.Fatal("sources<=0 or >=n must fall back to exact")
		}
	}
}
