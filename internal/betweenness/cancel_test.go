package betweenness

import (
	"context"
	"errors"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/runctl/faultinject"
)

func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// TestGreedyCtxCancelIsTrueArgmaxPrefix cancels the greedy mid-round
// and asserts the committed group is an exact prefix of the full run:
// partially-evaluated rounds are abandoned, never committed.
func TestGreedyCtxCancelIsTrueArgmaxPrefix(t *testing.T) {
	g := gen.PowerLaw(250, 1000, 2.3, 71)
	const k = 4
	opts := Options{Sources: 24, Seed: 9}
	full := Greedy(g, k, opts)

	defer cancelAtSeq(20)()
	res := GreedyCtx(context.Background(), g, k, opts)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if !errors.Is(res.Err, faultinject.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", res.Err)
	}
	if len(res.Group) >= k {
		t.Fatal("truncated run committed a full group")
	}
	for i, v := range res.Group {
		if full.Group[i] != v {
			t.Fatalf("member %d = %d, want the full greedy's pick %d", i, v, full.Group[i])
		}
	}
}

// TestNeiSkyGBCtxCancelDuringSkyline cancels while the candidate
// skyline is still being computed: the pipeline must degrade to a
// best-effort group over the (superset) partial skyline, not fail.
func TestNeiSkyGBCtxCancelDuringSkyline(t *testing.T) {
	g := gen.PowerLaw(1500, 6000, 2.3, 72)
	defer cancelAtSeq(1)()
	res := NeiSkyGBCtx(context.Background(), g, 4, 32, 9)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if res.Err == nil {
		t.Fatal("truncated result must carry its cause")
	}
	if len(res.Group) > 4 {
		t.Fatalf("group of %d exceeds k", len(res.Group))
	}
}

// TestBetweennessCtxMatchesPlainOnLiveContext pins zero drift.
func TestBetweennessCtxMatchesPlainOnLiveContext(t *testing.T) {
	g := gen.PowerLaw(200, 800, 2.3, 73)
	want := NeiSkyGB(g, 2, 16, 5)
	got := NeiSkyGBCtx(context.Background(), g, 2, 16, 5)
	if got.Truncated || got.Err != nil {
		t.Fatalf("spurious truncation: %v", got.Err)
	}
	if len(got.Group) != len(want.Group) || got.Value != want.Value {
		t.Fatalf("drift: got %v/%v want %v/%v", got.Group, got.Value, want.Group, want.Value)
	}
}
