// Package betweenness implements vertex betweenness (Brandes'
// algorithm), group betweenness centrality, and its greedy maximization
// with optional neighborhood-skyline candidate pruning — the third
// group-centrality application the paper sketches in §IV-D ("our
// pruning technique can also be used to handle ... group betweenness
// maximization; we leave this problem as an interesting future work").
//
// Group betweenness of S counts, over ordered pairs (s, t) with
// s, t ∉ S, the fraction of shortest s–t paths that pass through at
// least one member of S:
//
//	GB(S) = Σ_{s≠t, s,t∉S} (1 − σ_st(avoid S) / σ_st)
//
// where σ_st is the number of shortest s–t paths and σ_st(avoid S)
// counts those avoiding S entirely. Evaluation runs one BFS per source
// (optionally a sampled subset of sources, the standard estimator).
//
// Unlike closeness and harmonic (Lemmas 3–4), no domination-dominance
// claim is proven for betweenness — the skyline-restricted greedy is a
// heuristic here; the tests measure how closely it tracks the
// unrestricted greedy.
package betweenness

import (
	"context"
	"math"

	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/rng"
	"neisky/internal/runctl"
)

// checkEvery is the checkpoint granularity of the evaluator's BFS head
// loop: one run poll per checkEvery dequeued vertices.
const checkEvery = 1024

// Options configures group-betweenness computations.
type Options struct {
	// Sources samples this many BFS sources for estimation; 0 means all
	// vertices (exact).
	Sources int
	// Seed drives source sampling.
	Seed uint64
	// Candidates restricts the greedy pool (nil = all vertices).
	Candidates []int32
}

// Result reports a greedy group-betweenness run.
type Result struct {
	Group     []int32
	Value     float64 // estimated GB of the final group
	GainCalls int
	// Truncated marks a best-effort partial result: the run was
	// cancelled mid-greedy and Group is the prefix committed so far
	// (each member was a true argmax pick over the evaluated sources).
	// Err carries the cause.
	Truncated bool
	Err       error
}

// Vertex computes exact betweenness centrality for every vertex with
// Brandes' algorithm on the unweighted graph. Endpoint pairs are
// ordered (each unordered pair contributes twice), matching the group
// definition above.
func Vertex(g *graph.Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	preds := make([][]int32, n)

	for s := int32(0); s < int32(n); s++ {
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = queue[:0]
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

// VertexSampled estimates betweenness centrality from a uniform sample
// of BFS sources (Brandes–Pich pivoting): each sampled source
// contributes its dependency scores, scaled by n/|sample|.
func VertexSampled(g *graph.Graph, sources int, seed uint64) []float64 {
	n := g.N()
	if sources <= 0 || sources >= n {
		return Vertex(g)
	}
	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	preds := make([][]int32, n)
	r := rng.New(seed + 0x9140)
	perm := r.Perm(n)
	scale := float64(n) / float64(sources)
	for si := 0; si < sources; si++ {
		s := int32(perm[si])
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		queue = queue[:0]
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w] * scale
			}
		}
	}
	return bc
}

// evaluator holds reusable scratch space for group evaluations.
type evaluator struct {
	g       *graph.Graph
	sources []int32
	scale   float64 // n/|sources| correction for sampling
	dist    []int32
	sigma   []float64
	avoid   []float64
	queue   []int32
	order   []int32

	run       *runctl.Run
	cp        runctl.Checkpoint
	truncated bool
}

func newEvaluator(g *graph.Graph, opts Options) *evaluator {
	n := g.N()
	e := &evaluator{
		g:     g,
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		avoid: make([]float64, n),
		queue: make([]int32, 0, n),
		order: make([]int32, 0, n),
		scale: 1,
	}
	if opts.Sources <= 0 || opts.Sources >= n {
		e.sources = make([]int32, n)
		for i := range e.sources {
			e.sources[i] = int32(i)
		}
	} else {
		r := rng.New(opts.Seed + 0xbe7)
		perm := r.Perm(n)
		e.sources = make([]int32, opts.Sources)
		for i := 0; i < opts.Sources; i++ {
			e.sources[i] = int32(perm[i])
		}
		e.scale = float64(n) / float64(opts.Sources)
	}
	return e
}

// value computes (an estimate of) GB(S) given a membership bitmap. A
// stopped run abandons the remaining sources and sets e.truncated; the
// partial total is then meaningless and callers must discard it.
func (e *evaluator) value(inS []bool) float64 {
	total := 0.0
	for _, s := range e.sources {
		if e.truncated {
			break
		}
		if inS[s] {
			continue
		}
		total += e.sourceCoverage(s, inS)
	}
	return total * e.scale
}

// sourceCoverage returns Σ_{t∉S} (1 − σ'_st/σ_st) for one source.
func (e *evaluator) sourceCoverage(s int32, inS []bool) float64 {
	g := e.g
	for i := range e.dist {
		e.dist[i] = -1
		e.sigma[i] = 0
		e.avoid[i] = 0
	}
	e.queue = e.queue[:0]
	e.order = e.order[:0]
	e.dist[s] = 0
	e.sigma[s] = 1
	e.avoid[s] = 1 // s ∉ S here by construction
	e.queue = append(e.queue, s)
	for head := 0; head < len(e.queue); head++ {
		if e.cp.Tick() {
			e.truncated = true
			return 0
		}
		v := e.queue[head]
		e.order = append(e.order, v)
		for _, w := range g.Neighbors(v) {
			if e.dist[w] == -1 {
				e.dist[w] = e.dist[v] + 1
				e.queue = append(e.queue, w)
			}
			if e.dist[w] == e.dist[v]+1 {
				e.sigma[w] += e.sigma[v]
				if !inS[w] {
					e.avoid[w] += e.avoid[v]
				}
			}
		}
	}
	cov := 0.0
	for _, t := range e.order {
		if t == s || inS[t] {
			continue
		}
		cov += 1 - e.avoid[t]/e.sigma[t]
	}
	return cov
}

// Group evaluates GB(S) (exact when opts.Sources == 0).
func Group(g *graph.Graph, s []int32, opts Options) float64 {
	inS := make([]bool, g.N())
	for _, v := range s {
		inS[v] = true
	}
	return newEvaluator(g, opts).value(inS)
}

// Greedy maximizes group betweenness by plain greedy: each round adds
// the candidate with the largest value increase. With endpoint
// exclusion the objective is neither monotone nor submodular in
// general (a new member stops counting as an endpoint), so no lazy
// shortcut is taken.
func Greedy(g *graph.Graph, k int, opts Options) *Result {
	return greedyRun(nil, g, k, opts)
}

// GreedyCtx is Greedy under a context. On cancellation the returned
// Group is the prefix committed so far, with Truncated/Err set; the
// round in flight is abandoned without committing, so every member was
// a true argmax pick.
func GreedyCtx(ctx context.Context, g *graph.Graph, k int, opts Options) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return greedyRun(run, g, k, opts)
}

func greedyRun(run *runctl.Run, g *graph.Graph, k int, opts Options) *Result {
	e := newEvaluator(g, opts)
	e.run = run
	e.cp = run.Checkpoint(checkEvery)
	cands := opts.Candidates
	if cands == nil {
		cands = make([]int32, g.N())
		for i := range cands {
			cands[i] = int32(i)
		}
	}
	if k > len(cands) {
		k = len(cands)
	}
	inS := make([]bool, g.N())
	res := &Result{}
	current := 0.0
	for round := 0; round < k; round++ {
		bestV := int32(-1)
		bestVal := math.Inf(-1)
		for _, u := range cands {
			if inS[u] {
				continue
			}
			inS[u] = true
			val := e.value(inS)
			inS[u] = false
			res.GainCalls++
			if e.truncated {
				// Partial sweep: abandon the round without committing.
				res.Truncated = true
				res.Err = run.Err()
				res.Value = current
				return res
			}
			if val > bestVal || (val == bestVal && bestV != -1 && u < bestV) {
				bestVal = val
				bestV = u
			}
		}
		if bestV == -1 {
			break
		}
		inS[bestV] = true
		res.Group = append(res.Group, bestV)
		current = bestVal
	}
	res.Value = current
	return res
}

// BaseGB is the unrestricted greedy.
func BaseGB(g *graph.Graph, k int, sources int, seed uint64) *Result {
	return Greedy(g, k, Options{Sources: sources, Seed: seed})
}

// BaseGBCtx is BaseGB under a context; see Result.Truncated for the
// anytime contract.
func BaseGBCtx(ctx context.Context, g *graph.Graph, k int, sources int, seed uint64) *Result {
	return GreedyCtx(ctx, g, k, Options{Sources: sources, Seed: seed})
}

// NeiSkyGB restricts the greedy pool to the neighborhood skyline, the
// pruning the paper conjectures for group betweenness. Heuristic: see
// the package comment.
func NeiSkyGB(g *graph.Graph, k int, sources int, seed uint64) *Result {
	sky := core.FilterRefineSky(g, core.Options{})
	return Greedy(g, k, Options{Sources: sources, Seed: seed, Candidates: sky.Skyline})
}

// NeiSkyGBCtx is NeiSkyGB under a context. Both the skyline phase and
// the greedy honor ctx; a skyline truncated by cancellation is a sound
// superset candidate pool, so the greedy still runs on it (and will
// itself observe the cancelled context on its first checkpoint).
func NeiSkyGBCtx(ctx context.Context, g *graph.Graph, k int, sources int, seed uint64) *Result {
	sky := core.FilterRefineSkyCtx(ctx, g, core.Options{})
	res := GreedyCtx(ctx, g, k, Options{Sources: sources, Seed: seed, Candidates: sky.Skyline})
	if sky.Truncated && !res.Truncated {
		res.Truncated = true
		res.Err = sky.Err
	}
	return res
}
