package gen

import (
	"testing"
	"testing/quick"

	"neisky/internal/graph"
)

func TestThresholdConstruction(t *testing.T) {
	// Sequence I, D, I, D: v1 dominates {0}; v3 dominates {0,1,2}.
	g := Threshold([]ThresholdOp{AddIsolated, AddDominating, AddIsolated, AddDominating})
	if g.N() != 4 {
		t.Fatalf("n=%d", g.N())
	}
	wantEdges := [][2]int32{{0, 1}, {0, 3}, {1, 3}, {2, 3}}
	if g.M() != len(wantEdges) {
		t.Fatalf("m=%d want %d", g.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g.Has(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestIsThresholdRecognizesFamily(t *testing.T) {
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%30) + 1
		p := float64(pRaw%100) / 100
		return IsThreshold(RandomThreshold(n, p, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestIsThresholdRejects(t *testing.T) {
	// P4 (path on 4 vertices) is the canonical non-threshold graph.
	if IsThreshold(Path(4)) {
		t.Fatal("P4 must not be threshold")
	}
	// C4 and 2K2 are the other forbidden subgraphs.
	if IsThreshold(Cycle(4)) {
		t.Fatal("C4 must not be threshold")
	}
	twoK2 := graph.FromEdges(4, [][2]int32{{0, 1}, {2, 3}})
	if IsThreshold(twoK2) {
		t.Fatal("2K2 must not be threshold")
	}
}

func TestIsThresholdAccepts(t *testing.T) {
	for _, g := range []*graph.Graph{
		Clique(6), Star(7), graph.NewBuilder(5).Build(), Path(2), Path(3),
	} {
		if !IsThreshold(g) {
			t.Fatalf("graph with %d vertices %d edges should be threshold", g.N(), g.M())
		}
	}
}
