package gen

import (
	"math"

	"neisky/internal/graph"
	"neisky/internal/rng"
)

// Edge-stream workloads for the dynamic skyline maintainer: a sliding
// window over a scripted edge sequence, the standard model for temporal
// graph processing.

// StreamOp is one edge update.
type StreamOp struct {
	Add  bool
	U, V int32
}

// SlidingWindowStream produces the update sequence of a size-window
// sliding window over a random edge sequence on n vertices: each step
// inserts a fresh random edge and, once the window is full, deletes the
// oldest one. The result interleaves inserts and deletes exactly as a
// windowed stream processor would see them.
func SlidingWindowStream(n, steps, window int, seed uint64) []StreamOp {
	r := rng.New(seed)
	ops := make([]StreamOp, 0, 2*steps)
	var live [][2]int32
	for i := 0; i < steps; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		ops = append(ops, StreamOp{Add: true, U: u, V: v})
		live = append(live, [2]int32{u, v})
		if len(live) > window {
			old := live[0]
			live = live[1:]
			ops = append(ops, StreamOp{Add: false, U: old[0], V: old[1]})
		}
	}
	return ops
}

// ChurnStream mutates a base graph: each step flips a random vertex
// pair (insert if absent, delete if present), modeling link churn.
func ChurnStream(g *graph.Graph, steps int, seed uint64) []StreamOp {
	r := rng.New(seed)
	n := int32(g.N())
	present := make(map[[2]int32]bool, g.M())
	g.Edges(func(u, v int32) { present[[2]int32{u, v}] = true })
	ops := make([]StreamOp, 0, steps)
	for i := 0; i < steps; i++ {
		u := int32(r.Intn(int(n)))
		v := int32(r.Intn(int(n)))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		if present[key] {
			delete(present, key)
			ops = append(ops, StreamOp{Add: false, U: u, V: v})
		} else {
			present[key] = true
			ops = append(ops, StreamOp{Add: true, U: u, V: v})
		}
	}
	return ops
}

// Streaming generators for multi-million-node graphs: each emits its
// edges through a callback instead of materializing a Builder, so the
// only resident state is the generator's own (O(n) for Chung–Lu's
// weight vector, O(n·k) for BA's endpoint multiset). Paired with the
// streaming converter (graph.ConvertEdges) the full
// generate → CSR-snapshot pipeline never holds the graph in memory.
// Emitted edges may repeat; the converter deduplicates.

// StreamChungLu emits a Chung–Lu power-law graph with n vertices,
// ≈m expected edges and exponent beta, the same Miller–Hagberg
// construction (and edge distribution, given equal seeds) as PowerLaw.
// Resident memory is the O(n) weight vector.
func StreamChungLu(n, m int, beta float64, seed uint64, emit func(u, v int32) error) error {
	w := powerLawWeights(n, m, beta)
	if n < 2 {
		return nil
	}
	W := 0.0
	for _, x := range w {
		W += x
	}
	if W <= 0 {
		return nil
	}
	r := rng.New(seed)
	for i := 0; i < n-1; i++ {
		j := i + 1
		p := math.Min(1, w[i]*w[j]/W)
		for j < n && p > 0 {
			if p < 1 {
				skip := math.Floor(math.Log(1-r.Float64()) / math.Log(1-p))
				if skip > float64(n) {
					break
				}
				j += int(skip)
			}
			if j >= n {
				break
			}
			q := math.Min(1, w[i]*w[j]/W)
			if r.Float64() < q/p {
				if err := emit(int32(i), int32(j)); err != nil {
					return err
				}
			}
			p = q
			j++
		}
	}
	return nil
}

// StreamBA emits a Barabási–Albert preferential-attachment graph with
// the same construction (and edge sequence, given equal seeds) as BA.
// The endpoint multiset makes resident memory O(n·k) — inherent to
// preferential attachment — which is still far below the built CSR.
func StreamBA(n, k int, seed uint64, emit func(u, v int32) error) error {
	if n <= 1 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	r := rng.New(seed)
	repeated := make([]int32, 0, 2*n*k)
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			if err := emit(int32(i), int32(j)); err != nil {
				return err
			}
			repeated = append(repeated, int32(i), int32(j))
		}
	}
	chosen := make(map[int32]bool, k)
	for v := seedN; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		for len(chosen) < k && len(chosen) < v {
			var t int32
			if len(repeated) == 0 {
				t = int32(r.Intn(v))
			} else {
				t = repeated[r.Intn(len(repeated))]
			}
			chosen[t] = true
		}
		for t := range chosen {
			if err := emit(int32(v), t); err != nil {
				return err
			}
			repeated = append(repeated, int32(v), t)
		}
	}
	return nil
}

// ShuffledLabels wraps an emit callback with a deterministic
// pseudorandom permutation of the vertex ids 0..n-1. The synthetic
// generators hand out ids in weight/arrival order — Chung–Lu's vertex
// 0 is its biggest hub — which is already the cache-friendly layout
// that degree-descending relabeling produces; real edge-list datasets
// are not so lucky. Shuffling restores the realistic arbitrary-id
// regime, so relabel-on vs relabel-off benchmarks measure an honest
// locality win. Costs an O(n) permutation array.
func ShuffledLabels(n int, seed uint64, emit func(u, v int32) error) func(u, v int32) error {
	perm := rng.New(seed ^ 0x5b0f_f1ed).Perm(n)
	ids := make([]int32, n)
	for i, p := range perm {
		ids[i] = int32(p)
	}
	return func(u, v int32) error {
		return emit(ids[u], ids[v])
	}
}

// PreferentialStream grows a graph with degree-biased endpoints (new
// edges prefer hubs), producing realistic skew in the maintained graph.
func PreferentialStream(n, steps int, seed uint64) []StreamOp {
	r := rng.New(seed)
	ops := make([]StreamOp, 0, steps)
	endpoints := make([]int32, 0, 2*steps)
	pick := func() int32 {
		// Degree-proportional with probability 3/4: sampling from the
		// endpoint multiset is preferential attachment.
		if len(endpoints) > 0 && r.Float64() < 0.75 {
			return endpoints[r.Intn(len(endpoints))]
		}
		return int32(r.Intn(n))
	}
	for i := 0; i < steps; i++ {
		u := pick()
		v := pick()
		if u == v {
			continue
		}
		ops = append(ops, StreamOp{Add: true, U: u, V: v})
		endpoints = append(endpoints, u, v)
	}
	return ops
}
