package gen

import (
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// Edge-stream workloads for the dynamic skyline maintainer: a sliding
// window over a scripted edge sequence, the standard model for temporal
// graph processing.

// StreamOp is one edge update.
type StreamOp struct {
	Add  bool
	U, V int32
}

// SlidingWindowStream produces the update sequence of a size-window
// sliding window over a random edge sequence on n vertices: each step
// inserts a fresh random edge and, once the window is full, deletes the
// oldest one. The result interleaves inserts and deletes exactly as a
// windowed stream processor would see them.
func SlidingWindowStream(n, steps, window int, seed uint64) []StreamOp {
	r := rng.New(seed)
	ops := make([]StreamOp, 0, 2*steps)
	var live [][2]int32
	for i := 0; i < steps; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		ops = append(ops, StreamOp{Add: true, U: u, V: v})
		live = append(live, [2]int32{u, v})
		if len(live) > window {
			old := live[0]
			live = live[1:]
			ops = append(ops, StreamOp{Add: false, U: old[0], V: old[1]})
		}
	}
	return ops
}

// ChurnStream mutates a base graph: each step flips a random vertex
// pair (insert if absent, delete if present), modeling link churn.
func ChurnStream(g *graph.Graph, steps int, seed uint64) []StreamOp {
	r := rng.New(seed)
	n := int32(g.N())
	present := make(map[[2]int32]bool, g.M())
	g.Edges(func(u, v int32) { present[[2]int32{u, v}] = true })
	ops := make([]StreamOp, 0, steps)
	for i := 0; i < steps; i++ {
		u := int32(r.Intn(int(n)))
		v := int32(r.Intn(int(n)))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int32{u, v}
		if present[key] {
			delete(present, key)
			ops = append(ops, StreamOp{Add: false, U: u, V: v})
		} else {
			present[key] = true
			ops = append(ops, StreamOp{Add: true, U: u, V: v})
		}
	}
	return ops
}

// PreferentialStream grows a graph with degree-biased endpoints (new
// edges prefer hubs), producing realistic skew in the maintained graph.
func PreferentialStream(n, steps int, seed uint64) []StreamOp {
	r := rng.New(seed)
	ops := make([]StreamOp, 0, steps)
	endpoints := make([]int32, 0, 2*steps)
	pick := func() int32 {
		// Degree-proportional with probability 3/4: sampling from the
		// endpoint multiset is preferential attachment.
		if len(endpoints) > 0 && r.Float64() < 0.75 {
			return endpoints[r.Intn(len(endpoints))]
		}
		return int32(r.Intn(n))
	}
	for i := 0; i < steps; i++ {
		u := pick()
		v := pick()
		if u == v {
			continue
		}
		ops = append(ops, StreamOp{Add: true, U: u, V: v})
		endpoints = append(endpoints, u, v)
	}
	return ops
}
