// Package gen builds the synthetic graphs used across the experiments:
// Erdős–Rényi G(n,p) and Chung–Lu power-law random graphs (Fig 6),
// Barabási–Albert preferential attachment (dataset stand-ins), and the
// special families of Fig 2 (clique, complete binary tree, cycle, path).
//
// All generators are deterministic given a seed and produce simple
// undirected graphs.
package gen

import (
	"math"

	"neisky/internal/graph"
	"neisky/internal/rng"
)

// ER samples an Erdős–Rényi G(n, p) graph using geometric edge skipping,
// which runs in O(n + m) expected time even for tiny p.
func ER(n int, p float64, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		return Clique(n)
	}
	r := rng.New(seed)
	logq := math.Log(1 - p)
	// Enumerate candidate pairs (u, v), u < v, in lexicographic order and
	// jump ahead geometrically.
	u, v := 0, 0
	for u < n-1 {
		skip := 1 + int(math.Log(1-r.Float64())/logq)
		v += skip
		for v >= n && u < n-1 {
			u++
			v = u + 1 + (v - n)
		}
		if u < n-1 && v < n {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// ERDeltaP reproduces the paper's Fig 6(a) parameterization: edge
// probability p = Δp·log(n)/n.
func ERDeltaP(n int, deltaP float64, seed uint64) *graph.Graph {
	p := deltaP * math.Log(float64(n)) / float64(n)
	if p > 1 {
		p = 1
	}
	return ER(n, p, seed)
}

// PowerLaw samples a Chung–Lu random graph whose expected degree sequence
// follows a power law with exponent beta (the paper's growth exponent β),
// scaled so the expected number of edges is approximately m. The
// Miller–Hagberg skipping construction gives O(n + m) expected time.
func PowerLaw(n, m int, beta float64, seed uint64) *graph.Graph {
	return ChungLu(powerLawWeights(n, m, beta), seed)
}

// powerLawWeights builds Chung–Lu weights w_i ∝ (i + i0)^(-1/(β-1))
// normalized so Σw = 2m (the expected degree sum).
func powerLawWeights(n, m int, beta float64) []float64 {
	if n == 0 {
		return nil
	}
	alpha := 1 / (beta - 1)
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	scale := 2 * float64(m) / sum
	for i := range w {
		w[i] *= scale
	}
	return w
}

// ChungLu samples a graph where edge (i, j) appears independently with
// probability min(1, w_i·w_j/W), W = Σw. Weights must be sorted in
// non-increasing order (powerLawWeights produces them that way).
func ChungLu(w []float64, seed uint64) *graph.Graph {
	n := len(w)
	b := graph.NewBuilder(n)
	if n < 2 {
		return b.Build()
	}
	W := 0.0
	for _, x := range w {
		W += x
	}
	if W <= 0 {
		return b.Build()
	}
	r := rng.New(seed)
	for i := 0; i < n-1; i++ {
		j := i + 1
		p := math.Min(1, w[i]*w[j]/W)
		for j < n && p > 0 {
			if p < 1 {
				skip := math.Floor(math.Log(1-r.Float64()) / math.Log(1-p))
				if skip > float64(n) {
					break
				}
				j += int(skip)
			}
			if j >= n {
				break
			}
			q := math.Min(1, w[i]*w[j]/W)
			if r.Float64() < q/p {
				b.AddEdge(int32(i), int32(j))
			}
			p = q
			j++
		}
	}
	return b.Build()
}

// BA grows a Barabási–Albert preferential-attachment graph: each new
// vertex attaches to k distinct existing vertices chosen proportionally
// to degree. Produces heavy-tailed degree distributions with a sharply
// dominant hub set, resembling web/social graphs.
func BA(n, k int, seed uint64) *graph.Graph {
	b := graph.NewBuilder(n)
	if n <= 1 {
		return b.Build()
	}
	if k < 1 {
		k = 1
	}
	r := rng.New(seed)
	// repeated holds every edge endpoint once; sampling uniformly from it
	// is degree-proportional sampling.
	repeated := make([]int32, 0, 2*n*k)
	// Seed with a small clique of k+1 vertices (or fewer if n is tiny).
	seedN := k + 1
	if seedN > n {
		seedN = n
	}
	for i := 0; i < seedN; i++ {
		for j := i + 1; j < seedN; j++ {
			b.AddEdge(int32(i), int32(j))
			repeated = append(repeated, int32(i), int32(j))
		}
	}
	chosen := make(map[int32]bool, k)
	for v := seedN; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		for len(chosen) < k && len(chosen) < v {
			var t int32
			if len(repeated) == 0 {
				t = int32(r.Intn(v))
			} else {
				t = repeated[r.Intn(len(repeated))]
			}
			chosen[t] = true
		}
		for t := range chosen {
			b.AddEdge(int32(v), t)
			repeated = append(repeated, int32(v), t)
		}
	}
	return b.Build()
}

// Clique returns the complete graph K_n (Fig 2a).
func Clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns a complete binary tree on n vertices with
// vertex 0 as the root and children 2i+1, 2i+2 (Fig 2b).
func CompleteBinaryTree(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for _, c := range []int{2*i + 1, 2*i + 2} {
			if c < n {
				b.AddEdge(int32(i), int32(c))
			}
		}
	}
	return b.Build()
}

// Cycle returns the n-cycle C_n (Fig 2c).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Build()
	}
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Path returns the n-vertex path P_n (Fig 2d).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with vertex 0 at the center.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// PlantedClique embeds a clique on cliqueSize random vertices inside an
// ER G(n, p) background, a standard maximum-clique stress workload.
func PlantedClique(n int, p float64, cliqueSize int, seed uint64) (*graph.Graph, []int32) {
	base := ER(n, p, seed)
	r := rng.New(seed ^ 0xc11c5eed)
	perm := r.Perm(n)
	members := make([]int32, 0, cliqueSize)
	for _, v := range perm[:cliqueSize] {
		members = append(members, int32(v))
	}
	b := graph.NewBuilder(n)
	base.Edges(func(u, v int32) { b.AddEdge(u, v) })
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			b.AddEdge(members[i], members[j])
		}
	}
	return b.Build(), members
}
