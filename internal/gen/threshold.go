package gen

import (
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// Threshold graphs are the graphs whose vicinal preorder (the paper's
// neighborhood-inclusion relation, after [7], [8]) is total: any two
// vertices are comparable. They are built by repeatedly adding either
// an isolated vertex or a dominating vertex (one adjacent to everything
// so far), and they are exactly the graphs recognizable by peeling
// isolated/dominating vertices.

// ThresholdOp is one step of a threshold-graph creation sequence.
type ThresholdOp bool

const (
	// AddIsolated appends a vertex with no edges.
	AddIsolated ThresholdOp = false
	// AddDominating appends a vertex adjacent to all previous vertices.
	AddDominating ThresholdOp = true
)

// Threshold builds the threshold graph given by the creation sequence;
// vertex i is added at step i (step 0 is always effectively isolated).
func Threshold(seq []ThresholdOp) *graph.Graph {
	b := graph.NewBuilder(len(seq))
	for i, op := range seq {
		if op == AddDominating {
			for j := 0; j < i; j++ {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	b.SetN(len(seq))
	return b.Build()
}

// RandomThreshold samples a creation sequence with dominating-vertex
// probability p.
func RandomThreshold(n int, p float64, seed uint64) *graph.Graph {
	r := rng.New(seed)
	seq := make([]ThresholdOp, n)
	for i := range seq {
		if r.Float64() < p {
			seq[i] = AddDominating
		}
	}
	return Threshold(seq)
}

// IsThreshold recognizes threshold graphs by peeling: repeatedly remove
// a vertex that is isolated or dominating in the remaining subgraph;
// the graph is threshold iff everything peels away.
func IsThreshold(g *graph.Graph) bool {
	n := g.N()
	alive := n
	removed := make([]bool, n)
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(int32(u))
	}
	for alive > 0 {
		found := int32(-1)
		dominating := false
		for u := int32(0); u < int32(n); u++ {
			if removed[u] {
				continue
			}
			if deg[u] == 0 {
				found = u
				break
			}
			if deg[u] == alive-1 {
				found = u
				dominating = true
				break
			}
		}
		if found == -1 {
			return false
		}
		removed[found] = true
		alive--
		if dominating {
			for _, v := range g.Neighbors(found) {
				if !removed[v] {
					deg[v]--
				}
			}
		}
	}
	return true
}
