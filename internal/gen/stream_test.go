package gen

import (
	"testing"
)

func TestSlidingWindowStream(t *testing.T) {
	ops := SlidingWindowStream(20, 100, 10, 7)
	adds, dels := 0, 0
	liveCount := 0
	maxLive := 0
	for _, op := range ops {
		if op.U == op.V {
			t.Fatal("self loop in stream")
		}
		if op.Add {
			adds++
			liveCount++
		} else {
			dels++
			liveCount--
		}
		if liveCount > maxLive {
			maxLive = liveCount
		}
	}
	if adds != 100 {
		t.Fatalf("adds = %d, want 100", adds)
	}
	if dels != 100-10 {
		t.Fatalf("dels = %d, want 90", dels)
	}
	if maxLive > 11 {
		t.Fatalf("window overflowed: %d live", maxLive)
	}
	// Determinism.
	ops2 := SlidingWindowStream(20, 100, 10, 7)
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestChurnStreamConsistent(t *testing.T) {
	g := PowerLaw(50, 120, 2.3, 3)
	ops := ChurnStream(g, 300, 9)
	// Replay against a fresh set and confirm no double-insert or
	// delete-of-absent.
	present := map[[2]int32]bool{}
	g.Edges(func(u, v int32) { present[[2]int32{u, v}] = true })
	for _, op := range ops {
		key := [2]int32{op.U, op.V}
		if op.Add {
			if present[key] {
				t.Fatal("insert of present edge")
			}
			present[key] = true
		} else {
			if !present[key] {
				t.Fatal("delete of absent edge")
			}
			delete(present, key)
		}
	}
}

func TestPreferentialStreamSkews(t *testing.T) {
	ops := PreferentialStream(200, 3000, 5)
	deg := map[int32]int{}
	for _, op := range ops {
		deg[op.U]++
		deg[op.V]++
	}
	max, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(len(deg))
	if float64(max) < 3*avg {
		t.Fatalf("no skew: max %d vs avg %.1f", max, avg)
	}
}
