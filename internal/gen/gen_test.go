package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClique(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 10} {
		g := Clique(n)
		wantM := n * (n - 1) / 2
		if g.N() != n || g.M() != wantM {
			t.Fatalf("K_%d: n=%d m=%d want m=%d", n, g.N(), g.M(), wantM)
		}
		for u := int32(0); u < int32(n); u++ {
			if g.Degree(u) != n-1 {
				t.Fatalf("K_%d degree(%d)=%d", n, u, g.Degree(u))
			}
		}
	}
}

func TestPathCycleStar(t *testing.T) {
	p := Path(6)
	if p.M() != 5 || p.Degree(0) != 1 || p.Degree(2) != 2 {
		t.Fatalf("path wrong: m=%d", p.M())
	}
	c := Cycle(6)
	if c.M() != 6 {
		t.Fatalf("cycle m=%d", c.M())
	}
	for u := int32(0); u < 6; u++ {
		if c.Degree(u) != 2 {
			t.Fatalf("cycle degree(%d)=%d", u, c.Degree(u))
		}
	}
	if Cycle(2).M() != 1 {
		t.Fatal("2-cycle collapses to a single edge")
	}
	s := Star(5)
	if s.Degree(0) != 4 || s.M() != 4 {
		t.Fatal("star wrong")
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	if g.M() != 6 {
		t.Fatalf("tree edges = %d, want 6", g.M())
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(3) != 1 {
		t.Fatal("tree degrees wrong")
	}
}

func TestERDeterminismAndDensity(t *testing.T) {
	a := ER(200, 0.05, 7)
	b := ER(200, 0.05, 7)
	if a.M() != b.M() {
		t.Fatalf("ER not deterministic: %d vs %d", a.M(), b.M())
	}
	c := ER(200, 0.05, 8)
	if a.M() == c.M() && a.N() > 0 {
		// Different seeds agreeing on exact m is possible but with
		// different edges; check edge sets differ.
		same := true
		a.Edges(func(u, v int32) {
			if !c.Has(u, v) {
				same = false
			}
		})
		if same {
			t.Fatal("different seeds produced identical ER graphs")
		}
	}
	// Expected edges = p * n(n-1)/2 = 0.05 * 19900 = 995.
	want := 995.0
	if math.Abs(float64(a.M())-want) > want*0.2 {
		t.Fatalf("ER edge count %d far from expectation %v", a.M(), want)
	}
}

func TestEREdgeCases(t *testing.T) {
	if g := ER(10, 0, 1); g.M() != 0 {
		t.Fatal("p=0 must be edgeless")
	}
	if g := ER(10, 1, 1); g.M() != 45 {
		t.Fatalf("p=1 must be complete, got %d", g.M())
	}
	if g := ER(1, 0.5, 1); g.N() != 1 || g.M() != 0 {
		t.Fatal("single vertex ER")
	}
	if g := ER(0, 0.5, 1); g.N() != 0 {
		t.Fatal("empty ER")
	}
}

func TestERDeltaP(t *testing.T) {
	g := ERDeltaP(1000, 1.0, 3)
	// p = ln(1000)/1000 ≈ 0.0069; E[m] ≈ 3450.
	want := math.Log(1000) / 1000 * 999 * 1000 / 2
	if math.Abs(float64(g.M())-want) > want*0.15 {
		t.Fatalf("ERDeltaP m=%d far from %v", g.M(), want)
	}
}

func TestPowerLawShape(t *testing.T) {
	g := PowerLaw(2000, 6000, 2.3, 11)
	if g.N() != 2000 {
		t.Fatalf("n=%d", g.N())
	}
	m := float64(g.M())
	if math.Abs(m-6000) > 6000*0.35 {
		t.Fatalf("power-law edges %v far from target 6000", m)
	}
	// Heavy tail: max degree far above average.
	stats := g.Stats()
	if float64(stats.MaxDegree) < 6*stats.AvgDegree {
		t.Fatalf("power-law graph lacks heavy tail: dmax=%d davg=%.1f",
			stats.MaxDegree, stats.AvgDegree)
	}
	// Determinism.
	h := PowerLaw(2000, 6000, 2.3, 11)
	if h.M() != g.M() {
		t.Fatal("power-law generator not deterministic")
	}
}

func TestPowerLawBetaControlsSkew(t *testing.T) {
	// Smaller β ⇒ heavier tail ⇒ larger max degree (for the same n, m).
	lo := PowerLaw(3000, 9000, 2.0, 5)
	hi := PowerLaw(3000, 9000, 3.4, 5)
	if lo.MaxDegree() <= hi.MaxDegree() {
		t.Fatalf("β=2.0 dmax %d should exceed β=3.4 dmax %d",
			lo.MaxDegree(), hi.MaxDegree())
	}
}

func TestBA(t *testing.T) {
	g := BA(500, 3, 17)
	if g.N() != 500 {
		t.Fatalf("BA n=%d", g.N())
	}
	// Roughly k edges per non-seed vertex plus the seed clique.
	want := 3*(500-4) + 6
	if math.Abs(float64(g.M()-want)) > float64(want)/5 {
		t.Fatalf("BA m=%d want ≈%d", g.M(), want)
	}
	if g.MaxDegree() < 3*3 {
		t.Fatalf("BA should grow hubs, dmax=%d", g.MaxDegree())
	}
	h := BA(500, 3, 17)
	if h.M() != g.M() {
		t.Fatal("BA not deterministic")
	}
}

func TestBATiny(t *testing.T) {
	if g := BA(1, 2, 1); g.N() != 1 {
		t.Fatal("BA(1) wrong")
	}
	if g := BA(3, 5, 1); g.N() != 3 || g.M() != 3 {
		t.Fatalf("BA with k≥n collapses to clique, got m=%d", g.M())
	}
}

func TestPlantedClique(t *testing.T) {
	g, members := PlantedClique(200, 0.05, 12, 3)
	if len(members) != 12 {
		t.Fatalf("planted %d members", len(members))
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if !g.Has(members[i], members[j]) {
				t.Fatalf("planted clique missing edge %d-%d", members[i], members[j])
			}
		}
	}
}

func TestQuickGeneratorsSimple(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%200) + 2
		m := int(mRaw%1000) + 1
		for _, g := range []interface {
			N() int
			M() int
			Degree(int32) int
		}{
			PowerLaw(n, m, 2.5, seed),
			BA(n, 1+int(seed%4), seed),
			ER(n, 0.05, seed),
		} {
			sum := 0
			for u := 0; u < g.N(); u++ {
				sum += g.Degree(int32(u))
			}
			if sum != 2*g.M() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
