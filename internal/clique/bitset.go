package clique

import "math/bits"

// bitset is a fixed-capacity bitmap over local vertex indices used by the
// branch-and-bound solver. All operations are allocation-free except
// clone.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)         { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)       { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) test(i int) bool   { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) clone() bitset     { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// first returns the lowest set index, or -1 when empty.
func (b bitset) first() int {
	for i, w := range b {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// and stores x ∩ y into b (all same length).
func (b bitset) and(x, y bitset) {
	for i := range b {
		b[i] = x[i] & y[i]
	}
}

// andNot removes y's bits from b.
func (b bitset) andNot(y bitset) {
	for i := range b {
		b[i] &^= y[i]
	}
}

func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}
