package clique

import (
	"sort"

	"neisky/internal/bitset"
	"neisky/internal/graph"
)

// Maximal clique enumeration via Bron–Kerbosch with pivoting, driven by
// a degeneracy-order outer loop (Eppstein–Löffler–Strash). Complements
// the maximum-clique solver: the applications literature the paper
// builds on frequently needs all maximal cliques, and the top-k
// machinery can be validated against full enumeration.

// EnumerateMaximal calls visit once per maximal clique (vertices in
// ascending order). Stop enumeration early by returning false from
// visit. The number of emitted cliques is returned.
func EnumerateMaximal(g *graph.Graph, visit func(clique []int32) bool) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	order, pos, _ := Degeneracy(g)
	count := 0
	stopped := false

	// Eppstein–Löffler–Strash decomposition: vertex v's subproblem is
	// its neighborhood, with later neighbors (in degeneracy order) as
	// candidates P and earlier neighbors as the exclusion set X, so
	// each maximal clique is emitted exactly once, at its earliest
	// member.
	for _, v := range order {
		if stopped {
			break
		}
		nbrs := g.Neighbors(v)
		verts := make([]int32, len(nbrs))
		copy(verts, nbrs)
		s := &solver{g: g}
		p := s.buildSub(verts)
		pset := bitset.New(len(verts))
		xset := bitset.New(len(verts))
		for i, w := range verts {
			if pos[w] > pos[v] {
				pset.Set(int32(i))
			} else {
				xset.Set(int32(i))
			}
		}
		recWithSeed(p, pset, xset, v, &count, &stopped, visit)
	}
	return count
}

// recWithSeed runs Bron–Kerbosch inside seed's neighborhood; every
// maximal clique found there, plus seed, is maximal in g.
func recWithSeed(p *sub, pset, xset bitset.Set, seed int32, count *int, stopped *bool, visit func([]int32) bool) {
	var rec func(r []int32, pset, xset bitset.Set)
	rec = func(r []int32, pset, xset bitset.Set) {
		if *stopped {
			return
		}
		if pset.Empty() && xset.Empty() {
			*count++
			clique := make([]int32, 0, len(r)+1)
			clique = append(clique, seed)
			for _, li := range r {
				clique = append(clique, p.verts[li])
			}
			sort.Slice(clique, func(a, b int) bool { return clique[a] < clique[b] })
			if !visit(clique) {
				*stopped = true
			}
			return
		}
		pivot, best := int32(-1), -1
		for _, set := range []bitset.Set{pset, xset} {
			tmp := set.Clone()
			for v := tmp.First(); v != -1; v = tmp.First() {
				tmp.Clear(v)
				cnt := 0
				for i := range pset {
					w := pset[i] & p.adj[v][i]
					for ; w != 0; w &= w - 1 {
						cnt++
					}
				}
				if cnt > best {
					best, pivot = cnt, v
				}
			}
		}
		branch := pset.Clone()
		if pivot >= 0 {
			branch.AndNot(p.adj[pivot])
		}
		newP := bitset.New(len(p.verts))
		newX := bitset.New(len(p.verts))
		for v := branch.First(); v != -1; v = branch.First() {
			branch.Clear(v)
			if *stopped {
				return
			}
			newP.And(pset, p.adj[v])
			newX.And(xset, p.adj[v])
			rec(append(r, v), newP.Clone(), newX.Clone())
			pset.Clear(v)
			xset.Set(v)
		}
	}
	rec(nil, pset, xset)
}

// MaximalCliques materializes all maximal cliques (use only on graphs
// where the count is known to be modest).
func MaximalCliques(g *graph.Graph) [][]int32 {
	var out [][]int32
	EnumerateMaximal(g, func(c []int32) bool {
		out = append(out, c)
		return true
	})
	return out
}

// CountMaximal counts maximal cliques without materializing them.
func CountMaximal(g *graph.Graph) int {
	return EnumerateMaximal(g, func([]int32) bool { return true })
}
