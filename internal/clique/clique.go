// Package clique implements the paper's third application: maximum
// clique computation (§IV-C) and top-k maximum cliques (§IV-C.3).
//
// The exact engine is a Tomita-style branch-and-bound with greedy
// coloring upper bounds over per-subproblem bitset adjacency, seeded with
// a degeneracy-order heuristic clique and driven through a degeneracy
// vertex ordering — the ingredient list of modern solvers such as
// MC-BRB, reimplemented from scratch.
//
//   - BaseMCC     — branch-and-bound over all vertices.
//   - NeiSkyMC    — Algorithm 5: branch-and-bound seeded only at
//     neighborhood-skyline vertices (some maximum clique always contains
//     a skyline vertex; see DESIGN.md on the corrected Lemma 5).
//   - BaseTopkMCC / NeiSkyTopkMCC — the k-maximum-cliques extension with
//     the skyline-candidate release rule of Lemma 6.
package clique

import (
	"context"
	"sort"

	"neisky/internal/bitset"
	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
)

// cliqueCheckEvery is the checkpoint granularity of the branch-and-bound:
// one run poll per cliqueCheckEvery search-tree nodes.
const cliqueCheckEvery = 64

// Result reports a clique computation.
type Result struct {
	Clique []int32 // vertices of the clique, ascending IDs
	Nodes  int64   // branch-and-bound nodes explored
	Prunes int64   // subtrees cut by the coloring bound
	Seeds  int     // number of seed vertices whose subproblem was opened
	// Truncated marks a best-effort partial result: the search was
	// cancelled and Clique is the incumbent — the largest clique found
	// so far (always a genuine clique, possibly not maximum). Err
	// carries the cancellation cause.
	Truncated bool
	Err       error
}

// publishObs folds one search's branch-and-bound counters into the
// process observability registry (no-op when recording is disabled).
func publishObs(res *Result) {
	r := obs.Get()
	if r == nil {
		return
	}
	r.Add("clique.bb_nodes", res.Nodes)
	r.Add("clique.bb_prunes", res.Prunes)
	r.Add("clique.seeds", int64(res.Seeds))
}

// Degeneracy computes a degeneracy ordering (smallest-degree-last) and
// the graph's degeneracy. order[i] is the i-th vertex removed; pos is
// the inverse permutation.
func Degeneracy(g *graph.Graph) (order []int32, pos []int32, degeneracy int) {
	n := g.N()
	deg := make([]int32, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(int32(u)))
		if int(deg[u]) > maxDeg {
			maxDeg = int(deg[u])
		}
	}
	// Bucket queue over degrees.
	buckets := make([][]int32, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], int32(u))
	}
	removed := make([]bool, n)
	order = make([]int32, 0, n)
	pos = make([]int32, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		u := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[u] || deg[u] != int32(cur) {
			continue // stale bucket entry
		}
		removed[u] = true
		pos[u] = int32(len(order))
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, v := range g.Neighbors(u) {
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
				if int(deg[v]) < cur {
					cur = int(deg[v])
				}
			}
		}
	}
	return order, pos, degeneracy
}

// CoreNumbers computes every vertex's core number (the largest k such
// that the vertex survives in the k-core) with the same bucket peeling
// as Degeneracy. A clique of size s has all members with core ≥ s−1,
// the reduction MC-BRB-style solvers lean on.
func CoreNumbers(g *graph.Graph) []int32 {
	n := g.N()
	deg := make([]int32, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = int32(g.Degree(int32(u)))
		if int(deg[u]) > maxDeg {
			maxDeg = int(deg[u])
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for u := 0; u < n; u++ {
		buckets[deg[u]] = append(buckets[deg[u]], int32(u))
	}
	removed := make([]bool, n)
	core := make([]int32, n)
	cur := 0
	running := int32(0)
	for popped := 0; popped < n; {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		u := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[u] || deg[u] != int32(cur) {
			continue
		}
		removed[u] = true
		popped++
		if int32(cur) > running {
			running = int32(cur)
		}
		core[u] = running
		for _, v := range g.Neighbors(u) {
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
				if int(deg[v]) < cur {
					cur = int(deg[v])
				}
			}
		}
	}
	return core
}

// HeuristicClique greedily grows a clique along the reverse degeneracy
// order, giving a strong initial lower bound in near-linear time (the
// heuristic component of MC-BRB-style solvers).
func HeuristicClique(g *graph.Graph) []int32 {
	order, _, _ := Degeneracy(g)
	h := g.Hub()
	var best []int32
	// Try a few of the last-removed (highest-core) vertices as anchors.
	tries := 8
	for t := 0; t < tries && t < len(order); t++ {
		anchor := order[len(order)-1-t]
		clique := []int32{anchor}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if v == anchor {
				continue
			}
			ok := true
			for _, c := range clique {
				// Probe from the clique member's side: members are
				// high-core, so they usually carry a hub bitmap and the
				// test is O(1).
				if !h.Has(c, v) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > len(best) {
			best = clique
		}
	}
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best
}

// solver carries the shared incumbent across seed subproblems.
type solver struct {
	g      *graph.Graph
	best   []int32
	nodes  int64
	prunes int64 // coloring-bound cuts inside bestSeeded

	run     *runctl.Run       // cancellation token; nil when disabled
	cp      runctl.Checkpoint // polled once per cliqueCheckEvery nodes
	stopped bool              // search abandoned; best is the incumbent
}

// newSolver builds a solver bound to run (nil disables cancellation).
func newSolver(run *runctl.Run, g *graph.Graph, best []int32) *solver {
	return &solver{g: g, best: best, run: run, cp: run.Checkpoint(cliqueCheckEvery)}
}

// mark stamps the truncation markers onto res when the search was
// abandoned.
func (s *solver) mark(res *Result) {
	if s.stopped {
		res.Truncated = true
		res.Err = s.run.Err()
	}
}

// sub is one seed's bitset subproblem: the induced graph on verts.
type sub struct {
	verts []int32      // local index -> global vertex
	adj   []bitset.Set // local adjacency
}

// buildSub builds the induced bitset subproblem on verts (must be
// sorted). High-degree vertices covered by the graph's hub-bitmap index
// skip the neighbor-list walk entirely: their local adjacency row is
// assembled by probing the hub bitmap once per subproblem vertex, O(k)
// instead of O(deg) — the seeds of clique search are exactly the
// vertices whose adjacency lists are huge.
func (s *solver) buildSub(verts []int32) *sub {
	k := len(verts)
	p := &sub{verts: verts, adj: make([]bitset.Set, k)}
	h := s.g.Hub()
	idx := make(map[int32]int32, k)
	for i, v := range verts {
		idx[v] = int32(i)
	}
	for i, v := range verts {
		b := bitset.New(k)
		if hv := h.Bits(v); hv != nil && k < s.g.Degree(v) {
			for j, w := range verts {
				if j != i && hv.Test(w) {
					b.Set(int32(j))
				}
			}
		} else {
			for _, w := range s.g.Neighbors(v) {
				if j, ok := idx[w]; ok {
					b.Set(j)
				}
			}
		}
		p.adj[i] = b
	}
	return p
}

// searchSeed searches for a clique larger than the incumbent that
// contains seed, inside seed's ego network N(seed). cores (optional)
// lets it drop neighbors whose core number rules them out of any clique
// beating the incumbent.
func (s *solver) searchSeed(seed int32, cores []int32) {
	nbrs := s.g.Neighbors(seed)
	if len(nbrs)+1 <= len(s.best) {
		return // even the full neighborhood cannot beat the incumbent
	}
	verts := make([]int32, 0, len(nbrs))
	for _, v := range nbrs {
		// A clique of size > |best| needs every member's core ≥ |best|.
		if cores == nil || int(cores[v]) >= len(s.best) {
			verts = append(verts, v)
		}
	}
	if len(verts)+1 <= len(s.best) {
		return
	}
	p := s.buildSub(verts)
	pset := bitset.New(len(verts))
	for i := range verts {
		pset.Set(int32(i))
	}
	s.bestSeeded(p, nil, pset, seed)
}

// bestSeeded is expand specialized for a fixed seed: cliques found are
// the seed plus local vertices.
func (s *solver) bestSeeded(p *sub, r []int32, pset bitset.Set, seed int32) {
	if s.stopped {
		return
	}
	s.nodes++
	if s.cp.Tick() {
		// Abandon the search; the incumbent in s.best stays a valid
		// clique (every incumbent update was fully verified).
		s.stopped = true
		return
	}
	k := len(p.verts)
	if pset.Empty() {
		if 1 > len(s.best) {
			s.best = []int32{seed}
		}
		return
	}
	order := make([]int32, 0, pset.Count())
	bound := make([]int32, 0, 8)
	un := pset.Clone()
	q := bitset.New(k)
	color := int32(0)
	for !un.Empty() {
		color++
		q.CopyFrom(un)
		for v := q.First(); v != -1; v = q.First() {
			q.Clear(v)
			un.Clear(v)
			q.AndNot(p.adj[v])
			order = append(order, v)
			bound = append(bound, color)
		}
	}
	cur := pset.Clone()
	newP := bitset.New(k)
	for i := len(order) - 1; i >= 0; i-- {
		// +1 accounts for the seed vertex outside the subproblem.
		if len(r)+1+int(bound[i]) <= len(s.best) {
			s.prunes++
			return
		}
		v := order[i]
		newP.And(cur, p.adj[v])
		r = append(r, v)
		if newP.Empty() {
			if len(r)+1 > len(s.best) {
				s.best = make([]int32, 0, len(r)+1)
				s.best = append(s.best, seed)
				for _, li := range r {
					s.best = append(s.best, p.verts[li])
				}
				sort.Slice(s.best, func(a, b int) bool { return s.best[a] < s.best[b] })
			}
		} else {
			s.bestSeeded(p, r, newP, seed)
		}
		r = r[:len(r)-1]
		cur.Clear(v)
	}
}

// IsClique verifies that verts forms a clique in g.
func IsClique(g *graph.Graph, verts []int32) bool {
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if verts[i] == verts[j] || !g.Has(verts[i], verts[j]) {
				return false
			}
		}
	}
	return true
}

// BaseMCC computes a maximum clique by branch-and-bound over every
// vertex in degeneracy order: vertex v's subproblem is restricted to
// neighbors later in the ordering, so each clique is found exactly once
// (at its earliest member).
func BaseMCC(g *graph.Graph) *Result {
	return baseMCCRun(nil, g)
}

// BaseMCCCtx is BaseMCC under a context. On cancellation the returned
// Clique is the incumbent — the best clique found so far — with
// Truncated/Err set.
func BaseMCCCtx(ctx context.Context, g *graph.Graph) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return baseMCCRun(run, g)
}

func baseMCCRun(run *runctl.Run, g *graph.Graph) *Result {
	defer obs.Get().Start("clique.search").End()
	s := newSolver(run, g, HeuristicClique(g))
	order, pos, _ := Degeneracy(g)
	cores := CoreNumbers(g)
	res := &Result{}
	for _, v := range order {
		if s.stopped {
			break
		}
		if int(cores[v])+1 <= len(s.best) {
			continue
		}
		later := make([]int32, 0, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] && int(cores[w]) >= len(s.best) {
				later = append(later, w)
			}
		}
		if len(later)+1 <= len(s.best) {
			continue
		}
		res.Seeds++
		p := s.buildSub(later)
		pset := bitset.New(len(later))
		for i := range later {
			pset.Set(int32(i))
		}
		s.bestSeeded(p, nil, pset, v)
	}
	if len(s.best) == 0 && g.N() > 0 {
		s.best = []int32{0} // single vertex counts as a clique
	}
	res.Clique = s.best
	res.Nodes = s.nodes
	res.Prunes = s.prunes
	s.mark(res)
	publishObs(res)
	return res
}

// NeiSkyMC is Algorithm 5: branch-and-bound restricted to skyline seeds.
// The skyline is computed internally with FilterRefineSky; use
// NeiSkyMCWithSkyline to supply one.
func NeiSkyMC(g *graph.Graph) *Result {
	sky := core.FilterRefineSky(g, core.Options{})
	return NeiSkyMCWithSkyline(g, sky.Skyline)
}

// NeiSkyMCCtx is NeiSkyMC under a context. A cancellation during the
// skyline phase leaves a skyline SUPERSET, which is still a sound seed
// restriction (extra seeds only mean less pruning), so the search
// proceeds on it; a cancellation during the search returns the
// incumbent. Either way Truncated/Err are set on the result.
func NeiSkyMCCtx(ctx context.Context, g *graph.Graph) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	sky := core.FilterRefineSkyCtx(ctx, g, core.Options{})
	res := neiSkyMCRun(run, g, sky.Skyline)
	if sky.Truncated && !res.Truncated {
		res.Truncated = true
		res.Err = sky.Err
	}
	return res
}

// NeiSkyMCWithSkyline runs the skyline-pruned maximum clique search.
//
// Rather than literally opening one ego-network search per skyline
// vertex (Algorithm 5 as printed — available as NeiSkyMCEgo), it keeps
// the efficient degeneracy-ordered enumeration of BaseMCC and applies
// the skyline as an orthogonal pruning rule, the way the paper layers
// its pruning on MC-BRB: a subproblem {v} ∪ laterN(v) is skipped when
// it contains no skyline vertex. This is sound because some maximum
// clique intersects R (corrected Lemma 5) and every clique is
// enumerated at its earliest member in the degeneracy order.
func NeiSkyMCWithSkyline(g *graph.Graph, skyline []int32) *Result {
	return neiSkyMCRun(nil, g, skyline)
}

// NeiSkyMCWithSkylineCtx is NeiSkyMCWithSkyline under a context.
func NeiSkyMCWithSkylineCtx(ctx context.Context, g *graph.Graph, skyline []int32) *Result {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return neiSkyMCRun(run, g, skyline)
}

func neiSkyMCRun(run *runctl.Run, g *graph.Graph, skyline []int32) *Result {
	defer obs.Get().Start("clique.search").End()
	s := newSolver(run, g, HeuristicClique(g))
	order, pos, _ := Degeneracy(g)
	cores := CoreNumbers(g)
	inSky := make([]bool, g.N())
	for _, u := range skyline {
		inSky[u] = true
	}
	res := &Result{}
	for _, v := range order {
		if s.stopped {
			break
		}
		if int(cores[v])+1 <= len(s.best) {
			continue
		}
		later := make([]int32, 0, g.Degree(v))
		touchesSkyline := inSky[v]
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] && int(cores[w]) >= len(s.best) {
				later = append(later, w)
				if inSky[w] {
					touchesSkyline = true
				}
			}
		}
		if !touchesSkyline || len(later)+1 <= len(s.best) {
			continue
		}
		res.Seeds++
		p := s.buildSub(later)
		pset := bitset.New(len(later))
		for i := range later {
			pset.Set(int32(i))
		}
		s.bestSeeded(p, nil, pset, v)
	}
	if len(s.best) == 0 && g.N() > 0 {
		s.best = []int32{0}
	}
	res.Clique = s.best
	res.Nodes = s.nodes
	res.Prunes = s.prunes
	s.mark(res)
	publishObs(res)
	return res
}

// NeiSkyMCEgo is the literal Algorithm 5: for every skyline vertex u,
// branch-and-bound inside u's ego network. Kept as an ablation; the
// hybrid NeiSkyMC is usually faster because its subproblems stay
// degeneracy-sized.
func NeiSkyMCEgo(g *graph.Graph, skyline []int32) *Result {
	defer obs.Get().Start("clique.search").End()
	s := newSolver(nil, g, HeuristicClique(g))
	cores := CoreNumbers(g)
	res := &Result{}
	// Seed order: descending core number finds big cliques early,
	// tightening the incumbent so later seeds die on the core bound.
	seeds := make([]int32, len(skyline))
	copy(seeds, skyline)
	sort.Slice(seeds, func(i, j int) bool {
		ci, cj := cores[seeds[i]], cores[seeds[j]]
		if ci != cj {
			return ci > cj
		}
		return seeds[i] < seeds[j]
	})
	for _, u := range seeds {
		if int(cores[u])+1 <= len(s.best) || g.Degree(u)+1 <= len(s.best) {
			continue
		}
		res.Seeds++
		s.searchSeed(u, cores)
	}
	if len(s.best) == 0 && g.N() > 0 {
		s.best = []int32{0}
	}
	res.Clique = s.best
	res.Nodes = s.nodes
	res.Prunes = s.prunes
	publishObs(res)
	return res
}

// MaxContaining returns a maximum clique that contains u (MC(u) in the
// paper's §IV-C.3), found by exhaustive branch-and-bound inside u's ego
// network.
func MaxContaining(g *graph.Graph, u int32) []int32 {
	c, _ := maxContainingRun(nil, g, u)
	return c
}

// maxContainingRun is MaxContaining under a run; truncated reports an
// abandoned search (the returned clique is then the incumbent, still a
// genuine clique containing u but possibly not maximum).
func maxContainingRun(run *runctl.Run, g *graph.Graph, u int32) (clique []int32, truncated bool) {
	s := newSolver(run, g, nil)
	nbrs := g.Neighbors(u)
	if len(nbrs) == 0 {
		return []int32{u}, false
	}
	verts := make([]int32, len(nbrs))
	copy(verts, nbrs)
	p := s.buildSub(verts)
	pset := bitset.New(len(verts))
	for i := range verts {
		pset.Set(int32(i))
	}
	s.bestSeeded(p, nil, pset, u)
	if len(s.best) == 0 {
		return []int32{u}, s.stopped
	}
	return s.best, s.stopped
}
