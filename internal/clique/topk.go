package clique

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"neisky/internal/core"
	"neisky/internal/graph"
	"neisky/internal/runctl"
)

// cliqueKey canonicalizes a clique (already sorted ascending) for
// duplicate detection.
func cliqueKey(c []int32) string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}

// TopKResult reports a k-maximum-cliques computation.
type TopKResult struct {
	Cliques [][]int32 // distinct cliques, sizes non-increasing
	MCCalls int       // MaxContaining invocations (the paper's cost driver)
	Rounds  int       // selection rounds (NeiSkyTopkMCC)
	// Truncated marks a best-effort partial result: the run was
	// cancelled mid-enumeration. Every listed clique is genuine, but
	// the list may be missing larger cliques not yet discovered. Err
	// carries the cause.
	Truncated bool
	Err       error
}

// BaseTopkMCC is the straightforward k-maximum-cliques method (§IV-C.3):
// compute MC(u), a maximum clique containing u, for every vertex; return
// the k largest distinct cliques.
func BaseTopkMCC(g *graph.Graph, k int) *TopKResult {
	return baseTopkRun(nil, g, k)
}

// BaseTopkMCCCtx is BaseTopkMCC under a context; see
// TopKResult.Truncated for the anytime contract.
func BaseTopkMCCCtx(ctx context.Context, g *graph.Graph, k int) *TopKResult {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return baseTopkRun(run, g, k)
}

func baseTopkRun(run *runctl.Run, g *graph.Graph, k int) *TopKResult {
	res := &TopKResult{}
	if k == 1 {
		// Degenerates to plain maximum clique computation (paper §V,
		// Exp-6: "in the case of k = 1, BaseTopkMCC ... degenerates to
		// MC-BRB").
		mcc := baseMCCRun(run, g)
		if len(mcc.Clique) > 0 {
			res.Cliques = [][]int32{mcc.Clique}
		}
		res.Truncated, res.Err = mcc.Truncated, mcc.Err
		return res
	}
	n := int32(g.N())
	all := make([][]int32, 0, n)
	for u := int32(0); u < n; u++ {
		res.MCCalls++
		c, trunc := maxContainingRun(run, g, u)
		all = append(all, c)
		if trunc {
			res.Truncated = true
			res.Err = run.Err()
			break
		}
	}
	res.Cliques = selectTopKDistinct(all, k)
	return res
}

// selectTopKDistinct orders cliques by (size desc, lexicographic key asc)
// and keeps the first k distinct ones.
func selectTopKDistinct(all [][]int32, k int) [][]int32 {
	sort.Slice(all, func(i, j int) bool {
		if len(all[i]) != len(all[j]) {
			return len(all[i]) > len(all[j])
		}
		return cliqueKey(all[i]) < cliqueKey(all[j])
	})
	seen := make(map[string]bool)
	var out [][]int32
	for _, c := range all {
		key := cliqueKey(c)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out
}

// NeiSkyTopkMCC computes the k largest distinct maximum cliques using the
// neighborhood-skyline pruning of Lemma 6 (|MC(v)| ≤ |MC(u)| whenever
// v ≤ u):
//
//   - The candidate pool starts as the skyline R; every non-candidate
//     vertex records one dominator (the O array), so each unconsumed
//     vertex always has a candidate at the top of its domination chain.
//   - Each round evaluates MC(u) only for candidates (memoized), emits
//     the largest, consumes its seed, and releases the vertices whose
//     recorded dominator was the seed back into the pool — exactly the
//     "update the neighborhood skyline" step the paper describes.
func NeiSkyTopkMCC(g *graph.Graph, k int) *TopKResult {
	sky := core.FilterRefineSky(g, core.Options{})
	return NeiSkyTopkMCCWithSkyline(g, k, sky)
}

// NeiSkyTopkMCCCtx is NeiSkyTopkMCC under a context. As with
// NeiSkyMCCtx, a skyline truncated by cancellation is a sound superset
// (the candidate pool just starts larger), so the selection still runs
// on it; the result carries Truncated/Err either way.
func NeiSkyTopkMCCCtx(ctx context.Context, g *graph.Graph, k int) *TopKResult {
	run := runctl.FromContext(ctx)
	defer run.Release()
	sky := core.FilterRefineSkyCtx(ctx, g, core.Options{})
	res := neiSkyTopkRun(run, g, k, sky)
	if sky.Truncated && !res.Truncated {
		res.Truncated = true
		res.Err = sky.Err
	}
	return res
}

// NeiSkyTopkMCCWithSkyline is NeiSkyTopkMCC with a precomputed skyline
// result (which must carry the Dominator array).
func NeiSkyTopkMCCWithSkyline(g *graph.Graph, k int, sky *core.Result) *TopKResult {
	return neiSkyTopkRun(nil, g, k, sky)
}

func neiSkyTopkRun(run *runctl.Run, g *graph.Graph, k int, sky *core.Result) *TopKResult {
	res := &TopKResult{}
	if k == 1 {
		// Degenerates to NeiSkyMC (paper §V, Exp-6).
		mcc := neiSkyMCRun(run, g, sky.Skyline)
		if len(mcc.Clique) > 0 {
			res.Cliques = [][]int32{mcc.Clique}
		}
		res.Truncated, res.Err = mcc.Truncated, mcc.Err
		return res
	}
	children := core.DominatedBy(sky.Dominator)
	cores := CoreNumbers(g)

	memo := make(map[int32][]int32)
	mc := func(u int32) []int32 {
		if c, ok := memo[u]; ok {
			return c
		}
		res.MCCalls++
		c, trunc := maxContainingRun(run, g, u)
		if trunc {
			// Don't memoize a possibly-submaximal incumbent; the
			// selection loop stops at the next round boundary.
			res.Truncated = true
			res.Err = run.Err()
			return c
		}
		memo[u] = c
		return c
	}

	// The pool holds candidates with an upper bound on |MC(u)|. The
	// initial skyline pool is evaluated eagerly (the r-vs-n cost model
	// of the paper); vertices released on consumption carry the lazy
	// bound min(|MC(dominator)|, core+1) — Lemma 6 plus the core bound
	// — and are only evaluated when that bound could win a round.
	type entry struct {
		evaluated bool
		bound     int
	}
	pool := make(map[int32]*entry, len(sky.Skyline))
	for _, u := range sky.Skyline {
		pool[u] = &entry{evaluated: true, bound: len(mc(u))}
	}

	seenCliques := make(map[string]bool)
	for len(res.Cliques) < k && len(pool) > 0 && !res.Truncated {
		res.Rounds++
		// Raise lazy bounds until the best evaluated candidate provably
		// beats every unevaluated bound.
		var best int32 = -1
		for {
			best = -1
			var pending int32 = -1
			bestSize, pendingBound := -1, -1
			for u, e := range pool {
				if e.evaluated {
					if e.bound > bestSize || (e.bound == bestSize && (best == -1 || u < best)) {
						bestSize, best = e.bound, u
					}
				} else if e.bound > pendingBound || (e.bound == pendingBound && (pending == -1 || u < pending)) {
					pendingBound, pending = e.bound, u
				}
			}
			if pending == -1 || pendingBound <= bestSize {
				break
			}
			e := pool[pending]
			e.evaluated = true
			e.bound = len(mc(pending))
		}
		if best == -1 || res.Truncated {
			break
		}
		c := mc(best)
		key := cliqueKey(c)
		if !seenCliques[key] {
			seenCliques[key] = true
			res.Cliques = append(res.Cliques, c)
		}
		// Consume, in one batch, every evaluated candidate whose
		// memoized MC is this same clique: mc(u) is a property of the
		// graph, so each of them could only re-emit the duplicate.
		// Release their recorded dominees with lazy bounds.
		var batch []int32
		for u, e := range pool {
			if e.evaluated && cliqueKey(mc(u)) == key {
				batch = append(batch, u)
			}
		}
		for _, u := range batch {
			bound := len(mc(u))
			delete(pool, u)
			for _, v := range children[u] {
				if _, ok := pool[v]; ok {
					continue
				}
				b := bound
				if cb := int(cores[v]) + 1; cb < b {
					b = cb
				}
				pool[v] = &entry{bound: b}
			}
		}
	}
	return res
}

// Sizes extracts the size sequence of a clique list.
func Sizes(cliques [][]int32) []int {
	out := make([]int, len(cliques))
	for i, c := range cliques {
		out[i] = len(c)
	}
	return out
}
