package clique

import (
	"sort"
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n int, density float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < density {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// bruteMaxClique enumerates all subsets (n ≤ 20) to find the maximum
// clique size.
func bruteMaxClique(g *graph.Graph) int {
	n := g.N()
	best := 0
	if n == 0 {
		return 0
	}
	for mask := 1; mask < 1<<n; mask++ {
		if popcount(mask) <= best {
			continue
		}
		var verts []int32
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				verts = append(verts, int32(i))
			}
		}
		if IsClique(g, verts) {
			best = len(verts)
		}
	}
	return best
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestDegeneracy(t *testing.T) {
	// A tree has degeneracy 1, a cycle 2, K_5 4.
	if _, _, d := Degeneracy(gen.CompleteBinaryTree(15)); d != 1 {
		t.Fatalf("tree degeneracy = %d", d)
	}
	if _, _, d := Degeneracy(gen.Cycle(8)); d != 2 {
		t.Fatalf("cycle degeneracy = %d", d)
	}
	if _, _, d := Degeneracy(gen.Clique(5)); d != 4 {
		t.Fatalf("K5 degeneracy = %d", d)
	}
	order, pos, _ := Degeneracy(gen.Path(5))
	if len(order) != 5 {
		t.Fatal("order must cover all vertices")
	}
	for i, v := range order {
		if pos[v] != int32(i) {
			t.Fatal("pos is not the inverse of order")
		}
	}
}

func TestHeuristicCliqueIsClique(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 5+r.Intn(25), 0.4)
		h := HeuristicClique(g)
		if len(h) == 0 && g.N() > 0 {
			t.Fatal("heuristic returned empty clique on non-empty graph")
		}
		if !IsClique(g, h) {
			t.Fatalf("heuristic returned a non-clique %v (edges %v)", h, g.EdgeList())
		}
	}
}

func TestBaseMCCExactSmall(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 4+r.Intn(12), 0.2+0.6*r.Float64())
		res := BaseMCC(g)
		if !IsClique(g, res.Clique) {
			t.Fatalf("BaseMCC returned non-clique %v", res.Clique)
		}
		want := bruteMaxClique(g)
		if len(res.Clique) != want {
			t.Fatalf("BaseMCC size %d != brute force %d (edges %v)",
				len(res.Clique), want, g.EdgeList())
		}
	}
}

func TestNeiSkyMCMatchesBase(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 4+r.Intn(14), 0.2+0.6*r.Float64())
		base := BaseMCC(g)
		sky := NeiSkyMC(g)
		if !IsClique(g, sky.Clique) {
			t.Fatalf("NeiSkyMC returned non-clique %v", sky.Clique)
		}
		if len(sky.Clique) != len(base.Clique) {
			t.Fatalf("NeiSkyMC size %d != BaseMCC %d (edges %v)",
				len(sky.Clique), len(base.Clique), g.EdgeList())
		}
		skyRes := core.FilterRefineSky(g, core.Options{})
		ego := NeiSkyMCEgo(g, skyRes.Skyline)
		if !IsClique(g, ego.Clique) || len(ego.Clique) != len(base.Clique) {
			t.Fatalf("NeiSkyMCEgo size %d != BaseMCC %d (edges %v)",
				len(ego.Clique), len(base.Clique), g.EdgeList())
		}
	}
}

func TestCoreNumbers(t *testing.T) {
	// K4 with a pendant: clique members have core 3, pendant core 1.
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	cores := CoreNumbers(g)
	for _, v := range []int32{0, 1, 2, 3} {
		if cores[v] != 3 {
			t.Fatalf("core(%d) = %d, want 3", v, cores[v])
		}
	}
	if cores[4] != 1 {
		t.Fatalf("core(pendant) = %d, want 1", cores[4])
	}
	// Core numbers are consistent with degeneracy.
	_, _, d := Degeneracy(g)
	maxCore := int32(0)
	for _, c := range cores {
		if c > maxCore {
			maxCore = c
		}
	}
	if int(maxCore) != d {
		t.Fatalf("max core %d != degeneracy %d", maxCore, d)
	}
}

// TestCorrectedLemma5: some maximum clique always intersects the
// skyline (the form Algorithm 5 actually needs; the paper's stronger
// statement is off — see DESIGN.md).
func TestCorrectedLemma5(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(r, 4+r.Intn(12), 0.3+0.5*r.Float64())
		if g.M() == 0 {
			continue
		}
		skyRes := core.FilterRefineSky(g, core.Options{})
		inSky := core.SkylineSet(skyRes, g.N())
		want := bruteMaxClique(g)
		// Search: does any maximum clique contain a skyline vertex?
		found := false
		n := g.N()
		for mask := 1; mask < 1<<n && !found; mask++ {
			if popcount(mask) != want {
				continue
			}
			var verts []int32
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					verts = append(verts, int32(i))
				}
			}
			if !IsClique(g, verts) {
				continue
			}
			for _, v := range verts {
				if inSky[v] {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("no maximum clique touches the skyline (edges %v, skyline %v)",
				g.EdgeList(), skyRes.Skyline)
		}
	}
}

func TestLemma6MCMonotoneUnderDomination(t *testing.T) {
	r := rng.New(37)
	checked := 0
	for trial := 0; trial < 30 && checked < 50; trial++ {
		g := randomGraph(r, 4+r.Intn(10), 0.4)
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if u == v || !core.Dominates(g, u, v) {
					continue
				}
				mcU := len(MaxContaining(g, u))
				mcV := len(MaxContaining(g, v))
				if mcV > mcU {
					t.Fatalf("Lemma 6 violated: v=%d ≤ u=%d but |MC(v)|=%d > |MC(u)|=%d (edges %v)",
						v, u, mcV, mcU, g.EdgeList())
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("vacuous")
	}
}

func TestMaxContaining(t *testing.T) {
	// Planted K4 on {0,1,2,3} plus a pendant 4.
	g := graph.FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	for u := int32(0); u < 4; u++ {
		mc := MaxContaining(g, u)
		if len(mc) != 4 {
			t.Fatalf("MC(%d) size %d, want 4", u, len(mc))
		}
		if !IsClique(g, mc) {
			t.Fatal("not a clique")
		}
	}
	mc4 := MaxContaining(g, 4)
	if len(mc4) != 2 {
		t.Fatalf("MC(4) size %d, want 2", len(mc4))
	}
	iso := graph.NewBuilder(1).Build()
	if got := MaxContaining(iso, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("isolated MC = %v", got)
	}
}

func TestSpecialGraphCliques(t *testing.T) {
	if got := BaseMCC(gen.Clique(7)); len(got.Clique) != 7 {
		t.Fatalf("K7 clique size %d", len(got.Clique))
	}
	if got := BaseMCC(gen.Cycle(5)); len(got.Clique) != 2 {
		t.Fatalf("C5 clique size %d", len(got.Clique))
	}
	if got := BaseMCC(gen.Cycle(3)); len(got.Clique) != 3 {
		t.Fatalf("C3 clique size %d", len(got.Clique))
	}
	if got := BaseMCC(gen.CompleteBinaryTree(15)); len(got.Clique) != 2 {
		t.Fatalf("tree clique size %d", len(got.Clique))
	}
	if got := BaseMCC(graph.NewBuilder(3).Build()); len(got.Clique) != 1 {
		t.Fatalf("edgeless clique size %d", len(got.Clique))
	}
	if got := BaseMCC(graph.NewBuilder(0).Build()); len(got.Clique) != 0 {
		t.Fatalf("empty graph clique %v", got.Clique)
	}
}

func TestPlantedCliqueRecovered(t *testing.T) {
	g, members := gen.PlantedClique(150, 0.08, 10, 77)
	res := BaseMCC(g)
	if len(res.Clique) < 10 {
		t.Fatalf("planted clique of 10 not found: size %d", len(res.Clique))
	}
	sky := NeiSkyMC(g)
	if len(sky.Clique) != len(res.Clique) {
		t.Fatalf("NeiSkyMC %d != BaseMCC %d on planted clique", len(sky.Clique), len(res.Clique))
	}
	_ = members
}

func TestNeiSkySeedsFewer(t *testing.T) {
	g := gen.PowerLaw(400, 1200, 2.3, 21)
	base := BaseMCC(g)
	sky := NeiSkyMC(g)
	if len(sky.Clique) != len(base.Clique) {
		t.Fatalf("sizes differ: %d vs %d", len(sky.Clique), len(base.Clique))
	}
}

func TestTopKBaseProperties(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 6+r.Intn(10), 0.4)
		res := BaseTopkMCC(g, 4)
		if len(res.Cliques) == 0 {
			t.Fatal("no cliques returned")
		}
		if res.MCCalls != g.N() {
			t.Fatalf("BaseTopkMCC must call MC for every vertex: %d != %d", res.MCCalls, g.N())
		}
		seen := map[string]bool{}
		for i, c := range res.Cliques {
			if !IsClique(g, c) {
				t.Fatalf("clique %d invalid: %v", i, c)
			}
			key := cliqueKey(c)
			if seen[key] {
				t.Fatal("duplicate clique returned")
			}
			seen[key] = true
			if i > 0 && len(c) > len(res.Cliques[i-1]) {
				t.Fatal("sizes must be non-increasing")
			}
		}
		// First clique is a maximum clique.
		if len(res.Cliques[0]) != bruteMaxClique(g) {
			t.Fatalf("first clique size %d != maximum %d", len(res.Cliques[0]), bruteMaxClique(g))
		}
	}
}

func TestTopKNeiSkyMatchesBaseSizes(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(r, 6+r.Intn(12), 0.35+0.3*r.Float64())
		k := 1 + r.Intn(5)
		base := BaseTopkMCC(g, k)
		sky := NeiSkyTopkMCC(g, k)
		bs, ss := Sizes(base.Cliques), Sizes(sky.Cliques)
		if len(bs) != len(ss) {
			t.Fatalf("k=%d: clique counts differ: base %v vs neisky %v (edges %v)",
				k, bs, ss, g.EdgeList())
		}
		for i := range bs {
			if bs[i] != ss[i] {
				t.Fatalf("k=%d: size sequence differs at %d: base %v vs neisky %v (edges %v)",
					k, i, bs, ss, g.EdgeList())
			}
		}
		for _, c := range sky.Cliques {
			if !IsClique(g, c) {
				t.Fatalf("NeiSkyTopk returned non-clique %v", c)
			}
		}
		if sky.MCCalls > base.MCCalls {
			t.Fatalf("NeiSkyTopk should not call MC more often: %d > %d", sky.MCCalls, base.MCCalls)
		}
	}
}

func TestTopKOnPowerLaw(t *testing.T) {
	g := gen.PowerLaw(250, 700, 2.4, 51)
	k := 5
	base := BaseTopkMCC(g, k)
	sky := NeiSkyTopkMCC(g, k)
	bs, ss := Sizes(base.Cliques), Sizes(sky.Cliques)
	if len(bs) != len(ss) {
		t.Fatalf("clique counts differ: %v vs %v", bs, ss)
	}
	for i := range bs {
		if bs[i] != ss[i] {
			t.Fatalf("size sequences differ: %v vs %v", bs, ss)
		}
	}
	if sky.MCCalls >= base.MCCalls {
		t.Fatalf("skyline pruning should reduce MC calls on power-law graphs: %d vs %d",
			sky.MCCalls, base.MCCalls)
	}
}

func TestIsClique(t *testing.T) {
	g := gen.Clique(4)
	if !IsClique(g, []int32{0, 1, 2, 3}) {
		t.Fatal("K4 is a clique")
	}
	if !IsClique(g, nil) {
		t.Fatal("empty set is a clique")
	}
	if IsClique(g, []int32{0, 0}) {
		t.Fatal("duplicate vertices are not a clique")
	}
	p := gen.Path(3)
	if IsClique(p, []int32{0, 1, 2}) {
		t.Fatal("path is not a clique")
	}
}

func TestQuickMaxCliqueOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%14) + 2
		density := 0.2 + float64(dRaw%70)/100
		r := rng.New(seed)
		g := randomGraph(r, n, density)
		want := bruteMaxClique(g)
		return len(BaseMCC(g).Clique) == want && len(NeiSkyMC(g).Clique) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueSorted(t *testing.T) {
	g, _ := gen.PlantedClique(60, 0.1, 6, 3)
	res := BaseMCC(g)
	if !sort.SliceIsSorted(res.Clique, func(i, j int) bool { return res.Clique[i] < res.Clique[j] }) {
		t.Fatalf("clique not sorted: %v", res.Clique)
	}
}
