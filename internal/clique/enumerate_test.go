package clique

import (
	"sort"
	"testing"
	"testing/quick"

	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// bruteMaximal enumerates maximal cliques by subset enumeration (n ≤ 18).
func bruteMaximal(g *graph.Graph) map[string]bool {
	n := g.N()
	out := map[string]bool{}
	for mask := 1; mask < 1<<n; mask++ {
		var verts []int32
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				verts = append(verts, int32(i))
			}
		}
		if !IsClique(g, verts) {
			continue
		}
		// Maximal: no vertex outside adjacent to all.
		maximal := true
		for w := int32(0); w < int32(n) && maximal; w++ {
			if mask&(1<<w) != 0 {
				continue
			}
			all := true
			for _, v := range verts {
				if !g.Has(w, v) {
					all = false
					break
				}
			}
			if all {
				maximal = false
			}
		}
		if maximal {
			out[cliqueKey(verts)] = true
		}
	}
	// Isolated vertices are maximal singletons; the loop above catches
	// them (mask with a single bit, trivially a clique, maximal unless
	// some vertex is adjacent — impossible for isolated).
	return out
}

func TestEnumerateMatchesBrute(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(r, 2+r.Intn(12), 0.2+0.6*r.Float64())
		want := bruteMaximal(g)
		got := map[string]bool{}
		EnumerateMaximal(g, func(c []int32) bool {
			key := cliqueKey(c)
			if got[key] {
				t.Fatalf("duplicate maximal clique %v (edges %v)", c, g.EdgeList())
			}
			got[key] = true
			if !IsClique(g, c) {
				t.Fatalf("non-clique emitted: %v", c)
			}
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("found %d maximal cliques, want %d (edges %v)\ngot  %v\nwant %v",
				len(got), len(want), g.EdgeList(), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("missing maximal clique %s", k)
			}
		}
	}
}

func TestEnumerateSpecialCounts(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{gen.Clique(6), 1},
		{gen.Path(5), 4},  // each edge
		{gen.Cycle(5), 5}, // each edge
		{gen.Star(5), 4},  // each spoke
		{gen.CompleteBinaryTree(7), 6},
		{graph.NewBuilder(3).Build(), 3}, // three isolated singletons
		{graph.NewBuilder(0).Build(), 0},
	}
	for i, c := range cases {
		if got := CountMaximal(c.g); got != c.want {
			t.Fatalf("case %d: %d maximal cliques, want %d", i, got, c.want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := gen.Cycle(10)
	seen := 0
	EnumerateMaximal(g, func([]int32) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop after %d cliques, want 3", seen)
	}
}

func TestMaximalContainsMaximum(t *testing.T) {
	g, _ := gen.PlantedClique(120, 0.08, 9, 5)
	best := 0
	for _, c := range MaximalCliques(g) {
		if len(c) > best {
			best = len(c)
		}
	}
	if want := len(BaseMCC(g).Clique); best != want {
		t.Fatalf("largest maximal %d != maximum %d", best, want)
	}
}

func TestEnumerateSortedOutput(t *testing.T) {
	g := gen.Clique(5)
	EnumerateMaximal(g, func(c []int32) bool {
		if !sort.SliceIsSorted(c, func(i, j int) bool { return c[i] < c[j] }) {
			t.Fatalf("clique not sorted: %v", c)
		}
		return true
	})
}

func TestQuickEnumerateCount(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%10) + 1
		r := rng.New(seed)
		g := randomGraph(r, n, 0.4)
		return CountMaximal(g) == len(bruteMaximal(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
