package clique

import (
	"context"
	"errors"
	"testing"

	"neisky/internal/gen"
	"neisky/internal/runctl/faultinject"
	"neisky/internal/testleak"
)

func cancelAtSeq(k int64) func() {
	return faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= k {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
}

// TestNeiSkyMCCtxCancelMidSearch cancels the skyline-seeded
// branch-and-bound mid-search: the incumbent must still be a genuine
// clique (possibly submaximal), marked truncated with the cause.
func TestNeiSkyMCCtxCancelMidSearch(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.PowerLaw(2000, 12000, 2.2, 31)
	truth := NeiSkyMC(g)

	defer cancelAtSeq(2)()
	res := NeiSkyMCCtx(context.Background(), g)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if !errors.Is(res.Err, faultinject.ErrInjected) {
		t.Fatalf("Err = %v, want ErrInjected", res.Err)
	}
	if !IsClique(g, res.Clique) {
		t.Fatalf("truncated incumbent %v is not a clique", res.Clique)
	}
	if len(res.Clique) > len(truth.Clique) {
		t.Fatalf("incumbent larger than the true maximum: %d > %d",
			len(res.Clique), len(truth.Clique))
	}
}

// TestBaseMCCCtxCancelMidSearch is the unpruned counterpart. The graph
// is dense (avg degree ≈100) so the branch-and-bound genuinely branches
// past the first checkpoint interval; on sparse graphs the degeneracy
// pruning can finish the whole search between polls.
func TestBaseMCCCtxCancelMidSearch(t *testing.T) {
	g := gen.PowerLaw(500, 25000, 2.0, 32)
	defer cancelAtSeq(1)()
	res := BaseMCCCtx(context.Background(), g)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	if !IsClique(g, res.Clique) {
		t.Fatalf("truncated incumbent %v is not a clique", res.Clique)
	}
}

// TestTopkCtxCancelListsGenuineCliques cancels the top-k enumeration
// mid-run: every clique already emitted must be genuine and distinct.
func TestTopkCtxCancelListsGenuineCliques(t *testing.T) {
	g := gen.PowerLaw(1500, 9000, 2.2, 33)
	defer cancelAtSeq(10)()
	res := NeiSkyTopkMCCCtx(context.Background(), g, 5)
	if !res.Truncated {
		t.Fatal("expected truncated result")
	}
	seen := map[string]bool{}
	for _, c := range res.Cliques {
		if !IsClique(g, c) {
			t.Fatalf("emitted %v is not a clique", c)
		}
		key := cliqueKey(c)
		if seen[key] {
			t.Fatalf("duplicate clique %v in truncated output", c)
		}
		seen[key] = true
	}
}

// TestCliqueCtxMatchesPlainOnLiveContext pins zero behavioral drift for
// callers that pass a context that never fires.
func TestCliqueCtxMatchesPlainOnLiveContext(t *testing.T) {
	g := gen.PowerLaw(1000, 6000, 2.2, 34)
	want := NeiSkyMC(g)
	got := NeiSkyMCCtx(context.Background(), g)
	if got.Truncated || got.Err != nil {
		t.Fatalf("spurious truncation: %v", got.Err)
	}
	if len(got.Clique) != len(want.Clique) {
		t.Fatalf("ω mismatch: %d vs %d", len(got.Clique), len(want.Clique))
	}
}
