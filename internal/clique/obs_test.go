package clique

import (
	"testing"

	"neisky/internal/dataset"
	"neisky/internal/obs"
)

// TestCliquePublishesObs pins the branch-and-bound observability: node,
// prune and seed counters land in the registry and match the Result.
func TestCliquePublishesObs(t *testing.T) {
	g, err := dataset.Load("karate", 1)
	if err != nil {
		t.Fatal(err)
	}
	old := obs.Swap(obs.New())
	defer obs.Swap(old)
	r := obs.Get()

	res := BaseMCC(g)
	snap := r.Snapshot()
	if snap.Timers["clique.search"].Count != 1 {
		t.Fatalf("clique.search timer = %+v", snap.Timers["clique.search"])
	}
	if got := snap.Counters["clique.bb_nodes"]; got != res.Nodes {
		t.Fatalf("clique.bb_nodes = %d, want %d", got, res.Nodes)
	}
	if got := snap.Counters["clique.bb_prunes"]; got != res.Prunes {
		t.Fatalf("clique.bb_prunes = %d, want %d", got, res.Prunes)
	}
	if got := snap.Counters["clique.seeds"]; got != int64(res.Seeds) {
		t.Fatalf("clique.seeds = %d, want %d", got, res.Seeds)
	}
	if res.Nodes > 0 && res.Prunes == 0 {
		t.Log("note: search explored nodes without a single bound cut (tiny graph)")
	}

	r.Reset()
	sky := NeiSkyMC(g)
	if len(sky.Clique) != len(res.Clique) {
		t.Fatalf("NeiSkyMC ω=%d disagrees with BaseMCC ω=%d", len(sky.Clique), len(res.Clique))
	}
	snap = r.Snapshot()
	// NeiSkyMC runs the skyline first, then the pruned search: both the
	// core phases and the clique search must appear in one snapshot.
	for _, timer := range []string{"core.filter", "core.refine", "clique.search"} {
		if snap.Timers[timer].Count == 0 {
			t.Fatalf("timer %s missing after NeiSkyMC: %v", timer, snap.Timers)
		}
	}
	if got := snap.Counters["clique.bb_nodes"]; got != sky.Nodes {
		t.Fatalf("clique.bb_nodes = %d, want %d", got, sky.Nodes)
	}
}
