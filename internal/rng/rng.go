// Package rng provides a small, fast, deterministic random number
// generator used throughout the repository so that every workload,
// synthetic dataset and experiment is reproducible across platforms and
// Go releases (math/rand's sequence is only stable per major version).
//
// The generator is xoshiro256**, seeded through splitmix64, following the
// reference implementations by Blackman and Vigna.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** pseudo random number generator.
// The zero value is not usable; construct one with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed state and returns the next stream value.
// It is used only to initialize the xoshiro state from a single word.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given value. Two generators
// created with the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state; splitmix64 of
	// any seed cannot produce four zero words, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random value in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed float64 with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the elements of a slice of ints in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
