package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collide too often: %d/100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 100; n++ {
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const buckets = 10
	const trials = 50000
	counts := make([]int, buckets)
	for i := 0; i < trials; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(trials) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(21)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestExpPositive(t *testing.T) {
	r := New(31)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		e := r.Exp()
		if e < 0 {
			t.Fatalf("Exp returned negative %v", e)
		}
		sum += e
	}
	mean := sum / trials
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("Exp mean %v far from 1", mean)
	}
}
