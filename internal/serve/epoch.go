// Package serve is the long-running query layer: an HTTP server that
// holds an immutable graph snapshot and answers concurrent skyline,
// group-centrality, clique and dominator queries against it, with
// per-query deadlines and work budgets from internal/runctl and the
// typed anytime contracts surfaced in every response.
//
// # Epoch-based snapshot management
//
// Snapshot replacement is RCU-style. The current snapshot lives behind
// an atomic pointer; a query pins it by incrementing the epoch's
// refcount and re-validating the pointer (Store.Acquire), so the hot
// path is two atomic loads and one atomic add — no locks, no channels,
// and thousands of queries can share one snapshot. A writer builds the
// next snapshot off to the side, publishes it with one atomic swap
// (Store.Swap), and drops the publisher reference of the old epoch;
// the old snapshot's resources (an mmap, typically) are released only
// when the last in-flight query unpins it. Queries therefore never
// observe a retired snapshot, and every retired epoch's refcount
// drains to zero — both properties are asserted by the race-detector
// battery in epoch_test.go.
package serve

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"neisky/internal/graph"
	"neisky/internal/skytree"
)

// ErrClosed is returned by Swap after the store has shut down.
var ErrClosed = errors.New("serve: store closed")

// Snapshot is one immutable generation of the served graph.
type Snapshot struct {
	Graph *graph.Graph
	// Closer releases the resources backing Graph (an mmap) when the
	// snapshot's epoch retires and its last pin drains; nil for
	// heap-backed graphs.
	Closer io.Closer
	// Name records provenance for /v1/stats: a file path, a dataset
	// name, or "batch:<applied>" for dynsky-applied update batches.
	Name string

	// The layered dominance index of Graph, built lazily on the first
	// query that needs it (or carried over incrementally across a batch
	// swap). Guarded by treeMu, not an atomic: concurrent first queries
	// should share one build, not race duplicate ones.
	treeMu sync.Mutex
	tree   *skytree.Tree
}

// Tree returns the snapshot's layered dominance index, building it on
// first use under ctx. Builds truncated by the querying context are
// returned (their assigned prefix is exact) but never cached, so a
// later query with more budget gets a fresh, complete build.
func (s *Snapshot) Tree(ctx context.Context) *skytree.Tree {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if s.tree != nil {
		return s.tree
	}
	t := skytree.BuildCtx(ctx, s.Graph, skytree.BuildOptions{})
	if !t.Truncated {
		s.tree = t
	}
	return t
}

// TreeIfBuilt returns the cached index without triggering a build (nil
// when no complete build has happened yet) — the probe batch swaps use
// to decide between incremental carry-over and lazy rebuild.
func (s *Snapshot) TreeIfBuilt() *skytree.Tree {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	return s.tree
}

// SetTree installs a precomputed complete index (swap carry-over, CLI
// prewarm). Truncated trees are ignored.
func (s *Snapshot) SetTree(t *skytree.Tree) {
	if t == nil || t.Truncated {
		return
	}
	s.treeMu.Lock()
	s.tree = t
	s.treeMu.Unlock()
}

// epoch pairs one published snapshot with its reader refcount.
type epoch struct {
	snap  *Snapshot
	id    uint64
	store *Store
	// refs counts pins plus one publisher reference held while the
	// epoch is current. It can reach zero only after retirement.
	refs    atomic.Int64
	retired atomic.Bool // publisher reference dropped (no longer current)
	freed   atomic.Bool // resources released; a held pin must never see this
	drained chan struct{}
}

// unref drops one reference; the reference that takes the count to zero
// releases the snapshot's resources exactly once. A late Acquire can
// briefly resurrect the count past zero before its validation fails and
// re-drops it, so the zero transition is CAS-guarded.
func (e *epoch) unref() {
	if e.refs.Add(-1) == 0 && e.freed.CompareAndSwap(false, true) {
		if e.snap.Closer != nil {
			_ = e.snap.Closer.Close()
		}
		e.store.retiredN.Add(1)
		e.store.live.Done()
		close(e.drained)
	}
}

// Store publishes snapshots to concurrent readers with epoch-based
// reclamation. The zero value is unusable; construct with NewStore.
type Store struct {
	cur      atomic.Pointer[epoch]
	mu       sync.Mutex // serializes Swap and Close
	lastID   atomic.Uint64
	swapsN   atomic.Int64
	retiredN atomic.Int64
	live     sync.WaitGroup // one unit per not-yet-freed epoch
}

// NewStore returns a store serving snap as epoch 1.
func NewStore(snap *Snapshot) *Store {
	s := &Store{}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publish(snap)
	return s
}

// publish installs snap as the new current epoch and retires the old
// one. Caller holds s.mu.
func (s *Store) publish(snap *Snapshot) uint64 {
	e := &epoch{snap: snap, id: s.lastID.Add(1), store: s, drained: make(chan struct{})}
	e.refs.Store(1) // the publisher reference
	s.live.Add(1)
	old := s.cur.Swap(e)
	if old != nil {
		s.swapsN.Add(1)
		old.retired.Store(true)
		old.unref()
	}
	return e.id
}

// Pin is a leased reference to one epoch's snapshot. Release it when
// the query completes; the snapshot stays valid until then even if
// newer epochs have been published and retired it.
type Pin struct {
	e *epoch
}

// Acquire pins the current snapshot, or returns nil after Close. The
// validation re-load makes the pin safe against a concurrent swap: if
// the epoch was replaced between the load and the increment, the
// increment is undone and the acquire retries on the new epoch. When
// the validation succeeds the publisher reference is still (or was at
// the increment) held, so the count was ≥ 2 and the epoch is live.
func (s *Store) Acquire() *Pin {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil
		}
		e.refs.Add(1)
		if s.cur.Load() == e {
			return &Pin{e: e}
		}
		e.unref()
	}
}

// Graph returns the pinned snapshot's graph.
func (p *Pin) Graph() *graph.Graph { return p.e.snap.Graph }

// Snapshot returns the pinned snapshot.
func (p *Pin) Snapshot() *Snapshot { return p.e.snap }

// Epoch returns the pinned epoch's id (1 for the initial snapshot).
func (p *Pin) Epoch() uint64 { return p.e.id }

// Defunct reports whether the pinned epoch's resources have been
// released. It must be false for as long as the pin is held — the
// race-detector battery asserts exactly this.
func (p *Pin) Defunct() bool { return p.e.freed.Load() }

// Release unpins the snapshot. Safe to call once per Acquire.
func (p *Pin) Release() {
	if p.e != nil {
		e := p.e
		p.e = nil
		e.unref()
	}
}

// Swap publishes snap as the new current snapshot and retires the old
// epoch (resources freed when its last pin drains). It returns the new
// epoch id, or ErrClosed after Close — the caller then still owns snap.
func (s *Store) Swap(snap *Snapshot) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur.Load() == nil {
		return 0, ErrClosed
	}
	return s.publish(snap), nil
}

// Close retires the current epoch, makes further Acquires return nil
// and further Swaps fail, and blocks until every epoch ever published
// has drained and released its resources.
func (s *Store) Close() {
	s.mu.Lock()
	e := s.cur.Swap(nil)
	if e != nil {
		e.retired.Store(true)
		e.unref()
	}
	s.mu.Unlock()
	s.live.Wait()
}

// CurrentEpoch returns the id of the current epoch without pinning it
// (0 after Close). For stats only — the epoch may retire immediately.
func (s *Store) CurrentEpoch() uint64 {
	if e := s.cur.Load(); e != nil {
		return e.id
	}
	return 0
}

// Swaps counts snapshots published after the initial one.
func (s *Store) Swaps() int64 { return s.swapsN.Load() }

// RetiredEpochs counts epochs that have fully drained and released
// their resources.
func (s *Store) RetiredEpochs() int64 { return s.retiredN.Load() }
