package serve

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/rng"
	"neisky/internal/runctl/faultinject"
	"neisky/internal/testleak"
	"neisky/internal/wal"
)

// newDurableServer boots a WAL-attached server over dir, seeding from
// base when the directory is fresh.
func newDurableServer(t *testing.T, dir string, base *graph.Graph, opts Options) (*Server, *httptest.Server, *RecoveryStats) {
	t.Helper()
	var seed *Snapshot
	if base != nil {
		seed = &Snapshot{Graph: base, Name: "seed"}
	}
	snap, l, st, err := OpenDurable(dir, seed, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 4096})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	srv := New(snap, opts)
	srv.AttachWAL(l, 0)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { shutdown(ts, srv) })
	return srv, ts, st
}

// shutdown tears a test server fully down (idempotent), including the
// client keep-alive connections that would otherwise trip testleak.
func shutdown(ts *httptest.Server, srv *Server) {
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
}

// opsBody renders a swap request body for a batch.
func opsBody(ops []dynsky.Op) string {
	var sb strings.Builder
	sb.WriteString(`{"ops":[`)
	for i, op := range ops {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"add":%v,"u":%d,"v":%d}`, op.Add, op.U, op.V)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// swapBatches drives count random batches through POST /v1/snapshot/swap
// and mirrors them on an oracle maintainer.
func swapBatches(t *testing.T, ts *httptest.Server, m *dynsky.Maintainer, n, count int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	for i := 0; i < count; i++ {
		batch := make([]dynsky.Op, 3)
		for j := range batch {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			for v == u {
				v = int32(r.Intn(n))
			}
			batch[j] = dynsky.Op{Add: r.Intn(3) > 0, U: u, V: v}
		}
		code, body := post(t, ts, "/v1/snapshot/swap", opsBody(batch))
		if code != 200 {
			t.Fatalf("swap %d: %d %v", i, code, body)
		}
		m.Apply(batch)
	}
}

// TestDurableSwapRecovery is the end-to-end durability loop: boot fresh,
// swap batches, shut down, boot again from the same directory, and the
// recovered snapshot must equal the oracle state — then keep writing.
func TestDurableSwapRecovery(t *testing.T) {
	defer testleak.Check(t)()
	const n = 60
	base := testGraph()
	dir := t.TempDir()
	m := dynsky.New(base)

	srv, ts, st := newDurableServer(t, dir, base, Options{})
	if st.Recovered {
		t.Fatal("fresh directory reported a recovery")
	}
	swapBatches(t, ts, m, n, 10, 41)
	wantSeq := srv.WAL().LastSeq()
	if wantSeq != 10 {
		t.Fatalf("LastSeq = %d after 10 swaps, want 10", wantSeq)
	}
	shutdown(ts, srv)

	srv2, ts2, st2 := newDurableServer(t, dir, nil, Options{})
	if !st2.Recovered || st2.LastSeq != wantSeq {
		t.Fatalf("recovery stats = %+v, want recovered through seq %d", st2, wantSeq)
	}
	pin := srv2.Store().Acquire()
	got := dynsky.New(pin.Graph())
	pin.Release()
	if got.M() != m.M() || got.SkylineSize() != m.SkylineSize() {
		t.Fatalf("recovered m=%d sky=%d, oracle m=%d sky=%d",
			got.M(), got.SkylineSize(), m.M(), m.SkylineSize())
	}
	swapBatches(t, ts2, m, n, 5, 43)
	if srv2.WAL().LastSeq() != wantSeq+5 {
		t.Fatalf("post-recovery LastSeq = %d, want %d", srv2.WAL().LastSeq(), wantSeq+5)
	}
	shutdown(ts2, srv2)
}

// TestCheckpointEndpointCompacts drives swaps through, checkpoints via
// the endpoint, and verifies the log compacted and recovery still lands
// on the oracle state.
func TestCheckpointEndpointCompacts(t *testing.T) {
	defer testleak.Check(t)()
	const n = 60
	base := testGraph()
	dir := t.TempDir()
	m := dynsky.New(base)
	srv, ts, _ := newDurableServer(t, dir, base, Options{})

	swapBatches(t, ts, m, n, 8, 47)
	code, body := post(t, ts, "/v1/checkpoint", "")
	if code != 200 {
		t.Fatalf("checkpoint: %d %v", code, body)
	}
	if got := uint64(body["checkpoint_seq"].(float64)); got != 8 {
		t.Fatalf("checkpoint_seq = %d, want 8", got)
	}
	if srv.WAL().CheckpointSeq() != 8 {
		t.Fatalf("CheckpointSeq = %d, want 8", srv.WAL().CheckpointSeq())
	}
	swapBatches(t, ts, m, n, 3, 53)
	shutdown(ts, srv)

	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.CheckpointSeq != 8 || r.Records != 3 {
		t.Fatalf("recovered ckpt=%d tail=%d, want 8 and 3", r.CheckpointSeq, r.Records)
	}
	got := r.Replay()
	if got.M() != m.M() || got.SkylineSize() != m.SkylineSize() {
		t.Fatal("checkpoint+tail recovery diverges from oracle")
	}
}

// TestCheckpointLoop verifies the background ticker checkpoints once
// records accumulate.
func TestCheckpointLoop(t *testing.T) {
	defer testleak.Check(t)()
	base := testGraph()
	dir := t.TempDir()
	snap, l, _, err := OpenDurable(dir, &Snapshot{Graph: base, Name: "seed"}, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(snap, Options{})
	srv.AttachWAL(l, 5*time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	defer shutdown(ts, srv)
	m := dynsky.New(base)
	swapBatches(t, ts, m, base.N(), 3, 59)
	deadline := time.Now().Add(5 * time.Second)
	for srv.WAL().CheckpointSeq() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker never checkpointed (ckpt=%d last=%d)",
				srv.WAL().CheckpointSeq(), srv.WAL().LastSeq())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDurableFileSwapCutsLineage checks the file-swap path: the new
// graph becomes a checkpoint before publication, so recovery after a
// file swap yields the file's graph plus later batches only.
func TestDurableFileSwapCutsLineage(t *testing.T) {
	defer testleak.Check(t)()
	base := testGraph()
	dir := t.TempDir()
	m := dynsky.New(base)
	srv, ts, _ := newDurableServer(t, dir, base, Options{})

	swapBatches(t, ts, m, base.N(), 4, 61)

	// Swap to a different graph from a file.
	next := bigGraph()
	path := t.TempDir() + "/next.nsb2"
	if err := next.WriteBinaryFile(path, 0); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, ts, "/v1/snapshot/swap", fmt.Sprintf(`{"path":%q}`, path))
	if code != 200 {
		t.Fatalf("file swap: %d %v", code, body)
	}
	m = dynsky.New(next)
	swapBatches(t, ts, m, next.N(), 3, 67)
	shutdown(ts, srv)

	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records != 3 {
		t.Fatalf("recovered %d tail records after lineage cut, want 3", r.Records)
	}
	got := r.Replay()
	if got.N() != next.N() || got.M() != m.M() {
		t.Fatalf("recovered n=%d m=%d, want n=%d m=%d", got.N(), got.M(), next.N(), m.M())
	}
}

// TestSwapKilledBeforePublish pins the ack-after-durable ordering from
// the client's side: when the WAL append dies (simulated crash), the
// swap request fails AND the epoch is not published — the serving state
// and the durable state stay in lockstep.
func TestSwapKilledBeforePublish(t *testing.T) {
	defer testleak.Check(t)()
	base := testGraph()
	dir := t.TempDir()
	m := dynsky.New(base)
	srv, ts, _ := newDurableServer(t, dir, base, Options{})
	swapBatches(t, ts, m, base.N(), 3, 71)

	restore := faultinject.SetPoints(func(p string, hits int64) faultinject.Action {
		if p == "wal.append.torn" {
			return faultinject.ActionKill
		}
		return faultinject.ActionNone
	})
	code, body := post(t, ts, "/v1/snapshot/swap", opsBody([]dynsky.Op{{Add: true, U: 0, V: 1}}))
	restore()
	if code != 503 {
		t.Fatalf("swap during WAL death: %d %v, want 503", code, body)
	}
	// The epoch still answers with the pre-crash state.
	_, stats := get(t, ts, "/v1/stats")
	if got := int(stats["m"].(float64)); got != m.M() {
		t.Fatalf("published m=%d after failed append, want unchanged %d", got, m.M())
	}
	// And a restart recovers exactly the acknowledged prefix.
	shutdown(ts, srv)
	r, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.LastSeq != 3 {
		t.Fatalf("recovered through seq %d, want the 3 acknowledged swaps", r.LastSeq)
	}
	got := r.Replay()
	if got.M() != m.M() || got.SkylineSize() != m.SkylineSize() {
		t.Fatal("post-crash recovery diverges from acknowledged state")
	}
}

// TestCheckpointWithoutWAL pins the non-durable server's answer.
func TestCheckpointWithoutWAL(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{})
	code, body := post(t, ts, "/v1/checkpoint", "")
	if code != 400 {
		t.Fatalf("checkpoint without WAL: %d %v, want 400", code, body)
	}
}
