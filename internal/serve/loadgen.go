package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures a load-generator run against a live daemon.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client overrides the HTTP client (nil = a fresh keep-alive
	// client sized for Workers connections).
	Client *http.Client
	// Queries is the total number of read queries to issue (default
	// 1000).
	Queries int
	// Workers is the number of concurrent query goroutines (default
	// GOMAXPROCS).
	Workers int
	// Swaps is how many snapshot swaps to publish while queries are in
	// flight, spaced evenly through the run.
	Swaps int
	// SwapOps is the edge-update batch size per swap (default 8).
	SwapOps int
	// K is the group size for centrality queries and the list size for
	// top-k clique queries (default 2).
	K int
	// Budget, when > 0, attaches a per-query work budget so even the
	// heaviest mix entries stay bounded.
	Budget int64
	// Seed makes the query mix reproducible.
	Seed uint64
	// Retries bounds how often a query is retried after an admission
	// rejection (429) or, for idempotent reads, a 503. 0 means the
	// default of 3; negative disables retries entirely.
	Retries int
	// RetryBackoff is the initial retry delay (default 10ms). Each
	// attempt doubles it up to a 500ms cap, with ±50% jitter so
	// rejected workers do not re-arrive in lockstep.
	RetryBackoff time.Duration
}

// EndpointStats is the per-endpoint slice of a load report.
type EndpointStats struct {
	Endpoint string `json:"endpoint"`
	Queries  int    `json:"queries"`
	Failed   int    `json:"failed"`
	Rejected int    `json:"rejected,omitempty"`
	P50Ns    int64  `json:"p50_ns"`
	P99Ns    int64  `json:"p99_ns"`
	MaxNs    int64  `json:"max_ns"`
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Snapshot  string          `json:"snapshot"`
	N         int             `json:"n"`
	M         int             `json:"m"`
	Queries   int             `json:"queries"`
	Failed    int             `json:"failed"`
	Rejected  int             `json:"rejected"`
	Retries   int             `json:"retries"`
	Truncated int             `json:"truncated"`
	Swaps     int             `json:"swaps"`
	Workers   int             `json:"workers"`
	ElapsedNs int64           `json:"elapsed_ns"`
	QPS       float64         `json:"qps"`
	MeanNs    int64           `json:"mean_ns"`
	P50Ns     int64           `json:"p50_ns"`
	P99Ns     int64           `json:"p99_ns"`
	MaxNs     int64           `json:"max_ns"`
	Endpoints []EndpointStats `json:"endpoints"`
	// FirstError is the first failure observed, for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// the query mix: weights sum to 100. Skyline and dominators dominate
// (cheap point lookups in a real deployment), centrality and clique are
// the heavy tail.
const (
	mixSkyline    = 40
	mixDominators = 25
	mixClique     = 20
	// centrality takes the rest
)

type sample struct {
	endpoint int // index into endpointNames
	ns       int64
	failed   bool
	rejected bool // admission 429 after exhausting retries — not a failure
	retries  int
	trunc    bool
}

var endpointNames = []string{"skyline", "dominators", "clique", "centrality", "swap"}

// RunLoad replays Queries mixed read queries (plus Swaps concurrent
// snapshot swaps) against the daemon at BaseURL and reports latency
// percentiles. A query fails on transport error, a non-200 status, an
// unparseable body, or a torn read (a response whose vertex count
// disagrees with the served snapshot — edge batches never change n).
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Queries <= 0 {
		o.Queries = 1000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SwapOps <= 0 {
		o.SwapOps = 8
	}
	if o.K <= 0 {
		o.K = 2
	}
	client := o.Client
	if client == nil {
		tr := &http.Transport{
			MaxIdleConns:        2 * o.Workers,
			MaxIdleConnsPerHost: 2 * o.Workers,
		}
		client = &http.Client{Transport: tr, Timeout: 2 * time.Minute}
		defer tr.CloseIdleConnections()
	}

	// The stats probe pins the snapshot identity every later response
	// is checked against.
	var stats statsResponse
	if err := getJSON(ctx, client, o.BaseURL+"/v1/stats", &stats); err != nil {
		return nil, fmt.Errorf("stats probe: %w", err)
	}
	n := stats.N

	var (
		issued   atomic.Int64 // read queries handed out
		done     atomic.Int64 // read queries completed (swap pacing)
		firstErr atomic.Pointer[string]
	)
	recordErr := func(err error) {
		msg := err.Error()
		firstErr.CompareAndSwap(nil, &msg)
	}

	perWorker := make([][]sample, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(o.Seed) + int64(w)*7919))
			samples := make([]sample, 0, o.Queries/o.Workers+1)
			for ctx.Err() == nil {
				if issued.Add(1) > int64(o.Queries) {
					break
				}
				s := runOne(ctx, client, o, rng, n)
				if s.failed {
					recordErr(fmt.Errorf("%s query failed", endpointNames[s.endpoint]))
				}
				samples = append(samples, s)
				done.Add(1)
			}
			perWorker[w] = samples
		}(w)
	}

	// The swapper publishes edge-batch swaps spaced through the run:
	// swap i fires once i/(Swaps+1) of the queries have completed, so
	// every swap races genuinely concurrent reads.
	swapsDone := 0
	var swapSamples []sample
	if o.Swaps > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(o.Seed) ^ 0x5eed5a))
			for i := 1; i <= o.Swaps && ctx.Err() == nil; i++ {
				gate := int64(i) * int64(o.Queries) / int64(o.Swaps+1)
				for done.Load() < gate && ctx.Err() == nil {
					time.Sleep(time.Millisecond)
				}
				s, err := runSwap(ctx, client, o, rng, n)
				if err != nil {
					recordErr(err)
				}
				swapSamples = append(swapSamples, s)
				swapsDone++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	all := swapSamples
	for _, s := range perWorker {
		all = append(all, s...)
	}
	return buildReport(all, stats, o, swapsDone, elapsed, firstErr.Load()), nil
}

// runOne issues one read query from the mix and scores it.
func runOne(ctx context.Context, client *http.Client, o LoadOptions, rng *rand.Rand, n int) sample {
	budget := ""
	if o.Budget > 0 {
		budget = fmt.Sprintf("&budget=%d", o.Budget)
	}
	var (
		url      string
		endpoint int
	)
	switch p := rng.Intn(100); {
	case p < mixSkyline:
		endpoint = 0
		algo := []string{"filterrefine", "base", "cset"}[rng.Intn(3)]
		// Exercise the parallel and sharded execution paths too: they
		// share the filterrefine contract, so any algo mix stays
		// answer-equivalent.
		extra := ""
		if algo == "filterrefine" {
			switch rng.Intn(3) {
			case 1:
				extra = fmt.Sprintf("&workers=%d", 1+rng.Intn(8))
			case 2:
				extra = fmt.Sprintf("&shards=%d&workers=%d", 1+rng.Intn(16), 1+rng.Intn(8))
			}
		}
		url = fmt.Sprintf("%s/v1/skyline?algo=%s&limit=64%s%s", o.BaseURL, algo, budget, extra)
	case p < mixSkyline+mixDominators:
		endpoint = 1
		ids := make([]byte, 0, 32)
		for i, k := 0, 1+rng.Intn(8); i < k; i++ {
			if i > 0 {
				ids = append(ids, ',')
			}
			ids = fmt.Appendf(ids, "%d", rng.Intn(n))
		}
		url = fmt.Sprintf("%s/v1/dominators?v=%s%s", o.BaseURL, ids, budget)
	case p < mixSkyline+mixDominators+mixClique:
		endpoint = 2
		k := 1
		if rng.Intn(2) == 0 {
			k = o.K
		}
		url = fmt.Sprintf("%s/v1/clique?k=%d%s", o.BaseURL, k, budget)
	default:
		endpoint = 3
		measure := []string{"closeness", "harmonic"}[rng.Intn(2)]
		url = fmt.Sprintf("%s/v1/centrality/group?k=%d&measure=%s%s", o.BaseURL, o.K, measure, budget)
	}

	t0 := time.Now()
	var body struct {
		meta
		Error string `json:"error"`
	}
	retries, err := doJSONRetry(ctx, client, o, rng, true, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}, &body)
	ns := time.Since(t0).Nanoseconds()
	if isStatus(err, http.StatusTooManyRequests) {
		// The admission gate held: the daemon said "not now" every
		// attempt. That is overload working as designed, not a failure.
		return sample{endpoint: endpoint, ns: ns, rejected: true, retries: retries}
	}
	failed := err != nil || body.Error != "" || body.N != n || body.Epoch == 0
	return sample{endpoint: endpoint, ns: ns, failed: failed, retries: retries, trunc: body.Truncated}
}

// runSwap publishes one random edge-toggle batch.
func runSwap(ctx context.Context, client *http.Client, o LoadOptions, rng *rand.Rand, n int) (sample, error) {
	ops := make([]swapOp, o.SwapOps)
	for i := range ops {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		for v == u {
			v = int32(rng.Intn(n))
		}
		ops[i] = swapOp{Add: rng.Intn(2) == 0, U: u, V: v}
	}
	payload, _ := json.Marshal(swapRequest{Ops: ops})
	t0 := time.Now()
	var body swapResponse
	// Swaps retry only on 429: an admission rejection provably did not
	// apply the batch, while a 503 may have (partial WAL append), so
	// re-sending it could double-apply.
	retries, err := doJSONRetry(ctx, client, o, rng, false, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			o.BaseURL+"/v1/snapshot/swap", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, &body)
	ns := time.Since(t0).Nanoseconds()
	if isStatus(err, http.StatusTooManyRequests) {
		return sample{endpoint: 4, ns: ns, rejected: true, retries: retries}, nil
	}
	s := sample{endpoint: 4, ns: ns, failed: err != nil || body.N != n, retries: retries}
	if err != nil {
		return s, fmt.Errorf("swap: %w", err)
	}
	if body.N != n {
		return s, fmt.Errorf("swap: torn response n=%d want %d", body.N, n)
	}
	return s, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(client, req, out)
}

// statusError preserves the HTTP status of a non-200 response so the
// retry loop and the rejected/failed split can decide by code.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// isStatus reports whether err is a statusError with the given code.
func isStatus(err error, code int) bool {
	var se *statusError
	return errors.As(err, &se) && se.code == code
}

// maxRetryBackoff caps the exponential retry delay.
const maxRetryBackoff = 500 * time.Millisecond

// doJSONRetry issues the request built by build, retrying with capped
// exponential backoff and ±50% jitter while the daemon answers 429 —
// or 503 too when the request is idempotent. build runs once per
// attempt so POST bodies get a fresh reader.
func doJSONRetry(ctx context.Context, client *http.Client, o LoadOptions, rng *rand.Rand, idempotent bool, build func() (*http.Request, error), out any) (retries int, err error) {
	maxRetries := o.Retries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	base := o.RetryBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return retries, err
		}
		err = doJSON(client, req, out)
		if err == nil || attempt >= maxRetries {
			return retries, err
		}
		if !isStatus(err, http.StatusTooManyRequests) &&
			!(idempotent && isStatus(err, http.StatusServiceUnavailable)) {
			return retries, err
		}
		retries++
		d := base << attempt
		if d > maxRetryBackoff {
			d = maxRetryBackoff
		}
		d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
		select {
		case <-ctx.Done():
			return retries, ctx.Err()
		case <-time.After(d):
		}
	}
}

func doJSON(client *http.Client, req *http.Request, out any) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{
			code: resp.StatusCode,
			msg:  fmt.Sprintf("%s: status %d: %s", req.URL.Path, resp.StatusCode, firstLine(body)),
		}
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s: bad JSON: %w", req.URL.Path, err)
	}
	return nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

func buildReport(all []sample, stats statsResponse, o LoadOptions, swaps int, elapsed time.Duration, firstErr *string) *LoadReport {
	rep := &LoadReport{
		Snapshot:  stats.Snapshot,
		N:         stats.N,
		M:         stats.M,
		Swaps:     swaps,
		Workers:   o.Workers,
		ElapsedNs: elapsed.Nanoseconds(),
	}
	if firstErr != nil {
		rep.FirstError = *firstErr
	}
	perEP := make([][]int64, len(endpointNames))
	var allNs []int64
	var sum int64
	for _, s := range all {
		rep.Retries += s.retries
		if s.rejected {
			// Rejected queries produced no answer; they count in the
			// rejected column, not in failures or latency percentiles
			// (their duration is mostly backoff sleep).
			rep.Rejected++
			continue
		}
		if s.endpoint != 4 { // swaps are reported per-endpoint only
			rep.Queries++
			if s.failed {
				rep.Failed++
			}
			if s.trunc {
				rep.Truncated++
			}
			allNs = append(allNs, s.ns)
			sum += s.ns
		} else if s.failed {
			rep.Failed++
		}
		perEP[s.endpoint] = append(perEP[s.endpoint], s.ns)
	}
	if len(allNs) > 0 {
		rep.MeanNs = sum / int64(len(allNs))
		rep.P50Ns, rep.P99Ns, rep.MaxNs = percentiles(allNs)
		rep.QPS = float64(len(allNs)) / elapsed.Seconds()
	}
	failedEP := make([]int, len(endpointNames))
	rejectedEP := make([]int, len(endpointNames))
	for _, s := range all {
		switch {
		case s.rejected:
			rejectedEP[s.endpoint]++
		case s.failed:
			failedEP[s.endpoint]++
		}
	}
	for i, name := range endpointNames {
		if len(perEP[i]) == 0 && rejectedEP[i] == 0 {
			continue
		}
		var p50, p99, max int64
		if len(perEP[i]) > 0 {
			p50, p99, max = percentiles(perEP[i])
		}
		rep.Endpoints = append(rep.Endpoints, EndpointStats{
			Endpoint: name,
			Queries:  len(perEP[i]) + rejectedEP[i],
			Failed:   failedEP[i],
			Rejected: rejectedEP[i],
			P50Ns:    p50,
			P99Ns:    p99,
			MaxNs:    max,
		})
	}
	return rep
}

// percentiles sorts ns in place and returns p50, p99 and the max.
func percentiles(ns []int64) (p50, p99, max int64) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	idx := func(q float64) int64 { return ns[int(q*float64(len(ns)-1))] }
	return idx(0.50), idx(0.99), ns[len(ns)-1]
}
