package serve

import (
	"fmt"
	"net/http"
	"testing"

	"neisky/internal/core"
	"neisky/internal/gen"
)

// TestSkylineShardedMatchesSerial drives ?shards through the HTTP
// surface on a graph big enough (n + 2m ≥ the core parallel cutoff)
// that the real sharded engine runs rather than the small-graph serial
// fallback, and checks the answer against the serial engine.
func TestSkylineShardedMatchesSerial(t *testing.T) {
	g := gen.PowerLaw(8000, 30000, 2.5, 13)
	_, ts := newTestServer(t, g, Options{})
	want := core.FilterRefineSky(g, core.Options{}).Skyline

	for _, shards := range []int{1, 3, 8, 64} {
		for _, workers := range []string{"", "&workers=2"} {
			path := fmt.Sprintf("/v1/skyline?algo=filterrefine&shards=%d%s", shards, workers)
			code, body := get(t, ts, path)
			if code != http.StatusOK {
				t.Fatalf("shards=%d%s: status %d: %v", shards, workers, code, body)
			}
			if got := ids(body["skyline"]); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("shards=%d%s: skyline %v, want %v", shards, workers, got, want)
			}
			if body["algo"] != "ShardedFilterRefineSky" {
				t.Fatalf("shards=%d: algo %v", shards, body["algo"])
			}
			if int(body["shards"].(float64)) != shards {
				t.Fatalf("shards field %v, want %d", body["shards"], shards)
			}
			if body["workers"] == nil || int(body["workers"].(float64)) < 1 {
				t.Fatalf("workers field missing or non-positive: %v", body["workers"])
			}
			if body["truncated"] != false {
				t.Fatalf("shards=%d: unexpected truncation: %v", shards, body)
			}
		}
	}
}

func TestSkylineWorkersSelectsParallelEngine(t *testing.T) {
	g := gen.PowerLaw(8000, 30000, 2.5, 13)
	_, ts := newTestServer(t, g, Options{MaxWorkers: 8})
	want := core.FilterRefineSky(g, core.Options{}).Skyline

	code, body := get(t, ts, "/v1/skyline?workers=4")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["algo"] != "ParallelFilterRefineSky" {
		t.Fatalf("algo %v, want ParallelFilterRefineSky", body["algo"])
	}
	if got := ids(body["skyline"]); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("skyline %v, want %v", got, want)
	}
}

func TestSkylineWorkersClampedToMaxWorkers(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{MaxWorkers: 2})

	code, body := get(t, ts, "/v1/skyline?workers=64")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if int(body["workers"].(float64)) != 2 {
		t.Fatalf("workers %v, want clamped 2", body["workers"])
	}

	// A sharded query with no ?workers reports the server default.
	code, body = get(t, ts, "/v1/skyline?shards=4")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if int(body["workers"].(float64)) != 2 {
		t.Fatalf("sharded default workers %v, want MaxWorkers 2", body["workers"])
	}
}

func TestSkylineShardsRejectedOffFilterRefine(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})

	for _, path := range []string{
		"/v1/skyline?algo=base&shards=4",
		"/v1/skyline?algo=cset&workers=2",
		"/v1/skyline?shards=0",
		"/v1/skyline?shards=nope",
		"/v1/skyline?workers=-1",
		"/v1/centrality/group?k=2&workers=zero",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (want 400): %v", path, code, body)
		}
	}
}

func TestCentralityWorkersParam(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{MaxWorkers: 8})

	code, serial := get(t, ts, "/v1/centrality/group?k=2")
	if code != http.StatusOK {
		t.Fatalf("serial status %d", code)
	}
	code, par := get(t, ts, "/v1/centrality/group?k=2&workers=3")
	if code != http.StatusOK {
		t.Fatalf("workers status %d: %v", code, par)
	}
	if fmt.Sprint(ids(par["group"])) != fmt.Sprint(ids(serial["group"])) {
		t.Fatalf("group with workers %v, serial %v", par["group"], serial["group"])
	}
	if int(par["workers"].(float64)) != 3 {
		t.Fatalf("workers field %v, want 3", par["workers"])
	}
}
