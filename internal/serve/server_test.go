package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/testleak"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden files from the current output")

// testGraph is the fixture every e2e test queries: a deterministic
// power-law graph small enough for the oracle but rich enough that the
// skyline, candidate set, and cliques are all non-trivial.
func testGraph() *graph.Graph { return gen.PowerLaw(60, 150, 2.5, 7) }

// bigGraph is large enough that the engines' checkpoints fire, so
// budget/deadline truncation is observable.
func bigGraph() *graph.Graph { return gen.PowerLaw(3000, 12000, 2.5, 11) }

func newTestServer(t *testing.T, g *graph.Graph, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(&Snapshot{Graph: g, Name: "test"}, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// get fetches path and decodes the JSON body (any status).
func get(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", path, err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", path, err)
	}
	return resp.StatusCode, out
}

func ids(v any) []int32 {
	arr, _ := v.([]any)
	out := make([]int32, len(arr))
	for i, x := range arr {
		out[i] = int32(x.(float64))
	}
	return out
}

func TestSkylineEndpointMatchesOracle(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	want := core.BruteForce(g).Skyline

	for _, algo := range []string{"", "filterrefine", "base", "2hop", "cset"} {
		path := "/v1/skyline"
		if algo != "" {
			path += "?algo=" + algo
		}
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("algo %q: status %d: %v", algo, code, body)
		}
		got := ids(body["skyline"])
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("algo %q: skyline %v, want %v", algo, got, want)
		}
		if body["truncated"] != false {
			t.Fatalf("algo %q: unexpected truncation: %v", algo, body)
		}
		if int(body["skyline_size"].(float64)) != len(want) {
			t.Fatalf("algo %q: skyline_size %v, want %d", algo, body["skyline_size"], len(want))
		}
		if int(body["epoch"].(float64)) != 1 {
			t.Fatalf("algo %q: epoch %v, want 1", algo, body["epoch"])
		}
	}
}

func TestSkylineLimitCapsListNotSize(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	want := core.BruteForce(g).Skyline
	if len(want) < 3 {
		t.Skip("fixture skyline too small for a limit test")
	}
	code, body := get(t, ts, "/v1/skyline?limit=2")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := len(ids(body["skyline"])); got != 2 {
		t.Fatalf("limited list has %d entries, want 2", got)
	}
	if int(body["skyline_size"].(float64)) != len(want) {
		t.Fatalf("skyline_size %v, want full %d", body["skyline_size"], len(want))
	}
}

func TestDominatorsEndpointConsistent(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	code, body := get(t, ts, "/v1/dominators?v=0,1,2,3,4,5")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	entries := body["dominators"].([]any)
	if len(entries) != 6 {
		t.Fatalf("%d entries, want 6", len(entries))
	}
	for _, e := range entries {
		m := e.(map[string]any)
		v := int32(m["v"].(float64))
		d := int32(m["dominator"].(float64))
		in := m["in_skyline"].(bool)
		if in != (v == d) {
			t.Fatalf("vertex %d: in_skyline=%v but dominator=%d", v, in, d)
		}
		if !in && !core.Dominates(g, d, v) {
			t.Fatalf("vertex %d: claimed dominator %d does not dominate it", v, d)
		}
	}
}

func TestCentralityAndCliqueEndpoints(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})

	code, body := get(t, ts, "/v1/centrality/group?k=3&measure=harmonic")
	if code != http.StatusOK {
		t.Fatalf("centrality status %d: %v", code, body)
	}
	if got := len(ids(body["group"])); got != 3 {
		t.Fatalf("group size %d, want 3", got)
	}
	if body["value"].(float64) <= 0 {
		t.Fatalf("non-positive group value: %v", body["value"])
	}

	code, body = get(t, ts, "/v1/clique")
	if code != http.StatusOK {
		t.Fatalf("clique status %d: %v", code, body)
	}
	cl := ids(body["clique"])
	if len(cl) == 0 || int(body["size"].(float64)) != len(cl) {
		t.Fatalf("bad clique payload: %v", body)
	}
	for i, u := range cl { // a clique must be fully connected
		for _, v := range cl[i+1:] {
			if !g.Has(u, v) {
				t.Fatalf("returned set is not a clique: %d-%d missing", u, v)
			}
		}
	}

	code, body = get(t, ts, "/v1/clique?k=3")
	if code != http.StatusOK {
		t.Fatalf("topk status %d: %v", code, body)
	}
	if _, ok := body["cliques"]; !ok {
		t.Fatalf("k=3 response missing cliques: %v", body)
	}
}

func TestSwapPublishesNewEpochAndSkylineFollows(t *testing.T) {
	g := testGraph()
	srv, ts := newTestServer(t, g, Options{})

	// Pick an edge to add that does not exist yet.
	var u, v int32 = -1, -1
	for a := int32(0); a < int32(g.N()) && u < 0; a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.Has(a, b) {
				u, v = a, b
				break
			}
		}
	}
	code, body := post(t, ts, "/v1/snapshot/swap",
		fmt.Sprintf(`{"ops":[{"add":true,"u":%d,"v":%d}]}`, u, v))
	if code != http.StatusOK {
		t.Fatalf("swap status %d: %v", code, body)
	}
	if int(body["epoch"].(float64)) != 2 || int(body["applied"].(float64)) != 1 {
		t.Fatalf("swap response: %v", body)
	}
	if int(body["m"].(float64)) != g.M()+1 {
		t.Fatalf("post-swap m = %v, want %d", body["m"], g.M()+1)
	}

	// Queries now answer from epoch 2, and the skyline matches a fresh
	// computation on the updated graph.
	g2 := graph.FromEdges(g.N(), append(g.EdgeList(), [2]int32{u, v}))
	want := core.BruteForce(g2).Skyline
	code, body = get(t, ts, "/v1/skyline")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if int(body["epoch"].(float64)) != 2 {
		t.Fatalf("queries still on epoch %v after swap", body["epoch"])
	}
	if got := ids(body["skyline"]); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-swap skyline %v, want %v", got, want)
	}
	if got := srv.Store().Swaps(); got != 1 {
		t.Fatalf("store swaps = %d, want 1", got)
	}
}

func TestSwapFromFile(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})

	g2 := gen.Clique(10)
	path := filepath.Join(t.TempDir(), "next.nsb2")
	var buf bytes.Buffer
	if err := g2.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, ts, "/v1/snapshot/swap", fmt.Sprintf(`{"path":%q}`, path))
	if code != http.StatusOK {
		t.Fatalf("swap status %d: %v", code, body)
	}
	if int(body["n"].(float64)) != 10 || int(body["epoch"].(float64)) != 2 {
		t.Fatalf("file swap response: %v", body)
	}
}

func TestSwapValidation(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	for name, body := range map[string]string{
		"malformed":     `{"ops": [{`,
		"empty":         `{}`,
		"both":          `{"path":"x","ops":[{"add":true,"u":0,"v":1}]}`,
		"out-of-range":  fmt.Sprintf(`{"ops":[{"add":true,"u":0,"v":%d}]}`, g.N()),
		"self-loop":     `{"ops":[{"add":true,"u":3,"v":3}]}`,
		"negative":      `{"ops":[{"add":true,"u":-1,"v":2}]}`,
		"unknown-field": `{"nope":1}`,
	} {
		code, resp := post(t, ts, "/v1/snapshot/swap", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, code, resp)
		}
	}
}

func TestBadQueryParamsRejected(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{})
	for name, path := range map[string]string{
		"bad algo":         "/v1/skyline?algo=quantum",
		"bad timeout":      "/v1/skyline?timeout=yesterday",
		"negative timeout": "/v1/skyline?timeout=-5s",
		"bad budget":       "/v1/skyline?budget=lots",
		"negative budget":  "/v1/skyline?budget=-3",
		"bad limit":        "/v1/skyline?limit=-1",
		"missing k":        "/v1/centrality/group",
		"negative k":       "/v1/centrality/group?k=-2",
		"bad measure":      "/v1/centrality/group?k=2&measure=fame",
		"bad clique k":     "/v1/clique?k=zero",
		"bad vertex":       "/v1/dominators?v=1,boom",
		"huge vertex":      "/v1/dominators?v=999999999",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusBadRequest {
			t.Errorf("%s (%s): status %d (%v), want 400", name, path, code, body)
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: error body missing: %v", name, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{})
	if code, _ := post(t, ts, "/v1/skyline", "{}"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/skyline: status %d, want 405", code)
	}
	if code, _ := get(t, ts, "/v1/snapshot/swap"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/snapshot/swap: status %d, want 405", code)
	}
}

// TestDeadlineExceededReturnsPartial: a query whose deadline has
// already passed still answers 200 with a truncated (superset) skyline
// and the "timeout" cause — the serving face of the anytime contract.
func TestDeadlineExceededReturnsPartial(t *testing.T) {
	g := bigGraph()
	_, ts := newTestServer(t, g, Options{})
	want := core.FilterRefineSky(g, core.Options{}).Skyline

	code, body := get(t, ts, "/v1/skyline?timeout=1ns")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["truncated"] != true || body["cause"] != "timeout" {
		t.Fatalf("want truncated=true cause=timeout, got %v", body)
	}
	got := ids(body["skyline"])
	if len(got) < len(want) {
		t.Fatalf("truncated skyline |%d| smaller than true skyline |%d| — not a superset",
			len(got), len(want))
	}
	in := make(map[int32]bool, len(got))
	for _, v := range got {
		in[v] = true
	}
	for _, v := range want {
		if !in[v] {
			t.Fatalf("true skyline vertex %d missing from truncated superset", v)
		}
	}
}

// TestBudgetExhaustedReturnsPartial drains a 1-unit work budget and
// checks the "budget" cause on all four query endpoints.
func TestBudgetExhaustedReturnsPartial(t *testing.T) {
	g := bigGraph()
	_, ts := newTestServer(t, g, Options{})
	for _, path := range []string{
		"/v1/skyline?budget=1",
		"/v1/dominators?budget=1&v=0,1,2",
		"/v1/centrality/group?k=2&budget=1",
		"/v1/clique?budget=1",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %v", path, code, body)
		}
		if body["truncated"] != true {
			t.Fatalf("%s: not truncated under a 1-unit budget: %v", path, body)
		}
		if body["cause"] != "budget" {
			t.Fatalf("%s: cause %v, want budget", path, body["cause"])
		}
	}
}

// TestMaxBudgetCap: a huge requested budget is clamped to MaxBudget, so
// the query still truncates.
func TestMaxBudgetCap(t *testing.T) {
	g := bigGraph()
	_, ts := newTestServer(t, g, Options{MaxBudget: 1})
	code, body := get(t, ts, "/v1/skyline?budget=9223372036854775807")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if body["truncated"] != true || body["cause"] != "budget" {
		t.Fatalf("MaxBudget cap not applied: %v", body)
	}
}

// TestServerShutdownNoGoroutineLeak runs queries, swaps, shuts the
// HTTP server down, closes the store, and checks every goroutine is
// gone — the serving layer must not strand workers or epoch reapers.
func TestServerShutdownNoGoroutineLeak(t *testing.T) {
	defer testleak.Check(t)()

	srv := New(&Snapshot{Graph: testGraph(), Name: "leak"}, Options{})
	ts := httptest.NewServer(srv.Handler())
	for i := 0; i < 5; i++ {
		if code, body := get(t, ts, "/v1/skyline"); code != 200 {
			t.Fatalf("status %d: %v", code, body)
		}
	}
	if code, body := post(t, ts, "/v1/snapshot/swap",
		`{"ops":[{"add":true,"u":0,"v":1},{"add":false,"u":0,"v":1}]}`); code != 200 {
		t.Fatalf("swap status %d: %v", code, body)
	}
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
	if got := srv.Store().RetiredEpochs(); got != 2 {
		t.Fatalf("RetiredEpochs after shutdown = %d, want 2", got)
	}
}

// TestQueriesAfterCloseReturn503 pins the shutdown contract.
func TestQueriesAfterCloseReturn503(t *testing.T) {
	srv := New(&Snapshot{Graph: testGraph(), Name: "x"}, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	code, _ := get(t, ts, "/v1/skyline")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("query after Close: status %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: status %d, want 503", resp.StatusCode)
	}
}

// --- golden response shapes ------------------------------------------------

// flattenKeys records every JSON key path in v ("skyline[]",
// "dominators[].v", ...). Values are deliberately excluded — timings
// and ids drift, the response schema must not.
func flattenKeys(prefix string, v any, out map[string]struct{}) {
	switch x := v.(type) {
	case map[string]any:
		for k, vv := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenKeys(p, vv, out)
		}
	case []any:
		out[prefix+"[]"] = struct{}{}
		if len(x) > 0 {
			flattenKeys(prefix+"[]", x[0], out)
		}
	default:
		out[prefix] = struct{}{}
	}
}

func shapeOf(body map[string]any) []string {
	set := map[string]struct{}{}
	flattenKeys("", body, set)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestResponseShapeGolden fingerprints the JSON schema of every
// endpoint — complete and truncated variants — against
// testdata/response_shape.golden.json. Adding, renaming or dropping a
// response field fails here until the golden is regenerated with
// `go test ./internal/serve -run ResponseShape -update-golden`.
func TestResponseShapeGolden(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{})
	_, tsBig := newTestServer(t, bigGraph(), Options{})

	shapes := map[string][]string{}
	collect := func(name string, code int, body map[string]any) {
		t.Helper()
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %v", name, code, body)
		}
		shapes[name] = shapeOf(body)
	}

	code, body := get(t, ts, "/v1/skyline")
	collect("skyline", code, body)
	code, body = get(t, tsBig, "/v1/skyline?budget=1")
	collect("skyline-truncated", code, body)
	code, body = get(t, ts, "/v1/centrality/group?k=2")
	collect("centrality", code, body)
	code, body = get(t, ts, "/v1/clique")
	collect("clique", code, body)
	code, body = get(t, ts, "/v1/clique?k=2")
	collect("clique-topk", code, body)
	code, body = get(t, ts, "/v1/dominators?v=0,1")
	collect("dominators", code, body)
	code, body = get(t, ts, "/v1/skyline/layers?k=2")
	collect("layers", code, body)
	code, body = post(t, ts, "/v1/skyline/subset", `{"v":[0,1,2,3,4,5,6,7,8,9]}`)
	collect("subset", code, body)
	code, body = post(t, ts, "/v1/skyline/subset?algo=recompute", `{"v":[0,1,2,3,4,5,6,7,8,9]}`)
	collect("subset-recompute", code, body)
	code, body = get(t, ts, "/v1/skyline/explain?v=5")
	collect("explain", code, body)
	code, body = post(t, ts, "/v1/snapshot/swap", `{"ops":[{"add":true,"u":0,"v":2}]}`)
	collect("swap", code, body)
	code, body = get(t, ts, "/v1/stats")
	collect("stats", code, body)

	goldenPath := filepath.Join("testdata", "response_shape.golden.json")
	gotJSON, err := json.MarshalIndent(shapes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(gotJSON, want) {
		t.Fatalf("response shapes drifted from %s.\nGot:\n%s\nWant:\n%s\n"+
			"Regenerate with: go test ./internal/serve -run ResponseShape -update-golden",
			goldenPath, gotJSON, want)
	}
}

// TestConcurrentQueriesDuringSwaps is the HTTP-level cousin of the
// epoch race battery: real handlers, real swaps, every response must be
// coherent (epoch set, n constant under edge-only swaps).
func TestConcurrentQueriesDuringSwaps(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	done := make(chan error, 8)
	for w := 0; w < 6; w++ {
		go func(w int) {
			for i := 0; i < 40; i++ {
				path := []string{"/v1/skyline?limit=8", "/v1/dominators?v=1,2", "/v1/clique"}[i%3]
				code, body := get(t, ts, path)
				if code != http.StatusOK {
					done <- fmt.Errorf("%s: status %d", path, code)
					return
				}
				if int(body["n"].(float64)) != g.N() || int(body["epoch"].(float64)) < 1 {
					done <- fmt.Errorf("%s: torn response %v", path, body)
					return
				}
			}
			done <- nil
		}(w)
	}
	for s := 0; s < 2; s++ {
		go func(s int) {
			for i := 0; i < 10; i++ {
				u := int32((s*10 + i) % g.N())
				v := int32((s*10 + i + 1) % g.N())
				if u == v {
					continue
				}
				body := fmt.Sprintf(`{"ops":[{"add":true,"u":%d,"v":%d}]}`, u, v)
				if code, resp := post(t, ts, "/v1/snapshot/swap", body); code != http.StatusOK {
					done <- fmt.Errorf("swap: status %d: %v", code, resp)
					return
				}
				time.Sleep(time.Millisecond)
			}
			done <- nil
		}(s)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerCloseDuringSwapsRace hammers POST /v1/snapshot/swap from
// several goroutines while the server shuts down mid-flight. Every
// request must resolve as a clean 200 (published before the store
// closed) or 503 (shutdown observed) — never a hang, torn response, or
// goroutine leak.
func TestServerCloseDuringSwapsRace(t *testing.T) {
	defer testleak.Check(t)()
	srv := New(&Snapshot{Graph: testGraph(), Name: "race"}, Options{})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	var bad atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"ops":[{"add":true,"u":%d,"v":%d}]}`, w, w+10)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/v1/snapshot/swap", "application/json",
					strings.NewReader(body))
				if err != nil {
					bad.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 && resp.StatusCode != 503 {
					bad.Add(1)
					return
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	srv.Close() // races the in-flight swaps
	close(stop)
	wg.Wait()
	ts.CloseClientConnections()
	ts.Close()
	if got := bad.Load(); got != 0 {
		t.Fatalf("%d unexpected swap outcomes during shutdown", got)
	}
}
