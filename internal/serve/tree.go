package serve

import (
	"encoding/json"
	"net/http"
	"slices"
	"strconv"
	"time"

	"neisky/internal/core"
	"neisky/internal/skytree"
)

// The layered-index query surface: three endpoints answered from the
// snapshot's skytree (built lazily on first use, carried over
// incrementally across batch swaps — see Snapshot.Tree and
// swapFromOps). All three run under the standard per-query context and
// return the standard anytime markers.

type layersResponse struct {
	meta
	NumLayers  int       `json:"num_layers"`
	K          int       `json:"k"`
	LayerSizes []int     `json:"layer_sizes"`
	Layers     [][]int32 `json:"layers"`
}

// handleLayers serves GET /v1/skyline/layers?k=&limit=. Layer 0 is the
// neighborhood skyline, layer k the skyline of the remainder after
// peeling layers < k. ?k bounds how many layers are materialized in the
// response (all of them when absent); layer_sizes always covers every
// layer. ?limit clips each returned layer's member list. A truncated
// response (the index build ran out of budget) lists the layers
// completed so far; the build is retried by the next query.
func (s *Server) handleLayers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	k := -1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %q (want a positive integer)", v)
			return
		}
		k = n
	}
	limit, err := s.parseLimit(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	start := time.Now()
	t := pin.Snapshot().Tree(ctx)
	if k < 0 || k > t.NumLayers() {
		k = t.NumLayers()
	}
	layers := make([][]int32, k)
	for i, l := range t.TopK(k) {
		layers[i] = clip(l, limit)
	}
	resp := layersResponse{
		meta:       meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds()},
		NumLayers:  t.NumLayers(),
		K:          k,
		LayerSizes: t.LayerSizes(),
		Layers:     layers,
	}
	if t.Truncated {
		resp.markTruncated("layers", t.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// subsetRequest is the POST /v1/skyline/subset body.
type subsetRequest struct {
	V []int32 `json:"v"`
}

type subsetResponse struct {
	meta
	Algo        string  `json:"algo"`
	SubsetSize  int     `json:"subset_size"`
	SkylineSize int     `json:"skyline_size"`
	Skyline     []int32 `json:"skyline"`
	// Probe counters from the tree-assisted scan (zero for recompute).
	// Not omitempty: a zero count is a real measurement and the response
	// shape must not depend on it.
	PairsExamined int `json:"pairs_examined"`
	WitnessHits   int `json:"witness_hits"`
}

// handleSubset serves POST /v1/skyline/subset?algo=tree|recompute: the
// neighborhood skyline of the subgraph induced by the posted vertex
// set. The default (tree) answers against the full CSR with the layered
// index steering the probe order — no induced graph is materialized;
// recompute materializes the induced subgraph and runs the sharded
// engine on it (the baseline BENCH_6 compares against). Both use the
// KeepIsolated convention, so their skylines agree. On truncation the
// listed set is a sound superset.
func (s *Server) handleSubset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	algo := r.URL.Query().Get("algo")
	if algo != "" && algo != "tree" && algo != "recompute" {
		writeErr(w, http.StatusBadRequest, "unknown algo %q (want tree|recompute)", algo)
		return
	}
	var req subsetRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSwapBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad subset request: %v", err)
		return
	}
	if len(req.V) == 0 {
		writeErr(w, http.StatusBadRequest, "subset request needs a non-empty v list")
		return
	}
	if len(req.V) > s.opts.MaxList {
		writeErr(w, http.StatusBadRequest, "subset of %d exceeds the %d cap", len(req.V), s.opts.MaxList)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	seen := make(map[int32]bool, len(req.V))
	sub := make([]int32, 0, len(req.V))
	for i, v := range req.V {
		if v < 0 || int(v) >= g.N() {
			writeErr(w, http.StatusBadRequest, "bad vertex %d at index %d (graph has %d vertices)", v, i, g.N())
			return
		}
		if !seen[v] {
			seen[v] = true
			sub = append(sub, v)
		}
	}

	start := time.Now()
	resp := subsetResponse{SubsetSize: len(sub)}
	switch algo {
	case "", "tree":
		// A truncated index build still yields sound (partial) hints;
		// the scan itself stays exact and carries the anytime contract.
		t := pin.Snapshot().Tree(ctx)
		res := skytree.SubsetSkylineCtx(ctx, g, t, sub)
		resp.Algo = "SubsetSkyline"
		resp.Skyline = clip(res.Skyline, s.opts.MaxList)
		resp.SkylineSize = len(res.Skyline)
		resp.PairsExamined = res.PairsExamined
		resp.WitnessHits = res.WitnessHits
		if res.Truncated {
			resp.markTruncated("subset", res.Err)
		}
	case "recompute":
		// InducedSubgraph keeps the given order, and the engine's ID
		// tie-breaks need it ascending.
		slices.Sort(sub)
		ig, orig := g.InducedSubgraph(sub)
		res := core.ShardedFilterRefineSkyCtx(ctx, ig, core.Options{KeepIsolated: true}, core.ShardOptions{})
		out := make([]int32, len(res.Skyline))
		for i, v := range res.Skyline {
			out[i] = orig[v]
		}
		resp.Algo = "ShardedFilterRefineSky"
		resp.Skyline = clip(out, s.opts.MaxList)
		resp.SkylineSize = len(out)
		if res.Truncated {
			resp.markTruncated("subset", res.Err)
		}
	}
	resp.meta = meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds(),
		Truncated: resp.Truncated, Cause: resp.Cause}
	writeJSON(w, http.StatusOK, resp)
}

type explainStep struct {
	V     int32 `json:"v"`
	Layer int32 `json:"layer"`
}

type explainResponse struct {
	meta
	V     int32         `json:"v"`
	Layer int32         `json:"layer"`
	Chain []explainStep `json:"chain"`
}

// handleExplain serves GET /v1/skyline/explain?v=: the dominator chain
// from v to the skyline. Entry i+1 is the canonical parent witness of
// entry i — the minimum-ID vertex one layer up that dominates it at
// that level — so the chain ascends exactly one layer per hop and ends
// at a layer-0 vertex. On a truncated index build the chain stops at
// the deepest assigned ancestor.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	raw := r.URL.Query().Get("v")
	id, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || id < 0 {
		writeErr(w, http.StatusBadRequest, "bad vertex id %q", raw)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	if id >= int64(g.N()) {
		writeErr(w, http.StatusBadRequest, "bad vertex id %q (graph has %d vertices)", raw, g.N())
		return
	}
	v := int32(id)
	start := time.Now()
	t := pin.Snapshot().Tree(ctx)
	chain := t.Explain(v)
	steps := make([]explainStep, len(chain))
	for i, u := range chain {
		steps[i] = explainStep{V: u, Layer: t.Layer(u)}
	}
	resp := explainResponse{
		meta:  meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds()},
		V:     v,
		Layer: t.Layer(v),
		Chain: steps,
	}
	if t.Truncated {
		resp.markTruncated("explain", t.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}
