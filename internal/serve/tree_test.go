package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"neisky/internal/skytree"
)

func TestLayersEndpointMatchesIndex(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	want := skytree.Build(g, skytree.BuildOptions{})

	code, body := get(t, ts, "/v1/skyline/layers")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	if body["truncated"] != false {
		t.Fatalf("unexpected truncation: %v", body)
	}
	if int(body["num_layers"].(float64)) != want.NumLayers() {
		t.Fatalf("num_layers %v, want %d", body["num_layers"], want.NumLayers())
	}
	layers, _ := body["layers"].([]any)
	if len(layers) != want.NumLayers() {
		t.Fatalf("%d layers returned, want %d", len(layers), want.NumLayers())
	}
	for k, l := range layers {
		got := ids(l)
		if fmt.Sprint(got) != fmt.Sprint(want.LayerVertices(k)) {
			t.Fatalf("layer %d: %v, want %v", k, got, want.LayerVertices(k))
		}
	}

	// ?k bounds materialized layers; layer_sizes still covers all.
	code, body = get(t, ts, "/v1/skyline/layers?k=1")
	if code != http.StatusOK {
		t.Fatalf("k=1 status %d: %v", code, body)
	}
	layers, _ = body["layers"].([]any)
	if len(layers) != 1 {
		t.Fatalf("k=1 returned %d layers", len(layers))
	}
	if sizes, _ := body["layer_sizes"].([]any); len(sizes) != want.NumLayers() {
		t.Fatalf("k=1 layer_sizes %v, want %d entries", sizes, want.NumLayers())
	}

	if code, _ := get(t, ts, "/v1/skyline/layers?k=0"); code != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", code)
	}
}

func TestLayersLimitClipsLists(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{})
	code, body := get(t, ts, "/v1/skyline/layers?limit=2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, body)
	}
	layers, _ := body["layers"].([]any)
	for k, l := range layers {
		if got := len(ids(l)); got > 2 {
			t.Fatalf("layer %d has %d members after limit=2", k, got)
		}
	}
}

func TestSubsetEndpointAlgosAgree(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	tr := skytree.Build(g, skytree.BuildOptions{})

	sub := []int32{0, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59}
	var toks []string
	for _, v := range sub {
		toks = append(toks, fmt.Sprint(v))
	}
	reqBody := `{"v":[` + strings.Join(toks, ",") + `]}`
	want := skytree.SubsetSkyline(g, tr, sub).Skyline

	for _, algo := range []string{"", "tree", "recompute"} {
		path := "/v1/skyline/subset"
		if algo != "" {
			path += "?algo=" + algo
		}
		code, body := post(t, ts, path, reqBody)
		if code != http.StatusOK {
			t.Fatalf("algo %q: status %d: %v", algo, code, body)
		}
		if got := ids(body["skyline"]); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("algo %q: skyline %v, want %v", algo, got, want)
		}
		if int(body["subset_size"].(float64)) != len(sub) {
			t.Fatalf("algo %q: subset_size %v, want %d", algo, body["subset_size"], len(sub))
		}
	}
}

func TestSubsetEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, testGraph(), Options{MaxList: 8})
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/v1/skyline/subset", `{"v":[0,99999]}`, http.StatusBadRequest},
		{"/v1/skyline/subset", `{"v":[]}`, http.StatusBadRequest},
		{"/v1/skyline/subset", `{}`, http.StatusBadRequest},
		{"/v1/skyline/subset", `{"v":[0,1,2,3,4,5,6,7,8]}`, http.StatusBadRequest}, // > MaxList
		{"/v1/skyline/subset?algo=bogus", `{"v":[0]}`, http.StatusBadRequest},
		{"/v1/skyline/subset", `{"w":[0]}`, http.StatusBadRequest}, // unknown field
	} {
		if code, body := post(t, ts, tc.path, tc.body); code != tc.want {
			t.Fatalf("%s %s: status %d, want %d: %v", tc.path, tc.body, code, tc.want, body)
		}
	}
	if code, _ := get(t, ts, "/v1/skyline/subset"); code != http.StatusMethodNotAllowed {
		t.Fatal("GET subset not rejected")
	}
}

func TestExplainEndpointChains(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	tr := skytree.Build(g, skytree.BuildOptions{})

	for _, v := range []int32{0, 7, 31, 59} {
		code, body := get(t, ts, fmt.Sprintf("/v1/skyline/explain?v=%d", v))
		if code != http.StatusOK {
			t.Fatalf("v=%d: status %d: %v", v, code, body)
		}
		if int32(body["layer"].(float64)) != tr.Layer(v) {
			t.Fatalf("v=%d: layer %v, want %d", v, body["layer"], tr.Layer(v))
		}
		chain, _ := body["chain"].([]any)
		want := tr.Explain(v)
		if len(chain) != len(want) {
			t.Fatalf("v=%d: chain of %d, want %d", v, len(chain), len(want))
		}
		for i, step := range chain {
			m := step.(map[string]any)
			if int32(m["v"].(float64)) != want[i] {
				t.Fatalf("v=%d: chain[%d] = %v, want %d", v, i, m["v"], want[i])
			}
			if int32(m["layer"].(float64)) != tr.Layer(want[i]) {
				t.Fatalf("v=%d: chain[%d] layer %v, want %d", v, i, m["layer"], tr.Layer(want[i]))
			}
		}
	}

	for _, path := range []string{"/v1/skyline/explain", "/v1/skyline/explain?v=-1",
		"/v1/skyline/explain?v=99999", "/v1/skyline/explain?v=x"} {
		if code, _ := get(t, ts, path); code != http.StatusBadRequest {
			t.Fatalf("%s: want 400", path)
		}
	}
}

func TestSwapCarriesTreeOver(t *testing.T) {
	g := testGraph()
	srv, ts := newTestServer(t, g, Options{})

	// Build the index on epoch 1, then swap an edge batch in: the new
	// epoch must answer layer queries consistent with a from-scratch
	// build of its own graph (the incremental carry-over oracle, e2e).
	if code, body := get(t, ts, "/v1/skyline/layers"); code != http.StatusOK {
		t.Fatalf("prewarm: status %d: %v", code, body)
	}
	code, body := post(t, ts, "/v1/snapshot/swap",
		`{"ops":[{"add":true,"u":0,"v":2},{"add":true,"u":1,"v":3},{"add":false,"u":0,"v":2}]}`)
	if code != http.StatusOK {
		t.Fatalf("swap: status %d: %v", code, body)
	}

	// The swapped-in snapshot carries a prebuilt tree (no lazy rebuild).
	pin := srv.Store().Acquire()
	carried := pin.Snapshot().TreeIfBuilt()
	ng := pin.Graph()
	pin.Release()
	if carried == nil {
		t.Fatal("swap did not carry the index over")
	}
	if want := skytree.Build(ng, skytree.BuildOptions{}); !carried.Equal(want) {
		t.Fatal("carried-over index differs from a rebuild of the swapped graph")
	}

	code, body = get(t, ts, "/v1/skyline/layers")
	if code != http.StatusOK || int(body["epoch"].(float64)) != 2 {
		t.Fatalf("post-swap layers: status %d epoch %v", code, body["epoch"])
	}
}

// TestConcurrentTreeQueriesDuringSwaps is the epoch-swap battery for
// the layered-index endpoints: layers/explain/subset queries race
// against edge-batch swaps (which themselves carry the index over once
// built), and every response must be coherent. Run under -race this
// asserts the lazy build, the carry-over and the RCU pins never alias
// mutable state across epochs.
func TestConcurrentTreeQueriesDuringSwaps(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, g, Options{})
	done := make(chan error, 8)
	for w := 0; w < 6; w++ {
		go func(w int) {
			for i := 0; i < 40; i++ {
				var code int
				var body map[string]any
				switch i % 3 {
				case 0:
					code, body = get(t, ts, "/v1/skyline/layers?k=2&limit=16")
				case 1:
					code, body = get(t, ts, fmt.Sprintf("/v1/skyline/explain?v=%d", (w*7+i)%g.N()))
				default:
					code, body = post(t, ts, "/v1/skyline/subset", `{"v":[0,1,2,3,4,5,6,7,8,9,10,11]}`)
				}
				if code != http.StatusOK {
					done <- fmt.Errorf("worker %d query %d: status %d: %v", w, i, code, body)
					return
				}
				if int(body["n"].(float64)) != g.N() || int(body["epoch"].(float64)) < 1 {
					done <- fmt.Errorf("worker %d query %d: torn response %v", w, i, body)
					return
				}
			}
			done <- nil
		}(w)
	}
	for s := 0; s < 2; s++ {
		go func(s int) {
			for i := 0; i < 10; i++ {
				u := int32((s*11 + i) % g.N())
				v := int32((s*11 + i + 2) % g.N())
				if u == v {
					continue
				}
				body := fmt.Sprintf(`{"ops":[{"add":true,"u":%d,"v":%d}]}`, u, v)
				if code, resp := post(t, ts, "/v1/snapshot/swap", body); code != http.StatusOK {
					done <- fmt.Errorf("swap: status %d: %v", code, resp)
					return
				}
				time.Sleep(time.Millisecond)
			}
			done <- nil
		}(s)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
