package serve

import (
	"fmt"
	"net/http"
	"time"

	"neisky/internal/obs"
	"neisky/internal/wal"
)

// Write-ahead-log wiring. With a Log attached (AttachWAL), the server
// acknowledges a batch swap only after the processed op prefix is
// durable: swapFromOps appends to the WAL BEFORE publishing the new
// epoch, so a crash at any instant loses at most unacknowledged work
// and a restart (OpenDurable) recovers exactly the acknowledged state.
// File swaps cut the lineage over to the new graph by writing a fresh
// checkpoint before publishing. Checkpoints — from the background
// ticker, POST /v1/checkpoint, or file swaps — compact the log so
// recovery time tracks the op tail since the last checkpoint, not the
// daemon's lifetime.

// RecoveryStats reports what OpenDurable rebuilt at startup.
type RecoveryStats struct {
	// Recovered is false when the directory was fresh and the base
	// snapshot seeded it.
	Recovered bool
	// CheckpointSeq / Records / LastSeq mirror wal.Recovered.
	CheckpointSeq uint64
	Records       int
	ReplayedOps   int
	LastSeq       uint64
	TornTail      bool
	// RecoverNs is the wall time of recovery (load + replay), 0 for a
	// fresh directory.
	RecoverNs int64
}

// OpenDurable opens the WAL directory and returns the serving snapshot
// plus the opened log positioned for appends.
//
// An initialized directory wins over base: the snapshot is the latest
// checkpoint plus a dynsky replay of the acknowledged op tail, and base
// (the -input flag) is ignored — durable state outranks boot-time
// configuration. A fresh directory requires base and seeds the log with
// an initial checkpoint of it, so recovery is well-defined from the
// first acknowledged batch onward.
func OpenDurable(dir string, base *Snapshot, o wal.Options) (*Snapshot, *wal.Log, *RecoveryStats, error) {
	exists, err := wal.Exists(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if !exists {
		if base == nil {
			return nil, nil, nil, fmt.Errorf("serve: wal directory %s is empty and no base snapshot was given", dir)
		}
		l, err := wal.Open(dir, o)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := l.Checkpoint(base.Graph); err != nil {
			l.Close()
			return nil, nil, nil, fmt.Errorf("serve: initial checkpoint: %w", err)
		}
		return base, l, &RecoveryStats{}, nil
	}

	start := time.Now()
	r, err := wal.Recover(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("serve: wal recovery: %w", err)
	}
	m := r.Replay()
	snap := &Snapshot{
		Graph: m.Graph(),
		Name:  fmt.Sprintf("wal:%s@%d", dir, r.LastSeq),
	}
	st := &RecoveryStats{
		Recovered:     true,
		CheckpointSeq: r.CheckpointSeq,
		Records:       r.Records,
		ReplayedOps:   len(r.Ops),
		LastSeq:       r.LastSeq,
		TornTail:      r.TornTail,
		RecoverNs:     time.Since(start).Nanoseconds(),
	}
	// If base was also given, the durable state replaces it; closers on
	// the ignored snapshot must still be released.
	if base != nil && base.Closer != nil {
		_ = base.Closer.Close()
	}
	l, err := wal.Open(dir, o)
	if err != nil {
		return nil, nil, nil, err
	}
	return snap, l, st, nil
}

// AttachWAL couples the server to an opened log: batch swaps become
// ack-after-durable, POST /v1/checkpoint compacts on demand, and — when
// every > 0 — a background ticker checkpoints whenever new records have
// accumulated. Call before the server starts handling requests; the
// server takes over closing the log (Close checkpoints nothing, it only
// syncs and closes).
func (s *Server) AttachWAL(l *wal.Log, every time.Duration) {
	s.wal = l
	if every > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptWG.Add(1)
		go s.checkpointLoop(every)
	}
}

// WAL returns the attached log (nil when the server runs non-durably).
func (s *Server) WAL() *wal.Log { return s.wal }

func (s *Server) checkpointLoop(every time.Duration) {
	defer s.ckptWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			if s.wal.LastSeq() == s.wal.CheckpointSeq() {
				continue // nothing new to compact
			}
			if _, err := s.checkpointNow(); err != nil {
				if rec := obs.Get(); rec != nil {
					rec.Add("serve.checkpoint.errors", 1)
				}
			}
		}
	}
}

// checkpointNow snapshots the current epoch's graph into the WAL under
// the swap lock, so no append can land between capturing the graph and
// the checkpoint claiming its sequence.
func (s *Server) checkpointNow() (uint64, error) {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	pin := s.store.Acquire()
	if pin == nil {
		return 0, ErrClosed
	}
	g := pin.Graph()
	pin.Release()
	return s.wal.Checkpoint(g)
}

type checkpointResponse struct {
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	LastSeq       uint64 `json:"last_seq"`
	Segments      int    `json:"segments"`
	ElapsedNs     int64  `json:"elapsed_ns"`
}

// handleCheckpoint serves POST /v1/checkpoint: write a checkpoint of
// the current state and compact the log behind it.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.wal == nil {
		writeErr(w, http.StatusBadRequest, "server runs without a write-ahead log (-wal)")
		return
	}
	start := time.Now()
	seq, err := s.checkpointNow()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{
		CheckpointSeq: seq,
		LastSeq:       s.wal.LastSeq(),
		Segments:      s.wal.Segments(),
		ElapsedNs:     time.Since(start).Nanoseconds(),
	})
}

// stopCheckpointLoop is called from Close before the store drains.
func (s *Server) stopCheckpointLoop() {
	if s.ckptStop != nil {
		close(s.ckptStop)
		s.ckptWG.Wait()
		s.ckptStop = nil
	}
}
