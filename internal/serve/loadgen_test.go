package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"neisky/internal/testleak"
)

// TestRunLoadMixedTraffic drives the load generator against a real
// in-process server: several hundred mixed queries with concurrent
// batch swaps must complete with zero failed or torn reads, and the
// report must account for every query.
func TestRunLoadMixedTraffic(t *testing.T) {
	defer testleak.Check(t)()

	srv := New(&Snapshot{Graph: testGraph(), Name: "loadtest"}, Options{})
	ts := httptest.NewServer(srv.Handler())

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL,
		Client:  ts.Client(),
		Queries: 300,
		Workers: 8,
		Swaps:   2,
		SwapOps: 4,
		K:       2,
		Seed:    1,
	})
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed queries (first: %s)", rep.Failed, rep.FirstError)
	}
	if rep.Queries != 300 {
		t.Fatalf("report covers %d queries, want 300", rep.Queries)
	}
	if rep.Swaps != 2 {
		t.Fatalf("report records %d swaps, want 2", rep.Swaps)
	}
	if rep.P99Ns < rep.P50Ns || rep.MaxNs < rep.P99Ns {
		t.Fatalf("percentiles out of order: p50=%d p99=%d max=%d",
			rep.P50Ns, rep.P99Ns, rep.MaxNs)
	}
	var perEndpoint int
	for _, ep := range rep.Endpoints {
		perEndpoint += ep.Queries
	}
	// Per-endpoint counts cover the queries; the swaps are tallied
	// separately under "swap".
	if perEndpoint != rep.Queries+rep.Swaps {
		t.Fatalf("per-endpoint counts sum to %d, want %d", perEndpoint, rep.Queries+rep.Swaps)
	}
}

// TestRunLoadReportsServerErrors: a load run against a closed server
// must report failures, not hang or lie.
func TestRunLoadReportsServerErrors(t *testing.T) {
	srv := New(&Snapshot{Graph: testGraph(), Name: "down"}, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close() // 503 for everything

	_, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL,
		Client:  ts.Client(),
		Queries: 10,
		Workers: 2,
	})
	if err == nil {
		t.Fatal("RunLoad against a closed server succeeded")
	}
}
