package serve

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"neisky/internal/testleak"
)

// TestRunLoadMixedTraffic drives the load generator against a real
// in-process server: several hundred mixed queries with concurrent
// batch swaps must complete with zero failed or torn reads, and the
// report must account for every query.
func TestRunLoadMixedTraffic(t *testing.T) {
	defer testleak.Check(t)()

	srv := New(&Snapshot{Graph: testGraph(), Name: "loadtest"}, Options{})
	ts := httptest.NewServer(srv.Handler())

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL,
		Client:  ts.Client(),
		Queries: 300,
		Workers: 8,
		Swaps:   2,
		SwapOps: 4,
		K:       2,
		Seed:    1,
	})
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed queries (first: %s)", rep.Failed, rep.FirstError)
	}
	if rep.Queries != 300 {
		t.Fatalf("report covers %d queries, want 300", rep.Queries)
	}
	if rep.Swaps != 2 {
		t.Fatalf("report records %d swaps, want 2", rep.Swaps)
	}
	if rep.P99Ns < rep.P50Ns || rep.MaxNs < rep.P99Ns {
		t.Fatalf("percentiles out of order: p50=%d p99=%d max=%d",
			rep.P50Ns, rep.P99Ns, rep.MaxNs)
	}
	var perEndpoint int
	for _, ep := range rep.Endpoints {
		perEndpoint += ep.Queries
	}
	// Per-endpoint counts cover the queries; the swaps are tallied
	// separately under "swap".
	if perEndpoint != rep.Queries+rep.Swaps {
		t.Fatalf("per-endpoint counts sum to %d, want %d", perEndpoint, rep.Queries+rep.Swaps)
	}
}

// TestRunLoadReportsServerErrors: a load run against a closed server
// must report failures, not hang or lie.
func TestRunLoadReportsServerErrors(t *testing.T) {
	srv := New(&Snapshot{Graph: testGraph(), Name: "down"}, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close() // 503 for everything

	_, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL,
		Client:  ts.Client(),
		Queries: 10,
		Workers: 2,
	})
	if err == nil {
		t.Fatal("RunLoad against a closed server succeeded")
	}
}

// TestRetryBackoffOn429 pins the retry loop: a daemon that rejects a
// few times before accepting is absorbed by backoff, a daemon that
// rejects forever yields a rejected (not failed) outcome after the
// retry budget, and non-retryable statuses pass straight through.
func TestRetryBackoffOn429(t *testing.T) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"n":1}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	rng := rand.New(rand.NewSource(1))
	o := LoadOptions{RetryBackoff: time.Microsecond}

	var out struct{ N int }
	retries, err := doJSONRetry(context.Background(), ts.Client(), o, rng, true,
		func() (*http.Request, error) {
			return http.NewRequest("GET", ts.URL, nil)
		}, &out)
	if err != nil || retries != 2 || out.N != 1 {
		t.Fatalf("recovering 429s: retries=%d err=%v out=%+v", retries, err, out)
	}

	// Persistent 429 exhausts the budget and surfaces the status.
	hits.Store(-1 << 40)
	retries, err = doJSONRetry(context.Background(), ts.Client(), o, rng, true,
		func() (*http.Request, error) {
			return http.NewRequest("GET", ts.URL, nil)
		}, &out)
	if !isStatus(err, http.StatusTooManyRequests) || retries != 3 {
		t.Fatalf("persistent 429: retries=%d err=%v, want 3 retries and a 429", retries, err)
	}

	// Retries=-1 disables retrying entirely.
	retries, err = doJSONRetry(context.Background(), ts.Client(), LoadOptions{Retries: -1}, rng, true,
		func() (*http.Request, error) {
			return http.NewRequest("GET", ts.URL, nil)
		}, &out)
	if !isStatus(err, http.StatusTooManyRequests) || retries != 0 {
		t.Fatalf("disabled retries: retries=%d err=%v", retries, err)
	}
}

// TestRetryIdempotencySplit: 503 is retried for reads but never for
// swaps (a 503 swap may have partially applied).
func TestRetryIdempotencySplit(t *testing.T) {
	var hits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"n":1}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	rng := rand.New(rand.NewSource(2))
	o := LoadOptions{RetryBackoff: time.Microsecond}
	var out struct{ N int }

	retries, err := doJSONRetry(context.Background(), ts.Client(), o, rng, true,
		func() (*http.Request, error) {
			return http.NewRequest("GET", ts.URL, nil)
		}, &out)
	if err != nil || retries != 1 {
		t.Fatalf("idempotent 503: retries=%d err=%v, want one retry and success", retries, err)
	}

	hits.Store(0)
	retries, err = doJSONRetry(context.Background(), ts.Client(), o, rng, false,
		func() (*http.Request, error) {
			return http.NewRequest("POST", ts.URL, nil)
		}, &out)
	if !isStatus(err, http.StatusServiceUnavailable) || retries != 0 {
		t.Fatalf("non-idempotent 503: retries=%d err=%v, want immediate surface", retries, err)
	}
}

// TestRunLoadUnderAdmissionPressure drives the full generator against a
// tightly capped server: with retries on, queries either succeed or are
// counted rejected — never failed — and the report's accounting stays
// consistent.
func TestRunLoadUnderAdmissionPressure(t *testing.T) {
	defer testleak.Check(t)()
	srv := New(&Snapshot{Graph: testGraph(), Name: "pressed"}, Options{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())

	rep, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:      ts.URL,
		Client:       ts.Client(),
		Queries:      120,
		Workers:      8,
		Seed:         3,
		RetryBackoff: time.Millisecond,
	})
	ts.CloseClientConnections()
	ts.Close()
	srv.Close()
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d failed under admission pressure (first: %s)", rep.Failed, rep.FirstError)
	}
	if rep.Queries+rep.Rejected != 120 {
		t.Fatalf("queries %d + rejected %d != 120", rep.Queries, rep.Rejected)
	}
	var epRejected int
	for _, ep := range rep.Endpoints {
		epRejected += ep.Rejected
	}
	if epRejected != rep.Rejected {
		t.Fatalf("per-endpoint rejected sums to %d, report says %d", epRejected, rep.Rejected)
	}
}
