package serve

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"neisky/internal/obs"
)

// Overload admission control. The server bounds the number of requests
// it works on concurrently (Options.MaxInFlight): a request past the
// cap is rejected immediately with 429 + Retry-After instead of
// queueing behind work the box cannot absorb. Between the shed
// threshold (3/4 of the cap) and the cap, shed mode (Options.Shed)
// degrades query deadlines to Options.ShedTimeout, so the anytime
// engines return truncated-but-sound answers fast — the existing
// runctl contract — and the backlog drains instead of growing.
//
// Counters (per endpoint and aggregate): serve.<name>.rejected /
// serve.admission.rejected for 429s, serve.<name>.shed /
// serve.admission.shed for degraded admissions, and
// serve.admission.recovered once per overload episode when the
// in-flight count falls back under the shed threshold.

// admission is the server's bounded in-flight gate. nil = unbounded.
type admission struct {
	max         int64
	shedAt      int64 // degrade deadlines at or above this in-flight count
	shed        bool
	shedTimeout time.Duration

	inflight   atomic.Int64
	overloaded atomic.Bool // an overload episode (a rejection) is in progress
}

func newAdmission(o Options) *admission {
	if o.MaxInFlight <= 0 {
		return nil
	}
	a := &admission{
		max:         int64(o.MaxInFlight),
		shed:        o.Shed,
		shedTimeout: o.ShedTimeout,
	}
	if a.shedTimeout <= 0 {
		a.shedTimeout = 100 * time.Millisecond
	}
	a.shedAt = a.max * 3 / 4
	if a.shedAt < 1 {
		a.shedAt = 1
	}
	return a
}

// shedKey carries the degraded deadline from the admission gate to
// queryContext through the request context.
type shedKey struct{}

// shedDeadline returns the shed-mode deadline clamp for ctx (0 = none).
func shedDeadline(ctx context.Context) time.Duration {
	d, _ := ctx.Value(shedKey{}).(time.Duration)
	return d
}

// admit claims an in-flight slot for one request. When the server is at
// capacity it writes the 429 itself and reports ok=false. Otherwise the
// caller must invoke release exactly once; the returned request carries
// the shed-mode deadline clamp when the gate is in the shed band.
func (s *Server) admit(name string, w http.ResponseWriter, r *http.Request) (release func(), req *http.Request, ok bool) {
	a := s.adm
	if a == nil {
		return func() {}, r, true
	}
	cur := a.inflight.Add(1)
	if cur > a.max {
		a.inflight.Add(-1)
		a.overloaded.Store(true)
		if rec := obs.Get(); rec != nil {
			rec.Add("serve."+name+".rejected", 1)
			rec.Add("serve.admission.rejected", 1)
		}
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "server at capacity (%d requests in flight)", a.max)
		return nil, nil, false
	}
	if a.shed && cur >= a.shedAt {
		if rec := obs.Get(); rec != nil {
			rec.Add("serve."+name+".shed", 1)
			rec.Add("serve.admission.shed", 1)
		}
		r = r.WithContext(context.WithValue(r.Context(), shedKey{}, a.shedTimeout))
	}
	return func() {
		if a.inflight.Add(-1) < a.shedAt && a.overloaded.CompareAndSwap(true, false) {
			if rec := obs.Get(); rec != nil {
				rec.Add("serve.admission.recovered", 1)
			}
		}
	}, r, true
}

// InFlight returns the current admitted-request count (0 when the gate
// is unbounded). Exposed on /v1/stats.
func (s *Server) InFlight() int64 {
	if s.adm == nil {
		return 0
	}
	return s.adm.inflight.Load()
}
