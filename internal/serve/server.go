package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/core"
	"neisky/internal/dynsky"
	"neisky/internal/graph"
	"neisky/internal/obs"
	"neisky/internal/runctl"
	"neisky/internal/skytree"
	"neisky/internal/wal"
)

// Options tunes the server. The zero value serves with a 30s timeout
// cap, no default timeout, uncapped budgets and 10k-entry list caps.
type Options struct {
	// DefaultTimeout bounds queries that set no ?timeout (0 = none
	// beyond MaxTimeout).
	DefaultTimeout time.Duration
	// MaxTimeout caps any per-query timeout; queries asking for more
	// (or for none, when DefaultTimeout is 0) get this. 0 = 30s.
	MaxTimeout time.Duration
	// MaxBudget caps the per-query ?budget work budget (0 = uncapped).
	MaxBudget int64
	// MaxList caps response list lengths (skyline members, dominator
	// entries, batch ops per swap); 0 = 10000.
	MaxList int
	// EnableDebug mounts /debug/{pprof,vars,metrics} on the serving
	// mux (deduplicated against obs.StartDebugServer).
	EnableDebug bool
	// MaxWorkers caps the per-query ?workers parallelism on the skyline
	// and centrality endpoints; 0 = GOMAXPROCS. Requests asking for more
	// are clamped, not rejected.
	MaxWorkers int
	// MaxInFlight caps concurrently-served /v1 requests across all
	// endpoints (0 = unbounded). Requests past the cap are rejected with
	// 429 + Retry-After instead of queueing. /healthz and /v1/stats stay
	// outside the gate so operators can observe an overloaded server.
	MaxInFlight int
	// Shed enables load shedding: once the in-flight count reaches 3/4
	// of MaxInFlight, query deadlines are clamped to ShedTimeout so the
	// anytime engines return truncated-but-sound answers quickly and the
	// backlog drains. No effect without MaxInFlight.
	Shed bool
	// ShedTimeout is the shed-mode deadline clamp (default 100ms).
	ShedTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxTimeout == 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.MaxList == 0 {
		o.MaxList = 10000
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	return o
}

// maxShards caps ?shards: far beyond any useful partition count while
// keeping the per-shard bookkeeping allocation trivially bounded.
const maxShards = 4096

// parseWorkers reads ?workers, clamped to [1, MaxWorkers]; 0 means the
// parameter was absent (engine default).
func (s *Server) parseWorkers(r *http.Request) (int, error) {
	v := r.URL.Query().Get("workers")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad workers %q (want a positive integer)", v)
	}
	if n > s.opts.MaxWorkers {
		n = s.opts.MaxWorkers
	}
	return n, nil
}

// parseShards reads ?shards, clamped to [1, maxShards]; 0 means absent.
func parseShards(r *http.Request) (int, error) {
	v := r.URL.Query().Get("shards")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad shards %q (want a positive integer)", v)
	}
	if n > maxShards {
		n = maxShards
	}
	return n, nil
}

// adviseOf returns the paging hint callback for mmap-backed snapshots
// (nil otherwise), so the sharded engine can request read-ahead of each
// shard's adjacency span.
func adviseOf(pin *Pin) func(lo, hi int32) {
	if mg, ok := pin.Snapshot().Closer.(*graph.Mapped); ok {
		return mg.AdviseRange
	}
	return nil
}

// Server answers the /v1 query surface against an epoch-managed
// snapshot store. Construct with New, expose Handler, and Close after
// the HTTP server has shut down (Close blocks until every epoch
// drains).
type Server struct {
	store  *Store
	opts   Options
	mux    *http.ServeMux
	swapMu sync.Mutex // serializes batch swaps: each derives from the then-current epoch
	start  time.Time
	adm    *admission // bounded in-flight gate (nil = unbounded)

	wal      *wal.Log // attached write-ahead log (nil = non-durable)
	ckptStop chan struct{}
	ckptWG   sync.WaitGroup
}

// New builds a server owning a fresh store seeded with snap.
func New(snap *Snapshot, opts Options) *Server {
	return NewFromStore(NewStore(snap), opts)
}

// NewFromStore builds a server over an existing store (shared, e.g.,
// with a background ingest loop). The server takes over Close.
func NewFromStore(store *Store, opts Options) *Server {
	s := &Server{store: store, opts: opts.withDefaults(), mux: http.NewServeMux(), start: time.Now()}
	s.adm = newAdmission(s.opts)
	s.mux.HandleFunc("/v1/skyline", s.instrument("skyline", s.handleSkyline))
	s.mux.HandleFunc("/v1/skyline/layers", s.instrument("layers", s.handleLayers))
	s.mux.HandleFunc("/v1/skyline/subset", s.instrument("subset", s.handleSubset))
	s.mux.HandleFunc("/v1/skyline/explain", s.instrument("explain", s.handleExplain))
	s.mux.HandleFunc("/v1/centrality/group", s.instrument("centrality", s.handleCentrality))
	s.mux.HandleFunc("/v1/clique", s.instrument("clique", s.handleClique))
	s.mux.HandleFunc("/v1/dominators", s.instrument("dominators", s.handleDominators))
	s.mux.HandleFunc("/v1/snapshot/swap", s.instrument("swap", s.handleSwap))
	s.mux.HandleFunc("/v1/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	if s.opts.EnableDebug {
		obs.AttachDebug(s.mux)
	}
	return s
}

// Handler returns the serving mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the snapshot store (for tests and embedding CLIs).
func (s *Server) Store() *Store { return s.store }

// Close stops the checkpoint loop, shuts the store down, and closes
// the attached WAL (if any); call only after in-flight requests have
// drained (http.Server.Shutdown does that).
func (s *Server) Close() {
	s.stopCheckpointLoop()
	s.store.Close()
	if s.wal != nil {
		_ = s.wal.Close()
	}
}

// meta is the envelope every query response carries: which epoch
// answered, its graph size, wall time, and the anytime markers.
type meta struct {
	Epoch     uint64 `json:"epoch"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Truncated bool   `json:"truncated"`
	Cause     string `json:"cause,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// statusWriter captures the response code for the error counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the admission gate and the
// per-endpoint obs surface: serve.<name>.requests / .errors counters
// and a serve.<name>.latency timer, all no-ops when recording is
// disabled. The gate runs first, so a 429 counts as .rejected (in
// admit), never as .errors — rejections are the gate working, not the
// endpoint failing.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, r, ok := s.admit(name, w, r)
		if !ok {
			return
		}
		defer release()
		rec := obs.Get()
		if rec == nil {
			h(w, r)
			return
		}
		rec.Add("serve."+name+".requests", 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		sp := rec.Start("serve." + name + ".latency")
		h(sw, r)
		sp.End()
		if sw.status >= 400 {
			rec.Add("serve."+name+".errors", 1)
		}
	}
}

// markTruncated fills the anytime markers and bumps the per-endpoint
// truncation counter.
func (m *meta) markTruncated(endpoint string, err error) {
	m.Truncated = true
	m.Cause = runctl.CauseString(err)
	if rec := obs.Get(); rec != nil {
		rec.Add("serve."+endpoint+".truncated", 1)
	}
}

// queryContext derives the per-query context: the request context (a
// dropped client connection cancels the engines mid-run), the ?timeout
// deadline clamped to [0, MaxTimeout] (DefaultTimeout when absent), and
// the ?budget work budget clamped to MaxBudget.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	q := r.URL.Query()
	d := s.opts.DefaultTimeout
	if v := q.Get("timeout"); v != "" {
		td, err := time.ParseDuration(v)
		if err != nil || td <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive Go duration)", v)
		}
		d = td
	}
	if d == 0 || d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	// Under shed-mode overload the admission gate clamps every deadline:
	// a fast truncated answer over a queued complete one.
	if sd := shedDeadline(r.Context()); sd > 0 && sd < d {
		d = sd
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	if v := q.Get("budget"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil || b <= 0 {
			cancel()
			return nil, nil, fmt.Errorf("bad budget %q (want a positive integer)", v)
		}
		if s.opts.MaxBudget > 0 && b > s.opts.MaxBudget {
			b = s.opts.MaxBudget
		}
		ctx = runctl.WithBudget(ctx, b)
	}
	return ctx, cancel, nil
}

// acquire pins the current snapshot or reports 503 (shutting down).
func (s *Server) acquire(w http.ResponseWriter) *Pin {
	pin := s.store.Acquire()
	if pin == nil {
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
	}
	return pin
}

func (s *Server) limit(q int) int {
	if q <= 0 || q > s.opts.MaxList {
		return s.opts.MaxList
	}
	return q
}

// parseLimit reads ?limit, defaulting to (and capping at) MaxList.
func (s *Server) parseLimit(r *http.Request) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return s.opts.MaxList, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q (want a non-negative integer)", v)
	}
	return s.limit(n), nil
}

type skylineResponse struct {
	meta
	Algo           string  `json:"algo"`
	SkylineSize    int     `json:"skyline_size"`
	Skyline        []int32 `json:"skyline"`
	CandidatesSize int     `json:"candidates_size,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	Shards         int     `json:"shards,omitempty"`
}

// skylineAlgos maps the ?algo values to the cancellable engines. The
// quadratic oracle is deliberately absent: it cannot honor deadlines.
var skylineAlgos = map[string]func(context.Context, *graph.Graph, core.Options) *core.Result{
	"":             core.FilterRefineSkyCtx,
	"filterrefine": core.FilterRefineSkyCtx,
	"base":         core.BaseSkyCtx,
	"2hop":         core.Base2HopCtx,
	"cset":         core.BaseCSetCtx,
}

// handleSkyline serves GET
// /v1/skyline?algo=&timeout=&budget=&limit=&workers=&shards=.
// ?workers (clamped to Options.MaxWorkers) runs the parallel
// filter/refine engine; ?shards runs the sharded engine over that many
// contiguous vertex shards (mmap-backed snapshots get per-shard paging
// hints). Both only apply to the filterrefine algorithm — ?shards on
// any other algo is a 400. A truncated run still returns 200: the
// listed set is a sound superset of the true skyline (the filter/refine
// contract), flagged with truncated=true and the cause.
func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	algoName := r.URL.Query().Get("algo")
	algo, ok := skylineAlgos[algoName]
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown algo %q (want filterrefine|base|2hop|cset)", algoName)
		return
	}
	filterRefine := algoName == "" || algoName == "filterrefine"
	workers, err := s.parseWorkers(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	shards, err := parseShards(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if (shards > 0 || workers > 0) && !filterRefine {
		writeErr(w, http.StatusBadRequest, "workers/shards apply only to algo filterrefine, not %q", algoName)
		return
	}
	limit, err := s.parseLimit(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	name := (map[string]string{"": "FilterRefineSky", "filterrefine": "FilterRefineSky",
		"base": "BaseSky", "2hop": "Base2Hop", "cset": "BaseCSet"})[algoName]
	start := time.Now()
	var res *core.Result
	switch {
	case shards > 0:
		ew := workers
		if ew == 0 {
			ew = s.opts.MaxWorkers
		}
		res = core.ShardedFilterRefineSkyCtx(ctx, g, core.Options{},
			core.ShardOptions{Shards: shards, Workers: ew, Advise: adviseOf(pin)})
		name, workers = "ShardedFilterRefineSky", ew
	case workers > 0:
		res = core.ParallelFilterRefineSkyCtx(ctx, g, core.Options{}, workers)
		name = "ParallelFilterRefineSky"
	default:
		res = algo(ctx, g, core.Options{})
	}
	resp := skylineResponse{
		meta:        meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds()},
		Algo:        name,
		SkylineSize: len(res.Skyline),
		Skyline:     clip(res.Skyline, limit),
		Workers:     workers,
		Shards:      shards,
	}
	if res.Candidates != nil {
		resp.CandidatesSize = len(res.Candidates)
	}
	if res.Truncated {
		resp.markTruncated("skyline", res.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}

func clip(v []int32, limit int) []int32 {
	if len(v) > limit {
		return v[:limit]
	}
	if v == nil {
		return []int32{} // JSON [] instead of null
	}
	return v
}

type centralityResponse struct {
	meta
	K         int     `json:"k"`
	Measure   string  `json:"measure"`
	Group     []int32 `json:"group"`
	Value     float64 `json:"value"`
	GainCalls int     `json:"gain_calls"`
	Workers   int     `json:"workers,omitempty"`
}

// handleCentrality serves GET /v1/centrality/group?k=&measure=. It is
// the paper's NeiSkyGC/NeiSkyGH under a context: skyline candidates,
// lazy greedy, pruned BFS. On truncation Group is the prefix of true
// greedy picks committed so far.
func (s *Server) handleCentrality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	k, err := strconv.Atoi(q.Get("k"))
	if err != nil || k < 1 {
		writeErr(w, http.StatusBadRequest, "bad k %q (want a positive integer)", q.Get("k"))
		return
	}
	var measure centrality.Measure
	switch q.Get("measure") {
	case "", "closeness":
		measure = centrality.CLOSENESS
	case "harmonic":
		measure = centrality.HARMONIC
	default:
		writeErr(w, http.StatusBadRequest, "unknown measure %q (want closeness|harmonic)", q.Get("measure"))
		return
	}
	workers, err := s.parseWorkers(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	if k > g.N() {
		k = g.N()
	}
	start := time.Now()
	sky := core.FilterRefineSkyCtx(ctx, g, core.Options{})
	res := centrality.GreedyCtx(ctx, g, k, measure,
		centrality.Options{Candidates: sky.Skyline, Lazy: true, PrunedBFS: true, Workers: workers})
	resp := centralityResponse{
		meta:      meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds()},
		K:         k,
		Measure:   map[centrality.Measure]string{centrality.CLOSENESS: "closeness", centrality.HARMONIC: "harmonic"}[measure],
		Group:     clip(res.Group, s.opts.MaxList),
		Value:     res.Value,
		GainCalls: res.GainCalls,
		Workers:   workers,
	}
	// A truncated skyline is still a sound (superset) candidate pool,
	// but the response must say the answer may differ from a full run.
	if res.Truncated || sky.Truncated {
		err := res.Err
		if err == nil {
			err = sky.Err
		}
		resp.markTruncated("centrality", err)
	}
	writeJSON(w, http.StatusOK, resp)
}

type cliqueResponse struct {
	meta
	Size    int       `json:"size"`
	Clique  []int32   `json:"clique"`
	Cliques [][]int32 `json:"cliques,omitempty"`
}

// handleClique serves GET /v1/clique?k=. k=1 (the default) is the
// skyline-seeded maximum-clique search; k>1 returns the k largest
// distinct cliques. On truncation every listed clique is genuine — the
// incumbent(s) of the branch-and-bound — just possibly not maximum.
func (s *Server) handleClique(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %q (want a positive integer)", v)
			return
		}
		k = n
	}
	if k > s.opts.MaxList {
		k = s.opts.MaxList
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	start := time.Now()
	resp := cliqueResponse{meta: meta{Epoch: pin.Epoch(), N: g.N(), M: g.M()}}
	if k == 1 {
		res := clique.NeiSkyMCCtx(ctx, g)
		resp.Size = len(res.Clique)
		resp.Clique = clip(res.Clique, s.opts.MaxList)
		if res.Truncated {
			resp.markTruncated("clique", res.Err)
		}
	} else {
		res := clique.NeiSkyTopkMCCCtx(ctx, g, k)
		resp.Cliques = res.Cliques
		if len(res.Cliques) > 0 {
			resp.Size = len(res.Cliques[0])
			resp.Clique = res.Cliques[0]
		} else {
			resp.Clique = []int32{}
			resp.Cliques = [][]int32{}
		}
		if res.Truncated {
			resp.markTruncated("clique", res.Err)
		}
	}
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	writeJSON(w, http.StatusOK, resp)
}

type dominatorEntry struct {
	V         int32 `json:"v"`
	Dominator int32 `json:"dominator"`
	InSkyline bool  `json:"in_skyline"`
}

type dominatorsResponse struct {
	meta
	SkylineSize int              `json:"skyline_size"`
	Dominators  []dominatorEntry `json:"dominators"`
}

// handleDominators serves GET /v1/dominators?v=3,7,12 — the paper's O
// array restricted to the requested vertices (all vertices, list-capped,
// when ?v is absent). Each entry names one dominator; in_skyline
// entries dominate themselves. On truncation in_skyline=true means
// "not yet proven dominated".
func (s *Server) handleDominators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	limit, err := s.parseLimit(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()

	g := pin.Graph()
	var verts []int32
	if raw := strings.TrimSpace(r.URL.Query().Get("v")); raw != "" {
		for _, tok := range strings.Split(raw, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 32)
			if err != nil || id < 0 || id >= int64(g.N()) {
				writeErr(w, http.StatusBadRequest, "bad vertex id %q (graph has %d vertices)", tok, g.N())
				return
			}
			verts = append(verts, int32(id))
		}
		if len(verts) > limit {
			verts = verts[:limit]
		}
	}

	start := time.Now()
	res := core.FilterRefineSkyCtx(ctx, g, core.Options{})
	if verts == nil {
		top := g.N()
		if top > limit {
			top = limit
		}
		verts = make([]int32, top)
		for i := range verts {
			verts[i] = int32(i)
		}
	}
	entries := make([]dominatorEntry, len(verts))
	for i, v := range verts {
		d := res.Dominator[v]
		entries[i] = dominatorEntry{V: v, Dominator: d, InSkyline: d == v}
	}
	resp := dominatorsResponse{
		meta:        meta{Epoch: pin.Epoch(), N: g.N(), M: g.M(), ElapsedNs: time.Since(start).Nanoseconds()},
		SkylineSize: len(res.Skyline),
		Dominators:  entries,
	}
	if res.Truncated {
		resp.markTruncated("dominators", res.Err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// swapRequest is the POST /v1/snapshot/swap body: either a snapshot
// file to load, or a batch of edge updates to apply to the current
// snapshot via internal/dynsky.
type swapRequest struct {
	Path string   `json:"path,omitempty"`
	Mmap bool     `json:"mmap,omitempty"`
	Ops  []swapOp `json:"ops,omitempty"`
}

type swapOp struct {
	Add bool  `json:"add"`
	U   int32 `json:"u"`
	V   int32 `json:"v"`
}

type swapResponse struct {
	meta
	Applied     int    `json:"applied"`
	SkylineSize int    `json:"skyline_size,omitempty"`
	Source      string `json:"source"`
}

// maxSwapBody bounds the swap request body (1 MiB of ops ≈ 25k ops,
// well past MaxList).
const maxSwapBody = 1 << 20

// handleSwap serves POST /v1/snapshot/swap. The new snapshot is built
// entirely off to the side — from a file, or by replaying an edge batch
// through a dynsky maintainer seeded from the pinned current graph —
// and published with one atomic store; in-flight queries keep their
// pinned epoch until they drain. Batch swaps are serialized so each
// derives from its predecessor. A cancelled batch publishes the exact
// applied prefix (dynsky's per-op atomicity) with truncated=true.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req swapRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSwapBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad swap request: %v", err)
		return
	}
	switch {
	case req.Path != "" && len(req.Ops) > 0:
		writeErr(w, http.StatusBadRequest, "swap request wants either path or ops, not both")
		return
	case req.Path == "" && len(req.Ops) == 0:
		writeErr(w, http.StatusBadRequest, "swap request needs a path or a non-empty ops batch")
		return
	case len(req.Ops) > s.opts.MaxList:
		writeErr(w, http.StatusBadRequest, "ops batch of %d exceeds the %d cap", len(req.Ops), s.opts.MaxList)
		return
	}
	if req.Path != "" {
		s.swapFromFile(w, r, req)
		return
	}
	s.swapFromOps(w, r, req.Ops)
}

func (s *Server) swapFromFile(w http.ResponseWriter, r *http.Request, req swapRequest) {
	snap, err := SnapshotFromFile(req.Path, req.Mmap)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "load %s: %v", req.Path, err)
		return
	}
	g := snap.Graph
	// A file swap replaces the WAL lineage wholesale: no op sequence
	// connects the old state to the new graph, so the cut-over is made
	// durable as a checkpoint BEFORE the epoch is published — same
	// ack-after-durable ordering as batch swaps. The swap lock keeps
	// appends and other checkpoints out from under the lineage change.
	if s.wal != nil {
		s.swapMu.Lock()
		defer s.swapMu.Unlock()
		if _, err := s.wal.Checkpoint(g); err != nil {
			if snap.Closer != nil {
				_ = snap.Closer.Close()
			}
			writeErr(w, http.StatusServiceUnavailable, "wal checkpoint: %v", err)
			return
		}
	}
	id, err := s.store.Swap(snap)
	if err != nil {
		if snap.Closer != nil {
			_ = snap.Closer.Close()
		}
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, swapResponse{
		meta:   meta{Epoch: id, N: g.N(), M: g.M()},
		Source: snap.Name,
	})
}

func (s *Server) swapFromOps(w http.ResponseWriter, r *http.Request, ops []swapOp) {
	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cancel()

	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	g := pin.Graph()
	batch := make([]dynsky.Op, len(ops))
	for i, op := range ops {
		if op.U < 0 || op.V < 0 || int(op.U) >= g.N() || int(op.V) >= g.N() || op.U == op.V {
			pin.Release()
			writeErr(w, http.StatusBadRequest, "bad op %d: edge (%d,%d) on %d vertices", i, op.U, op.V, g.N())
			return
		}
		batch[i] = dynsky.Op{Add: op.Add, U: op.U, V: op.V}
	}

	start := time.Now()
	// If the outgoing snapshot has a built layered index, carry it over
	// incrementally (skytree re-peels only each op's local region)
	// instead of leaving the new epoch to a lazy from-scratch rebuild.
	// A cancelled batch publishes the exact applied prefix either way.
	var processed, applied int
	var applyErr error
	var snap *Snapshot
	var skySize int
	if prev := pin.Snapshot().TreeIfBuilt(); prev != nil {
		tm := skytree.NewMaintainerFromTree(g, prev)
		pin.Release() // the maintainer owns a private copy now
		processed, applied, applyErr = tm.ApplyPrefixCtx(ctx, batch)
		snap = &Snapshot{Graph: tm.Graph(), Name: fmt.Sprintf("batch:%d", applied)}
		snap.SetTree(tm.Tree())
		skySize = tm.Dyn().SkylineSize()
	} else {
		m := dynsky.New(g)
		pin.Release() // the maintainer owns a private copy now
		processed, applied, applyErr = m.ApplyPrefixCtx(ctx, batch)
		snap = &Snapshot{Graph: m.Graph(), Name: fmt.Sprintf("batch:%d", applied)}
		skySize = m.SkylineSize()
	}
	// Ack-after-durable: the processed prefix — exactly what the new
	// snapshot's state reflects — reaches the WAL before the epoch is
	// published or the client answered. A failed append publishes
	// nothing: the client retries against the old (still durable) state.
	if s.wal != nil && processed > 0 {
		if _, err := s.wal.Append(batch[:processed]); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "wal append: %v", err)
			return
		}
	}
	id, err := s.store.Swap(snap)
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := swapResponse{
		meta: meta{Epoch: id, N: snap.Graph.N(), M: snap.Graph.M(),
			ElapsedNs: time.Since(start).Nanoseconds()},
		Applied:     applied,
		SkylineSize: skySize,
		Source:      snap.Name,
	}
	if applyErr != nil {
		resp.markTruncated("swap", applyErr)
	}
	writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Epoch         uint64  `json:"epoch"`
	N             int     `json:"n"`
	M             int     `json:"m"`
	Snapshot      string  `json:"snapshot"`
	MaxDegree     int     `json:"max_degree"`
	AvgDegree     float64 `json:"avg_degree"`
	Swaps         int64   `json:"swaps"`
	RetiredEpochs int64   `json:"retired_epochs"`
	UptimeNs      int64   `json:"uptime_ns"`
	InFlight      int64   `json:"in_flight,omitempty"`
	WALLastSeq    uint64  `json:"wal_last_seq,omitempty"`
	WALCkptSeq    uint64  `json:"wal_checkpoint_seq,omitempty"`
	WALSegments   int     `json:"wal_segments,omitempty"`
}

// handleStats serves GET /v1/stats: the current snapshot's identity and
// shape plus the store's swap/retire counters. Per-endpoint latency and
// truncation metrics live on /debug/metrics.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	pin := s.acquire(w)
	if pin == nil {
		return
	}
	defer pin.Release()
	g := pin.Graph()
	st := g.Stats()
	resp := statsResponse{
		Epoch:         pin.Epoch(),
		N:             g.N(),
		M:             g.M(),
		Snapshot:      pin.Snapshot().Name,
		MaxDegree:     st.MaxDegree,
		AvgDegree:     st.AvgDegree,
		Swaps:         s.store.Swaps(),
		RetiredEpochs: s.store.RetiredEpochs(),
		UptimeNs:      time.Since(s.start).Nanoseconds(),
		InFlight:      s.InFlight(),
	}
	if s.wal != nil {
		resp.WALLastSeq = s.wal.LastSeq()
		resp.WALCkptSeq = s.wal.CheckpointSeq()
		resp.WALSegments = s.wal.Segments()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	pin := s.store.Acquire()
	if pin == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	pin.Release()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// SnapshotFromFile loads a serving snapshot from path: a binary
// snapshot is heap-loaded (or mmap'd when useMmap is set), anything
// else is parsed as a text edge list. Closer is non-nil exactly when
// the graph aliases a mapping.
func SnapshotFromFile(path string, useMmap bool) (*Snapshot, error) {
	if graph.IsBinarySnapshot(path) {
		if useMmap {
			mg, err := graph.OpenMmap(path)
			if err != nil {
				return nil, err
			}
			return &Snapshot{Graph: mg.Graph, Closer: mg, Name: path}, nil
		}
		g, err := graph.LoadBinaryFile(path)
		if err != nil {
			return nil, err
		}
		return &Snapshot{Graph: g, Name: path}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, err
	}
	return &Snapshot{Graph: g, Name: path}, nil
}
