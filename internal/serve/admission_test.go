package serve

import (
	"net/http/httptest"
	"testing"
	"time"

	"neisky/internal/obs"
)

// admitN claims n in-flight slots on srv, failing the test if any is
// rejected, and returns their release funcs.
func admitN(t *testing.T, srv *Server, n int) []func() {
	t.Helper()
	releases := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/v1/skyline", nil)
		release, _, ok := srv.admit("skyline", w, r)
		if !ok {
			t.Fatalf("admit %d/%d rejected (code %d)", i+1, n, w.Code)
		}
		releases = append(releases, release)
	}
	return releases
}

// TestAdmissionRejectsAtCap pins the gate contract: requests past
// MaxInFlight get an immediate 429 with Retry-After, counted as
// rejected (per endpoint and aggregate), never as errors; releasing a
// slot readmits.
func TestAdmissionRejectsAtCap(t *testing.T) {
	old := obs.Swap(obs.New())
	defer obs.Swap(old)

	srv := New(&Snapshot{Graph: testGraph(), Name: "t"}, Options{MaxInFlight: 2})
	defer srv.Close()

	releases := admitN(t, srv, 2)
	if got := srv.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}

	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/v1/skyline", nil)
	if _, _, ok := srv.admit("skyline", w, r); ok {
		t.Fatal("admit over the cap succeeded")
	}
	if w.Code != 429 {
		t.Fatalf("over-cap status = %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want %q", w.Header().Get("Retry-After"), "1")
	}
	m := obs.Get().Metrics()
	if m["serve.skyline.rejected"] != 1 || m["serve.admission.rejected"] != 1 {
		t.Fatalf("rejected counters = %d/%d, want 1/1",
			m["serve.skyline.rejected"], m["serve.admission.rejected"])
	}
	if m["serve.skyline.errors"] != 0 {
		t.Fatalf("a rejection counted as an endpoint error")
	}

	// A freed slot readmits immediately.
	releases[0]()
	release, _, ok := srv.admit("skyline", httptest.NewRecorder(), r)
	if !ok {
		t.Fatal("admit after release rejected")
	}
	release()
	releases[1]()
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after all releases, want 0", got)
	}
}

// TestAdmissionShedBand verifies shed-mode deadline clamping: at or
// above 3/4 of the cap, admitted requests carry the shed deadline and
// the shed counters tick; below the band they do not.
func TestAdmissionShedBand(t *testing.T) {
	old := obs.Swap(obs.New())
	defer obs.Swap(old)

	srv := New(&Snapshot{Graph: testGraph(), Name: "t"}, Options{
		MaxInFlight: 4, Shed: true, ShedTimeout: 25 * time.Millisecond,
	})
	defer srv.Close()

	// Slots 1 and 2 are below shedAt (3): no clamp.
	var releases []func()
	for i := 0; i < 2; i++ {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("GET", "/v1/skyline", nil)
		release, req, ok := srv.admit("skyline", w, r)
		if !ok {
			t.Fatalf("admit %d rejected", i+1)
		}
		if d := shedDeadline(req.Context()); d != 0 {
			t.Fatalf("slot %d carries shed deadline %v below the band", i+1, d)
		}
		releases = append(releases, release)
	}
	// Slot 3 enters the shed band.
	w := httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/v1/skyline", nil)
	release, req, ok := srv.admit("skyline", w, r)
	if !ok {
		t.Fatal("admit in shed band rejected")
	}
	releases = append(releases, release)
	if d := shedDeadline(req.Context()); d != 25*time.Millisecond {
		t.Fatalf("shed deadline = %v, want 25ms", d)
	}
	m := obs.Get().Metrics()
	if m["serve.skyline.shed"] != 1 || m["serve.admission.shed"] != 1 {
		t.Fatalf("shed counters = %d/%d, want 1/1",
			m["serve.skyline.shed"], m["serve.admission.shed"])
	}
	for _, rel := range releases {
		rel()
	}
}

// TestAdmissionRecoveredEpisode checks the overload-episode accounting:
// a rejection opens an episode, and draining back under the shed
// threshold closes it — bumping serve.admission.recovered exactly once
// no matter how many rejections the episode contained.
func TestAdmissionRecoveredEpisode(t *testing.T) {
	old := obs.Swap(obs.New())
	defer obs.Swap(old)

	srv := New(&Snapshot{Graph: testGraph(), Name: "t"}, Options{MaxInFlight: 4})
	defer srv.Close()

	releases := admitN(t, srv, 4)
	// Two rejections inside one episode.
	for i := 0; i < 2; i++ {
		if _, _, ok := srv.admit("skyline", httptest.NewRecorder(),
			httptest.NewRequest("GET", "/v1/skyline", nil)); ok {
			t.Fatal("admit over the cap succeeded")
		}
	}
	for _, rel := range releases {
		rel()
	}
	m := obs.Get().Metrics()
	if m["serve.admission.recovered"] != 1 {
		t.Fatalf("recovered = %d after one episode, want 1", m["serve.admission.recovered"])
	}
	if m["serve.admission.rejected"] != 2 {
		t.Fatalf("rejected = %d, want 2", m["serve.admission.rejected"])
	}

	// A second episode counts again.
	releases = admitN(t, srv, 4)
	if _, _, ok := srv.admit("skyline", httptest.NewRecorder(),
		httptest.NewRequest("GET", "/v1/skyline", nil)); ok {
		t.Fatal("admit over the cap succeeded")
	}
	for _, rel := range releases {
		rel()
	}
	if got := obs.Get().Metrics()["serve.admission.recovered"]; got != 2 {
		t.Fatalf("recovered = %d after two episodes, want 2", got)
	}
}

// TestShedModeTruncatesEndToEnd drives a real query through a server
// whose shed band covers every request (MaxInFlight 1 → shedAt 1) with
// a vanishingly small shed timeout: the query must still answer 200,
// flagged truncated — a fast sound answer instead of a queued complete
// one.
func TestShedModeTruncatesEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, bigGraph(), Options{
		MaxInFlight: 1, Shed: true, ShedTimeout: time.Nanosecond,
	})
	_ = srv
	code, body := get(t, ts, "/v1/skyline")
	if code != 200 {
		t.Fatalf("shed-mode skyline: %d %v", code, body)
	}
	if body["truncated"] != true {
		t.Fatalf("shed-mode skyline not truncated: %v", body)
	}
}

// TestUnboundedAdmissionNoop pins that MaxInFlight=0 disables the gate.
func TestUnboundedAdmissionNoop(t *testing.T) {
	srv := New(&Snapshot{Graph: testGraph(), Name: "t"}, Options{})
	defer srv.Close()
	for i := 0; i < 64; i++ {
		release, _, ok := srv.admit("skyline", httptest.NewRecorder(),
			httptest.NewRequest("GET", "/v1/skyline", nil))
		if !ok {
			t.Fatal("unbounded gate rejected")
		}
		release()
	}
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d on unbounded gate, want 0", got)
	}
}

// TestStatsReportsInFlight checks /v1/stats surfaces the gate state
// while requests are in flight.
func TestStatsReportsInFlight(t *testing.T) {
	srv, ts := newTestServer(t, testGraph(), Options{MaxInFlight: 8})
	releases := admitN(t, srv, 2)
	code, body := get(t, ts, "/v1/stats")
	for _, rel := range releases {
		rel()
	}
	if code != 200 {
		t.Fatalf("stats: %d %v", code, body)
	}
	if got, ok := body["in_flight"].(float64); !ok || got != 2 {
		t.Fatalf("stats in_flight = %v, want 2", body["in_flight"])
	}
}
