package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neisky/internal/gen"
	"neisky/internal/testleak"
)

// countingCloser stands in for an mmap: it counts Close calls so the
// tests can assert exactly-once resource release.
type countingCloser struct {
	closes atomic.Int64
}

func (c *countingCloser) Close() error {
	c.closes.Add(1)
	return nil
}

func tinySnap(name string, closer *countingCloser) *Snapshot {
	s := &Snapshot{Graph: gen.Clique(4), Name: name}
	if closer != nil {
		s.Closer = closer
	}
	return s
}

func TestStoreSwapRetiresOldEpochAfterDrain(t *testing.T) {
	c0 := &countingCloser{}
	s := NewStore(tinySnap("e1", c0))

	pin := s.Acquire()
	if pin == nil {
		t.Fatal("Acquire returned nil on a live store")
	}
	if got := pin.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}

	id, err := s.Swap(tinySnap("e2", nil))
	if err != nil || id != 2 {
		t.Fatalf("Swap = (%d, %v), want (2, nil)", id, err)
	}
	// The old epoch is retired but must not be freed: pin still holds it.
	if pin.Defunct() {
		t.Fatal("pinned epoch freed while the pin was held")
	}
	if n := c0.closes.Load(); n != 0 {
		t.Fatalf("old snapshot closed %d times while pinned, want 0", n)
	}
	if g := pin.Graph(); g.N() != 4 {
		t.Fatalf("pinned graph n=%d, want 4", g.N())
	}

	pin.Release()
	waitFor(t, func() bool { return c0.closes.Load() == 1 })
	if got := s.RetiredEpochs(); got != 1 {
		t.Fatalf("RetiredEpochs = %d, want 1", got)
	}

	// A new acquire sees the new epoch.
	p2 := s.Acquire()
	if p2.Epoch() != 2 {
		t.Fatalf("epoch after swap = %d, want 2", p2.Epoch())
	}
	p2.Release()
	s.Close()
	if got := s.RetiredEpochs(); got != 2 {
		t.Fatalf("RetiredEpochs after Close = %d, want 2 (every epoch drained)", got)
	}
}

func TestStoreAcquireAfterCloseReturnsNil(t *testing.T) {
	s := NewStore(tinySnap("only", nil))
	s.Close()
	if pin := s.Acquire(); pin != nil {
		t.Fatal("Acquire after Close returned a pin")
	}
	if _, err := s.Swap(tinySnap("late", nil)); err != ErrClosed {
		t.Fatalf("Swap after Close = %v, want ErrClosed", err)
	}
	if got := s.CurrentEpoch(); got != 0 {
		t.Fatalf("CurrentEpoch after Close = %d, want 0", got)
	}
}

func TestStoreDoubleReleaseIsSafe(t *testing.T) {
	s := NewStore(tinySnap("e1", nil))
	pin := s.Acquire()
	pin.Release()
	pin.Release() // second release is a no-op, not a refcount underflow
	s.Close()
	if got := s.RetiredEpochs(); got != 1 {
		t.Fatalf("RetiredEpochs = %d, want 1", got)
	}
}

// TestEpochSwapRaceBattery is the serving-grade concurrency gate: N
// reader goroutines continuously pin/query/release while M swappers
// publish new snapshots. It asserts, under -race:
//
//   - no reader ever observes a freed (retired-and-drained) snapshot
//     while holding a pin;
//   - reads through the pin see a coherent graph (n and m match the
//     generation that was published);
//   - after Close, every epoch ever published has drained to refcount
//     zero and released its closer exactly once.
func TestEpochSwapRaceBattery(t *testing.T) {
	const (
		readers       = 8
		readsPerG     = 3000
		swappers      = 3
		swapsPerG     = 150
		initialG      = 64 // vertices in generation 0
		verticesPerGn = 8  // clique size encodes the generation's edge count
	)

	// Each published snapshot is a clique whose size encodes its own
	// edge count, so a torn read (graph fields from two generations)
	// is detectable: m must equal n*(n-1)/2.
	mkSnap := func(n int, c *countingCloser) *Snapshot {
		return &Snapshot{Graph: gen.Clique(n), Closer: c, Name: "gen"}
	}

	var closers []*countingCloser
	var closersMu sync.Mutex
	newCloser := func() *countingCloser {
		c := &countingCloser{}
		closersMu.Lock()
		closers = append(closers, c)
		closersMu.Unlock()
		return c
	}

	s := NewStore(mkSnap(initialG, newCloser()))

	var bad atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerG; i++ {
				pin := s.Acquire()
				if pin == nil {
					bad.Add(1)
					return
				}
				g := pin.Graph()
				n, m := g.N(), g.M()
				if m != n*(n-1)/2 {
					bad.Add(1) // torn read
				}
				// Touch adjacency the way a query would.
				if g.Degree(0) != n-1 {
					bad.Add(1)
				}
				if pin.Defunct() {
					bad.Add(1) // freed while held
				}
				pin.Release()
			}
		}()
	}
	for w := 0; w < swappers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < swapsPerG; i++ {
				// Cycle through 16 distinct sizes: every generation is
				// self-consistent (m = n(n-1)/2) without the cliques
				// growing unboundedly over 450 swaps.
				n := initialG + verticesPerGn*((w*swapsPerG+i)%16+1)
				if _, err := s.Swap(mkSnap(n, newCloser())); err != nil {
					bad.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := bad.Load(); got != 0 {
		t.Fatalf("%d torn/defunct/failed observations during the battery", got)
	}
	if got, want := s.Swaps(), int64(swappers*swapsPerG); got != want {
		t.Fatalf("Swaps = %d, want %d", got, want)
	}

	// Close retires the final epoch and blocks until every epoch ever
	// published has drained to refcount zero.
	s.Close()
	published := int64(swappers*swapsPerG) + 1
	if got := s.RetiredEpochs(); got != published {
		t.Fatalf("RetiredEpochs = %d, want %d (every epoch drains)", got, published)
	}
	closersMu.Lock()
	defer closersMu.Unlock()
	for i, c := range closers {
		if n := c.closes.Load(); n != 1 {
			t.Fatalf("closer %d closed %d times, want exactly 1", i, n)
		}
	}
}

// TestAcquireDuringSwapNeverDefunct hammers the acquire/swap window
// specifically: one swapper in a tight loop against many acquirers that
// hold their pin across a scheduling point.
func TestAcquireDuringSwapNeverDefunct(t *testing.T) {
	s := NewStore(tinySnap("e1", nil))
	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := s.Acquire()
				time.Sleep(time.Microsecond)
				if pin.Defunct() {
					bad.Add(1)
				}
				pin.Release()
			}
		}()
	}
	for i := 0; i < 400; i++ {
		if _, err := s.Swap(tinySnap("next", nil)); err != nil {
			t.Fatalf("Swap: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	s.Close()
	if got := bad.Load(); got != 0 {
		t.Fatalf("%d pins observed a defunct epoch", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStoreSwapCloseRace races concurrent Swap callers (and a reader)
// against Store.Close. The shutdown contract under contention:
//
//   - a Swap either publishes (the store then owns the snapshot) or
//     fails with ErrClosed (the caller still owns it and must release
//     its resources itself);
//   - Acquire returns nil once closed, never a defunct pin;
//   - after everything settles, every closer — published or bounced —
//     was released exactly once.
func TestStoreSwapCloseRace(t *testing.T) {
	defer testleak.Check(t)()
	g := gen.Clique(8)
	for round := 0; round < 25; round++ {
		var closers []*countingCloser
		var closersMu sync.Mutex
		newCloser := func() *countingCloser {
			c := &countingCloser{}
			closersMu.Lock()
			closers = append(closers, c)
			closersMu.Unlock()
			return c
		}

		s := NewStore(&Snapshot{Graph: g, Closer: newCloser(), Name: "gen0"})
		var bad atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 40; i++ {
					c := newCloser()
					if _, err := s.Swap(&Snapshot{Graph: g, Closer: c, Name: "gen"}); err != nil {
						if err != ErrClosed {
							bad.Add(1)
						}
						c.Close() // bounced: still ours to release
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 100000; i++ {
				pin := s.Acquire()
				if pin == nil {
					return // closed
				}
				if pin.Defunct() {
					bad.Add(1)
				}
				pin.Release()
			}
		}()
		close(start)
		s.Close() // races every swapper mid-publish
		wg.Wait()

		if got := bad.Load(); got != 0 {
			t.Fatalf("round %d: %d defunct pins or unexpected swap errors", round, got)
		}
		closersMu.Lock()
		for i, c := range closers {
			if n := c.closes.Load(); n != 1 {
				t.Fatalf("round %d: closer %d closed %d times, want exactly 1", round, i, n)
			}
		}
		closersMu.Unlock()
	}
}
