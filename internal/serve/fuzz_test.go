package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"neisky/internal/gen"
)

// fuzzServer is shared across the fuzz corpus: one small graph, tight
// caps so even adversarial params finish instantly.
func newFuzzServer() *Server {
	return New(&Snapshot{Graph: gen.PowerLaw(40, 90, 2.5, 3)}, Options{
		DefaultTimeout: 50 * time.Millisecond,
		MaxTimeout:     50 * time.Millisecond,
		MaxBudget:      1 << 16,
		MaxList:        256,
	})
}

// newRequest builds a test request, absorbing the net/http panics on
// malformed method tokens or targets that could never reach a handler.
func newRequest(method, target, body string) (req *http.Request) {
	defer func() {
		if recover() != nil {
			req = nil
		}
	}()
	return httptest.NewRequest(method, target, strings.NewReader(body))
}

// FuzzServeRequest throws arbitrary methods, request targets and bodies
// at the full serving mux. The invariant under fuzzing is the API
// contract, not any particular answer: every request must produce a
// JSON response with a sane status — never a panic, a hang, or a
// non-JSON 200.
func FuzzServeRequest(f *testing.F) {
	seeds := []struct{ method, target, body string }{
		{"GET", "/v1/skyline", ""},
		{"GET", "/v1/skyline?algo=base&limit=5&timeout=10ms&budget=100", ""},
		{"GET", "/v1/skyline?algo=oracle", ""},
		{"GET", "/v1/skyline?limit=-9999999999999999999", ""},
		{"GET", "/v1/centrality/group?k=2&measure=closeness", ""},
		{"GET", "/v1/centrality/group?k=99999999&measure=harmonic", ""},
		{"GET", "/v1/clique?k=3", ""},
		{"GET", "/v1/dominators?v=0,1,2", ""},
		{"GET", "/v1/dominators?v=,,,", ""},
		{"GET", "/v1/dominators?v=0,0,0&v=1", ""},
		{"GET", "/v1/stats", ""},
		{"GET", "/healthz", ""},
		{"POST", "/v1/snapshot/swap", `{"ops":[{"add":true,"u":0,"v":1}]}`},
		{"POST", "/v1/snapshot/swap", `{"ops":[{"add":false,"u":1,"v":0}]}`},
		{"POST", "/v1/snapshot/swap", `{"path":"/no/such/file"}`},
		{"POST", "/v1/snapshot/swap", `{"ops":[`},
		{"POST", "/v1/snapshot/swap", `{"ops":[{"u":1e99,"v":0,"add":true}]}`},
		{"POST", "/v1/snapshot/swap", strings.Repeat("[", 1000)},
		{"DELETE", "/v1/skyline", ""},
		{"GET", "/v1/skyline?timeout=1h&budget=9223372036854775807", ""},
		{"GET", "/%2e%2e/etc/passwd", ""},
	}
	for _, s := range seeds {
		f.Add(s.method, s.target, s.body)
	}

	srv := newFuzzServer()
	defer srv.Close()
	mux := srv.Handler()

	f.Fuzz(func(t *testing.T, method, target, body string) {
		// Only well-formed request lines reach a real server through
		// net/http; mirror that here. newRequest recovers from the
		// parser's panics on anything else — harness noise, not bugs.
		u, err := url.ParseRequestURI(target)
		if err != nil || u.Scheme != "" || u.Host != "" || !strings.HasPrefix(target, "/") {
			t.Skip()
		}
		req := newRequest(method, target, body)
		if req == nil {
			t.Skip()
		}
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)

		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
			http.StatusMethodNotAllowed, http.StatusMovedPermanently:
			// 301 is ServeMux path canonicalization (.. and // targets).
		default:
			t.Fatalf("%s %q: unexpected status %d: %s", method, target, rec.Code, rec.Body.Bytes())
		}
		if rec.Code == http.StatusOK || rec.Code == http.StatusBadRequest {
			ct := rec.Header().Get("Content-Type")
			if !strings.HasPrefix(ct, "application/json") {
				// /healthz and the debug mux (pprof/expvar) legitimately
				// serve other content types; API paths must stay JSON.
				if strings.HasPrefix(u.Path, "/v1/") {
					t.Fatalf("%s %q: status %d with Content-Type %q", method, target, rec.Code, ct)
				}
				return
			}
			var payload any
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("%s %q: status %d with unparseable JSON body %q: %v",
					method, target, rec.Code, rec.Body.Bytes(), err)
			}
		}
	})
}
