// Package dataset provides the graphs the experiments run on.
//
// The paper evaluates on konect.cc / SNAP downloads (Table I) that are
// unavailable offline, so each real graph is replaced by a seeded
// synthetic stand-in whose size and degree-distribution shape mirror the
// original at roughly 1/100–1/200 scale (see DESIGN.md §3.1). Two tiny
// case-study graphs are embedded exactly or reconstructed:
//
//   - Karate — Zachary's karate club (34 vertices, 78 edges), embedded
//     verbatim.
//   - Fig1 — the paper's 15-vertex running example, reconstructed to
//     satisfy every property the text states (skyline
//     {0,1,4,5,6,7,8,9}, v13 ≤ v8, 42-vs-21 marginal-gain counts).
package dataset

import (
	"fmt"
	"sort"

	"neisky/internal/gen"
	"neisky/internal/graph"
)

// Spec describes one catalog entry.
type Spec struct {
	Name string
	// PaperN, PaperM, PaperDmax are Table I's numbers for the original
	// graph (0 when the paper doesn't report them).
	PaperN, PaperM, PaperDmax int
	// N, M are the stand-in's target size; Beta its power-law exponent.
	N, M int
	Beta float64
	Seed uint64
	Kind string // "powerlaw", "ba", "embedded"
	Desc string
}

// Catalog lists the stand-ins for every dataset the paper uses, in the
// order of Table I plus the scalability/clique graphs.
var Catalog = []Spec{
	{Name: "notredame-sim", PaperN: 325731, PaperM: 1090109, PaperDmax: 10721,
		N: 3257, M: 10901, Beta: 2.1, Seed: 1, Kind: "powerlaw", Desc: "Web network stand-in"},
	{Name: "youtube-sim", PaperN: 1134890, PaperM: 2987624, PaperDmax: 28754,
		N: 5674, M: 14938, Beta: 2.1, Seed: 2, Kind: "powerlaw", Desc: "Social network stand-in"},
	{Name: "wikitalk-sim", PaperN: 2394385, PaperM: 4659565, PaperDmax: 100029,
		N: 11972, M: 23298, Beta: 2.0, Seed: 3, Kind: "powerlaw", Desc: "Communication network stand-in"},
	{Name: "flixster-sim", PaperN: 2523386, PaperM: 7918801, PaperDmax: 1474,
		N: 12617, M: 39594, Beta: 2.1, Seed: 4, Kind: "powerlaw", Desc: "Social network stand-in"},
	{Name: "dblp-sim", PaperN: 1843617, PaperM: 8350260, PaperDmax: 2213,
		N: 9218, M: 41751, Beta: 2.2, Seed: 5, Kind: "powerlaw", Desc: "Collaboration network stand-in"},
	{Name: "livejournal-sim", PaperN: 3997962, PaperM: 34681189, PaperDmax: 14815,
		N: 16000, M: 60000, Beta: 2.1, Seed: 6, Kind: "powerlaw", Desc: "Scalability graph stand-in"},
	{Name: "pokec-sim", PaperN: 1632803, PaperM: 22301964, PaperDmax: 14854,
		N: 6000, M: 30000, Beta: 2.1, Seed: 7, Kind: "powerlaw", Desc: "Clique workload stand-in"},
	{Name: "orkut-sim", PaperN: 3072441, PaperM: 117185083, PaperDmax: 33313,
		N: 8000, M: 50000, Beta: 2.05, Seed: 8, Kind: "powerlaw", Desc: "Clique workload stand-in"},
	// β=2.2/seed=5 chosen so the skyline fraction matches the paper's
	// case study: 19/64 ≈ 30% here vs the real network's 20/64 ≈ 31%.
	{Name: "bombing-sim", PaperN: 64, PaperM: 243, PaperDmax: 29,
		N: 64, M: 243, Beta: 2.2, Seed: 5, Kind: "powerlaw", Desc: "Madrid train bombing contact network stand-in"},
	{Name: "karate", PaperN: 34, PaperM: 78, PaperDmax: 17,
		N: 34, M: 78, Beta: 0, Seed: 0, Kind: "embedded", Desc: "Zachary karate club (exact)"},
	{Name: "fig1", PaperN: 15, PaperM: 0, PaperDmax: 0,
		N: 15, M: 18, Beta: 0, Seed: 0, Kind: "embedded", Desc: "Paper Fig. 1 running example (reconstructed)"},
}

// Five returns the five Table I dataset names in paper order.
func Five() []string {
	return []string{"notredame-sim", "youtube-sim", "wikitalk-sim", "flixster-sim", "dblp-sim"}
}

// Load materializes the named dataset, scaling synthetic sizes by scale
// (1.0 = catalog defaults; embedded graphs ignore scale).
func Load(name string, scale float64) (*graph.Graph, error) {
	spec, ok := Find(name)
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
	return spec.Build(scale), nil
}

// Find returns the catalog entry for name.
func Find(name string) (Spec, bool) {
	for _, s := range Catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Build materializes the dataset described by the spec. scale multiplies
// n and m for synthetic kinds (min 2 vertices).
func (s Spec) Build(scale float64) *graph.Graph {
	switch s.Kind {
	case "embedded":
		switch s.Name {
		case "karate":
			return Karate()
		case "fig1":
			return Fig1()
		}
		panic("dataset: unknown embedded graph " + s.Name)
	case "ba":
		n := scaled(s.N, scale)
		k := (2*s.M + s.N) / (2 * s.N) // round(M/N)
		if k < 1 {
			k = 1
		}
		return gen.BA(n, k, s.Seed).DropIsolated()
	default:
		// Edge-list datasets never contain degree-0 vertices, so the
		// stand-ins drop the isolated vertices Chung–Lu sampling
		// produces.
		n := scaled(s.N, scale)
		m := scaled(s.M, scale)
		return gen.PowerLaw(n, m, s.Beta, s.Seed).DropIsolated()
	}
}

func scaled(x int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(x) * scale)
	if v < 2 {
		v = 2
	}
	return v
}

// karateEdges is the canonical 0-indexed Zachary karate club edge list.
var karateEdges = [][2]int32{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8},
	{0, 10}, {0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
	{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
	{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
	{3, 7}, {3, 12}, {3, 13},
	{4, 6}, {4, 10},
	{5, 6}, {5, 10}, {5, 16},
	{6, 16},
	{8, 30}, {8, 32}, {8, 33},
	{9, 33},
	{13, 33},
	{14, 32}, {14, 33},
	{15, 32}, {15, 33},
	{18, 32}, {18, 33},
	{19, 33},
	{20, 32}, {20, 33},
	{22, 32}, {22, 33},
	{23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
	{24, 25}, {24, 27}, {24, 31},
	{25, 31},
	{26, 29}, {26, 33},
	{27, 33},
	{28, 31}, {28, 33},
	{29, 32}, {29, 33},
	{30, 32}, {30, 33},
	{31, 32}, {31, 33},
	{32, 33},
}

// Karate returns Zachary's karate club network (34 vertices, 78 edges).
func Karate() *graph.Graph {
	return graph.FromEdges(34, karateEdges)
}

// fig1Edges reconstructs the paper's Fig. 1 running example. The figure
// itself is not machine-readable, so this 15-vertex graph is built to
// satisfy everything the text asserts about it: the neighborhood skyline
// is exactly {v0, v1, v4, v5, v6, v7, v8, v9}; v8 dominates v13; and with
// n = 15 the Example 2 counts hold (BaseGC evaluates 15+14+13 = 42 gains
// for k = 3, NeiSkyGC evaluates 8+7+6 = 21).
var fig1Edges = [][2]int32{
	{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, // twins 2, 3 dominated by 0 and 1
	{0, 4}, {1, 5}, // core-to-ring links protect 0 and 1
	{4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 4}, // ring
	{4, 10}, {5, 11}, {6, 12}, {8, 13}, {9, 14}, // pendants (13 ≤ 8)
}

// Fig1 returns the reconstructed running-example graph.
func Fig1() *graph.Graph {
	return graph.FromEdges(15, fig1Edges)
}

// Fig1Skyline is the paper's stated skyline of the Fig. 1 graph.
var Fig1Skyline = []int32{0, 1, 4, 5, 6, 7, 8, 9}

// Names returns all catalog names sorted.
func Names() []string {
	out := make([]string, 0, len(Catalog))
	for _, s := range Catalog {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}
