package dataset

import (
	"testing"

	"neisky/internal/core"
)

func TestKarateExact(t *testing.T) {
	g := Karate()
	if g.N() != 34 || g.M() != 78 {
		t.Fatalf("karate: n=%d m=%d, want 34/78", g.N(), g.M())
	}
	// Known structure: vertices 0 and 33 are the two hubs.
	if g.Degree(0) != 16 || g.Degree(33) != 17 {
		t.Fatalf("karate hub degrees %d, %d; want 16, 17", g.Degree(0), g.Degree(33))
	}
	if g.MaxDegree() != 17 {
		t.Fatalf("karate dmax=%d, want 17", g.MaxDegree())
	}
}

func TestKarateSkylineShape(t *testing.T) {
	// The paper's case study reports 15 skyline vertices (44%) on Karate.
	// Our reproduction must at least produce a proper subset of V that
	// agrees with the brute-force oracle; the exact count is recorded in
	// EXPERIMENTS.md.
	g := Karate()
	res := core.FilterRefineSky(g, core.Options{})
	oracle := core.BruteForce(g)
	if !core.EqualSkylines(res.Skyline, oracle.Skyline) {
		t.Fatalf("karate skyline disagrees with oracle: %v vs %v", res.Skyline, oracle.Skyline)
	}
	if len(res.Skyline) >= g.N() || len(res.Skyline) == 0 {
		t.Fatalf("karate skyline size %d out of expected range", len(res.Skyline))
	}
	t.Logf("karate skyline: %d of %d vertices (paper: 15 of 34)", len(res.Skyline), g.N())
}

func TestFig1Properties(t *testing.T) {
	g := Fig1()
	if g.N() != 15 || g.M() != 18 {
		t.Fatalf("fig1: n=%d m=%d", g.N(), g.M())
	}
	res := core.FilterRefineSky(g, core.Options{})
	if !core.EqualSkylines(res.Skyline, Fig1Skyline) {
		t.Fatalf("fig1 skyline %v != declared %v", res.Skyline, Fig1Skyline)
	}
}

func TestCatalogBuildsAll(t *testing.T) {
	for _, spec := range Catalog {
		scale := 1.0
		if spec.Kind == "powerlaw" && spec.N > 3000 {
			scale = 0.1 // keep the test fast
		}
		g := spec.Build(scale)
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", spec.Name)
		}
		if spec.Kind == "powerlaw" {
			// Degree-sum sanity plus a heavy tail.
			st := g.Stats()
			if st.M == 0 {
				t.Fatalf("%s: no edges", spec.Name)
			}
			if float64(st.MaxDegree) < 2*st.AvgDegree {
				t.Fatalf("%s: expected skewed degrees, got dmax=%d avg=%.1f",
					spec.Name, st.MaxDegree, st.AvgDegree)
			}
		}
	}
}

func TestLoadAndFind(t *testing.T) {
	g, err := Load("karate", 1)
	if err != nil || g.N() != 34 {
		t.Fatalf("Load karate: %v", err)
	}
	if _, err := Load("no-such-graph", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, ok := Find("fig1"); !ok {
		t.Fatal("fig1 must be in catalog")
	}
	if len(Five()) != 5 {
		t.Fatal("Five() must list the Table I datasets")
	}
	for _, name := range Five() {
		if _, ok := Find(name); !ok {
			t.Fatalf("Table I dataset %s missing from catalog", name)
		}
	}
}

func TestBombingSimSize(t *testing.T) {
	g, err := Load("bombing-sim", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 {
		t.Fatalf("bombing-sim n=%d, want 64", g.N())
	}
	// m should be near the real network's 243.
	if g.M() < 200 || g.M() > 290 {
		t.Fatalf("bombing-sim m=%d, want ≈243", g.M())
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a, _ := Load("youtube-sim", 0.2)
	b, _ := Load("youtube-sim", 0.2)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("dataset builds are not deterministic")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != len(Catalog) {
		t.Fatal("Names() incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestScaledFloor(t *testing.T) {
	g, err := Load("youtube-sim", 0.00001)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 2 {
		t.Fatal("scaled graphs must keep at least 2 vertices")
	}
}
