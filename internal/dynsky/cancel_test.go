package dynsky

import (
	"context"
	"errors"
	"testing"

	"neisky/internal/rng"
	"neisky/internal/runctl"
	"neisky/internal/runctl/faultinject"
)

// distinctAddOps builds a batch of edge insertions in which every op
// changes the graph (no duplicates, no self-loops), so on an empty
// maintainer the applied count equals the processed-prefix length.
func distinctAddOps(n, count int, seed uint64) []Op {
	r := rng.New(seed)
	seen := map[[2]int32]bool{}
	ops := make([]Op, 0, count)
	for len(ops) < count {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		ops = append(ops, Op{Add: true, U: u, V: v})
	}
	return ops
}

// TestApplyCtxCancelPrefixExact cancels a batch mid-stream and checks
// the atomicity contract: the maintained skyline is exact for the
// applied prefix — identical to a fresh maintainer fed only those ops.
func TestApplyCtxCancelPrefixExact(t *testing.T) {
	const n = 400
	ops := distinctAddOps(n, 300, 61)

	restore := faultinject.Set(func(seq int64) faultinject.Action {
		if seq >= 50 {
			return faultinject.ActionCancel
		}
		return faultinject.ActionNone
	})
	m := NewEmpty(n)
	applied, err := m.ApplyCtx(context.Background(), ops)
	restore()

	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if applied == 0 || applied >= len(ops) {
		t.Fatalf("applied = %d, want a strict mid-batch prefix of %d", applied, len(ops))
	}

	// Every op is effective, so the applied count IS the prefix length.
	fresh := NewEmpty(n)
	if got := fresh.Apply(ops[:applied]); got != applied {
		t.Fatalf("replay applied %d ops, want %d", got, applied)
	}
	check(t, m, "cancelled maintainer")
	a, b := m.Skyline(), fresh.Skyline()
	if len(a) != len(b) {
		t.Fatalf("skyline size %d after cancellation, want %d (prefix replay)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("skyline[%d] = %d, want %d: cancelled maintainer diverged from its applied prefix", i, a[i], b[i])
		}
	}
}

// TestApplyCtxBudget bounds a batch by a work budget: one unit per op.
func TestApplyCtxBudget(t *testing.T) {
	const n = 200
	ops := distinctAddOps(n, 150, 62)
	m := NewEmpty(n)
	ctx := runctl.WithBudget(context.Background(), 40)
	applied, err := m.ApplyCtx(ctx, ops)
	if !errors.Is(err, runctl.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if applied == 0 || applied > 45 {
		t.Fatalf("applied = %d ops on a 40-unit budget", applied)
	}
	check(t, m, "budgeted maintainer")
}

// TestApplyCtxLiveContextCompletes pins the complete path: nil error,
// all effective ops applied.
func TestApplyCtxLiveContextCompletes(t *testing.T) {
	const n = 200
	ops := distinctAddOps(n, 100, 63)
	m := NewEmpty(n)
	applied, err := m.ApplyCtx(context.Background(), ops)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if applied != len(ops) {
		t.Fatalf("applied = %d, want all %d", applied, len(ops))
	}
	check(t, m, "complete maintainer")
}
