// Package dynsky maintains a neighborhood skyline under edge insertions
// and deletions — the dynamic-graph extension of the paper's static
// problem.
//
// The locality that powers FilterRefineSky also powers maintenance: the
// domination predicate between x and w reads only N(x) and N(w), so an
// update to edge (u, v) can change the skyline status of exactly the
// vertices paired with u or v — that is, u, v themselves and vertices
// within two hops of either endpoint (before or after the update). The
// maintainer recomputes the exact status of that affected set per
// update; everything else is untouched.
//
// Per-update cost is O(Σ_{x∈affected} deg(pivot(x))·deg(x)) — output
// sensitive in the size of the 2-hop neighborhoods around the touched
// edge, independent of n.
package dynsky

import (
	"context"
	"sort"

	"neisky/internal/graph"
	"neisky/internal/runctl"
)

// Maintainer holds a mutable graph and its incrementally-maintained
// skyline. The vertex count is fixed at construction.
type Maintainer struct {
	n         int32
	adj       []map[int32]struct{}
	edges     int
	dominated []bool
	skySize   int
}

// New builds a Maintainer seeded from g.
func New(g *graph.Graph) *Maintainer {
	n := int32(g.N())
	m := &Maintainer{
		n:         n,
		adj:       make([]map[int32]struct{}, n),
		dominated: make([]bool, n),
	}
	for u := int32(0); u < n; u++ {
		m.adj[u] = make(map[int32]struct{}, g.Degree(u))
		for _, v := range g.Neighbors(u) {
			m.adj[u][v] = struct{}{}
		}
	}
	m.edges = g.M()
	for u := int32(0); u < n; u++ {
		m.dominated[u] = m.isDominated(u)
	}
	m.skySize = int(n)
	for _, d := range m.dominated {
		if d {
			m.skySize--
		}
	}
	return m
}

// NewEmpty builds a Maintainer for an edgeless graph on n vertices.
func NewEmpty(n int) *Maintainer {
	return New(graph.NewBuilder(n).Build())
}

// N returns the vertex count.
func (m *Maintainer) N() int { return int(m.n) }

// M returns the current edge count.
func (m *Maintainer) M() int { return m.edges }

// Degree returns the current degree of u.
func (m *Maintainer) Degree(u int32) int { return len(m.adj[u]) }

// Has reports whether the edge (u, v) currently exists.
func (m *Maintainer) Has(u, v int32) bool {
	_, ok := m.adj[u][v]
	return ok
}

// ForEachNeighbor calls fn for every current neighbor of u until fn
// returns false. Iteration order is unspecified (hash-map order) — the
// accessor exists so internal/skytree can evaluate its order-insensitive
// level predicates on the maintainer's live adjacency without copying
// it.
func (m *Maintainer) ForEachNeighbor(u int32, fn func(v int32) bool) {
	for v := range m.adj[u] {
		if !fn(v) {
			return
		}
	}
}

// Affected2Hop returns u, v and every vertex within two hops of either
// under the CURRENT adjacency, in ascending order. Callers maintaining
// derived indexes (internal/skytree) take the union of the set before
// and after an update — exactly the region whose domination pairs the
// update can touch.
func (m *Maintainer) Affected2Hop(u, v int32) []int32 {
	set := m.affected(u, v)
	out := make([]int32, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InSkyline reports whether v is currently in the skyline.
func (m *Maintainer) InSkyline(v int32) bool { return !m.dominated[v] }

// SkylineSize returns |R| without materializing the set.
func (m *Maintainer) SkylineSize() int { return m.skySize }

// Skyline materializes the current skyline in increasing ID order.
func (m *Maintainer) Skyline() []int32 {
	out := make([]int32, 0, m.skySize)
	for v := int32(0); v < m.n; v++ {
		if !m.dominated[v] {
			out = append(out, v)
		}
	}
	return out
}

// Graph snapshots the current adjacency as an immutable CSR graph.
func (m *Maintainer) Graph() *graph.Graph {
	b := graph.NewBuilder(int(m.n))
	for u := int32(0); u < m.n; u++ {
		for v := range m.adj[u] {
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// AddEdge inserts the undirected edge (u, v) and updates the skyline.
// It reports whether the edge was new. Self-loops are rejected.
func (m *Maintainer) AddEdge(u, v int32) bool {
	if u == v || m.Has(u, v) {
		return false
	}
	affected := m.affected(u, v)
	m.adj[u][v] = struct{}{}
	m.adj[v][u] = struct{}{}
	m.edges++
	m.mergeAffected(affected, u, v)
	m.recompute(affected)
	return true
}

// RemoveEdge deletes the undirected edge (u, v) and updates the
// skyline. It reports whether the edge existed.
func (m *Maintainer) RemoveEdge(u, v int32) bool {
	if u == v || !m.Has(u, v) {
		return false
	}
	affected := m.affected(u, v)
	delete(m.adj[u], v)
	delete(m.adj[v], u)
	m.edges--
	m.mergeAffected(affected, u, v)
	m.recompute(affected)
	return true
}

// affected collects {u, v} plus all vertices within two hops of u or v
// under the CURRENT adjacency.
func (m *Maintainer) affected(u, v int32) map[int32]struct{} {
	set := make(map[int32]struct{})
	for _, s := range []int32{u, v} {
		set[s] = struct{}{}
		for x := range m.adj[s] {
			set[x] = struct{}{}
			for y := range m.adj[x] {
				set[y] = struct{}{}
			}
		}
	}
	return set
}

// mergeAffected extends the affected set with the post-update 2-hop
// neighborhoods of the endpoints.
func (m *Maintainer) mergeAffected(set map[int32]struct{}, u, v int32) {
	for x := range m.affected(u, v) {
		set[x] = struct{}{}
	}
}

// recompute refreshes the exact domination status of every affected
// vertex. An all-isolated graph flips status globally when its last
// edge disappears or first edge appears, so that case recomputes all.
func (m *Maintainer) recompute(set map[int32]struct{}) {
	if m.edges <= 1 {
		// Cheap and rare: near-edgeless graphs have global isolated
		// tie-breaking, so refresh everything.
		for v := int32(0); v < m.n; v++ {
			m.setStatus(v, m.isDominated(v))
		}
		return
	}
	for v := range set {
		m.setStatus(v, m.isDominated(v))
	}
	// Isolated vertices outside the affected set keep "dominated"
	// status as long as some edge exists; nothing to do for them.
}

func (m *Maintainer) setStatus(v int32, dominated bool) {
	if m.dominated[v] == dominated {
		return
	}
	m.dominated[v] = dominated
	if dominated {
		m.skySize--
	} else {
		m.skySize++
	}
}

// dominatesPair reports Definition 2 (x ≤ w) on the current adjacency.
func (m *Maintainer) dominatesPair(w, x int32) bool {
	if w == x {
		return false
	}
	if !m.openInClosed(x, w) {
		return false
	}
	if !m.openInClosed(w, x) {
		return true
	}
	return w < x
}

// openInClosed reports N(a) ⊆ N[b].
func (m *Maintainer) openInClosed(a, b int32) bool {
	if len(m.adj[a]) > len(m.adj[b])+1 {
		return false
	}
	for y := range m.adj[a] {
		if y == b {
			continue
		}
		if _, ok := m.adj[b][y]; !ok {
			return false
		}
	}
	return true
}

// isDominated evaluates x's status from scratch. For deg(x) ≥ 1 every
// dominator is adjacent to all of x's neighbors, so scanning the closed
// neighborhood of x's minimum-degree neighbor is complete (same pivot
// argument as the static refine phase).
func (m *Maintainer) isDominated(x int32) bool {
	if len(m.adj[x]) == 0 {
		if m.edges > 0 {
			return true // dominated by any non-isolated vertex
		}
		return x != m.minVertex() // all-isolated: min ID survives
	}
	var pivot int32 = -1
	for y := range m.adj[x] {
		if pivot == -1 || len(m.adj[y]) < len(m.adj[pivot]) ||
			(len(m.adj[y]) == len(m.adj[pivot]) && y < pivot) {
			pivot = y
		}
	}
	if m.dominatesPair(pivot, x) {
		return true
	}
	for w := range m.adj[pivot] {
		if w != x && m.dominatesPair(w, x) {
			return true
		}
	}
	return false
}

// minVertex returns the smallest vertex ID (0 unless n == 0).
func (m *Maintainer) minVertex() int32 {
	if m.n == 0 {
		return -1
	}
	return 0
}

// ApplyEdgeList inserts a batch of edges and returns how many were new.
func (m *Maintainer) ApplyEdgeList(edges [][2]int32) int {
	added := 0
	for _, e := range edges {
		if m.AddEdge(e[0], e[1]) {
			added++
		}
	}
	return added
}

// Op is one edge update in a batch: an insertion (Add) or deletion of
// the undirected edge (U, V).
type Op struct {
	Add  bool
	U, V int32
}

// Apply executes a batch of updates and returns how many changed the
// graph (inserts of new edges, deletes of existing ones).
func (m *Maintainer) Apply(ops []Op) int {
	_, applied, _ := m.applyRun(nil, ops)
	return applied
}

// ApplyCtx is Apply under a context. Individual updates are atomic —
// the maintained skyline is always exact for the edges applied so far —
// so cancellation lands between ops: the batch stops after the current
// update, returning how many ops were applied and the cancellation
// cause (nil when the whole batch ran).
func (m *Maintainer) ApplyCtx(ctx context.Context, ops []Op) (applied int, err error) {
	_, applied, err = m.ApplyPrefixCtx(ctx, ops)
	return applied, err
}

// ApplyPrefixCtx is ApplyCtx, additionally reporting how many ops of
// the batch were processed before the run stopped. processed ≥ applied:
// an op that does not change the graph (duplicate insert, missing
// delete) is processed but not applied. The maintainer's state equals a
// fresh replay of exactly ops[:processed] — the prefix a write-ahead
// log must persist for replay to be oracle-equal.
func (m *Maintainer) ApplyPrefixCtx(ctx context.Context, ops []Op) (processed, applied int, err error) {
	run := runctl.FromContext(ctx)
	defer run.Release()
	return m.applyRun(run, ops)
}

func (m *Maintainer) applyRun(run *runctl.Run, ops []Op) (processed, applied int, err error) {
	cp := run.Checkpoint(1) // each op is already a 2-hop recompute
	for _, op := range ops {
		if cp.Tick() {
			return processed, applied, run.Err()
		}
		if op.Add {
			if m.AddEdge(op.U, op.V) {
				applied++
			}
		} else if m.RemoveEdge(op.U, op.V) {
			applied++
		}
		processed++
	}
	return processed, applied, nil
}

// Dominators lists, for diagnostic purposes, one dominator per
// currently-dominated vertex (computed on demand).
func (m *Maintainer) Dominators() map[int32]int32 {
	out := make(map[int32]int32)
	for x := int32(0); x < m.n; x++ {
		if !m.dominated[x] {
			continue
		}
		if len(m.adj[x]) == 0 {
			// Smallest non-isolated vertex, or vertex 0.
			for w := int32(0); w < m.n; w++ {
				if len(m.adj[w]) > 0 {
					out[x] = w
					break
				}
			}
			if _, ok := out[x]; !ok {
				out[x] = 0
			}
			continue
		}
		var ws []int32
		var pivot int32 = -1
		for y := range m.adj[x] {
			if pivot == -1 || len(m.adj[y]) < len(m.adj[pivot]) {
				pivot = y
			}
		}
		ws = append(ws, pivot)
		for w := range m.adj[pivot] {
			ws = append(ws, w)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for _, w := range ws {
			if w != x && m.dominatesPair(w, x) {
				out[x] = w
				break
			}
		}
	}
	return out
}
