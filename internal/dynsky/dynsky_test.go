package dynsky

import (
	"testing"
	"testing/quick"

	"neisky/internal/core"
	"neisky/internal/gen"
	"neisky/internal/graph"
	"neisky/internal/rng"
)

// check compares the maintainer's skyline against a from-scratch
// recomputation of its current graph.
func check(t *testing.T, m *Maintainer, label string) {
	t.Helper()
	want := core.FilterRefineSky(m.Graph(), core.Options{})
	got := m.Skyline()
	if !core.EqualSkylines(got, want.Skyline) {
		t.Fatalf("%s: maintained %v != recomputed %v (edges %v)",
			label, got, want.Skyline, m.Graph().EdgeList())
	}
	if m.SkylineSize() != len(got) {
		t.Fatalf("%s: SkylineSize %d != |Skyline| %d", label, m.SkylineSize(), len(got))
	}
}

func TestInsertSequence(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(12)
		m := NewEmpty(n)
		check(t, m, "empty")
		for step := 0; step < 3*n; step++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			m.AddEdge(u, v)
			check(t, m, "insert")
		}
	}
}

func TestDeleteSequence(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(10)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					b.AddEdge(int32(u), int32(v))
				}
			}
		}
		g := b.Build()
		m := New(g)
		check(t, m, "initial")
		edges := g.EdgeList()
		r.Shuffle(permOf(len(edges)))
		for _, e := range edges {
			m.RemoveEdge(e[0], e[1])
			check(t, m, "delete")
		}
		if m.M() != 0 {
			t.Fatal("all edges should be gone")
		}
	}
}

func permOf(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func TestMixedWorkload(t *testing.T) {
	r := rng.New(3)
	n := 20
	m := NewEmpty(n)
	for step := 0; step < 300; step++ {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v {
			continue
		}
		if m.Has(u, v) && r.Float64() < 0.5 {
			m.RemoveEdge(u, v)
		} else {
			m.AddEdge(u, v)
		}
		if step%17 == 0 {
			check(t, m, "mixed")
		}
	}
	check(t, m, "final")
}

func TestSeedFromStaticGraph(t *testing.T) {
	g := gen.PowerLaw(300, 900, 2.3, 9)
	m := New(g)
	check(t, m, "power-law seed")
	if m.N() != g.N() || m.M() != g.M() {
		t.Fatal("seed mismatch")
	}
}

func TestIdempotentOps(t *testing.T) {
	m := NewEmpty(4)
	if !m.AddEdge(0, 1) || m.AddEdge(0, 1) || m.AddEdge(1, 0) {
		t.Fatal("duplicate insert must report false")
	}
	if m.AddEdge(2, 2) {
		t.Fatal("self loop must be rejected")
	}
	if !m.RemoveEdge(0, 1) || m.RemoveEdge(0, 1) {
		t.Fatal("duplicate delete must report false")
	}
	check(t, m, "after idempotent ops")
}

func TestIsolatedTransitions(t *testing.T) {
	// Empty graph: only vertex 0 in skyline. First edge: global flip.
	m := NewEmpty(3)
	if m.SkylineSize() != 1 || !m.InSkyline(0) {
		t.Fatalf("edgeless skyline size %d", m.SkylineSize())
	}
	m.AddEdge(1, 2)
	check(t, m, "first edge")
	// Vertex 0 is now isolated next to an edge: dominated.
	if m.InSkyline(0) {
		t.Fatal("isolated vertex beside an edge must be dominated")
	}
	m.RemoveEdge(1, 2)
	check(t, m, "back to edgeless")
	if !m.InSkyline(0) || m.SkylineSize() != 1 {
		t.Fatal("edgeless skyline must return to {0}")
	}
}

func TestDominatorsValid(t *testing.T) {
	r := rng.New(5)
	n := 12
	m := NewEmpty(n)
	for i := 0; i < 30; i++ {
		m.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := m.Graph()
	for x, w := range m.Dominators() {
		if m.InSkyline(x) {
			t.Fatalf("dominator listed for skyline vertex %d", x)
		}
		if g.Degree(x) > 0 && !core.Dominates(g, w, x) {
			t.Fatalf("recorded dominator %d does not dominate %d", w, x)
		}
	}
}

func TestApplyEdgeList(t *testing.T) {
	m := NewEmpty(5)
	added := m.ApplyEdgeList([][2]int32{{0, 1}, {1, 2}, {0, 1}, {3, 3}})
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	check(t, m, "batch")
}

func TestQuickMaintainerAgainstStatic(t *testing.T) {
	f := func(seed uint64, nRaw uint8, ops uint8) bool {
		n := int(nRaw%12) + 3
		r := rng.New(seed)
		m := NewEmpty(n)
		for i := 0; i < int(ops%60); i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if r.Float64() < 0.3 {
				m.RemoveEdge(u, v)
			} else {
				m.AddEdge(u, v)
			}
		}
		want := core.FilterRefineSky(m.Graph(), core.Options{})
		return core.EqualSkylines(m.Skyline(), want.Skyline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
