package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neisky/internal/rng"
)

// edgeSliceSource adapts a raw edge slice (dups and self-loops welcome)
// to the converter's streaming interface.
func edgeSliceSource(edges [][2]int32) EdgeSource {
	return func(emit func(u, v int32) error) error {
		for _, e := range edges {
			if err := emit(e[0], e[1]); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestConvertMatchesBuilder is the converter's oracle test: the
// streaming external-sort pipeline must produce byte-for-byte the same
// CSR as the in-memory Builder, across random dirty edge streams and
// buffer sizes small enough to force multi-run merges.
func TestConvertMatchesBuilder(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(63)
	for trial := 0; trial < 12; trial++ {
		n := 1 + r.Intn(50)
		edges := randomMultiEdges(r, n, 5*n)
		want := FromEdges(n, edges)

		dst := filepath.Join(dir, "g.nsb2")
		// Tiny buffers on odd trials force spills; defaults on even.
		opts := ConvertOptions{N: n}
		if trial%2 == 1 {
			opts.BufferPairs = 16
		}
		stats, err := ConvertEdges(edgeSliceSource(edges), dst, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadBinaryFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(want, got) {
			t.Fatalf("trial %d: converted graph differs from Builder (n=%d)", trial, n)
		}
		if stats.N != want.N() || stats.M != want.M() {
			t.Fatalf("trial %d: stats (n=%d m=%d) disagree with graph (n=%d m=%d)",
				trial, stats.N, stats.M, want.N(), want.M())
		}
		if trial%2 == 1 && len(edges) > 8 && stats.Runs < 2 {
			t.Fatalf("trial %d: tiny buffer spilled only %d runs", trial, stats.Runs)
		}
	}
}

// TestConvertRelabelMatchesOracle pins the streamed relabeling against
// the in-memory RelabelByDegree oracle — both break degree ties by
// ascending old id, so the outputs must be identical graphs.
func TestConvertRelabelMatchesOracle(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(64)
	for trial := 0; trial < 8; trial++ {
		n := 1 + r.Intn(50)
		edges := randomMultiEdges(r, n, 5*n)
		base := FromEdges(n, edges)
		want, _, _ := base.RelabelByDegree()

		dst := filepath.Join(dir, "rel.nsb2")
		stats, err := ConvertEdges(edgeSliceSource(edges), dst,
			ConvertOptions{N: n, Relabel: true, BufferPairs: 32})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Relabeled {
			t.Fatal("stats.Relabeled not set")
		}
		got, err := LoadBinaryFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(want, got) {
			t.Fatalf("trial %d: streamed relabel differs from RelabelByDegree oracle", trial)
		}
		mg, err := OpenMmap(dst)
		if err != nil {
			t.Fatal(err)
		}
		if mg.Flags()&FlagDegreeRelabeled == 0 {
			t.Fatal("FlagDegreeRelabeled not set in the snapshot header")
		}
		mg.Close()
	}
}

// TestConvertBoundedMemory is the acceptance-criterion invariant: the
// converter's resident pair buffer never exceeds BufferPairs no matter
// how many edges stream through, so peak memory is O(n + buffer), not
// O(m). Quadrupling the edge count must not move the high-water mark
// past the knob.
func TestConvertBoundedMemory(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(65)
	const n, buffer = 200, 64
	for _, count := range []int{500, 2000} {
		edges := randomMultiEdges(r, n, count)
		dst := filepath.Join(dir, "bounded.nsb2")
		stats, err := ConvertEdges(edgeSliceSource(edges), dst,
			ConvertOptions{N: n, BufferPairs: buffer, Relabel: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.MaxBuffered > buffer {
			t.Fatalf("%d edges: MaxBuffered %d exceeds BufferPairs %d",
				count, stats.MaxBuffered, buffer)
		}
		if stats.Runs < 2 {
			t.Fatalf("%d edges: expected multiple spilled runs, got %d", count, stats.Runs)
		}
	}
}

func TestConvertRejectsBadIDs(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "bad.nsb2")
	if _, err := ConvertEdges(edgeSliceSource([][2]int32{{-1, 2}}), dst, ConvertOptions{}); err == nil {
		t.Error("negative id accepted")
	}
	if _, err := ConvertEdges(edgeSliceSource([][2]int32{{0, maxBinary2N}}), dst, ConvertOptions{}); err == nil {
		t.Error("over-cap id accepted")
	}
}

func TestConvertEmptyStream(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "empty.nsb2")
	stats, err := ConvertEdges(edgeSliceSource(nil), dst, ConvertOptions{N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 5 || stats.M != 0 {
		t.Fatalf("stats = %+v, want n=5 m=0", stats)
	}
	g, err := LoadBinaryFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("graph n=%d m=%d, want 5 isolated vertices", g.N(), g.M())
	}
}

func TestConvertEdgeListFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "edges.txt")
	text := strings.Join([]string{
		"# comment",
		"% also a comment",
		"0 1",
		"1 2",
		"2 2", // self-loop, dropped
		"1 0", // duplicate, collapsed
		"3 0",
	}, "\n")
	if err := os.WriteFile(src, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "edges.nsb2")
	stats, err := ConvertEdgeListFile(src, dst, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.N != 4 || stats.M != 3 {
		t.Fatalf("stats n=%d m=%d, want n=4 m=3", stats.N, stats.M)
	}
	g, err := LoadBinaryFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	want := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {3, 0}})
	if !graphsEqual(g, want) {
		t.Fatal("edge-list conversion produced the wrong graph")
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertEdgeListFile(bad, dst, ConvertOptions{}); err == nil {
		t.Error("one-field line accepted")
	}
}

// TestConvertBinaryFile covers the v1 → v2 migration path and the
// v2 → v2 (relabel) re-encode path.
func TestConvertBinaryFile(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(66)
	g := randomGraph(r, 40, 150)

	// v1 source.
	v1 := filepath.Join(dir, "old.nsb")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	dst := filepath.Join(dir, "migrated.nsb2")
	if _, err := ConvertBinaryFile(v1, dst, ConvertOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinaryFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("v1 migration changed the graph")
	}

	// v2 source, relabeled on re-encode.
	v2 := filepath.Join(dir, "new.nsb2")
	if err := g.WriteBinaryFile(v2, 0); err != nil {
		t.Fatal(err)
	}
	rel := filepath.Join(dir, "relabeled.nsb2")
	stats, err := ConvertBinaryFile(v2, rel, ConvertOptions{Relabel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Relabeled {
		t.Fatal("relabel flag lost on re-encode")
	}
	want, _, _ := g.RelabelByDegree()
	got, err = LoadBinaryFile(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(want, got) {
		t.Fatal("v2 relabel re-encode differs from the in-memory oracle")
	}
}

// TestConvertLeavesNoSpillFiles checks that sort runs and the temp
// output are cleaned up on both success and failure.
func TestConvertLeavesNoSpillFiles(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(67)
	edges := randomMultiEdges(r, 30, 300)
	dst := filepath.Join(dir, "ok.nsb2")
	if _, err := ConvertEdges(edgeSliceSource(edges), dst, ConvertOptions{BufferPairs: 16}); err != nil {
		t.Fatal(err)
	}
	// A failing source after some spills must also clean up.
	failing := func(emit func(u, v int32) error) error {
		for _, e := range edges {
			if err := emit(e[0], e[1]); err != nil {
				return err
			}
		}
		return os.ErrInvalid
	}
	if _, err := ConvertEdges(failing, filepath.Join(dir, "fail.nsb2"),
		ConvertOptions{BufferPairs: 16}); err == nil {
		t.Fatal("failing source did not propagate its error")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "ok.nsb2" {
			t.Errorf("leftover file %q after conversion", e.Name())
		}
	}
}
