//go:build linux || darwin

package graph

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy snapshot path; see mmap_stub.go for
// the heap-load fallback on other platforms.
const mmapSupported = true

// mmapBytes maps size bytes of f read-only and shared (the mapping is
// never written, so shared avoids private-COW accounting).
func mmapBytes(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapBytes(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Munmap(b)
}

// The madvise hints are best-effort: a failure (e.g. on filesystems
// that reject advice) only loses read-ahead tuning, never correctness,
// so errors are deliberately dropped.

// adviseSequential hints that the region is about to be scanned front
// to back (the open-time validation pass).
func adviseSequential(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_SEQUENTIAL)
	}
}

// adviseRandom hints that subsequent access is point lookups (skyline
// adjacency probes), disabling aggressive read-ahead.
func adviseRandom(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_RANDOM)
	}
}

// adviseWillNeed asks the kernel to start paging the region in now (a
// shard scan is about to walk it front to back).
func adviseWillNeed(b []byte) {
	if len(b) > 0 {
		_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	}
}
