package graph

import (
	"fmt"

	"neisky/internal/bitset"
)

// HubIndex is a word-packed adjacency summary for the graph's
// high-degree vertices ("hubs"): every vertex with degree ≥ Theta gets a
// dense n-bit bitmap of its open neighborhood. The skyline containment
// kernel N(u) ⊆ N[w] — the hot primitive of every algorithm in this
// repository — then runs against a hub w as one O(1) bitmap probe per
// element of N(u) (or, hub-versus-hub, as a straight word loop), instead
// of a merge or per-element binary search over w's huge adjacency list.
// Power-law graphs put hubs on the dominating side of almost every
// surviving pair, which is exactly the worst case of the merge path.
//
// Theta is auto-tuned from the build-time degree histogram so the total
// bitmap storage stays within O(m) words: the budget is hubBudgetWords(m)
// 64-bit words, i.e. comparable to the CSR arrays themselves. The
// threshold is degree-monotone — every vertex at least as high-degree as
// a hub is itself a hub — which the skyline kernels exploit (a viable
// dominator w of a hub u has deg(w) ≥ deg(u), hence is also a hub).
//
// The index is immutable after construction and safe for concurrent use.
type HubIndex struct {
	g     *Graph
	theta int          // minimum hub degree (MaxInt-like sentinel when no hubs)
	bits  []bitset.Set // per-vertex open-neighborhood bitmap, nil for non-hubs
	hubs  int          // number of indexed vertices
	arena *bitset.Arena
}

// minHubDegree is the smallest degree worth indexing: below the linear-
// scan cutoff the merge path is already a handful of comparisons.
const minHubDegree = linearScanMax + 1

// hubBudgetWords returns the bitmap storage budget in 64-bit words for a
// graph with m edges: 2m words ≈ 2× the CSR adjacency array's footprint.
func hubBudgetWords(m int) int { return 2 * m }

// Hub returns the graph's hub-bitmap index, building it on first use.
// The index is cached on the graph; concurrent callers share one build.
func (g *Graph) Hub() *HubIndex {
	if h := g.hub.Load(); h != nil {
		return h
	}
	g.hubOnce.Do(func() { g.hub.Store(buildHubIndex(g)) })
	return g.hub.Load()
}

// buildHubIndex materializes bitmaps for every vertex whose degree
// reaches the auto-tuned threshold.
func buildHubIndex(g *Graph) *HubIndex {
	n := g.N()
	h := &HubIndex{g: g, theta: 1 << 30}
	if n == 0 || g.M() == 0 {
		return h
	}
	wordsPer := bitset.WordsFor(n)
	maxHubs := hubBudgetWords(g.M()) / wordsPer
	if maxHubs == 0 {
		return h
	}
	// Smallest theta ≥ minHubDegree whose suffix count fits the budget.
	hist := g.degHist
	theta, suffix := len(hist), 0
	for d := len(hist) - 1; d >= minHubDegree; d-- {
		if suffix+hist[d] > maxHubs {
			break
		}
		suffix += hist[d]
		theta = d
	}
	if suffix == 0 {
		return h
	}
	h.theta = theta
	h.hubs = suffix
	h.bits = make([]bitset.Set, n)
	h.arena = bitset.NewArena(suffix, n)
	slot := 0
	for u := int32(0); u < int32(n); u++ {
		if g.Degree(u) < theta {
			continue
		}
		b := h.arena.At(slot)
		slot++
		for _, v := range g.Neighbors(u) {
			b.Set(v)
		}
		h.bits[u] = b
	}
	return h
}

// Theta returns the hub degree threshold (a large sentinel when the
// graph has no hubs).
func (h *HubIndex) Theta() int { return h.theta }

// Hubs returns the number of indexed vertices.
func (h *HubIndex) Hubs() int { return h.hubs }

// Bytes reports the index's bitmap storage footprint.
func (h *HubIndex) Bytes() int {
	if h.arena == nil {
		return 0
	}
	return h.arena.Bytes() + 24*len(h.bits)
}

// IsHub reports whether u has a bitmap.
func (h *HubIndex) IsHub(u int32) bool { return h.bits != nil && h.bits[u] != nil }

// Bits returns u's open-neighborhood bitmap, or nil when u is not a hub.
func (h *HubIndex) Bits(u int32) bitset.Set {
	if h.bits == nil {
		return nil
	}
	return h.bits[u]
}

// Has reports whether the edge (u, v) exists, in O(1) when u is a hub.
func (h *HubIndex) Has(u, v int32) bool {
	if b := h.Bits(u); b != nil {
		return b.Test(v)
	}
	return h.g.Has(u, v)
}

// SubsetOpenInClosed reports N(u) ⊆ N[v] (paper Definition 1) through
// the fastest applicable kernel:
//
//   - hub v, hub u: word-parallel AndNot loop over the two bitmaps,
//     tolerating the one element v ∈ N(u) that N(v)'s bitmap cannot hold;
//   - hub v only: one bitmap probe per element of N(u) — O(deg u)
//     regardless of deg(v);
//   - otherwise: the adaptive merge/gallop fallback.
func (h *HubIndex) SubsetOpenInClosed(u, v int32) bool {
	if bv := h.Bits(v); bv != nil {
		nu := h.g.Neighbors(u)
		if bu := h.Bits(u); bu != nil && 2*len(nu) >= bv.Words() {
			return bu.SubsetOfExcept(bv, v)
		}
		for _, x := range nu {
			if x != v && !bv.Test(x) {
				return false
			}
		}
		return true
	}
	return subsetOpenInClosedAdaptive(h.g, u, v)
}

// SubsetClosedInClosed reports N[u] ⊆ N[v] (paper Definition 4) through
// the hub kernels.
func (h *HubIndex) SubsetClosedInClosed(u, v int32) bool {
	if u != v && !h.Has(v, u) {
		return false
	}
	return h.SubsetOpenInClosed(u, v)
}

// subsetOpenInClosedAdaptive is the non-hub containment fallback: the
// legacy merge when the two lists are comparable, per-element galloping
// probes into N(v) when deg(v) dwarfs deg(u) (cost deg(u)·log deg(v)
// instead of deg(u)+deg(v)).
func subsetOpenInClosedAdaptive(g *Graph, u, v int32) bool {
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	if len(nv) > 4*len(nu)+16 {
		for _, x := range nu {
			if x != v && !searchSorted(nv, x) {
				return false
			}
		}
		return true
	}
	return g.SubsetOpenInClosed(u, v)
}

func (h *HubIndex) String() string {
	return fmt.Sprintf("hubindex{theta=%d hubs=%d bytes=%d}", h.theta, h.hubs, h.Bytes())
}
