package graph

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// External merge sort over directed vertex pairs, the workhorse of the
// streaming edge-list → CSR converter. Pairs accumulate in a bounded
// in-memory buffer; when it fills, the sorted buffer spills to a
// temporary run file (raw little-endian int32 pairs). Merge replays the
// runs plus the resident tail through a k-way heap in global (u, v)
// order with exact-duplicate elimination, and may be called repeatedly
// — the converter streams the same sorted pair sequence once to count
// degrees and once to emit the adjacency array — because runs seek back
// to the start on every call.
//
// Memory is O(limit + #runs · ioBuf) regardless of how many pairs are
// added; disk is one 8-byte record per buffered pair.

// extsortIOBuf is the per-run buffered-I/O size for spilling and
// merging (1 MiB keeps merge reads sequential-friendly without letting
// a wide merge dominate the converter's bounded footprint).
const extsortIOBuf = 1 << 20

// pairSorter sorts directed (u, v) int32 pairs with bounded memory.
type pairSorter struct {
	dir       string
	limit     int
	buf       [][2]int32
	bufSorted bool
	runs      []*os.File

	maxBuffered int // high-water mark of len(buf), for the RSS-bound tests
}

// newPairSorter returns a sorter spilling to dir once more than limit
// pairs are buffered.
func newPairSorter(dir string, limit int) *pairSorter {
	if limit < 2 {
		limit = 2
	}
	return &pairSorter{dir: dir, limit: limit}
}

func sortPairs(p [][2]int32) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

// Add buffers one pair, spilling a sorted run when the buffer is full.
func (s *pairSorter) Add(u, v int32) error {
	s.buf = append(s.buf, [2]int32{u, v})
	s.bufSorted = false
	if len(s.buf) > s.maxBuffered {
		s.maxBuffered = len(s.buf)
	}
	if len(s.buf) >= s.limit {
		return s.spill()
	}
	return nil
}

// spill sorts the resident buffer and writes it as a new run file.
func (s *pairSorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	sortPairs(s.buf)
	f, err := os.CreateTemp(s.dir, "nsb2sort-*.run")
	if err != nil {
		return fmt.Errorf("graph: extsort spill: %w", err)
	}
	bw := bufio.NewWriterSize(f, extsortIOBuf)
	var rec [8]byte
	for _, p := range s.buf {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(p[0]))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(p[1]))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return fmt.Errorf("graph: extsort spill: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("graph: extsort spill: %w", err)
	}
	s.runs = append(s.runs, f)
	s.buf = s.buf[:0]
	return nil
}

// Close deletes every spilled run. The sorter is unusable afterwards.
func (s *pairSorter) Close() error {
	var first error
	for _, f := range s.runs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(f.Name()); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.buf = nil
	return first
}

// pairStream yields pairs in sorted order; ok=false signals exhaustion.
type pairStream interface {
	next() (p [2]int32, ok bool, err error)
}

// memStream iterates the sorter's sorted resident buffer.
type memStream struct {
	buf [][2]int32
	i   int
}

func (m *memStream) next() ([2]int32, bool, error) {
	if m.i >= len(m.buf) {
		return [2]int32{}, false, nil
	}
	p := m.buf[m.i]
	m.i++
	return p, true, nil
}

// runStream decodes one spilled run file.
type runStream struct {
	br *bufio.Reader
}

func (r *runStream) next() ([2]int32, bool, error) {
	var rec [8]byte
	if _, err := io.ReadFull(r.br, rec[:]); err != nil {
		if err == io.EOF {
			return [2]int32{}, false, nil
		}
		return [2]int32{}, false, fmt.Errorf("graph: extsort run read: %w", err)
	}
	return [2]int32{
		int32(binary.LittleEndian.Uint32(rec[0:4])),
		int32(binary.LittleEndian.Uint32(rec[4:8])),
	}, true, nil
}

// mergeHeap orders stream heads by (u, v); ties are broken arbitrarily
// (duplicates collapse on emit anyway).
type mergeHeap []mergeItem

type mergeItem struct {
	p   [2]int32
	src int
}

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if h[i].p[0] != h[j].p[0] {
		return h[i].p[0] < h[j].p[0]
	}
	return h[i].p[1] < h[j].p[1]
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Merge streams every buffered pair in global sorted order, collapsing
// exact duplicates, and calls emit for each survivor. It may be called
// multiple times; each call replays the full sequence.
func (s *pairSorter) Merge(emit func(u, v int32) error) error {
	if !s.bufSorted {
		sortPairs(s.buf)
		s.bufSorted = true
	}
	streams := make([]pairStream, 0, len(s.runs)+1)
	for _, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("graph: extsort merge: %w", err)
		}
		streams = append(streams, &runStream{br: bufio.NewReaderSize(f, extsortIOBuf)})
	}
	if len(s.buf) > 0 {
		streams = append(streams, &memStream{buf: s.buf})
	}
	h := make(mergeHeap, 0, len(streams))
	for i, st := range streams {
		p, ok, err := st.next()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, mergeItem{p: p, src: i})
		}
	}
	heap.Init(&h)
	havePrev := false
	var prev [2]int32
	for len(h) > 0 {
		top := h[0]
		p, ok, err := streams[top.src].next()
		if err != nil {
			return err
		}
		if ok {
			h[0] = mergeItem{p: p, src: top.src}
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
		if havePrev && top.p == prev {
			continue
		}
		if havePrev && (top.p[0] < prev[0] || (top.p[0] == prev[0] && top.p[1] < prev[1])) {
			return errors.New("graph: extsort merge: runs out of order (corrupted spill)")
		}
		prev, havePrev = top.p, true
		if err := emit(top.p[0], top.p[1]); err != nil {
			return err
		}
	}
	return nil
}
