package graph

import "math"

// Analysis helpers used by the dataset reports and the experiment
// harness: degree histograms, triangle counts, clustering coefficients
// and a double-sweep diameter lower bound.

// DegreeHistogram returns hist[d] = number of vertices with degree d.
// The histogram is memoized at CSR build time; this returns a copy the
// caller may modify.
func (g *Graph) DegreeHistogram() []int {
	hist := make([]int, len(g.degHist))
	copy(hist, g.degHist)
	return hist
}

// Triangles counts the triangles of g exactly using the oriented
// neighbor-intersection method: each triangle is counted once at its
// (degree, ID)-smallest vertex. O(Σ min(deg u, deg v)) over edges.
func (g *Graph) Triangles() int64 {
	rank := func(u int32) int64 {
		return int64(g.Degree(u))<<32 | int64(uint32(u))
	}
	var count int64
	for u := int32(0); u < int32(g.N()); u++ {
		ru := rank(u)
		for _, v := range g.Neighbors(u) {
			if rank(v) <= ru {
				continue
			}
			// Intersect the higher-oriented neighbors of u and v.
			nu, nv := g.Neighbors(u), g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					w := nu[i]
					if rank(w) > rank(v) {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

// Wedges counts paths of length two: Σ deg(v)·(deg(v)−1)/2.
func (g *Graph) Wedges() int64 {
	var w int64
	for u := int32(0); u < int32(g.N()); u++ {
		d := int64(g.Degree(u))
		w += d * (d - 1) / 2
	}
	return w
}

// GlobalClustering returns 3·triangles / wedges (0 for wedge-free
// graphs).
func (g *Graph) GlobalClustering() float64 {
	w := g.Wedges()
	if w == 0 {
		return 0
	}
	return 3 * float64(g.Triangles()) / float64(w)
}

// AverageLocalClustering returns the mean local clustering coefficient
// over vertices of degree ≥ 2.
func (g *Graph) AverageLocalClustering() float64 {
	total, counted := 0.0, 0
	for u := int32(0); u < int32(g.N()); u++ {
		d := g.Degree(u)
		if d < 2 {
			continue
		}
		links := 0
		nbrs := g.Neighbors(u)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if g.Has(nbrs[i], nbrs[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / (float64(d) * float64(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// DiameterLowerBound estimates the diameter with the double-sweep
// heuristic: BFS from start, then BFS from the farthest vertex found.
// The result is an exact lower bound on the diameter of start's
// component.
func (g *Graph) DiameterLowerBound(start int32) int {
	if g.N() == 0 {
		return 0
	}
	far, ecc1 := g.farthestFrom(start)
	_, ecc2 := g.farthestFrom(far)
	if ecc2 > ecc1 {
		return ecc2
	}
	return ecc1
}

func (g *Graph) farthestFrom(src int32) (far int32, ecc int) {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	dist[src] = 0
	queue = append(queue, src)
	far = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if int(dist[u]) > ecc {
			ecc = int(dist[u])
			far = u
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return far, ecc
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (NaN-free: 0 when degenerate).
func (g *Graph) DegreeAssortativity() float64 {
	var sx, sy, sxx, syy, sxy float64
	var cnt float64
	g.Edges(func(u, v int32) {
		// Count each edge in both orientations for symmetry.
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			sx += p[0]
			sy += p[1]
			sxx += p[0] * p[0]
			syy += p[1] * p[1]
			sxy += p[0] * p[1]
			cnt++
		}
	})
	if cnt == 0 {
		return 0
	}
	num := sxy/cnt - (sx/cnt)*(sy/cnt)
	den := math.Sqrt((sxx/cnt - (sx/cnt)*(sx/cnt)) * (syy/cnt - (sy/cnt)*(sy/cnt)))
	if den == 0 {
		return 0
	}
	return num / den
}
