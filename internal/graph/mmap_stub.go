//go:build !(linux || darwin)

package graph

import (
	"errors"
	"os"
)

// Platforms without a wired-up mmap syscall fall back to heap-loading
// snapshots in OpenMmap; the Mapped lifecycle is identical, only
// Mmapped() reports false.
const mmapSupported = false

func mmapBytes(f *os.File, size int) ([]byte, error) {
	return nil, errors.New("graph: mmap unsupported on this platform")
}

func munmapBytes(b []byte) error { return nil }

func adviseSequential(b []byte) {}

func adviseRandom(b []byte) {}

func adviseWillNeed(b []byte) {}
