package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialization of the CSR representation: a fixed header
// (magic, version, n, m) followed by the offsets and adjacency arrays
// in little-endian int32. Loading is a straight copy — no edge-list
// re-sorting — so large snapshots round-trip quickly.

const (
	binaryMagic   = 0x4e53_4b59 // "NSKY"
	binaryVersion = 1

	// maxBinaryN caps the vertex count a binary header may claim. A
	// 16-byte header must not be able to trigger a multi-gigabyte
	// offsets allocation; 2^28 vertices is far beyond any graph this
	// repo handles while keeping the worst-case offsets array at 1 GiB.
	maxBinaryN = 1 << 28
	// maxBinaryM caps the claimed edge count for the same reason.
	maxBinaryM = 1 << 30
	// binaryChunk is the int32 granularity of the hardened array reads:
	// allocations grow with bytes actually present in the input, so a
	// header overstating n or m fails after at most one chunk (256 KiB)
	// of over-allocation instead of committing to the full claim.
	binaryChunk = 1 << 16
)

// readInt32Array reads exactly count little-endian int32s from br in
// binaryChunk-sized steps. The destination grows chunk by chunk, so
// memory use tracks the bytes the reader can actually produce rather
// than the (possibly hostile) declared count.
func readInt32Array(br *bufio.Reader, count int, what string) ([]int32, error) {
	out := make([]int32, 0, min(count, binaryChunk))
	for len(out) < count {
		step := min(count-len(out), binaryChunk)
		chunk := make([]int32, step)
		if err := binary.Read(br, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: binary %s: truncated after %d of %d entries: %w",
				what, len(out), count, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// WriteBinary serializes the graph to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []int32{binaryMagic, binaryVersion, int32(g.N()), int32(g.M())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, validating
// structural invariants so corrupted input cannot produce an
// inconsistent Graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var header [4]int32
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if header[0] != binaryMagic {
		return nil, errors.New("graph: not a neisky binary graph (bad magic)")
	}
	if header[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", header[1])
	}
	n, m := int(header[2]), int(header[3])
	if n < 0 || m < 0 || n > maxBinaryN || m > maxBinaryM {
		return nil, errors.New("graph: implausible binary header")
	}
	// The arrays are read in chunks so a header claiming huge n/m with a
	// short body fails cheaply; the offsets are validated before the
	// adjacency is touched, so a hostile offsets array can never index
	// out of a consistent CSR.
	offsets, err := readInt32Array(br, n+1, "offsets")
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 || offsets[n] != int32(2*m) {
		return nil, errors.New("graph: binary offsets endpoints invalid")
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, errors.New("graph: binary offsets not monotone")
		}
	}
	adj, err := readInt32Array(br, 2*m, "adjacency")
	if err != nil {
		return nil, err
	}
	// Validate the remaining invariants: adjacency IDs in range and
	// strictly sorted per window; symmetry is implied by construction
	// but spot-checked cheaply via degree sums.
	for i := 0; i < n; i++ {
		window := adj[offsets[i]:offsets[i+1]]
		for j, v := range window {
			if v < 0 || v >= int32(n) || v == int32(i) {
				return nil, errors.New("graph: binary adjacency out of range")
			}
			if j > 0 && window[j-1] >= v {
				return nil, errors.New("graph: binary adjacency not sorted")
			}
		}
	}
	g := (&Graph{offsets: offsets, adj: adj, m: m}).finish()
	// Symmetry check: every edge must appear in both windows.
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Has(v, u) {
				return nil, errors.New("graph: binary adjacency asymmetric")
			}
		}
	}
	return g, nil
}
