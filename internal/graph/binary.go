package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary serialization of the CSR representation: a fixed header
// (magic, version, n, m) followed by the offsets and adjacency arrays
// in little-endian int32. Loading is a straight copy — no edge-list
// re-sorting — so large snapshots round-trip quickly.

const (
	binaryMagic   = 0x4e53_4b59 // "NSKY"
	binaryVersion = 1
)

// WriteBinary serializes the graph to w.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []int32{binaryMagic, binaryVersion, int32(g.N()), int32(g.M())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, validating
// structural invariants so corrupted input cannot produce an
// inconsistent Graph.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var header [4]int32
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
	}
	if header[0] != binaryMagic {
		return nil, errors.New("graph: not a neisky binary graph (bad magic)")
	}
	if header[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", header[1])
	}
	n, m := int(header[2]), int(header[3])
	if n < 0 || m < 0 || m > (1<<30) {
		return nil, errors.New("graph: implausible binary header")
	}
	offsets := make([]int32, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("graph: binary offsets: %w", err)
	}
	adj := make([]int32, 2*m)
	if err := binary.Read(br, binary.LittleEndian, adj); err != nil {
		return nil, fmt.Errorf("graph: binary adjacency: %w", err)
	}
	// Validate invariants: offsets monotone ending at 2m; adjacency IDs
	// in range and strictly sorted per window; symmetry is implied by
	// construction but spot-checked cheaply via degree sums.
	if offsets[0] != 0 || offsets[n] != int32(2*m) {
		return nil, errors.New("graph: binary offsets endpoints invalid")
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, errors.New("graph: binary offsets not monotone")
		}
		window := adj[offsets[i]:offsets[i+1]]
		for j, v := range window {
			if v < 0 || v >= int32(n) || v == int32(i) {
				return nil, errors.New("graph: binary adjacency out of range")
			}
			if j > 0 && window[j-1] >= v {
				return nil, errors.New("graph: binary adjacency not sorted")
			}
		}
	}
	g := (&Graph{offsets: offsets, adj: adj, m: m}).finish()
	// Symmetry check: every edge must appear in both windows.
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Has(v, u) {
				return nil, errors.New("graph: binary adjacency asymmetric")
			}
		}
	}
	return g, nil
}
