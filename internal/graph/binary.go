package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary serialization of the CSR representation, in two versions.
//
// Version 1 (legacy): a 16-byte header (magic, version, n, m as
// little-endian int32) followed by the offsets and adjacency arrays in
// little-endian int32. Loading is a straight copy — no edge-list
// re-sorting — so snapshots round-trip quickly.
//
// Version 2 (the mmap snapshot format, ".nsb2"): a 32-byte 8-byte-aligned
// header — magic (uint32), version (uint32), n (int64), m (int64),
// flags (uint64) — followed by the offsets array ((n+1)·int32), zero
// padding up to the next 8-byte boundary, then the adjacency array
// (2m·int32). Every array therefore starts at an 8-byte-aligned file
// offset, so an mmap of the file can expose the arrays as zero-copy
// int32 slices (see mmap.go). Flags bit 0 records that the snapshot was
// written with degree-descending relabeling (informational; the ids are
// dense either way).
//
// ReadBinary accepts both versions; writers choose with WriteBinary (v1)
// or WriteBinary2 (v2).

const (
	binaryMagic    = 0x4e53_4b59 // "NSKY"
	binaryVersion  = 1
	binaryVersion2 = 2

	// binaryHeader2Size is the fixed v2 header length in bytes.
	binaryHeader2Size = 32

	// FlagDegreeRelabeled marks a v2 snapshot whose vertex ids were
	// assigned in degree-descending order at conversion time.
	FlagDegreeRelabeled = uint64(1) << 0

	// FlagChecksum marks a v2 snapshot carrying an 8-byte footer after
	// the adjacency array: a CRC32C (Castagnoli) of the payload — every
	// byte after the header — in the first 4 bytes, 4 reserved zero
	// bytes after. Readers validate the footer when the flag is set;
	// files without it (older snapshots) still load. Both writers set it
	// unconditionally.
	FlagChecksum = uint64(1) << 1

	// binary2FooterSize is the checksum footer length in bytes (8, so the
	// footer itself keeps the file 8-byte aligned).
	binary2FooterSize = 8

	// maxBinaryN caps the vertex count a v1 binary header may claim. A
	// 16-byte header must not be able to trigger a multi-gigabyte
	// offsets allocation; 2^28 vertices is far beyond any graph the v1
	// format handles while keeping the worst-case offsets array at 1 GiB.
	maxBinaryN = 1 << 28
	// maxBinaryM caps the claimed v1 edge count for the same reason.
	maxBinaryM = 1 << 30

	// maxBinary2N / maxBinary2M are the v2 caps: ids stay int32 and the
	// offsets array stays int32-valued, so n ≤ 2^30 and 2m ≤ 2^31-1.
	// Allocation is still chunk-bounded, so a hostile header claiming the
	// caps fails after one chunk, not after a 4 GiB commit.
	maxBinary2N = 1 << 30
	maxBinary2M = 1<<30 - 1

	// binaryChunk is the int32 granularity of the hardened array reads:
	// allocations grow with bytes actually present in the input, so a
	// header overstating n or m fails after at most one chunk (256 KiB)
	// of over-allocation instead of committing to the full claim.
	binaryChunk = 1 << 16
)

// crc2Table is the CRC32C (Castagnoli) table behind FlagChecksum —
// deliberately the same polynomial as internal/wal's record framing, so
// the durability formats share one corruption-detection story.
var crc2Table = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees written bytes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, crc2Table, p)
	return c.w.Write(p)
}

// crcReader accumulates a running CRC32C over bytes read.
type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc2Table, p[:n])
	return n, err
}

// readInt32Array reads exactly count little-endian int32s from r in
// binaryChunk-sized steps. The destination grows chunk by chunk, so
// memory use tracks the bytes the reader can actually produce rather
// than the (possibly hostile) declared count.
func readInt32Array(r io.Reader, count int, what string) ([]int32, error) {
	out := make([]int32, 0, min(count, binaryChunk))
	for len(out) < count {
		step := min(count-len(out), binaryChunk)
		chunk := make([]int32, step)
		if err := binary.Read(r, binary.LittleEndian, chunk); err != nil {
			return nil, fmt.Errorf("graph: binary %s: truncated after %d of %d entries: %w",
				what, len(out), count, err)
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// WriteBinary serializes the graph to w in the legacy v1 format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := []int32{binaryMagic, binaryVersion, int32(g.N()), int32(g.M())}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	return bw.Flush()
}

// binary2Header is the fixed-size v2 header in file order.
type binary2Header struct {
	Magic   uint32
	Version uint32
	N       int64
	M       int64
	Flags   uint64
}

// binary2Padding returns the number of zero bytes between the offsets
// array and the adjacency array for an n-vertex v2 snapshot: the offsets
// occupy 4(n+1) bytes after the 32-byte header, so the gap is 4 bytes
// exactly when n is even.
func binary2Padding(n int) int {
	return (8 - (binaryHeader2Size+4*(n+1))%8) % 8
}

// WriteBinary2 serializes the graph to w in the 8-byte-aligned v2
// format, recording flags in the header. The payload CRC32C footer is
// always written (FlagChecksum is OR'd into flags).
func (g *Graph) WriteBinary2(w io.Writer, flags uint64) error {
	bw := bufio.NewWriter(w)
	h := binary2Header{
		Magic:   binaryMagic,
		Version: binaryVersion2,
		N:       int64(g.N()),
		M:       int64(g.M()),
		Flags:   flags | FlagChecksum,
	}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, g.offsets); err != nil {
		return err
	}
	var pad [8]byte
	if _, err := cw.Write(pad[:binary2Padding(g.N())]); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, g.adj); err != nil {
		return err
	}
	var ftr [binary2FooterSize]byte
	binary.LittleEndian.PutUint32(ftr[0:4], cw.sum)
	if _, err := bw.Write(ftr[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// validateCSR checks every structural invariant a trusted Graph relies
// on: offsets endpoints and monotonicity, adjacency ids in range, no
// self-loops, strict per-window sorting. It does not check symmetry;
// see checkSymmetric.
func validateCSR(offsets, adj []int32, n, m int) error {
	if len(offsets) != n+1 || len(adj) != 2*m {
		return errors.New("graph: binary array lengths inconsistent with header")
	}
	if offsets[0] != 0 || offsets[n] != int32(2*m) {
		return errors.New("graph: binary offsets endpoints invalid")
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return errors.New("graph: binary offsets not monotone")
		}
	}
	for i := 0; i < n; i++ {
		window := adj[offsets[i]:offsets[i+1]]
		for j, v := range window {
			if v < 0 || v >= int32(n) || v == int32(i) {
				return errors.New("graph: binary adjacency out of range")
			}
			if j > 0 && window[j-1] >= v {
				return errors.New("graph: binary adjacency not sorted")
			}
		}
	}
	return nil
}

// checkSymmetric verifies that every directed edge has its reverse,
// using the galloping Has probe (O(Σ deg(u)·log deg(v))).
func checkSymmetric(g *Graph) error {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.Has(v, u) {
				return errors.New("graph: binary adjacency asymmetric")
			}
		}
	}
	return nil
}

// ReadBinary deserializes a graph written by WriteBinary or
// WriteBinary2, validating structural invariants so corrupted input
// cannot produce an inconsistent Graph. The arrays are read in chunks
// so a header claiming huge n/m with a short body fails cheaply; the
// offsets are validated before the adjacency is touched, so a hostile
// offsets array can never index out of a consistent CSR.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("graph: not a neisky binary graph (bad magic)")
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	var n, m int
	var flags uint64
	switch version {
	case binaryVersion:
		var sizes [2]int32
		if err := binary.Read(br, binary.LittleEndian, &sizes); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
		n, m = int(sizes[0]), int(sizes[1])
		if n < 0 || m < 0 || n > maxBinaryN || m > maxBinaryM {
			return nil, errors.New("graph: implausible binary header")
		}
	case binaryVersion2:
		var rest struct {
			N, M  int64
			Flags uint64
		}
		if err := binary.Read(br, binary.LittleEndian, &rest); err != nil {
			return nil, fmt.Errorf("graph: binary header: %w", err)
		}
		if rest.N < 0 || rest.M < 0 || rest.N > maxBinary2N || rest.M > maxBinary2M {
			return nil, errors.New("graph: implausible binary header")
		}
		n, m = int(rest.N), int(rest.M)
		flags = rest.Flags
	default:
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	// When the snapshot carries a checksum footer, every payload byte is
	// accumulated into a CRC32C on the way through, validated against the
	// footer before the structural checks run.
	var src io.Reader = br
	var cr *crcReader
	if flags&FlagChecksum != 0 {
		cr = &crcReader{r: br}
		src = cr
	}
	offsets, err := readInt32Array(src, n+1, "offsets")
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 || offsets[n] != int32(2*m) {
		return nil, errors.New("graph: binary offsets endpoints invalid")
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, errors.New("graph: binary offsets not monotone")
		}
	}
	if version == binaryVersion2 {
		var pad [8]byte
		if _, err := io.ReadFull(src, pad[:binary2Padding(n)]); err != nil {
			return nil, fmt.Errorf("graph: binary padding: %w", err)
		}
	}
	adj, err := readInt32Array(src, 2*m, "adjacency")
	if err != nil {
		return nil, err
	}
	if cr != nil {
		var ftr [binary2FooterSize]byte
		if _, err := io.ReadFull(br, ftr[:]); err != nil {
			return nil, fmt.Errorf("graph: binary checksum footer: %w", err)
		}
		if got := binary.LittleEndian.Uint32(ftr[0:4]); got != cr.sum {
			return nil, fmt.Errorf("graph: binary payload checksum mismatch (footer %08x, computed %08x)", got, cr.sum)
		}
	}
	if err := validateCSR(offsets, adj, n, m); err != nil {
		return nil, err
	}
	g := (&Graph{offsets: offsets, adj: adj, m: m}).finish()
	if err := checkSymmetric(g); err != nil {
		return nil, err
	}
	return g, nil
}
