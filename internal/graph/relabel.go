package graph

import (
	"fmt"
	"sort"
)

// Degree-descending vertex relabeling. The skyline kernels' cache
// behaviour is dominated by the high-degree side of every probe: hub
// bitmaps are dense n-bit rows, MS-BFS packs 64 sources per word, and
// the refine phase hammers the adjacency windows of a graph's hubs.
// Assigning ids in degree-descending order concentrates all of that
// traffic at the low end of the id space — hub bitmap words for the
// vertices that matter sit in the same cache lines, hub adjacency
// windows cluster at the front of the adjacency array, and the filter
// scan touches hot vertices first. Real edge-list datasets arrive with
// arbitrary ids, so the streaming converter applies this permutation at
// conversion time (ConvertOptions.Relabel); the in-memory form below is
// the oracle the tests compare against.

// DegreeDescendingPerm returns the degree-descending relabeling of g as
// a pair of inverse maps: oldToNew[u] is u's new id, newToOld[x] the
// original id of new vertex x. Ties break by ascending old id, so the
// permutation is deterministic.
func (g *Graph) DegreeDescendingPerm() (oldToNew, newToOld []int32) {
	n := g.N()
	newToOld = make([]int32, n)
	for i := range newToOld {
		newToOld[i] = int32(i)
	}
	sort.SliceStable(newToOld, func(i, j int) bool {
		return g.Degree(newToOld[i]) > g.Degree(newToOld[j])
	})
	oldToNew = make([]int32, n)
	for x, old := range newToOld {
		oldToNew[old] = int32(x)
	}
	return oldToNew, newToOld
}

// Relabel returns a copy of g with vertex u renamed oldToNew[u], which
// must be a permutation of 0..n-1 (checked; a bad map panics — callers
// construct the permutation, so this is a programmer error, not input).
// The CSR is built directly — degrees are permutation-invariant — so
// the cost is O(n + m·log dmax) for the per-window re-sort.
func (g *Graph) Relabel(oldToNew []int32) *Graph {
	n := g.N()
	if len(oldToNew) != n {
		panic(fmt.Sprintf("graph: Relabel: perm has %d entries for %d vertices", len(oldToNew), n))
	}
	offsets := make([]int32, n+1)
	seen := make([]bool, n)
	for old := int32(0); old < int32(n); old++ {
		x := oldToNew[old]
		if x < 0 || x >= int32(n) {
			panic("graph: Relabel: perm value out of range")
		}
		if seen[x] {
			panic("graph: Relabel: perm is not a bijection")
		}
		seen[x] = true
		offsets[x+1] = int32(g.Degree(old))
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	adj := make([]int32, offsets[n])
	for old := int32(0); old < int32(n); old++ {
		x := oldToNew[old]
		w := adj[offsets[x]:offsets[x+1]]
		for i, v := range g.Neighbors(old) {
			w[i] = oldToNew[v]
		}
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	}
	return (&Graph{offsets: offsets, adj: adj, m: g.m}).finish()
}

// RelabelByDegree applies the degree-descending permutation and returns
// the relabeled graph together with both id maps. Results computed on
// the relabeled graph map back to original ids via newToOld.
func (g *Graph) RelabelByDegree() (relabeled *Graph, oldToNew, newToOld []int32) {
	oldToNew, newToOld = g.DegreeDescendingPerm()
	return g.Relabel(oldToNew), oldToNew, newToOld
}

// MapVertices translates a vertex list through an id map (for example
// newToOld from RelabelByDegree), returning a fresh slice.
func MapVertices(vs []int32, idMap []int32) []int32 {
	out := make([]int32, len(vs))
	for i, v := range vs {
		out[i] = idMap[v]
	}
	return out
}
