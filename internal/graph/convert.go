package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Streaming edge-list → v2 CSR conversion. The whole point is that the
// graph never exists in memory: edges stream through the external
// sorter (extsort.go) onto disk, degrees are counted from the sorted
// replay into an O(n) array, and the adjacency array is written to the
// snapshot directly from a second replay. Peak memory is
// O(n + sort buffer), independent of the edge count — a
// hundred-million-edge file converts in the same footprint as a
// million-edge one.
//
// Pipeline (two merge replays; three with relabeling):
//
//	source edges ──► pairSorter #1 (both directions, self-loops dropped)
//	  replay 1: degree count → n, m, offsets
//	  [Relabel: degree-descending perm; replay 2 remaps ids into
//	   pairSorter #2, whose replays take over below]
//	  write header + offsets + padding
//	  replay 2: emit v of every sorted, deduplicated (u, v) → adjacency
//
// The sorted, deduplicated directed-pair sequence in (u, v) order IS
// the CSR adjacency array read left to right, which is what makes the
// placement pass a pure stream.

// EdgeSource feeds undirected edges to the converter. Implementations
// must be replay-free: the converter consumes the source exactly once.
// Self-loops are dropped and duplicate edges collapse downstream, so
// sources need not deduplicate.
type EdgeSource func(emit func(u, v int32) error) error

// ConvertOptions tunes a streaming conversion.
type ConvertOptions struct {
	// Relabel assigns vertex ids in degree-descending order at
	// conversion time (and sets FlagDegreeRelabeled in the snapshot),
	// trading one extra external-sort pass for cache-dense hub ids.
	Relabel bool

	// N forces a minimum vertex count (isolated tail vertices are
	// otherwise invisible to an edge stream). Zero means max id + 1.
	N int

	// BufferPairs is the external sorter's in-memory run size in
	// directed pairs; it is the converter's memory knob (8 bytes per
	// pair). Zero selects 1<<22 pairs ≈ 32 MiB.
	BufferPairs int

	// TmpDir is the spill directory for sort runs. Empty means the
	// destination's directory, keeping spill and output on one volume.
	TmpDir string
}

// ConvertStats reports what a conversion did; the bounded-memory tests
// pin MaxBufferedPairs ≤ BufferPairs no matter how many edges streamed.
type ConvertStats struct {
	N, M          int
	DirectedPairs int64 // pairs fed to the sorter (2× edges, dups included)
	Runs          int   // sort runs spilled to disk
	MaxBuffered   int   // high-water mark of resident sorted pairs
	Relabeled     bool
}

func (o *ConvertOptions) fill(dst string) {
	if o.BufferPairs <= 0 {
		o.BufferPairs = 1 << 22
	}
	if o.TmpDir == "" {
		o.TmpDir = filepath.Dir(dst)
	}
}

// ConvertEdges streams src into a v2 binary CSR snapshot at dst in
// bounded memory, returning conversion statistics.
func ConvertEdges(src EdgeSource, dst string, opts ConvertOptions) (ConvertStats, error) {
	opts.fill(dst)
	var stats ConvertStats
	s1 := newPairSorter(opts.TmpDir, opts.BufferPairs)
	defer s1.Close()

	maxID := int32(-1)
	err := src(func(u, v int32) error {
		if u < 0 || v < 0 {
			return errors.New("graph: convert: negative vertex id")
		}
		if int(u) >= maxBinary2N || int(v) >= maxBinary2N {
			return fmt.Errorf("graph: convert: vertex id %d exceeds the v2 cap (%d); sparse id spaces need ReadEdgeList compaction first", max(u, v), maxBinary2N)
		}
		if u == v {
			return nil
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		stats.DirectedPairs += 2
		if err := s1.Add(u, v); err != nil {
			return err
		}
		return s1.Add(v, u)
	})
	if err != nil {
		return stats, err
	}

	n := int(maxID) + 1
	if opts.N > n {
		n = opts.N
	}
	if n > maxBinary2N {
		return stats, fmt.Errorf("graph: convert: %d vertices exceeds the v2 cap", n)
	}

	// Replay 1: degree count over the deduplicated sorted stream.
	// deg[u+1] holds deg(u) so the in-place prefix sum below turns the
	// same array into the offsets.
	deg := make([]int32, n+1)
	var directed int64
	err = s1.Merge(func(u, v int32) error {
		deg[u+1]++
		directed++
		return nil
	})
	if err != nil {
		return stats, err
	}
	if directed > math.MaxInt32-1 {
		return stats, errors.New("graph: convert: adjacency exceeds int32 offsets")
	}
	m := int(directed / 2)
	if m > maxBinary2M {
		return stats, fmt.Errorf("graph: convert: %d edges exceeds the v2 cap", m)
	}

	sorter := s1
	stats.Runs = len(s1.runs)
	var flags uint64
	if opts.Relabel {
		oldToNew := permFromDegrees(deg, n)
		s2 := newPairSorter(opts.TmpDir, opts.BufferPairs)
		defer s2.Close()
		// Replay 2 of sorter #1: remap both endpoints; the bijection
		// preserves distinctness, so no re-dedup is needed beyond the
		// sorter's own.
		err = s1.Merge(func(u, v int32) error {
			return s2.Add(oldToNew[u], oldToNew[v])
		})
		if err != nil {
			return stats, err
		}
		stats.MaxBuffered = s1.maxBuffered
		s1.Close() // release the old-id runs' disk early
		newDeg := make([]int32, n+1)
		for old := 0; old < n; old++ {
			newDeg[oldToNew[old]+1] = deg[old+1]
		}
		deg = newDeg
		sorter = s2
		flags = FlagDegreeRelabeled
		stats.Relabeled = true
	}

	offsets := deg
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	if offsets[n] != int32(2*m) {
		return stats, errors.New("graph: convert: internal degree/pair mismatch")
	}

	// Write the snapshot: header, offsets, padding, then the adjacency
	// emitted straight off the final sorted replay.
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".nsb2-*")
	if err != nil {
		return stats, err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, extsortIOBuf)
	h := binary2Header{Magic: binaryMagic, Version: binaryVersion2, N: int64(n), M: int64(m), Flags: flags | FlagChecksum}
	if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
		return stats, closeDiscard(tmp, err)
	}
	cw := &crcWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, offsets); err != nil {
		return stats, closeDiscard(tmp, err)
	}
	var pad [8]byte
	if _, err := cw.Write(pad[:binary2Padding(n)]); err != nil {
		return stats, closeDiscard(tmp, err)
	}
	var written int64
	var rec [4]byte
	err = sorter.Merge(func(u, v int32) error {
		binary.LittleEndian.PutUint32(rec[:], uint32(v))
		written++
		_, werr := cw.Write(rec[:])
		return werr
	})
	if err != nil {
		return stats, closeDiscard(tmp, err)
	}
	if written != int64(2*m) {
		return stats, closeDiscard(tmp, errors.New("graph: convert: replay emitted a different pair count"))
	}
	var ftr [binary2FooterSize]byte
	binary.LittleEndian.PutUint32(ftr[0:4], cw.sum)
	if _, err := bw.Write(ftr[:]); err != nil {
		return stats, closeDiscard(tmp, err)
	}
	if err := bw.Flush(); err != nil {
		return stats, closeDiscard(tmp, err)
	}
	if err := tmp.Close(); err != nil {
		return stats, err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return stats, err
	}

	stats.N, stats.M = n, m
	if sorter != s1 {
		stats.Runs += len(sorter.runs)
	}
	if sorter.maxBuffered > stats.MaxBuffered {
		stats.MaxBuffered = sorter.maxBuffered
	}
	return stats, nil
}

func closeDiscard(f *os.File, err error) error {
	f.Close()
	return err
}

// permFromDegrees builds the degree-descending oldToNew permutation
// from the converter's deg array (deg[u+1] = deg(u)), ties by old id.
// Counting sort over degree buckets keeps it O(n + dmax).
func permFromDegrees(deg []int32, n int) []int32 {
	maxDeg := int32(0)
	for u := 0; u < n; u++ {
		if deg[u+1] > maxDeg {
			maxDeg = deg[u+1]
		}
	}
	// bucketStart[d] = first new id for old vertices of degree d, with
	// degrees enumerated descending.
	count := make([]int32, maxDeg+2)
	for u := 0; u < n; u++ {
		count[deg[u+1]]++
	}
	next := make([]int32, maxDeg+1)
	var cum int32
	for d := maxDeg; d >= 0; d-- {
		next[d] = cum
		cum += count[d]
	}
	oldToNew := make([]int32, n)
	for u := 0; u < n; u++ {
		d := deg[u+1]
		oldToNew[u] = next[d]
		next[d]++
	}
	return oldToNew
}

// ConvertEdgeListFile streams a whitespace "u v" edge-list file (with
// '#'/'%' comment lines, the ReadEdgeList dialect) into a v2 snapshot.
// Unlike ReadEdgeList, ids are taken as-is (dense 0..n-1 expected; gaps
// become isolated vertices) so that no id-compaction map has to be
// held in memory.
func ConvertEdgeListFile(srcPath, dst string, opts ConvertOptions) (ConvertStats, error) {
	return ConvertEdges(func(emit func(u, v int32) error) error {
		f, err := os.Open(srcPath)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lineno := 0
		for sc.Scan() {
			lineno++
			line := strings.TrimSpace(sc.Text())
			if line == "" || line[0] == '#' || line[0] == '%' {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("graph: convert: line %d: expected two vertex IDs, got %q", lineno, line)
			}
			u, err := strconv.ParseInt(fields[0], 10, 32)
			if err != nil {
				return fmt.Errorf("graph: convert: line %d: %v", lineno, err)
			}
			v, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return fmt.Errorf("graph: convert: line %d: %v", lineno, err)
			}
			if err := emit(int32(u), int32(v)); err != nil {
				return err
			}
		}
		return sc.Err()
	}, dst, opts)
}

// ConvertBinaryFile re-encodes an existing binary snapshot (either
// version) as a v2 snapshot, optionally relabeling — the v1 → v2
// migration path. v2 inputs stream through the mmap reader so even
// huge snapshots re-encode without a heap copy.
func ConvertBinaryFile(srcPath, dst string, opts ConvertOptions) (ConvertStats, error) {
	var g *Graph
	var mapped *Mapped
	version, err := sniffBinaryVersion(srcPath)
	if err != nil {
		return ConvertStats{}, err
	}
	if version == binaryVersion2 {
		mapped, err = OpenMmap(srcPath)
		if err != nil {
			return ConvertStats{}, err
		}
		defer mapped.Close()
		g = mapped.Graph
	} else {
		g, err = LoadBinaryFile(srcPath)
		if err != nil {
			return ConvertStats{}, err
		}
	}
	opts.N = max(opts.N, g.N())
	return ConvertEdges(g.StreamEdges, dst, opts)
}

// StreamEdges adapts the in-memory graph to the converter's EdgeSource.
func (g *Graph) StreamEdges(emit func(u, v int32) error) error {
	var err error
	g.Edges(func(u, v int32) {
		if err == nil {
			err = emit(u, v)
		}
	})
	return err
}

// IsBinarySnapshot reports whether the file at path starts with the
// binary snapshot magic (any version) — how the CLIs decide between the
// edge-list parser and the binary readers without an extension
// convention. Short or unreadable files are simply "not a snapshot".
func IsBinarySnapshot(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [4]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(hdr[:]) == binaryMagic
}

// sniffBinaryVersion reads just the 8-byte magic+version prefix.
func sniffBinaryVersion(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("graph: %s: %w", path, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != binaryMagic {
		return 0, errors.New("graph: not a neisky binary graph (bad magic)")
	}
	return binary.LittleEndian.Uint32(hdr[4:8]), nil
}
