package graph

import (
	"bytes"
	"testing"

	"neisky/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip: n %d→%d m %d→%d", g.N(), g2.N(), g.M(), g2.M())
		}
		g.Edges(func(u, v int32) {
			if !g2.Has(u, v) {
				t.Fatalf("edge (%d,%d) lost", u, v)
			}
		})
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBuilder(0).Build().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadBinary(&buf)
	if err != nil || g.N() != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Corrupt an adjacency entry to an out-of-range vertex.
	bad = append([]byte{}, good...)
	bad[len(bad)-4] = 0x7f
	bad[len(bad)-3] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range adjacency accepted")
	}
	// Empty input.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
