package graph

import "neisky/internal/sketch"

// Sketches returns the graph's per-vertex open-neighborhood register
// sketches (internal/sketch), building them on first use — one O(m)
// pass, 32 bytes per vertex — and caching them on the graph like Hub.
// The sharded skyline engine uses them as a no-false-negative dominance
// pre-filter; long-lived serving snapshots pay the build once per
// epoch.
func (g *Graph) Sketches() *sketch.Sketches {
	g.skOnce.Do(func() {
		n := int32(g.N())
		sk := sketch.New(int(n))
		for u := int32(0); u < n; u++ {
			sk.AddAll(u, g.Neighbors(u))
		}
		g.sk.Store(sk)
	})
	return g.sk.Load()
}

// DegreeSorted reports whether vertex degrees are non-increasing in
// vertex ID — the invariant established by RelabelByDegree and by
// snapshots converted with ConvertOptions.Relabel. Computed lazily in
// one O(n) pass over the offsets and cached. Scan kernels use it to
// turn "all neighbors with deg ≥ d" into a prefix walk with an early
// break, and to pick a min-degree pivot in O(1) (the last neighbor).
func (g *Graph) DegreeSorted() bool {
	g.degSortOnce.Do(func() {
		sorted := true
		for u := int32(1); u < int32(g.N()); u++ {
			if g.Degree(u) > g.Degree(u-1) {
				sorted = false
				break
			}
		}
		g.degSorted = sorted
	})
	return g.degSorted
}
