package graph

import (
	"testing"

	"neisky/internal/rng"
)

func randomGraph(r *rng.RNG, n, attempts int) *Graph {
	b := NewBuilder(n)
	for _, e := range randomMultiEdges(r, n, attempts) {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestDegreeDescendingPerm(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(60)
		g := randomGraph(r, n, 4*n)
		oldToNew, newToOld := g.DegreeDescendingPerm()

		seen := make([]bool, n)
		for old, x := range oldToNew {
			if x < 0 || int(x) >= n {
				t.Fatalf("oldToNew[%d] = %d out of range", old, x)
			}
			if seen[x] {
				t.Fatalf("oldToNew maps two vertices to %d", x)
			}
			seen[x] = true
			if newToOld[x] != int32(old) {
				t.Fatalf("maps are not inverses at old=%d", old)
			}
		}
		for x := 1; x < n; x++ {
			da, db := g.Degree(newToOld[x-1]), g.Degree(newToOld[x])
			if da < db {
				t.Fatalf("degrees not descending: new id %d has deg %d, %d has %d", x-1, da, x, db)
			}
			if da == db && newToOld[x-1] > newToOld[x] {
				t.Fatalf("degree tie at new ids %d,%d not broken by ascending old id", x-1, x)
			}
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	r := rng.New(32)
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(60)
		g := randomGraph(r, n, 4*n)
		rel, oldToNew, newToOld := g.RelabelByDegree()

		if rel.N() != g.N() || rel.M() != g.M() {
			t.Fatalf("relabel changed size: (%d,%d) -> (%d,%d)", g.N(), g.M(), rel.N(), rel.M())
		}
		for u := int32(0); u < int32(n); u++ {
			if rel.Degree(oldToNew[u]) != g.Degree(u) {
				t.Fatalf("degree of %d changed under relabeling", u)
			}
			for _, v := range g.Neighbors(u) {
				if !rel.Has(oldToNew[u], oldToNew[v]) {
					t.Fatalf("edge (%d,%d) lost under relabeling", u, v)
				}
			}
		}
		// Relabeling back through the inverse map restores the original.
		if !graphsEqual(rel.Relabel(newToOld), g) {
			t.Fatal("relabeling by the inverse permutation does not restore the original graph")
		}
	}
}

func TestRelabelByDegreeIdentityOnSortedGraph(t *testing.T) {
	// A star is already degree-descending with ascending-id tie-breaks:
	// the center has the top degree and the leaves tie at 1.
	n := 8
	edges := make([][2]int32, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int32{0, int32(i)})
	}
	g := FromEdges(n, edges)
	oldToNew, _ := g.DegreeDescendingPerm()
	for u, x := range oldToNew {
		if int32(u) != x {
			t.Fatalf("expected identity permutation, got oldToNew[%d]=%d", u, x)
		}
	}
}

func TestRelabelBadPermPanics(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	for name, perm := range map[string][]int32{
		"short":        {0, 1},
		"out-of-range": {0, 1, 3},
		"collision":    {0, 1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s permutation did not panic", name)
				}
			}()
			g.Relabel(perm)
		}()
	}
}

func TestMapVertices(t *testing.T) {
	idMap := []int32{5, 4, 3, 2, 1, 0}
	got := MapVertices([]int32{0, 2, 5}, idMap)
	want := []int32{5, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MapVertices = %v, want %v", got, want)
		}
	}
}
