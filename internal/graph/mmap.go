package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"
)

// mmap-backed read-only graphs. A v2 binary snapshot (WriteBinary2 /
// the streaming converter) lays its offsets and adjacency arrays out at
// 8-byte-aligned file offsets, so the file can be mapped once and the
// CSR exposed as zero-copy int32 slices over the mapping: opening a
// multi-gigabyte snapshot costs one mmap plus a validation scan, not a
// copy into the heap, and the kernel pages adjacency in on demand.
//
// The same hostile-input hardening contract as ReadBinary applies: the
// header caps are enforced against the actual file size before any
// array is interpreted, and the full CSR invariants (offsets shape,
// adjacency range/sortedness, symmetry) are verified before the Graph
// is published, so a corrupted or adversarial snapshot yields an error,
// never an inconsistent Graph.

// Mapped is a Graph backed by an mmap'd v2 snapshot (or, on platforms
// without mmap support, a heap-loaded copy of one). It embeds *Graph,
// so it can be passed directly to every algorithm in the repository.
// Close releases the mapping; the Graph must not be used afterwards.
type Mapped struct {
	*Graph
	data   []byte // the live mapping; nil when heap-loaded
	adjOff int    // byte offset of the adjacency array within data
	flags  uint64 // v2 header flags
	closed bool
}

// Mmapped reports whether the graph aliases a live file mapping (false
// on the heap-loaded fallback path).
func (mg *Mapped) Mmapped() bool { return mg.data != nil }

// Flags returns the snapshot's v2 header flags (FlagDegreeRelabeled...).
func (mg *Mapped) Flags() uint64 { return mg.flags }

// Close unmaps the snapshot. After Close the embedded Graph's arrays
// are nil, so a use-after-close fails with a Go panic rather than a
// segfault. Close is idempotent.
func (mg *Mapped) Close() error {
	if mg.closed {
		return nil
	}
	mg.closed = true
	mg.Graph.offsets = nil
	mg.Graph.adj = nil
	if mg.data == nil {
		return nil
	}
	data := mg.data
	mg.data = nil
	return munmapBytes(data)
}

// OpenMmap maps the v2 binary snapshot at path and returns a validated
// read-only Graph aliasing the mapping. The file descriptor is closed
// before returning (the mapping survives it), so an open Mapped holds
// no fd. On platforms without mmap support the snapshot is loaded into
// the heap instead and Close is a no-op; callers use the same lifecycle
// either way.
//
// Legacy v1 files are rejected: their layout is not alignment-padded
// and they predate the caps needed for mmap-scale graphs. Convert them
// once with nsgen -in <file> -o <file.nsb2>.
func OpenMmap(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < binaryHeader2Size {
		return nil, errors.New("graph: mmap: file too small for a v2 snapshot header")
	}
	if int64(int(size)) != size {
		return nil, errors.New("graph: mmap: file size exceeds address space")
	}
	if !mmapSupported {
		g, err := ReadBinary(f)
		if err != nil {
			return nil, err
		}
		return &Mapped{Graph: g}, nil
	}
	data, err := mmapBytes(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	mg, err := mapFromBytes(data)
	if err != nil {
		munmapBytes(data)
		return nil, err
	}
	return mg, nil
}

// mapFromBytes interprets data (a whole mapped v2 file) as a CSR
// snapshot, validating the header against the actual byte count and
// then the full structural invariants. The validation scan runs under
// an MADV_SEQUENTIAL hint and the mapping is switched to MADV_RANDOM
// before returning — skyline probes are point lookups, not scans.
func mapFromBytes(data []byte) (*Mapped, error) {
	le := binary.LittleEndian
	if le.Uint32(data[0:4]) != binaryMagic {
		return nil, errors.New("graph: not a neisky binary graph (bad magic)")
	}
	if v := le.Uint32(data[4:8]); v != binaryVersion2 {
		if v == binaryVersion {
			return nil, errors.New("graph: mmap needs a v2 snapshot; convert the v1 file with nsgen -in <file> -o <file.nsb2>")
		}
		return nil, fmt.Errorf("graph: unsupported binary version %d", v)
	}
	n64 := int64(le.Uint64(data[8:16]))
	m64 := int64(le.Uint64(data[16:24]))
	flags := le.Uint64(data[24:32])
	if n64 < 0 || m64 < 0 || n64 > maxBinary2N || m64 > maxBinary2M {
		return nil, errors.New("graph: implausible binary header")
	}
	n, m := int(n64), int(m64)
	adjStart := binaryHeader2Size + 4*(n+1) + binary2Padding(n)
	need := int64(adjStart) + 8*int64(m)
	if flags&FlagChecksum != 0 {
		need += binary2FooterSize
	}
	if int64(len(data)) < need {
		return nil, fmt.Errorf("graph: binary snapshot truncated: header claims %d bytes, file has %d",
			need, len(data))
	}
	if flags&FlagChecksum != 0 {
		payloadEnd := need - binary2FooterSize
		adviseSequential(data)
		sum := crc32.Checksum(data[binaryHeader2Size:payloadEnd], crc2Table)
		if got := le.Uint32(data[payloadEnd : payloadEnd+4]); got != sum {
			return nil, fmt.Errorf("graph: binary payload checksum mismatch (footer %08x, computed %08x)", got, sum)
		}
	}
	offsets := unsafe.Slice((*int32)(unsafe.Pointer(&data[binaryHeader2Size])), n+1)
	var adj []int32
	if m > 0 {
		adj = unsafe.Slice((*int32)(unsafe.Pointer(&data[adjStart])), 2*m)
	}
	adviseSequential(data)
	if err := validateCSR(offsets, adj, n, m); err != nil {
		return nil, err
	}
	g := (&Graph{offsets: offsets, adj: adj, m: m}).finish()
	if err := checkSymmetric(g); err != nil {
		return nil, err
	}
	adviseRandom(data)
	return &Mapped{Graph: g, data: data, adjOff: adjStart, flags: flags}, nil
}

// AdviseRange hints the kernel that the adjacency windows of vertices
// [lo, hi) are about to be scanned (MADV_WILLNEED on the byte span,
// page-aligned downward). The sharded skyline engine calls it as each
// shard's scan starts, so a cold mapping pages one shard in ahead of
// the walk instead of faulting per cache line. Best-effort and
// clamped: a no-op on heap-loaded fallbacks, closed mappings, or empty
// ranges.
func (mg *Mapped) AdviseRange(lo, hi int32) {
	if mg.data == nil || mg.closed {
		return
	}
	n := int32(mg.Graph.N())
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo >= hi {
		return
	}
	a := mg.adjOff + 4*int(mg.Graph.offsets[lo])
	b := mg.adjOff + 4*int(mg.Graph.offsets[hi])
	a &^= os.Getpagesize() - 1
	if a < b && b <= len(mg.data) {
		adviseWillNeed(mg.data[a:b])
	}
}

// WriteBinaryFile writes the graph to path in the v2 snapshot format
// (atomically: a temp file in the same directory, renamed on success).
func (g *Graph) WriteBinaryFile(path string, flags uint64) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".nsb2-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = g.WriteBinary2(tmp, flags)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadBinaryFile heap-loads a binary snapshot (either version) from
// path via ReadBinary.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
