package graph

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"neisky/internal/rng"
	"neisky/internal/testleak"
)

func writeSnapshot(t *testing.T, g *Graph, flags uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.nsb2")
	if err := g.WriteBinaryFile(path, flags); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenMmapMatchesHeapLoad pins the core mmap contract: the mapped
// graph is indistinguishable from the heap-loaded one, window for
// window, including the empty and isolated-vertex edge cases.
func TestOpenMmapMatchesHeapLoad(t *testing.T) {
	r := rng.New(91)
	graphs := []*Graph{
		NewBuilder(0).Build(),
		NewBuilder(7).Build(), // isolated vertices only
		FromEdges(2, [][2]int32{{0, 1}}),
	}
	for trial := 0; trial < 6; trial++ {
		graphs = append(graphs, randomGraph(r, 1+r.Intn(80), 200))
	}
	for i, g := range graphs {
		path := writeSnapshot(t, g, FlagDegreeRelabeled)
		heap, err := LoadBinaryFile(path)
		if err != nil {
			t.Fatalf("graph %d: heap load: %v", i, err)
		}
		mg, err := OpenMmap(path)
		if err != nil {
			t.Fatalf("graph %d: mmap: %v", i, err)
		}
		if !graphsEqual(heap, mg.Graph) || !graphsEqual(g, mg.Graph) {
			t.Fatalf("graph %d: mapped graph differs from heap load", i)
		}
		if mg.Flags() != FlagDegreeRelabeled|FlagChecksum {
			t.Fatalf("graph %d: flags = %#x", i, mg.Flags())
		}
		if mmapSupported && !mg.Mmapped() {
			t.Fatalf("graph %d: expected a live mapping on this platform", i)
		}
		if err := mg.Close(); err != nil {
			t.Fatalf("graph %d: close: %v", i, err)
		}
	}
}

// TestMmapDerivedStructures exercises the lazily-built helpers (hub
// index, degree histogram) on top of a mapping — they allocate on the
// heap and must not try to write through the read-only CSR views.
func TestMmapDerivedStructures(t *testing.T) {
	r := rng.New(92)
	g := randomGraph(r, 60, 300)
	path := writeSnapshot(t, g, 0)
	mg, err := OpenMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if mg.MaxDegree() != g.MaxDegree() {
		t.Fatal("MaxDegree differs on the mapping")
	}
	h := mg.Hub()
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if got, want := mg.SubsetOpenInClosed(u, v), g.SubsetOpenInClosed(u, v); got != want {
				t.Fatalf("subset probe (%d,%d) differs on the mapping", u, v)
			}
		}
	}
	_ = h
}

func TestMmapCloseIsIdempotent(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	mg, err := OpenMmap(writeSnapshot(t, g, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mg.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	// Use-after-close must fail as a Go panic (nil slices), not a fault.
	defer func() {
		if recover() == nil {
			t.Fatal("use after close did not panic")
		}
	}()
	_ = mg.Neighbors(0)
}

// TestOpenMmapHoldsNoFd pins the lifecycle choice that the fd is closed
// right after mapping: an open Mapped consumes no descriptor, so
// thousands can be open against the same snapshot. The open/close cycle
// must also leave no goroutines behind — the mmap path spawns none.
func TestOpenMmapHoldsNoFd(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("fd counting needs /proc/self/fd")
	}
	defer testleak.Check(t)()
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	path := writeSnapshot(t, g, 0)
	before := countFds(t)
	var maps []*Mapped
	for i := 0; i < 8; i++ {
		mg, err := OpenMmap(path)
		if err != nil {
			t.Fatal(err)
		}
		maps = append(maps, mg)
	}
	if during := countFds(t); during != before {
		t.Errorf("8 open mappings changed fd count: %d -> %d", before, during)
	}
	for _, mg := range maps {
		if err := mg.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if after := countFds(t); after != before {
		t.Errorf("fd leak: %d -> %d", before, after)
	}
}

func countFds(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func TestOpenMmapRejectsV1(t *testing.T) {
	if !mmapSupported {
		t.Skip("heap fallback accepts v1 via ReadBinary")
	}
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	path := filepath.Join(t.TempDir(), "old.nsb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenMmap(path); err == nil {
		t.Fatal("v1 snapshot mapped without error")
	}
}

// TestOpenMmapRejectsCorruption walks the hostile-snapshot cases: bad
// magic, truncation mid-header and mid-adjacency, and structural
// corruption (unsorted window / out-of-range endpoint / asymmetry).
func TestOpenMmapRejectsCorruption(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	path := writeSnapshot(t, g, 0)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	corrupt := func(name string, mutate func(b []byte)) string {
		b := append([]byte(nil), good...)
		mutate(b)
		return write(name, b)
	}
	// resealed re-signs the footer after a structural mutation, so the
	// file passes the checksum and the structural validators must do the
	// rejecting themselves.
	resealed := func(name string, mutate func(b []byte)) string {
		b := append([]byte(nil), good...)
		mutate(b)
		payloadEnd := len(b) - binary2FooterSize
		crc := crc32.Checksum(b[binaryHeader2Size:payloadEnd], crc2Table)
		binary.LittleEndian.PutUint32(b[payloadEnd:payloadEnd+4], crc)
		return write(name, b)
	}
	lastAdj := len(good) - binary2FooterSize - 4 // last adjacency int32

	cases := map[string]string{
		"bad magic":     corrupt("magic", func(b []byte) { b[0] ^= 0xff }),
		"tiny file":     write("tiny", good[:16]),
		"cut header":    write("cuthdr", good[:binaryHeader2Size-1]),
		"cut footer":    write("cutftr", good[:len(good)-4]),
		"cut adjacency": write("cutadj", good[:len(good)-4-binary2FooterSize]),
		"huge n":        corrupt("hugen", func(b []byte) { b[14] = 0x7f }),
		"bad checksum":  corrupt("badcrc", func(b []byte) { b[lastAdj] ^= 0xff }),
		"asymmetric":    resealed("asym", func(b []byte) { b[lastAdj] = 0 }),
	}
	for name, p := range cases {
		if _, err := OpenMmap(p); err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		}
	}
}
