package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input;
// it must never panic, and any successfully parsed graph must satisfy
// the simple-graph invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% konect\n5 7\n7 5\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("999999999 1\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("-3 4\n"))
	f.Add([]byte("1\n"))
	f.Add([]byte("2147483646 2147483646\n"))
	f.Add([]byte("0 2147483648\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		sum := 0
		for u := int32(0); u < int32(g.N()); u++ {
			nbrs := g.Neighbors(u)
			sum += len(nbrs)
			for i, v := range nbrs {
				if v == u {
					t.Fatal("self loop survived parsing")
				}
				if i > 0 && nbrs[i-1] >= v {
					t.Fatal("adjacency not strictly sorted")
				}
				if !g.Has(v, u) {
					t.Fatal("asymmetric edge")
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatal("degree sum mismatch")
		}
	})
}

// binHeader serializes a raw binary-format header followed by extra
// little-endian int32 payload words, bypassing WriteBinary's invariants
// so hostile inputs can be constructed directly.
func binHeader(magic, version, n, m int32, payload ...int32) []byte {
	var buf bytes.Buffer
	for _, w := range append([]int32{magic, version, n, m}, payload...) {
		binary.Write(&buf, binary.LittleEndian, w)
	}
	return buf.Bytes()
}

// bin2Header serializes a raw v2 header (32 bytes: magic, version,
// n, m, flags) followed by extra little-endian int32 payload words,
// bypassing WriteBinary2's invariants so hostile v2 inputs can be
// constructed directly. No alignment padding is inserted — hostile
// inputs get to lie about that too.
func bin2Header(magic, version uint32, n, m int64, flags uint64, payload ...int32) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, magic)
	binary.Write(&buf, binary.LittleEndian, version)
	binary.Write(&buf, binary.LittleEndian, n)
	binary.Write(&buf, binary.LittleEndian, m)
	binary.Write(&buf, binary.LittleEndian, flags)
	for _, w := range payload {
		binary.Write(&buf, binary.LittleEndian, w)
	}
	return buf.Bytes()
}

// FuzzReadBinary exercises the binary deserializer with arbitrary
// input. It must never panic and never allocate proportionally to a
// header's *claimed* sizes (only to the bytes actually present); any
// successfully parsed graph must satisfy the CSR invariants.
func FuzzReadBinary(f *testing.F) {
	// A genuine round-trip as the happy-path seed.
	var good bytes.Buffer
	FromEdges(3, [][2]int32{{0, 1}, {1, 2}}).WriteBinary(&good)
	f.Add(good.Bytes())
	// And its v2 sibling.
	var good2 bytes.Buffer
	FromEdges(3, [][2]int32{{0, 1}, {1, 2}}).WriteBinary2(&good2, FlagDegreeRelabeled)
	f.Add(good2.Bytes())
	// Hostile headers: oversized n, oversized m, maximal both, negative
	// sizes, truncated bodies, wrong magic/version, non-monotone and
	// lying offsets.
	f.Add(binHeader(binaryMagic, binaryVersion, 1<<30, 0))
	f.Add(binHeader(binaryMagic, binaryVersion, 0, 1<<30))
	f.Add(binHeader(binaryMagic, binaryVersion, 2147483647, 2147483647))
	f.Add(binHeader(binaryMagic, binaryVersion, -1, -1))
	f.Add(binHeader(binaryMagic, binaryVersion, 1<<20, 1<<20, 0, 1, 2))
	f.Add(binHeader(binaryMagic, binaryVersion, 2, 1, 0, 2, 2, 1, 0))
	f.Add(binHeader(binaryMagic, binaryVersion, 2, 1, 2, 0, 2, 1, 0))
	f.Add(binHeader(0x7f7f7f7f, binaryVersion, 1, 0, 0, 0))
	f.Add(binHeader(binaryMagic, 99, 1, 0, 0, 0))
	f.Add(good.Bytes()[:len(good.Bytes())-3])
	f.Add([]byte{})
	// v2 hostile headers: oversized/negative n and m, truncated bodies,
	// missing padding, lying offsets.
	f.Add(bin2Header(binaryMagic, binaryVersion2, 1<<40, 0, 0))
	f.Add(bin2Header(binaryMagic, binaryVersion2, 0, 1<<40, 0))
	f.Add(bin2Header(binaryMagic, binaryVersion2, -1, -1, 0))
	f.Add(bin2Header(binaryMagic, binaryVersion2, 1<<20, 1<<20, 0, 0, 1, 2))
	f.Add(bin2Header(binaryMagic, binaryVersion2, 2, 1, 0, 0, 2, 2, 1, 0))
	f.Add(bin2Header(binaryMagic, binaryVersion2, 2, 1, 0, 2, 0, 2, 1, 0))
	f.Add(good2.Bytes()[:len(good2.Bytes())-3])
	f.Add(good2.Bytes()[:binaryHeader2Size+2])
	// Checksum-footer seeds: corrupted payload under an honest footer,
	// corrupted footer under an honest payload, footer cut off entirely,
	// and a legacy no-footer file (flags cleared).
	flip := func(b []byte, at int) []byte {
		c := append([]byte(nil), b...)
		c[at] ^= 0xff
		return c
	}
	g2b := good2.Bytes()
	f.Add(flip(g2b, len(g2b)-binary2FooterSize-4))
	f.Add(flip(g2b, len(g2b)-binary2FooterSize))
	f.Add(g2b[:len(g2b)-binary2FooterSize])
	legacy := append([]byte(nil), g2b[:len(g2b)-binary2FooterSize]...)
	binary.LittleEndian.PutUint64(legacy[24:32], 0)
	f.Add(legacy)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		sum := 0
		for u := int32(0); u < int32(g.N()); u++ {
			nbrs := g.Neighbors(u)
			sum += len(nbrs)
			for i, v := range nbrs {
				if v == u {
					t.Fatal("self loop survived parsing")
				}
				if i > 0 && nbrs[i-1] >= v {
					t.Fatal("adjacency not strictly sorted")
				}
				if !g.Has(v, u) {
					t.Fatal("asymmetric edge")
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatal("degree sum mismatch")
		}
	})
}

// TestReadBinaryHostileHeaderBounded asserts the hardening contract
// directly: a tiny input whose header claims huge arrays must fail
// without allocating anywhere near the claimed sizes.
func TestReadBinaryHostileHeaderBounded(t *testing.T) {
	cases := map[string][]byte{
		"n over cap":       binHeader(binaryMagic, binaryVersion, maxBinaryN+1, 0),
		"m over cap":       binHeader(binaryMagic, binaryVersion, 0, maxBinaryM+1),
		"claimed offsets":  binHeader(binaryMagic, binaryVersion, maxBinaryN, 0),
		"claimed adj":      binHeader(binaryMagic, binaryVersion, 1, maxBinaryM, 0, 0),
		"truncated header": binHeader(binaryMagic, binaryVersion, 4, 4)[:14],
		"v2 n over cap":    bin2Header(binaryMagic, binaryVersion2, maxBinary2N+1, 0, 0),
		"v2 m over cap":    bin2Header(binaryMagic, binaryVersion2, 0, maxBinary2M+1, 0),
		"v2 claimed off":   bin2Header(binaryMagic, binaryVersion2, maxBinary2N, 0, 0),
		"v2 claimed adj":   bin2Header(binaryMagic, binaryVersion2, 1, maxBinary2M, 0, 0, 0),
		"v2 cut header":    bin2Header(binaryMagic, binaryVersion2, 4, 4, 0)[:20],
	}
	for name, data := range cases {
		allocs := testing.AllocsPerRun(1, func() {
			if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
				t.Errorf("%s: expected error", name)
			}
		})
		// The chunked reader allocates at most a couple of chunks plus
		// bookkeeping; the claimed arrays would need thousands.
		if allocs > 50 {
			t.Errorf("%s: %v allocations for a %d-byte hostile input", name, allocs, len(data))
		}
	}
}
