package graph

import (
	"bytes"
	"testing"
)

// FuzzReadEdgeList exercises the edge-list parser with arbitrary input;
// it must never panic, and any successfully parsed graph must satisfy
// the simple-graph invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("0 1\n1 2\n"))
	f.Add([]byte("# comment\n% konect\n5 7\n7 5\n5 5\n"))
	f.Add([]byte(""))
	f.Add([]byte("999999999 1\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("-3 4\n"))
	f.Add([]byte("1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		sum := 0
		for u := int32(0); u < int32(g.N()); u++ {
			nbrs := g.Neighbors(u)
			sum += len(nbrs)
			for i, v := range nbrs {
				if v == u {
					t.Fatal("self loop survived parsing")
				}
				if i > 0 && nbrs[i-1] >= v {
					t.Fatal("adjacency not strictly sorted")
				}
				if !g.Has(v, u) {
					t.Fatal("asymmetric edge")
				}
			}
		}
		if sum != 2*g.M() {
			t.Fatal("degree sum mismatch")
		}
	})
}
