package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"neisky/internal/rng"
)

// randomMultiEdges produces a raw edge stream with self-loops and
// duplicates, the dirtiest input the builders accept.
func randomMultiEdges(r *rng.RNG, n, count int) [][2]int32 {
	edges := make([][2]int32, 0, count)
	for i := 0; i < count; i++ {
		edges = append(edges, [2]int32{int32(r.Intn(n)), int32(r.Intn(n))})
	}
	return edges
}

// graphsEqual compares two graphs window by window.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for u := int32(0); u < int32(a.N()); u++ {
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestBinary2RoundTrip(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(40)
		b := NewBuilder(n)
		for _, e := range randomMultiEdges(r, n, 3*n) {
			b.AddEdge(e[0], e[1])
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteBinary2(&buf, FlagDegreeRelabeled); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, g2) {
			t.Fatalf("v2 round trip mismatch (n=%d m=%d)", g.N(), g.M())
		}
	}
}

// TestReadBinaryAcceptsBothVersions is the satellite contract: one
// reader, both header layouts.
func TestReadBinaryAcceptsBothVersions(t *testing.T) {
	g := FromEdges(6, [][2]int32{{0, 1}, {0, 2}, {1, 2}, {3, 4}, {4, 5}})
	var v1, v2 bytes.Buffer
	if err := g.WriteBinary(&v1); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary2(&v2, 0); err != nil {
		t.Fatal(err)
	}
	g1, err := ReadBinary(&v1)
	if err != nil {
		t.Fatalf("v1: %v", err)
	}
	g2, err := ReadBinary(&v2)
	if err != nil {
		t.Fatalf("v2: %v", err)
	}
	if !graphsEqual(g1, g2) || !graphsEqual(g, g1) {
		t.Fatal("versions decode to different graphs")
	}
}

// TestBinary2Alignment pins the mmap contract: the offsets array starts
// at byte 32 and the adjacency array at an 8-byte-aligned offset, for
// both parities of n.
func TestBinary2Alignment(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 9} {
		b := NewBuilder(n)
		for i := 0; i+1 < n; i++ {
			b.AddEdge(int32(i), int32(i+1))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteBinary2(&buf, 0); err != nil {
			t.Fatal(err)
		}
		adjStart := binaryHeader2Size + 4*(n+1) + binary2Padding(n)
		if adjStart%8 != 0 {
			t.Fatalf("n=%d: adjacency at byte %d, not 8-aligned", n, adjStart)
		}
		if want := adjStart + 8*g.M() + binary2FooterSize; buf.Len() != want {
			t.Fatalf("n=%d: file is %d bytes, layout says %d", n, buf.Len(), want)
		}
	}
}

func TestBinary2EmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewBuilder(0).Build().WriteBinary2(&buf, 0); err != nil {
		t.Fatal(err)
	}
	g, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty round trip: n=%d m=%d", g.N(), g.M())
	}
}

func TestBinary2RejectsCorruption(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary2(&buf, 0); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every interesting boundary.
	for _, cut := range []int{4, 8, 20, 31, binaryHeader2Size + 3, len(good) - 1} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncated at %d bytes: expected error", cut)
		}
	}
	// Flip an adjacency entry: the checksum footer must catch it.
	lastAdj := len(good) - binary2FooterSize - 4
	bad := append([]byte(nil), good...)
	bad[lastAdj] = 0x7f
	bad[lastAdj+1] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted adjacency: got %v, want a checksum error", err)
	}
	// The same corruption with a re-signed footer passes the checksum,
	// so the structural validators must reject it themselves.
	payloadEnd := len(bad) - binary2FooterSize
	binary.LittleEndian.PutUint32(bad[payloadEnd:payloadEnd+4],
		crc32.Checksum(bad[binaryHeader2Size:payloadEnd], crc2Table))
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil ||
		strings.Contains(err.Error(), "checksum") {
		t.Errorf("resealed out-of-range adjacency: got %v, want a structural error", err)
	}
	// A corrupted footer itself is a checksum mismatch.
	badftr := append([]byte(nil), good...)
	badftr[len(badftr)-binary2FooterSize] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(badftr)); err == nil {
		t.Error("corrupted checksum footer accepted")
	}
}

// TestBinary2LegacyNoChecksum pins backward compatibility: a v2 file
// written without the footer (pre-checksum snapshots) still loads.
func TestBinary2LegacyNoChecksum(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := g.WriteBinary2(&buf, 0); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[:buf.Len()-binary2FooterSize]
	// Clear FlagChecksum in the header (flags live at bytes 24..32).
	binary.LittleEndian.PutUint64(legacy[24:32], 0)
	g2, err := ReadBinary(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy v2 file rejected: %v", err)
	}
	if !graphsEqual(g, g2) {
		t.Fatal("legacy v2 file decodes differently")
	}
}
