package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"neisky/internal/rng"
)

func mustTriangle(t *testing.T) *Graph {
	t.Helper()
	return FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatalf("empty graph: got n=%d m=%d dmax=%d", g.N(), g.M(), g.MaxDegree())
	}
}

func TestSingleVertex(t *testing.T) {
	g := NewBuilder(1).Build()
	if g.N() != 1 || g.M() != 0 || g.Degree(0) != 0 {
		t.Fatalf("single vertex: n=%d m=%d deg0=%d", g.N(), g.M(), g.Degree(0))
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop dropped
	b.AddEdge(2, 3)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("want 2 edges after dedup, got %d", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 1 || g.Degree(3) != 1 {
		t.Fatalf("unexpected degrees: %d %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2), g.Degree(3))
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 9)
	g := b.Build()
	if g.N() != 10 {
		t.Fatalf("builder should grow to 10 vertices, got %d", g.N())
	}
}

func TestNeighborsSortedAndHas(t *testing.T) {
	g := FromEdges(6, [][2]int32{{0, 5}, {0, 2}, {0, 4}, {0, 1}, {3, 0}})
	nbrs := g.Neighbors(0)
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
		t.Fatalf("neighbors not sorted: %v", nbrs)
	}
	for _, v := range []int32{1, 2, 3, 4, 5} {
		if !g.Has(0, v) || !g.Has(v, 0) {
			t.Fatalf("missing edge (0,%d)", v)
		}
	}
	if g.Has(1, 2) {
		t.Fatal("spurious edge (1,2)")
	}
	if g.Has(0, 0) {
		t.Fatal("self loop reported")
	}
}

func TestDegreeSumEquals2M(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(50)
		b := NewBuilder(n)
		edges := r.Intn(3 * n)
		for i := 0; i < edges; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for u := int32(0); u < int32(g.N()); u++ {
			sum += g.Degree(u)
		}
		if sum != 2*g.M() {
			t.Fatalf("degree sum %d != 2m %d", sum, 2*g.M())
		}
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := mustTriangle(t)
	var got [][2]int32
	g.Edges(func(u, v int32) { got = append(got, [2]int32{u, v}) })
	want := [][2]int32{{0, 1}, {0, 2}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestStats(t *testing.T) {
	g := mustTriangle(t)
	s := g.Stats()
	if s.N != 3 || s.M != 3 || s.MaxDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("bad stats: %+v", s)
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("stats string: %s", s)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3-4; induce on {0,1,2,4}: edges 0-1, 1-2 survive.
	g := FromEdges(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	sub, orig := g.InducedSubgraph([]int32{0, 1, 2, 4})
	if sub.N() != 4 || sub.M() != 2 {
		t.Fatalf("induced: n=%d m=%d", sub.N(), sub.M())
	}
	if orig[3] != 4 {
		t.Fatalf("orig mapping wrong: %v", orig)
	}
	if !sub.Has(0, 1) || !sub.Has(1, 2) || sub.Has(2, 3) {
		t.Fatal("induced adjacency wrong")
	}
}

func TestSampleVerticesAndEdges(t *testing.T) {
	g := FromEdges(100, func() [][2]int32 {
		var e [][2]int32
		for i := int32(0); i < 99; i++ {
			e = append(e, [2]int32{i, i + 1})
		}
		return e
	}())
	r := rng.New(42)
	sub := g.SampleVertices(0.5, r.Float64)
	if sub.N() == 0 || sub.N() >= g.N() {
		t.Fatalf("vertex sample size %d out of expected range", sub.N())
	}
	r2 := rng.New(43)
	sube := g.SampleEdges(0.5, r2.Float64)
	if sube.N() != g.N() {
		t.Fatalf("edge sampling must preserve n: %d != %d", sube.N(), g.N())
	}
	if sube.M() == 0 || sube.M() >= g.M() {
		t.Fatalf("edge sample m=%d out of expected range", sube.M())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip mismatch: n %d->%d m %d->%d", g.N(), g2.N(), g.M(), g2.M())
	}
	g.Edges(func(u, v int32) {
		if !g2.Has(u, v) {
			t.Fatalf("edge (%d,%d) lost in round trip", u, v)
		}
	})
}

func TestReadEdgeListCompactsIDs(t *testing.T) {
	in := strings.NewReader("# comment\n% konect comment\n10 20\n20 30\n")
	g, err := ReadEdgeList(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("compacted: n=%d m=%d", g.N(), g.M())
	}
	if !g.Has(0, 1) || !g.Has(1, 2) {
		t.Fatal("compacted adjacency wrong")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"1\n", "a b\n", "1 b\n", "-1 2\n"}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

func TestSubsetOpenInClosed(t *testing.T) {
	// Star with center 0: every leaf's N = {0} ⊆ N[0]; N(0) ⊄ N[leaf].
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	for _, leaf := range []int32{1, 2, 3} {
		if !g.SubsetOpenInClosed(leaf, 0) {
			t.Fatalf("N(%d) should be ⊆ N[0]", leaf)
		}
		if g.SubsetOpenInClosed(0, leaf) {
			t.Fatalf("N(0) should not be ⊆ N[%d]", leaf)
		}
	}
	// Leaves are mutually included: N(1) = {0} ⊆ N[2] = {0, 2}.
	if !g.SubsetOpenInClosed(1, 2) {
		t.Fatal("leaf-leaf inclusion should hold")
	}
}

func TestSubsetOpenInClosedOracle(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(12)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				if u == v {
					continue
				}
				want := true
				for _, x := range g.Neighbors(u) {
					if x != v && !g.Has(v, x) {
						want = false
						break
					}
				}
				if got := g.SubsetOpenInClosed(u, v); got != want {
					t.Fatalf("SubsetOpenInClosed(%d,%d)=%v want %v (graph %v)",
						u, v, got, want, g.EdgeList())
				}
			}
		}
	}
}

func TestSubsetClosedInClosed(t *testing.T) {
	// Triangle plus pendant: N[3] = {2,3} ⊆ N[2] = {0,1,2,3}.
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	if !g.SubsetClosedInClosed(3, 2) {
		t.Fatal("N[3] ⊆ N[2] should hold")
	}
	if g.SubsetClosedInClosed(2, 3) {
		t.Fatal("N[2] ⊄ N[3]")
	}
	// Non-adjacent vertices can never satisfy closed-in-closed.
	if g.SubsetClosedInClosed(3, 0) {
		t.Fatal("non-adjacent closed inclusion must fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustTriangle(t)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() || !c.Has(0, 1) {
		t.Fatal("clone differs")
	}
}

func TestBytesPositive(t *testing.T) {
	if mustTriangle(t).Bytes() <= 0 {
		t.Fatal("Bytes should be positive")
	}
}

func TestDropIsolated(t *testing.T) {
	g := FromEdges(6, [][2]int32{{1, 3}, {3, 5}})
	d := g.DropIsolated()
	if d.N() != 3 || d.M() != 2 {
		t.Fatalf("drop isolated: n=%d m=%d", d.N(), d.M())
	}
	// 1→0, 3→1, 5→2 in order.
	if !d.Has(0, 1) || !d.Has(1, 2) || d.Has(0, 2) {
		t.Fatal("relabeling wrong")
	}
	// No isolated vertices: returns the same graph.
	t2 := FromEdges(2, [][2]int32{{0, 1}})
	if t2.DropIsolated() != t2 {
		t.Fatal("no-op DropIsolated should return the receiver")
	}
}

func TestQuickSimpleGraphInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8, extra uint16) bool {
		n := int(nRaw%40) + 2
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < int(extra%256); i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		// Invariant: no self loops, sorted unique adjacency, symmetry.
		for u := int32(0); u < int32(g.N()); u++ {
			nbrs := g.Neighbors(u)
			for i, v := range nbrs {
				if v == u {
					return false
				}
				if i > 0 && nbrs[i-1] >= v {
					return false
				}
				if !g.Has(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
