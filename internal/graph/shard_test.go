package graph

import (
	"path/filepath"
	"testing"
)

// pathGraph builds an n-vertex path 0-1-...-(n-1) without importing
// internal/gen (which depends on this package).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n-1; u++ {
		b.AddEdge(int32(u), int32(u+1))
	}
	return b.Build()
}

// starGraph builds a hub 0 joined to n-1 leaves: one vertex holds
// nearly all the CSR weight, the partitioner's degenerate case.
func starGraph(n int) *Graph {
	b := NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(0, int32(u))
	}
	return b.Build()
}

// checkPartition verifies the structural contract: non-empty, disjoint,
// contiguous shards covering [0, n), at most s of them.
func checkPartition(t *testing.T, g *Graph, s int) []ShardRange {
	t.Helper()
	shards := g.PartitionShards(s)
	n := int32(g.N())
	if n == 0 {
		if shards != nil {
			t.Fatalf("s=%d: non-nil shards for empty graph", s)
		}
		return nil
	}
	eff := s
	if eff < 1 {
		eff = 1 // the partitioner clamps the request
	}
	if len(shards) == 0 || len(shards) > eff {
		t.Fatalf("s=%d: got %d shards", s, len(shards))
	}
	lo := int32(0)
	for i, sh := range shards {
		if sh.Lo != lo {
			t.Fatalf("s=%d: shard %d starts at %d, want %d (gap or overlap)", s, i, sh.Lo, lo)
		}
		if sh.Hi <= sh.Lo {
			t.Fatalf("s=%d: shard %d empty or inverted: %+v", s, i, sh)
		}
		lo = sh.Hi
	}
	if lo != n {
		t.Fatalf("s=%d: shards cover [0, %d), want [0, %d)", s, lo, n)
	}
	return shards
}

func TestPartitionShardsInvariants(t *testing.T) {
	graphs := map[string]*Graph{
		"path":      pathGraph(100),
		"star":      starGraph(100),
		"single":    pathGraph(1),
		"empty":     NewBuilder(0).Build(),
		"two":       pathGraph(2),
		"edgeless5": NewBuilder(5).Build(),
	}
	for name, g := range graphs {
		for _, s := range []int{-3, 0, 1, 2, 7, 64, 1000} {
			t.Run(name, func(t *testing.T) { checkPartition(t, g, s) })
		}
	}
}

// TestPartitionShardsBalance checks the work-balancing claim: on a
// uniform-degree graph, every shard's CSR weight (len + its adjacency
// span) lands within 2× of the ideal slice.
func TestPartitionShardsBalance(t *testing.T) {
	g := pathGraph(10000)
	const s = 16
	shards := checkPartition(t, g, s)
	total := g.N() + 2*g.M()
	ideal := total / s
	for i, sh := range shards {
		w := sh.Len()
		for u := sh.Lo; u < sh.Hi; u++ {
			w += g.Degree(u)
		}
		if w > 2*ideal+2 {
			t.Errorf("shard %d weight %d, ideal %d: unbalanced", i, w, ideal)
		}
	}
}

// TestPartitionShardsStarHub pins the degenerate case: the hub vertex
// outweighs entire target slices, so the partitioner returns fewer
// shards rather than empty ones.
func TestPartitionShardsStarHub(t *testing.T) {
	g := starGraph(64)
	shards := checkPartition(t, g, 32)
	if shards[0].Lo != 0 || shards[0].Hi < 1 {
		t.Fatalf("hub shard malformed: %+v", shards[0])
	}
}

func FuzzPartitionShards(f *testing.F) {
	f.Add(uint16(10), uint16(3), uint16(4))
	f.Add(uint16(1), uint16(0), uint16(1))
	f.Add(uint16(100), uint16(99), uint16(200))
	f.Fuzz(func(t *testing.T, nRaw, edgeSeed, sRaw uint16) {
		n := int(nRaw % 300)
		s := int(sRaw % 80)
		b := NewBuilder(n)
		// Deterministic pseudo-random edge set from the seed; duplicates
		// and self-loops are the builder's problem, not ours.
		x := uint64(edgeSeed) + 1
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			u := int32(x % uint64(n))
			x = x*6364136223846793005 + 1442695040888963407
			v := int32(x % uint64(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		checkPartition(t, b.Build(), s)
	})
}

// TestSketchesCachedAndSound checks the graph-level sketch index: built
// once (pointer-stable), and with no false negatives on true inclusions
// N(u) ⊆ N[w] for every adjacent pair of a small graph.
func TestSketchesCachedAndSound(t *testing.T) {
	g := pathGraph(50)
	sk := g.Sketches()
	if sk == nil {
		t.Fatal("nil sketches")
	}
	if g.Sketches() != sk {
		t.Fatal("Sketches() not cached")
	}
	included := func(u, w int32) bool {
		for _, x := range g.Neighbors(u) {
			if x != w && !g.Has(w, x) {
				return false
			}
		}
		return true
	}
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		for _, w := range g.Neighbors(u) {
			if included(u, w) && !sk.IncludedClosed(u, w) {
				t.Fatalf("false negative: N(%d) ⊆ N[%d] but sketch rejects", u, w)
			}
		}
	}
}

func TestDegreeSorted(t *testing.T) {
	if pathGraph(10).DegreeSorted() {
		t.Fatal("path graph misreported as degree-sorted (vertex 0 has degree 1 < 2)")
	}
	if !starGraph(10).DegreeSorted() {
		t.Fatal("star graph (hub at id 0) should be degree-sorted")
	}
	if !NewBuilder(4).Build().DegreeSorted() {
		t.Fatal("edgeless graph should be trivially degree-sorted")
	}
}

// TestAdviseRangeSmoke exercises the paging-hint path end to end on a
// real mmap snapshot: all clamping branches, including inverted and
// out-of-range inputs, must be safe no-ops.
func TestAdviseRangeSmoke(t *testing.T) {
	g := pathGraph(200)
	path := filepath.Join(t.TempDir(), "g.nsb2")
	if err := g.WriteBinaryFile(path, 0); err != nil {
		t.Fatalf("WriteBinaryFile: %v", err)
	}
	mg, err := OpenMmap(path)
	if err != nil {
		t.Fatalf("OpenMmap: %v", err)
	}
	defer mg.Close()
	for _, r := range [][2]int32{{0, 200}, {50, 60}, {199, 200}, {0, 0}, {60, 50}, {-5, 999}} {
		mg.AdviseRange(r[0], r[1])
	}
	// The graph must still read correctly after advising.
	if mg.Graph.Degree(100) != 2 {
		t.Fatalf("degree after advise: %d", mg.Graph.Degree(100))
	}
}
