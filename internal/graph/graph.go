// Package graph implements the compact undirected graph representation
// shared by every algorithm in this repository.
//
// Graphs are stored in CSR (compressed sparse row) form: a single offsets
// array of length n+1 and a single adjacency array of length 2m. Adjacency
// lists are sorted by vertex ID, which the skyline algorithms exploit for
// early-exit subset tests and which makes Has(u,v) a binary search.
//
// Vertices are dense integers 0..n-1. The builder deduplicates parallel
// edges and drops self-loops, so every Graph is a simple graph.
package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"neisky/internal/sketch"
)

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	offsets []int32 // len n+1
	adj     []int32 // len 2m, sorted within each vertex's window
	m       int     // number of undirected edges

	maxDeg  int   // memoized at build time
	degHist []int // memoized: degHist[d] = #vertices of degree d

	hub     atomic.Pointer[HubIndex] // lazily built hub-bitmap index
	hubOnce sync.Once

	sk          atomic.Pointer[sketch.Sketches] // lazily built neighborhood sketches
	skOnce      sync.Once
	degSorted   bool // lazily computed: degrees non-increasing in vertex ID
	degSortOnce sync.Once
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the sorted adjacency list of u. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// linearScanMax is the adjacency length below which Has scans linearly:
// for short sorted runs a branch-predictable linear walk beats the
// branchy bisection, and most vertices of a power-law graph fall here.
const linearScanMax = 8

// Has reports whether the edge (u, v) exists. Adjacency-length-aware:
// linear scan for short lists, galloping (exponential probe + bisection
// of the final run) for long ones, so the common "low-degree u against
// huge-degree w" refine-phase probe costs O(log position) rather than
// O(log deg).
func (g *Graph) Has(u, v int32) bool {
	nbrs := g.Neighbors(u)
	if len(nbrs) <= linearScanMax {
		for _, x := range nbrs {
			if x >= v {
				return x == v
			}
		}
		return false
	}
	return searchSorted(nbrs, v)
}

// searchSorted reports whether v occurs in the sorted slice via
// galloping search.
func searchSorted(nbrs []int32, v int32) bool {
	// Gallop: find the first probe position with nbrs[p] >= v.
	hi := 1
	for hi < len(nbrs) && nbrs[hi] < v {
		hi <<= 1
	}
	lo := hi >> 1
	if hi > len(nbrs) {
		hi = len(nbrs)
	}
	// Bisect the bracketed run [lo, hi).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nbrs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(nbrs) && nbrs[lo] == v
}

// finish computes the memoized degree summaries. Every constructor of a
// Graph must call it exactly once before publishing the value.
func (g *Graph) finish() *Graph {
	max := 0
	for u := int32(0); u < int32(g.N()); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	g.maxDeg = max
	hist := make([]int, max+1)
	for u := int32(0); u < int32(g.N()); u++ {
		hist[g.Degree(u)]++
	}
	g.degHist = hist
	return g
}

// MaxDegree returns the maximum degree over all vertices (0 for an empty
// graph). Memoized at CSR build time; O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// DegreeHist returns the build-time degree histogram: hist[d] counts the
// vertices of degree d. The returned slice is shared and must not be
// modified.
func (g *Graph) DegreeHist() []int { return g.degHist }

// Edges calls fn once for every undirected edge with u < v.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// EdgeList materializes all undirected edges with u < v.
func (g *Graph) EdgeList() [][2]int32 {
	edges := make([][2]int32, 0, g.m)
	g.Edges(func(u, v int32) { edges = append(edges, [2]int32{u, v}) })
	return edges
}

// Stats summarizes a graph the way the paper's Table I does.
type Stats struct {
	N, M, MaxDegree int
	AvgDegree       float64
}

// Stats computes summary statistics.
func (g *Graph) Stats() Stats {
	s := Stats{N: g.N(), M: g.M(), MaxDegree: g.MaxDegree()}
	if s.N > 0 {
		s.AvgDegree = 2 * float64(s.M) / float64(s.N)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d dmax=%d davg=%.2f", s.N, s.M, s.MaxDegree, s.AvgDegree)
}

// Builder accumulates edges and produces a Graph. The zero value is ready
// to use after SetN, or edges may grow the vertex count implicitly via
// AddEdge.
type Builder struct {
	n     int32
	edges [][2]int32
}

// NewBuilder returns a builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: int32(n)}
}

// SetN raises the vertex count to at least n.
func (b *Builder) SetN(n int) {
	if int32(n) > b.n {
		b.n = int32(n)
	}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored.
// Vertices beyond the current count grow the graph.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v+1 > b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// Build produces the immutable CSR graph, deduplicating parallel edges.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	// Deduplicate in place.
	uniq := b.edges[:0]
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e != prev {
			uniq = append(uniq, e)
			prev = e
		}
	}
	n := int(b.n)
	deg := make([]int32, n+1)
	for _, e := range uniq {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	offsets := make([]int32, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, e := range uniq {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	g := &Graph{offsets: offsets, adj: adj, m: len(uniq)}
	// Each vertex's window is already grouped; sort within windows.
	for u := 0; u < n; u++ {
		w := adj[offsets[u]:offsets[u+1]]
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	}
	return g.finish()
}

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int32) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetN(n)
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (vertex IDs of g)
// with vertices relabeled densely in the order given, plus the mapping
// from new IDs back to original IDs.
func (g *Graph) InducedSubgraph(keep []int32) (*Graph, []int32) {
	newID := make(map[int32]int32, len(keep))
	orig := make([]int32, len(keep))
	for i, v := range keep {
		newID[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		for _, w := range g.Neighbors(v) {
			if j, ok := newID[w]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	return b.Build(), orig
}

// SampleVertices returns the induced subgraph on a uniformly random
// fraction frac of the vertices, using the supplied random stream
// (pass the output of rng.New). Used for the paper's "vary n" scalability
// experiments (Exp-7).
func (g *Graph) SampleVertices(frac float64, next func() float64) *Graph {
	keep := make([]int32, 0, int(float64(g.N())*frac)+1)
	for u := int32(0); u < int32(g.N()); u++ {
		if next() < frac {
			keep = append(keep, u)
		}
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}

// SampleEdges keeps each edge independently with probability frac,
// preserving the vertex set. Used for the paper's "vary density"
// scalability experiments (Exp-7).
func (g *Graph) SampleEdges(frac float64, next func() float64) *Graph {
	b := NewBuilder(g.N())
	g.Edges(func(u, v int32) {
		if next() < frac {
			b.AddEdge(u, v)
		}
	})
	return b.Build()
}

// WriteEdgeList writes the graph as "u v" lines preceded by a "# n m"
// header comment, the format ReadEdgeList accepts.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# neisky edge list: n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int32) {
		if werr == nil {
			_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadEdgeList parses whitespace-separated "u v" pairs, one edge per
// line. Lines starting with '#' or '%' (SNAP / KONECT conventions) are
// skipped. Vertex IDs may be arbitrary non-negative integers; they are
// compacted to a dense 0..n-1 range preserving numeric order.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var raw [][2]int64
	maxID := int64(-1)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex IDs, got %q", lineno, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineno, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex ID", lineno)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		raw = append(raw, [2]int64{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if maxID >= 1<<31 {
		return nil, errors.New("graph: vertex IDs exceed int32 range")
	}
	// Compact IDs: collect, sort, rank.
	seen := make(map[int64]int32)
	ids := make([]int64, 0, 2*len(raw))
	for _, e := range raw {
		ids = append(ids, e[0], e[1])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := int32(0)
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			seen[id] = n
			n++
		}
	}
	b := NewBuilder(int(n))
	for _, e := range raw {
		b.AddEdge(seen[e[0]], seen[e[1]])
	}
	return b.Build(), nil
}

// ClosedNeighborhoodContains reports whether N[u] ⊇ N[v]-style membership
// helpers are needed frequently; this one reports w ∈ N[u].
func (g *Graph) ClosedNeighborhoodContains(u, w int32) bool {
	return u == w || g.Has(u, w)
}

// SubsetOpenInClosed reports whether N(u) ⊆ N[v], the paper's
// "u is neighborhood-included by v" (Definition 1). It merges the two
// sorted adjacency lists and exits on the first witness against
// inclusion. O(deg(u) + deg(v)).
func (g *Graph) SubsetOpenInClosed(u, v int32) bool {
	nu := g.Neighbors(u)
	nv := g.Neighbors(v)
	i, j := 0, 0
	for i < len(nu) {
		x := nu[i]
		if x == v { // v itself is in N[v]
			i++
			continue
		}
		for j < len(nv) && nv[j] < x {
			j++
		}
		if j == len(nv) || nv[j] != x {
			return false
		}
		i++
		j++
	}
	return true
}

// SubsetClosedInClosed reports whether N[u] ⊆ N[v], the paper's
// edge-constrained neighborhood inclusion (Definition 4) when u and v are
// adjacent. For adjacent u, v this is equivalent to SubsetOpenInClosed.
func (g *Graph) SubsetClosedInClosed(u, v int32) bool {
	if !g.Has(u, v) && u != v {
		// u ∈ N[u] must be in N[v]: requires u == v or adjacency.
		return false
	}
	return g.SubsetOpenInClosed(u, v)
}

// DropIsolated returns the graph restricted to vertices with at least
// one edge, relabeled densely. Edge-list datasets (the paper's inputs)
// never contain isolated vertices, so generators use this to match.
func (g *Graph) DropIsolated() *Graph {
	keep := make([]int32, 0, g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		if g.Degree(u) > 0 {
			keep = append(keep, u)
		}
	}
	if len(keep) == g.N() {
		return g
	}
	sub, _ := g.InducedSubgraph(keep)
	return sub
}

// Clone returns a deep copy of the graph (without any hub index; the
// copy rebuilds its own on demand).
func (g *Graph) Clone() *Graph {
	off := make([]int32, len(g.offsets))
	copy(off, g.offsets)
	adj := make([]int32, len(g.adj))
	copy(adj, g.adj)
	return (&Graph{offsets: off, adj: adj, m: g.m}).finish()
}

// Bytes returns the approximate in-memory size of the CSR arrays, used by
// the memory experiment (Fig 4) to report "graph size".
func (g *Graph) Bytes() int {
	return 4 * (len(g.offsets) + len(g.adj))
}
