package graph

import (
	"math"
	"testing"

	"neisky/internal/rng"
)

func k4(t *testing.T) *Graph {
	t.Helper()
	return FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
}

func TestDegreeHistogram(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	hist := g.DegreeHistogram()
	if hist[1] != 3 || hist[3] != 1 {
		t.Fatalf("histogram wrong: %v", hist)
	}
}

func TestTriangles(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{k4(t), 4},
		{FromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}}), 1},
		{FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}}), 0},
		{NewBuilder(5).Build(), 0},
	}
	for i, c := range cases {
		if got := c.g.Triangles(); got != c.want {
			t.Fatalf("case %d: triangles = %d, want %d", i, got, c.want)
		}
	}
}

// bruteTriangles cross-checks the oriented counter on random graphs.
func bruteTriangles(g *Graph) int64 {
	var count int64
	n := int32(g.N())
	for a := int32(0); a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.Has(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.Has(a, c) && g.Has(b, c) {
					count++
				}
			}
		}
	}
	return count
}

func TestTrianglesRandom(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := b.Build()
		if g.Triangles() != bruteTriangles(g) {
			t.Fatalf("triangle count mismatch: %d vs %d (edges %v)",
				g.Triangles(), bruteTriangles(g), g.EdgeList())
		}
	}
}

func TestClustering(t *testing.T) {
	// K4: every wedge closes.
	if c := k4(t).GlobalClustering(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K4 clustering = %v", c)
	}
	if c := k4(t).AverageLocalClustering(); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K4 local clustering = %v", c)
	}
	// Star: no triangles.
	star := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	if star.GlobalClustering() != 0 {
		t.Fatal("star clustering must be 0")
	}
	// Path has no wedge-free division error.
	if NewBuilder(2).Build().GlobalClustering() != 0 {
		t.Fatal("degenerate clustering must be 0")
	}
}

func TestWedges(t *testing.T) {
	// Path 0-1-2: one wedge at vertex 1.
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if g.Wedges() != 1 {
		t.Fatalf("wedges = %d", g.Wedges())
	}
}

func TestDiameterLowerBound(t *testing.T) {
	// Path P6 has diameter 5; double sweep finds it exactly on trees.
	path := FromEdges(6, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if d := path.DiameterLowerBound(2); d != 5 {
		t.Fatalf("path diameter bound = %d, want 5", d)
	}
	if d := k4(t).DiameterLowerBound(0); d != 1 {
		t.Fatalf("K4 diameter bound = %d, want 1", d)
	}
	if d := NewBuilder(1).Build().DiameterLowerBound(0); d != 0 {
		t.Fatalf("singleton diameter = %d", d)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative.
	star := FromEdges(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if a := star.DegreeAssortativity(); a >= 0 {
		t.Fatalf("star assortativity = %v, want negative", a)
	}
	// A clique is degenerate (all degrees equal): defined as 0.
	if a := k4(t).DegreeAssortativity(); a != 0 {
		t.Fatalf("K4 assortativity = %v, want 0", a)
	}
	if a := NewBuilder(3).Build().DegreeAssortativity(); a != 0 {
		t.Fatal("edgeless assortativity must be 0")
	}
}
