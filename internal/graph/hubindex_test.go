package graph

import (
	"testing"

	"neisky/internal/bitset"
	"neisky/internal/rng"
)

// randomHubGraph builds an undirected G(n,p) graph dense enough that a
// meaningful fraction of vertices clear the hub threshold.
func randomHubGraph(r *rng.RNG, n int, p float64) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// naiveSubsetOpenInClosed is the spec: every x ∈ N(u) with x ≠ v must lie
// in N(v).
func naiveSubsetOpenInClosed(g *Graph, u, v int32) bool {
	for _, x := range g.Neighbors(u) {
		if x == v {
			continue
		}
		found := false
		for _, y := range g.Neighbors(v) {
			if y == x {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestHubKernelsMatchLegacyMerge(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		g := randomHubGraph(r, 20+r.Intn(60), 0.05+0.5*r.Float64())
		h := g.Hub()
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if u == v {
					continue
				}
				want := naiveSubsetOpenInClosed(g, u, v)
				if got := h.SubsetOpenInClosed(u, v); got != want {
					t.Fatalf("hub SubsetOpenInClosed(%d,%d)=%v want %v (hubU=%v hubV=%v)",
						u, v, got, want, h.IsHub(u), h.IsHub(v))
				}
				if got := g.SubsetOpenInClosed(u, v); got != want {
					t.Fatalf("legacy SubsetOpenInClosed(%d,%d)=%v want %v", u, v, got, want)
				}
			}
		}
	}
}

func TestHubHasMatchesGraphHas(t *testing.T) {
	r := rng.New(32)
	g := randomHubGraph(r, 80, 0.3)
	h := g.Hub()
	if h.Hubs() == 0 {
		t.Fatal("dense test graph produced no hubs")
	}
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if h.Has(u, v) != g.Has(u, v) {
				t.Fatalf("Has(%d,%d) disagrees with adjacency", u, v)
			}
		}
	}
}

func TestHubThetaPolicy(t *testing.T) {
	r := rng.New(33)
	g := randomHubGraph(r, 120, 0.25)
	h := g.Hub()
	if h.Theta() < minHubDegree {
		t.Fatalf("theta %d below floor %d", h.Theta(), minHubDegree)
	}
	// Degree monotonicity: exactly the vertices with deg ≥ θ are hubs.
	hubs := 0
	for v := int32(0); v < int32(g.N()); v++ {
		isHub := g.Degree(v) >= h.Theta()
		if isHub != h.IsHub(v) {
			t.Fatalf("vertex %d deg=%d theta=%d: IsHub=%v", v, g.Degree(v), h.Theta(), h.IsHub(v))
		}
		if isHub {
			hubs++
		}
	}
	if hubs != h.Hubs() {
		t.Fatalf("Hubs()=%d, counted %d", h.Hubs(), hubs)
	}
	// Memory budget: bitmap words must fit within hubBudgetWords(m).
	words := h.Hubs() * bitset.WordsFor(g.N())
	if h.Hubs() > 0 && words > hubBudgetWords(g.M()) {
		t.Fatalf("index uses %d words, budget %d", words, hubBudgetWords(g.M()))
	}
	// Bitmap contents: each hub bitmap is exactly its open neighborhood.
	for v := int32(0); v < int32(g.N()); v++ {
		bv := h.Bits(v)
		if bv == nil {
			continue
		}
		if bv.Count() != g.Degree(v) {
			t.Fatalf("hub %d bitmap popcount %d != degree %d", v, bv.Count(), g.Degree(v))
		}
		for _, w := range g.Neighbors(v) {
			if !bv.Test(w) {
				t.Fatalf("hub %d bitmap missing neighbor %d", v, w)
			}
		}
	}
}

func TestHubIndexCached(t *testing.T) {
	g := randomHubGraph(rng.New(34), 40, 0.4)
	if g.Hub() != g.Hub() {
		t.Fatal("Hub() should return the same cached index")
	}
	if g.Clone().Hub() == g.Hub() {
		t.Fatal("clone must build its own index")
	}
}

func TestSparseGraphHasNoHubs(t *testing.T) {
	// A path graph never reaches minHubDegree; the index must degrade
	// to zero bitmaps and keep answering through the fallback paths.
	b := NewBuilder(50)
	for i := int32(0); i < 49; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	h := g.Hub()
	if h.Hubs() != 0 {
		t.Fatalf("path graph should have 0 hubs, got %d", h.Hubs())
	}
	if !h.SubsetOpenInClosed(0, 1) {
		t.Fatal("endpoint must be covered by its neighbor")
	}
	if h.SubsetOpenInClosed(1, 2) {
		t.Fatal("interior path vertex is not covered by its neighbor")
	}
}

func TestAdaptiveHasMatchesNaive(t *testing.T) {
	r := rng.New(35)
	for trial := 0; trial < 15; trial++ {
		// Mix of tiny (linear-scan) and large (galloping) adjacencies.
		g := randomHubGraph(r, 10+r.Intn(120), 0.02+0.4*r.Float64())
		n := int32(g.N())
		adj := make(map[[2]int32]bool)
		for u := int32(0); u < n; u++ {
			for _, v := range g.Neighbors(u) {
				adj[[2]int32{u, v}] = true
			}
		}
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				if g.Has(u, v) != adj[[2]int32{u, v}] {
					t.Fatalf("Has(%d,%d) mismatch (deg(u)=%d)", u, v, g.Degree(u))
				}
			}
		}
	}
}

func TestMemoizedDegreeStats(t *testing.T) {
	r := rng.New(36)
	for trial := 0; trial < 10; trial++ {
		g := randomHubGraph(r, 5+r.Intn(80), 0.3)
		wantMax := 0
		hist := make([]int, g.N()+1)
		for v := int32(0); v < int32(g.N()); v++ {
			d := g.Degree(v)
			if d > wantMax {
				wantMax = d
			}
			hist[d]++
		}
		if g.MaxDegree() != wantMax {
			t.Fatalf("MaxDegree()=%d want %d", g.MaxDegree(), wantMax)
		}
		got := g.DegreeHist()
		if len(got) != wantMax+1 {
			t.Fatalf("DegreeHist len=%d want %d", len(got), wantMax+1)
		}
		for d, c := range got {
			if hist[d] != c {
				t.Fatalf("DegreeHist[%d]=%d want %d", d, c, hist[d])
			}
		}
		// The public copying accessor must agree with the memoized one.
		pub := g.DegreeHistogram()
		if len(pub) != len(got) {
			t.Fatalf("DegreeHistogram len=%d want %d", len(pub), len(got))
		}
		for d := range pub {
			if pub[d] != got[d] {
				t.Fatalf("DegreeHistogram[%d]=%d want %d", d, pub[d], got[d])
			}
		}
	}
}
