package graph

import "sort"

// Vertex shards: the sharded skyline engine (internal/core/shard.go)
// partitions the CSR vertex range into contiguous id ranges and hands
// each to one worker at a time. Contiguity is the point — on a
// degree-relabeled snapshot a shard is one dense stretch of the offsets
// and adjacency arrays, so a shard scan walks the mapping sequentially
// and the per-shard resident set is the shard's own CSR span plus
// whatever cross-shard probes touch.

// ShardRange is one contiguous vertex range [Lo, Hi).
type ShardRange struct {
	Lo, Hi int32
}

// Len returns the number of vertices in the range.
func (r ShardRange) Len() int { return int(r.Hi - r.Lo) }

// PartitionShards splits the vertex range into at most s contiguous,
// non-empty, disjoint shards covering [0, n), balanced by CSR work:
// the weight of vertex v is 1 + deg(v) (its offsets entry plus its
// adjacency window), so shard boundaries equalize n + 2m across shards
// rather than raw vertex counts — on a degree-relabeled snapshot the
// low-id hub shard stays narrow and the high-id tail shards widen.
//
// Boundaries come from binary searches over the cumulative weight
// W(v) = v + offsets[v] (monotone by construction), so partitioning
// costs O(s log n). Fewer than s shards come back when n < s or when a
// single vertex outweighs a whole target slice (the next boundary is
// pushed past several targets to keep shards non-empty).
func (g *Graph) PartitionShards(s int) []ShardRange {
	n := int32(g.N())
	if n == 0 {
		return nil
	}
	if s < 1 {
		s = 1
	}
	if int32(s) > n {
		s = int(n)
	}
	total := int64(n) + int64(len(g.adj))
	shards := make([]ShardRange, 0, s)
	lo := int32(0)
	for i := 0; i < s && lo < n; i++ {
		hi := n
		if i < s-1 {
			// Smallest v > lo with W(v) ≥ the i-th cumulative target.
			target := total * int64(i+1) / int64(s)
			hi = lo + 1 + int32(sort.Search(int(n-lo-1), func(k int) bool {
				v := lo + 1 + int32(k)
				return int64(v)+int64(g.offsets[v]) >= target
			}))
		}
		shards = append(shards, ShardRange{Lo: lo, Hi: hi})
		lo = hi
	}
	return shards
}
