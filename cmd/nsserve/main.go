// Command nsserve is the skyline-as-a-service daemon: it loads one
// immutable graph snapshot and serves concurrent queries over HTTP
// until interrupted.
//
// Endpoints (all responses carry epoch/n/m plus truncated/cause anytime
// markers; see README "Serving"):
//
//	GET  /v1/skyline?algo=&timeout=&budget=&limit=
//	GET  /v1/centrality/group?k=&measure=
//	GET  /v1/clique?k=
//	GET  /v1/dominators?v=1,2,3
//	POST /v1/snapshot/swap        {"path": "...", "mmap": true} or {"ops": [...]}
//	GET  /v1/stats, /healthz
//
// Snapshots are epoch-managed: a swap builds the next snapshot off to
// the side and publishes it atomically; in-flight queries finish on the
// epoch they pinned, and the old snapshot's resources are released when
// the last of them drains.
//
// Usage:
//
//	nsserve -addr :8080 -input big.nsb2 -mmap
//	nsserve -addr 127.0.0.1:0 -dataset karate -addr-file /tmp/addr
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neisky"
	"neisky/internal/obs"
	"neisky/internal/serve"
	"neisky/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address here once listening (for scripts)")
	input := flag.String("input", "", "graph file: binary snapshot or text edge list")
	useMmap := flag.Bool("mmap", false, "mmap binary snapshot inputs instead of heap-loading them")
	ds := flag.String("dataset", "", "built-in dataset name (alternative to -input)")
	scale := flag.Float64("scale", 1.0, "scale for synthetic datasets")
	defTimeout := flag.Duration("default-timeout", 2*time.Second, "deadline for queries that set none")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on per-query ?timeout")
	maxBudget := flag.Int64("max-budget", 0, "cap on per-query ?budget work budgets (0 = uncapped)")
	walDir := flag.String("wal", "", "write-ahead-log directory: batch swaps become ack-after-durable, and a restart recovers the acknowledged state from here (an initialized directory outranks -input/-dataset)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always | interval | none")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "rotate WAL segments past this size (0 = 64 MiB default)")
	ckptEvery := flag.Duration("checkpoint-every", time.Minute, "background WAL checkpoint interval (0 disables; POST /v1/checkpoint always works)")
	maxInFlight := flag.Int("max-inflight", 0, "admission cap on concurrently served /v1 requests; past it requests get 429 + Retry-After (0 = unbounded)")
	shed := flag.Bool("shed", false, "with -max-inflight, clamp query deadlines to -shed-timeout once in-flight reaches 3/4 of the cap, trading complete answers for fast truncated ones")
	shedTimeout := flag.Duration("shed-timeout", 100*time.Millisecond, "shed-mode deadline clamp")
	tree := flag.Bool("tree", false,
		"prebuild the layered dominance index at startup (otherwise the first layers/explain query builds it)")
	debug := flag.Bool("debug", true, "mount /debug/{pprof,vars,metrics} on the serving mux")
	pprofAddr := flag.String("pprof", "",
		"additionally serve the debug surface on this separate address (e.g. localhost:6060)")
	flag.Parse()

	var snap *serve.Snapshot
	var err error
	// With -wal alone, the snapshot comes from recovery; otherwise a
	// graph source is mandatory.
	if *input != "" || *ds != "" || *walDir == "" {
		snap, err = loadSnapshot(*input, *ds, *scale, *useMmap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsserve:", err)
			os.Exit(1)
		}
	}

	// With -wal, durable state outranks boot-time configuration: an
	// initialized directory is recovered (checkpoint + acknowledged op
	// tail) and any -input/-dataset snapshot is discarded; a fresh
	// directory seeds itself from the snapshot.
	var walLog *wal.Log
	if *walDir != "" {
		var pol wal.SyncPolicy
		switch *walSync {
		case "always":
			pol = wal.SyncAlways
		case "interval":
			pol = wal.SyncInterval
		case "none":
			pol = wal.SyncNone
		default:
			fmt.Fprintf(os.Stderr, "nsserve: bad -wal-sync %q (want always|interval|none)\n", *walSync)
			os.Exit(1)
		}
		var st *serve.RecoveryStats
		snap, walLog, st, err = serve.OpenDurable(*walDir, snap,
			wal.Options{Sync: pol, SegmentBytes: *walSegBytes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsserve:", err)
			os.Exit(1)
		}
		if st.Recovered {
			fmt.Printf("nsserve: recovered %s: checkpoint@%d + %d records (%d ops) through seq %d in %s (torn tail: %v)\n",
				*walDir, st.CheckpointSeq, st.Records, st.ReplayedOps, st.LastSeq,
				time.Duration(st.RecoverNs).Round(time.Millisecond), st.TornTail)
		} else {
			fmt.Printf("nsserve: initialized WAL %s from %s\n", *walDir, snap.Name)
		}
	}

	// Metrics are always on for a daemon: the per-endpoint counters
	// and timers cost little and feed /debug/metrics.
	obs.Enable()
	if *pprofAddr != "" {
		dbg, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsserve: pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nsserve: debug server on http://%s/debug/\n", dbg)
	}

	srv := neisky.NewServer(snap, serve.Options{
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBudget:      *maxBudget,
		EnableDebug:    *debug,
		MaxInFlight:    *maxInFlight,
		Shed:           *shed,
		ShedTimeout:    *shedTimeout,
	})
	if walLog != nil {
		srv.AttachWAL(walLog, *ckptEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsserve:", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "nsserve:", err)
			os.Exit(1)
		}
	}
	g := snap.Graph
	if *tree {
		t := snap.Tree(context.Background())
		fmt.Printf("nsserve: layered index prebuilt (%d layers)\n", t.NumLayers())
	}
	fmt.Printf("nsserve: serving %s (n=%d m=%d) on http://%s\n", snap.Name, g.N(), g.M(), bound)

	hsrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "nsserve: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "nsserve:", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting, let in-flight queries finish,
	// then retire every epoch (Close blocks until refcounts drain,
	// which also unmaps any mmap-backed snapshots).
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "nsserve: shutdown:", err)
		os.Exit(1)
	}
	srv.Close()
	fmt.Println("nsserve: bye")
}

func loadSnapshot(input, ds string, scale float64, useMmap bool) (*serve.Snapshot, error) {
	switch {
	case input != "" && ds != "":
		return nil, fmt.Errorf("-input and -dataset are mutually exclusive")
	case input != "":
		return serve.SnapshotFromFile(input, useMmap)
	case ds != "":
		g, err := neisky.LoadDataset(ds, scale)
		if err != nil {
			return nil, err
		}
		return &serve.Snapshot{Graph: g, Name: ds}, nil
	default:
		return nil, fmt.Errorf("need -input or -dataset (try -dataset karate)")
	}
}
