// Command nsgen writes synthetic graphs as edge lists.
//
// Usage:
//
//	nsgen -model er -n 10000 -p 0.001 -seed 7 > er.txt
//	nsgen -model powerlaw -n 100000 -m 500000 -beta 2.6 > pl.txt
//	nsgen -model ba -n 10000 -k 4 > ba.txt
//	nsgen -model clique -n 100 > k100.txt
//	nsgen -dataset wikitalk-sim > wikitalk.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"neisky"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

func main() {
	model := flag.String("model", "powerlaw", "er|powerlaw|ba|clique|tree|cycle|path|star")
	ds := flag.String("dataset", "", "emit a built-in dataset instead of a raw model")
	n := flag.Int("n", 1000, "vertex count")
	m := flag.Int("m", 5000, "target edge count (powerlaw)")
	p := flag.Float64("p", 0.01, "edge probability (er)")
	beta := flag.Float64("beta", 2.5, "power-law exponent")
	k := flag.Int("k", 3, "attachments per vertex (ba)")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	flag.Parse()

	var g *graph.Graph
	if *ds != "" {
		var err error
		g, err = neisky.LoadDataset(*ds, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsgen:", err)
			os.Exit(1)
		}
	} else {
		switch *model {
		case "er":
			g = gen.ER(*n, *p, *seed)
		case "powerlaw":
			g = gen.PowerLaw(*n, *m, *beta, *seed)
		case "ba":
			g = gen.BA(*n, *k, *seed)
		case "clique":
			g = gen.Clique(*n)
		case "tree":
			g = gen.CompleteBinaryTree(*n)
		case "cycle":
			g = gen.Cycle(*n)
		case "path":
			g = gen.Path(*n)
		case "star":
			g = gen.Star(*n)
		default:
			fmt.Fprintf(os.Stderr, "nsgen: unknown model %q\n", *model)
			os.Exit(1)
		}
	}
	if err := g.WriteEdgeList(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nsgen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, g.Stats())
}
