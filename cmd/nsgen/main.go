// Command nsgen writes synthetic graphs as edge lists or binary CSR
// snapshots, and converts existing graph files to the v2 snapshot
// format.
//
// Usage:
//
//	nsgen -model er -n 10000 -p 0.001 -seed 7 > er.txt
//	nsgen -model powerlaw -n 100000 -m 500000 -beta 2.6 > pl.txt
//	nsgen -model ba -n 10000 -k 4 > ba.txt
//	nsgen -model clique -n 100 > k100.txt
//	nsgen -dataset wikitalk-sim > wikitalk.txt
//
// With -o the graph is written as a v2 binary snapshot instead of a
// text edge list. The chunglu and ba models then stream straight
// through the bounded-memory converter, so multi-million-node graphs
// generate without ever materializing in memory:
//
//	nsgen -model chunglu -n 2000000 -m 8000000 -shuffle -o big.nsb2
//	nsgen -model chunglu -n 2000000 -m 8000000 -shuffle -relabel -o big-rel.nsb2
//
// -in converts an existing file (text edge list, or a binary snapshot
// of either version — the v1 → v2 migration path) to a v2 snapshot:
//
//	nsgen -in edges.txt -o edges.nsb2
//	nsgen -in legacy.nsb -relabel -o legacy.nsb2
package main

import (
	"flag"
	"fmt"
	"os"

	"neisky"
	"neisky/internal/gen"
	"neisky/internal/graph"
)

func main() {
	model := flag.String("model", "powerlaw", "er|powerlaw|chunglu|ba|clique|tree|cycle|path|star")
	ds := flag.String("dataset", "", "emit a built-in dataset instead of a raw model")
	in := flag.String("in", "", "convert this file (edge list or binary snapshot) instead of generating")
	n := flag.Int("n", 1000, "vertex count")
	m := flag.Int("m", 5000, "target edge count (powerlaw/chunglu)")
	p := flag.Float64("p", 0.01, "edge probability (er)")
	beta := flag.Float64("beta", 2.5, "power-law exponent")
	k := flag.Int("k", 3, "attachments per vertex (ba)")
	seed := flag.Uint64("seed", 1, "random seed")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	out := flag.String("o", "", "write a v2 binary snapshot here instead of a text edge list")
	relabel := flag.Bool("relabel", false, "assign ids degree-descending in the snapshot (-o only)")
	shuffle := flag.Bool("shuffle", false, "randomly permute generated ids (-o only; models honest arbitrary-id inputs)")
	buffer := flag.Int("buffer", 0, "converter sort-buffer size in pairs (-o only; 0 = 4Mi pairs = 32 MiB)")
	flag.Parse()

	if *out == "" {
		if *in != "" || *relabel || *shuffle {
			fail(fmt.Errorf("-in/-relabel/-shuffle need a snapshot output (-o)"))
		}
		g := buildGraph(*model, *ds, *n, *m, *p, *beta, *k, *seed, *scale)
		if err := g.WriteEdgeList(os.Stdout); err != nil {
			fail(err)
		}
		fmt.Fprintln(os.Stderr, g.Stats())
		return
	}

	opts := graph.ConvertOptions{Relabel: *relabel, BufferPairs: *buffer}
	var stats graph.ConvertStats
	var err error
	switch {
	case *in != "" && graph.IsBinarySnapshot(*in):
		stats, err = graph.ConvertBinaryFile(*in, *out, opts)
	case *in != "":
		stats, err = graph.ConvertEdgeListFile(*in, *out, opts)
	case *model == "chunglu" || *model == "ba":
		// The streaming models: edges flow generator → converter with
		// only O(n)-ish generator state resident.
		opts.N = *n
		src := func(emit func(u, v int32) error) error {
			if *shuffle {
				emit = gen.ShuffledLabels(*n, *seed, emit)
			}
			if *model == "chunglu" {
				return gen.StreamChungLu(*n, *m, *beta, *seed, emit)
			}
			return gen.StreamBA(*n, *k, *seed, emit)
		}
		stats, err = graph.ConvertEdges(src, *out, opts)
	default:
		g := buildGraph(*model, *ds, *n, *m, *p, *beta, *k, *seed, *scale)
		opts.N = g.N()
		src := g.StreamEdges
		if *shuffle {
			src = func(emit func(u, v int32) error) error {
				return g.StreamEdges(gen.ShuffledLabels(g.N(), *seed, emit))
			}
		}
		stats, err = graph.ConvertEdges(src, *out, opts)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "nsgen: wrote %s: n=%d m=%d relabeled=%v (sorted %d directed pairs, %d spill runs)\n",
		*out, stats.N, stats.M, stats.Relabeled, stats.DirectedPairs, stats.Runs)
}

func buildGraph(model, ds string, n, m int, p, beta float64, k int, seed uint64, scale float64) *graph.Graph {
	if ds != "" {
		g, err := neisky.LoadDataset(ds, scale)
		if err != nil {
			fail(err)
		}
		return g
	}
	switch model {
	case "er":
		return gen.ER(n, p, seed)
	case "powerlaw", "chunglu":
		return gen.PowerLaw(n, m, beta, seed)
	case "ba":
		return gen.BA(n, k, seed)
	case "clique":
		return gen.Clique(n)
	case "tree":
		return gen.CompleteBinaryTree(n)
	case "cycle":
		return gen.Cycle(n)
	case "path":
		return gen.Path(n)
	case "star":
		return gen.Star(n)
	}
	fail(fmt.Errorf("unknown model %q", model))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nsgen:", err)
	os.Exit(1)
}
