package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"neisky"
)

func testGraph(t *testing.T) *neisky.Graph {
	t.Helper()
	g, err := neisky.LoadDataset("karate", 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunAllApps(t *testing.T) {
	g := testGraph(t)
	for _, app := range []string{"closeness", "harmonic", "clique", "topk", "mis", "betweenness"} {
		var buf bytes.Buffer
		if err := run(context.Background(), &buf, g, app, 3, 8, true); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", app)
		}
	}
}

func TestRunUnknownApp(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, testGraph(t), "bogus", 3, 8, false); err == nil {
		t.Fatal("expected error for unknown app")
	}
}

func TestCliqueOutputsValidClique(t *testing.T) {
	g := testGraph(t)
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, g, "clique", 1, 0, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Karate's maximum clique has 5 vertices.
	if !strings.Contains(out, "ω=5") {
		t.Fatalf("expected ω=5 in output:\n%s", out)
	}
}

func TestLoadRequiresInput(t *testing.T) {
	if _, err := load("", "", 1); err == nil {
		t.Fatal("expected error")
	}
}
