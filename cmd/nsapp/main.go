// Command nsapp runs the skyline-accelerated applications on a graph:
// group centrality maximization, maximum clique / top-k cliques,
// maximum independent set and group betweenness.
//
// Usage:
//
//	nsapp -dataset youtube-sim -app closeness -k 10
//	nsapp -input graph.txt -app harmonic -k 20 -baseline
//	nsapp -dataset pokec-sim -app clique
//	nsapp -dataset pokec-sim -app topk -k 5
//	nsapp -dataset wikitalk-sim -app mis
//	nsapp -dataset notredame-sim -scale 0.3 -app betweenness -k 3 -sources 16
//	nsapp -dataset pokec-sim -app clique -pprof localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"neisky"
	"neisky/internal/betweenness"
	"neisky/internal/centrality"
	"neisky/internal/clique"
	"neisky/internal/cliutil"
	"neisky/internal/mis"
	"neisky/internal/obs"
)

func main() {
	input := flag.String("input", "", "edge-list file ('-' for stdin)")
	ds := flag.String("dataset", "", "built-in dataset name")
	scale := flag.Float64("scale", 1.0, "scale for synthetic datasets")
	app := flag.String("app", "closeness", "closeness|harmonic|clique|topk|mis|betweenness")
	k := flag.Int("k", 10, "group size / clique count")
	sources := flag.Int("sources", 16, "sampled BFS sources (betweenness)")
	baseline := flag.Bool("baseline", false, "also run the non-skyline baseline for comparison")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget; on expiry (or ^C) best-effort partial results are reported (0 = none)")
	pprofAddr := flag.String("pprof", "",
		"serve /debug/pprof, /debug/vars and /debug/metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsapp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nsapp: debug server on http://%s/debug/\n", addr)
	}
	g, err := load(*input, *ds, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsapp:", err)
		os.Exit(1)
	}
	fmt.Println("graph:", g.Stats())
	if err := run(ctx, os.Stdout, g, *app, *k, *sources, *baseline); err != nil {
		fmt.Fprintln(os.Stderr, "nsapp:", err)
		os.Exit(1)
	}
	if cause := cliutil.Cause(ctx); cause != "" {
		fmt.Printf("truncated=true cause=%s (results above are best-effort partials)\n", cause)
	}
}

// run executes the selected application and writes a report. Every
// engine call honors ctx: on cancellation it reports whatever partial
// result the engine's anytime contract guarantees.
func run(ctx context.Context, w io.Writer, g *neisky.Graph, app string, k, sources int, baseline bool) error {
	switch app {
	case "closeness", "harmonic":
		m := neisky.GroupCloseness
		if app == "harmonic" {
			m = neisky.GroupHarmonic
		}
		start := time.Now()
		sky := neisky.SkylineCtx(ctx, g)
		res := neisky.MaximizeGroupCentralityCtx(ctx, g, k, m, centrality.Options{
			Candidates: sky.Skyline, Lazy: true, PrunedBFS: true,
		})
		fmt.Fprintf(w, "NeiSky greedy: value=%.6f group=%v time=%s gain-calls=%d\n",
			res.Value, res.Group, time.Since(start).Round(time.Millisecond), res.GainCalls)
		if baseline {
			start = time.Now()
			base := neisky.MaximizeGroupCentralityCtx(ctx, g, k, m,
				centrality.Options{Lazy: true, PrunedBFS: true})
			fmt.Fprintf(w, "baseline:      value=%.6f time=%s gain-calls=%d\n",
				base.Value, time.Since(start).Round(time.Millisecond), base.GainCalls)
		}
	case "clique":
		start := time.Now()
		res := neisky.MaxCliqueCtx(ctx, g)
		fmt.Fprintf(w, "NeiSkyMC: ω=%d clique=%v time=%s\n",
			len(res.Clique), res.Clique, time.Since(start).Round(time.Millisecond))
		if baseline {
			start = time.Now()
			base := neisky.MaxCliqueBaseCtx(ctx, g)
			fmt.Fprintf(w, "BaseMCC:  ω=%d time=%s\n",
				len(base.Clique), time.Since(start).Round(time.Millisecond))
		}
	case "topk":
		start := time.Now()
		res := neisky.TopKCliquesCtx(ctx, g, k)
		fmt.Fprintf(w, "top-%d cliques (%s): sizes=%v\n",
			k, time.Since(start).Round(time.Millisecond), clique.Sizes(res.Cliques))
	case "mis":
		start := time.Now()
		forced, kernel := neisky.ReduceForIndependentSet(g)
		res := neisky.IndependentSetGreedyCtx(ctx, g)
		fmt.Fprintf(w, "reduction: forced=%d kernel=%d; greedy IS=%d (%s, valid=%v)\n",
			len(forced), len(kernel), len(res.Set),
			time.Since(start).Round(time.Millisecond), mis.IsIndependent(g, res.Set))
	case "betweenness":
		start := time.Now()
		res := betweenness.NeiSkyGBCtx(ctx, g, k, sources, 1)
		fmt.Fprintf(w, "NeiSkyGB: value=%.1f group=%v time=%s calls=%d\n",
			res.Value, res.Group, time.Since(start).Round(time.Millisecond), res.GainCalls)
		if baseline {
			start = time.Now()
			base := betweenness.BaseGBCtx(ctx, g, k, sources, 1)
			fmt.Fprintf(w, "BaseGB:   value=%.1f time=%s calls=%d\n",
				base.Value, time.Since(start).Round(time.Millisecond), base.GainCalls)
		}
	default:
		return fmt.Errorf("unknown app %q", app)
	}
	return nil
}

func load(input, ds string, scale float64) (*neisky.Graph, error) {
	switch {
	case ds != "":
		return neisky.LoadDataset(ds, scale)
	case input == "-":
		return neisky.ReadEdgeList(os.Stdin)
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return neisky.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("need -input or -dataset")
	}
}
