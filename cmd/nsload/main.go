// Command nsload replays mixed query traffic against a running nsserve
// daemon — skyline, dominators, clique and group-centrality reads plus
// concurrent snapshot swaps — and reports latency percentiles.
//
// Usage:
//
//	nsload -addr http://127.0.0.1:8080 -n 100000 -swaps 5 -json BENCH_4.json
//
// The run fails (exit 1) if any query fails or observes a torn
// snapshot, so it doubles as the serving smoke test in scripts/check.sh.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neisky/internal/bench"
	"neisky/internal/cliutil"
	"neisky/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "nsserve base URL")
	n := flag.Int("n", 1000, "total read queries")
	workers := flag.Int("workers", 0, "concurrent query workers (0 = GOMAXPROCS)")
	swaps := flag.Int("swaps", 0, "snapshot swaps published while queries are in flight")
	swapOps := flag.Int("swap-ops", 8, "edge updates per swap batch")
	k := flag.Int("k", 2, "group size for centrality / list size for top-k clique queries")
	budget := flag.Int64("budget", 0, "per-query work budget (0 = none)")
	seed := flag.Uint64("seed", 1, "query-mix seed")
	retries := flag.Int("retries", 0, "max retries per query on 429/503 (0 = default 3, negative disables)")
	retryBackoff := flag.Duration("retry-backoff", 0, "initial retry backoff, doubling to a 500ms cap with jitter (0 = default 10ms)")
	jsonOut := flag.String("json", "", "write BENCH_4-style JSON rows to this file")
	timeout := flag.Duration("timeout", 0, "overall wall-clock limit for the run (0 = none)")
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	base := strings.TrimSuffix(*addr, "/")
	rep, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:      base,
		Queries:      *n,
		Workers:      *workers,
		Swaps:        *swaps,
		SwapOps:      *swapOps,
		K:            *k,
		Budget:       *budget,
		Seed:         *seed,
		Retries:      *retries,
		RetryBackoff: *retryBackoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsload:", err)
		os.Exit(1)
	}

	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Printf("nsload: %s n=%d m=%d — %d queries, %d swaps, %d workers in %s (%.0f qps)\n",
		rep.Snapshot, rep.N, rep.M, rep.Queries, rep.Swaps, rep.Workers,
		time.Duration(rep.ElapsedNs).Round(time.Millisecond), rep.QPS)
	fmt.Printf("latency: p50=%.2fms p99=%.2fms max=%.2fms mean=%.2fms truncated=%d rejected=%d retries=%d failed=%d\n",
		ms(rep.P50Ns), ms(rep.P99Ns), ms(rep.MaxNs), ms(rep.MeanNs),
		rep.Truncated, rep.Rejected, rep.Retries, rep.Failed)
	for _, ep := range rep.Endpoints {
		fmt.Printf("  %-11s %7d queries  rejected=%-5d p50=%8.2fms  p99=%8.2fms  max=%8.2fms\n",
			ep.Endpoint, ep.Queries, ep.Rejected, ms(ep.P50Ns), ms(ep.P99Ns), ms(ep.MaxNs))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsload:", err)
			os.Exit(1)
		}
		err = bench.WriteServeJSON(f, rep)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsload:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonOut)
	}

	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "nsload: %d queries failed (first: %s)\n", rep.Failed, rep.FirstError)
		os.Exit(1)
	}
}
