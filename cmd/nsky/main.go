// Command nsky computes the neighborhood skyline of a graph.
//
// The graph is read from a file (or stdin with "-") as a whitespace
// edge list; '#' and '%' comment lines are skipped and vertex IDs are
// compacted. Files starting with the snapshot magic are loaded as
// binary CSR snapshots instead (see nsgen -o), and -mmap maps a v2
// snapshot zero-copy rather than heap-loading it. Built-in datasets
// can be named with -dataset.
//
// Usage:
//
//	nsky -input graph.txt                 # FilterRefineSky
//	nsky -input graph.txt -algo base      # BaseSky
//	nsky -input big.nsb2 -mmap            # mmap-backed snapshot
//	nsky -dataset karate -stats -verbose
//	nsky -input graph.txt -candidates     # print C as well
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"neisky"
	"neisky/internal/cliutil"
)

func main() {
	input := flag.String("input", "", "edge-list file ('-' for stdin)")
	ds := flag.String("dataset", "", "built-in dataset name (alternative to -input)")
	scale := flag.Float64("scale", 1.0, "scale for synthetic datasets")
	algoName := flag.String("algo", "filterrefine", "algorithm: filterrefine|base|2hop|cset|oracle")
	stats := flag.Bool("stats", false, "print graph statistics")
	verbose := flag.Bool("verbose", false, "print the skyline vertices, not just the count")
	cands := flag.Bool("candidates", false, "also print the candidate set size")
	keepIsolated := flag.Bool("keep-isolated", false, "paper-algorithm handling of degree-0 vertices")
	useMmap := flag.Bool("mmap", false, "mmap binary snapshot inputs instead of heap-loading them")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget; on expiry (or ^C) a best-effort partial skyline superset is printed (0 = none)")
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	g, closer, err := load(*input, *ds, *scale, *useMmap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsky:", err)
		os.Exit(1)
	}
	if closer != nil {
		defer closer.Close()
	}
	if *stats {
		fmt.Println(g.Stats())
	}

	algo, err := parseAlgo(*algoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsky:", err)
		os.Exit(1)
	}
	opts := neisky.Options{KeepIsolated: *keepIsolated}
	start := time.Now()
	res := neisky.ComputeSkylineCtx(ctx, g, algo, opts)
	elapsed := time.Since(start)

	fmt.Printf("algorithm=%s n=%d m=%d |R|=%d time=%s\n",
		algo, g.N(), g.M(), len(res.Skyline), elapsed.Round(time.Microsecond))
	if res.Truncated {
		fmt.Printf("truncated=true cause=%s (printed set is a superset of the true skyline)\n",
			cliutil.Cause(ctx))
	}
	if *cands && res.Candidates != nil {
		fmt.Printf("|C|=%d\n", len(res.Candidates))
	}
	if *verbose {
		fmt.Println("skyline:", res.Skyline)
	}
}

func load(input, ds string, scale float64, useMmap bool) (*neisky.Graph, *neisky.Mapped, error) {
	switch {
	case ds != "":
		g, err := neisky.LoadDataset(ds, scale)
		return g, nil, err
	case input == "-":
		g, err := neisky.ReadEdgeList(io.Reader(os.Stdin))
		return g, nil, err
	case input != "":
		return neisky.LoadGraphFile(input, useMmap)
	default:
		return nil, nil, fmt.Errorf("need -input or -dataset (try -dataset karate)")
	}
}

func parseAlgo(s string) (neisky.Algorithm, error) {
	switch s {
	case "filterrefine", "frs":
		return neisky.FilterRefine, nil
	case "base":
		return neisky.Base, nil
	case "2hop":
		return neisky.TwoHop, nil
	case "cset":
		return neisky.CandidateSet, nil
	case "oracle":
		return neisky.Oracle, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}
