package main

import (
	"os"
	"path/filepath"
	"testing"

	"neisky"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]neisky.Algorithm{
		"filterrefine": neisky.FilterRefine,
		"frs":          neisky.FilterRefine,
		"base":         neisky.Base,
		"2hop":         neisky.TwoHop,
		"cset":         neisky.CandidateSet,
		"oracle":       neisky.Oracle,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("bogus"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLoadFromDataset(t *testing.T) {
	g, err := load("", "karate", 1)
	if err != nil || g.N() != 34 {
		t.Fatalf("load karate: %v", err)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := load(path, "", 1)
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("load file: %v n=%d", err, g.N())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load("", "", 1); err == nil {
		t.Fatal("expected error with no input")
	}
	if _, err := load("/no/such/file", "", 1); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, err := load("", "bogus-dataset", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
