package main

import (
	"os"
	"path/filepath"
	"testing"

	"neisky"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]neisky.Algorithm{
		"filterrefine": neisky.FilterRefine,
		"frs":          neisky.FilterRefine,
		"base":         neisky.Base,
		"2hop":         neisky.TwoHop,
		"cset":         neisky.CandidateSet,
		"oracle":       neisky.Oracle,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("bogus"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestLoadFromDataset(t *testing.T) {
	g, _, err := load("", "karate", 1, false)
	if err != nil || g.N() != 34 {
		t.Fatalf("load karate: %v", err)
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, closer, err := load(path, "", 1, false)
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("load file: %v n=%d", err, g.N())
	}
	if closer != nil {
		t.Fatal("text edge list returned a mapping closer")
	}
}

func TestLoadFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.nsb2")
	want := neisky.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	if err := want.WriteBinaryFile(path, 0); err != nil {
		t.Fatal(err)
	}
	// Heap-loaded: no closer.
	g, closer, err := load(path, "", 1, false)
	if err != nil || g.N() != 3 || g.M() != 2 || closer != nil {
		t.Fatalf("heap snapshot load: %v n=%d closer=%v", err, g.N(), closer)
	}
	// mmap: closer owns the mapping.
	g, closer, err = load(path, "", 1, true)
	if err != nil || g.N() != 3 || g.M() != 2 {
		t.Fatalf("mmap snapshot load: %v", err)
	}
	if closer != nil {
		if err := closer.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, err := load("", "", 1, false); err == nil {
		t.Fatal("expected error with no input")
	}
	if _, _, err := load("/no/such/file", "", 1, false); err == nil {
		t.Fatal("expected error for missing file")
	}
	if _, _, err := load("", "bogus-dataset", 1, false); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
