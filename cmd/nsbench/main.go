// Command nsbench regenerates the paper's tables and figures on the
// stand-in datasets.
//
// Usage:
//
//	nsbench -exp all            # every experiment, paper-scale grids
//	nsbench -exp fig3           # one experiment
//	nsbench -exp fig7 -quick    # smaller parameter grid
//	nsbench -exp fig10 -scale 0.5
//	nsbench -json out.json       # machine-readable runtime/alloc rows
//	nsbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"neisky/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or \"all\"")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	quick := flag.Bool("quick", false, "shrink parameter grids for a fast smoke run")
	seed := flag.Uint64("seed", 0, "override sampling seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "write machine-readable benchmark rows to this file and exit")
	workers := flag.Int("workers", 0, "parallel workers for sharded contenders (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := bench.Config{Out: os.Stdout, Scale: *scale, Quick: *quick, Seed: *seed, Workers: *workers}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = bench.RunBenchJSON(f, cfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
