// Command nsbench regenerates the paper's tables and figures on the
// stand-in datasets.
//
// Usage:
//
//	nsbench -exp all            # every experiment, paper-scale grids
//	nsbench -exp fig3           # one experiment
//	nsbench -exp fig7 -quick    # smaller parameter grid
//	nsbench -exp fig10 -scale 0.5
//	nsbench -json out.json       # machine-readable runtime/alloc rows
//	nsbench -json out.json -metrics   # + per-stage timer/counter blocks
//	nsbench -exp fig3 -metrics        # print the obs snapshot after a run
//	nsbench -list
//
// Snapshot modes (see nsgen -o):
//
//	nsbench -input big.nsb2 -mmap -json rows.json   # bench one snapshot file
//	nsbench -scalebench -json BENCH_3.json           # full million-scale pipeline
//	nsbench -scalebench -scale-n 500000 -json rows.json
//	nsbench -shardbench -json BENCH_5.json           # sharded-engine sweep (BENCH_5)
//	nsbench -shardbench -shards 1,4,16,64 -dir /tmp/snaps -json BENCH_5.json
//	nsbench -treebench -json BENCH_6.json            # layered index vs recompute (BENCH_6)
//	nsbench -treebench -scale-n 500000 -json BENCH_6.json
//	nsbench -gatebench -json gate.json               # small-n CI gate rows (scripts/bench_compare.go)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neisky/internal/bench"
	"neisky/internal/cliutil"
	"neisky/internal/obs"
)

// parseShardCounts parses the -shards sweep ("1,4,16,64"); empty means
// the benchmark default.
func parseShardCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	counts := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", p)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or \"all\"")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	quick := flag.Bool("quick", false, "shrink parameter grids for a fast smoke run")
	seed := flag.Uint64("seed", 0, "override sampling seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "write machine-readable benchmark rows to this file and exit")
	workers := flag.Int("workers", 0, "parallel workers for sharded contenders (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false,
		"record per-stage timers/counters: folded into -json rows, else printed after the run")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget; on expiry (or ^C) the sweep stops and completed rows/metrics still flush (0 = none)")
	input := flag.String("input", "", "benchmark this graph file (snapshot or edge list) instead of the built-in datasets")
	useMmap := flag.Bool("mmap", false, "open -input snapshots via mmap instead of heap-loading")
	scalebench := flag.Bool("scalebench", false, "run the million-scale generate→convert→mmap→skyline pipeline (needs -json)")
	scaleN := flag.Int("scale-n", 0, "scalebench/shardbench vertex count (0 = 2,000,000)")
	scaleM := flag.Int("scale-m", 0, "scalebench/shardbench edge target (0 = 4×n)")
	dir := flag.String("dir", "", "scalebench/shardbench snapshot/spill directory (empty = a removed temp dir)")
	shardbench := flag.Bool("shardbench", false, "run the sharded-engine BENCH_5 sweep on a million-scale snapshot (needs -json)")
	shards := flag.String("shards", "", "shardbench shard-count sweep, comma-separated (empty = 1,4,16,64)")
	shardWorkers := flag.Int("shard-workers", 0, "shardbench worker pool for the sharded rows (0 = 1)")
	treebench := flag.Bool("treebench", false, "run the layered-index BENCH_6 grid: index-assisted top-k/subset/maintenance vs per-query recompute (needs -json)")
	gatebench := flag.Bool("gatebench", false, "run the small-n bench-gate rows for scripts/bench_compare (needs -json)")
	walbench := flag.Bool("walbench", false, "run the durability/overload BENCH_7 sweep: WAL fsync policies, crash recovery, checkpoint cost, and a capped-admission overload run (needs -json)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	cfg := bench.Config{Out: os.Stdout, Scale: *scale, Quick: *quick, Seed: *seed,
		Workers: *workers, Metrics: *metrics, Ctx: ctx}
	if *scalebench || *shardbench || *treebench || *gatebench || *walbench || *input != "" {
		if *jsonOut == "" {
			fmt.Fprintln(os.Stderr, "nsbench: -scalebench, -shardbench, -treebench, -gatebench, -walbench and -input need -json <file>")
			os.Exit(1)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *shardbench {
			counts, perr := parseShardCounts(*shards)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "nsbench:", perr)
				os.Exit(1)
			}
			hcfg := bench.ShardConfig{N: *scaleN, M: *scaleM, Seed: *seed,
				Workers: *workers, ShardWorkers: *shardWorkers,
				ShardCounts: counts, Dir: *dir, Out: os.Stderr}
			if *quick {
				hcfg.Rounds = 1
			}
			err = bench.RunShardJSON(f, hcfg)
		} else if *treebench {
			tcfg := bench.TreeConfig{N: *scaleN, M: *scaleM, Seed: *seed,
				Workers: *workers, Out: os.Stderr}
			if *quick {
				tcfg.Rounds = 1
			}
			err = bench.RunTreeJSON(f, tcfg)
		} else if *gatebench {
			err = bench.RunGateJSON(f, bench.GateConfig{Seed: *seed, Out: os.Stderr})
		} else if *walbench {
			wcfg := bench.WALConfig{N: *scaleN, M: *scaleM, Seed: *seed,
				Dir: *dir, Out: os.Stderr}
			if *quick {
				wcfg.N = 2_000
				wcfg.Batches = 200
				wcfg.Queries = 120
			}
			err = bench.RunWALJSON(f, wcfg)
		} else if *scalebench {
			scfg := bench.ScaleConfig{N: *scaleN, M: *scaleM, Seed: *seed,
				Workers: *workers, Dir: *dir, Out: os.Stderr}
			if *quick {
				scfg.Iters = 1
			}
			err = bench.RunScaleJSON(f, scfg)
		} else {
			err = bench.RunFileBenchJSON(f, cfg, *input, *useMmap)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = bench.RunBenchJSON(f, cfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if cause := cliutil.Cause(ctx); cause != "" {
			fmt.Fprintf(os.Stderr, "nsbench: cancelled (%s); completed rows were flushed to %s\n",
				cause, *jsonOut)
		}
		return
	}

	if *metrics {
		obs.Enable()
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metrics {
		// Flushed even when the run above was cut short by -timeout/^C.
		fmt.Println("== stage metrics ==")
		fmt.Print(obs.Get().Snapshot())
	}
	if cause := cliutil.Cause(ctx); cause != "" {
		fmt.Printf("nsbench: cancelled (%s); output above is partial\n", cause)
	}
}
