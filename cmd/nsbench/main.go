// Command nsbench regenerates the paper's tables and figures on the
// stand-in datasets.
//
// Usage:
//
//	nsbench -exp all            # every experiment, paper-scale grids
//	nsbench -exp fig3           # one experiment
//	nsbench -exp fig7 -quick    # smaller parameter grid
//	nsbench -exp fig10 -scale 0.5
//	nsbench -json out.json       # machine-readable runtime/alloc rows
//	nsbench -json out.json -metrics   # + per-stage timer/counter blocks
//	nsbench -exp fig3 -metrics        # print the obs snapshot after a run
//	nsbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"neisky/internal/bench"
	"neisky/internal/cliutil"
	"neisky/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or \"all\"")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	quick := flag.Bool("quick", false, "shrink parameter grids for a fast smoke run")
	seed := flag.Uint64("seed", 0, "override sampling seed (0 = default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "write machine-readable benchmark rows to this file and exit")
	workers := flag.Int("workers", 0, "parallel workers for sharded contenders (0 = GOMAXPROCS)")
	metrics := flag.Bool("metrics", false,
		"record per-stage timers/counters: folded into -json rows, else printed after the run")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget; on expiry (or ^C) the sweep stops and completed rows/metrics still flush (0 = none)")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Desc)
		}
		return
	}

	ctx, stop := cliutil.Context(*timeout)
	defer stop()
	cfg := bench.Config{Out: os.Stdout, Scale: *scale, Quick: *quick, Seed: *seed,
		Workers: *workers, Metrics: *metrics, Ctx: ctx}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = bench.RunBenchJSON(f, cfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if cause := cliutil.Cause(ctx); cause != "" {
			fmt.Fprintf(os.Stderr, "nsbench: cancelled (%s); completed rows were flushed to %s\n",
				cause, *jsonOut)
		}
		return
	}

	if *metrics {
		obs.Enable()
	}
	if err := bench.Run(*exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metrics {
		// Flushed even when the run above was cut short by -timeout/^C.
		fmt.Println("== stage metrics ==")
		fmt.Print(obs.Get().Snapshot())
	}
	if cause := cliutil.Cause(ctx); cause != "" {
		fmt.Printf("nsbench: cancelled (%s); output above is partial\n", cause)
	}
}
