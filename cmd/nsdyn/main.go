// Command nsdyn maintains a neighborhood skyline over a stream of edge
// updates read from stdin, one operation per line: "+ u v" inserts the
// edge (u, v), "- u v" deletes it, "?" prints the current skyline size
// and "??" prints the full skyline.
//
// Usage:
//
//	nsdyn -n 100 < ops.txt
//	nsdyn -dataset karate -report 10 < ops.txt   # seed from a dataset
//	nsdyn -dataset karate -pprof localhost:6060 < ops.txt
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"flag"

	"neisky"
	"neisky/internal/cliutil"
	"neisky/internal/obs"
)

func main() {
	n := flag.Int("n", 0, "vertex count when starting from an empty graph")
	ds := flag.String("dataset", "", "seed the maintainer from a built-in dataset")
	scale := flag.Float64("scale", 1.0, "dataset scale")
	report := flag.Int("report", 0, "print skyline size every N operations (0 = off)")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget; on expiry (or ^C) the stream stops after the current op and the summary still prints (0 = none)")
	pprofAddr := flag.String("pprof", "",
		"serve /debug/pprof, /debug/vars and /debug/metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	ctx, stop := cliutil.Context(*timeout)
	defer stop()

	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nsdyn:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nsdyn: debug server on http://%s/debug/\n", addr)
	}
	m, err := newMaintainer(*n, *ds, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsdyn:", err)
		os.Exit(1)
	}
	fmt.Printf("start: n=%d m=%d |R|=%d\n", m.N(), m.M(), m.SkylineSize())
	err = process(ctx, os.Stdin, os.Stdout, m, *report)
	// The maintained skyline is exact for the ops applied so far, so the
	// summary is meaningful (and printed) even on a cancelled stream.
	if cause := cliutil.Cause(ctx); cause != "" {
		fmt.Printf("cancelled: cause=%s (stream stopped early; state below is exact for the applied prefix)\n", cause)
	}
	fmt.Printf("end: n=%d m=%d |R|=%d\n", m.N(), m.M(), m.SkylineSize())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nsdyn:", err)
		os.Exit(1)
	}
}

func newMaintainer(n int, ds string, scale float64) (*neisky.SkylineMaintainer, error) {
	if ds != "" {
		g, err := neisky.LoadDataset(ds, scale)
		if err != nil {
			return nil, err
		}
		return neisky.NewSkylineMaintainer(g), nil
	}
	if n <= 0 {
		return nil, fmt.Errorf("need -n or -dataset")
	}
	return neisky.NewEmptySkylineMaintainer(n), nil
}

// process applies the operation stream until EOF or ctx cancellation.
// Each update is atomic, so stopping between ops leaves the skyline
// exact for the applied prefix.
func process(ctx context.Context, r io.Reader, w io.Writer, m *neisky.SkylineMaintainer, report int) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ops := 0
	for sc.Scan() {
		if ctx.Err() != nil {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		switch {
		case line == "?":
			fmt.Fprintf(w, "|R|=%d\n", m.SkylineSize())
			continue
		case line == "??":
			fmt.Fprintf(w, "R=%v\n", m.Skyline())
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || (fields[0] != "+" && fields[0] != "-") {
			return fmt.Errorf("bad operation %q (want '+ u v', '- u v', '?' or '??')", line)
		}
		u, err := parseVertex(fields[1], m.N())
		if err != nil {
			return err
		}
		v, err := parseVertex(fields[2], m.N())
		if err != nil {
			return err
		}
		if fields[0] == "+" {
			m.AddEdge(u, v)
		} else {
			m.RemoveEdge(u, v)
		}
		ops++
		if report > 0 && ops%report == 0 {
			fmt.Fprintf(w, "after %d ops: m=%d |R|=%d\n", ops, m.M(), m.SkylineSize())
		}
	}
	return sc.Err()
}

func parseVertex(s string, n int) (int32, error) {
	x, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q: %v", s, err)
	}
	if x < 0 || x >= n {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", x, n)
	}
	return int32(x), nil
}
