package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestProcessStream(t *testing.T) {
	m, err := newMaintainer(4, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`
# build a star
+ 0 1
+ 0 2
+ 0 3
?
??
- 0 3
?
`)
	var out bytes.Buffer
	if err := process(context.Background(), in, &out, m, 2); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "|R|=1") {
		t.Fatalf("star should report |R|=1:\n%s", s)
	}
	if !strings.Contains(s, "R=[0]") {
		t.Fatalf("full skyline should be [0]:\n%s", s)
	}
	if !strings.Contains(s, "after 2 ops") {
		t.Fatalf("report lines missing:\n%s", s)
	}
}

func TestProcessErrors(t *testing.T) {
	m, _ := newMaintainer(3, "", 1)
	for _, bad := range []string{"x 0 1\n", "+ 0\n", "+ a 1\n", "+ 0 9\n", "- -1 0\n"} {
		var out bytes.Buffer
		if err := process(context.Background(), strings.NewReader(bad), &out, m, 0); err == nil {
			t.Fatalf("input %q: want error", bad)
		}
	}
}

func TestNewMaintainer(t *testing.T) {
	if _, err := newMaintainer(0, "", 1); err == nil {
		t.Fatal("want error with neither -n nor -dataset")
	}
	m, err := newMaintainer(0, "karate", 1)
	if err != nil || m.N() != 34 {
		t.Fatalf("karate maintainer: %v", err)
	}
	if _, err := newMaintainer(0, "bogus", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}
